package mvtee

import (
	"math/rand/v2"
	"testing"

	"repro/internal/check"
)

// TestCrossDeploymentRepresentativeParity pins the invariant the cluster
// tier's digest-vote plane depends on: two engines deployed from the same
// bundle must produce bitwise-identical outputs for the same input. Each
// diversified variant is individually deterministic, so the only way parity
// can break is the engine's choice of representative output at an MVX
// checkpoint — which must therefore be a pure function of binding history,
// never of map iteration order or arrival timing. (Regression: BuildEngine
// once collected stage handles by iterating the handle map, giving every
// engine a private random representative and cluster replicas a 100% digest
// dissent rate.)
func TestCrossDeploymentRepresentativeParity(t *testing.T) {
	bundle, err := BuildBundle(OfflineConfig{
		ModelName:        "mobilenetv3",
		PartitionTargets: []int{3},
		Specs:            RealSetupSpecs(),
	})
	if err != nil {
		t.Fatal(err)
	}
	plans := []PartitionPlan{
		{Variants: []string{"ort-cpu"}},
		{Variants: []string{"ort-cpu", "ort-altep", "tvm-graph"}},
		{Variants: []string{"ort-cpu"}},
	}
	in := NewTensor(1, 3, 32, 32)
	rng := rand.New(rand.NewPCG(5, 5))
	for i := range in.Data() {
		in.Data()[i] = float32(rng.NormFloat64())
	}
	feed := map[string]*Tensor{"image": in}

	var want check.Digest
	for i := 0; i < 4; i++ {
		dep, err := Deploy(bundle, 0, DeployConfig{
			MVX:     &MVXConfig{Plans: plans},
			Encrypt: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		r, err := dep.Infer(feed)
		dep.Close()
		if err != nil || r.Err != nil {
			t.Fatalf("deployment %d: %v / %v", i, err, r.Err)
		}
		d := check.DigestOf(r.Tensors)
		if i == 0 {
			want = d
			continue
		}
		if d != want {
			t.Fatalf("deployment %d digest %x != deployment 0 digest %x: representative choice is not deterministic",
				i, d[:8], want[:8])
		}
	}
}
