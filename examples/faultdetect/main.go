// Fault detection and recovery: a FrameFlip-style single-bit code fault is
// injected into one BLAS library (the paper's §6.5 scenario, after Li et
// al., USENIX Security '24). Only the variant linked against that library is
// affected; the monitor detects the divergence at the next checkpoint, drops
// the compromised variant, and recovers with the agreeing majority — the
// inference service keeps returning correct results.
//
//	go run ./examples/faultdetect
package main

import (
	"fmt"
	"log"
	"math/rand/v2"

	mvtee "repro"

	"repro/internal/blas"
	"repro/internal/check"
	"repro/internal/core"
	"repro/internal/infer"
)

func main() {
	log.SetFlags(0)

	// Three variants of every partition, identical except for the linear
	// algebra backend they "link": the diversity axis that defeats
	// library-level fault injection.
	specs := []mvtee.Spec{
		{Name: "openblas", Runtime: "interp", BLAS: "naive", ConvAlgo: "im2col", Seed: 1},
		{Name: "eigen", Runtime: "interp", BLAS: "blocked", ConvAlgo: "im2col", Seed: 2},
		{Name: "mkl", Runtime: "interp", BLAS: "packed", ConvAlgo: "im2col", Seed: 3},
	}
	bundle, err := mvtee.BuildBundle(mvtee.OfflineConfig{
		ModelName:        "googlenet",
		PartitionTargets: []int{4},
		Specs:            specs,
	})
	if err != nil {
		log.Fatal(err)
	}

	plans := make([]mvtee.PartitionPlan, 4)
	for i := range plans {
		plans[i] = mvtee.PartitionPlan{Variants: []string{"openblas", "eigen", "mkl"}}
	}

	// The attack: a bit flip in the "openblas" library's GEMM kernel.
	inj := mvtee.Injection{Class: mvtee.FaultCodeBitFlip, TargetBLAS: blas.Naive, Seed: 9}

	dep, err := mvtee.Deploy(bundle, 0, mvtee.DeployConfig{
		MVX: &mvtee.MVXConfig{
			Plans: plans,
			// DropVariant: exclude dissenters and continue with the
			// majority (detection + recovery rather than fail-stop).
			Response: mvtee.DropVariant,
			Criteria: []mvtee.Criterion{
				{Metric: mvtee.AllClose, RTol: 5e-2, ATol: 1e-3},
			},
		},
		Encrypt:        true,
		VariantOptions: mvtee.ArmVariants(inj),
	})
	if err != nil {
		log.Fatal(err)
	}
	defer dep.Close()

	in := mvtee.NewTensor(1, 3, 32, 32)
	rng := rand.New(rand.NewPCG(5, 5))
	for i := range in.Data() {
		in.Data()[i] = float32(rng.NormFloat64())
	}
	inputs := map[string]*mvtee.Tensor{"image": in}

	res, err := dep.Infer(inputs)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("inference under attack completed — checkpoint log:")
	for _, ev := range dep.Engine.Events() {
		fmt.Printf("  %-16s stage=%d batch=%d variants=%v\n", ev.Kind, ev.Stage, ev.BatchID, ev.Variants)
	}

	// Verify the recovered output matches the clean model.
	clean, err := core.BaselineExecutor("googlenet", mvtee.ModelConfig{}, infer.Config{})
	if err != nil {
		log.Fatal(err)
	}
	want, err := clean.Run(inputs)
	if err != nil {
		log.Fatal(err)
	}
	ok, err := check.Consistent(res.Tensors, want, check.Policy{Criteria: []check.Criterion{
		{Metric: check.AllClose, RTol: 5e-2, ATol: 1e-3},
	}})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nrecovered output matches clean model: %v\n", ok)

	// The compromised variants are gone; subsequent inference is clean.
	res2, err := dep.Infer(inputs)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("follow-up batch served by surviving variants in %v\n", res2.Latency)
}
