// Selective MVX for transfer learning: modern models often start from a
// public pre-trained backbone and fine-tune only the final layers — only
// those layers carry sensitive intellectual property and deserve the cost of
// multi-variant hardening (§4.3 "Selective MVX"). This example protects just
// the tail partitions of a MobileNetV3 and compares the cost of full vs
// selective replication.
//
//	go run ./examples/selective
package main

import (
	"fmt"
	"log"
	"math/rand/v2"
	"time"

	mvtee "repro"
)

func main() {
	log.SetFlags(0)

	bundle, err := mvtee.BuildBundle(mvtee.OfflineConfig{
		ModelName:        "mobilenetv3",
		PartitionTargets: []int{5},
		Specs:            []mvtee.Spec{mvtee.ReplicaSpec("replica")},
	})
	if err != nil {
		log.Fatal(err)
	}
	set := bundle.Sets[0]
	fmt.Printf("mobilenetv3 partitioned into %d stages; stages 3-4 hold the fine-tuned head\n",
		len(set.Partitions))

	configs := []struct {
		label string
		mvxOn []int
	}{
		{"no MVX (baseline pipeline)", nil},
		{"selective MVX (fine-tuned tail only)", []int{3, 4}},
		{"full MVX (every partition)", []int{0, 1, 2, 3, 4}},
	}

	in := mvtee.NewTensor(1, 3, 32, 32)
	rng := rand.New(rand.NewPCG(3, 3))
	for i := range in.Data() {
		in.Data()[i] = float32(rng.NormFloat64())
	}
	inputs := map[string]*mvtee.Tensor{"image": in}

	for _, cfg := range configs {
		plans := make([]mvtee.PartitionPlan, len(set.Partitions))
		for i := range plans {
			plans[i] = mvtee.PartitionPlan{Variants: []string{"replica"}}
		}
		variants := 1
		for _, pi := range cfg.mvxOn {
			plans[pi] = mvtee.PartitionPlan{Variants: []string{"replica", "replica", "replica"}}
			variants += 2
		}
		dep, err := mvtee.Deploy(bundle, 0, mvtee.DeployConfig{
			MVX:     &mvtee.MVXConfig{Plans: plans},
			Encrypt: true,
		})
		if err != nil {
			log.Fatal(err)
		}

		// Warmup + measure.
		if _, err := dep.Infer(inputs); err != nil {
			log.Fatal(err)
		}
		const n = 10
		start := time.Now()
		for i := 0; i < n; i++ {
			if _, err := dep.Infer(inputs); err != nil {
				log.Fatal(err)
			}
		}
		el := time.Since(start)
		fmt.Printf("%-40s %2d variant TEEs  %8.2f ms/batch\n",
			cfg.label, len(dep.Monitor.Bindings()), float64(el.Microseconds())/1000/n)
		dep.Close()
	}
	fmt.Println("\nselective MVX hardens the sensitive tail at a fraction of full replication's cost")
}
