// Cloud inference service: the paper's full deployment story over real
// localhost TCP sockets. A model owner provisions the MVX configuration to
// the monitor TEE; variant TEEs bootstrap in two stages from the encrypted
// pool over attested RA-TLS-style channels; the user performs a combined
// attestation of every TEE before provisioning inputs; and a batch stream is
// then served in pipelined fashion, with streaming checkpoints verified
// along the way.
//
//	go run ./examples/cloudservice
package main

import (
	"fmt"
	"log"
	"math/rand/v2"
	"time"

	mvtee "repro"

	"repro/internal/attest"
)

func main() {
	log.SetFlags(0)

	// --- Offline phase (model owner) ---------------------------------------
	bundle, err := mvtee.BuildBundle(mvtee.OfflineConfig{
		ModelName:        "inceptionv3",
		PartitionTargets: []int{5},
		Specs:            mvtee.RealSetupSpecs(),
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("offline: built encrypted pool — %d partitions x %d specs (%d files)\n",
		len(bundle.Sets[0].Partitions), len(bundle.Specs), len(bundle.FS))

	// --- Online phase: orchestrator places TEEs, monitor binds them --------
	plans := make([]mvtee.PartitionPlan, 5)
	for i := range plans {
		plans[i] = mvtee.PartitionPlan{Variants: []string{"ort-cpu"}}
	}
	// Harden the middle of the model with diversified 3-variant MVX.
	plans[2] = mvtee.PartitionPlan{Variants: []string{"ort-cpu", "ort-altep", "tvm-graph"}}

	dep, err := mvtee.Deploy(bundle, 0, mvtee.DeployConfig{
		MVX: &mvtee.MVXConfig{
			Model:    "inceptionv3",
			Plans:    plans,
			Async:    true,
			Criteria: []mvtee.Criterion{{Metric: mvtee.AllClose, RTol: 5e-2, ATol: 1e-3}},
		},
		Transport:        mvtee.TCPLoopback, // real sockets, as co-located TEEs
		Encrypt:          true,
		DeferEngineStart: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer dep.Close()
	fmt.Printf("online: monitor bound %d variant TEEs over attested TCP channels\n",
		len(dep.Monitor.Bindings()))

	// --- User: combined attestation before provisioning secrets ------------
	nonce, err := attest.NewNonce()
	if err != nil {
		log.Fatal(err)
	}
	bdl, err := dep.Monitor.CombinedAttestation(nonce)
	if err != nil {
		log.Fatal(err)
	}
	if err := attest.CheckBundle(dep.Verifier(), bdl, nonce); err != nil {
		log.Fatal("combined attestation failed: ", err)
	}
	fmt.Printf("user: combined attestation verified (monitor + %d variants)\n", len(bdl.Variants))
	dep.Start()

	// --- Streaming inference ------------------------------------------------
	const n = 8
	rng := rand.New(rand.NewPCG(11, 11))
	batches := make([]map[string]*mvtee.Tensor, n)
	for i := range batches {
		in := mvtee.NewTensor(1, 3, 32, 32)
		for j := range in.Data() {
			in.Data()[j] = float32(rng.NormFloat64())
		}
		batches[i] = map[string]*mvtee.Tensor{"image": in}
	}
	start := time.Now()
	results, err := dep.Stream(batches)
	if err != nil {
		log.Fatal(err)
	}
	el := time.Since(start)
	for _, r := range results {
		if r.Err != nil {
			log.Fatalf("batch %d failed: %v", r.ID, r.Err)
		}
	}
	fmt.Printf("pipelined stream: %d batches in %v (%.1f batches/s), %d checkpoint alarms\n",
		n, el.Round(time.Millisecond), float64(n)/el.Seconds(), len(dep.Engine.Events()))
}
