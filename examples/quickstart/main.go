// Quickstart: partition a model, run 3-variant MVX in process, and compare
// the protected pipeline's output against the plain model.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"math/rand/v2"

	mvtee "repro"
)

func main() {
	log.SetFlags(0)

	// Offline phase (Figure 2 ①–②): partition the model into 5 stages and
	// build the diversified variant pool — an ORT-like interpreter, an
	// alternate execution provider, and a TVM-like compiled runtime.
	bundle, err := mvtee.BuildBundle(mvtee.OfflineConfig{
		ModelName:        "resnet-50",
		PartitionTargets: []int{5},
		Specs:            mvtee.RealSetupSpecs(),
	})
	if err != nil {
		log.Fatal(err)
	}
	set := bundle.Sets[0]
	fmt.Printf("partitioned %s into %d stages:\n", bundle.Model.Name, len(set.Partitions))
	for _, p := range set.Partitions {
		fmt.Printf("  stage %d: %d nodes (cost %.3g)\n", p.Index, len(p.Nodes), p.Cost)
	}

	// Online phase (Figure 2 ③–④): deploy the monitor TEE and variant TEEs.
	// The third stage runs 3-variant MVX (slow path with voting); the rest
	// run single diversified variants (fast path).
	plans := make([]mvtee.PartitionPlan, 5)
	for i := range plans {
		plans[i] = mvtee.PartitionPlan{Variants: []string{"ort-cpu"}}
	}
	plans[2] = mvtee.PartitionPlan{Variants: []string{"ort-cpu", "ort-altep", "tvm-graph"}}

	dep, err := mvtee.Deploy(bundle, 0, mvtee.DeployConfig{
		MVX: &mvtee.MVXConfig{
			Model:    "resnet-50",
			Plans:    plans,
			Criteria: []mvtee.Criterion{{Metric: mvtee.AllClose, RTol: 5e-2, ATol: 1e-3}},
		},
		Encrypt: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer dep.Close()

	// Inference: user input flows through the attested, encrypted pipeline.
	in := mvtee.NewTensor(1, 3, 32, 32)
	rng := rand.New(rand.NewPCG(7, 7))
	for i := range in.Data() {
		in.Data()[i] = float32(rng.NormFloat64())
	}
	res, err := dep.Infer(map[string]*mvtee.Tensor{"image": in})
	if err != nil {
		log.Fatal(err)
	}
	logits := res.Tensors["logits"]
	best, bestV := 0, float32(0)
	for i, v := range logits.Data() {
		if v > bestV {
			best, bestV = i, v
		}
	}
	fmt.Printf("\ninference ok in %v: class %d (p=%.3f)\n", res.Latency, best, bestV)
	fmt.Printf("checkpoint events: %d (0 = all variants agreed)\n", len(dep.Engine.Events()))
}
