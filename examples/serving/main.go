// Serving: multiplex many concurrent tenants onto one protected MVTEE
// pipeline through the dynamic-batching front door — weighted fairness,
// priority lanes, and explicit backpressure instead of unbounded queues.
// Clients go through the real HTTP surface: the "pro" population speaks the
// binary streaming wire protocol (application/x-mvtee-tensor), "free"
// speaks float32-JSON, and both land on the same engine.
//
//	go run ./examples/serving
package main

import (
	"context"
	"errors"
	"fmt"
	"log"
	"math/rand/v2"
	"net"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	mvtee "repro"

	"repro/internal/serve"
	"repro/internal/telemetry"
)

func main() {
	log.SetFlags(0)

	// Build and deploy a 4-stage pipeline, 3-variant MVX on stage 1.
	bundle, err := mvtee.BuildBundle(mvtee.OfflineConfig{
		ModelName:        "resnet-50",
		PartitionTargets: []int{4},
		Specs:            mvtee.RealSetupSpecs(),
	})
	if err != nil {
		log.Fatal(err)
	}
	plans := make([]mvtee.PartitionPlan, 4)
	for i := range plans {
		plans[i] = mvtee.PartitionPlan{Variants: []string{"ort-cpu"}}
	}
	plans[1] = mvtee.PartitionPlan{Variants: []string{"ort-cpu", "ort-altep", "tvm-graph"}}
	dep, err := mvtee.Deploy(bundle, 0, mvtee.DeployConfig{
		MVX: &mvtee.MVXConfig{
			Model:    "resnet-50",
			Plans:    plans,
			Criteria: []mvtee.Criterion{{Metric: mvtee.AllClose, RTol: 5e-2, ATol: 1e-3}},
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	defer dep.Close()

	// Front door: batches up to 8 compatible requests per 2ms window; the
	// "pro" tenant gets 3x the scheduling share of "free".
	reg := telemetry.NewRegistry()
	srv := serve.New(dep.Engine, serve.Config{
		MaxBatch: 8,
		MaxDelay: 2 * time.Millisecond,
		Tenants: map[string]serve.TenantConfig{
			"pro":  {Weight: 3},
			"free": {Weight: 1},
		},
		Metrics: reg,
	})
	defer srv.Close()

	// The real HTTP front door, so requests exercise content negotiation
	// and the binary streaming response path end to end.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	hs := &http.Server{Handler: serve.Handler(srv)}
	go func() { _ = hs.Serve(ln) }()
	defer hs.Close()
	baseURL := "http://" + ln.Addr().String()

	// Three client populations hammer the pipeline concurrently; "pro"
	// clients use the binary protocol, "free" stays on JSON.
	tenants := []struct {
		name   string
		prio   serve.Priority
		n      int
		binary bool
	}{
		{"pro", serve.High, 24, true},
		{"free", serve.Normal, 24, false},
		{"free", serve.Low, 8, false},
	}
	var wg sync.WaitGroup
	var served, rejected atomic.Int64
	var fillSum atomic.Int64
	start := time.Now()
	for _, tc := range tenants {
		tc := tc
		for c := 0; c < 4; c++ {
			wg.Add(1)
			go func(seed int) {
				defer wg.Done()
				cl := serve.Client{BaseURL: baseURL, Binary: tc.binary}
				rng := rand.New(rand.NewPCG(uint64(seed), 9))
				for i := 0; i < tc.n/4; i++ {
					in := mvtee.NewTensor(1, 3, 32, 32)
					for j := range in.Data() {
						in.Data()[j] = float32(rng.NormFloat64())
					}
					r, err := cl.Infer(context.Background(), serve.Request{
						Tenant:   tc.name,
						Priority: tc.prio,
						Inputs:   map[string]*mvtee.Tensor{"image": in},
					})
					var se *serve.StatusError
					if errors.As(err, &se) && se.RetryAfter > 0 {
						rejected.Add(1)
						time.Sleep(se.RetryAfter) // honor the backpressure hint
						continue
					}
					if err != nil {
						log.Fatalf("%s: %v", tc.name, err)
					}
					served.Add(1)
					fillSum.Add(int64(r.BatchFill))
				}
			}(c)
		}
	}
	wg.Wait()
	el := time.Since(start)

	n := served.Load()
	fmt.Printf("served %d requests in %v (%.1f req/s), %d rejected with retry-after\n",
		n, el.Round(time.Millisecond), float64(n)/el.Seconds(), rejected.Load())
	fmt.Printf("mean batch fill: %.2f requests/engine batch\n", float64(fillSum.Load())/float64(n))

	// Graceful drain, then show the per-tenant view the operator gets.
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Drain(ctx); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nper-tenant telemetry:")
	for _, m := range reg.Snapshot() {
		if m.Name == telemetry.MetricServeRequests || m.Name == telemetry.MetricServeProto {
			fmt.Printf("  %s %v = %v\n", m.Name, m.Labels, m.Value)
		}
	}
	fmt.Printf("checkpoint events: %d (0 = all variants agreed)\n", len(dep.Engine.Events()))
}
