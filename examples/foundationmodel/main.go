// Foundation-model inference under MVX — the paper's §7.4 future-work
// direction implemented: a transformer encoder (multi-head self-attention,
// LayerNorm, GELU feed-forward) is partitioned into pipeline stages and its
// attention-heavy middle blocks are hardened with three runtime-diverse
// variants, exactly as the DNN workloads are.
//
//	go run ./examples/foundationmodel
package main

import (
	"fmt"
	"log"
	"math/rand/v2"

	mvtee "repro"
)

func main() {
	log.SetFlags(0)

	specs := []mvtee.Spec{
		{Name: "rt-interp", Runtime: "interp", BLAS: "naive", Seed: 1},
		{Name: "rt-planned", Runtime: "planned", BLAS: "blocked", Seed: 2},
		{Name: "rt-packed", Runtime: "planned", BLAS: "packed", Seed: 3,
			Transforms: []mvtee.GraphTransform{{Kind: "dummy-ops", N: 3}}},
	}
	bundle, err := mvtee.BuildBundle(mvtee.OfflineConfig{
		ModelName:        "tinyformer",
		PartitionTargets: []int{4},
		Specs:            specs,
	})
	if err != nil {
		log.Fatal(err)
	}
	set := bundle.Sets[0]
	fmt.Printf("transformer encoder partitioned into %d stages:\n", len(set.Partitions))
	for _, p := range set.Partitions {
		fmt.Printf("  stage %d: %3d nodes (cost %.3g)\n", p.Index, len(p.Nodes), p.Cost)
	}

	plans := make([]mvtee.PartitionPlan, len(set.Partitions))
	for i := range plans {
		plans[i] = mvtee.PartitionPlan{Variants: []string{"rt-planned"}}
	}
	// Harden the two middle stages (the attention blocks) with 3-variant MVX.
	for _, pi := range []int{1, 2} {
		plans[pi] = mvtee.PartitionPlan{Variants: []string{"rt-interp", "rt-planned", "rt-packed"}}
	}

	dep, err := mvtee.Deploy(bundle, 0, mvtee.DeployConfig{
		MVX: &mvtee.MVXConfig{
			Plans: plans,
			Async: true,
			Criteria: []mvtee.Criterion{
				{Metric: mvtee.AllClose, RTol: 1e-2, ATol: 1e-4},
			},
		},
		Encrypt: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer dep.Close()

	// Pre-embedded token sequence (batch 1 × seq × dim).
	shape := bundle.Model.Inputs[0].Shape
	rng := rand.New(rand.NewPCG(8, 8))
	tokens := mvtee.NewTensor(shape...)
	for i := range tokens.Data() {
		tokens.Data()[i] = float32(rng.NormFloat64())
	}

	res, err := dep.Infer(map[string]*mvtee.Tensor{"tokens": tokens})
	if err != nil {
		log.Fatal(err)
	}
	best, bestV := 0, float32(0)
	for i, v := range res.Tensors["logits"].Data() {
		if v > bestV {
			best, bestV = i, v
		}
	}
	fmt.Printf("\ntransformer inference under 3-variant MVX: class %d (p=%.3f) in %v\n",
		best, bestV, res.Latency)
	fmt.Printf("checkpoint alarms: %d (all runtime-diverse variants agreed)\n", len(dep.Engine.Events()))
}
