package mvtee

import (
	"math/rand/v2"
	"testing"
	"time"

	"repro/internal/check"
	"repro/internal/telemetry"
)

// batchHistCount reads the engine batch-latency histogram's observation count
// from the process-default registry.
func batchHistCount(t *testing.T) uint64 {
	t.Helper()
	for _, m := range telemetry.Default.Snapshot() {
		if m.Name == telemetry.MetricEngineBatchNs && len(m.Labels) == 0 {
			return m.Count
		}
	}
	return 0
}

// newSpans returns the spans recorded in the default tracer since the given
// Total() watermark, oldest first.
func newSpans(t *testing.T, since uint64) []telemetry.Span {
	t.Helper()
	total := telemetry.DefaultTracer.Total()
	snap := telemetry.DefaultTracer.Snapshot()
	n := int(total - since)
	if n > len(snap) {
		t.Fatalf("tracer ring overflowed the observation window (%d new, %d retained)", n, len(snap))
	}
	return snap[len(snap)-n:]
}

// spansByTrace groups a window's spans under the traces minted by the engine
// in that window (identified by their enclosing "batch" span), ignoring
// stragglers from earlier deployments whose spans land late.
func spansByTrace(spans []telemetry.Span) map[uint64][]telemetry.Span {
	mine := make(map[uint64][]telemetry.Span)
	for _, s := range spans {
		if s.Name == "batch" {
			mine[s.Trace] = nil
		}
	}
	for _, s := range spans {
		if _, ok := mine[s.Trace]; ok {
			mine[s.Trace] = append(mine[s.Trace], s)
		}
	}
	return mine
}

// assertTraceInvariants checks the tentpole tracing property on one trace
// group: a nonzero TraceID, a single batch ID across every span, and the full
// monitor-side span vocabulary plus at least one variant-side compute span —
// i.e. the ID survived the trip through the wire header into the variant TEE
// and back.
func assertTraceInvariants(t *testing.T, trace uint64, spans []telemetry.Span) {
	t.Helper()
	if trace == 0 {
		t.Fatal("batch executed under trace 0")
	}
	names := make(map[string]int)
	batch := spans[0].Batch
	for _, s := range spans {
		if s.Batch != batch {
			t.Fatalf("trace %d spans two batches (%d and %d): %+v", trace, batch, s.Batch, spans)
		}
		names[s.Name]++
	}
	for _, want := range []string{"batch", "dispatch", "send", "gather", "forward", "variant-compute"} {
		if names[want] == 0 {
			t.Errorf("trace %d (batch %d) missing %q spans; have %v", trace, batch, want, names)
		}
	}
}

// TestTelemetryE2ELateDissent runs the async-mode late-dissent scenario and
// verifies batch-scoped tracing end to end: the straggler that dissents after
// the quorum forwarded still records its variant-compute span under the
// batch's TraceID, and the batch-latency histogram counts exactly the batches
// run.
func TestTelemetryE2ELateDissent(t *testing.T) {
	bundle, err := BuildBundle(OfflineConfig{
		ModelName:        "mnasnet",
		PartitionTargets: []int{3},
		Specs:            RealSetupSpecs(),
	})
	if err != nil {
		t.Fatal(err)
	}
	plans := []PartitionPlan{
		{Variants: []string{"ort-cpu"}},
		{Variants: []string{"ort-cpu", "ort-altep", "tvm-graph"}},
		{Variants: []string{"ort-cpu"}},
	}
	const dissenterID = "p1-ort-altep-1"
	inj := Injection{Class: FaultCorruptAfterQuorum, TargetOp: "Add", Latency: 150 * time.Millisecond, After: 1}

	spanMark := telemetry.DefaultTracer.Total()
	histBefore := batchHistCount(t)

	dep, err := Deploy(bundle, 0, DeployConfig{
		MVX: &MVXConfig{
			Plans:    plans,
			Async:    true,
			Response: ReportOnly,
			// Default unanimous vote: the quorum forwards, then the corrupt
			// straggler fails the retroactive unanimity check.
			Criteria: []Criterion{{Metric: AllClose, RTol: 5e-2, ATol: 1e-3}},
		},
		Encrypt:        true,
		VariantOptions: ArmVariantIDs(inj, dissenterID),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer dep.Close()

	in := NewTensor(1, 3, 32, 32)
	rng := rand.New(rand.NewPCG(11, 11))
	for i := range in.Data() {
		in.Data()[i] = float32(rng.NormFloat64())
	}
	feed := map[string]*Tensor{"image": in}

	const batches = 2
	for i := 0; i < batches; i++ { // batch 1 healthy, batch 2 arms the fault
		if res, err := dep.Infer(feed); err != nil || res.Err != nil {
			t.Fatalf("batch %d: %v / %v", i+1, err, res.Err)
		}
	}
	// The dissent is detected retroactively at gather close; wait for it so
	// the vote span and the straggler's compute span are both recorded.
	waitForEvent(t, dep, EventLateDissent, dissenterID)

	groups := spansByTrace(newSpans(t, spanMark))
	if len(groups) != batches {
		t.Fatalf("traces minted = %d, want %d", len(groups), batches)
	}
	var dissenterSpans int
	for trace, spans := range groups {
		assertTraceInvariants(t, trace, spans)
		for _, s := range spans {
			if s.Name == "variant-compute" && s.Variant == dissenterID {
				dissenterSpans++
			}
		}
	}
	if dissenterSpans != batches {
		t.Errorf("late-dissenting straggler recorded %d compute spans under batch traces, want %d", dissenterSpans, batches)
	}

	if got := batchHistCount(t) - histBefore; got != batches {
		t.Fatalf("batch-latency histogram counted %d batches, want %d", got, batches)
	}
}

// TestTelemetryE2EHotReplacement runs the straggler-hang + hot-replacement
// scenario and verifies the spare promoted into the dead slot serves under
// the same per-batch TraceIDs as everyone else.
func TestTelemetryE2EHotReplacement(t *testing.T) {
	bundle, err := BuildBundle(OfflineConfig{
		ModelName:        "mnasnet",
		PartitionTargets: []int{3},
		Specs:            RealSetupSpecs(),
	})
	if err != nil {
		t.Fatal(err)
	}
	plans := []PartitionPlan{
		{Variants: []string{"ort-cpu"}},
		{Variants: []string{"ort-cpu", "ort-altep", "tvm-graph"}},
		{Variants: []string{"ort-cpu"}},
	}
	spares := []PartitionPlan{{}, {Variants: []string{"ort-altep"}}, {}}
	const (
		hungID  = "p1-ort-altep-1"
		spareID = "spare-p1-ort-altep-0"
	)
	inj := Injection{Class: FaultHang, TargetOp: "Add", Latency: 1200 * time.Millisecond, After: 1}

	spanMark := telemetry.DefaultTracer.Total()
	histBefore := batchHistCount(t)

	dep, err := Deploy(bundle, 0, DeployConfig{
		MVX: &MVXConfig{
			Plans:          plans,
			Spares:         spares,
			Response:       Recover,
			Vote:           check.Majority,
			StageTimeoutMS: 300,
			Criteria:       []Criterion{{Metric: AllClose, RTol: 5e-2, ATol: 1e-3}},
		},
		Encrypt:        true,
		VariantOptions: ArmVariantIDs(inj, hungID),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer dep.Close()

	in := NewTensor(1, 3, 32, 32)
	rng := rand.New(rand.NewPCG(13, 13))
	for i := range in.Data() {
		in.Data()[i] = float32(rng.NormFloat64())
	}
	feed := map[string]*Tensor{"image": in}

	// Batch 1 healthy; batch 2 hangs the armed variant, expires the deadline
	// and triggers the asynchronous hot replacement.
	batches := 2
	for i := 0; i < batches; i++ {
		if res, err := dep.Infer(feed); err != nil || res.Err != nil {
			t.Fatalf("batch %d: %v / %v", i+1, err, res.Err)
		}
	}
	waitForEvent(t, dep, EventVariantReplaced, spareID)

	// Two more batches served by the promoted spare.
	for i := 0; i < 2; i++ {
		if res, err := dep.Infer(feed); err != nil || res.Err != nil {
			t.Fatalf("post-replacement batch %d: %v / %v", i, err, res.Err)
		}
		batches++
	}
	// Let the hung variant wake up (≤ 2 nodes × Latency past the dispatch)
	// before sampling, so its late compute span lands inside this window
	// rather than polluting a later test's.
	time.Sleep(2*inj.Latency + 200*time.Millisecond)

	groups := spansByTrace(newSpans(t, spanMark))
	if len(groups) != batches {
		t.Fatalf("traces minted = %d, want %d", len(groups), batches)
	}
	spareTraces := make(map[uint64]bool)
	for trace, spans := range groups {
		assertTraceInvariants(t, trace, spans)
		for _, s := range spans {
			if s.Name == "variant-compute" && s.Variant == spareID {
				spareTraces[trace] = true
			}
		}
	}
	if len(spareTraces) < 2 {
		t.Errorf("hot-replaced spare served %d traced batches, want >= 2", len(spareTraces))
	}

	if got := batchHistCount(t) - histBefore; got != uint64(batches) {
		t.Fatalf("batch-latency histogram counted %d batches, want %d", got, batches)
	}
}
