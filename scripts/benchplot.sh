#!/bin/sh
# Render the bench-trend branch (scripts/benchtrend.sh's append-only history
# of per-commit BENCH json) as SVG ns/op trend curves, one panel per gated
# hot-path series.
#
#   ./scripts/benchplot.sh                  # -> bench-trend.svg
#   ./scripts/benchplot.sh out.svg -all     # every series, custom path
#
# Read-only plumbing: blobs are extracted with cat-file into a temp dir; the
# working tree and branches are never touched. Extra args after the output
# path are passed through to the plotter (e.g. -all).
set -eu

cd "$(dirname "$0")/.."

BRANCH=refs/heads/bench-trend
OUT="${1:-bench-trend.svg}"
[ $# -gt 0 ] && shift

if ! git rev-parse -q --verify "$BRANCH" >/dev/null; then
    echo "benchplot: no bench-trend branch — run scripts/benchtrend.sh (or fetch origin bench-trend) first" >&2
    exit 2
fi

TMP=$(mktemp -d)
trap 'rm -rf "$TMP"' EXIT

# Flat tree of <utc-stamp>-<shortsha>.json: lexical order is chronological.
git ls-tree --name-only "$BRANCH" | sort | while read -r name; do
    git cat-file blob "$BRANCH:$name" > "$TMP/$name"
done

go run ./scripts/benchplot -o "$OUT" "$@" "$TMP"/*.json
