#!/bin/sh
# Nightly figure-sweep drift gate: regenerate every EXPERIMENTS.md figure and
# table (`mvtee-bench -all`) and diff the output against the committed
# archive bench_all_sim.txt. The sim numbers are calibrated from real
# executions on the running host, so the comparison is structural: every
# numeric token is normalized to `#` on both sides before diffing. What the
# gate catches is a sweep that silently lost a section, a model, a config row
# or a column — the archive claiming results the code no longer produces.
#
#   ./scripts/sweepcheck.sh              # compare, unified diff on drift
#   SWEEPCHECK_UPDATE=1 ./scripts/sweepcheck.sh   # refresh the archive
set -eu

baseline="bench_all_sim.txt"
[ -f "$baseline" ] || { echo "sweepcheck: $baseline missing (run from the repo root)" >&2; exit 2; }

out=$(mktemp) na=$(mktemp) nb=$(mktemp)
trap 'rm -f "$out" "$na" "$nb"' EXIT

echo "sweepcheck: regenerating figure sweeps (mvtee-bench -all)..." >&2
go run ./cmd/mvtee-bench -all > "$out"

if [ "${SWEEPCHECK_UPDATE:-0}" = "1" ]; then
	cp "$out" "$baseline"
	echo "sweepcheck: refreshed $baseline"
	exit 0
fi

# Normalize every numeric token (integers, decimals, exponents, signs) to
# `#` and collapse whitespace runs — column padding tracks number widths, so
# raw spacing would re-introduce the numbers the first pass removed. Table 1
# dissenter membership depends on which diversified variant happens to
# diverge first, so the bracket contents normalize away too (the structural
# claim is the detected/recovered verdict, not who dissented). Applied
# identically to both sides, so only structure can differ.
normalize() {
	sed -E 's/dissenters \[[^]]*\]/dissenters [...]/g
		s/-?[0-9]+(\.[0-9]+)?(e[+-]?[0-9]+)?/#/g
		s/[[:space:]]+/ /g
		s/ $//' "$1"
}
normalize "$baseline" > "$na"
normalize "$out" > "$nb"

if ! diff -u "$na" "$nb"; then
	echo "sweepcheck: FAIL — sweep structure drifted from $baseline" >&2
	echo "sweepcheck: if the change is intentional, refresh with SWEEPCHECK_UPDATE=1" >&2
	exit 1
fi
echo "sweepcheck: OK — regenerated sweeps match $baseline structurally"
