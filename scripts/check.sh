#!/bin/sh
# Tier-1 gate: everything here must pass before a change lands.
# Run from the repository root:  ./scripts/check.sh
set -eux

go vet ./...
go build ./...
go test -race ./...

# The robustness layer (straggler deadlines, degradation ladder, hot
# replacement, channel retry), the lock-free telemetry core, the adaptive
# control plane, the cluster router (failover, digest voting) and the
# transcript recorder (hot-path posts racing the worker and audit reads) are
# concurrency-heavy: run their packages twice under the race detector to
# shake out interleavings a single pass misses.
go test -race -count=2 ./internal/monitor ./internal/workpool ./internal/securechan ./internal/telemetry ./internal/control ./internal/cluster ./internal/transcript

# Observability overhead pin: the fully instrumented warm dispatch→gather
# path must not allocate more than the same path with telemetry disabled.
go test -run='TestWarmAllocsPin' -count=1 ./internal/monitor

# Short fuzz smoke over the attacker-facing parsers: the pre-auth record
# framing, the tagged wire decoder, the public binary request decoder on
# the serving front door, and the audit-plane proof and leaf decoders
# (audit documents cross trust boundaries from an untrusted serving host).
# A few seconds each catches gross regressions; longer campaigns run
# out-of-band (weekly long-fuzz in CI; crashers recycle into testdata/fuzz/
# via scripts/fuzzrecycle.sh).
go test -run='^$' -fuzz=FuzzFrame -fuzztime=5s ./internal/securechan
go test -run='^$' -fuzz=FuzzWireUnmarshal -fuzztime=5s ./internal/wire
go test -run='^$' -fuzz=FuzzPublicRequest -fuzztime=5s ./internal/wire
go test -run='^$' -fuzz=FuzzTranscriptProof -fuzztime=5s ./internal/transcript
go test -run='^$' -fuzz=FuzzTranscriptLeaf -fuzztime=5s ./internal/transcript

# Audit round-trip smoke: opt-in because it boots the full serving daemon
# and replays a sampled batch (about a minute). CHECK_AUDIT=1 runs it.
if [ "${CHECK_AUDIT:-0}" = "1" ]; then
	./scripts/auditsmoke.sh
fi

# Advisory perf gate: opt-in because the full microbenchmark suite takes
# minutes. CHECK_BENCH=1 ./scripts/check.sh measures the working tree and
# diffs it against the newest committed BENCH_*.json baseline; a >15%
# regression on a gated hot-path benchmark reports but does not block.
if [ "${CHECK_BENCH:-0}" = "1" ]; then
	./scripts/benchgate.sh || echo "check.sh: benchgate reported a regression (advisory, non-blocking)" >&2
fi
