#!/bin/sh
# Tier-1 gate: everything here must pass before a change lands.
# Run from the repository root:  ./scripts/check.sh
set -eux

go vet ./...
go build ./...
go test -race ./...

# The robustness layer (straggler deadlines, degradation ladder, hot
# replacement, channel retry) is concurrency-heavy: run its packages twice
# under the race detector to shake out interleavings a single pass misses.
go test -race -count=2 ./internal/monitor ./internal/workpool ./internal/securechan
