// Benchplot renders ns/op trend curves from a sequence of BENCH_<rev>.json
// perf reports — typically the flat file history on the bench-trend branch —
// as a standalone SVG: one panel per benchmark series, reports in the order
// given (bench-trend filenames sort chronologically, so shell globbing is
// enough). By default only the regression-gated hot-path families are
// plotted; -all renders every series present in at least one report.
//
//	go run ./scripts/benchplot -o bench-trend.svg trend/*.json
//
// Stdlib + internal/bench only: CI renders the artifact with no extra deps.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/bench"
)

type point struct {
	x  int // report index in chronological order
	ns float64
}

func gated(name string) bool {
	for _, p := range bench.GatedPrefixes {
		if strings.HasPrefix(name, p) {
			return true
		}
	}
	return false
}

func main() {
	out := flag.String("o", "bench-trend.svg", "output SVG path")
	all := flag.Bool("all", false, "plot every series, not just the gated hot-path families")
	flag.Parse()
	reports := flag.Args()
	if len(reports) == 0 {
		fmt.Fprintln(os.Stderr, "benchplot: no report files given")
		os.Exit(2)
	}

	series := map[string][]point{}
	labels := make([]string, 0, len(reports))
	for i, path := range reports {
		rep, err := bench.ReadPerfJSON(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchplot: %v\n", err)
			os.Exit(1)
		}
		label := rep.Rev
		if base := filepath.Base(path); strings.HasPrefix(base, "2") {
			// bench-trend names (<utc-stamp>-<shortsha>.json) carry more
			// identity than the rev label, which is "trend" for every run.
			label = strings.TrimSuffix(base, ".json")
		}
		labels = append(labels, label)
		for _, r := range rep.Results {
			if r.NsPerOp <= 0 || (!*all && !gated(r.Name)) {
				continue
			}
			series[r.Name] = append(series[r.Name], point{x: i, ns: r.NsPerOp})
		}
	}
	names := make([]string, 0, len(series))
	for n := range series {
		names = append(names, n)
	}
	sort.Strings(names)
	if len(names) == 0 {
		fmt.Fprintln(os.Stderr, "benchplot: no plottable series in the given reports")
		os.Exit(1)
	}

	if err := os.WriteFile(*out, []byte(render(names, series, labels)), 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "benchplot: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("benchplot: %s (%d series over %d reports)\n", *out, len(names), len(reports))
}

// Panel geometry: small multiples in two columns, fixed plot box per series.
const (
	panelW, panelH = 460, 140
	plotL, plotR   = 10, 330 // polyline x-range within a panel
	plotT, plotB   = 26, 122 // polyline y-range within a panel
	columns        = 2
)

func render(names []string, series map[string][]point, labels []string) string {
	rows := (len(names) + columns - 1) / columns
	width, height := columns*panelW, rows*panelH+18
	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" font-family="monospace" font-size="11">`+"\n", width, height)
	b.WriteString(`<rect width="100%" height="100%" fill="white"/>` + "\n")

	span := len(labels) - 1
	if span < 1 {
		span = 1
	}
	xpos := func(i int) float64 {
		return plotL + float64(i)/float64(span)*(plotR-plotL)
	}
	for idx, name := range names {
		ox := (idx % columns) * panelW
		oy := (idx / columns) * panelH
		pts := series[name]
		lo, hi := pts[0].ns, pts[0].ns
		for _, p := range pts {
			lo, hi = min(lo, p.ns), max(hi, p.ns)
		}
		if hi == lo { // flat series still needs a non-degenerate scale
			hi = lo + 1
		}
		pad := 0.05 * (hi - lo)
		lo, hi = lo-pad, hi+pad
		ypos := func(ns float64) float64 {
			return plotB - (ns-lo)/(hi-lo)*(plotB-plotT)
		}

		fmt.Fprintf(&b, `<g transform="translate(%d,%d)">`+"\n", ox, oy)
		fmt.Fprintf(&b, `<text x="%d" y="14" font-weight="bold">%s</text>`+"\n", plotL, xmlEscape(name))
		fmt.Fprintf(&b, `<rect x="%d" y="%d" width="%d" height="%d" fill="none" stroke="#ccc"/>`+"\n",
			plotL, plotT, plotR-plotL, plotB-plotT)
		coords := make([]string, len(pts))
		for i, p := range pts {
			coords[i] = fmt.Sprintf("%.1f,%.1f", xpos(p.x), ypos(p.ns))
		}
		if len(pts) == 1 {
			fmt.Fprintf(&b, `<circle cx="%.1f" cy="%.1f" r="3" fill="#1f77b4"/>`+"\n",
				xpos(pts[0].x), ypos(pts[0].ns))
		} else {
			fmt.Fprintf(&b, `<polyline points="%s" fill="none" stroke="#1f77b4" stroke-width="1.5"/>`+"\n",
				strings.Join(coords, " "))
		}
		last := pts[len(pts)-1]
		fmt.Fprintf(&b, `<text x="%d" y="%d" fill="#555">%s</text>`+"\n", plotR+8, plotT+8, fmtNs(hi-pad))
		fmt.Fprintf(&b, `<text x="%d" y="%d" fill="#555">%s</text>`+"\n", plotR+8, plotB, fmtNs(lo+pad))
		fmt.Fprintf(&b, `<text x="%d" y="%d" fill="#1f77b4">now %s</text>`+"\n",
			plotR+8, (plotT+plotB)/2+4, fmtNs(last.ns))
		b.WriteString("</g>\n")
	}
	// One shared x-axis caption: first and last report identity.
	fmt.Fprintf(&b, `<text x="%d" y="%d" fill="#555">%s → %s</text>`+"\n",
		plotL, height-5, xmlEscape(labels[0]), xmlEscape(labels[len(labels)-1]))
	b.WriteString("</svg>\n")
	return b.String()
}

func fmtNs(ns float64) string {
	switch {
	case ns >= 1e9:
		return fmt.Sprintf("%.2fs", ns/1e9)
	case ns >= 1e6:
		return fmt.Sprintf("%.2fms", ns/1e6)
	case ns >= 1e3:
		return fmt.Sprintf("%.1fµs", ns/1e3)
	default:
		return fmt.Sprintf("%.0fns", ns)
	}
}

func xmlEscape(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")
	return r.Replace(s)
}
