#!/bin/sh
# Recycle fuzz crashers into the repository. When a `go test -fuzz` campaign
# fails, the toolchain minimizes the input and writes it to the package's
# testdata/fuzz/<Target>/ directory in the source tree — from then on plain
# `go test` replays it as a regression seed. This script finds those freshly
# written inputs, commits them to a dedicated branch and (in CI) pushes it,
# so a weekly long-fuzz hit becomes a reviewable one-file PR instead of an
# artifact someone has to remember to download.
#
#   ./scripts/fuzzrecycle.sh          # commit new crashers to fuzz-crashers
#   FUZZ_PUSH=1 ./scripts/fuzzrecycle.sh   # and push the branch (CI)
set -eu

branch="${FUZZ_BRANCH:-fuzz-crashers}"

# Untracked files under any committed fuzz corpus directory: exactly what a
# failed campaign leaves behind (committed seeds are tracked; -uall expands
# directories so new targets' first crashers are found too).
new=$(git status --porcelain -uall -- 'internal/*/testdata/fuzz/*' | awk '$1 == "??" {print $2}')
if [ -z "$new" ]; then
	echo "fuzzrecycle: no new crashers to recycle"
	exit 0
fi
echo "fuzzrecycle: new crash inputs:"
echo "$new" | sed 's/^/  /'

# Build the recycle commit on its own branch off the current HEAD. CI runners
# are ephemeral checkouts, so switching branches is safe; locally the
# checkout back restores where you were.
orig=$(git rev-parse --abbrev-ref HEAD)
git checkout -B "$branch"
echo "$new" | while IFS= read -r f; do git add -- "$f"; done
git -c user.name="${GIT_AUTHOR_NAME:-fuzz-recycle}" \
	-c user.email="${GIT_AUTHOR_EMAIL:-fuzz-recycle@localhost}" \
	commit -m "test: recycle fuzz crashers as regression seeds

Minimized failing inputs from a long-fuzz campaign, committed under
testdata/fuzz/ so every future go test run replays them."

if [ "${FUZZ_PUSH:-0}" = "1" ]; then
	git push --force-with-lease origin "HEAD:refs/heads/$branch" ||
		git push -f origin "HEAD:refs/heads/$branch"
fi
if [ "$orig" != "HEAD" ] && [ "$orig" != "$branch" ]; then
	git checkout "$orig"
fi
echo "fuzzrecycle: crashers committed on branch $branch"
