#!/bin/sh
# Audit round-trip smoke: boot the serving daemon, push an inference burst,
# then run the offline auditor against the live GET /audit endpoint — signed
# head verification, consistency from a pinned head across a second burst,
# and a bitwise replay of a sampled batch on a locally rebuilt engine. Ends
# with a tamper check: a forged pinned head must make the auditor fail.
# This is the end-to-end path unit tests can't cover (real HTTP, real
# process, real bundle rebuild), sized to run in about a minute.
#
#   ./scripts/auditsmoke.sh
# Ports override: AUDITSMOKE_PORT / AUDITSMOKE_TPORT.
set -eu

port="${AUDITSMOKE_PORT:-18091}"
tport="${AUDITSMOKE_TPORT:-19091}"
addr="127.0.0.1:$port"
taddr="127.0.0.1:$tport"

work=$(mktemp -d)
pid=""
cleanup() {
	[ -n "$pid" ] && kill "$pid" 2>/dev/null || true
	rm -rf "$work"
}
trap cleanup EXIT INT TERM

echo "auditsmoke: building mvtee-serve and mvtee-tool..." >&2
go build -o "$work/mvtee-serve" ./cmd/mvtee-serve
go build -o "$work/mvtee-tool" ./cmd/mvtee-tool

"$work/mvtee-serve" -listen "$addr" -telemetry-addr "$taddr" > "$work/serve.log" 2>&1 &
pid=$!

# Wait for the serving tier to accept inferences (bundle build takes a few
# seconds on slow hosts).
i=0
until "$work/mvtee-tool" infer -addr "http://$addr" -binary -input image=1x3x32x32 \
	> /dev/null 2>&1; do
	i=$((i + 1))
	if [ "$i" -ge 120 ]; then
		echo "auditsmoke: serve did not come up; log follows" >&2
		cat "$work/serve.log" >&2
		exit 1
	fi
	if ! kill -0 "$pid" 2>/dev/null; then
		echo "auditsmoke: serve exited early; log follows" >&2
		cat "$work/serve.log" >&2
		exit 1
	fi
	sleep 0.5
done

echo "auditsmoke: burst 1 (20 inferences)..." >&2
n=0
while [ "$n" -lt 20 ]; do
	"$work/mvtee-tool" infer -addr "http://$addr" -binary -input image=1x3x32x32 > /dev/null
	n=$((n + 1))
done

echo "auditsmoke: verify (signed head + sampled-batch replay)..." >&2
"$work/mvtee-tool" verify -addr "http://$taddr" -head-file "$work/head.json"

echo "auditsmoke: burst 2 (5 inferences) + consistency from pinned head..." >&2
n=0
while [ "$n" -lt 5 ]; do
	"$work/mvtee-tool" infer -addr "http://$addr" -binary -input image=1x3x32x32 > /dev/null
	n=$((n + 1))
done
"$work/mvtee-tool" verify -addr "http://$taddr" -head-file "$work/head.json" -replay=false

echo "auditsmoke: tamper check (forged pinned head must be rejected)..." >&2
# Flip the pinned head's root to a fabricated value: the server can no longer
# produce a consistency proof into it, so the auditor must fail.
sed 's/"root": "[0-9a-f]\{8\}/"root": "deadbeef/' "$work/head.json" > "$work/forged.json"
if cmp -s "$work/head.json" "$work/forged.json"; then
	echo "auditsmoke: forgery sed did not change the head file" >&2
	exit 1
fi
if "$work/mvtee-tool" verify -addr "http://$taddr" -head-file "$work/forged.json" -replay=false \
	> "$work/forged.out" 2>&1; then
	echo "auditsmoke: FAIL — auditor accepted a forged pinned head" >&2
	cat "$work/forged.out" >&2
	exit 1
fi
echo "auditsmoke: forged head rejected, as required" >&2

echo "auditsmoke: OK"
