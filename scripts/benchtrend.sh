#!/bin/sh
# Append one benchmark report to the local `bench-trend` branch — an
# append-only history of per-commit BENCH json, so performance is plottable
# over time instead of only pairwise-diffed by benchgate.sh.
#
#   ./scripts/benchtrend.sh                 # measure the tree, then append
#   ./scripts/benchtrend.sh BENCH_pr8.json  # append an existing report
#
# Plumbing only (hash-object/mktree/commit-tree/update-ref): the working tree
# and the current branch are never touched. The branch's tree is flat, one
# <utc-stamp>-<shortsha>.json per appended report.
set -eu

cd "$(dirname "$0")/.."

BRANCH=refs/heads/bench-trend
REPORT="${1:-}"
if [ -z "$REPORT" ]; then
    go run ./cmd/mvtee-bench -perf -rev trend -note "bench-trend run" >&2
    REPORT=BENCH_trend.json
    trap 'rm -f BENCH_trend.json' EXIT
fi
if [ ! -f "$REPORT" ]; then
    echo "benchtrend: report $REPORT not found" >&2
    exit 2
fi

SHA=$(git rev-parse --short HEAD)
NAME="$(date -u +%Y%m%dT%H%M%SZ)-$SHA.json"
BLOB=$(git hash-object -w "$REPORT")

PARENT=""
ENTRIES=""
if git rev-parse -q --verify "$BRANCH" >/dev/null; then
    PARENT=$(git rev-parse "$BRANCH")
    ENTRIES=$(git ls-tree "$BRANCH" | grep -v "	$NAME\$" || true)
fi

TREE=$(
    {
        if [ -n "$ENTRIES" ]; then printf '%s\n' "$ENTRIES"; fi
        printf '100644 blob %s\t%s\n' "$BLOB" "$NAME"
    } | git mktree
)

if [ -n "$PARENT" ]; then
    COMMIT=$(git commit-tree "$TREE" -p "$PARENT" -m "bench: $NAME")
else
    COMMIT=$(git commit-tree "$TREE" -m "bench: $NAME")
fi
git update-ref "$BRANCH" "$COMMIT"
echo "benchtrend: appended $NAME to bench-trend ($(git rev-parse --short "$BRANCH"))"
