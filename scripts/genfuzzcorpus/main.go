// Command genfuzzcorpus regenerates the committed seed corpora under
// internal/<pkg>/testdata/fuzz/. The committed files extend the in-code
// f.Add seeds with structured near-valid inputs (bit flips on real
// encodings, boundary lengths, hostile tensor headers) so `go test` and the
// CI fuzz smoke start from interesting coverage instead of rediscovering it
// every run. Deterministic: re-running produces identical files.
//
//	go run ./scripts/genfuzzcorpus
package main

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"log"
	"math"
	"os"
	"path/filepath"
	"strconv"

	"repro/internal/check"
	"repro/internal/securechan"
	"repro/internal/tensor"
	"repro/internal/transcript"
	"repro/internal/wire"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("genfuzzcorpus: ")
	root := "."
	if len(os.Args) > 1 {
		root = os.Args[1]
	}
	write(filepath.Join(root, "internal/securechan/testdata/fuzz/FuzzFrame"), frameSeeds())
	write(filepath.Join(root, "internal/wire/testdata/fuzz/FuzzWireUnmarshal"), wireSeeds())
	write(filepath.Join(root, "internal/wire/testdata/fuzz/FuzzPublicRequest"), publicSeeds())
	write(filepath.Join(root, "internal/transcript/testdata/fuzz/FuzzTranscriptProof"), proofSeeds())
	write(filepath.Join(root, "internal/transcript/testdata/fuzz/FuzzTranscriptLeaf"), leafSeeds())
}

// write emits each seed in the `go test fuzz v1` corpus-file format.
func write(dir string, seeds map[string][]byte) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		log.Fatal(err)
	}
	for name, data := range seeds {
		body := "go test fuzz v1\n[]byte(" + strconv.Quote(string(data)) + ")\n"
		path := filepath.Join(dir, name)
		if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
			log.Fatal(err)
		}
	}
	log.Printf("wrote %d seeds to %s", len(seeds), dir)
}

func frame(payload []byte) []byte {
	out := make([]byte, 4+len(payload))
	binary.BigEndian.PutUint32(out, uint32(len(payload)))
	copy(out[4:], payload)
	return out
}

// frameSeeds targets the pre-auth record framing: length-prefix boundaries
// and bodies shaped like sealed records (8-byte sequence + ciphertext+tag).
func frameSeeds() map[string][]byte {
	sealed := make([]byte, 8+32+16) // seq + ciphertext + GCM tag, all zero
	binary.BigEndian.PutUint64(sealed, 1)
	seqOnly := make([]byte, 8)
	binary.BigEndian.PutUint64(seqOnly, math.MaxUint64)
	lenOverCap := make([]byte, 4)
	binary.BigEndian.PutUint32(lenOverCap, uint32(securechan.MaxFrameSize)+1)
	lenAtCap := make([]byte, 4)
	binary.BigEndian.PutUint32(lenAtCap, uint32(securechan.MaxFrameSize))
	lenMax := make([]byte, 4)
	binary.BigEndian.PutUint32(lenMax, math.MaxUint32)
	double := append(frame([]byte("first")), frame([]byte("second"))...)

	return map[string][]byte{
		"seed-empty":           {},
		"seed-short-prefix":    {0, 0},
		"seed-zero-len":        frame(nil),
		"seed-one-byte":        frame([]byte{0xff}),
		"seed-sealed-shape":    frame(sealed),
		"seed-seq-only":        frame(seqOnly),
		"seed-len-over-cap":    lenOverCap,
		"seed-len-at-cap":      lenAtCap, // body absent: must fail as truncated, not allocate 1 MiB eagerly-forever
		"seed-len-max":         lenMax,
		"seed-truncated-body":  frame([]byte("0123456789abcdef"))[:12],
		"seed-two-frames":      double,
		"seed-high-bit-len":    {0x80, 0x00, 0x00, 0x01, 0x00},
		"seed-ascii-noise":     []byte("GET / HTTP/1.1\r\nHost: x\r\n\r\n"),
		"seed-tag-sized-zeros": frame(make([]byte, 8+16)),
	}
}

func mustMarshal(m wire.Msg) []byte {
	b, err := wire.Marshal(m)
	if err != nil {
		panic(err)
	}
	return b
}

// wireSeeds targets the tagged-message decoder: every message type, hostile
// tensor headers, and single-bit corruptions of a valid batch encoding.
func wireSeeds() map[string][]byte {
	batch := mustMarshal(&wire.Batch{
		ID:    0xfeed,
		Trace: 0xbeef,
		Tensors: map[string]*tensor.Tensor{
			"image": tensor.MustFromSlice([]float32{0, -0, 1.5, -2.25, 3e38, -3e38}, 2, 3),
			"mask":  tensor.MustFromSlice([]float32{1}, 1, 1),
		},
	})
	nan := mustMarshal(&wire.Batch{ID: 1, Tensors: map[string]*tensor.Tensor{
		"x": tensor.MustFromSlice([]float32{
			float32(math.NaN()), float32(math.Inf(1)), float32(math.Inf(-1)), 0,
		}, 4),
	}})
	seeds := map[string][]byte{
		"seed-batch":         batch,
		"seed-batch-nan-inf": nan,
		"seed-result-err": mustMarshal(&wire.Result{ID: 2, VariantID: "v-θ", Err: "segfault at 0x0",
			Tensors: map[string]*tensor.Tensor{"y": tensor.MustFromSlice([]float32{42}, 1)}}),
		"seed-result-empty": mustMarshal(&wire.Result{ID: 3, VariantID: "v0"}),
		"seed-ack":          mustMarshal(&wire.Ack{Detail: "ready"}),
		"seed-bound":        mustMarshal(&wire.Bound{VariantID: "spare-1", Resume: 1 << 40}),
		"seed-shutdown":     mustMarshal(&wire.Shutdown{}),
		"seed-empty":        {},
		"seed-unknown-tag":  {0xee, 1, 2, 3},
		"seed-batch-trunc":  batch[:len(batch)/2],
	}
	// Single-bit corruptions across the valid batch encoding: header, tensor
	// name, shape words and payload each get one flip.
	for i, off := range []int{0, 1, len(batch) / 4, len(batch) / 2, len(batch) - 1} {
		c := append([]byte(nil), batch...)
		c[off%len(c)] ^= 1 << (i % 8)
		seeds[fmt.Sprintf("seed-batch-bitflip-%d", i)] = c
	}
	return seeds
}

// proofSeeds targets the audit-plane proof decoder: real proofs from a
// 33-leaf tree (a size that exercises both perfect and ragged subtrees),
// boundary path counts, lying length fields, and bit flips across a valid
// inclusion encoding.
func proofSeeds() map[string][]byte {
	l := transcript.NewLog()
	for i := 0; i < 33; i++ {
		l.Append(transcript.LeafHash([]byte{byte(i)}))
	}
	mustProof := func(p *transcript.Proof, err error) []byte {
		if err != nil {
			panic(err)
		}
		b, err := p.Marshal()
		if err != nil {
			panic(err)
		}
		return b
	}
	incl := mustProof(l.InclusionProof(7, 33))
	inclLast := mustProof(l.InclusionProof(32, 33))
	cons := mustProof(l.ConsistencyProof(16, 33))
	consEqual := mustProof(l.ConsistencyProof(33, 33)) // empty path

	// Header with a path count over the cap and no path behind it: must be
	// refused before any allocation.
	overCap := append([]byte(nil), incl[:24]...)
	binary.LittleEndian.PutUint16(overCap[22:], transcript.MaxProofLen+1)
	// Path count at the cap with a matching 4 KiB of zero path.
	atCap := append([]byte(nil), incl[:24]...)
	binary.LittleEndian.PutUint16(atCap[22:], transcript.MaxProofLen)
	atCap = append(atCap, make([]byte, 32*transcript.MaxProofLen)...)
	// Count says fewer entries than the bytes carry: trailing bytes.
	trailing := append(append([]byte(nil), incl...), 0xaa)
	// Inclusion index outside the claimed tree size.
	badIndex := append([]byte(nil), incl...)
	binary.LittleEndian.PutUint64(badIndex[6:], 33) // index == size
	// Consistency sizes inverted.
	inverted := append([]byte(nil), cons...)
	binary.LittleEndian.PutUint64(inverted[6:], 34)

	seeds := map[string][]byte{
		"seed-inclusion":        incl,
		"seed-inclusion-last":   inclLast,
		"seed-consistency":      cons,
		"seed-consistency-noop": consEqual,
		"seed-path-over-cap":    overCap,
		"seed-path-at-cap":      atCap,
		"seed-trailing":         trailing,
		"seed-bad-index":        badIndex,
		"seed-sizes-inverted":   inverted,
		"seed-empty":            {},
		"seed-magic-only":       []byte("MVTP"),
		"seed-wrong-version":    []byte("MVTP\x02\x01"),
		"seed-bad-kind":         {'M', 'V', 'T', 'P', 1, 3},
		"seed-header-short":     incl[:proofTrim(incl)],
	}
	for i, off := range []int{4, 5, 6, 22, len(incl) - 1} {
		c := append([]byte(nil), incl...)
		c[off%len(c)] ^= 1 << (i % 8)
		seeds[fmt.Sprintf("seed-bitflip-%d", i)] = c
	}
	return seeds
}

// proofTrim picks a truncation point inside the fixed header.
func proofTrim(b []byte) int {
	if len(b) < 23 {
		return len(b)
	}
	return 23
}

// leafSeeds targets the leaf decoder with a fully populated leaf (checkpoints,
// dissenting votes, replica IDs), section-count lies and truncations.
func leafSeeds() map[string][]byte {
	full := &transcript.Leaf{
		Trace:       0xfeedbeef,
		Batch:       42,
		Input:       check.Digest{1, 2, 3},
		Checkpoints: []check.Digest{{4}, {5}, {6}},
		Votes: []transcript.Vote{
			{Replica: "replica-a", Sum: check.Digest{7}, Agree: true},
			{Replica: "replica-β", Sum: check.Digest{8}, Agree: false},
		},
		Output:  check.Digest{9, 10},
		Rung:    2,
		Replica: "leader-0",
	}
	valid, err := full.Marshal()
	if err != nil {
		panic(err)
	}
	minimal, err := (&transcript.Leaf{}).Marshal()
	if err != nil {
		panic(err)
	}

	// Checkpoint count over the cap with no section behind it.
	overCap := append([]byte(nil), valid[:55]...)
	binary.LittleEndian.PutUint16(overCap[53:], transcript.MaxLeafCheckpoints+1)
	// Vote replica length byte pointing past the end of the buffer.
	lyingStr := append([]byte(nil), valid...)
	lyingStr[len(lyingStr)-len("leader-0")-1] = 0xff
	trailing := append(append([]byte(nil), valid...), 0)

	seeds := map[string][]byte{
		"seed-valid":         valid,
		"seed-minimal":       minimal,
		"seed-count-over":    overCap,
		"seed-lying-replica": lyingStr,
		"seed-trailing":      trailing,
		"seed-empty":         {},
		"seed-magic-only":    []byte("MVTL"),
		"seed-wrong-version": []byte("MVTL\x02"),
		"seed-half":          valid[:len(valid)/2],
	}
	for i, off := range []int{5, 21, 53, len(valid) / 2, len(valid) - 2} {
		c := append([]byte(nil), valid...)
		c[off%len(c)] ^= 1 << (i % 8)
		seeds[fmt.Sprintf("seed-bitflip-%d", i)] = c
	}
	return seeds
}

func mustEncodeRequest(inputs map[string]*tensor.Tensor) []byte {
	var b bytes.Buffer
	if err := wire.EncodeRequest(&b, inputs); err != nil {
		panic(err)
	}
	return b.Bytes()
}

// publicSeeds targets the public binary request decoder — the pre-auth
// parser internet bytes reach on the serving front door: valid bodies with
// hostile float payloads, boundary shapes, lying length fields, and bit
// flips across every region of a valid encoding.
func publicSeeds() map[string][]byte {
	valid := mustEncodeRequest(map[string]*tensor.Tensor{
		"image": tensor.MustFromSlice([]float32{0, -0, 1.5, -2.25, 3e38, -3e38}, 2, 3),
		"mask":  tensor.MustFromSlice([]float32{1}, 1, 1),
	})
	nan := mustEncodeRequest(map[string]*tensor.Tensor{
		"x": tensor.MustFromSlice([]float32{
			float32(math.NaN()), float32(math.Inf(1)), float32(math.Inf(-1)), 0,
		}, 1, 4),
	})
	maxRank := mustEncodeRequest(map[string]*tensor.Tensor{
		"deep": tensor.MustFromSlice([]float32{7}, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1),
	})

	// A frame whose declared body length disagrees with its shape.
	lyingLen := append([]byte(nil), valid...)
	lyingLen[7]++ // first tensor frame's u32 body length, low byte

	// A header announcing the max tensor count with no frames behind it.
	countOverCap := []byte{'M', 'V', 'T', 1, 0xff, 0xff}
	atCap := []byte{'M', 'V', 'T', 1, 64, 0}

	// Huge declared volume: rank 2, dims (0x7fffffff, 2) — overflow-checked
	// volume must refuse it before any payload allocation.
	hugeVol := []byte{'M', 'V', 'T', 1, 1, 0, 1, 0xff, 0xff, 0xff, 0xff, 1, 0, 'x'}
	hugeVol = append(hugeVol, 2, 0, 0, 0) // rank 2
	hugeVol = append(hugeVol, 0xff, 0xff, 0xff, 0x7f, 2, 0, 0, 0)

	seeds := map[string][]byte{
		"seed-valid":         valid,
		"seed-nan-inf":       nan,
		"seed-max-rank":      maxRank,
		"seed-lying-len":     lyingLen,
		"seed-count-over":    countOverCap,
		"seed-count-at-cap":  atCap,
		"seed-huge-volume":   hugeVol,
		"seed-empty":         {},
		"seed-magic-only":    []byte("MVT\x01"),
		"seed-wrong-version": []byte("MVT\x02\x01\x00"),
		"seed-no-end":        valid[:len(valid)-5],
		"seed-half":          valid[:len(valid)/2],
		"seed-json-noise":    []byte(`{"inputs":{"x":{"shape":[1,1],"data":[1]}}}`),
	}
	for i, off := range []int{3, 5, 9, len(valid) / 3, len(valid) - 6} {
		c := append([]byte(nil), valid...)
		c[off%len(c)] ^= 1 << (i % 8)
		seeds[fmt.Sprintf("seed-bitflip-%d", i)] = c
	}
	return seeds
}
