#!/bin/sh
# Advisory perf gate: measure the hot-path microbenchmarks on the current
# tree and compare against a committed baseline report. A gated benchmark
# more than 15% slower than the baseline makes this script exit non-zero.
#
#   ./scripts/benchgate.sh                # against the newest BENCH_*.json
#   ./scripts/benchgate.sh BENCH_pr4.json # against a specific baseline
#
# This is advisory in CI (continue-on-error) because shared runners are
# noisy; treat a failure as a prompt to re-measure on quiet hardware, not as
# an automatic verdict.
set -eu

cd "$(dirname "$0")/.."

BASELINE="${1:-}"
if [ -z "$BASELINE" ]; then
    # Newest committed baseline by version-sorted name (BENCH_pr1 < BENCH_pr4).
    BASELINE=$(ls BENCH_*.json 2>/dev/null | grep -v '^BENCH_head\.json$' | sort -V | tail -1 || true)
fi
if [ -z "$BASELINE" ] || [ ! -f "$BASELINE" ]; then
    echo "benchgate: no baseline BENCH_*.json found; run 'go run ./cmd/mvtee-bench -perf -rev <rev>' first" >&2
    exit 2
fi

echo "benchgate: measuring current tree (baseline: $BASELINE)" >&2
go run ./cmd/mvtee-bench -perf -rev head -note "benchgate working-tree run" >&2
trap 'rm -f BENCH_head.json' EXIT

go run ./cmd/mvtee-bench -compare "$BASELINE" BENCH_head.json
