package mvtee

// Benchmarks regenerating the paper's evaluation (§6), one per figure/table.
// Each benchmark iteration runs a reduced experiment (a representative model
// subset with short batch streams) through the same harness the full
// regeneration tool uses; run `go run ./cmd/mvtee-bench -all` for the
// complete tables recorded in EXPERIMENTS.md. Custom metrics report the
// normalized results: tputx_* (throughput vs baseline, higher is better)
// and latx_* (latency vs baseline, lower is better).

import (
	"testing"

	"repro/internal/bench"
)

// benchOpts keeps per-iteration cost modest.
func benchOpts() bench.Options {
	return bench.Options{
		Models:  []string{"mnasnet", "resnet-50"},
		Warmup:  1,
		Batches: 4,
	}
}

func simOpts() bench.SimOptions {
	return bench.SimOptions{Options: benchOpts(), SimBatches: 32}
}

// report aggregates rows by config/mode into custom benchmark metrics.
func report(b *testing.B, rows []bench.Row) {
	type agg struct {
		tput, lat float64
		n         int
	}
	sums := map[string]*agg{}
	for _, r := range rows {
		key := r.Config + "_" + r.Mode
		a := sums[key]
		if a == nil {
			a = &agg{}
			sums[key] = a
		}
		a.tput += r.ThroughputX
		a.lat += r.LatencyX
		a.n++
	}
	for key, a := range sums {
		b.ReportMetric(a.tput/float64(a.n), "tputx_"+key)
		b.ReportMetric(a.lat/float64(a.n), "latx_"+key)
	}
}

// BenchmarkFig09Partitioning regenerates Figure 9 (performance impact of
// random-balanced partitioning) on the live engine.
func BenchmarkFig09Partitioning(b *testing.B) {
	var rows []bench.Row
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = bench.Fig9(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
	}
	report(b, rows)
}

// BenchmarkFig09PartitioningSim regenerates Figure 9 on the calibrated
// multicore pipeline simulator (the paper's 36-core testbed shape).
func BenchmarkFig09PartitioningSim(b *testing.B) {
	var rows []bench.Row
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = bench.SimFig9(simOpts())
		if err != nil {
			b.Fatal(err)
		}
	}
	report(b, rows)
}

// BenchmarkFig10Overheads regenerates Figure 10 (encryption and checkpoint
// overheads).
func BenchmarkFig10Overheads(b *testing.B) {
	var rows []bench.Row
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = bench.SimFig10(simOpts())
		if err != nil {
			b.Fatal(err)
		}
	}
	report(b, rows)
}

// BenchmarkFig11Horizontal regenerates Figure 11 (horizontal variant scaling
// under selective MVX).
func BenchmarkFig11Horizontal(b *testing.B) {
	var rows []bench.Row
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = bench.SimFig11(simOpts())
		if err != nil {
			b.Fatal(err)
		}
	}
	report(b, rows)
}

// BenchmarkFig12Vertical regenerates Figure 12 (vertical variant scaling
// under selective MVX).
func BenchmarkFig12Vertical(b *testing.B) {
	var rows []bench.Row
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = bench.SimFig12(simOpts())
		if err != nil {
			b.Fatal(err)
		}
	}
	report(b, rows)
}

// BenchmarkFig13Async regenerates Figure 13 (asynchronous cross-validation
// vs synchronous execution).
func BenchmarkFig13Async(b *testing.B) {
	var rows []bench.Row
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = bench.SimFig13(simOpts())
		if err != nil {
			b.Fatal(err)
		}
	}
	report(b, rows)
}

// BenchmarkFig14RealSetup regenerates Figure 14 (real-world diversified
// deployment).
func BenchmarkFig14RealSetup(b *testing.B) {
	var rows []bench.Row
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = bench.SimFig14(simOpts())
		if err != nil {
			b.Fatal(err)
		}
	}
	report(b, rows)
}

// BenchmarkTable1Security regenerates the Table 1 security analysis: every
// TensorFlow vulnerability class must be detected by the MVX panel. The
// metric detected_frac reports the detected fraction (must be 1.0).
func BenchmarkTable1Security(b *testing.B) {
	var detected, total int
	for i := 0; i < b.N; i++ {
		results, err := bench.Table1(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range results {
			total++
			if r.Detected {
				detected++
			}
		}
	}
	if total > 0 {
		b.ReportMetric(float64(detected)/float64(total), "detected_frac")
	}
}
