package mvtee

import (
	"math/rand/v2"
	"testing"
	"time"

	"repro/internal/check"
	"repro/internal/monitor"
)

// TestChaosHangQuorumAndHotReplacement is the end-to-end robustness
// scenario: one stage-1 variant hangs mid-batch, the straggler deadline
// expires, the batch completes via majority quorum well before the hang
// resolves, and the Recover response hot-replaces the dead variant from the
// pre-established spare pool — with the promotion appended to the monitor's
// binding log and the stage climbing back to the full ladder rung.
func TestChaosHangQuorumAndHotReplacement(t *testing.T) {
	bundle, err := BuildBundle(OfflineConfig{
		ModelName:        "mnasnet",
		PartitionTargets: []int{3},
		Specs:            RealSetupSpecs(),
	})
	if err != nil {
		t.Fatal(err)
	}
	plans := []PartitionPlan{
		{Variants: []string{"ort-cpu"}},
		{Variants: []string{"ort-cpu", "ort-altep", "tvm-graph"}},
		{Variants: []string{"ort-cpu"}},
	}
	spares := []PartitionPlan{
		{},
		{Variants: []string{"ort-altep"}},
		{},
	}
	const (
		hungID  = "p1-ort-altep-1"
		spareID = "spare-p1-ort-altep-0"
	)
	// Stage 1 of this partitioning has exactly two Add nodes; hanging only
	// those keeps the stalled variant's eventual wake-up (2 × hangDelay,
	// long after it has been retired) bounded for teardown.
	const hangDelay = 1500 * time.Millisecond
	const stageTimeout = 300 * time.Millisecond
	inj := Injection{Class: FaultHang, TargetOp: "Add", Latency: hangDelay, After: 1}

	dep, err := Deploy(bundle, 0, DeployConfig{
		MVX: &MVXConfig{
			Plans:          plans,
			Spares:         spares,
			Response:       Recover,
			Vote:           check.Majority,
			StageTimeoutMS: int(stageTimeout / time.Millisecond),
			Criteria:       []Criterion{{Metric: AllClose, RTol: 5e-2, ATol: 1e-3}},
		},
		Encrypt:        true,
		VariantOptions: ArmVariantIDs(inj, hungID),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer dep.Close()

	if got := dep.Monitor.SpareCount(); got != 1 {
		t.Fatalf("SpareCount() = %d, want 1", got)
	}

	in := NewTensor(1, 3, 32, 32)
	rng := rand.New(rand.NewPCG(7, 7))
	for i := range in.Data() {
		in.Data()[i] = float32(rng.NormFloat64())
	}
	feed := map[string]*Tensor{"image": in}

	// Batch 1: grace period, everyone healthy.
	if res, err := dep.Infer(feed); err != nil || res.Err != nil {
		t.Fatalf("batch 1: %v / %v", err, res.Err)
	}

	// Batch 2: the armed variant hangs mid-stage. The stage deadline must
	// expire and the quorum complete the batch far sooner than the hang
	// itself (2 × hangDelay) would allow.
	start := time.Now()
	res, err := dep.Infer(feed)
	elapsed := time.Since(start)
	if err != nil || res.Err != nil {
		t.Fatalf("batch 2 should survive the straggler via quorum: %v / %v", err, res.Err)
	}
	if res.Tensors["logits"] == nil || res.Tensors["logits"].HasNaN() {
		t.Fatalf("batch 2: bad output %v", res.Tensors)
	}
	if elapsed >= hangDelay {
		t.Fatalf("batch 2 took %v — waited out the straggler instead of completing at the %v stage deadline", elapsed, stageTimeout)
	}

	// The timeout and the asynchronous hot replacement must surface as
	// events: the hung variant timed out, the spare was promoted.
	waitForEvent(t, dep, EventVariantTimeout, hungID)
	waitForEvent(t, dep, EventVariantReplaced, spareID)

	// The promotion is appended to the binding log (§4.3): the spare's
	// fresh record is live, the dead variant's record is marked replaced.
	var spareBound, hungRetired bool
	for _, rec := range dep.Monitor.Bindings() {
		switch rec.VariantID {
		case spareID:
			spareBound = !rec.Replaced
		case hungID:
			hungRetired = rec.Replaced
		}
	}
	if !spareBound {
		t.Fatalf("no live binding record for promoted spare %s: %+v", spareID, dep.Monitor.Bindings())
	}
	if !hungRetired {
		t.Fatalf("retired variant %s not marked replaced in binding log", hungID)
	}
	if got := dep.Monitor.SpareCount(); got != 0 {
		t.Fatalf("SpareCount() = %d after promotion, want 0", got)
	}

	// The stage must climb back to the full rung once the spare is serving.
	deadline := time.Now().Add(5 * time.Second)
	for dep.Engine.Ladder()[1] != monitor.LadderFull {
		if time.Now().After(deadline) {
			t.Fatalf("stage 1 ladder = %v, never recovered to full", dep.Engine.Ladder()[1])
		}
		time.Sleep(10 * time.Millisecond)
	}

	// Steady state with the replacement: no fresh divergences.
	divergences := countEvents(dep, EventDivergence)
	for i := 0; i < 3; i++ {
		if res, err := dep.Infer(feed); err != nil || res.Err != nil {
			t.Fatalf("post-replacement batch %d: %v / %v", i, err, res.Err)
		}
	}
	if got := countEvents(dep, EventDivergence); got != divergences {
		t.Fatalf("replacement variant diverges: %d new divergence events", got-divergences)
	}
}

// TestChaosProvisionedSpareFeedsRecovery starts with an EMPTY spare pool,
// grows it on demand through the monitor's spare factory (the adaptive
// controller's scale-up actuator), and then kills a variant: the hot
// replacement must promote the synthesized spare, proving an on-demand
// provision is a first-class recovery asset, not just a pool counter. The
// provision itself must surface as EventSpareProvisioned.
func TestChaosProvisionedSpareFeedsRecovery(t *testing.T) {
	bundle, err := BuildBundle(OfflineConfig{
		ModelName:        "mnasnet",
		PartitionTargets: []int{3},
		Specs:            RealSetupSpecs(),
	})
	if err != nil {
		t.Fatal(err)
	}
	plans := []PartitionPlan{
		{Variants: []string{"ort-cpu"}},
		{Variants: []string{"ort-cpu", "ort-altep", "tvm-graph"}},
		{Variants: []string{"ort-cpu"}},
	}
	const hungID = "p1-ort-altep-1"
	const hangDelay = 1500 * time.Millisecond
	const stageTimeout = 300 * time.Millisecond
	inj := Injection{Class: FaultHang, TargetOp: "Add", Latency: hangDelay, After: 1}

	dep, err := Deploy(bundle, 0, DeployConfig{
		MVX: &MVXConfig{
			Plans:          plans, // no Spares: the pool starts empty
			Response:       Recover,
			Vote:           check.Majority,
			StageTimeoutMS: int(stageTimeout / time.Millisecond),
			Criteria:       []Criterion{{Metric: AllClose, RTol: 5e-2, ATol: 1e-3}},
		},
		Encrypt:        true,
		VariantOptions: ArmVariantIDs(inj, hungID),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer dep.Close()

	if got := dep.Monitor.SpareCount(); got != 0 {
		t.Fatalf("SpareCount() = %d, want 0 (empty pool)", got)
	}
	// Scale up on demand: the factory synthesizes a fresh pre-attested spare
	// for the MVX stage and announces it on the event stream.
	if err := dep.Monitor.ProvisionSpare(1); err != nil {
		t.Fatalf("ProvisionSpare: %v", err)
	}
	if got := dep.Monitor.SpareCount(); got != 1 {
		t.Fatalf("SpareCount() = %d after provision, want 1", got)
	}
	if got := countEvents(dep, monitor.EventSpareProvisioned); got != 1 {
		t.Fatalf("EventSpareProvisioned count = %d, want 1", got)
	}
	// Deployment.ProvisionSpare cycles specs: seq 1 of partition 1's plan.
	const spareID = "autospare-p1-ort-altep-1"

	in := NewTensor(1, 3, 32, 32)
	rng := rand.New(rand.NewPCG(11, 11))
	for i := range in.Data() {
		in.Data()[i] = float32(rng.NormFloat64())
	}
	feed := map[string]*Tensor{"image": in}

	// Batch 1: grace period. Batch 2: the armed variant hangs, the straggler
	// deadline expires, and recovery promotes the synthesized spare.
	for i := 0; i < 2; i++ {
		if res, err := dep.Infer(feed); err != nil || res.Err != nil {
			t.Fatalf("batch %d: %v / %v", i+1, err, res.Err)
		}
	}
	waitForEvent(t, dep, EventVariantTimeout, hungID)
	waitForEvent(t, dep, EventVariantReplaced, spareID)
	if got := dep.Monitor.SpareCount(); got != 0 {
		t.Fatalf("SpareCount() = %d after promotion, want 0", got)
	}
	// The stage must climb back to full strength on the synthesized spare.
	deadline := time.Now().Add(5 * time.Second)
	for dep.Engine.Ladder()[1] != monitor.LadderFull {
		if time.Now().After(deadline) {
			t.Fatalf("stage 1 ladder = %v, never recovered to full", dep.Engine.Ladder()[1])
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// waitForEvent polls the engine's event log until an event of the kind
// naming the variant appears (replacement runs asynchronously to Infer).
func waitForEvent(t *testing.T, dep *Deployment, kind monitor.EventKind, variantID string) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		for _, ev := range dep.Engine.Events() {
			if ev.Kind != kind {
				continue
			}
			for _, v := range ev.Variants {
				if v == variantID {
					return
				}
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("event %v for %s never recorded; have %+v", kind, variantID, dep.Engine.Events())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func countEvents(dep *Deployment, kind monitor.EventKind) int {
	n := 0
	for _, ev := range dep.Engine.Events() {
		if ev.Kind == kind {
			n++
		}
	}
	return n
}
