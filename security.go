package mvtee

import (
	"repro/internal/faults"
	"repro/internal/infer"
	"repro/internal/variant"
)

// Injection describes a simulated vulnerability or fault to arm in the
// deployment's variants (security experiments; see internal/faults).
type Injection = faults.Injection

// FaultClass identifies a vulnerability/fault class.
type FaultClass = faults.Class

// Fault classes (Table 1 plus the runtime fault attacks of §6.5).
const (
	FaultOOB           = faults.OOB
	FaultUNP           = faults.UNP
	FaultFPE           = faults.FPE
	FaultIntOverflow   = faults.IntOverflow
	FaultUAF           = faults.UAF
	FaultACF           = faults.ACF
	FaultWeightBitFlip = faults.WeightBitFlip
	FaultCodeBitFlip   = faults.CodeBitFlip
	FaultDelay         = faults.Delay

	// Chaos classes exercising the robustness layer (straggler deadlines,
	// degradation ladder, hot replacement).
	FaultHang               = faults.Hang
	FaultSlow               = faults.Slow
	FaultDropLate           = faults.DropLate
	FaultCorruptAfterQuorum = faults.CorruptAfterQuorum
)

// ArmVariants returns a DeployConfig.VariantOptions hook that arms the
// injection in every variant. The fault only manifests in variants whose
// implementation matches the injection's targets (the vulnerable runtime,
// library or operator); diversified variants are unaffected — the property
// MVX detection relies on.
func ArmVariants(inj Injection) func(variantID string, e Entry) VariantOptions {
	return func(string, Entry) VariantOptions {
		return variant.Options{
			ConfigureRuntime: func(cfg infer.Config) infer.Config {
				return faults.Arm(cfg, inj)
			},
		}
	}
}

// ArmVariantIDs returns a DeployConfig.VariantOptions hook that arms the
// injection only in the named variants — chaos experiments use it to hang or
// kill one specific replica while its siblings stay healthy.
func ArmVariantIDs(inj Injection, ids ...string) func(variantID string, e Entry) VariantOptions {
	targets := make(map[string]bool, len(ids))
	for _, id := range ids {
		targets[id] = true
	}
	return func(variantID string, _ Entry) VariantOptions {
		if !targets[variantID] {
			return variant.Options{}
		}
		return variant.Options{
			ConfigureRuntime: func(cfg infer.Config) infer.Config {
				return faults.Arm(cfg, inj)
			},
		}
	}
}

// FlipWeightBit injects a Rowhammer-style bit flip into the named
// initializer of a graph (see faults.FlipWeightBit).
func FlipWeightBit(g *Graph, initializer string, idx, bit int) bool {
	return faults.FlipWeightBit(g, initializer, idx, bit)
}
