package mvtee

import (
	"math/rand/v2"
	"testing"
)

// TestFacadeEndToEnd exercises the public API surface exactly as the README
// quick start does.
func TestFacadeEndToEnd(t *testing.T) {
	bundle, err := BuildBundle(OfflineConfig{
		ModelName:        "mnasnet",
		PartitionTargets: []int{3},
		Specs:            RealSetupSpecs(),
	})
	if err != nil {
		t.Fatal(err)
	}
	plans := []PartitionPlan{
		{Variants: []string{"ort-cpu"}},
		{Variants: []string{"ort-cpu", "ort-altep", "tvm-graph"}},
		{Variants: []string{"ort-cpu"}},
	}
	dep, err := Deploy(bundle, 0, DeployConfig{
		MVX: &MVXConfig{
			Plans:    plans,
			Async:    true,
			Criteria: []Criterion{{Metric: AllClose, RTol: 5e-2, ATol: 1e-3}},
		},
		Encrypt: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer dep.Close()

	in := NewTensor(1, 3, 32, 32)
	rng := rand.New(rand.NewPCG(2, 2))
	for i := range in.Data() {
		in.Data()[i] = float32(rng.NormFloat64())
	}
	res, err := dep.Infer(map[string]*Tensor{"image": in})
	if err != nil {
		t.Fatal(err)
	}
	if res.Tensors["logits"] == nil || res.Tensors["logits"].HasNaN() {
		t.Fatalf("bad output %v", res.Tensors)
	}
}

func TestFacadeFaultDetection(t *testing.T) {
	bundle, err := BuildBundle(OfflineConfig{
		ModelName:        "mnasnet",
		PartitionTargets: []int{2},
		Specs:            HardenedSpecs(),
	})
	if err != nil {
		t.Fatal(err)
	}
	plans := []PartitionPlan{
		{Variants: []string{"different-rt", "compiler", "bounds-check"}},
		{Variants: []string{"different-rt"}},
	}
	// bounds-check runs the interp runtime, where this OOB lives.
	inj := Injection{Class: FaultOOB, TargetRuntime: 1 /* interp */, Seed: 3}
	dep, err := Deploy(bundle, 0, DeployConfig{
		MVX: &MVXConfig{
			Plans:    plans,
			Response: ReportOnly,
			Criteria: []Criterion{{Metric: AllClose, RTol: 5e-2, ATol: 1e-3}},
		},
		Encrypt:        true,
		VariantOptions: ArmVariants(inj),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer dep.Close()

	in := NewTensor(1, 3, 32, 32)
	res, err := dep.Infer(map[string]*Tensor{"image": in})
	if err != nil {
		t.Fatal(err)
	}
	if res.Err != nil {
		t.Fatalf("majority (planned variants) should recover: %v", res.Err)
	}
	evs := dep.Engine.Events()
	if len(evs) == 0 {
		t.Fatal("the bounds-check variant's crash was not detected")
	}
}

func TestModelZooFacade(t *testing.T) {
	names := ModelNames()
	if len(names) < 8 { // the paper's seven + the tinyformer extension
		t.Fatalf("ModelNames() = %v", names)
	}
	g, err := BuildModel("resnet-50", ModelConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Nodes) == 0 {
		t.Fatal("empty model")
	}
	if !FlipWeightBit(g, firstInitializer(g), 0, 30) {
		t.Fatal("weight flip missed")
	}
}

func firstInitializer(g *Graph) string {
	for name := range g.Initializers {
		return name
	}
	return ""
}
