package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"

	mvtee "repro"
	"repro/internal/core"
	"repro/internal/enclave"
	"repro/internal/tensor"
	"repro/internal/transcript"
)

// runVerify is the offline transcript auditor: it fetches the signed tree
// head from a serving process's GET /audit endpoint, verifies the head's
// attestation signature and model chaining, checks inclusion and consistency
// proofs, and replays the newest sampled batch through a locally built engine
// — any bitwise output mismatch fails the audit. The local bundle is rebuilt
// deterministically from the model flags (evidence digests are plaintext
// digests, so the rebuilt bundle's model digest matches the server's); with
// -bundle the saved bundle's platform identity and model digest pin the trust
// anchors instead of the endpoint's published identity.
func runVerify(args []string) error {
	fs := flag.NewFlagSet("verify", flag.ExitOnError)
	addr := fs.String("addr", "http://127.0.0.1:9090", "telemetry base URL serving GET /audit")
	dir := fs.String("bundle", "", "bundle directory pinning the platform identity and model digest (default: trust-on-first-use from the endpoint)")
	name, cfg := modelFlags(fs)
	stagesN := fs.Int("stages", 5, "pipeline partition count the server was deployed with")
	mvxStage := fs.Int("mvx-stage", -1, "stage to protect with 3-variant MVX during replay (-1 = single-variant fast path; bitwise determinism makes both equivalent)")
	traceHex := fs.String("trace", "", "also audit one trace ID (hex, as printed by the serving tier)")
	replay := fs.Bool("replay", true, "replay the newest sampled batch through a locally built engine and require bitwise-identical outputs")
	headFile := fs.String("head-file", "", "pinned-head state file: if present, require a consistency proof from the saved head; the newly verified head is saved back on success")
	if err := fs.Parse(args); err != nil {
		return err
	}

	doc, err := transcript.Fetch(*addr, "")
	if err != nil {
		return err
	}

	// Trust anchors: the bundle's platform identity when available, else the
	// identity the endpoint itself publishes (trust-on-first-use — fine for
	// in-process dev deployments, not for auditing a host you distrust).
	verifier := enclave.NewVerifier()
	switch {
	case *dir != "":
		pubID, err := core.LoadPlatformIdentity(*dir)
		if err != nil {
			return err
		}
		if err := verifier.TrustIdentity(pubID); err != nil {
			return err
		}
	case len(doc.Identity) > 0:
		fmt.Fprintln(os.Stderr, "verify: WARNING: trusting the platform identity published by the endpoint (no -bundle)")
		if err := verifier.TrustIdentity(doc.Identity); err != nil {
			return err
		}
	default:
		return fmt.Errorf("no trust anchor: endpoint published no identity and no -bundle given")
	}

	// The expected model digest: from the saved bundle when pinned, else from
	// a deterministic local rebuild (also needed for replay).
	var model transcript.Hash
	var bundle *mvtee.Bundle
	if *replay || *dir == "" {
		bundle, err = mvtee.BuildBundle(mvtee.OfflineConfig{
			ModelName:        *name,
			ModelConfig:      mvtee.ModelConfig{Scale: cfg.Scale, InputSize: cfg.InputSize, Depth: cfg.Depth},
			PartitionTargets: []int{*stagesN},
			Specs:            mvtee.RealSetupSpecs(),
		})
		if err != nil {
			return fmt.Errorf("rebuild bundle: %w", err)
		}
		model = bundle.ModelDigest()
	}
	if *dir != "" {
		meta, err := core.LoadMeta(*dir)
		if err != nil {
			return err
		}
		model = meta.ModelDigest()
	}

	aud := &transcript.Auditor{
		Verifier: verifier,
		Measurements: []enclave.Measurement{
			enclave.Measure(core.MonitorImage()),
			enclave.Measure(core.RouterImage()),
		},
		Model: model,
	}

	if _, err := aud.VerifyDoc(doc); err != nil {
		return fmt.Errorf("head rejected: %w", err)
	}
	head := doc.Head.Head
	fmt.Printf("head verified: size %d, root %x (live size %d, dropped %d)\n",
		head.Size, head.Root[:8], doc.Size, doc.Dropped)

	// Cross-run pinning: a saved head must extend into the current one, or
	// the server rewrote history between audits.
	if *headFile != "" {
		if old, ok, err := loadHead(*headFile); err != nil {
			return err
		} else if ok {
			cdoc, err := transcript.Fetch(*addr, "consistency="+strconv.FormatUint(old.Size, 10))
			if err != nil {
				return err
			}
			if err := aud.VerifyConsistencyWith(old, cdoc); err != nil {
				return fmt.Errorf("consistency from pinned head (size %d) rejected: %w", old.Size, err)
			}
			fmt.Printf("consistency verified: pinned size %d extends into size %d\n", old.Size, cdoc.Head.Head.Size)
			head = cdoc.Head.Head
		}
	}

	if *traceHex != "" {
		tdoc, err := transcript.Fetch(*addr, "trace="+*traceHex)
		if err != nil {
			return err
		}
		leaf, err := aud.VerifyDoc(tdoc)
		if err != nil {
			return fmt.Errorf("trace %s rejected: %w", *traceHex, err)
		}
		if leaf == nil {
			return fmt.Errorf("trace %s: document carried no leaf", *traceHex)
		}
		fmt.Printf("trace %s verified: batch %d, %d checkpoints, %d votes, rung %d\n",
			*traceHex, leaf.Batch, len(leaf.Checkpoints), len(leaf.Votes), leaf.Rung)
	}

	if *replay {
		sdoc, err := transcript.Fetch(*addr, "sample=1")
		if err != nil {
			return err
		}
		leaf, err := aud.VerifyDoc(sdoc)
		if err != nil {
			return fmt.Errorf("sample leaf rejected: %w", err)
		}
		if leaf == nil {
			return fmt.Errorf("sample document carried no leaf")
		}
		run, closeDep, err := replayEngine(bundle, *stagesN, *mvxStage)
		if err != nil {
			return err
		}
		defer closeDep()
		if err := transcript.Replay(leaf, sdoc.Inputs, run); err != nil {
			return fmt.Errorf("replay of batch %d failed: %w", leaf.Batch, err)
		}
		fmt.Printf("replay verified: batch %d reproduced bitwise on a locally built engine\n", leaf.Batch)
	}

	if *headFile != "" {
		if err := saveHead(*headFile, head); err != nil {
			return err
		}
		fmt.Printf("head pinned to %s (size %d)\n", *headFile, head.Size)
	}
	return nil
}

// replayEngine deploys a local single-replica pipeline from the rebuilt
// bundle and returns a run function executing one batch through it.
func replayEngine(bundle *mvtee.Bundle, stages, mvxStage int) (transcript.ReplayFunc, func(), error) {
	if bundle == nil {
		return nil, nil, fmt.Errorf("replay requires a locally rebuilt bundle")
	}
	plans := make([]mvtee.PartitionPlan, stages)
	for i := range plans {
		plans[i] = mvtee.PartitionPlan{Variants: []string{"ort-cpu"}}
	}
	if mvxStage >= 0 && mvxStage < stages {
		plans[mvxStage] = mvtee.PartitionPlan{Variants: []string{"ort-cpu", "ort-altep", "tvm-graph"}}
	}
	dep, err := mvtee.Deploy(bundle, 0, mvtee.DeployConfig{
		MVX: &mvtee.MVXConfig{
			Model:    bundle.Model.Name,
			Plans:    plans,
			Criteria: []mvtee.Criterion{{Metric: mvtee.AllClose, RTol: 5e-2, ATol: 1e-3}},
		},
		Encrypt: true,
	})
	if err != nil {
		return nil, nil, fmt.Errorf("deploy replay engine: %w", err)
	}
	run := func(inputs map[string]*tensor.Tensor) (map[string]*tensor.Tensor, error) {
		res, err := dep.Engine.Infer(inputs)
		if err != nil {
			return nil, err
		}
		return res.Tensors, nil
	}
	return run, func() { dep.Close() }, nil
}

func loadHead(path string) (transcript.TreeHead, bool, error) {
	var h transcript.TreeHead
	b, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return h, false, nil
	}
	if err != nil {
		return h, false, err
	}
	if err := json.Unmarshal(b, &h); err != nil {
		return h, false, fmt.Errorf("bad head file %s: %w", path, err)
	}
	return h, true, nil
}

func saveHead(path string, h transcript.TreeHead) error {
	b, err := json.MarshalIndent(h, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, b, 0o644)
}
