package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"time"

	"repro/internal/telemetry"
)

// runTrace fetches one federated trace from a telemetry endpoint and renders
// it as an indented tree: spans sorted by start time, nested by interval
// containment, each line carrying the offset from the trace root, the
// duration, and the node that recorded it (router spans have no replica
// label; replica spans are stamped by the router when their harvested
// reports merge). This is the operator's view of a batch's cross-node
// journey — placement, dispatch, per-stage execution on each replica, and
// delivery — from one GET /trace?trace=<id>.
func runTrace(args []string) error {
	fs := flag.NewFlagSet("trace", flag.ExitOnError)
	addr := fs.String("addr", "http://127.0.0.1:9090", "telemetry base URL (the daemon's -telemetry-addr)")
	timeout := fs.Duration("timeout", 10*time.Second, "request deadline")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("usage: mvtee-tool trace [-addr URL] <trace-id>")
	}
	id, err := strconv.ParseUint(fs.Arg(0), 10, 64)
	if err != nil {
		return fmt.Errorf("bad trace id %q: %w", fs.Arg(0), err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()
	url := strings.TrimRight(*addr, "/") + "/trace?trace=" + strconv.FormatUint(id, 10)
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return err
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("GET %s: %s", url, resp.Status)
	}
	var spans []telemetry.Span
	if err := json.NewDecoder(resp.Body).Decode(&spans); err != nil {
		return fmt.Errorf("decode spans: %w", err)
	}
	if len(spans) == 0 {
		return fmt.Errorf("no spans retained for trace %d (evicted from the ring, or tracing was off)", id)
	}
	printTrace(id, spans)
	return nil
}

// printTrace renders the span set as a containment tree. Spans are sorted by
// start (ties: the longer span first, so a parent precedes the children it
// encloses); nesting depth comes from a stack of open end times.
func printTrace(id uint64, spans []telemetry.Span) {
	sort.Slice(spans, func(i, j int) bool {
		if spans[i].Start != spans[j].Start {
			return spans[i].Start < spans[j].Start
		}
		return spans[i].End > spans[j].End
	})
	root := spans[0].Start
	last := root
	nodes := map[string]bool{}
	for _, s := range spans {
		if s.End > last {
			last = s.End
		}
		nodes[s.Replica] = true
	}
	fmt.Printf("trace %d: %d spans, %d nodes, %s end-to-end\n",
		id, len(spans), len(nodes), fmtDur(last-root))

	var open []int64 // end times of enclosing spans
	for _, s := range spans {
		for len(open) > 0 && s.Start >= open[len(open)-1] {
			open = open[:len(open)-1]
		}
		name := s.Name
		if s.Stage >= 0 {
			name += fmt.Sprintf(" s%d", s.Stage)
		}
		if s.Variant != "" {
			name += " " + s.Variant
		}
		node := s.Replica
		if node == "" {
			node = "router"
		}
		fmt.Printf("%8s %s%-*s %8s  [%s]\n",
			"+"+fmtDur(s.Start-root), strings.Repeat("  ", len(open)),
			36-2*len(open), name, fmtDur(s.End-s.Start), node)
		open = append(open, s.End)
	}
}

// fmtDur renders nanoseconds compactly (µs under 10ms, ms above).
func fmtDur(ns int64) string {
	d := time.Duration(ns)
	switch {
	case d < 10*time.Millisecond:
		return fmt.Sprintf("%.0fµs", float64(d)/float64(time.Microsecond))
	case d < time.Second:
		return fmt.Sprintf("%.2fms", float64(d)/float64(time.Millisecond))
	default:
		return d.Round(time.Millisecond).String()
	}
}
