// Command mvtee-tool is the offline ML MVX tool of §5.1: model inspection,
// model partitioning, and construction of encrypted partition variants.
//
// Subcommands:
//
//	inspect   -model NAME [-scale S -input-size N -depth D]
//	    print model statistics and operator counts
//	partition -model NAME -targets 3,5,7 [-seed N] [-manual idx,idx]
//	    run random-balanced partitioning (or the manual slicer) and print
//	    the resulting partition sets with balance factors
//	build     -model NAME -out DIR -targets 5 -specs replica|real|hardened
//	    run the full offline pipeline and save the encrypted bundle
//	infer     -addr URL [-binary] -input name=DIMS[,...] …
//	    client call against a serving front door (mvtee-serve or
//	    mvtee-monitor -serve-addr), JSON or the binary streaming protocol
//	trace     [-addr URL] TRACE_ID
//	    fetch one trace from a telemetry endpoint and pretty-print the
//	    cross-node span tree (indented by hop, with durations)
//	verify    -addr URL [-bundle DIR] [-trace HEX] [-head-file F]
//	    audit a serving tier's verifiable inference transcript: verify the
//	    signed Merkle tree head, inclusion/consistency proofs, and replay
//	    the newest sampled batch through a locally built engine
//
// Example:
//
//	mvtee-tool build -model resnet-50 -out /tmp/bundle -targets 5 -specs real
//	mvtee-tool infer -addr http://127.0.0.1:8080 -binary -input image=1x3x32x32
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"math/rand/v2"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/diversify"
	"repro/internal/models"
	"repro/internal/ops"
	"repro/internal/partition"
	"repro/internal/pfcrypt"
	"repro/internal/serve"
	"repro/internal/tensor"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "inspect":
		err = runInspect(os.Args[2:])
	case "partition":
		err = runPartition(os.Args[2:])
	case "build":
		err = runBuild(os.Args[2:])
	case "rotate":
		err = runRotate(os.Args[2:])
	case "infer":
		err = runInfer(os.Args[2:])
	case "trace":
		err = runTrace(os.Args[2:])
	case "verify":
		err = runVerify(os.Args[2:])
	case "-h", "--help", "help":
		usage()
		return
	default:
		fmt.Fprintf(os.Stderr, "unknown subcommand %q\n", os.Args[1])
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "mvtee-tool:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: mvtee-tool <inspect|partition|build|rotate> [flags]
  inspect   -model NAME [-scale S -input-size N -depth D]
  partition -model NAME -targets 3,5,7 [-seed N] [-manual i,j,...]
  build     -model NAME -out DIR [-targets 5] [-specs replica|real|hardened] [-seed N]
  rotate    -bundle DIR [-entry setN/pN/SPEC]   (re-key pool entries, §6.5)
  infer     -addr URL [-binary] [-tenant T] [-priority P] -input name=1x3x32x32 [-seed N]
  trace     [-addr URL] TRACE_ID   (pretty-print one federated trace from /trace)
  verify    -addr URL [-bundle DIR] [-trace HEX] [-head-file F]   (audit the signed
            inference transcript: head signature, proofs, bitwise replay)`)
}

func modelFlags(fs *flag.FlagSet) (*string, *models.Config) {
	name := fs.String("model", "resnet-50", "model name ("+strings.Join(models.Names(), ", ")+")")
	cfg := &models.Config{}
	fs.Float64Var(&cfg.Scale, "scale", 0, "channel width multiplier (default 0.25)")
	fs.IntVar(&cfg.InputSize, "input-size", 0, "square input resolution (default 32)")
	fs.Float64Var(&cfg.Depth, "depth", 0, "stage depth multiplier (default 1.0)")
	return name, cfg
}

func parseInts(s string) ([]int, error) {
	if s == "" {
		return nil, nil
	}
	var out []int
	for _, f := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil {
			return nil, fmt.Errorf("bad integer list %q: %w", s, err)
		}
		out = append(out, v)
	}
	return out, nil
}

func runInspect(args []string) error {
	fs := flag.NewFlagSet("inspect", flag.ExitOnError)
	name, cfg := modelFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	g, err := models.Build(*name, *cfg)
	if err != nil {
		return err
	}
	shapes, err := ops.InferShapes(g)
	if err != nil {
		return err
	}
	st := g.Stats()
	fmt.Printf("model:        %s\n", g.Name)
	fmt.Printf("nodes:        %d\n", st.Nodes)
	fmt.Printf("initializers: %d (%d parameters)\n", st.Initializers, st.Parameters)
	for _, vi := range g.Inputs {
		fmt.Printf("input:        %s %v\n", vi.Name, vi.Shape)
	}
	for _, o := range g.Outputs {
		fmt.Printf("output:       %s %v\n", o, shapes[o])
	}
	fmt.Println("operator counts:")
	for op, n := range st.OpCounts {
		fmt.Printf("  %-16s %d\n", op, n)
	}
	return nil
}

func runPartition(args []string) error {
	fs := flag.NewFlagSet("partition", flag.ExitOnError)
	name, cfg := modelFlags(fs)
	targets := fs.String("targets", "5", "comma-separated partition counts")
	seed := fs.Uint64("seed", 1, "contraction seed")
	manual := fs.String("manual", "", "manual slicer: cut node indices (overrides -targets)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	g, err := models.Build(*name, *cfg)
	if err != nil {
		return err
	}
	p, err := partition.NewPartitioner(g)
	if err != nil {
		return err
	}
	var sets []*partition.Set
	if *manual != "" {
		cuts, err := parseInts(*manual)
		if err != nil {
			return err
		}
		s, err := p.SliceAt(cuts)
		if err != nil {
			return err
		}
		sets = append(sets, s)
	} else {
		ts, err := parseInts(*targets)
		if err != nil {
			return err
		}
		sets, err = p.GenerateSets(ts, partition.Options{Seed: *seed})
		if err != nil {
			return err
		}
	}
	for _, set := range sets {
		fmt.Printf("partition set: %d partitions, balance %.2f\n", len(set.Partitions), partition.Balance(set))
		for _, pt := range set.Partitions {
			fmt.Printf("  p%d: %3d nodes, cost %.3g, in %v, out %v\n",
				pt.Index, len(pt.Nodes), pt.Cost, boundaryNames(pt.Inputs), boundaryNames(pt.Outputs))
		}
	}
	return nil
}

func boundaryNames(bs []partition.Boundary) []string {
	out := make([]string, len(bs))
	for i, b := range bs {
		out[i] = b.Name
	}
	return out
}

func runBuild(args []string) error {
	fs := flag.NewFlagSet("build", flag.ExitOnError)
	name, cfg := modelFlags(fs)
	out := fs.String("out", "", "output bundle directory (required)")
	targets := fs.String("targets", "5", "comma-separated partition counts")
	specSet := fs.String("specs", "replica", "variant recipe set: replica, real, or hardened")
	seed := fs.Uint64("seed", 1, "partitioning seed")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *out == "" {
		return fmt.Errorf("-out is required")
	}
	ts, err := parseInts(*targets)
	if err != nil {
		return err
	}
	var specs []diversify.Spec
	switch *specSet {
	case "replica":
		specs = []diversify.Spec{diversify.ReplicaSpec("replica")}
	case "real":
		specs = append(diversify.RealSetupSpecs(), diversify.HeavyTVMSpec())
	case "hardened":
		specs = diversify.HardenedSpecs()
	default:
		return fmt.Errorf("unknown spec set %q", *specSet)
	}
	b, err := core.BuildBundle(core.OfflineConfig{
		ModelName:        *name,
		ModelConfig:      *cfg,
		PartitionTargets: ts,
		PartitionSeed:    *seed,
		Specs:            specs,
	})
	if err != nil {
		return err
	}
	if err := b.Save(*out); err != nil {
		return err
	}
	fmt.Printf("bundle written to %s: %d partition sets, %d specs, %d encrypted files\n",
		*out, len(b.Sets), len(b.Specs), len(b.FS))
	return nil
}

// runInfer is the client half of the serving front door: it builds the
// requested inputs, issues one POST /v1/infer in the chosen codec (float32
// JSON, or -binary for the application/x-mvtee-tensor streaming protocol)
// and prints the response metadata plus a summary of every output tensor.
func runInfer(args []string) error {
	fs := flag.NewFlagSet("infer", flag.ExitOnError)
	addr := fs.String("addr", "http://127.0.0.1:8080", "serving front-door base URL")
	binary := fs.Bool("binary", false, "use the binary streaming wire protocol instead of JSON")
	tenant := fs.String("tenant", "", "tenant name for fairness accounting")
	priority := fs.String("priority", "", "scheduling lane: high, normal (default), low")
	seed := fs.Uint64("seed", 1, "deterministic input fill seed")
	timeout := fs.Duration("timeout", 30*time.Second, "request deadline")
	var inputSpecs []string
	fs.Func("input", "input tensor as name=DIMS with x- or comma-separated dims, e.g. image=1x3x32x32 (repeatable)",
		func(v string) error { inputSpecs = append(inputSpecs, v); return nil })
	if err := fs.Parse(args); err != nil {
		return err
	}
	if len(inputSpecs) == 0 {
		return fmt.Errorf("at least one -input name=DIMS is required")
	}
	prio, err := serve.ParsePriority(*priority)
	if err != nil {
		return err
	}
	rng := rand.New(rand.NewPCG(*seed, 0x6d76746565)) // "mvtee"
	inputs := make(map[string]*tensor.Tensor, len(inputSpecs))
	for _, spec := range inputSpecs {
		name, dims, ok := strings.Cut(spec, "=")
		if !ok || name == "" {
			return fmt.Errorf("bad -input %q (want name=DIMS)", spec)
		}
		shape, err := parseInts(strings.ReplaceAll(dims, "x", ","))
		if err != nil || len(shape) == 0 {
			return fmt.Errorf("bad -input dims %q", dims)
		}
		t := tensor.New(shape...)
		for i := range t.Data() {
			t.Data()[i] = float32(rng.NormFloat64())
		}
		inputs[name] = t
	}

	cl := serve.Client{BaseURL: strings.TrimRight(*addr, "/"), Binary: *binary}
	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()
	start := time.Now()
	resp, err := cl.Infer(ctx, serve.Request{Tenant: *tenant, Priority: prio, Inputs: inputs})
	if err != nil {
		return err
	}
	proto := "json"
	if *binary {
		proto = "binary"
	}
	fmt.Printf("request %d via %s: batch %d (fill %d), server latency %v, round trip %v\n",
		resp.ID, proto, resp.BatchID, resp.BatchFill, resp.Latency.Round(time.Microsecond),
		time.Since(start).Round(time.Microsecond))
	names := make([]string, 0, len(resp.Tensors))
	for name := range resp.Tensors {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		t := resp.Tensors[name]
		n := min(4, t.Size())
		fmt.Printf("output %s %v = %v…\n", name, t.Shape(), t.Data()[:n])
	}
	return nil
}

// runRotate re-keys pool entries of a saved bundle in place (§6.5 "key
// rotation can be conducted on a regular basis"): fresh variant-specific
// KDKs, files re-encrypted, the owner key table rewritten. Evidence digests
// are plaintext digests and stay valid.
func runRotate(args []string) error {
	fs := flag.NewFlagSet("rotate", flag.ExitOnError)
	dir := fs.String("bundle", "", "bundle directory (required)")
	entry := fs.String("entry", "", "single entry key 'setN/pN/SPEC' (default: all entries)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *dir == "" {
		return fmt.Errorf("-bundle is required")
	}
	keys, err := core.LoadKeys(*dir)
	if err != nil {
		return err
	}

	// Reconstruct the minimal bundle state (keys + pool ciphertext) from disk.
	b := &core.Bundle{FS: make(map[string][]byte), Keys: make(map[core.Entry]pfcrypt.KDK)}
	var entries []core.Entry
	for k, kdk := range keys {
		e, err := core.ParseEntryKey(k)
		if err != nil {
			return err
		}
		b.Keys[e] = kdk
		entries = append(entries, e)
		for _, p := range []string{e.GraphPath(), e.SpecPath(), e.ManifestPath(), e.EntrypointPath()} {
			ct, err := os.ReadFile(filepath.Join(*dir, filepath.FromSlash(p)))
			if err != nil {
				return err
			}
			b.FS[p] = ct
		}
	}
	if *entry != "" {
		e, err := core.ParseEntryKey(*entry)
		if err != nil {
			return err
		}
		if _, ok := b.Keys[e]; !ok {
			return fmt.Errorf("no such entry %q", *entry)
		}
		entries = []core.Entry{e}
	}

	for _, e := range entries {
		if err := b.RotateKey(e); err != nil {
			return err
		}
	}
	// Write back the re-encrypted files and the new key table.
	for _, e := range entries {
		for _, p := range []string{e.GraphPath(), e.SpecPath(), e.ManifestPath(), e.EntrypointPath()} {
			if err := os.WriteFile(filepath.Join(*dir, filepath.FromSlash(p)), b.FS[p], 0o644); err != nil {
				return err
			}
		}
	}
	newKeys := make(map[string][]byte, len(b.Keys))
	for e, k := range b.Keys {
		newKeys[core.EntryKeyFor(e.Set, e.Partition, e.Spec)] = k
	}
	kb, err := json.MarshalIndent(newKeys, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(filepath.Join(*dir, core.KeysFile), kb, 0o600); err != nil {
		return err
	}
	fmt.Printf("rotated %d pool entries in %s\n", len(entries), *dir)
	return nil
}
