// Command mvtee-variant runs one variant TEE for process-separated
// deployments: it boots the TEE OS with the public init-variant manifest
// over the saved bundle, dials the monitor over an attested channel, runs
// the two-stage bootstrap (receiving its identity, key and encrypted files
// from the monitor), and serves its partition until shutdown.
//
// The process is generic — which partition and variant spec it becomes is
// assigned dynamically by the monitor from the pre-established pool.
package main

import (
	"flag"
	"log"
	"net"
	"net/http"
	"os"
	"path/filepath"

	"repro/internal/core"
	"repro/internal/enclave"
	"repro/internal/manifest"
	"repro/internal/securechan"
	"repro/internal/teeos"
	"repro/internal/telemetry"
	"repro/internal/variant"
)

func main() {
	bundleDir := flag.String("bundle", "", "bundle directory from mvtee-tool build (required)")
	connect := flag.String("connect", "127.0.0.1:9000", "monitor address")
	telemetryAddr := flag.String("telemetry-addr", "",
		"telemetry HTTP listen address serving /metrics, /trace and /debug/pprof/; empty disables")
	traceRing := flag.Int("trace-ring", 8192,
		"span ring capacity behind /trace; evictions surface on mvtee_trace_spans_dropped")
	flag.Parse()
	log.SetPrefix("mvtee-variant: ")
	log.SetFlags(0)

	if *bundleDir == "" {
		flag.Usage()
		os.Exit(2)
	}
	if *traceRing > 0 {
		telemetry.DefaultTracer = telemetry.NewTracer(*traceRing)
	}
	if *telemetryAddr != "" {
		mux := telemetry.NewMux(telemetry.Default, telemetry.DefaultTracer)
		go func() {
			if err := http.ListenAndServe(*telemetryAddr, mux); err != nil {
				log.Printf("telemetry server: %v", err)
			}
		}()
	}
	if err := run(*bundleDir, *connect); err != nil {
		log.Fatal(err)
	}
}

func run(dir, addr string) error {
	imb, err := os.ReadFile(filepath.Join(dir, core.InitManFile))
	if err != nil {
		return err
	}
	im, err := manifest.Unmarshal(imb)
	if err != nil {
		return err
	}
	plat, err := core.LoadPlatform(dir)
	if err != nil {
		return err
	}
	verifier := enclave.NewVerifier()
	verifier.Trust(plat)

	host := teeos.DirFS(dir)
	initBin, err := host.Get(core.InitEntrypoint)
	if err != nil {
		return err
	}
	encl, err := plat.Launch(enclave.Image{Name: "mvtee-variant", Code: initBin, InitialPages: 64 << 20})
	if err != nil {
		return err
	}
	defer encl.Destroy()
	vos, err := teeos.New(encl, im, host, nil)
	if err != nil {
		return err
	}

	raw, err := net.Dial("tcp", addr)
	if err != nil {
		return err
	}
	if tc, ok := raw.(*net.TCPConn); ok {
		_ = tc.SetNoDelay(true)
	}
	conn, err := securechan.Client(raw, encl, func(r *enclave.Report) error {
		if r == nil {
			return securechan.ErrHandshake
		}
		return verifier.Verify(r, nil)
	})
	if err != nil {
		return err
	}
	log.Printf("connected to monitor at %s, awaiting assignment", addr)
	if err := variant.Run(conn, vos, variant.Options{}); err != nil {
		return err
	}
	log.Printf("shutdown")
	return nil
}
