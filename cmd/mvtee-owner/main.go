// Command mvtee-owner plays the model owner of Figure 6: it attests the
// monitor TEE over the channel handshake (verifying the hardware-signed
// report against the attestation infrastructure's public platform identity
// and the expected monitor measurement), provisions the MVX configuration
// and the pool key table with an anti-replay nonce, and finally verifies the
// initialization results the monitor returns (nonce echoed, one binding per
// claimed variant).
//
// The owner holds only the public bundle metadata, the owner key table and
// the platform's *public* identity — never the simulated hardware secrets.
//
//	mvtee-owner -bundle /tmp/bundle -connect 127.0.0.1:9000 \
//	    -plans "ort-cpu;ort-cpu;ort-cpu,ort-altep,tvm-graph;ort-cpu;ort-cpu"
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"strings"

	"repro/internal/attest"
	"repro/internal/core"
	"repro/internal/enclave"
	"repro/internal/monitor"
	"repro/internal/securechan"
	"repro/internal/wire"
)

func main() {
	bundleDir := flag.String("bundle", "", "bundle directory (owner needs meta, keys and the public platform identity)")
	connect := flag.String("connect", "127.0.0.1:9000", "monitor address")
	setIdx := flag.Int("set", 0, "partition set index")
	plansStr := flag.String("plans", "", "per-partition variant claims: 'spec,spec;spec;...' (required)")
	async := flag.Bool("async", false, "asynchronous cross-validation mode")
	flag.Parse()
	log.SetPrefix("mvtee-owner: ")
	log.SetFlags(0)

	if *bundleDir == "" || *plansStr == "" {
		flag.Usage()
		os.Exit(2)
	}
	if err := run(*bundleDir, *connect, *setIdx, *plansStr, *async); err != nil {
		log.Fatal(err)
	}
}

func parsePlans(s string) []monitor.PartitionPlan {
	var plans []monitor.PartitionPlan
	for _, part := range strings.Split(s, ";") {
		var p monitor.PartitionPlan
		for _, v := range strings.Split(part, ",") {
			if v = strings.TrimSpace(v); v != "" {
				p.Variants = append(p.Variants, v)
			}
		}
		plans = append(plans, p)
	}
	return plans
}

func run(dir, addr string, setIdx int, plansStr string, async bool) error {
	meta, err := core.LoadMeta(dir)
	if err != nil {
		return err
	}
	keys, err := core.LoadKeys(dir)
	if err != nil {
		return err
	}
	pubID, err := core.LoadPlatformIdentity(dir)
	if err != nil {
		return err
	}
	verifier := enclave.NewVerifier()
	if err := verifier.TrustIdentity(pubID); err != nil {
		return err
	}
	wantMeas := enclave.Measure(core.MonitorImage())

	plans := parsePlans(plansStr)
	if setIdx < 0 || setIdx >= len(meta.Sets) {
		return fmt.Errorf("set %d out of range", setIdx)
	}
	if len(plans) != len(meta.Sets[setIdx].Partitions) {
		return fmt.Errorf("%d plans for %d partitions", len(plans), len(meta.Sets[setIdx].Partitions))
	}

	raw, err := net.Dial("tcp", addr)
	if err != nil {
		return err
	}
	// Step 2 (Figure 6): challenge-response attestation of the monitor —
	// the handshake binds the monitor's hardware-signed report to this
	// channel; the owner checks signature, platform and measurement.
	conn, err := securechan.Client(raw, nil, func(r *enclave.Report) error {
		if r == nil {
			return fmt.Errorf("monitor presented no attestation report")
		}
		return verifier.Verify(r, []enclave.Measurement{wantMeas})
	})
	if err != nil {
		return fmt.Errorf("monitor attestation: %w", err)
	}
	log.Printf("monitor attested (measurement %x…)", wantMeas[:6])

	// Step 3: provision MVX configuration + pool keys with a fresh nonce.
	nonce, err := attest.NewNonce()
	if err != nil {
		return err
	}
	mvx := &monitor.MVXConfig{Model: meta.Model, PartitionSet: setIdx, Plans: plans, Async: async}
	cfgJSON, err := mvx.Marshal()
	if err != nil {
		return err
	}
	keyTable := make(map[string][]byte, len(keys))
	for k, v := range keys {
		keyTable[k] = v
	}
	if err := wire.Send(conn, &wire.Provision{Nonce: nonce, Config: cfgJSON, Keys: keyTable}); err != nil {
		return fmt.Errorf("provision: %w", err)
	}
	log.Printf("provisioned MVX config (%d partitions) and %d pool keys", len(plans), len(keys))

	// Step 8: initialization results echo the nonce.
	msg, err := wire.Recv(conn)
	if err != nil {
		return fmt.Errorf("await results: %w", err)
	}
	switch m := msg.(type) {
	case *wire.Ack:
		var want int
		for _, p := range plans {
			want += len(p.Variants)
		}
		if !strings.HasPrefix(m.Detail, fmt.Sprintf("%x:", nonce)) {
			return fmt.Errorf("results do not echo the provisioning nonce (replay?)")
		}
		detail := m.Detail[strings.Index(m.Detail, ":")+1:]
		bound := strings.Count(detail, ",") + 1
		if detail == "" {
			bound = 0
		}
		if bound != want {
			return fmt.Errorf("monitor bound %d variants, expected %d", bound, want)
		}
		log.Printf("initialization verified: %d variants bound (%s)", bound, detail)
		return nil
	case *wire.Error:
		return fmt.Errorf("monitor: %s", m.Message)
	default:
		return fmt.Errorf("unexpected reply %T", msg)
	}
}
