package main

import (
	"log"
	"net"
	"sync/atomic"

	"repro/internal/cluster"
	"repro/internal/enclave"
	"repro/internal/monitor"
	"repro/internal/securechan"
	"repro/internal/wire"
)

// serveReplicas accepts cluster-router connections (mvtee-serve -replicas)
// and serves the engine as a replica over each. Sessions are serial: the
// replica protocol dedicates the engine's output stream to the active
// router, so a second router must wait for the first session to end; a
// reconnecting router (front-end restart, transient link loss) gets a fresh
// session immediately. The engine's per-checkpoint digest tap follows the
// active session through `active`. The router side is unattested (it runs
// outside any TEE, like the model owner's machine); the monitor presents its
// own report so the router can pin the monitor measurement.
func serveReplicas(ln net.Listener, monEncl *enclave.Enclave, eng *monitor.Engine,
	mon *monitor.Monitor, active *atomic.Pointer[cluster.ReplicaServer], hello wire.ReplicaHello) {
	for {
		raw, err := ln.Accept()
		if err != nil {
			return
		}
		if tc, ok := raw.(*net.TCPConn); ok {
			_ = tc.SetNoDelay(true)
		}
		conn, err := securechan.Server(raw, monEncl, nil)
		if err != nil {
			log.Printf("replica handshake: %v", err)
			continue
		}
		srv := cluster.NewReplicaServer(conn, eng, cluster.ReplicaServerOptions{
			Hello:  hello,
			Spares: mon.SpareCount,
		})
		active.Store(srv)
		err = srv.Run()
		active.Store(nil)
		_ = conn.Close()
		if err != nil {
			log.Printf("replica session ended: %v", err)
		} else {
			log.Printf("replica session closed by router")
		}
	}
}
