// Command mvtee-monitor runs the MVTEE monitor TEE as a TCP server for
// process-separated deployments: it accepts variant-TEE connections over
// attested channels, drives the two-stage bootstrap and binding protocol
// (Figure 6) for each, wires the MVX execution engine, and (in demo mode)
// pushes an inference workload through the pipeline.
//
// Start order: run mvtee-tool build first, then mvtee-monitor, then one
// mvtee-variant process per claimed variant (the monitor assigns pool
// entries in connection order, mirroring dynamic initialization from the
// pre-established pool).
//
// Example (5 partitions, 3-variant MVX on the third):
//
//	mvtee-tool build -model resnet-50 -out /tmp/bundle -targets 5 -specs real
//	mvtee-monitor -bundle /tmp/bundle -listen 127.0.0.1:9000 \
//	    -plans "ort-cpu;ort-cpu;ort-cpu,ort-altep,tvm-graph;ort-cpu;ort-cpu" \
//	    -demo 8 -pipelined &
//	for i in $(seq 7); do mvtee-variant -bundle /tmp/bundle -connect 127.0.0.1:9000 & done
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"math/rand/v2"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"sync/atomic"
	"syscall"
	"time"

	"repro/internal/attest"
	"repro/internal/check"
	"repro/internal/cluster"
	"repro/internal/control"
	"repro/internal/core"
	"repro/internal/enclave"
	"repro/internal/monitor"
	"repro/internal/securechan"
	"repro/internal/serve"
	"repro/internal/telemetry"
	"repro/internal/tensor"
	"repro/internal/transcript"
	"repro/internal/wire"
)

func main() {
	bundleDir := flag.String("bundle", "", "bundle directory from mvtee-tool build (required)")
	listen := flag.String("listen", "127.0.0.1:9000", "TCP listen address")
	setIdx := flag.Int("set", 0, "partition set index")
	plansStr := flag.String("plans", "", "per-partition variant claims: 'spec,spec;spec;...' (required unless -await-owner)")
	async := flag.Bool("async", false, "asynchronous cross-validation mode")
	response := flag.String("response", "halt",
		"divergence response: halt, drop-variant, report-only or recover (recover hot-replaces dissenters from the -spares pool)")
	stageTimeout := flag.Duration("stage-timeout", 0,
		"straggler deadline per checkpoint (e.g. 300ms); 0 disables — expired variants are dropped and the batch completes via the surviving quorum")
	inflightWindow := flag.Int("inflight-window", 0,
		"per-stage credit budget: max outstanding checkpoint gathers per stage before batches queue; 0 disables (only the global in-flight depth applies)")
	sparesStr := flag.String("spares", "",
		"per-partition spare variant claims, same syntax as -plans; spares idle pre-attested until a recover response promotes one")
	awaitOwner := flag.Bool("await-owner", false,
		"receive the MVX configuration and pool keys from a connecting mvtee-owner process instead of flags/disk (Figure 6 steps 2-3, 8)")
	replicaListen := flag.String("replica-listen", "",
		"cluster replica TCP listen address: serve this engine to an mvtee-serve -replicas router (leader batches return full results, follower batches return digest votes); exclusive with -serve-addr and the demo workload")
	replicaID := flag.String("replica-id", "",
		"replica name advertised to the cluster router (default: the -replica-listen address)")
	demo := flag.Int("demo", 4, "demo batches to run after bring-up (0 = wait forever)")
	pipelined := flag.Bool("pipelined", false, "stream demo batches (pipelined) instead of sequential")
	telemetryAddr := flag.String("telemetry-addr", "",
		"operator telemetry HTTP listen address (e.g. 127.0.0.1:9090) serving /metrics, /trace, /events, /audit and /debug/pprof/; empty disables")
	audit := flag.Bool("audit", true,
		"record a verifiable inference transcript (signed Merkle audit log) served at GET /audit on -telemetry-addr")
	traceRing := flag.Int("trace-ring", 8192,
		"span ring capacity behind /trace and cluster trace federation; evictions surface on mvtee_trace_spans_dropped")
	serveAddr := flag.String("serve-addr", "",
		"multi-tenant serving HTTP listen address (POST /v1/infer, GET /healthz) with dynamic batching and admission control; replaces the demo workload")
	serveMaxBatch := flag.Int("serve-max-batch", 8, "serving: max requests coalesced into one engine batch")
	serveMaxDelay := flag.Duration("serve-max-delay", 2*time.Millisecond, "serving: batching window before a partial batch flushes")
	serveTenants := flag.String("serve-tenants", "", "serving: per-tenant WRR weights and optional p99 SLOs in ms, e.g. 'acme:3:50,guest:1'")
	serveBinary := flag.Bool("serve-binary", true,
		"serving: accept the application/x-mvtee-tensor binary streaming content type (JSON always stays on)")
	serveAdaptive := flag.Bool("serve-adaptive", true,
		"serving: run the closed-loop control plane (batch window, inflight window, spare pool, tenant SLOs); false pins every knob to its flag value")
	serveSLODefault := flag.Float64("serve-slo-p99-ms", 0,
		"serving: default p99 latency SLO in ms for declared tenants without an explicit one in -serve-tenants (0 = none)")
	flag.Parse()
	log.SetPrefix("mvtee-monitor: ")
	log.SetFlags(0)

	// Resize the process span ring before the engine exists: replica-mode
	// span harvesting and /trace both read DefaultTracer.
	if *traceRing > 0 {
		telemetry.DefaultTracer = telemetry.NewTracer(*traceRing)
	}

	if *bundleDir == "" || (*plansStr == "" && !*awaitOwner) {
		flag.Usage()
		os.Exit(2)
	}
	if *replicaListen != "" && *serveAddr != "" {
		log.Fatal("-replica-listen and -serve-addr are mutually exclusive: a replica engine is dedicated to its cluster router")
	}
	resp, err := monitor.ParseResponse(*response)
	if err != nil {
		log.Fatal(err)
	}
	opts := runOptions{
		dir:            *bundleDir,
		listen:         *listen,
		setIdx:         *setIdx,
		plansStr:       *plansStr,
		sparesStr:      *sparesStr,
		async:          *async,
		response:       resp,
		stageTimeout:   *stageTimeout,
		inflightWindow: *inflightWindow,
		awaitOwner:     *awaitOwner,
		replicaListen:  *replicaListen,
		replicaID:      *replicaID,
		demo:           *demo,
		pipelined:      *pipelined,
		telemetryAddr:  *telemetryAddr,
		audit:          *audit,
		serveAddr:      *serveAddr,
		serveMaxBatch:  *serveMaxBatch,
		serveMaxDelay:  *serveMaxDelay,
		serveTenants:   *serveTenants,
		serveBinary:    *serveBinary,
		serveAdaptive:  *serveAdaptive,
		serveSLOms:     *serveSLODefault,
	}
	if err := run(opts); err != nil {
		log.Fatal(err)
	}
}

// runOptions collects the parsed command line.
type runOptions struct {
	dir, listen         string
	setIdx              int
	plansStr, sparesStr string
	async               bool
	response            monitor.ResponseMode
	stageTimeout        time.Duration
	inflightWindow      int
	awaitOwner          bool
	replicaListen       string
	replicaID           string
	demo                int
	pipelined           bool
	telemetryAddr       string
	audit               bool
	serveAddr           string
	serveMaxBatch       int
	serveMaxDelay       time.Duration
	serveTenants        string
	serveBinary         bool
	serveAdaptive       bool
	serveSLOms          float64
}

func parsePlans(s string) []monitor.PartitionPlan {
	var plans []monitor.PartitionPlan
	for _, part := range strings.Split(s, ";") {
		var p monitor.PartitionPlan
		for _, v := range strings.Split(part, ",") {
			if v = strings.TrimSpace(v); v != "" {
				p.Variants = append(p.Variants, v)
			}
		}
		plans = append(plans, p)
	}
	return plans
}

func run(opts runOptions) error {
	dir, setIdx := opts.dir, opts.setIdx
	meta, err := core.LoadMeta(dir)
	if err != nil {
		return err
	}
	plat, err := core.LoadPlatform(dir)
	if err != nil {
		return err
	}
	verifier := enclave.NewVerifier()
	verifier.Trust(plat)

	monEncl, err := plat.Launch(core.MonitorImage())
	if err != nil {
		return err
	}
	defer monEncl.Destroy()
	mon := monitor.New(monEncl, verifier)

	ln, err := net.Listen("tcp", opts.listen)
	if err != nil {
		return err
	}
	defer ln.Close()

	// Provisioning: either a connecting model owner (Figure 6 steps 2–3)
	// or local flags + the on-disk key table.
	var ownerConn securechan.Conn
	keyFor := func(entryKey string) ([]byte, bool) { return mon.KeyFor(entryKey) }
	if opts.awaitOwner {
		log.Printf("listening on %s, awaiting model owner", ln.Addr())
		raw, err := ln.Accept()
		if err != nil {
			return err
		}
		ownerConn, err = securechan.Server(raw, monEncl, nil)
		if err != nil {
			return fmt.Errorf("owner handshake: %w", err)
		}
		msg, err := wire.Recv(ownerConn)
		if err != nil {
			return fmt.Errorf("await provision: %w", err)
		}
		prov, ok := msg.(*wire.Provision)
		if !ok {
			return fmt.Errorf("expected Provision, got %T", msg)
		}
		if err := mon.Provision(prov); err != nil {
			_ = wire.Send(ownerConn, &wire.Error{Message: err.Error()})
			return err
		}
		setIdx = mon.Config().PartitionSet
		log.Printf("owner provisioned MVX config (%d partitions) and keys", len(mon.Config().Plans))
	} else {
		keys, err := core.LoadKeys(dir)
		if err != nil {
			return err
		}
		keyFor = func(entryKey string) ([]byte, bool) {
			k, ok := keys[entryKey]
			return k, ok
		}
		nonce, err := attest.NewNonce()
		if err != nil {
			return err
		}
		mvx := &monitor.MVXConfig{
			Model:          meta.Model,
			PartitionSet:   setIdx,
			Plans:          parsePlans(opts.plansStr),
			Async:          opts.async,
			Response:       opts.response,
			StageTimeoutMS: int(opts.stageTimeout / time.Millisecond),
			InflightWindow: opts.inflightWindow,
		}
		if opts.sparesStr != "" {
			mvx.Spares = parsePlans(opts.sparesStr)
		}
		cfgJSON, err := mvx.Marshal()
		if err != nil {
			return err
		}
		if err := mon.Provision(&wire.Provision{Nonce: nonce, Config: cfgJSON}); err != nil {
			return err
		}
	}

	if setIdx < 0 || setIdx >= len(meta.Sets) {
		return fmt.Errorf("set %d out of range (%d sets)", setIdx, len(meta.Sets))
	}
	set := meta.Sets[setIdx]
	plans := mon.Config().Plans
	if len(plans) != len(set.Partitions) {
		return fmt.Errorf("%d plans for %d partitions", len(plans), len(set.Partitions))
	}

	// Flatten the plans into connection-order assignments: the claimed
	// variants first, then any spares (which idle pre-attested until a
	// recover response promotes them).
	assignment := func(idPrefix string, pi, vi int, spec string) (monitor.Assignment, error) {
		e := core.Entry{Set: setIdx, Partition: pi, Spec: spec}
		key := core.EntryKeyFor(setIdx, pi, spec)
		kdk, ok := keyFor(key)
		if !ok {
			return monitor.Assignment{}, fmt.Errorf("no pool key for %s", key)
		}
		return monitor.Assignment{
			VariantID:  fmt.Sprintf("%sp%d-%s-%d", idPrefix, pi, spec, vi),
			Partition:  pi,
			Spec:       spec,
			KDK:        kdk,
			Manifest:   e.ManifestPath(),
			Files:      []string{e.GraphPath(), e.SpecPath()},
			Entrypoint: e.EntrypointPath(),
			Evidence:   meta.Evidence[key],
		}, nil
	}
	var assignments, spareAssignments []monitor.Assignment
	for pi, plan := range plans {
		for vi, spec := range plan.Variants {
			a, err := assignment("", pi, vi, spec)
			if err != nil {
				return err
			}
			assignments = append(assignments, a)
		}
	}
	for pi, plan := range mon.Config().Spares {
		for vi, spec := range plan.Variants {
			a, err := assignment("spare-", pi, vi, spec)
			if err != nil {
				return err
			}
			spareAssignments = append(spareAssignments, a)
		}
	}
	log.Printf("listening on %s, awaiting %d variant TEEs (+%d spares)",
		ln.Addr(), len(assignments), len(spareAssignments))

	verify := func(r *enclave.Report) error {
		if r == nil {
			return fmt.Errorf("variant presented no attestation report")
		}
		return verifier.Verify(r, nil)
	}
	accept := func(id string) (securechan.Conn, error) {
		raw, err := ln.Accept()
		if err != nil {
			return nil, err
		}
		if tc, ok := raw.(*net.TCPConn); ok {
			_ = tc.SetNoDelay(true)
		}
		conn, err := securechan.Server(raw, monEncl, verify)
		if err != nil {
			return nil, fmt.Errorf("handshake for %s: %w", id, err)
		}
		return conn, nil
	}
	for _, a := range assignments {
		conn, err := accept(a.VariantID)
		if err != nil {
			return err
		}
		if _, err := mon.Bind(conn, a); err != nil {
			return fmt.Errorf("bind %s: %w", a.VariantID, err)
		}
		log.Printf("bound %s (partition %d, spec %s)", a.VariantID, a.Partition, a.Spec)
	}
	for _, a := range spareAssignments {
		conn, err := accept(a.VariantID)
		if err != nil {
			return err
		}
		mon.AddSpare(conn, a)
		log.Printf("spare %s registered (partition %d, spec %s)", a.VariantID, a.Partition, a.Spec)
	}

	// Real spare factory: scale-up provisions (the adaptive controller's
	// actuator, or an operator request) synthesize fresh pre-attested variant
	// TEEs in-process from the bundle directory instead of failing because no
	// spare happened to be connected at startup.
	factory, err := core.DirSpareFactory(core.SpareFactoryConfig{
		Dir:            dir,
		SetIdx:         setIdx,
		Monitor:        mon,
		MonitorEnclave: monEncl,
		Platform:       plat,
		Verifier:       verifier,
		KeyFor:         keyFor,
	})
	if err != nil {
		return err
	}
	mon.SetSpareFactory(factory)

	// Cluster mode streams per-checkpoint digests to the active router
	// session (early-dissent signal); the tap must be installed before the
	// engine is built.
	var activeReplica atomic.Pointer[cluster.ReplicaServer]
	if opts.replicaListen != "" {
		mon.SetDigestSink(func(batchID uint64, stage int, d check.Digest) {
			if s := activeReplica.Load(); s != nil {
				s.StageDigestSink(batchID, stage, d)
			}
		})
	}

	// Verifiable transcript: heads are signed by this monitor enclave, so an
	// offline auditor holding the bundle's platform identity can verify them
	// without trusting the serving host. Installed before the engine build
	// (EngineConfig snapshots the recorder).
	var rec *transcript.Recorder
	if opts.audit {
		rec = transcript.NewRecorder(transcript.Config{
			Signer:   monEncl,
			Model:    meta.ModelDigest(),
			Bindings: func() transcript.Hash { return mon.BindingsDigest() },
			Metrics:  telemetry.Default,
		})
		defer rec.Close()
		mon.SetTranscript(rec)
	}

	stages := make([]monitor.StageSpec, len(set.Partitions))
	for pi, p := range set.Partitions {
		for _, in := range p.Inputs {
			stages[pi].Inputs = append(stages[pi].Inputs, in.Name)
		}
		for _, out := range p.Outputs {
			stages[pi].Outputs = append(stages[pi].Outputs, out.Name)
		}
	}
	var gin []string
	for _, vi := range meta.ModelInputs {
		gin = append(gin, vi.Name)
	}
	eng, err := mon.BuildEngine(gin, meta.ModelOutputs, stages)
	if err != nil {
		return err
	}
	eng.Start()
	defer eng.Stop()
	log.Printf("engine started (%d stages)", len(stages))

	// Operator telemetry endpoint: process-wide metrics and spans plus this
	// engine's event stream. Serving failures are logged, never fatal — the
	// inference plane does not depend on the observability plane.
	if opts.telemetryAddr != "" {
		mux := telemetry.NewMux(telemetry.Default, telemetry.DefaultTracer)
		mux.Handle("/events", telemetry.SSE(eng.EventBus()))
		if rec != nil {
			mux.Handle("/audit", transcript.Handler(rec,
				transcript.HandlerConfig{Bindings: func() any { return mon.Bindings() }}))
		}
		tln, err := net.Listen("tcp", opts.telemetryAddr)
		if err != nil {
			return fmt.Errorf("telemetry listen: %w", err)
		}
		defer tln.Close()
		go func() {
			if err := http.Serve(tln, mux); err != nil && !errors.Is(err, net.ErrClosed) {
				log.Printf("telemetry server: %v", err)
			}
		}()
		log.Printf("telemetry on http://%s (/metrics /trace /events /debug/pprof/)", tln.Addr())
	}

	// Figure 6 step 8: send the initialization results, echoing the owner's
	// nonce for freshness.
	if ownerConn != nil {
		var ids []string
		for _, rec := range mon.Bindings() {
			ids = append(ids, rec.VariantID)
		}
		detail := fmt.Sprintf("%x:%s", mon.Nonce(), strings.Join(ids, ","))
		if err := wire.Send(ownerConn, &wire.Ack{Detail: detail}); err != nil {
			return fmt.Errorf("report results to owner: %w", err)
		}
		_ = ownerConn.Close()
		log.Printf("initialization results sent to owner")
	}

	shapes := make(map[string][]int, len(meta.ModelInputs))
	for _, vi := range meta.ModelInputs {
		shapes[vi.Name] = vi.Shape
	}

	// Cluster replica mode: serve the engine to an mvtee-serve router until
	// killed. The engine's output stream is dedicated to the router session,
	// so both the serving front door and the demo workload are skipped.
	if opts.replicaListen != "" {
		rln, err := net.Listen("tcp", opts.replicaListen)
		if err != nil {
			return fmt.Errorf("replica listen: %w", err)
		}
		defer rln.Close()
		id := opts.replicaID
		if id == "" {
			id = rln.Addr().String()
		}
		hello := wire.ReplicaHello{
			ID:           id,
			Variants:     len(assignments),
			GraphInputs:  gin,
			GraphOutputs: meta.ModelOutputs,
			ItemShapes:   shapes,
		}
		go serveReplicas(rln, monEncl, eng, mon, &activeReplica, hello)
		log.Printf("cluster replica %q on %s, awaiting router", id, rln.Addr())
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		got := <-sig
		log.Printf("%v: replica shutting down", got)
		return nil
	}

	// Serving mode: multiplex concurrent tenants onto the engine with
	// dynamic batching and admission control instead of the demo workload.
	if opts.serveAddr != "" {
		return serveFrontend(mon, eng, shapes, opts)
	}

	if opts.demo <= 0 {
		select {} // serve until killed
	}
	demo := opts.demo

	in := demoInput(meta)
	inputs := map[string]*tensor.Tensor{meta.ModelInputs[0].Name: in}
	start := time.Now()
	if opts.pipelined {
		batches := make([]map[string]*tensor.Tensor, demo)
		for i := range batches {
			batches[i] = inputs
		}
		results, err := streamAll(eng, batches)
		if err != nil {
			return err
		}
		el := time.Since(start)
		log.Printf("pipelined: %d batches in %v (%.2f batches/s)", len(results), el,
			float64(len(results))/el.Seconds())
	} else {
		for i := 0; i < demo; i++ {
			r, err := eng.Infer(inputs)
			if err != nil {
				return err
			}
			log.Printf("batch %d done in %v", r.ID, r.Latency)
		}
		el := time.Since(start)
		log.Printf("sequential: %d batches in %v (%.2f batches/s)", demo, el, float64(demo)/el.Seconds())
	}
	for _, ev := range eng.Events() {
		log.Printf("event: %s stage=%d batch=%d variants=%v", ev.Kind, ev.Stage, ev.BatchID, ev.Variants)
	}
	return nil
}

// serveFrontend runs the multi-tenant serving front door over the engine
// until SIGINT/SIGTERM, then drains gracefully (in-flight batches complete,
// new work gets 503).
func serveFrontend(mon *monitor.Monitor, eng *monitor.Engine, itemShapes map[string][]int, opts runOptions) error {
	tenants := make(map[string]serve.TenantConfig)
	if opts.serveTenants != "" {
		for _, part := range strings.Split(opts.serveTenants, ",") {
			fields := strings.Split(strings.TrimSpace(part), ":")
			if len(fields) < 2 || len(fields) > 3 || fields[0] == "" {
				return fmt.Errorf("bad -serve-tenants entry %q (want name:weight[:slo_ms])", part)
			}
			w, err := strconv.Atoi(fields[1])
			if err != nil || w <= 0 {
				return fmt.Errorf("bad -serve-tenants weight in %q", part)
			}
			tc := serve.TenantConfig{Weight: w}
			if len(fields) == 3 {
				ms, err := strconv.ParseFloat(fields[2], 64)
				if err != nil || ms <= 0 {
					return fmt.Errorf("bad -serve-tenants slo_ms in %q", part)
				}
				tc.SLO = time.Duration(ms * float64(time.Millisecond))
			} else if opts.serveSLOms > 0 {
				tc.SLO = time.Duration(opts.serveSLOms * float64(time.Millisecond))
			}
			tenants[fields[0]] = tc
		}
	}
	srv := serve.New(eng, serve.Config{
		MaxBatch:      opts.serveMaxBatch,
		MaxDelay:      opts.serveMaxDelay,
		Tenants:       tenants,
		ItemShapes:    itemShapes,
		DisableBinary: !opts.serveBinary,
	})
	defer srv.Close()

	if opts.serveAdaptive {
		// Spare scale-up needs a provisioning factory; a process-separated
		// monitor has none (spares arrive over the network), in which case
		// the spare loop's provision attempts fail harmlessly and the other
		// three loops still run.
		ctl := control.New(control.Config{
			Frontend: srv,
			Pipeline: eng,
			Spares:   mon,
			Events:   eng.EventBus(),
		})
		decSub := ctl.Decisions().Subscribe(64)
		go func() {
			for d := range decSub.C {
				log.Printf("control: %s %s %s %d -> %d (%s)", d.Loop, d.Direction, d.Knob, d.From, d.To, d.Reason)
			}
		}()
		ctl.Start()
		defer func() { ctl.Stop(); decSub.Close() }()
		log.Printf("adaptive control plane on; disable with -serve-adaptive=false")
	}

	ln, err := net.Listen("tcp", opts.serveAddr)
	if err != nil {
		return fmt.Errorf("serve listen: %w", err)
	}
	// Bound slow clients on the public front door (see cmd/mvtee-serve).
	hs := &http.Server{
		Handler:           serve.Handler(srv),
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       30 * time.Second,
		IdleTimeout:       120 * time.Second,
	}
	errCh := make(chan error, 1)
	go func() { errCh <- hs.Serve(ln) }()
	log.Printf("serving on http://%s (POST /v1/infer, GET /healthz; max-batch %d, window %v)",
		ln.Addr(), opts.serveMaxBatch, opts.serveMaxDelay)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errCh:
		return err
	case got := <-sig:
		log.Printf("%v: draining", got)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Drain(ctx); err != nil {
		log.Printf("drain incomplete: %v", err)
	} else {
		log.Printf("drain complete")
	}
	return hs.Shutdown(ctx)
}

func streamAll(eng *monitor.Engine, batches []map[string]*tensor.Tensor) ([]monitor.BatchResult, error) {
	results := make([]monitor.BatchResult, 0, len(batches))
	errCh := make(chan error, 1)
	go func() {
		for range batches {
			r, ok := <-eng.Outputs()
			if !ok {
				errCh <- fmt.Errorf("engine stopped")
				return
			}
			if r.Err != nil {
				errCh <- r.Err
				return
			}
			results = append(results, r)
		}
		errCh <- nil
	}()
	for _, b := range batches {
		if _, err := eng.Submit(b); err != nil {
			return nil, err
		}
	}
	return results, <-errCh
}

func demoInput(meta *core.BundleMeta) *tensor.Tensor {
	shape := meta.ModelInputs[0].Shape
	in := tensor.New(shape...)
	rng := rand.New(rand.NewPCG(42, 42))
	d := in.Data()
	for i := range d {
		d[i] = float32(rng.NormFloat64())
	}
	return in
}
