// Command mvtee-bench regenerates the paper's evaluation (§6): one table per
// figure plus the Table 1 security analysis.
//
//	mvtee-bench -all                   # everything, simulated-testbed mode
//	mvtee-bench -fig 9 -mode live      # one figure on the live engine
//	mvtee-bench -table 1               # the security analysis
//
// Modes:
//   - sim (default): the monitor's scheduling is replayed on a calibrated
//     multicore discrete-event model of the paper's 36-core SGX testbed
//     (service/transfer/check costs measured from real executions on this
//     host; see internal/pipesim);
//   - live: wall-clock measurement of the real engine on this host. On a
//     single-core host, pipelined ≈ sequential by physics.
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"strings"

	"repro/internal/bench"
	"repro/internal/models"
	"repro/internal/telemetry"
)

func main() {
	fig := flag.Int("fig", 0, "figure to regenerate (9-14)")
	table := flag.Int("table", 0, "table to regenerate (1)")
	all := flag.Bool("all", false, "regenerate every figure and table")
	ablations := flag.Bool("ablations", false, "run the design-choice ablations")
	mode := flag.String("mode", "sim", "measurement mode: sim or live")
	modelList := flag.String("models", "", "comma-separated model subset (default all seven)")
	batches := flag.Int("batches", 0, "live batches per measurement (default 10)")
	simBatches := flag.Int("sim-batches", 0, "simulated stream length (default 64)")
	teeFactor := flag.Float64("teefactor", 0, "SGX-cost multiplier for sim mode (default 24)")
	inflightWindow := flag.Int("inflight-window", 0, "per-stage credit budget for the simulated pipelined engine (default 0 = disabled)")
	scale := flag.Float64("scale", 0, "model channel scale (default 0.25)")
	inputSize := flag.Int("input-size", 0, "model input resolution (default 32)")
	perf := flag.Bool("perf", false, "run the hot-path microbenchmarks and write BENCH_<rev>.json")
	compare := flag.Bool("compare", false, "compare two BENCH_<rev>.json reports (args: old.json new.json); exit 1 if a gated hot-path benchmark regressed")
	threshold := flag.Float64("regress-threshold", bench.DefaultRegressionThreshold,
		"fractional ns/op slowdown on a gated benchmark that fails -compare")
	rev := flag.String("rev", "dev", "revision label for the -perf report filename")
	note := flag.String("note", "", "extra caveat/context text embedded in the -perf report")
	telemetryAddr := flag.String("telemetry-addr", "",
		"telemetry HTTP listen address serving /metrics, /trace and /debug/pprof/ during the run; empty disables")
	flag.Parse()

	if *telemetryAddr != "" {
		mux := telemetry.NewMux(telemetry.Default, telemetry.DefaultTracer)
		go func() {
			if err := http.ListenAndServe(*telemetryAddr, mux); err != nil {
				log.Printf("mvtee-bench: telemetry server: %v", err)
			}
		}()
	}

	if *compare {
		if flag.NArg() != 2 {
			fmt.Fprintln(os.Stderr, "mvtee-bench: -compare wants exactly two args: old.json new.json")
			os.Exit(2)
		}
		oldRep, err := bench.ReadPerfJSON(flag.Arg(0))
		if err != nil {
			fmt.Fprintf(os.Stderr, "mvtee-bench: compare: %v\n", err)
			os.Exit(1)
		}
		newRep, err := bench.ReadPerfJSON(flag.Arg(1))
		if err != nil {
			fmt.Fprintf(os.Stderr, "mvtee-bench: compare: %v\n", err)
			os.Exit(1)
		}
		rows, failures := bench.ComparePerf(oldRep, newRep, *threshold)
		bench.WriteCompareTable(os.Stdout, oldRep.Rev, newRep.Rev, rows)
		if len(failures) > 0 {
			fmt.Fprintf(os.Stderr, "\nmvtee-bench: %d gated benchmark(s) regressed beyond %.0f%%:\n",
				len(failures), 100**threshold)
			for _, f := range failures {
				fmt.Fprintf(os.Stderr, "  %s\n", f)
			}
			os.Exit(1)
		}
		fmt.Printf("\nall gated benchmarks within +%.0f%% of %s\n", 100**threshold, oldRep.Rev)
		return
	}

	if *perf {
		if *rev == "" {
			fmt.Fprintln(os.Stderr, "mvtee-bench: -perf requires a non-empty -rev label")
			os.Exit(2)
		}
		rep, err := bench.RunPerf(*rev, *note, os.Stderr)
		if err != nil {
			fmt.Fprintf(os.Stderr, "mvtee-bench: perf: %v\n", err)
			os.Exit(1)
		}
		name := fmt.Sprintf("BENCH_%s.json", *rev)
		f, err := os.Create(name)
		if err != nil {
			fmt.Fprintf(os.Stderr, "mvtee-bench: perf: %v\n", err)
			os.Exit(1)
		}
		if err := bench.WritePerfJSON(f, rep); err == nil {
			err = f.Close()
		} else {
			f.Close()
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "mvtee-bench: perf: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s (%d benchmarks)\n", name, len(rep.Results))
		return
	}

	o := bench.Options{
		Batches:     *batches,
		ModelConfig: models.Config{Scale: *scale, InputSize: *inputSize},
	}
	if *modelList != "" {
		o.Models = strings.Split(*modelList, ",")
	}
	so := bench.SimOptions{Options: o, TEEFactor: *teeFactor, SimBatches: *simBatches, InflightWindow: *inflightWindow}

	figs := map[int]struct {
		title string
		live  func(bench.Options) ([]bench.Row, error)
		sim   func(bench.SimOptions) ([]bench.Row, error)
	}{
		9:  {"Figure 9: Performance Impact of Random-Balanced Partitioning", bench.Fig9, bench.SimFig9},
		10: {"Figure 10: Encryption and Checkpoint Overheads", bench.Fig10, bench.SimFig10},
		11: {"Figure 11: Horizontal Variant Scaling (Selective MVX)", bench.Fig11, bench.SimFig11},
		12: {"Figure 12: Vertical Variant Scaling (Selective MVX)", bench.Fig12, bench.SimFig12},
		13: {"Figure 13: Asynchronous Cross-validation vs Sync", bench.Fig13, bench.SimFig13},
		14: {"Figure 14: MVTEE Performance in Real-World Setup", bench.Fig14, bench.SimFig14},
	}

	run := func(n int) {
		f, ok := figs[n]
		if !ok {
			fmt.Fprintf(os.Stderr, "mvtee-bench: unknown figure %d\n", n)
			os.Exit(2)
		}
		var rows []bench.Row
		var err error
		title := f.title
		switch *mode {
		case "live":
			title += " [live engine]"
			rows, err = f.live(o)
		case "sim":
			title += " [simulated multicore testbed]"
			rows, err = f.sim(so)
		default:
			fmt.Fprintf(os.Stderr, "mvtee-bench: unknown mode %q\n", *mode)
			os.Exit(2)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "mvtee-bench: figure %d: %v\n", n, err)
			os.Exit(1)
		}
		bench.WriteTable(os.Stdout, title, rows)
	}
	runTable1 := func() {
		results, err := bench.Table1(o)
		if err != nil {
			fmt.Fprintf(os.Stderr, "mvtee-bench: table 1: %v\n", err)
			os.Exit(1)
		}
		bench.WriteSecurityTable(os.Stdout, "Table 1: TensorFlow Vulnerabilities and Defending Variants", results)
		fc, err := bench.FaultCases(o)
		if err != nil {
			fmt.Fprintf(os.Stderr, "mvtee-bench: fault cases: %v\n", err)
			os.Exit(1)
		}
		bench.WriteSecurityTable(os.Stdout, "Runtime Fault Attacks (§6.5)", fc)
	}

	runAblations := func() {
		type abl struct {
			title string
			f     func() ([]bench.AblationRow, error)
		}
		for _, a := range []abl{
			{"Ablation: random-balanced vs chain-split partitioning",
				func() ([]bench.AblationRow, error) { return bench.AblationPartitioning(so) }},
			{"Ablation: voting strategy cost",
				func() ([]bench.AblationRow, error) { return bench.AblationVoting(o) }},
			{"Ablation: MVX scale vs core demand",
				func() ([]bench.AblationRow, error) { return bench.AblationCores(so) }},
			{"Ablation: attested bootstrap latency (Figure 6 path)",
				func() ([]bench.AblationRow, error) { return bench.AblationBootstrap(o) }},
		} {
			rows, err := a.f()
			if err != nil {
				fmt.Fprintf(os.Stderr, "mvtee-bench: %s: %v\n", a.title, err)
				os.Exit(1)
			}
			bench.WriteAblationTable(os.Stdout, a.title, rows)
		}
	}

	switch {
	case *all:
		for _, n := range []int{9, 10, 11, 12, 13, 14} {
			run(n)
		}
		runTable1()
		runAblations()
	case *ablations:
		runAblations()
	case *fig != 0:
		run(*fig)
	case *table == 1:
		runTable1()
	default:
		flag.Usage()
		os.Exit(2)
	}
}
