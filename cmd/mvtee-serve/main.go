// Command mvtee-serve is the multi-tenant serving front-end: it deploys an
// MVTEE pipeline in process (offline build + attested online bring-up via
// the facade) and serves concurrent client inference over HTTP with dynamic
// micro-batching, per-tenant admission control and priority lanes.
//
//	mvtee-serve -model resnet-50 -listen 127.0.0.1:8080 \
//	    -max-batch 8 -max-delay 2ms -tenants "acme:3:50,guest:1"
//
//	curl -s localhost:8080/v1/infer -d '{
//	  "tenant": "acme", "priority": "high",
//	  "inputs": {"image": {"shape": [1,3,32,32], "data": [/* 3072 floats */]}}
//	}'
//
// Overloaded tenants receive 429 with a Retry-After hint instead of
// unbounded queueing; SIGINT/SIGTERM triggers a graceful drain (in-flight
// batches complete, new work is refused with 503). For process-separated
// deployments use mvtee-monitor -serve-addr instead.
//
// By default an adaptive control plane (internal/control) retunes the
// batching window, the engine's inflight credit window, the spare pool and
// per-tenant scheduling from live telemetry; -adaptive=false pins every
// knob to its flag value.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	mvtee "repro"
	"repro/internal/control"
	"repro/internal/monitor"
	"repro/internal/serve"
	"repro/internal/telemetry"
	"repro/internal/transcript"
)

func main() {
	model := flag.String("model", "resnet-50", "model replica to deploy")
	stagesN := flag.Int("stages", 5, "pipeline partition count")
	mvxStage := flag.Int("mvx-stage", 2, "stage protected by 3-variant MVX (-1 = none, all fast path)")
	scale := flag.Float64("scale", 0, "model channel scale (default 0.25)")
	inputSize := flag.Int("input-size", 0, "model input resolution (default 32)")
	listen := flag.String("listen", "127.0.0.1:8080", "serving HTTP listen address")
	maxBatch := flag.Int("max-batch", 8, "max requests coalesced into one engine batch")
	maxDelay := flag.Duration("max-delay", 2*time.Millisecond, "batching window: a partial batch flushes this long after its first request")
	tenantQueue := flag.Int("tenant-queue", 64, "per-tenant pending-request cap")
	globalQueue := flag.Int("global-queue", 1024, "global pending-request cap")
	tenantsStr := flag.String("tenants", "", "per-tenant WRR weights and optional p99 SLOs in ms, e.g. 'acme:3:50,guest:1' (unknown tenants get weight 1)")
	adaptive := flag.Bool("adaptive", true, "run the closed-loop control plane (batch window, inflight window, spare pool, tenant SLOs); false pins every knob to its flag value")
	sloDefault := flag.Float64("slo-p99-ms", 0, "default p99 latency SLO in ms for declared tenants without an explicit one in -tenants (0 = none)")
	epoch := flag.Duration("control-epoch", 500*time.Millisecond, "control-plane decision tick")
	binaryProto := flag.Bool("binary-protocol", true,
		"accept the application/x-mvtee-tensor binary streaming content type on /v1/infer (JSON always stays on)")
	audit := flag.Bool("audit", true,
		"record a verifiable inference transcript (signed Merkle audit log) and serve it at GET /audit on -telemetry-addr; mvtee-tool verify consumes it")
	auditHeadEvery := flag.Int("audit-head-every", 32, "sign a new transcript tree head every N leaves")
	auditSample := flag.Int("audit-sample", 16, "retain every Nth batch's inputs for offline replay (-1 disables sampling)")
	drainTimeout := flag.Duration("drain-timeout", 10*time.Second, "graceful-drain deadline on SIGINT/SIGTERM")
	telemetryAddr := flag.String("telemetry-addr", "",
		"operator telemetry HTTP listen address serving /metrics, /trace, /events, /debug/flight and /debug/pprof/ (plus /metrics/cluster in cluster mode); empty disables")
	traceRing := flag.Int("trace-ring", 8192,
		"span ring capacity behind /trace; in cluster mode the ring also holds merged replica spans, so size it for (batches in flight x spans per batch x replicas) — evictions surface on mvtee_trace_spans_dropped")
	replicas := flag.String("replicas", "",
		"cluster mode: comma-separated mvtee-monitor -replica-listen addresses to route over instead of deploying in process; the local -model/-stages flags are ignored")
	replicaBundle := flag.String("replica-bundle", "",
		"cluster mode: bundle directory whose platform identity pins each replica monitor's attestation; empty skips verification (trust the network)")
	clusterVerify := flag.Int("cluster-verify", 1,
		"cluster mode: follower replicas cross-checking each batch (0 = pure load balancing with failover)")
	clusterSync := flag.Bool("cluster-sync", false,
		"cluster mode: hold each result until every follower vote lands (fail on dissent) instead of async dissent telemetry")
	clusterForward := flag.String("cluster-forward", "digest",
		"cluster mode: follower result forwarding — 'digest' (46-byte votes) or 'tensor' (full outputs, the naive baseline)")
	flag.Parse()
	log.SetPrefix("mvtee-serve: ")
	log.SetFlags(0)

	// Resize the process span ring before anything records into it: the
	// router, the serve scheduler and (in-process mode) the engine all share
	// DefaultTracer, so /trace serves one merged timeline.
	if *traceRing > 0 {
		telemetry.DefaultTracer = telemetry.NewTracer(*traceRing)
	}

	tenants, err := parseTenants(*tenantsStr, *sloDefault)
	if err != nil {
		log.Fatal(err)
	}
	o := options{
		model: *model, stages: *stagesN, mvxStage: *mvxStage,
		scale: *scale, inputSize: *inputSize,
		listen: *listen, telemetryAddr: *telemetryAddr,
		drainTimeout: *drainTimeout,
		adaptive:     *adaptive,
		controlEpoch: *epoch,
		serveCfg: serve.Config{
			MaxBatch:      *maxBatch,
			MaxDelay:      *maxDelay,
			TenantQueue:   *tenantQueue,
			GlobalQueue:   *globalQueue,
			Tenants:       tenants,
			DisableBinary: !*binaryProto,
		},
		replicas:       *replicas,
		replicaBundle:  *replicaBundle,
		clusterVerify:  *clusterVerify,
		clusterSync:    *clusterSync,
		clusterForward: *clusterForward,
		audit:          *audit,
		auditHeadEvery: *auditHeadEvery,
		auditSample:    *auditSample,
	}
	if o.replicas != "" {
		err = runCluster(o)
	} else {
		err = run(o)
	}
	if err != nil {
		log.Fatal(err)
	}
}

type options struct {
	model            string
	stages, mvxStage int
	scale            float64
	inputSize        int
	listen           string
	telemetryAddr    string
	drainTimeout     time.Duration
	adaptive         bool
	controlEpoch     time.Duration
	serveCfg         serve.Config
	replicas         string
	replicaBundle    string
	clusterVerify    int
	clusterSync      bool
	clusterForward   string
	audit            bool
	auditHeadEvery   int
	auditSample      int
}

// parseTenants parses "name:weight[:slo_ms]" entries; sloDefaultMs (if > 0)
// applies to declared tenants that omit their own SLO.
func parseTenants(s string, sloDefaultMs float64) (map[string]serve.TenantConfig, error) {
	if s == "" {
		return nil, nil
	}
	out := make(map[string]serve.TenantConfig)
	for _, part := range strings.Split(s, ",") {
		fields := strings.Split(strings.TrimSpace(part), ":")
		if len(fields) < 2 || len(fields) > 3 || fields[0] == "" {
			return nil, fmt.Errorf("bad -tenants entry %q (want name:weight[:slo_ms])", part)
		}
		w, err := strconv.Atoi(fields[1])
		if err != nil || w <= 0 {
			return nil, fmt.Errorf("bad -tenants weight in %q", part)
		}
		tc := serve.TenantConfig{Weight: w}
		if len(fields) == 3 {
			ms, err := strconv.ParseFloat(fields[2], 64)
			if err != nil || ms <= 0 {
				return nil, fmt.Errorf("bad -tenants slo_ms in %q", part)
			}
			tc.SLO = time.Duration(ms * float64(time.Millisecond))
		} else if sloDefaultMs > 0 {
			tc.SLO = time.Duration(sloDefaultMs * float64(time.Millisecond))
		}
		out[fields[0]] = tc
	}
	return out, nil
}

func run(o options) error {
	// Offline phase: partition the model and build the diversified pool.
	bundle, err := mvtee.BuildBundle(mvtee.OfflineConfig{
		ModelName:        o.model,
		ModelConfig:      mvtee.ModelConfig{Scale: o.scale, InputSize: o.inputSize},
		PartitionTargets: []int{o.stages},
		Specs:            mvtee.RealSetupSpecs(),
	})
	if err != nil {
		return fmt.Errorf("build bundle: %w", err)
	}

	// Online phase: attested bring-up, MVX on the protected stage.
	plans := make([]mvtee.PartitionPlan, o.stages)
	for i := range plans {
		plans[i] = mvtee.PartitionPlan{Variants: []string{"ort-cpu"}}
	}
	if o.mvxStage >= 0 && o.mvxStage < o.stages {
		plans[o.mvxStage] = mvtee.PartitionPlan{Variants: []string{"ort-cpu", "ort-altep", "tvm-graph"}}
	}
	dep, err := mvtee.Deploy(bundle, 0, mvtee.DeployConfig{
		MVX: &mvtee.MVXConfig{
			Model:    o.model,
			Plans:    plans,
			Criteria: []mvtee.Criterion{{Metric: mvtee.AllClose, RTol: 5e-2, ATol: 1e-3}},
		},
		Encrypt: true,
		// The transcript recorder signs with the monitor enclave, which only
		// exists after bring-up — so the engine build is deferred, the
		// recorder installed, and the engine rebuilt below before starting.
		DeferEngineStart: true,
	})
	if err != nil {
		return fmt.Errorf("deploy: %w", err)
	}
	defer dep.Close()
	log.Printf("deployed %s: %d stages, MVX on stage %d", o.model, o.stages, o.mvxStage)

	var rec *transcript.Recorder
	var bindings func() any
	var identity []byte
	if o.audit {
		rec = transcript.NewRecorder(transcript.Config{
			Signer:      dep.Monitor.Enclave(),
			Model:       transcript.Hash(bundle.ModelDigest()),
			Bindings:    func() transcript.Hash { return dep.Monitor.BindingsDigest() },
			HeadEvery:   o.auditHeadEvery,
			SampleEvery: o.auditSample,
			Metrics:     telemetry.Default,
		})
		defer rec.Close()
		dep.Monitor.SetTranscript(rec)
		if _, err := dep.RebuildEngine(); err != nil {
			return fmt.Errorf("rebuild engine with transcript: %w", err)
		}
		bindings = func() any { return dep.Monitor.Bindings() }
		if identity, err = dep.PlatformIdentity(); err != nil {
			return fmt.Errorf("export platform identity: %w", err)
		}
		log.Printf("audit transcript on: head every %d leaves, replay sample every %d batches", o.auditHeadEvery, o.auditSample)
	}
	dep.Start()

	// Declare the model's input interface so malformed requests die at
	// admission instead of inside the engine.
	o.serveCfg.ItemShapes = make(map[string][]int, len(bundle.Model.Inputs))
	for _, vi := range bundle.Model.Inputs {
		o.serveCfg.ItemShapes[vi.Name] = vi.Shape
	}
	events := dep.Engine.EventBus()
	return frontend(o, dep.Engine, dep.Engine, dep.Monitor, events,
		observability{flight: newFlightRecorder(events), audit: rec,
			auditBindings: bindings, auditIdentity: identity})
}

// frontend runs the serving front door — batching server, adaptive control
// plane, telemetry, HTTP listener, graceful drain — over any engine: the
// in-process deployment's or a cluster router's. spares and events may be
// nil (the control plane skips the corresponding loops).
func frontend(o options, eng serve.Engine, pipeline control.Pipeline,
	spares control.SparePool, events *telemetry.Bus[monitor.Event],
	obs observability) error {
	srv := serve.New(eng, o.serveCfg)
	defer srv.Close()

	// The flight recorder's source set is fixed at Start; the ladder source
	// needs the engine, so it lands here rather than in newFlightRecorder.
	// In cluster mode the router also triggers it directly (failover,
	// dissent, replica loss, demotion); in-process mode converts ladder
	// demotion events below.
	if obs.flight != nil {
		addLadderSource(obs.flight, eng)
		obs.flight.Start()
		defer obs.flight.Stop()
	}
	if obs.flight != nil && events != nil && obs.router == nil {
		evSub := events.Subscribe(64)
		defer evSub.Close()
		go func() {
			for ev := range evSub.C {
				if ev.Kind == monitor.EventLadderDemoted {
					obs.flight.Trigger(telemetry.FlightReasonDemotion)
				}
			}
		}()
	}

	if o.adaptive {
		ctl := control.New(control.Config{
			Epoch:    o.controlEpoch,
			Frontend: srv,
			Pipeline: pipeline,
			Spares:   spares,
			Events:   events,
		})
		// Every actuation is visible: log decisions as they land (they also
		// flow to mvtee_control_decisions_total and the knob gauges).
		decSub := ctl.Decisions().Subscribe(64)
		go func() {
			for d := range decSub.C {
				if d.Tenant != "" {
					log.Printf("control: %s %s %s[%s] %d -> %d (%s)", d.Loop, d.Direction, d.Knob, d.Tenant, d.From, d.To, d.Reason)
				} else {
					log.Printf("control: %s %s %s %d -> %d (%s)", d.Loop, d.Direction, d.Knob, d.From, d.To, d.Reason)
				}
				// Decisions annotate the flight timeline; sustained SLO
				// escalations open an incident.
				noteDecision(obs.flight, d)
			}
		}()
		ctl.Start()
		defer func() { ctl.Stop(); decSub.Close() }()
		log.Printf("adaptive control plane on (epoch %v); disable with -adaptive=false", o.controlEpoch)
	}

	if o.telemetryAddr != "" {
		mux := telemetry.NewMux(telemetry.Default, telemetry.DefaultTracer)
		if events != nil {
			mux.Handle("/events", telemetry.SSE(events))
		}
		mux.Handle("/debug/flight", obs.flight.Handler())
		if obs.audit != nil {
			mux.Handle("/audit", transcript.Handler(obs.audit,
				transcript.HandlerConfig{Bindings: obs.auditBindings, Identity: obs.auditIdentity}))
		}
		if obs.router != nil {
			mux.Handle("/metrics/cluster",
				clusterMetricsHandler(obs.router, newSLOBurn(o.serveCfg.Tenants)))
		}
		tln, err := net.Listen("tcp", o.telemetryAddr)
		if err != nil {
			return fmt.Errorf("telemetry listen: %w", err)
		}
		defer tln.Close()
		go func() {
			if err := http.Serve(tln, mux); err != nil && !errors.Is(err, net.ErrClosed) {
				log.Printf("telemetry server: %v", err)
			}
		}()
		log.Printf("telemetry on http://%s", tln.Addr())
	}

	ln, err := net.Listen("tcp", o.listen)
	if err != nil {
		return err
	}
	// The public front door must bound slow clients itself: without header/
	// read timeouts a trickled request holds a connection (and its partially
	// decoded body) open indefinitely, exhausting the listener before
	// admission control ever sees a request.
	hs := &http.Server{
		Handler:           serve.Handler(srv),
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       30 * time.Second,
		IdleTimeout:       120 * time.Second,
	}
	errCh := make(chan error, 1)
	go func() { errCh <- hs.Serve(ln) }()
	protos := "json+binary"
	if o.serveCfg.DisableBinary {
		protos = "json"
	}
	log.Printf("serving on http://%s (POST /v1/infer [%s], GET /healthz; max-batch %d, window %v)",
		ln.Addr(), protos, o.serveCfg.MaxBatch, o.serveCfg.MaxDelay)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errCh:
		return err
	case got := <-sig:
		log.Printf("%v: draining (deadline %v)", got, o.drainTimeout)
	}
	ctx, cancel := context.WithTimeout(context.Background(), o.drainTimeout)
	defer cancel()
	if err := srv.Drain(ctx); err != nil {
		log.Printf("drain incomplete: %v", err)
	} else {
		log.Printf("drain complete")
	}
	return hs.Shutdown(ctx)
}
