package main

import (
	"fmt"
	"log"
	"net"
	"strings"

	"repro/internal/attest"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/enclave"
	"repro/internal/monitor"
	"repro/internal/securechan"
	"repro/internal/serve"
	"repro/internal/telemetry"
	"repro/internal/transcript"
)

// runCluster fronts a set of remote mvtee-monitor replicas instead of an
// in-process deployment: each -replicas address is dialed over an attested
// channel, the replicas are wrapped in a cluster router (least-loaded +
// rendezvous placement, digest-vote cross-checking, failover), and the same
// multi-tenant front door runs over the router. The router implements both
// the serving engine and the control plane's pipeline surface, so dynamic
// batching, admission control and the inflight-window loop all carry over;
// the spare and SLO-death loops stay per-replica (each monitor runs its own
// factory), so the front-end controller gets no spare pool.
func runCluster(o options) error {
	addrs := strings.Split(o.replicas, ",")
	for i := range addrs {
		addrs[i] = strings.TrimSpace(addrs[i])
	}

	// Attestation pinning: with -replica-bundle the router only talks to
	// monitors launched by the bundle's platform and running the expected
	// monitor image — the same check mvtee-owner applies. Without it the
	// channel is still encrypted but the peer is unverified.
	var verify securechan.VerifyPeer
	if o.replicaBundle != "" {
		pubID, err := core.LoadPlatformIdentity(o.replicaBundle)
		if err != nil {
			return err
		}
		verifier := enclave.NewVerifier()
		if err := verifier.TrustIdentity(pubID); err != nil {
			return err
		}
		wantMeas := enclave.Measure(core.MonitorImage())
		verify = func(r *enclave.Report) error {
			if r == nil {
				return fmt.Errorf("replica monitor presented no attestation report")
			}
			return verifier.Verify(r, []enclave.Measurement{wantMeas})
		}
	} else {
		log.Printf("WARNING: no -replica-bundle: replica monitors are NOT attestation-verified")
	}

	var mode cluster.ForwardMode
	switch o.clusterForward {
	case "digest", "":
		mode = cluster.DigestForward
	case "tensor":
		mode = cluster.TensorForward
	default:
		return fmt.Errorf("bad -cluster-forward %q (want digest or tensor)", o.clusterForward)
	}

	reps := make([]cluster.Replica, 0, len(addrs))
	for _, addr := range addrs {
		raw, err := net.Dial("tcp", addr)
		if err != nil {
			return fmt.Errorf("dial replica %s: %w", addr, err)
		}
		if tc, ok := raw.(*net.TCPConn); ok {
			_ = tc.SetNoDelay(true)
		}
		// The router runs outside any TEE (like the model owner): it presents
		// no report of its own and verifies the monitor's.
		conn, err := securechan.Client(raw, nil, verify)
		if err != nil {
			return fmt.Errorf("replica %s handshake: %w", addr, err)
		}
		rep, err := cluster.NewRemote(conn)
		if err != nil {
			_ = conn.Close()
			return fmt.Errorf("replica %s: %w", addr, err)
		}
		h := rep.Hello()
		log.Printf("replica %q at %s: %d stages, %d variants, window %d",
			h.ID, addr, h.Stages, h.Variants, h.InflightWindow)
		reps = append(reps, rep)
	}

	hello := reps[0].Hello()
	for _, rep := range reps[1:] {
		h := rep.Hello()
		if h.Stages != hello.Stages || len(h.GraphOutputs) != len(hello.GraphOutputs) {
			return fmt.Errorf("replica %q serves a different pipeline than %q (%d/%d stages)",
				h.ID, hello.ID, h.Stages, hello.Stages)
		}
	}

	// The router process has no engine, so it owns the event bus here:
	// /events streams flight incidents (and anything else the front end
	// publishes) exactly as the in-process path does.
	events := telemetry.NewBus[monitor.Event](256)

	// The flight recorder must exist before the router: cluster health
	// triggers (failover, dissent, replica loss, demotion) fire from the
	// router's event path.
	flight := newFlightRecorder(events)

	// The routing tier's transcript: one audit leaf per routed batch, the
	// leader's checkpoint digests plus every follower's vote. Heads are
	// signed by a router identity enclave launched from the bundle's shared
	// platform (the simulated analogue of the routing tier running in its
	// own TEE); without the bundle's private platform the heads go unsigned
	// and offline verification will reject them.
	var rec *transcript.Recorder
	if o.audit {
		var signer attest.Attester
		if o.replicaBundle != "" {
			if plat, err := core.LoadPlatform(o.replicaBundle); err != nil {
				log.Printf("WARNING: %v: transcript heads will be unsigned", err)
			} else if encl, err := plat.Launch(core.RouterImage()); err != nil {
				return fmt.Errorf("launch router identity enclave: %w", err)
			} else {
				signer = encl
			}
		} else {
			log.Printf("WARNING: no -replica-bundle: transcript heads will be unsigned")
		}
		var model transcript.Hash
		if o.replicaBundle != "" {
			if meta, err := core.LoadMeta(o.replicaBundle); err == nil {
				model = meta.ModelDigest()
			}
		}
		rec = transcript.NewRecorder(transcript.Config{
			Signer:      signer,
			Model:       model,
			HeadEvery:   o.auditHeadEvery,
			SampleEvery: o.auditSample,
			Metrics:     telemetry.Default,
		})
		defer rec.Close()
	}

	router, err := cluster.NewRouter(cluster.RouterConfig{
		Replicas:     reps,
		Verify:       o.clusterVerify,
		Mode:         mode,
		Sync:         o.clusterSync,
		PlacementKey: hello.ID,
		Metrics:      telemetry.Default,
		Tracer:       telemetry.DefaultTracer,
		Flight:       flight,
		Transcript:   rec,
	})
	if err != nil {
		return err
	}
	defer router.Close()
	log.Printf("cluster router up: %d replicas, verify %d, %s forwarding, sync=%v",
		len(reps), o.clusterVerify, o.clusterForward, o.clusterSync)

	// The replicas declared the model interface in their hello; reuse it for
	// admission-time shape validation exactly as the in-process path does.
	o.serveCfg.ItemShapes = hello.ItemShapes
	var eng serve.Engine = router
	return frontend(o, eng, router, nil, events,
		observability{flight: flight, router: router, audit: rec})
}
