package main

import (
	"fmt"
	"net/http"
	"sync"
	"time"

	"repro/internal/cluster"
	"repro/internal/control"
	"repro/internal/monitor"
	"repro/internal/serve"
	"repro/internal/telemetry"
	"repro/internal/transcript"
)

// observability bundles the serving process's cluster-observability surfaces:
// the flight recorder behind /debug/flight, (cluster mode) the router whose
// federated state backs /metrics/cluster, and the transcript recorder behind
// GET /audit.
type observability struct {
	flight *telemetry.FlightRecorder
	router *cluster.Router // nil outside cluster mode
	// audit is the verifiable-transcript recorder; nil disables /audit.
	// auditBindings publishes the binding records alongside the head so
	// offline verifiers can recompute the bindings digest; auditIdentity is
	// the signing platform's public identity for TOFU auditors.
	audit         *transcript.Recorder
	auditBindings func() any
	auditIdentity []byte
}

// newFlightRecorder builds the serving tier's failover black box over the
// process registry: the shed level, queue depths, controller knobs and
// cluster health counters sampled on one timeline, frozen into a
// before/after incident whenever a trigger fires (failover, dissent, replica
// loss, ladder demotion, SLO breach). Registry handles are get-or-create, so
// registering sources before the emitting subsystems start is safe — they
// read zero until the real writers come up. When events is non-nil every new
// incident is also published on it, so /events streams incidents live
// alongside the engine's own security events.
func newFlightRecorder(events *telemetry.Bus[monitor.Event]) *telemetry.FlightRecorder {
	reg := telemetry.Default
	cfg := telemetry.FlightConfig{Metrics: reg}
	if events != nil {
		cfg.OnIncident = func(inc telemetry.Incident) {
			events.Publish(monitor.Event{
				Kind:   monitor.EventFlightIncident,
				Stage:  -1,
				Detail: inc.Reason,
				Time:   time.Unix(0, inc.At),
			})
		}
	}
	fr := telemetry.NewFlightRecorder(cfg)
	gauge := func(name, metric string) {
		g := reg.Gauge(metric)
		fr.AddSource(name, g.Value)
	}
	gauge("shed_level", telemetry.MetricServeShedLevel)
	gauge("queue_global", telemetry.MetricServeQueueGlobal)
	gauge("inflight_batches", telemetry.MetricServeInflight)
	gauge("shed_floor", telemetry.MetricControlShedFloor)
	gauge("inflight_window", telemetry.MetricControlInflightWindow)
	failovers := reg.Counter(telemetry.MetricClusterFailovers)
	fr.AddSource("cluster_failovers", func() int64 { return int64(failovers.Value()) })
	dissent := reg.Counter(telemetry.MetricClusterDigestVotes,
		telemetry.L("verdict", telemetry.DigestVoteDissent))
	fr.AddSource("cluster_dissent_votes", func() int64 { return int64(dissent.Value()) })
	return fr
}

// addLadderSource samples the engine's worst ladder rung — for a cluster
// router that is the best any healthy replica can still serve, so an
// incident window shows capability collapsing and recovering around the
// trigger. Must run before Start (sources are fixed at launch).
func addLadderSource(fr *telemetry.FlightRecorder, eng serve.Engine) {
	fr.AddSource("ladder_worst", func() int64 {
		worst := int64(monitor.LadderFull)
		for _, r := range eng.Ladder() {
			if int64(r) < worst {
				worst = int64(r)
			}
		}
		return worst
	})
}

// noteDecision mirrors one control-plane actuation onto the flight timeline
// and converts sustained SLO-breach escalations into incident triggers, so a
// /debug/flight record shows which knobs the controller was turning in the
// seconds before and after the event.
func noteDecision(fr *telemetry.FlightRecorder, d control.Decision) {
	if d.Tenant != "" {
		fr.Note(fmt.Sprintf("%s %s %s[%s] %d -> %d (%s)", d.Loop, d.Direction, d.Knob, d.Tenant, d.From, d.To, d.Reason))
	} else {
		fr.Note(fmt.Sprintf("%s %s %s %d -> %d (%s)", d.Loop, d.Direction, d.Knob, d.From, d.To, d.Reason))
	}
	if d.Loop == telemetry.ControlLoopSLO && d.Direction == "up" {
		fr.Trigger(telemetry.FlightReasonSLOBreach)
	}
}

// sloBurn derives per-tenant SLO burn-rate gauges at /metrics/cluster scrape
// time: the fraction of the last scrape interval's requests over the tenant's
// latency objective, divided by the error budget, in milli-units — 1000 means
// the budget burns exactly as fast as it accrues, higher burns it faster.
// State is the previous scrape's histogram snapshot per tenant, so the rate
// reflects the interval, not the process lifetime.
type sloBurn struct {
	tenants map[string]serve.TenantConfig

	mu   sync.Mutex
	prev map[string]telemetry.HistState
}

// errorBudget is the implied 99% objective: 1% of requests may exceed the
// tenant's p99 latency SLO before the budget burns faster than it accrues.
const errorBudget = 0.01

func newSLOBurn(tenants map[string]serve.TenantConfig) *sloBurn {
	return &sloBurn{tenants: tenants, prev: make(map[string]telemetry.HistState)}
}

// refresh recomputes every declared tenant's burn-rate gauge from the latency
// histogram delta since the previous call.
func (b *sloBurn) refresh() {
	b.mu.Lock()
	defer b.mu.Unlock()
	for name, tc := range b.tenants {
		if tc.SLO <= 0 {
			continue
		}
		h := telemetry.Default.Histogram(telemetry.MetricServeLatencyNs, telemetry.L("tenant", name))
		cur := h.State()
		delta := cur.Sub(b.prev[name])
		b.prev[name] = cur
		burn := delta.FractionAbove(uint64(tc.SLO.Nanoseconds())) / errorBudget
		telemetry.Default.Gauge(telemetry.MetricServeSLOBurnMilli, telemetry.L("tenant", name)).Set(int64(burn * 1000))
	}
}

// clusterMetricsHandler serves the federated cluster view: the router
// process's own registry first (with the burn-rate gauges refreshed so they
// land in the same scrape), then every replica's latest polled snapshot
// re-rendered with a replica="<id>" label. Metric names shared across nodes
// repeat their # TYPE header per section — fine for the operator surface and
// every scraper tested, though strict exposition-format validators flag it.
func clusterMetricsHandler(router *cluster.Router, burn *sloBurn) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		burn.refresh()
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if err := telemetry.Default.WriteProm(w); err != nil {
			return
		}
		for _, rm := range router.ClusterMetrics() {
			fmt.Fprintf(w, "# replica %s (snapshot age %s)\n", rm.Replica, rm.Age.Round(1e6))
			if err := telemetry.WritePromSnapshots(w, rm.Series, telemetry.L("replica", rm.Replica)); err != nil {
				return
			}
		}
	})
}
