package teeos

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/enclave"
	"repro/internal/manifest"
	"repro/internal/pfcrypt"
)

func newOS(t *testing.T, m *manifest.Manifest, fs FS, env map[string]string) *OS {
	t.Helper()
	p, err := enclave.NewPlatform("p", enclave.SGX2, 1<<30)
	if err != nil {
		t.Fatal(err)
	}
	e, err := p.Launch(enclave.Image{Name: "app", Code: []byte("bin"), InitialPages: 1})
	if err != nil {
		t.Fatal(err)
	}
	o, err := New(e, m, fs, env)
	if err != nil {
		t.Fatal(err)
	}
	return o
}

func initManifest() *manifest.Manifest {
	m := &manifest.Manifest{
		Entrypoint:      "bin/init",
		EncryptedFiles:  []string{"pool/*"},
		AllowedSyscalls: []string{"connect"},
		AllowedEnv:      []string{"LANG"},
		TwoStage:        true,
	}
	m.AddTrustedFile("bin/init", []byte("init binary"))
	return m
}

func TestTrustedFileVerification(t *testing.T) {
	fs := MapFS{"bin/init": []byte("init binary"), "bin/evil": []byte("evil")}
	o := newOS(t, initManifest(), fs, nil)
	b, err := o.ReadFile("bin/init")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b, []byte("init binary")) {
		t.Fatal("wrong content")
	}
	// Tampered trusted file.
	fs["bin/init"] = []byte("init binarY")
	if _, err := o.ReadFile("bin/init"); !errors.Is(err, ErrHashMismatch) {
		t.Fatalf("got %v, want ErrHashMismatch", err)
	}
	// Not in any allowed set.
	if _, err := o.ReadFile("bin/evil"); !errors.Is(err, ErrDenied) {
		t.Fatalf("got %v, want ErrDenied", err)
	}
}

func TestEncryptedFileAccess(t *testing.T) {
	kdk, _ := pfcrypt.NewKDK()
	ct, err := pfcrypt.Encrypt(kdk, "pool/a/graph.pf", []byte("secret graph"))
	if err != nil {
		t.Fatal(err)
	}
	fs := MapFS{"bin/init": []byte("init binary"), "pool/a/graph.pf": ct}
	o := newOS(t, initManifest(), fs, nil)

	// Before key installation: denied.
	if _, err := o.ReadFile("pool/a/graph.pf"); !errors.Is(err, ErrKeyMissing) {
		t.Fatalf("got %v, want ErrKeyMissing", err)
	}
	if err := o.InstallKey(kdk); err != nil {
		t.Fatal(err)
	}
	b, err := o.ReadFile("pool/a/graph.pf")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b, []byte("secret graph")) {
		t.Fatal("decryption mismatch")
	}
	// Wrong key: authentication failure surfaces.
	other, _ := pfcrypt.NewKDK()
	if err := o.InstallKey(other); err != nil {
		t.Fatal(err)
	}
	if _, err := o.ReadFile("pool/a/graph.pf"); err == nil {
		t.Fatal("wrong key accepted")
	}
}

func TestSyscallGate(t *testing.T) {
	o := newOS(t, initManifest(), MapFS{}, nil)
	if err := o.Syscall("connect"); err != nil {
		t.Fatal(err)
	}
	if err := o.Syscall("read"); err != nil {
		t.Fatal(err)
	}
	if err := o.Syscall("ptrace"); !errors.Is(err, ErrSyscallBlocked) {
		t.Fatalf("got %v, want ErrSyscallBlocked", err)
	}
	if log := o.SyscallLog(); len(log) != 2 || log[0] != "connect" {
		t.Fatalf("syscall log = %v", log)
	}
}

func TestEnvGate(t *testing.T) {
	o := newOS(t, initManifest(), MapFS{}, map[string]string{"LANG": "C", "LD_PRELOAD": "evil.so"})
	if v, err := o.Getenv("LANG"); err != nil || v != "C" {
		t.Fatalf("LANG = %q, %v", v, err)
	}
	if _, err := o.Getenv("LD_PRELOAD"); !errors.Is(err, ErrDenied) {
		t.Fatalf("got %v, want ErrDenied (env blocked by default)", err)
	}
}

func secondStage(t *testing.T) []byte {
	t.Helper()
	m2 := &manifest.Manifest{
		Entrypoint:            "pool/a/main.pf",
		EncryptedFiles:        []string{"pool/a/main.pf", "pool/a/graph.pf"},
		ExecFromEncryptedOnly: true,
	}
	b, err := m2.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestTwoStageLifecycle(t *testing.T) {
	o := newOS(t, initManifest(), MapFS{}, map[string]string{"LANG": "C"})
	m2b := secondStage(t)

	// Exec before installation must fail under TwoStage.
	if err := o.Exec("pool/a/main.pf"); !errors.Is(err, ErrNoSecondStage) {
		t.Fatalf("got %v, want ErrNoSecondStage", err)
	}
	ev, err := o.InstallSecondStage(m2b)
	if err != nil {
		t.Fatal(err)
	}
	if d, err := o.SecondStageDigest(); err != nil || d != ev {
		t.Fatalf("evidence mismatch: %v", err)
	}
	// One-time: second installation rejected.
	if _, err := o.InstallSecondStage(m2b); !errors.Is(err, ErrAlreadySet) {
		t.Fatalf("got %v, want ErrAlreadySet", err)
	}
	// Wrong exec target rejected.
	if err := o.Exec("bin/other"); !errors.Is(err, ErrWrongEntry) {
		t.Fatalf("got %v, want ErrWrongEntry", err)
	}

	_ = o.Syscall("connect")
	if err := o.Exec("pool/a/main.pf"); err != nil {
		t.Fatal(err)
	}
	if o.Stage() != StageMain {
		t.Fatalf("stage = %v", o.Stage())
	}
	// State reset: syscall log cleared, env cleared, file opens cleared.
	if len(o.SyscallLog()) != 0 || o.OpenFileCount() != 0 {
		t.Fatal("stage-1 state leaked across exec")
	}
	if _, err := o.Getenv("LANG"); err == nil {
		t.Fatal("host env survived exec (second-stage manifest allows none)")
	}
	// One-way: no second exec, no late installation, no key changes.
	if err := o.Exec("pool/a/main.pf"); !errors.Is(err, ErrStage) {
		t.Fatalf("second exec: got %v, want ErrStage", err)
	}
	if _, err := o.InstallSecondStage(m2b); !errors.Is(err, ErrStage) {
		t.Fatalf("late install: got %v, want ErrStage", err)
	}
	kdk, _ := pfcrypt.NewKDK()
	if err := o.InstallKey(kdk); !errors.Is(err, ErrStage) {
		t.Fatalf("stage-2 key install: got %v, want ErrStage", err)
	}
	// Stage-1 syscalls (connect) are gone from the stage-2 allowlist.
	if err := o.Syscall("connect"); !errors.Is(err, ErrSyscallBlocked) {
		t.Fatalf("stage-2 connect: got %v, want ErrSyscallBlocked", err)
	}
}

func TestExecFromEncryptedOnly(t *testing.T) {
	o := newOS(t, initManifest(), MapFS{}, nil)
	m2 := &manifest.Manifest{
		Entrypoint:            "bin/plainmain",
		ExecFromEncryptedOnly: true,
	}
	b, _ := m2.Marshal()
	if _, err := o.InstallSecondStage(b); err != nil {
		t.Fatal(err)
	}
	if err := o.Exec("bin/plainmain"); !errors.Is(err, ErrNotEncrypted) {
		t.Fatalf("got %v, want ErrNotEncrypted", err)
	}
}

func TestTwoStageDisabled(t *testing.T) {
	m := initManifest()
	m.TwoStage = false
	o := newOS(t, m, MapFS{}, nil)
	if _, err := o.InstallSecondStage(secondStage(t)); !errors.Is(err, ErrTwoStageOff) {
		t.Fatalf("got %v, want ErrTwoStageOff", err)
	}
	// Without two-stage, exec re-enters the same manifest's entrypoint.
	if err := o.Exec("bin/init"); err != nil {
		t.Fatal(err)
	}
}

func TestInstallRejectsGarbage(t *testing.T) {
	o := newOS(t, initManifest(), MapFS{}, nil)
	if _, err := o.InstallSecondStage([]byte("garbage")); err == nil {
		t.Fatal("garbage manifest accepted")
	}
	// A failed installation must not consume the one-time slot.
	if _, err := o.InstallSecondStage(secondStage(t)); err != nil {
		t.Fatalf("valid install after garbage rejected: %v", err)
	}
}

func TestDirFS(t *testing.T) {
	dir := t.TempDir()
	if err := os.MkdirAll(filepath.Join(dir, "pool"), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "pool", "f"), []byte("data"), 0o644); err != nil {
		t.Fatal(err)
	}
	fs := DirFS(dir)
	b, err := fs.Get("pool/f")
	if err != nil {
		t.Fatal(err)
	}
	if string(b) != "data" {
		t.Fatal("wrong content")
	}
	if _, err := fs.Get("../escape"); err == nil {
		t.Fatal("path escape allowed")
	}
	if _, err := fs.Get("/abs"); err == nil {
		t.Fatal("absolute path allowed")
	}
	if _, err := fs.Get("pool/missing"); err == nil {
		t.Fatal("missing file no error")
	}
}

func TestRollbackDetection(t *testing.T) {
	kdk, _ := pfcrypt.NewKDK()
	v1, _ := pfcrypt.Encrypt(kdk, "pool/a/graph.pf", []byte("version 1"))
	v2, _ := pfcrypt.Encrypt(kdk, "pool/a/graph.pf", []byte("version 2"))
	fs := MapFS{"pool/a/graph.pf": v2}
	o := newOS(t, initManifest(), fs, nil)
	if err := o.InstallKey(kdk); err != nil {
		t.Fatal(err)
	}
	if _, err := o.ReadFile("pool/a/graph.pf"); err != nil {
		t.Fatal(err)
	}
	// Host rolls the file back to the older (still validly encrypted)
	// version: the freshness metadata catches it.
	fs["pool/a/graph.pf"] = v1
	if _, err := o.ReadFile("pool/a/graph.pf"); !errors.Is(err, ErrRollback) {
		t.Fatalf("got %v, want ErrRollback", err)
	}
	// Re-reading the fresh version still works.
	fs["pool/a/graph.pf"] = v2
	if _, err := o.ReadFile("pool/a/graph.pf"); err != nil {
		t.Fatal(err)
	}
}

func TestSignalCrossCheck(t *testing.T) {
	o := newOS(t, initManifest(), MapFS{}, nil)
	// Unsolicited host signal (SIGY-style injection): rejected.
	if err := o.DeliverHostSignal("SIGFPE"); !errors.Is(err, ErrSignalMismatch) {
		t.Fatalf("got %v, want ErrSignalMismatch", err)
	}
	// A genuine TEE exception makes the matching host signal deliverable —
	// exactly once.
	o.RaiseException("SIGFPE")
	if err := o.DeliverHostSignal("SIGFPE"); err != nil {
		t.Fatal(err)
	}
	if err := o.DeliverHostSignal("SIGFPE"); !errors.Is(err, ErrSignalMismatch) {
		t.Fatalf("replayed signal: got %v, want ErrSignalMismatch", err)
	}
	// Signal state does not survive the exec transition.
	o.RaiseException("SIGSEGV")
	if _, err := o.InstallSecondStage(secondStage(t)); err != nil {
		t.Fatal(err)
	}
	if err := o.Exec("pool/a/main.pf"); err != nil {
		t.Fatal(err)
	}
	if err := o.DeliverHostSignal("SIGSEGV"); !errors.Is(err, ErrSignalMismatch) {
		t.Fatalf("stale exception crossed exec: got %v", err)
	}
}
