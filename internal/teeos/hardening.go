package teeos

import (
	"crypto/sha256"
	"errors"
	"fmt"
)

// This file implements the "additional variant hardening" defenses of §6.5:
// runtime freshness metadata against rollback/replay of encrypted files, and
// cross-verification of host-reported signals against TEE-reported
// exceptions (the SIGY-class defense).

// ErrRollback reports an encrypted file whose host-side content changed
// under the TEE at runtime — a rollback/replay attempt. (This is the paper's
// partial mitigation; a complete defense needs independent monotonic
// counters.)
var ErrRollback = errors.New("teeos: encrypted file rollback/replay detected")

// checkFreshness records the first-seen ciphertext digest per path and
// rejects any later change during this TEE's lifetime.
func (o *OS) checkFreshness(path string, raw []byte) error {
	sum := sha256.Sum256(raw)
	o.mu.Lock()
	defer o.mu.Unlock()
	if o.freshness == nil {
		o.freshness = make(map[string][32]byte)
	}
	if prev, ok := o.freshness[path]; ok {
		if prev != sum {
			return fmt.Errorf("%w: %q", ErrRollback, path)
		}
		return nil
	}
	o.freshness[path] = sum
	return nil
}

// --- host/TEE signal cross-verification ---------------------------------------

// ErrSignalMismatch reports a host-delivered signal with no corresponding
// TEE-side exception — the signal-injection attacks (SIGY) the TEE OS
// cross-checks for (§6.5).
var ErrSignalMismatch = errors.New("teeos: host signal without matching TEE exception")

// RaiseException records a genuine TEE-side exception (e.g. a hardware
// #PF/#DE reported through the enclave exit path).
func (o *OS) RaiseException(sig string) {
	o.mu.Lock()
	defer o.mu.Unlock()
	if o.teeExceptions == nil {
		o.teeExceptions = make(map[string]int)
	}
	o.teeExceptions[sig]++
}

// DeliverHostSignal models the untrusted host delivering a signal to the
// application. The TEE OS accepts it only when a matching TEE-side exception
// is pending; an unsolicited signal is rejected as injected.
func (o *OS) DeliverHostSignal(sig string) error {
	o.mu.Lock()
	defer o.mu.Unlock()
	if o.teeExceptions[sig] > 0 {
		o.teeExceptions[sig]--
		return nil
	}
	return fmt.Errorf("%w: %q", ErrSignalMismatch, sig)
}
