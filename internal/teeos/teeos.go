// Package teeos simulates the library TEE OS that hosts MVTEE's monitor and
// variants — the role Gramine-SGX/TDX plays in the paper's prototype (§5.2),
// including MVTEE's extensions: two-stage manifests with one-time post-launch
// installation, an exec()-triggered one-way stage transition with full state
// reset, syscall restrictions, and stage-1-only key installation for the
// encrypted filesystem.
package teeos

import (
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"

	"repro/internal/enclave"
	"repro/internal/manifest"
	"repro/internal/pfcrypt"
	"repro/internal/telemetry"
)

// FS is the untrusted host filesystem view. Contents fetched through it are
// verified (trusted files) or decrypted (encrypted files) before an
// application sees them.
type FS interface {
	Get(path string) ([]byte, error)
}

// MapFS is an in-memory FS.
type MapFS map[string][]byte

// Get implements FS.
func (m MapFS) Get(path string) ([]byte, error) {
	b, ok := m[path]
	if !ok {
		return nil, fmt.Errorf("teeos: host file %q not found", path)
	}
	return b, nil
}

// DirFS serves host files from a directory root (process-separated
// deployments reading a saved bundle).
type DirFS string

// Get implements FS, rejecting escapes from the root.
func (d DirFS) Get(path string) ([]byte, error) {
	clean := filepath.Clean(filepath.FromSlash(path))
	if filepath.IsAbs(clean) || strings.HasPrefix(clean, "..") {
		return nil, fmt.Errorf("teeos: path %q escapes bundle root", path)
	}
	b, err := os.ReadFile(filepath.Join(string(d), clean))
	if err != nil {
		return nil, fmt.Errorf("teeos: host file %q: %w", path, err)
	}
	return b, nil
}

// Errors.
var (
	ErrDenied         = errors.New("teeos: denied by manifest")
	ErrHashMismatch   = errors.New("teeos: trusted file hash mismatch")
	ErrStage          = errors.New("teeos: operation not permitted in this stage")
	ErrAlreadySet     = errors.New("teeos: second-stage manifest already installed")
	ErrNoSecondStage  = errors.New("teeos: no second-stage manifest installed")
	ErrTwoStageOff    = errors.New("teeos: two-stage manifests not enabled")
	ErrKeyMissing     = errors.New("teeos: no key installed for encrypted file")
	ErrWrongEntry     = errors.New("teeos: exec target does not match manifest entrypoint")
	ErrNotEncrypted   = errors.New("teeos: manifest mandates execution from encrypted files only")
	ErrSyscallBlocked = errors.New("teeos: syscall blocked by manifest")
)

// Stage identifies the two-stage bootstrap phase.
type Stage int

// Bootstrap stages.
const (
	StageInit Stage = 1 // init-variant running under the public manifest
	StageMain Stage = 2 // main variant running under the second-stage manifest
)

// OS is one TEE OS instance, enforcing a manifest inside an enclave.
type OS struct {
	encl *enclave.Enclave
	host FS

	mu           sync.Mutex
	stage        Stage
	man          *manifest.Manifest
	second       *manifest.Manifest
	secondDigest [32]byte
	keys         map[string]pfcrypt.KDK
	hostEnv      map[string]string
	openFiles    map[string]int // path -> open count (for state-reset bookkeeping)
	syscallLog   []string
	execCount    int
	// §6.5 hardening state.
	freshness     map[string][32]byte // encrypted-file rollback detection
	teeExceptions map[string]int      // pending TEE exceptions per signal
}

// New boots a TEE OS in encl with the stage-1 (public) manifest m over the
// host filesystem and host-provided environment.
func New(encl *enclave.Enclave, m *manifest.Manifest, host FS, hostEnv map[string]string) (*OS, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	env := make(map[string]string, len(hostEnv))
	for k, v := range hostEnv {
		env[k] = v
	}
	return &OS{
		encl:      encl,
		host:      host,
		stage:     StageInit,
		man:       m.Clone(),
		keys:      make(map[string]pfcrypt.KDK),
		hostEnv:   env,
		openFiles: make(map[string]int),
	}, nil
}

// Enclave returns the hosting enclave.
func (o *OS) Enclave() *enclave.Enclave { return o.encl }

// Stage returns the current bootstrap stage.
func (o *OS) Stage() Stage {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.stage
}

// Manifest returns the currently enforced manifest (a copy).
func (o *OS) Manifest() *manifest.Manifest {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.man.Clone()
}

// TEE OS ocall-surface series: every ReadFile is a host round-trip (the ocall
// analogue), every Syscall a gated host service request.
var (
	mReads           = telemetry.Default.Counter(telemetry.MetricTeeosReads)
	mSyscalls        = telemetry.Default.Counter(telemetry.MetricTeeosSyscalls)
	mSyscallsBlocked = telemetry.Default.Counter(telemetry.MetricTeeosSyscallsBlocked)
)

// ReadFile opens a path through the manifest policy: encrypted files are
// decrypted with the installed key, trusted files are hash-verified, and
// everything else is denied.
func (o *OS) ReadFile(path string) ([]byte, error) {
	if telemetry.Enabled() {
		mReads.Inc()
	}
	o.mu.Lock()
	man := o.man
	o.mu.Unlock()

	raw, err := o.host.Get(path)
	if err != nil {
		return nil, err
	}
	if man.IsEncrypted(path) {
		o.mu.Lock()
		kdk, ok := o.keys["default"]
		o.mu.Unlock()
		if !ok {
			return nil, fmt.Errorf("%w: %q", ErrKeyMissing, path)
		}
		if err := o.checkFreshness(path, raw); err != nil {
			return nil, err
		}
		pt, err := pfcrypt.Decrypt(kdk, path, raw)
		if err != nil {
			return nil, fmt.Errorf("teeos: %q: %w", path, err)
		}
		o.noteOpen(path)
		return pt, nil
	}
	if want, ok := man.TrustedFiles[path]; ok {
		sum := sha256.Sum256(raw)
		if hex.EncodeToString(sum[:]) != want {
			return nil, fmt.Errorf("%w: %q", ErrHashMismatch, path)
		}
		o.noteOpen(path)
		return raw, nil
	}
	return nil, fmt.Errorf("%w: file %q not in trusted or encrypted sets", ErrDenied, path)
}

func (o *OS) noteOpen(path string) {
	o.mu.Lock()
	o.openFiles[path]++
	o.mu.Unlock()
}

// Syscall gates a named syscall through the manifest allowlist and records
// it for host/TEE cross-verification (§6.5 "additional variant hardening").
func (o *OS) Syscall(name string) error {
	if telemetry.Enabled() {
		mSyscalls.Inc()
	}
	o.mu.Lock()
	defer o.mu.Unlock()
	if !o.man.SyscallAllowed(name) {
		if telemetry.Enabled() {
			mSyscallsBlocked.Inc()
		}
		return fmt.Errorf("%w: %q (stage %d)", ErrSyscallBlocked, name, o.stage)
	}
	o.syscallLog = append(o.syscallLog, name)
	return nil
}

// SyscallLog returns a copy of the recorded syscall trace.
func (o *OS) SyscallLog() []string {
	o.mu.Lock()
	defer o.mu.Unlock()
	return append([]string(nil), o.syscallLog...)
}

// Getenv returns a host environment variable if the manifest allows it.
func (o *OS) Getenv(name string) (string, error) {
	o.mu.Lock()
	defer o.mu.Unlock()
	if !o.man.EnvAllowed(name) {
		return "", fmt.Errorf("%w: env %q", ErrDenied, name)
	}
	return o.hostEnv[name], nil
}

// InstallKey installs the variant-specific key-derivation key used by the
// encrypted filesystem. Key manipulation is prohibited in the second stage.
func (o *OS) InstallKey(kdk pfcrypt.KDK) error {
	o.mu.Lock()
	defer o.mu.Unlock()
	if o.stage != StageInit {
		return fmt.Errorf("%w: key installation only in stage 1", ErrStage)
	}
	o.keys["default"] = append(pfcrypt.KDK(nil), kdk...)
	return nil
}

// InstallSecondStage installs the second-stage manifest through the TEE OS's
// pseudo-filesystem interface. The installation is one-time: once set it is
// locked, unmodifiable, and the interface is dead for the main variant.
// It returns the manifest digest as installation evidence for attestation.
func (o *OS) InstallSecondStage(manifestBytes []byte) ([32]byte, error) {
	o.mu.Lock()
	defer o.mu.Unlock()
	if o.stage != StageInit {
		return [32]byte{}, fmt.Errorf("%w: installation interface disabled after exec", ErrStage)
	}
	if !o.man.TwoStage {
		return [32]byte{}, ErrTwoStageOff
	}
	if o.second != nil {
		return [32]byte{}, ErrAlreadySet
	}
	m, err := manifest.Unmarshal(manifestBytes)
	if err != nil {
		return [32]byte{}, err
	}
	o.second = m
	o.secondDigest = sha256.Sum256(manifestBytes)
	return o.secondDigest, nil
}

// SecondStageDigest returns the evidence digest of the installed manifest.
func (o *OS) SecondStageDigest() ([32]byte, error) {
	o.mu.Lock()
	defer o.mu.Unlock()
	if o.second == nil {
		return [32]byte{}, ErrNoSecondStage
	}
	return o.secondDigest, nil
}

// Exec performs the one-way stage transition triggered by the init-variant's
// first exec() (§5.2). The TEE OS resets all applicable state — open files,
// environment, syscall history — before enforcing the second-stage manifest,
// so the two stages are completely independent. The target must match the
// second-stage entrypoint, and, when mandated, be an encrypted file.
func (o *OS) Exec(target string) error {
	o.mu.Lock()
	defer o.mu.Unlock()
	if o.stage != StageInit {
		return fmt.Errorf("%w: exec transition already performed", ErrStage)
	}
	if o.man.TwoStage && o.second == nil {
		return ErrNoSecondStage
	}
	next := o.man
	if o.second != nil {
		next = o.second
	}
	if target != next.Entrypoint {
		return fmt.Errorf("%w: %q != %q", ErrWrongEntry, target, next.Entrypoint)
	}
	if next.ExecFromEncryptedOnly && !next.IsEncrypted(target) {
		return fmt.Errorf("%w: %q", ErrNotEncrypted, target)
	}
	// State reset: the simulated analogue of zeroing VMAs, closing file
	// descriptors, resetting brk/TLS/signal handlers and unloading ELF
	// objects from the init stage.
	o.openFiles = make(map[string]int)
	o.syscallLog = nil
	o.hostEnv = make(map[string]string)
	o.teeExceptions = nil // signal state cleared with the handlers
	o.stage = StageMain
	o.man = next
	o.second = nil
	o.execCount++
	return nil
}

// OpenFileCount reports currently tracked file opens (used by tests to
// verify the state reset).
func (o *OS) OpenFileCount() int {
	o.mu.Lock()
	defer o.mu.Unlock()
	n := 0
	for _, c := range o.openFiles {
		n += c
	}
	return n
}
