package variant_test

import (
	"net"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/diversify"
	"repro/internal/enclave"
	"repro/internal/monitor"
	"repro/internal/securechan"
	"repro/internal/teeos"
	"repro/internal/tensor"
	"repro/internal/variant"
	"repro/internal/wire"
)

// fixture builds a single-partition bundle and a booted variant TEE OS.
func fixture(t *testing.T) (*core.Bundle, core.Entry, *teeos.OS) {
	t.Helper()
	b, err := core.BuildBundle(core.OfflineConfig{
		ModelName:        "mnasnet",
		PartitionTargets: []int{2},
		Specs:            []diversify.Spec{diversify.ReplicaSpec("replica")},
	})
	if err != nil {
		t.Fatal(err)
	}
	e := core.Entry{Set: 0, Partition: 0, Spec: "replica"}
	p, err := enclave.NewPlatform("p", enclave.SGX2, 1<<30)
	if err != nil {
		t.Fatal(err)
	}
	encl, err := p.Launch(enclave.Image{Name: "v", Code: b.InitBinary, InitialPages: 1})
	if err != nil {
		t.Fatal(err)
	}
	os, err := teeos.New(encl, b.InitManifest, b.FS, nil)
	if err != nil {
		t.Fatal(err)
	}
	return b, e, os
}

func pipePair() (securechan.Conn, securechan.Conn) {
	a, b := net.Pipe()
	return securechan.Plain(a), securechan.Plain(b)
}

func assignment(b *core.Bundle, e core.Entry) *wire.AssignKey {
	return &wire.AssignKey{
		VariantID:  "v0",
		Partition:  e.Partition,
		KDK:        b.Keys[e],
		ManifestPB: []byte(e.ManifestPath()),
		Files:      []string{e.GraphPath(), e.SpecPath()},
		Entrypoint: e.EntrypointPath(),
	}
}

func TestBootstrapHappyPathAndServe(t *testing.T) {
	b, e, os := fixture(t)
	monC, varC := pipePair()

	done := make(chan error, 1)
	go func() { done <- variant.Run(varC, os, variant.Options{}) }()

	if err := wire.Send(monC, assignment(b, e)); err != nil {
		t.Fatal(err)
	}
	msg, err := wire.Recv(monC)
	if err != nil {
		t.Fatal(err)
	}
	inst, ok := msg.(*wire.Installed)
	if !ok {
		t.Fatalf("got %T: %+v", msg, msg)
	}
	wantEv := b.Evidence[e]
	if inst.VariantID != "v0" || inst.Evidence != wantEv {
		t.Fatalf("evidence mismatch: %x vs %x", inst.Evidence[:4], wantEv[:4])
	}
	if err := wire.Send(monC, &wire.Bound{VariantID: "v0"}); err != nil {
		t.Fatal(err)
	}

	// Serve a batch through the bootstrapped variant.
	sub, err := b.Partitioner.Extract(b.Sets[0], 0)
	if err != nil {
		t.Fatal(err)
	}
	ins := map[string]*tensor.Tensor{}
	for _, vi := range sub.Inputs {
		x := tensor.New(vi.Shape...)
		for i := range x.Data() {
			x.Data()[i] = 0.25
		}
		ins[vi.Name] = x
	}
	if err := wire.Send(monC, &wire.Batch{ID: 5, Tensors: ins}); err != nil {
		t.Fatal(err)
	}
	msg, err = wire.Recv(monC)
	if err != nil {
		t.Fatal(err)
	}
	res := msg.(*wire.Result)
	if res.ID != 5 || res.Err != "" || len(res.Tensors) != len(sub.Outputs) {
		t.Fatalf("result = %+v", res)
	}

	// Attestation challenge on the data plane.
	if err := wire.Send(monC, &wire.AttestReq{Nonce: []byte{1, 2}, Context: "variant/v0"}); err != nil {
		t.Fatal(err)
	}
	msg, err = wire.Recv(monC)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := msg.(*wire.AttestResp); !ok {
		t.Fatalf("got %T", msg)
	}

	// Clean shutdown.
	if err := wire.Send(monC, &wire.Shutdown{}); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatalf("variant exited with %v", err)
	}
	if os.Stage() != teeos.StageMain {
		t.Fatal("variant not in stage 2 after bootstrap")
	}
}

func TestBootstrapWrongKeyFails(t *testing.T) {
	b, e, os := fixture(t)
	monC, varC := pipePair()
	go func() {
		a := assignment(b, e)
		a.KDK = make([]byte, 32) // wrong key: manifest decryption must fail
		_ = wire.Send(monC, a)
	}()
	_, err := variant.Bootstrap(varC, os, variant.Options{})
	if err == nil || !strings.Contains(err.Error(), "manifest") {
		t.Fatalf("got %v, want manifest fetch failure", err)
	}
}

func TestBootstrapMissingFiles(t *testing.T) {
	b, e, os := fixture(t)
	monC, varC := pipePair()
	go func() {
		a := assignment(b, e)
		a.Files = []string{"pool/who/knows.bin"}
		_ = wire.Send(monC, a)
		// The variant still installs and reports evidence before loading.
		if _, err := wire.Recv(monC); err == nil {
			_ = wire.Send(monC, &wire.Bound{VariantID: "v0"})
		}
	}()
	if _, err := variant.Bootstrap(varC, os, variant.Options{}); err == nil {
		t.Fatal("missing graph/spec files accepted")
	}
}

func TestBootstrapUnexpectedMessage(t *testing.T) {
	_, _, os := fixture(t)
	monC, varC := pipePair()
	go func() { _ = wire.Send(monC, &wire.Ack{}) }()
	if _, err := variant.Bootstrap(varC, os, variant.Options{}); err == nil {
		t.Fatal("non-AssignKey first message accepted")
	}
}

func TestMonitorBindRejectsWrongEvidence(t *testing.T) {
	// Cross-check: the monitor side of the protocol rejects a variant whose
	// installation evidence does not match the expected manifest digest.
	b, e, os := fixture(t)
	monC, varC := pipePair()
	go func() { _ = variant.Run(varC, os, variant.Options{}) }()

	p, _ := enclave.NewPlatform("pm", enclave.SGX1, 1<<30)
	me, _ := p.Launch(enclave.Image{Name: "m", Code: []byte("m"), InitialPages: 1})
	v := enclave.NewVerifier()
	v.Trust(p)
	mon := monitor.New(me, v)
	_, err := mon.Bind(monC, monitor.Assignment{
		VariantID:  "v0",
		Partition:  0,
		Spec:       "replica",
		KDK:        b.Keys[e],
		Manifest:   e.ManifestPath(),
		Files:      []string{e.GraphPath(), e.SpecPath()},
		Entrypoint: e.EntrypointPath(),
		Evidence:   [32]byte{0xde, 0xad}, // wrong
	})
	if err == nil {
		t.Fatal("wrong evidence accepted by the monitor")
	}
}
