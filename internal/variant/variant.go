// Package variant implements the variant-TEE side of MVTEE: the init-variant
// of the two-stage bootstrap (§4.3, Figure 5) and the main variant's serve
// loop that executes its partition subgraph on checkpoint batches.
//
// Stage 1 (init-variant, public manifest): receive the variant-specific key
// from the monitor over the attested channel, install it into the TEE OS,
// install the decrypted second-stage manifest one time, report installation
// evidence, and exec() into stage 2. Stage 2 (main variant, second-stage
// manifest): load the encrypted partition graph and variant spec, build the
// diversified inference runtime, and serve batches.
package variant

import (
	"errors"
	"fmt"
	"strings"
	"time"

	"repro/internal/attest"
	"repro/internal/diversify"
	"repro/internal/enclave"
	"repro/internal/graph"
	"repro/internal/infer"
	"repro/internal/securechan"
	"repro/internal/teeos"
	"repro/internal/telemetry"
	"repro/internal/wire"
)

// Options adjusts variant construction.
type Options struct {
	// ConfigureRuntime, if set, post-processes the runtime configuration
	// resolved from the variant spec before the executor is built. The
	// faults package uses this hook to arm injected vulnerabilities; tests
	// use it to tweak parallelism.
	ConfigureRuntime func(infer.Config) infer.Config
	// TransformGraph, if set, post-processes the decrypted partition graph
	// (e.g., a Rowhammer-style weight bit flip).
	TransformGraph func(*graph.Graph)
}

// Run executes the complete variant lifecycle on an established monitor
// channel: bootstrap (stage 1), then serving (stage 2) until shutdown. It
// returns nil on clean shutdown.
func Run(conn securechan.Conn, os *teeos.OS, opts Options) error {
	v, err := Bootstrap(conn, os, opts)
	if err != nil {
		_ = wire.Send(conn, &wire.Error{Message: err.Error()})
		return err
	}
	return v.Serve(conn)
}

// Variant is a stage-2 main variant ready to serve inference.
type Variant struct {
	ID string
	// Resume is the first batch ID this variant serves: zero on initial
	// binding, the successor of the dead predecessor's last batch when the
	// variant was hot-replaced into a running pipeline (§2.4 recover).
	Resume uint64
	os     *teeos.OS
	exec   infer.Executor
}

// Executor exposes the variant's inference runtime (for tests).
func (v *Variant) Executor() infer.Executor { return v.exec }

// ErrBootstrap wraps stage-1 failures.
var ErrBootstrap = errors.New("variant: bootstrap failed")

// Bootstrap runs the init-variant protocol (stage 1) and the exec()
// transition, returning the stage-2 main variant.
func Bootstrap(conn securechan.Conn, os *teeos.OS, opts Options) (*Variant, error) {
	msg, err := wire.Recv(conn)
	if err != nil {
		return nil, fmt.Errorf("%w: receive assignment: %v", ErrBootstrap, err)
	}
	assign, ok := msg.(*wire.AssignKey)
	if !ok {
		return nil, fmt.Errorf("%w: expected AssignKey, got %T", ErrBootstrap, msg)
	}

	// Install the variant-specific key (stage-1-only interface).
	if err := os.InstallKey(assign.KDK); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBootstrap, err)
	}

	// Fetch and decrypt the second-stage manifest, then install it one-time
	// through the TEE OS pseudo-fs interface.
	manifestPath := string(assign.ManifestPB)
	manifestBytes, err := os.ReadFile(manifestPath)
	if err != nil {
		return nil, fmt.Errorf("%w: fetch manifest %q: %v", ErrBootstrap, manifestPath, err)
	}
	evidence, err := os.InstallSecondStage(manifestBytes)
	if err != nil {
		return nil, fmt.Errorf("%w: install second stage: %v", ErrBootstrap, err)
	}
	if err := wire.Send(conn, &wire.Installed{VariantID: assign.VariantID, Evidence: evidence}); err != nil {
		return nil, fmt.Errorf("%w: report evidence: %v", ErrBootstrap, err)
	}
	msg, err = wire.Recv(conn)
	if err != nil {
		return nil, fmt.Errorf("%w: await binding: %v", ErrBootstrap, err)
	}
	bound, ok := msg.(*wire.Bound)
	if !ok {
		return nil, fmt.Errorf("%w: expected Bound, got %T", ErrBootstrap, msg)
	}

	// One-way stage transition: the TEE OS resets state and enforces the
	// second-stage manifest from here on.
	if err := os.Exec(assign.Entrypoint); err != nil {
		return nil, fmt.Errorf("%w: exec transition: %v", ErrBootstrap, err)
	}

	// Stage 2: load the encrypted partition graph and spec.
	var graphPath, specPath string
	for _, f := range assign.Files {
		switch {
		case strings.HasSuffix(f, "graph.pf"):
			graphPath = f
		case strings.HasSuffix(f, "spec.pf"):
			specPath = f
		}
	}
	if graphPath == "" || specPath == "" {
		return nil, fmt.Errorf("%w: assignment lacks graph.pf/spec.pf files (%v)", ErrBootstrap, assign.Files)
	}
	gb, err := os.ReadFile(graphPath)
	if err != nil {
		return nil, fmt.Errorf("%w: load graph: %v", ErrBootstrap, err)
	}
	// Commit secure memory for the decrypted model via dynamic memory
	// management where the TEE supports it (§5.2: EDMM keeps the initial
	// commitment — and thus TEE initialization cost — small).
	if err := os.Enclave().Grow(int64(len(gb))); err != nil && !errors.Is(err, enclave.ErrNoEDMM) {
		return nil, fmt.Errorf("%w: commit secure memory: %v", ErrBootstrap, err)
	}
	sb, err := os.ReadFile(specPath)
	if err != nil {
		return nil, fmt.Errorf("%w: load spec: %v", ErrBootstrap, err)
	}
	g, err := graph.Unmarshal(gb)
	if err != nil {
		return nil, fmt.Errorf("%w: decode graph: %v", ErrBootstrap, err)
	}
	spec, err := diversify.ParseSpec(sb)
	if err != nil {
		return nil, fmt.Errorf("%w: decode spec: %v", ErrBootstrap, err)
	}
	cfg, err := spec.RuntimeConfig()
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBootstrap, err)
	}
	if opts.TransformGraph != nil {
		opts.TransformGraph(g)
	}
	if opts.ConfigureRuntime != nil {
		cfg = opts.ConfigureRuntime(cfg)
	}
	ex, err := infer.New(g, cfg)
	if err != nil {
		return nil, fmt.Errorf("%w: build runtime: %v", ErrBootstrap, err)
	}
	return &Variant{ID: assign.VariantID, Resume: bound.Resume, os: os, exec: ex}, nil
}

// Serve processes monitor messages until shutdown or connection loss:
// batches run through the inference runtime (kernel failures are reported
// per-batch, which the monitor's vote treats as dissent), attestation
// challenges are answered by the enclave, and Shutdown ends the loop.
func (v *Variant) Serve(conn securechan.Conn) error {
	for {
		msg, err := wire.Recv(conn)
		if err != nil {
			return fmt.Errorf("variant %s: receive: %w", v.ID, err)
		}
		switch m := msg.(type) {
		case *wire.Batch:
			res := &wire.Result{ID: m.ID, Trace: m.Trace, VariantID: v.ID}
			var t0 time.Time
			if m.Trace != 0 && telemetry.Enabled() {
				t0 = time.Now()
			}
			outs, err := v.exec.Run(m.Tensors)
			if err != nil {
				res.Err = err.Error()
			} else {
				res.Tensors = outs
			}
			if !t0.IsZero() {
				telemetry.DefaultTracer.Record(telemetry.Span{
					Trace: m.Trace, Batch: m.ID, Name: "variant-compute",
					Stage: -1, Variant: v.ID,
					Start: t0.UnixNano(), End: time.Now().UnixNano(),
				})
			}
			if err := wire.Send(conn, res); err != nil {
				return fmt.Errorf("variant %s: send result: %w", v.ID, err)
			}
		case *wire.AttestReq:
			rep, err := attest.Respond(v.os.Enclave(), m.Nonce, m.Context)
			if err != nil {
				_ = wire.Send(conn, &wire.Error{Message: err.Error()})
				continue
			}
			rb, err := rep.Marshal()
			if err != nil {
				_ = wire.Send(conn, &wire.Error{Message: err.Error()})
				continue
			}
			if err := wire.Send(conn, &wire.AttestResp{Report: rb}); err != nil {
				return fmt.Errorf("variant %s: send report: %w", v.ID, err)
			}
		case *wire.Shutdown:
			return nil
		default:
			_ = wire.Send(conn, &wire.Error{Message: fmt.Sprintf("variant %s: unexpected %T", v.ID, msg)})
		}
	}
}
