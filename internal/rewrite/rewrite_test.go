package rewrite_test

import (
	"math"
	"math/rand/v2"
	"repro/internal/rewrite"
	"testing"
	"testing/quick"

	"repro/internal/graph"
	"repro/internal/infer"
	"repro/internal/models"
	"repro/internal/tensor"
)

func testModel(t *testing.T) *graph.Graph {
	t.Helper()
	g, err := models.Build("mobilenetv3", models.Config{})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func testInput(seed uint64) *tensor.Tensor {
	rng := rand.New(rand.NewPCG(seed, 1))
	in := tensor.New(1, 3, 32, 32)
	for i := range in.Data() {
		in.Data()[i] = float32(rng.NormFloat64())
	}
	return in
}

func forward(t *testing.T, g *graph.Graph, in *tensor.Tensor) *tensor.Tensor {
	t.Helper()
	ex, err := infer.New(g, infer.Config{})
	if err != nil {
		t.Fatal(err)
	}
	out, err := ex.Run(map[string]*tensor.Tensor{"image": in})
	if err != nil {
		t.Fatal(err)
	}
	return out["logits"]
}

func maxRelDiff(a, b *tensor.Tensor) float64 {
	var worst float64
	for i := range a.Data() {
		d := math.Abs(float64(a.Data()[i]) - float64(b.Data()[i]))
		den := math.Abs(float64(b.Data()[i])) + 1e-6
		if r := d / den; r > worst {
			worst = r
		}
	}
	return worst
}

// assertEquivalent checks the transform preserved the model function.
func assertEquivalent(t *testing.T, name string, orig, transformed *graph.Graph) {
	t.Helper()
	if err := transformed.Validate(); err != nil {
		t.Fatalf("%s produced invalid graph: %v", name, err)
	}
	in := testInput(3)
	want := forward(t, orig, in)
	got := forward(t, transformed, in)
	if d := maxRelDiff(got, want); d > 1e-2 {
		t.Fatalf("%s changed the model function: max rel diff %g", name, d)
	}
}

func TestFuseConvBNEquivalence(t *testing.T) {
	g := testModel(t)
	tr := g.Clone()
	n := rewrite.FuseConvBN(tr)
	if n == 0 {
		t.Fatal("no Conv+BN pairs fused")
	}
	if cnt := tr.Stats().OpCounts[graph.OpBatchNorm]; cnt >= g.Stats().OpCounts[graph.OpBatchNorm] {
		t.Fatalf("BN count did not drop: %d", cnt)
	}
	assertEquivalent(t, "FuseConvBN", g, tr)
}

func TestFuseConvActivationEquivalence(t *testing.T) {
	g := testModel(t)
	tr := g.Clone()
	rewrite.FuseConvBN(tr) // activations sit behind BN in the builder's layout
	n := rewrite.FuseConvActivation(tr)
	if n == 0 {
		t.Fatal("no Conv+activation pairs fused")
	}
	assertEquivalent(t, "FuseConvActivation", g, tr)
}

func TestOptimizeLevels(t *testing.T) {
	g := testModel(t)
	if rewrite.Optimize(g.Clone(), 0) != 0 {
		t.Fatal("level 0 must be a no-op")
	}
	tr := g.Clone()
	if rewrite.Optimize(tr, 1) == 0 {
		t.Fatal("level 1 applied nothing")
	}
	assertEquivalent(t, "Optimize", g, tr)
}

func TestInsertDummyOpsEquivalence(t *testing.T) {
	g := testModel(t)
	tr := g.Clone()
	rng := rand.New(rand.NewPCG(9, 9))
	if err := rewrite.InsertDummyOps(6)(tr, rng); err != nil {
		t.Fatal(err)
	}
	if len(tr.Nodes) != len(g.Nodes)+6 {
		t.Fatalf("node count %d, want %d", len(tr.Nodes), len(g.Nodes)+6)
	}
	assertEquivalent(t, "InsertDummyOps", g, tr)
}

func TestInsertDummyOpsNeedsRNG(t *testing.T) {
	if err := rewrite.InsertDummyOps(1)(testModel(t), nil); err == nil {
		t.Fatal("expected error without RNG")
	}
}

func TestDecomposeGemmEquivalence(t *testing.T) {
	g := testModel(t)
	tr := g.Clone()
	if err := rewrite.DecomposeGemm()(tr, nil); err != nil {
		t.Fatal(err)
	}
	if tr.Stats().OpCounts[graph.OpGemm] != 0 {
		t.Fatal("Gemm nodes remain after decomposition")
	}
	if tr.Stats().OpCounts[graph.OpMatMul] == 0 {
		t.Fatal("no MatMul produced")
	}
	assertEquivalent(t, "DecomposeGemm", g, tr)
}

func TestDecomposeBatchNormEquivalence(t *testing.T) {
	g := testModel(t)
	tr := g.Clone()
	if err := rewrite.DecomposeBatchNorm()(tr, nil); err != nil {
		t.Fatal(err)
	}
	if tr.Stats().OpCounts[graph.OpBatchNorm] != 0 {
		t.Fatal("BatchNorm nodes remain after decomposition")
	}
	assertEquivalent(t, "DecomposeBatchNorm", g, tr)
}

func TestShuffleChannelsEquivalence(t *testing.T) {
	// MobileNet has few eligible ungrouped Conv->Conv pairs; ResNet has many.
	g, err := models.Build("resnet-50", models.Config{Depth: 0.34})
	if err != nil {
		t.Fatal(err)
	}
	tr := g.Clone()
	rng := rand.New(rand.NewPCG(10, 10))
	if err := rewrite.ShuffleChannels(3)(tr, rng); err != nil {
		t.Fatal(err)
	}
	in := testInput(4)
	want := forward(t, g, in)
	got := forward(t, tr, in)
	if d := maxRelDiff(got, want); d > 1e-2 {
		t.Fatalf("ShuffleChannels changed the function: %g", d)
	}
	// The weights must actually have changed layout.
	changed := false
	for name := range tr.Initializers {
		if _, ok := g.Initializers[name]; !ok {
			changed = true
			break
		}
	}
	if !changed {
		t.Fatal("ShuffleChannels did not rewrite any weights")
	}
}

func TestReorderCommutativeEquivalence(t *testing.T) {
	g, err := models.Build("resnet-50", models.Config{Depth: 0.34})
	if err != nil {
		t.Fatal(err)
	}
	tr := g.Clone()
	rng := rand.New(rand.NewPCG(11, 11))
	if err := rewrite.ReorderCommutative()(tr, rng); err != nil {
		t.Fatal(err)
	}
	assertEquivalent(t, "ReorderCommutative", g, tr)
}

func TestSelectiveOptimizeExtremes(t *testing.T) {
	g := testModel(t)
	rng := rand.New(rand.NewPCG(12, 12))

	none := g.Clone()
	if err := rewrite.SelectiveOptimize(0)(none, rng); err != nil {
		t.Fatal(err)
	}
	if none.Stats().OpCounts[graph.OpBatchNorm] != g.Stats().OpCounts[graph.OpBatchNorm] {
		t.Fatal("p=0 must fuse nothing")
	}

	all := g.Clone()
	if err := rewrite.SelectiveOptimize(1)(all, rng); err != nil {
		t.Fatal(err)
	}
	full := g.Clone()
	rewrite.FuseConvBN(full)
	if all.Stats().OpCounts[graph.OpBatchNorm] != full.Stats().OpCounts[graph.OpBatchNorm] {
		t.Fatal("p=1 must fuse everything FuseConvBN fuses")
	}
	assertEquivalent(t, "SelectiveOptimize", g, all)
}

func TestCleanupInitializers(t *testing.T) {
	g := testModel(t)
	g.AddInitializer("orphan", tensor.New(3))
	rewrite.CleanupInitializers(g)
	if _, ok := g.Initializers["orphan"]; ok {
		t.Fatal("orphan initializer survived cleanup")
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestQuickComposedTransformsEquivalence property-tests that random
// compositions of diversification transforms preserve the model function —
// the core guarantee behind MVX consistency checking.
func TestQuickComposedTransformsEquivalence(t *testing.T) {
	base, err := models.Build("resnet-50", models.Config{Depth: 0.34})
	if err != nil {
		t.Fatal(err)
	}
	in := testInput(5)
	ex, err := infer.New(base, infer.Config{})
	if err != nil {
		t.Fatal(err)
	}
	wantOut, err := ex.Run(map[string]*tensor.Tensor{"image": in})
	if err != nil {
		t.Fatal(err)
	}
	want := wantOut["logits"]

	mk := []func(uint8) rewrite.Transform{
		func(n uint8) rewrite.Transform { return rewrite.InsertDummyOps(int(n%4) + 1) },
		func(uint8) rewrite.Transform { return rewrite.DecomposeGemm() },
		func(uint8) rewrite.Transform { return rewrite.DecomposeBatchNorm() },
		func(n uint8) rewrite.Transform { return rewrite.ShuffleChannels(int(n % 3)) },
		func(uint8) rewrite.Transform { return rewrite.ReorderCommutative() },
		func(n uint8) rewrite.Transform { return rewrite.SelectiveOptimize(float64(n%10) / 10) },
		func(uint8) rewrite.Transform { return rewrite.Fuse() },
	}
	f := func(seed uint64, picks []uint8) bool {
		if len(picks) > 4 {
			picks = picks[:4]
		}
		rng := rand.New(rand.NewPCG(seed, 13))
		g := base.Clone()
		for _, p := range picks {
			if err := mk[int(p)%len(mk)](p)(g, rng); err != nil {
				return false
			}
		}
		if err := g.Validate(); err != nil {
			return false
		}
		ex, err := infer.New(g, infer.Config{})
		if err != nil {
			return false
		}
		out, err := ex.Run(map[string]*tensor.Tensor{"image": in})
		if err != nil {
			return false
		}
		return maxRelDiff(out["logits"], want) < 1e-2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 12}); err != nil {
		t.Fatal(err)
	}
}
