package rewrite

import (
	"fmt"
	"math"
	"math/rand/v2"
	"sort"

	"repro/internal/graph"
	"repro/internal/tensor"
)

// InsertDummyOps inserts count no-op nodes (Identity, or Add with a zero
// scalar) on randomly chosen internal edges. Dummy operators change the graph
// topology and node addresses without changing outputs (§4.2).
func InsertDummyOps(count int) Transform {
	return func(g *graph.Graph, rng *rand.Rand) error {
		if rng == nil {
			return fmt.Errorf("rewrite: InsertDummyOps needs an RNG")
		}
		for i := 0; i < count; i++ {
			edges := internalEdges(g)
			if len(edges) == 0 {
				return nil
			}
			e := edges[rng.IntN(len(edges))]
			mid := uniqueName(g, "dummy_t")
			var n *graph.Node
			if rng.IntN(2) == 0 {
				n = &graph.Node{
					Name:    uniqueName(g, "dummy_id"),
					Op:      graph.OpIdentity,
					Inputs:  []string{e.tensor},
					Outputs: []string{mid},
				}
			} else {
				zName := uniqueName(g, "dummy_zero")
				g.AddInitializer(zName, tensor.New(1))
				n = &graph.Node{
					Name:    uniqueName(g, "dummy_add"),
					Op:      graph.OpAdd,
					Inputs:  []string{e.tensor, zName},
					Outputs: []string{mid},
				}
			}
			g.Nodes = append(g.Nodes, n)
			replaceInput(e.consumer, e.tensor, mid)
		}
		return nil
	}
}

type edge struct {
	tensor   string
	consumer *graph.Node
}

// internalEdges enumerates (tensor, consumer) pairs where the tensor is
// produced by a node (not an input or initializer), in deterministic order.
func internalEdges(g *graph.Graph) []edge {
	produced := make(map[string]bool)
	for _, n := range g.Nodes {
		for _, o := range n.Outputs {
			produced[o] = true
		}
	}
	var out []edge
	for _, n := range g.Nodes {
		for _, in := range n.Inputs {
			if produced[in] {
				out = append(out, edge{tensor: in, consumer: n})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].consumer.Name != out[j].consumer.Name {
			return out[i].consumer.Name < out[j].consumer.Name
		}
		return out[i].tensor < out[j].tensor
	})
	return out
}

func replaceInput(n *graph.Node, from, to string) {
	for i, in := range n.Inputs {
		if in == from {
			n.Inputs[i] = to
			return
		}
	}
}

// DecomposeGemm splits every Gemm with bias into MatMul + Add (operator
// decomposition).
func DecomposeGemm() Transform {
	return func(g *graph.Graph, _ *rand.Rand) error {
		for _, n := range append([]*graph.Node(nil), g.Nodes...) {
			if n.Op != graph.OpGemm || len(n.Inputs) < 3 {
				continue
			}
			mid := uniqueName(g, n.Name+"_mm")
			add := &graph.Node{
				Name:    uniqueName(g, n.Name+"_bias"),
				Op:      graph.OpAdd,
				Inputs:  []string{mid, n.Inputs[2]},
				Outputs: []string{n.Outputs[0]},
			}
			n.Op = graph.OpMatMul
			n.Inputs = n.Inputs[:2]
			n.Outputs = []string{mid}
			g.Nodes = append(g.Nodes, add)
		}
		return nil
	}
}

// DecomposeBatchNorm replaces every BatchNorm whose parameters are
// initializers with an equivalent Mul + Add pair using precomputed
// per-channel affine coefficients.
func DecomposeBatchNorm() Transform {
	return func(g *graph.Graph, _ *rand.Rand) error {
		for _, n := range append([]*graph.Node(nil), g.Nodes...) {
			if n.Op != graph.OpBatchNorm {
				continue
			}
			var params [4]*tensor.Tensor
			ok := true
			for i, in := range n.Inputs[1:5] {
				t, found := g.Initializers[in]
				if !found {
					ok = false
					break
				}
				params[i] = t
			}
			if !ok {
				continue
			}
			scale, bias, mean, variance := params[0], params[1], params[2], params[3]
			eps := float32(n.Float("epsilon", 1e-5))
			c := scale.Size()
			a := tensor.New(1, c, 1, 1)
			b := tensor.New(1, c, 1, 1)
			ad, bd := a.Data(), b.Data()
			sd, bsd, md, vd := scale.Data(), bias.Data(), mean.Data(), variance.Data()
			for i := 0; i < c; i++ {
				ad[i] = sd[i] / float32(math.Sqrt(float64(vd[i]+eps)))
				bd[i] = bsd[i] - ad[i]*md[i]
			}
			aName := uniqueName(g, n.Name+"_a")
			bName := uniqueName(g, n.Name+"_b")
			g.AddInitializer(aName, a)
			g.AddInitializer(bName, b)
			mid := uniqueName(g, n.Name+"_scaled")
			add := &graph.Node{
				Name:    uniqueName(g, n.Name+"_shift"),
				Op:      graph.OpAdd,
				Inputs:  []string{mid, bName},
				Outputs: []string{n.Outputs[0]},
			}
			n.Op = graph.OpMul
			n.Inputs = []string{n.Inputs[0], aName}
			n.Outputs = []string{mid}
			n.Attrs = nil
			g.Nodes = append(g.Nodes, add)
		}
		CleanupInitializers(g)
		return nil
	}
}

// ShuffleChannels permutes the output channels of up to count eligible
// convolutions and compensates downstream, leaving the model function
// unchanged (channel manipulation, §4.2). A convolution is eligible when it
// is ungrouped, its weights are initializers, and its output reaches exactly
// one following ungrouped convolution through a chain of channel-wise
// single-consumer nodes (BatchNorm, activations); BatchNorm parameters along
// the chain are permuted to match.
func ShuffleChannels(count int) Transform {
	return func(g *graph.Graph, rng *rand.Rand) error {
		if rng == nil {
			return fmt.Errorf("rewrite: ShuffleChannels needs an RNG")
		}
		cands := shuffleCandidates(g)
		rng.Shuffle(len(cands), func(i, j int) { cands[i], cands[j] = cands[j], cands[i] })
		done := 0
		for _, ch := range cands {
			if done >= count {
				break
			}
			if err := shuffleOne(g, ch.head, ch.tail, ch.bns, rng); err == nil {
				done++
			}
		}
		return nil
	}
}

// shuffleChain is an eligible Conv → (channel-wise…) → Conv pattern.
type shuffleChain struct {
	head, tail *graph.Node
	bns        []*graph.Node // BatchNorms along the chain (params to permute)
}

// shuffleCandidates finds eligible chains for channel permutation.
func shuffleCandidates(g *graph.Graph) []shuffleChain {
	var out []shuffleChain
	for _, c1 := range g.Nodes {
		if c1.Op != graph.OpConv || c1.Int("group", 1) != 1 {
			continue
		}
		cur := c1
		var bns []*graph.Node
		for hops := 0; hops < 6; hops++ {
			next := soleConsumer(g, cur.Outputs[0])
			if next == nil {
				break
			}
			// The chained tensor must be the data input.
			if len(next.Inputs) == 0 || next.Inputs[0] != cur.Outputs[0] {
				break
			}
			switch next.Op {
			case graph.OpConv:
				if next.Int("group", 1) == 1 {
					out = append(out, shuffleChain{head: c1, tail: next, bns: bns})
				}
				hops = 6 // stop walking either way
			case graph.OpBatchNorm:
				bns = append(bns, next)
				cur = next
			case graph.OpRelu, graph.OpRelu6, graph.OpHardSwish, graph.OpHardSigmoid,
				graph.OpSigmoid, graph.OpIdentity:
				cur = next
			default:
				hops = 6
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].head.Name < out[j].head.Name })
	return out
}

func shuffleOne(g *graph.Graph, c1, c2 *graph.Node, bns []*graph.Node, rng *rand.Rand) error {
	w1, ok := g.Initializers[c1.Inputs[1]]
	if !ok {
		return fmt.Errorf("rewrite: conv %q weight not an initializer", c1.Name)
	}
	w2, ok := g.Initializers[c2.Inputs[1]]
	if !ok {
		return fmt.Errorf("rewrite: conv %q weight not an initializer", c2.Name)
	}
	cout := w1.Dim(0)
	if w2.Dim(1) != cout {
		return fmt.Errorf("rewrite: channel mismatch %d vs %d", cout, w2.Dim(1))
	}
	perm := rng.Perm(cout)

	// Permute w1 output channels: nw1[i] = w1[perm[i]].
	nw1 := tensor.New(w1.Shape()...)
	per := w1.Size() / cout
	for i, p := range perm {
		copy(nw1.Data()[i*per:(i+1)*per], w1.Data()[p*per:(p+1)*per])
	}
	var nb1 *tensor.Tensor
	if len(c1.Inputs) >= 3 {
		b1, ok := g.Initializers[c1.Inputs[2]]
		if !ok {
			return fmt.Errorf("rewrite: conv %q bias not an initializer", c1.Name)
		}
		nb1 = tensor.New(cout)
		for i, p := range perm {
			nb1.Data()[i] = b1.Data()[p]
		}
	}
	// Permute w2 input channels to match: nw2[:, i] = w2[:, perm[i]].
	nw2 := tensor.New(w2.Shape()...)
	oc2, khw := w2.Dim(0), w2.Dim(2)*w2.Dim(3)
	for o := 0; o < oc2; o++ {
		for i, p := range perm {
			src := w2.Data()[(o*cout+p)*khw : (o*cout+p+1)*khw]
			dst := nw2.Data()[(o*cout+i)*khw : (o*cout+i+1)*khw]
			copy(dst, src)
		}
	}

	// Permute BatchNorm parameters along the chain.
	type bnPerm struct {
		node   *graph.Node
		params []*tensor.Tensor
	}
	var bnPerms []bnPerm
	for _, bn := range bns {
		bp := bnPerm{node: bn}
		for _, in := range bn.Inputs[1:5] {
			p, ok := g.Initializers[in]
			if !ok || p.Size() != cout {
				return fmt.Errorf("rewrite: batchnorm %q params not permutable", bn.Name)
			}
			np := tensor.New(cout)
			for i, pi := range perm {
				np.Data()[i] = p.Data()[pi]
			}
			bp.params = append(bp.params, np)
		}
		bnPerms = append(bnPerms, bp)
	}

	n1 := uniqueName(g, c1.Name+"_wshuf")
	g.AddInitializer(n1, nw1)
	c1.Inputs[1] = n1
	if nb1 != nil {
		bn := uniqueName(g, c1.Name+"_bshuf")
		g.AddInitializer(bn, nb1)
		c1.Inputs[2] = bn
	}
	n2 := uniqueName(g, c2.Name+"_wshuf")
	g.AddInitializer(n2, nw2)
	c2.Inputs[1] = n2
	for _, bp := range bnPerms {
		for i, np := range bp.params {
			name := uniqueName(g, bp.node.Name+"_pshuf")
			g.AddInitializer(name, np)
			bp.node.Inputs[1+i] = name
		}
	}
	CleanupInitializers(g)
	return nil
}

// ReorderCommutative randomly permutes the inputs of Add nodes (commutative
// graph rewriting).
func ReorderCommutative() Transform {
	return func(g *graph.Graph, rng *rand.Rand) error {
		if rng == nil {
			return fmt.Errorf("rewrite: ReorderCommutative needs an RNG")
		}
		for _, n := range g.Nodes {
			if n.Op != graph.OpAdd || len(n.Inputs) < 2 {
				continue
			}
			rng.Shuffle(len(n.Inputs), func(i, j int) {
				n.Inputs[i], n.Inputs[j] = n.Inputs[j], n.Inputs[i]
			})
		}
		return nil
	}
}

// SelectiveOptimize fuses each eligible Conv+BN / Conv+activation pair with
// probability p — the "selective optimization" defense of §4.2, which leaves
// a randomized subset of operators unfused.
func SelectiveOptimize(p float64) Transform {
	return func(g *graph.Graph, rng *rand.Rand) error {
		if rng == nil {
			return fmt.Errorf("rewrite: SelectiveOptimize needs an RNG")
		}
		// Fuse one pair at a time so probability applies per-site.
		for {
			applied := false
			for _, bn := range g.Nodes {
				if bn.Op != graph.OpBatchNorm || bn.Str("noselopt", "") == "y" {
					continue
				}
				conv := producerOf(g, bn.Inputs[0])
				if conv == nil || !isConvOp(conv.Op) || soleConsumer(g, bn.Inputs[0]) != bn {
					continue
				}
				if rng.Float64() >= p {
					bn.SetAttr("noselopt", graph.StringAttr("y"))
					continue
				}
				if err := foldBN(g, conv, bn); err != nil {
					bn.SetAttr("noselopt", graph.StringAttr("y"))
					continue
				}
				conv.Outputs[0] = bn.Outputs[0]
				removeNode(g, bn)
				applied = true
				break
			}
			if !applied {
				break
			}
		}
		// Clear markers.
		for _, n := range g.Nodes {
			delete(n.Attrs, "noselopt")
		}
		CleanupInitializers(g)
		return nil
	}
}

// Fuse returns FuseConvBN + FuseConvActivation as a Transform.
func Fuse() Transform {
	return func(g *graph.Graph, _ *rand.Rand) error {
		FuseConvBN(g)
		FuseConvActivation(g)
		return nil
	}
}
