// Package rewrite implements functionally-equivalent graph transformations
// over the model IR. These are the building blocks of MVTEE's model-graph
// level diversification (§4.2) — dummy operators, operator decomposition and
// fusion, channel manipulation, commutative reordering, selective
// optimization — and double as the built-in optimizer passes of the Planned
// inference runtime.
//
// Every transform preserves the graph's input/output interface and its
// mathematical function (up to floating-point association). Transforms
// mutate the given graph in place and return it for chaining; callers that
// need the original intact should Clone first.
package rewrite

import (
	"fmt"
	"math"
	"math/rand/v2"

	"repro/internal/graph"
	"repro/internal/tensor"
)

// Transform rewrites a graph in place. The RNG drives any randomized choices
// and must not be nil for randomized transforms.
type Transform func(g *graph.Graph, rng *rand.Rand) error

// uniqueName returns a node/tensor name with the given prefix not yet used in g.
func uniqueName(g *graph.Graph, prefix string) string {
	used := make(map[string]bool, len(g.Nodes)*2)
	for _, n := range g.Nodes {
		used[n.Name] = true
		for _, o := range n.Outputs {
			used[o] = true
		}
	}
	for name := range g.Initializers {
		used[name] = true
	}
	for i := 0; ; i++ {
		cand := fmt.Sprintf("%s_%d", prefix, i)
		if !used[cand] {
			return cand
		}
	}
}

func removeNode(g *graph.Graph, target *graph.Node) {
	for i, n := range g.Nodes {
		if n == target {
			g.Nodes = append(g.Nodes[:i], g.Nodes[i+1:]...)
			return
		}
	}
}

// soleConsumer returns the single node consuming tensorName, or nil if the
// tensor has zero or multiple consumers or is a graph output.
func soleConsumer(g *graph.Graph, tensorName string) *graph.Node {
	for _, o := range g.Outputs {
		if o == tensorName {
			return nil
		}
	}
	var found *graph.Node
	for _, n := range g.Nodes {
		for _, in := range n.Inputs {
			if in != tensorName {
				continue
			}
			if found != nil {
				return nil
			}
			found = n
		}
	}
	return found
}

// CleanupInitializers drops initializers no node references.
func CleanupInitializers(g *graph.Graph) {
	used := make(map[string]bool)
	for _, n := range g.Nodes {
		for _, in := range n.Inputs {
			used[in] = true
		}
	}
	for name := range g.Initializers {
		if !used[name] {
			delete(g.Initializers, name)
		}
	}
}

// --- Fusion -----------------------------------------------------------------

// FuseConvBN folds BatchNorm nodes that directly follow a convolution into
// the convolution's weights and bias (equivalent-operator fusion). Returns
// the number of fusions applied.
func FuseConvBN(g *graph.Graph) int {
	fused := 0
	for {
		applied := false
		for _, bn := range g.Nodes {
			if bn.Op != graph.OpBatchNorm {
				continue
			}
			convOut := bn.Inputs[0]
			conv := producerOf(g, convOut)
			if conv == nil || !isConvOp(conv.Op) || soleConsumer(g, convOut) != bn {
				continue
			}
			if err := foldBN(g, conv, bn); err != nil {
				continue
			}
			conv.Outputs[0] = bn.Outputs[0]
			removeNode(g, bn)
			fused++
			applied = true
			break
		}
		if !applied {
			break
		}
	}
	CleanupInitializers(g)
	return fused
}

func producerOf(g *graph.Graph, tensorName string) *graph.Node {
	for _, n := range g.Nodes {
		for _, o := range n.Outputs {
			if o == tensorName {
				return n
			}
		}
	}
	return nil
}

func isConvOp(op string) bool {
	switch op {
	case graph.OpConv, graph.OpDepthwiseConv, graph.OpConvRelu, graph.OpConvBNRelu:
		return true
	}
	return false
}

// foldBN rewrites conv's weight/bias so conv ∘ BN == conv'. BN params must be
// graph initializers.
func foldBN(g *graph.Graph, conv, bn *graph.Node) error {
	w, ok := g.Initializers[conv.Inputs[1]]
	if !ok {
		return fmt.Errorf("rewrite: conv %q weight is not an initializer", conv.Name)
	}
	var params [4]*tensor.Tensor
	for i, in := range bn.Inputs[1:5] {
		t, ok := g.Initializers[in]
		if !ok {
			return fmt.Errorf("rewrite: batchnorm %q param %q is not an initializer", bn.Name, in)
		}
		params[i] = t
	}
	scale, bias, mean, variance := params[0], params[1], params[2], params[3]
	eps := float32(bn.Float("epsilon", 1e-5))
	cout := w.Dim(0)
	if scale.Size() != cout {
		return fmt.Errorf("rewrite: batchnorm channels %d != conv cout %d", scale.Size(), cout)
	}

	// New weight/bias tensors (do not mutate shared initializers in place).
	nw := w.Clone()
	var oldBias []float32
	if len(conv.Inputs) >= 3 {
		b, ok := g.Initializers[conv.Inputs[2]]
		if !ok {
			return fmt.Errorf("rewrite: conv %q bias is not an initializer", conv.Name)
		}
		oldBias = b.Data()
	}
	nb := tensor.New(cout)
	wd, bd := nw.Data(), nb.Data()
	perOC := w.Size() / cout
	sd, bsd, md, vd := scale.Data(), bias.Data(), mean.Data(), variance.Data()
	for oc := 0; oc < cout; oc++ {
		a := sd[oc] / float32(math.Sqrt(float64(vd[oc]+eps)))
		seg := wd[oc*perOC : (oc+1)*perOC]
		for i := range seg {
			seg[i] *= a
		}
		var ob float32
		if oldBias != nil {
			ob = oldBias[oc]
		}
		bd[oc] = a*(ob-md[oc]) + bsd[oc]
	}

	wName := uniqueName(g, conv.Name+"_wfold")
	bName := uniqueName(g, conv.Name+"_bfold")
	g.AddInitializer(wName, nw)
	g.AddInitializer(bName, nb)
	if len(conv.Inputs) >= 3 {
		conv.Inputs[1], conv.Inputs[2] = wName, bName
	} else {
		conv.Inputs = append([]string{conv.Inputs[0], wName, bName}, conv.Inputs[3:]...)
	}
	return nil
}

// FuseConvActivation fuses Relu/Relu6 nodes directly following a convolution
// into the convolution's activation attribute. Returns the number of fusions.
func FuseConvActivation(g *graph.Graph) int {
	fused := 0
	for {
		applied := false
		for _, act := range g.Nodes {
			var name string
			switch act.Op {
			case graph.OpRelu:
				name = "relu"
			case graph.OpRelu6:
				name = "relu6"
			default:
				continue
			}
			conv := producerOf(g, act.Inputs[0])
			if conv == nil || !isConvOp(conv.Op) || conv.Str("activation", "") != "" ||
				conv.Op == graph.OpConvRelu || conv.Op == graph.OpConvBNRelu {
				continue
			}
			if soleConsumer(g, act.Inputs[0]) != act {
				continue
			}
			conv.SetAttr("activation", graph.StringAttr(name))
			conv.Outputs[0] = act.Outputs[0]
			removeNode(g, act)
			fused++
			applied = true
			break
		}
		if !applied {
			break
		}
	}
	return fused
}

// Optimize applies the Planned runtime's built-in optimization pipeline at
// the given level (0: none, >=1: BN folding + activation fusion). Returns the
// total number of rewrites applied.
func Optimize(g *graph.Graph, level int) int {
	if level <= 0 {
		return 0
	}
	return FuseConvBN(g) + FuseConvActivation(g)
}
