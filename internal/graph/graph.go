// Package graph defines the ONNX-like intermediate representation used by
// MVTEE: a directed acyclic graph of operator nodes connected by named
// tensors, with weight initializers attached. Model partitioning (§4.1),
// graph-level diversification (§4.2) and the inference runtimes all operate
// on this IR.
package graph

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/tensor"
)

// Operator type names. These form the IR's operator vocabulary, mirroring the
// ONNX operator set the paper's tooling is built on.
const (
	OpConv          = "Conv"
	OpConvRelu      = "ConvRelu"      // fusion product
	OpConvBNRelu    = "ConvBNRelu"    // fusion product (BN folded into weights)
	OpDepthwiseConv = "DepthwiseConv" // Conv with group == channels
	OpGemm          = "Gemm"
	OpMatMul        = "MatMul"
	OpBatchNorm     = "BatchNorm"
	OpRelu          = "Relu"
	OpRelu6         = "Relu6"
	OpSigmoid       = "Sigmoid"
	OpHardSwish     = "HardSwish"
	OpHardSigmoid   = "HardSigmoid"
	OpMaxPool       = "MaxPool"
	OpAvgPool       = "AvgPool"
	OpGlobalAvgPool = "GlobalAvgPool"
	OpAdd           = "Add"
	OpMul           = "Mul"
	OpConcat        = "Concat"
	OpSoftmax       = "Softmax"
	OpFlatten       = "Flatten"
	OpIdentity      = "Identity"
	OpPad           = "Pad"

	// Transformer-family operators (the §7.4 foundation-model extension).
	OpLayerNorm   = "LayerNorm"
	OpGelu        = "Gelu"
	OpTranspose   = "Transpose"
	OpReshape     = "Reshape"
	OpBatchMatMul = "BatchMatMul"
	OpReduceMean  = "ReduceMean"
)

// Attr is a typed attribute value. Exactly one field is meaningful, selected
// by Kind.
type Attr struct {
	Kind AttrKind
	I    int64
	F    float64
	S    string
	Ints []int64
}

// AttrKind discriminates the Attr union.
type AttrKind int

// Attribute kinds.
const (
	AttrInt AttrKind = iota + 1
	AttrFloat
	AttrString
	AttrInts
)

// IntAttr builds an integer attribute.
func IntAttr(v int) Attr { return Attr{Kind: AttrInt, I: int64(v)} }

// FloatAttr builds a float attribute.
func FloatAttr(v float64) Attr { return Attr{Kind: AttrFloat, F: v} }

// StringAttr builds a string attribute.
func StringAttr(v string) Attr { return Attr{Kind: AttrString, S: v} }

// IntsAttr builds an integer-list attribute.
func IntsAttr(v ...int) Attr {
	xs := make([]int64, len(v))
	for i, x := range v {
		xs[i] = int64(x)
	}
	return Attr{Kind: AttrInts, Ints: xs}
}

// Node is one operator invocation in the graph. Inputs and Outputs name the
// tensors it consumes and produces; weight tensors appear as inputs whose
// names are keys of Graph.Initializers.
type Node struct {
	Name    string
	Op      string
	Inputs  []string
	Outputs []string
	Attrs   map[string]Attr
}

// Int returns the integer attribute name, or def if absent.
func (n *Node) Int(name string, def int) int {
	if a, ok := n.Attrs[name]; ok && a.Kind == AttrInt {
		return int(a.I)
	}
	return def
}

// Float returns the float attribute name, or def if absent.
func (n *Node) Float(name string, def float64) float64 {
	if a, ok := n.Attrs[name]; ok && a.Kind == AttrFloat {
		return a.F
	}
	return def
}

// Str returns the string attribute name, or def if absent.
func (n *Node) Str(name, def string) string {
	if a, ok := n.Attrs[name]; ok && a.Kind == AttrString {
		return a.S
	}
	return def
}

// IntsOr returns the integer-list attribute name, or def if absent.
func (n *Node) IntsOr(name string, def []int) []int {
	if a, ok := n.Attrs[name]; ok && a.Kind == AttrInts {
		out := make([]int, len(a.Ints))
		for i, x := range a.Ints {
			out[i] = int(x)
		}
		return out
	}
	return def
}

// SetAttr stores an attribute, allocating the map if needed.
func (n *Node) SetAttr(name string, a Attr) {
	if n.Attrs == nil {
		n.Attrs = make(map[string]Attr)
	}
	n.Attrs[name] = a
}

// Clone returns a deep copy of the node.
func (n *Node) Clone() *Node {
	c := &Node{
		Name:    n.Name,
		Op:      n.Op,
		Inputs:  append([]string(nil), n.Inputs...),
		Outputs: append([]string(nil), n.Outputs...),
	}
	if n.Attrs != nil {
		c.Attrs = make(map[string]Attr, len(n.Attrs))
		for k, v := range n.Attrs {
			v.Ints = append([]int64(nil), v.Ints...)
			c.Attrs[k] = v
		}
	}
	return c
}

// ValueInfo declares a graph input: its tensor name and static shape.
type ValueInfo struct {
	Name  string
	Shape []int
}

// Graph is a DNN model: operator nodes, external inputs, outputs, and weight
// initializers. Node order in Nodes is not significant; use TopoSort.
type Graph struct {
	Name         string
	Nodes        []*Node
	Inputs       []ValueInfo
	Outputs      []string
	Initializers map[string]*tensor.Tensor
}

// New returns an empty named graph ready for construction.
func New(name string) *Graph {
	return &Graph{Name: name, Initializers: make(map[string]*tensor.Tensor)}
}

// AddNode appends a node built from the arguments and returns it.
func (g *Graph) AddNode(name, op string, inputs, outputs []string, attrs map[string]Attr) *Node {
	n := &Node{Name: name, Op: op, Inputs: inputs, Outputs: outputs, Attrs: attrs}
	g.Nodes = append(g.Nodes, n)
	return n
}

// AddInitializer registers a weight tensor under name.
func (g *Graph) AddInitializer(name string, t *tensor.Tensor) {
	if g.Initializers == nil {
		g.Initializers = make(map[string]*tensor.Tensor)
	}
	g.Initializers[name] = t
}

// Clone returns a deep copy of the graph, including initializers.
func (g *Graph) Clone() *Graph {
	c := &Graph{
		Name:    g.Name,
		Nodes:   make([]*Node, len(g.Nodes)),
		Outputs: append([]string(nil), g.Outputs...),
	}
	for i, n := range g.Nodes {
		c.Nodes[i] = n.Clone()
	}
	c.Inputs = make([]ValueInfo, len(g.Inputs))
	for i, vi := range g.Inputs {
		c.Inputs[i] = ValueInfo{Name: vi.Name, Shape: append([]int(nil), vi.Shape...)}
	}
	c.Initializers = make(map[string]*tensor.Tensor, len(g.Initializers))
	for k, t := range g.Initializers {
		c.Initializers[k] = t.Clone()
	}
	return c
}

// NodeByName returns the node with the given name, or nil.
func (g *Graph) NodeByName(name string) *Node {
	for _, n := range g.Nodes {
		if n.Name == name {
			return n
		}
	}
	return nil
}

// Producer maps each tensor name to the node producing it.
func (g *Graph) Producer() map[string]*Node {
	p := make(map[string]*Node, len(g.Nodes))
	for _, n := range g.Nodes {
		for _, out := range n.Outputs {
			p[out] = n
		}
	}
	return p
}

// Consumers maps each tensor name to the nodes consuming it.
func (g *Graph) Consumers() map[string][]*Node {
	c := make(map[string][]*Node)
	for _, n := range g.Nodes {
		for _, in := range n.Inputs {
			c[in] = append(c[in], n)
		}
	}
	return c
}

// IsInput reports whether name is a declared graph input.
func (g *Graph) IsInput(name string) bool {
	for _, vi := range g.Inputs {
		if vi.Name == name {
			return true
		}
	}
	return false
}

// InputShape returns the declared shape of graph input name.
func (g *Graph) InputShape(name string) ([]int, bool) {
	for _, vi := range g.Inputs {
		if vi.Name == name {
			return append([]int(nil), vi.Shape...), true
		}
	}
	return nil, false
}

// Errors returned by Validate.
var (
	ErrCycle     = errors.New("graph: cycle detected")
	ErrDangling  = errors.New("graph: dangling tensor reference")
	ErrDuplicate = errors.New("graph: duplicate definition")
)

// Validate checks structural well-formedness: unique node names, unique
// tensor producers, all node inputs defined (by a graph input, an
// initializer, or another node), all graph outputs defined, and acyclicity.
func (g *Graph) Validate() error {
	nodeNames := make(map[string]bool, len(g.Nodes))
	produced := make(map[string]bool, len(g.Nodes))
	for _, n := range g.Nodes {
		if nodeNames[n.Name] {
			return fmt.Errorf("%w: node %q", ErrDuplicate, n.Name)
		}
		nodeNames[n.Name] = true
		for _, out := range n.Outputs {
			if produced[out] {
				return fmt.Errorf("%w: tensor %q has two producers", ErrDuplicate, out)
			}
			produced[out] = true
		}
	}
	defined := make(map[string]bool, len(produced))
	for name := range produced {
		defined[name] = true
	}
	for _, vi := range g.Inputs {
		if defined[vi.Name] {
			return fmt.Errorf("%w: input %q also produced by a node", ErrDuplicate, vi.Name)
		}
		defined[vi.Name] = true
	}
	for name := range g.Initializers {
		defined[name] = true
	}
	for _, n := range g.Nodes {
		for _, in := range n.Inputs {
			if !defined[in] {
				return fmt.Errorf("%w: node %q reads undefined tensor %q", ErrDangling, n.Name, in)
			}
		}
	}
	for _, out := range g.Outputs {
		if !defined[out] {
			return fmt.Errorf("%w: graph output %q undefined", ErrDangling, out)
		}
	}
	if _, err := g.TopoSort(); err != nil {
		return err
	}
	return nil
}

// TopoSort returns the nodes in a deterministic topological order (Kahn's
// algorithm with lexicographic tie-breaking on node name). It returns
// ErrCycle if the graph is cyclic.
func (g *Graph) TopoSort() ([]*Node, error) {
	producer := g.Producer()
	indeg := make(map[*Node]int, len(g.Nodes))
	succ := make(map[*Node][]*Node, len(g.Nodes))
	for _, n := range g.Nodes {
		indeg[n] += 0
		for _, in := range n.Inputs {
			if p, ok := producer[in]; ok && p != n {
				succ[p] = append(succ[p], n)
				indeg[n]++
			}
		}
	}
	ready := make([]*Node, 0, len(g.Nodes))
	for _, n := range g.Nodes {
		if indeg[n] == 0 {
			ready = append(ready, n)
		}
	}
	sortNodes(ready)
	var order []*Node
	for len(ready) > 0 {
		n := ready[0]
		ready = ready[1:]
		order = append(order, n)
		var unlocked []*Node
		for _, s := range succ[n] {
			indeg[s]--
			if indeg[s] == 0 {
				unlocked = append(unlocked, s)
			}
		}
		sortNodes(unlocked)
		ready = append(ready, unlocked...)
	}
	if len(order) != len(g.Nodes) {
		return nil, ErrCycle
	}
	return order, nil
}

func sortNodes(ns []*Node) {
	sort.Slice(ns, func(i, j int) bool { return ns[i].Name < ns[j].Name })
}

// Stats summarizes a graph for inspection tooling.
type Stats struct {
	Nodes        int
	Initializers int
	Parameters   int // total weight elements
	OpCounts     map[string]int
}

// Stats computes summary statistics of the graph.
func (g *Graph) Stats() Stats {
	s := Stats{Nodes: len(g.Nodes), Initializers: len(g.Initializers), OpCounts: make(map[string]int)}
	for _, n := range g.Nodes {
		s.OpCounts[n.Op]++
	}
	for _, t := range g.Initializers {
		s.Parameters += t.Size()
	}
	return s
}
