package graph

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"sort"

	"repro/internal/tensor"
)

// Binary graph container format. The encoding is deterministic (maps are
// emitted in sorted key order) so that serialized graphs can double as
// attestation measurement inputs.
const (
	codecMagic   = "MVTG"
	codecVersion = 1
)

type graphWriter struct {
	w   *bufio.Writer
	err error
}

func (gw *graphWriter) u32(v uint32) {
	if gw.err != nil {
		return
	}
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], v)
	_, gw.err = gw.w.Write(b[:])
}

func (gw *graphWriter) u64(v uint64) {
	if gw.err != nil {
		return
	}
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	_, gw.err = gw.w.Write(b[:])
}

func (gw *graphWriter) str(s string) {
	gw.u32(uint32(len(s)))
	if gw.err != nil {
		return
	}
	_, gw.err = gw.w.WriteString(s)
}

func (gw *graphWriter) strs(ss []string) {
	gw.u32(uint32(len(ss)))
	for _, s := range ss {
		gw.str(s)
	}
}

// Encode writes g to w in the binary container format.
func Encode(w io.Writer, g *Graph) error {
	gw := &graphWriter{w: bufio.NewWriter(w)}
	if _, err := gw.w.WriteString(codecMagic); err != nil {
		return fmt.Errorf("graph: encode: %w", err)
	}
	gw.u32(codecVersion)
	gw.str(g.Name)

	gw.u32(uint32(len(g.Inputs)))
	for _, vi := range g.Inputs {
		gw.str(vi.Name)
		gw.u32(uint32(len(vi.Shape)))
		for _, d := range vi.Shape {
			gw.u32(uint32(d))
		}
	}
	gw.strs(g.Outputs)

	gw.u32(uint32(len(g.Nodes)))
	for _, n := range g.Nodes {
		gw.str(n.Name)
		gw.str(n.Op)
		gw.strs(n.Inputs)
		gw.strs(n.Outputs)
		keys := make([]string, 0, len(n.Attrs))
		for k := range n.Attrs {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		gw.u32(uint32(len(keys)))
		for _, k := range keys {
			a := n.Attrs[k]
			gw.str(k)
			gw.u32(uint32(a.Kind))
			switch a.Kind {
			case AttrInt:
				gw.u64(uint64(a.I))
			case AttrFloat:
				gw.u64(math.Float64bits(a.F))
			case AttrString:
				gw.str(a.S)
			case AttrInts:
				gw.u32(uint32(len(a.Ints)))
				for _, x := range a.Ints {
					gw.u64(uint64(x))
				}
			default:
				return fmt.Errorf("graph: encode: node %q attr %q has unknown kind %d", n.Name, k, a.Kind)
			}
		}
	}

	inits := make([]string, 0, len(g.Initializers))
	for k := range g.Initializers {
		inits = append(inits, k)
	}
	sort.Strings(inits)
	gw.u32(uint32(len(inits)))
	for _, k := range inits {
		gw.str(k)
		if gw.err == nil {
			_, gw.err = g.Initializers[k].WriteTo(gw.w)
		}
	}
	if gw.err != nil {
		return fmt.Errorf("graph: encode: %w", gw.err)
	}
	return gw.w.Flush()
}

// Marshal returns the binary encoding of g.
func Marshal(g *Graph) ([]byte, error) {
	var buf bytes.Buffer
	if err := Encode(&buf, g); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

type graphReader struct {
	r   *bufio.Reader
	err error
}

func (gr *graphReader) u32() uint32 {
	if gr.err != nil {
		return 0
	}
	var b [4]byte
	_, gr.err = io.ReadFull(gr.r, b[:])
	return binary.LittleEndian.Uint32(b[:])
}

func (gr *graphReader) u64() uint64 {
	if gr.err != nil {
		return 0
	}
	var b [8]byte
	_, gr.err = io.ReadFull(gr.r, b[:])
	return binary.LittleEndian.Uint64(b[:])
}

const maxStringLen = 1 << 20

func (gr *graphReader) str() string {
	n := gr.u32()
	if gr.err != nil {
		return ""
	}
	if n > maxStringLen {
		gr.err = fmt.Errorf("graph: decode: string length %d exceeds limit", n)
		return ""
	}
	b := make([]byte, n)
	_, gr.err = io.ReadFull(gr.r, b)
	return string(b)
}

func (gr *graphReader) strs() []string {
	n := gr.u32()
	if gr.err != nil || n > maxStringLen {
		return nil
	}
	out := make([]string, n)
	for i := range out {
		out[i] = gr.str()
	}
	return out
}

// Decode reads a graph from r in the binary container format.
func Decode(r io.Reader) (*Graph, error) {
	gr := &graphReader{r: bufio.NewReader(r)}
	magic := make([]byte, len(codecMagic))
	if _, err := io.ReadFull(gr.r, magic); err != nil {
		return nil, fmt.Errorf("graph: decode: %w", err)
	}
	if string(magic) != codecMagic {
		return nil, fmt.Errorf("graph: decode: bad magic %q", magic)
	}
	if v := gr.u32(); v != codecVersion {
		return nil, fmt.Errorf("graph: decode: unsupported version %d", v)
	}
	g := New(gr.str())

	nin := gr.u32()
	for i := uint32(0); i < nin && gr.err == nil; i++ {
		vi := ValueInfo{Name: gr.str()}
		nd := gr.u32()
		vi.Shape = make([]int, nd)
		for j := range vi.Shape {
			vi.Shape[j] = int(gr.u32())
		}
		g.Inputs = append(g.Inputs, vi)
	}
	g.Outputs = gr.strs()

	nn := gr.u32()
	for i := uint32(0); i < nn && gr.err == nil; i++ {
		n := &Node{Name: gr.str(), Op: gr.str(), Inputs: gr.strs(), Outputs: gr.strs()}
		na := gr.u32()
		if na > 0 {
			n.Attrs = make(map[string]Attr, na)
		}
		for j := uint32(0); j < na && gr.err == nil; j++ {
			k := gr.str()
			a := Attr{Kind: AttrKind(gr.u32())}
			switch a.Kind {
			case AttrInt:
				a.I = int64(gr.u64())
			case AttrFloat:
				a.F = math.Float64frombits(gr.u64())
			case AttrString:
				a.S = gr.str()
			case AttrInts:
				cnt := gr.u32()
				a.Ints = make([]int64, cnt)
				for x := range a.Ints {
					a.Ints[x] = int64(gr.u64())
				}
			default:
				return nil, fmt.Errorf("graph: decode: node %q attr %q unknown kind %d", n.Name, k, a.Kind)
			}
			n.Attrs[k] = a
		}
		g.Nodes = append(g.Nodes, n)
	}

	ni := gr.u32()
	for i := uint32(0); i < ni && gr.err == nil; i++ {
		name := gr.str()
		if gr.err != nil {
			break
		}
		t, err := tensor.ReadFrom(gr.r)
		if err != nil {
			return nil, fmt.Errorf("graph: decode initializer %q: %w", name, err)
		}
		g.Initializers[name] = t
	}
	if gr.err != nil {
		return nil, fmt.Errorf("graph: decode: %w", gr.err)
	}
	return g, nil
}

// Unmarshal decodes a graph from its binary encoding.
func Unmarshal(b []byte) (*Graph, error) {
	return Decode(bytes.NewReader(b))
}
