package graph

import (
	"errors"
	"reflect"
	"testing"

	"repro/internal/tensor"
)

// chainGraph builds in -> A -> t1 -> B -> t2 (output), with one initializer.
func chainGraph() *Graph {
	g := New("chain")
	g.Inputs = []ValueInfo{{Name: "in", Shape: []int{1, 4}}}
	g.AddInitializer("w", tensor.MustFromSlice([]float32{1, 2, 3, 4}, 4, 1))
	g.AddNode("A", OpIdentity, []string{"in"}, []string{"t1"}, nil)
	g.AddNode("B", OpMatMul, []string{"t1", "w"}, []string{"t2"}, nil)
	g.Outputs = []string{"t2"}
	return g
}

func TestValidateOK(t *testing.T) {
	if err := chainGraph().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateDuplicateNode(t *testing.T) {
	g := chainGraph()
	g.AddNode("A", OpIdentity, []string{"in"}, []string{"t3"}, nil)
	if err := g.Validate(); !errors.Is(err, ErrDuplicate) {
		t.Fatalf("got %v, want ErrDuplicate", err)
	}
}

func TestValidateDuplicateProducer(t *testing.T) {
	g := chainGraph()
	g.AddNode("C", OpIdentity, []string{"in"}, []string{"t1"}, nil)
	if err := g.Validate(); !errors.Is(err, ErrDuplicate) {
		t.Fatalf("got %v, want ErrDuplicate", err)
	}
}

func TestValidateDangling(t *testing.T) {
	g := chainGraph()
	g.AddNode("C", OpIdentity, []string{"missing"}, []string{"t3"}, nil)
	if err := g.Validate(); !errors.Is(err, ErrDangling) {
		t.Fatalf("got %v, want ErrDangling", err)
	}
	g2 := chainGraph()
	g2.Outputs = append(g2.Outputs, "ghost")
	if err := g2.Validate(); !errors.Is(err, ErrDangling) {
		t.Fatalf("got %v, want ErrDangling", err)
	}
}

func TestValidateCycle(t *testing.T) {
	g := New("cyc")
	g.Inputs = []ValueInfo{{Name: "in", Shape: []int{1}}}
	g.AddNode("A", OpAdd, []string{"in", "t2"}, []string{"t1"}, nil)
	g.AddNode("B", OpIdentity, []string{"t1"}, []string{"t2"}, nil)
	g.Outputs = []string{"t2"}
	if err := g.Validate(); !errors.Is(err, ErrCycle) {
		t.Fatalf("got %v, want ErrCycle", err)
	}
}

func TestTopoSortDeterministicAndOrdered(t *testing.T) {
	g := New("diamond")
	g.Inputs = []ValueInfo{{Name: "in", Shape: []int{1}}}
	g.AddNode("D", OpAdd, []string{"l", "r"}, []string{"out"}, nil)
	g.AddNode("B", OpIdentity, []string{"t"}, []string{"l"}, nil)
	g.AddNode("C", OpIdentity, []string{"t"}, []string{"r"}, nil)
	g.AddNode("A", OpIdentity, []string{"in"}, []string{"t"}, nil)
	g.Outputs = []string{"out"}

	first, err := g.TopoSort()
	if err != nil {
		t.Fatal(err)
	}
	pos := map[string]int{}
	for i, n := range first {
		pos[n.Name] = i
	}
	if !(pos["A"] < pos["B"] && pos["A"] < pos["C"] && pos["B"] < pos["D"] && pos["C"] < pos["D"]) {
		t.Fatalf("not a topological order: %v", pos)
	}
	if pos["B"] > pos["C"] {
		t.Fatalf("tie-break not lexicographic: %v", pos)
	}
	for i := 0; i < 5; i++ {
		again, _ := g.TopoSort()
		for j := range again {
			if again[j].Name != first[j].Name {
				t.Fatal("TopoSort not deterministic")
			}
		}
	}
}

func TestAttrAccessors(t *testing.T) {
	n := &Node{}
	n.SetAttr("i", IntAttr(7))
	n.SetAttr("f", FloatAttr(2.5))
	n.SetAttr("s", StringAttr("x"))
	n.SetAttr("xs", IntsAttr(1, 2, 3))
	if n.Int("i", 0) != 7 || n.Int("missing", 9) != 9 {
		t.Error("Int accessor")
	}
	if n.Float("f", 0) != 2.5 || n.Float("i", 1.5) != 1.5 {
		t.Error("Float accessor (wrong-kind must fall back)")
	}
	if n.Str("s", "") != "x" || n.Str("nope", "d") != "d" {
		t.Error("Str accessor")
	}
	if got := n.IntsOr("xs", nil); !reflect.DeepEqual(got, []int{1, 2, 3}) {
		t.Errorf("IntsOr = %v", got)
	}
}

func TestCloneDeep(t *testing.T) {
	g := chainGraph()
	c := g.Clone()
	c.Nodes[0].Name = "renamed"
	c.Initializers["w"].Set(99, 0, 0)
	c.Inputs[0].Shape[0] = 5
	if g.Nodes[0].Name != "A" || g.Initializers["w"].At(0, 0) != 1 || g.Inputs[0].Shape[0] != 1 {
		t.Fatal("Clone is not deep")
	}
}

func TestProducerConsumers(t *testing.T) {
	g := chainGraph()
	p := g.Producer()
	if p["t1"].Name != "A" || p["t2"].Name != "B" {
		t.Error("Producer map wrong")
	}
	c := g.Consumers()
	if len(c["t1"]) != 1 || c["t1"][0].Name != "B" {
		t.Error("Consumers map wrong")
	}
	if !g.IsInput("in") || g.IsInput("t1") {
		t.Error("IsInput wrong")
	}
	if s, ok := g.InputShape("in"); !ok || !reflect.DeepEqual(s, []int{1, 4}) {
		t.Error("InputShape wrong")
	}
}

func TestStats(t *testing.T) {
	st := chainGraph().Stats()
	if st.Nodes != 2 || st.Initializers != 1 || st.Parameters != 4 {
		t.Errorf("Stats = %+v", st)
	}
	if st.OpCounts[OpIdentity] != 1 || st.OpCounts[OpMatMul] != 1 {
		t.Errorf("OpCounts = %v", st.OpCounts)
	}
}

func TestCodecRoundtrip(t *testing.T) {
	g := chainGraph()
	g.Nodes[1].SetAttr("stride", IntAttr(2))
	g.Nodes[1].SetAttr("epsilon", FloatAttr(1e-5))
	g.Nodes[1].SetAttr("mode", StringAttr("same"))
	g.Nodes[1].SetAttr("pads", IntsAttr(1, 1, 2, 2))

	b, err := Marshal(g)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Unmarshal(b)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != g.Name || len(got.Nodes) != len(g.Nodes) {
		t.Fatal("structure mismatch")
	}
	if got.Nodes[1].Int("stride", 0) != 2 || got.Nodes[1].Float("epsilon", 0) != 1e-5 ||
		got.Nodes[1].Str("mode", "") != "same" ||
		!reflect.DeepEqual(got.Nodes[1].IntsOr("pads", nil), []int{1, 1, 2, 2}) {
		t.Fatal("attrs lost in roundtrip")
	}
	if !reflect.DeepEqual(got.Initializers["w"].Data(), g.Initializers["w"].Data()) {
		t.Fatal("initializer lost")
	}
	if err := got.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestCodecDeterministic(t *testing.T) {
	g := chainGraph()
	a, _ := Marshal(g)
	b, _ := Marshal(g)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("encoding not deterministic (measurement hashing depends on it)")
	}
}

func TestDecodeMalformed(t *testing.T) {
	good, _ := Marshal(chainGraph())
	cases := [][]byte{
		nil,
		[]byte("XXXX"),
		good[:8],
		good[:len(good)-3],
	}
	for i, c := range cases {
		if _, err := Unmarshal(c); err == nil {
			t.Errorf("case %d: malformed graph accepted", i)
		}
	}
}

func TestSubgraphBoundaries(t *testing.T) {
	// in -> A -> t1 -> B -> t2 -> C -> out; extract {B}.
	g := New("abc")
	g.Inputs = []ValueInfo{{Name: "in", Shape: []int{1}}}
	g.AddInitializer("w", tensor.New(1, 1))
	g.AddNode("A", OpIdentity, []string{"in"}, []string{"t1"}, nil)
	g.AddNode("B", OpMatMul, []string{"t1", "w"}, []string{"t2"}, nil)
	g.AddNode("C", OpIdentity, []string{"t2"}, []string{"out"}, nil)
	g.Outputs = []string{"out"}

	sub, err := g.Subgraph("mid", []string{"B"}, map[string][]int{"t1": {1, 1}})
	if err != nil {
		t.Fatal(err)
	}
	if len(sub.Inputs) != 1 || sub.Inputs[0].Name != "t1" || !reflect.DeepEqual(sub.Inputs[0].Shape, []int{1, 1}) {
		t.Errorf("sub inputs = %+v", sub.Inputs)
	}
	if !reflect.DeepEqual(sub.Outputs, []string{"t2"}) {
		t.Errorf("sub outputs = %v", sub.Outputs)
	}
	if _, ok := sub.Initializers["w"]; !ok {
		t.Error("initializer not copied into subgraph")
	}
	if err := sub.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestSubgraphMissingNode(t *testing.T) {
	g := chainGraph()
	if _, err := g.Subgraph("x", []string{"A", "nope"}, nil); err == nil {
		t.Fatal("expected error for unknown node")
	}
}

func TestSubgraphGraphOutputRetained(t *testing.T) {
	g := chainGraph()
	sub, err := g.Subgraph("tail", []string{"B"}, map[string][]int{"t1": {1, 4}})
	if err != nil {
		t.Fatal(err)
	}
	// t2 is a model output: it must be a subgraph output even with no
	// external consumer.
	if !reflect.DeepEqual(sub.Outputs, []string{"t2"}) {
		t.Errorf("sub outputs = %v", sub.Outputs)
	}
}
