package graph

import (
	"fmt"
	"sort"
)

// Subgraph extracts the induced subgraph over the named nodes, producing a
// standalone Graph suitable for independent execution inside a variant TEE.
//
// Boundary tensors become the subgraph's interface:
//   - tensors consumed by a member node but produced outside it (and not
//     initializers) become graph inputs, with shapes taken from shapes (which
//     may be nil, leaving shapes empty);
//   - tensors produced by a member node and consumed outside it — or listed
//     in g.Outputs — become graph outputs.
//
// Initializers referenced by member nodes are copied into the subgraph.
func (g *Graph) Subgraph(name string, nodeNames []string, shapes map[string][]int) (*Graph, error) {
	member := make(map[string]bool, len(nodeNames))
	for _, n := range nodeNames {
		member[n] = true
	}
	sub := New(name)
	produced := make(map[string]bool)
	found := 0
	for _, n := range g.Nodes {
		if !member[n.Name] {
			continue
		}
		found++
		sub.Nodes = append(sub.Nodes, n.Clone())
		for _, out := range n.Outputs {
			produced[out] = true
		}
	}
	if found != len(member) {
		return nil, fmt.Errorf("graph: subgraph %q: %d of %d nodes not found", name, len(member)-found, len(member))
	}

	// Inputs: consumed inside, not produced inside, not an initializer.
	seenIn := make(map[string]bool)
	for _, n := range sub.Nodes {
		for _, in := range n.Inputs {
			if produced[in] || seenIn[in] {
				continue
			}
			if t, ok := g.Initializers[in]; ok {
				sub.Initializers[in] = t.Clone()
				seenIn[in] = true
				continue
			}
			seenIn[in] = true
			var shp []int
			if shapes != nil {
				shp = append([]int(nil), shapes[in]...)
			}
			sub.Inputs = append(sub.Inputs, ValueInfo{Name: in, Shape: shp})
		}
	}
	sort.Slice(sub.Inputs, func(i, j int) bool { return sub.Inputs[i].Name < sub.Inputs[j].Name })

	// Outputs: produced inside and (consumed outside, or a graph output).
	graphOut := make(map[string]bool, len(g.Outputs))
	for _, o := range g.Outputs {
		graphOut[o] = true
	}
	consumedOutside := make(map[string]bool)
	for _, n := range g.Nodes {
		if member[n.Name] {
			continue
		}
		for _, in := range n.Inputs {
			consumedOutside[in] = true
		}
	}
	seenOut := make(map[string]bool)
	for _, n := range sub.Nodes {
		for _, out := range n.Outputs {
			if seenOut[out] {
				continue
			}
			if consumedOutside[out] || graphOut[out] {
				sub.Outputs = append(sub.Outputs, out)
				seenOut[out] = true
			}
		}
	}
	sort.Strings(sub.Outputs)
	if err := sub.Validate(); err != nil {
		return nil, fmt.Errorf("graph: subgraph %q invalid: %w", name, err)
	}
	return sub, nil
}
