package blas

import (
	"fmt"
	"math"
	"math/rand/v2"
	"testing"

	"repro/internal/workpool"
)

// gemmShapes covers the edge cases the tiled kernels must get right: empty
// and unit dimensions, inner dimensions not divisible by the micro-kernel
// width or k-block, and sizes that don't align to 2-row or 4-column tiles.
var gemmShapes = [][3]int{
	{0, 4, 4}, {4, 0, 4}, {4, 4, 0}, {0, 0, 0},
	{1, 1, 1}, {1, 5, 3}, {2, 4, 7}, {3, 3, 3},
	{5, 4, 4}, {7, 9, 13}, {16, 16, 16}, {8, 8, 65},
	{33, 29, 31}, {64, 48, 37}, {2, 130, 5}, {31, 1, 63},
	{6, 7, 129}, {17, 4, 66},
}

// TestCrossBackendEquivalence runs every backend over randomized matrices of
// the edge-case shapes at every parallelism level, asserting that (a) each
// backend's result is BITWISE identical at every parallelism level — the MVX
// determinism requirement: a variant's output must not depend on its thread
// count — and (b) all backends agree with the float64 reference within the
// tolerance the default check policy would grant them.
func TestCrossBackendEquivalence(t *testing.T) {
	parLevels := []int{1, 2, 4, 8}
	rng := rand.New(rand.NewPCG(7, 11))
	for _, sh := range gemmShapes {
		m, n, k := sh[0], sh[1], sh[2]
		a := randMat(rng, m*k)
		b := randMat(rng, k*n)
		ref := refGemm(m, n, k, a, b)
		for _, kind := range Kinds() {
			be := MustNew(kind)
			var seq []float32
			for _, par := range parLevels {
				c := make([]float32, m*n)
				for i := range c {
					c[i] = 99 // poison: every element must be overwritten
				}
				pool := workpool.New(par)
				ParallelGemm(be, ranger(pool), m, n, k, a, b, c)
				pool.Close()
				if par == 1 {
					seq = c
					if d := maxAbsDiff(c, ref); d > 1e-3 {
						t.Errorf("%v %dx%dx%d: deviates from reference by %g", kind, m, n, k, d)
					}
					continue
				}
				for i := range c {
					if math.Float32bits(c[i]) != math.Float32bits(seq[i]) {
						t.Fatalf("%v %dx%dx%d: par=%d differs bitwise from sequential at %d: %x vs %x",
							kind, m, n, k, par, i, math.Float32bits(c[i]), math.Float32bits(seq[i]))
					}
				}
			}
		}
	}
}

// ranger converts a possibly-nil pool into the Ranger parameter without
// handing ParallelGemm a typed-nil interface.
func ranger(p *workpool.Pool) Ranger {
	if p == nil {
		return nil
	}
	return p
}

// TestBackendsAgreePairwise verifies the diversification contract directly:
// distinct implementations, results within the default check policy's
// allclose tolerance (rtol 1e-3, atol 1e-4) of each other.
func TestBackendsAgreePairwise(t *testing.T) {
	rng := rand.New(rand.NewPCG(3, 5))
	const m, n, k = 37, 41, 53
	a := randMat(rng, m*k)
	b := randMat(rng, k*n)
	results := map[Kind][]float32{}
	for _, kind := range Kinds() {
		c := make([]float32, m*n)
		MustNew(kind).Gemm(m, n, k, a, b, c)
		results[kind] = c
	}
	kinds := Kinds()
	for i := 0; i < len(kinds); i++ {
		for j := i + 1; j < len(kinds); j++ {
			x, y := results[kinds[i]], results[kinds[j]]
			for e := range x {
				d := math.Abs(float64(x[e]) - float64(y[e]))
				lim := 1e-4 + 1e-3*math.Abs(float64(y[e]))
				if d > lim {
					t.Fatalf("%v vs %v at %d: |%g-%g| = %g exceeds allclose limit %g",
						kinds[i], kinds[j], e, x[e], y[e], d, lim)
				}
			}
		}
	}
}

// TestNaNInfPropagationUniform is the regression test for the zero-skip
// divergence bug: naive and blocked once skipped a[i,p] == 0 terms, absorbing
// a NaN or Inf in B into 0 while packed propagated NaN — a spurious
// cross-variant divergence source at checkpoints. Every backend must now
// propagate non-finite B values through zero A rows identically.
func TestNaNInfPropagationUniform(t *testing.T) {
	const m, n, k = 5, 6, 7
	nan := float32(math.NaN())
	inf := float32(math.Inf(1))
	a := make([]float32, m*k) // all zeros: the absorbing case
	b := make([]float32, k*n)
	for i := range b {
		b[i] = 1
	}
	const nanCol, infCol = 2, 4
	b[3*n+nanCol] = nan // row 3, col 2
	b[5*n+infCol] = inf // row 5, col 4: 0*Inf = NaN
	for _, kind := range Kinds() {
		be := MustNew(kind)
		c := make([]float32, m*n)
		be.Gemm(m, n, k, a, b, c)
		for i := 0; i < m; i++ {
			for j := 0; j < n; j++ {
				got := c[i*n+j]
				isNaN := math.IsNaN(float64(got))
				if j == nanCol || j == infCol {
					if !isNaN {
						t.Errorf("%v: C[%d,%d] = %g, want NaN (non-finite B must propagate)", kind, i, j, got)
					}
				} else if isNaN || got != 0 {
					t.Errorf("%v: C[%d,%d] = %g, want 0", kind, i, j, got)
				}
			}
		}
	}
}

// TestParallelGemmFallback ensures wrapped backends (fault-injection style)
// without panel support still execute through ParallelGemm.
func TestParallelGemmFallback(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 9))
	const m, n, k = 6, 5, 4
	a := randMat(rng, m*k)
	b := randMat(rng, k*n)
	want := make([]float32, m*n)
	MustNew(Naive).Gemm(m, n, k, a, b, want)
	got := make([]float32, m*n)
	pool := workpool.New(4)
	defer pool.Close()
	ParallelGemm(opaque{MustNew(Naive)}, pool, m, n, k, a, b, got)
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("wrapped backend result differs at %d", i)
		}
	}
}

type opaque struct{ be Backend }

func (o opaque) Name() string                        { return fmt.Sprintf("opaque(%s)", o.be.Name()) }
func (o opaque) Gemm(m, n, k int, a, b, c []float32) { o.be.Gemm(m, n, k, a, b, c) }
