// Package blas provides the linear-algebra backends underlying the MVTEE
// inference runtimes. The paper's variants differ, among other axes, in which
// BLAS library they link (OpenBLAS vs Eigen vs Intel MKL); a fault attack like
// FrameFlip that targets one library's code is harmless to variants using a
// different one. This package reproduces that axis with three independent
// GEMM implementations behind a common interface. All are exact (no
// approximation) so functionally-equivalent variants produce bitwise-close
// results, yet the code paths, loop orders and memory access patterns are
// genuinely distinct.
package blas

import "fmt"

// Backend computes dense single-precision matrix products. Implementations
// must be safe for concurrent use by multiple goroutines.
type Backend interface {
	// Name identifies the backend ("naive", "blocked", "packed").
	Name() string
	// Gemm computes C = A·B where A is m×k, B is k×n and C is m×n, all
	// row-major. C is overwritten.
	Gemm(m, n, k int, a, b, c []float32)
}

// Kind selects one of the built-in backends.
type Kind int

// Built-in backend kinds. They stand in for the distinct BLAS libraries of
// the paper's variant pool (§4.2, §6.5).
const (
	Naive   Kind = iota + 1 // triple loop, ikj order — stands in for a reference BLAS
	Blocked                 // cache-blocked/tiled — stands in for OpenBLAS-style kernels
	Packed                  // B-transposed packing — stands in for MKL/Eigen-style packing
)

func (k Kind) String() string {
	switch k {
	case Naive:
		return "naive"
	case Blocked:
		return "blocked"
	case Packed:
		return "packed"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// New returns the backend for kind k.
func New(k Kind) (Backend, error) {
	switch k {
	case Naive:
		return naiveBackend{}, nil
	case Blocked:
		return blockedBackend{}, nil
	case Packed:
		return packedBackend{}, nil
	default:
		return nil, fmt.Errorf("blas: unknown backend kind %d", int(k))
	}
}

// MustNew is New that panics on error; for static configuration tables.
func MustNew(k Kind) Backend {
	b, err := New(k)
	if err != nil {
		panic(err)
	}
	return b
}

// Kinds lists all built-in backend kinds.
func Kinds() []Kind { return []Kind{Naive, Blocked, Packed} }

func checkGemmArgs(m, n, k int, a, b, c []float32) {
	if len(a) < m*k || len(b) < k*n || len(c) < m*n {
		panic(fmt.Sprintf("blas: gemm buffer too small: m=%d n=%d k=%d len(a)=%d len(b)=%d len(c)=%d",
			m, n, k, len(a), len(b), len(c)))
	}
}

// --- naive ------------------------------------------------------------------

type naiveBackend struct{}

func (naiveBackend) Name() string { return "naive" }

func (naiveBackend) Gemm(m, n, k int, a, b, c []float32) {
	checkGemmArgs(m, n, k, a, b, c)
	for i := 0; i < m; i++ {
		ci := c[i*n : i*n+n]
		for x := range ci {
			ci[x] = 0
		}
		for p := 0; p < k; p++ {
			av := a[i*k+p]
			if av == 0 {
				continue
			}
			bp := b[p*n : p*n+n]
			for j, bv := range bp {
				ci[j] += av * bv
			}
		}
	}
}

// --- blocked ------------------------------------------------------------------

type blockedBackend struct{}

func (blockedBackend) Name() string { return "blocked" }

// Tile sizes tuned for L1-resident panels of float32.
const (
	blockM = 32
	blockN = 128
	blockK = 64
)

func (blockedBackend) Gemm(m, n, k int, a, b, c []float32) {
	checkGemmArgs(m, n, k, a, b, c)
	for i := 0; i < m*n; i++ {
		c[i] = 0
	}
	for i0 := 0; i0 < m; i0 += blockM {
		iMax := min(i0+blockM, m)
		for p0 := 0; p0 < k; p0 += blockK {
			pMax := min(p0+blockK, k)
			for j0 := 0; j0 < n; j0 += blockN {
				jMax := min(j0+blockN, n)
				for i := i0; i < iMax; i++ {
					ci := c[i*n+j0 : i*n+jMax]
					for p := p0; p < pMax; p++ {
						av := a[i*k+p]
						if av == 0 {
							continue
						}
						bp := b[p*n+j0 : p*n+jMax]
						for j, bv := range bp {
							ci[j] += av * bv
						}
					}
				}
			}
		}
	}
}

// --- packed ------------------------------------------------------------------

type packedBackend struct{}

func (packedBackend) Name() string { return "packed" }

// Gemm transposes B into a column-packed buffer and accumulates dot products
// with 4-way unrolling — a different code path and traversal order than the
// other two backends.
func (packedBackend) Gemm(m, n, k int, a, b, c []float32) {
	checkGemmArgs(m, n, k, a, b, c)
	bt := make([]float32, k*n)
	for p := 0; p < k; p++ {
		for j := 0; j < n; j++ {
			bt[j*k+p] = b[p*n+j]
		}
	}
	for i := 0; i < m; i++ {
		ai := a[i*k : i*k+k]
		for j := 0; j < n; j++ {
			bj := bt[j*k : j*k+k]
			var s0, s1, s2, s3 float32
			p := 0
			for ; p+4 <= k; p += 4 {
				s0 += ai[p] * bj[p]
				s1 += ai[p+1] * bj[p+1]
				s2 += ai[p+2] * bj[p+2]
				s3 += ai[p+3] * bj[p+3]
			}
			s := s0 + s1 + s2 + s3
			for ; p < k; p++ {
				s += ai[p] * bj[p]
			}
			c[i*n+j] = s
		}
	}
}
