// Package blas provides the linear-algebra backends underlying the MVTEE
// inference runtimes. The paper's variants differ, among other axes, in which
// BLAS library they link (OpenBLAS vs Eigen vs Intel MKL); a fault attack like
// FrameFlip that targets one library's code is harmless to variants using a
// different one. This package reproduces that axis with three independent
// GEMM implementations behind a common interface. All are exact (no
// approximation) so functionally-equivalent variants produce bitwise-close
// results, yet the code paths, loop orders and memory access patterns are
// genuinely distinct:
//
//   - naive: row-streaming ikj triple loop, no blocking or packing — the
//     reference-BLAS stand-in;
//   - blocked: k-blocked L1 tiles whose 4-column strips are copied into a
//     stack buffer, driving a 2×4 register-accumulator micro-kernel that
//     adds one partial sum per k-block into C — the OpenBLAS-style kernel
//     stand-in;
//   - packed: the whole of B transposed into a pooled column-major buffer,
//     then 2×4 tiles of full-length dot products over the packed panels —
//     the MKL/Eigen-style packing stand-in.
//
// Each backend accumulates every output element in ascending p
// (inner-dimension) order with a parallelism-independent partial-sum
// grouping, so a backend's result is bitwise identical at every parallelism
// level; only cross-backend results differ, by float rounding. No backend
// skips zero operands: NaN and Inf propagate identically through all three,
// so a non-finite value can never be a cross-variant divergence source at
// checkpoints.
package blas

import (
	"fmt"
	"sync"
)

// Backend computes dense single-precision matrix products. Implementations
// must be safe for concurrent use by multiple goroutines.
type Backend interface {
	// Name identifies the backend ("naive", "blocked", "packed").
	Name() string
	// Gemm computes C = A·B where A is m×k, B is k×n and C is m×n, all
	// row-major. C is overwritten.
	Gemm(m, n, k int, a, b, c []float32)
}

// Ranger runs f over a partition of [0,n) into contiguous [lo,hi) ranges,
// possibly concurrently. workpool.Pool implements it; a nil Ranger means
// sequential execution on the caller.
type Ranger interface {
	RunRange(n int, f func(lo, hi int))
}

// panelBackend is implemented by the built-in backends: compute C with
// independent row panels distributed over r.
type panelBackend interface {
	gemmPanels(r Ranger, m, n, k int, a, b, c []float32)
}

// ParallelGemm computes C = A·B on be, splitting independent row panels of C
// across r when the backend supports panel execution. Wrapped or external
// backends (e.g. fault-injection wrappers) fall back to their own sequential
// Gemm, preserving their semantics. A nil r runs sequentially.
func ParallelGemm(be Backend, r Ranger, m, n, k int, a, b, c []float32) {
	if pb, ok := be.(panelBackend); ok {
		checkGemmArgs(m, n, k, a, b, c)
		pb.gemmPanels(r, m, n, k, a, b, c)
		return
	}
	be.Gemm(m, n, k, a, b, c)
}

// runRange dispatches to r, or runs sequentially when r is nil.
func runRange(r Ranger, n int, f func(lo, hi int)) {
	if r == nil {
		f(0, n)
		return
	}
	r.RunRange(n, f)
}

// Kind selects one of the built-in backends.
type Kind int

// Built-in backend kinds. They stand in for the distinct BLAS libraries of
// the paper's variant pool (§4.2, §6.5).
const (
	Naive   Kind = iota + 1 // triple loop, ikj order — stands in for a reference BLAS
	Blocked                 // cache-blocked/tiled — stands in for OpenBLAS-style kernels
	Packed                  // B-transposed packing — stands in for MKL/Eigen-style packing
)

func (k Kind) String() string {
	switch k {
	case Naive:
		return "naive"
	case Blocked:
		return "blocked"
	case Packed:
		return "packed"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// New returns the backend for kind k.
func New(k Kind) (Backend, error) {
	switch k {
	case Naive:
		return naiveBackend{}, nil
	case Blocked:
		return blockedBackend{}, nil
	case Packed:
		return packedBackend{}, nil
	default:
		return nil, fmt.Errorf("blas: unknown backend kind %d", int(k))
	}
}

// MustNew is New that panics on error; for static configuration tables.
func MustNew(k Kind) Backend {
	b, err := New(k)
	if err != nil {
		panic(err)
	}
	return b
}

// Kinds lists all built-in backend kinds.
func Kinds() []Kind { return []Kind{Naive, Blocked, Packed} }

func checkGemmArgs(m, n, k int, a, b, c []float32) {
	if len(a) < m*k || len(b) < k*n || len(c) < m*n {
		panic(fmt.Sprintf("blas: gemm buffer too small: m=%d n=%d k=%d len(a)=%d len(b)=%d len(c)=%d",
			m, n, k, len(a), len(b), len(c)))
	}
}

// --- naive ------------------------------------------------------------------

type naiveBackend struct{}

func (naiveBackend) Name() string { return "naive" }

func (be naiveBackend) Gemm(m, n, k int, a, b, c []float32) {
	checkGemmArgs(m, n, k, a, b, c)
	be.gemmPanels(nil, m, n, k, a, b, c)
}

// gemmPanels streams one C row at a time in ikj order: zero the row, then for
// each p add a[i,p]·B[p,:] into it. Deliberately unblocked and unpacked.
func (naiveBackend) gemmPanels(r Ranger, m, n, k int, a, b, c []float32) {
	runRange(r, m, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			ci := c[i*n : i*n+n]
			for x := range ci {
				ci[x] = 0
			}
			for p := 0; p < k; p++ {
				av := a[i*k+p]
				bp := b[p*n : p*n+n]
				for j, bv := range bp {
					ci[j] += av * bv
				}
			}
		}
	})
}

// --- blocked ------------------------------------------------------------------

type blockedBackend struct{}

func (blockedBackend) Name() string { return "blocked" }

// blockK is the k-panel depth: a 4-column B strip of blockK rows (1 KiB)
// stays L1-resident while every row of the current panel sweeps it. panelM
// bounds the A row panel so A stays L1-resident against the strip.
const (
	blockK = 64
	panelM = 32
)

func (be blockedBackend) Gemm(m, n, k int, a, b, c []float32) {
	checkGemmArgs(m, n, k, a, b, c)
	be.gemmPanels(nil, m, n, k, a, b, c)
}

// gemmPanels is the cache-tiled backend: for every k-block it copies each
// 4-column strip of B into a stack-resident column-strip buffer, then a 2×4
// register-accumulator micro-kernel sweeps the panel's rows, adding one
// partial sum per k-block into C. The 2×4 shape keeps all eight accumulators
// plus operands within the register file (a 4×4 tile spills and measures
// slower). Every element accumulates ascending-p partial sums per k-block
// regardless of row-panel boundaries, so results are bitwise identical at
// every parallelism level.
func (blockedBackend) gemmPanels(r Ranger, m, n, k int, a, b, c []float32) {
	runRange(r, (m+1)/2, func(tlo, thi int) {
		lo, hi := tlo*2, thi*2
		if hi > m {
			hi = m
		}
		for i := lo; i < hi; i++ {
			ci := c[i*n : i*n+n]
			for x := range ci {
				ci[x] = 0
			}
		}
		var buf [blockK * 4]float32
		nAlign := n &^ 3
		for m0 := lo; m0 < hi; m0 += panelM {
			m1 := min(m0+panelM, hi)
			for p0 := 0; p0 < k; p0 += blockK {
				pMax := min(p0+blockK, k)
				plen := pMax - p0
				for j := 0; j < nAlign; j += 4 {
					s0 := buf[0*plen : 1*plen]
					s1 := buf[1*plen : 2*plen]
					s2 := buf[2*plen : 3*plen]
					s3 := buf[3*plen : 4*plen]
					for p := 0; p < plen; p++ {
						bp := b[(p0+p)*n+j : (p0+p)*n+j+4]
						s0[p] = bp[0]
						s1[p] = bp[1]
						s2[p] = bp[2]
						s3[p] = bp[3]
					}
					i := m0
					for ; i+2 <= m1; i += 2 {
						blockedTile2x4(i, j, p0, pMax, n, k, a, s0, s1, s2, s3, c)
					}
					if i < m1 {
						a0 := a[i*k+p0 : i*k+pMax]
						t0 := s0[:len(a0)]
						t1 := s1[:len(a0)]
						t2 := s2[:len(a0)]
						t3 := s3[:len(a0)]
						var c0, c1, c2, c3 float32
						for p := range a0 {
							av := a0[p]
							c0 += av * t0[p]
							c1 += av * t1[p]
							c2 += av * t2[p]
							c3 += av * t3[p]
						}
						ci := c[i*n+j : i*n+j+4]
						ci[0] += c0
						ci[1] += c1
						ci[2] += c2
						ci[3] += c3
					}
				}
				for j := nAlign; j < n; j++ {
					for i := m0; i < m1; i++ {
						ai := a[i*k+p0 : i*k+pMax]
						var s float32
						for p := range ai {
							s += ai[p] * b[(p0+p)*n+j]
						}
						c[i*n+j] += s
					}
				}
			}
		}
	})
}

// blockedTile2x4 adds the k-block partial sums of C[i:i+2, j:j+4] from the
// strip buffers s0..s3 (the packed 4-column B strip of rows [p0,pMax)).
func blockedTile2x4(i, j, p0, pMax, n, k int, a []float32, s0, s1, s2, s3 []float32, c []float32) {
	a0 := a[(i+0)*k+p0 : (i+0)*k+pMax]
	a1 := a[(i+1)*k+p0 : (i+1)*k+pMax]
	a1 = a1[:len(a0)]
	t0 := s0[:len(a0)]
	t1 := s1[:len(a0)]
	t2 := s2[:len(a0)]
	t3 := s3[:len(a0)]
	var c00, c01, c02, c03 float32
	var c10, c11, c12, c13 float32
	for p := range a0 {
		b0, b1, b2, b3 := t0[p], t1[p], t2[p], t3[p]
		av := a0[p]
		c00 += av * b0
		c01 += av * b1
		c02 += av * b2
		c03 += av * b3
		av = a1[p]
		c10 += av * b0
		c11 += av * b1
		c12 += av * b2
		c13 += av * b3
	}
	r0 := c[(i+0)*n+j : (i+0)*n+j+4]
	r0[0] += c00
	r0[1] += c01
	r0[2] += c02
	r0[3] += c03
	r1 := c[(i+1)*n+j : (i+1)*n+j+4]
	r1[0] += c10
	r1[1] += c11
	r1[2] += c12
	r1[3] += c13
}

// --- packed ------------------------------------------------------------------

type packedBackend struct{}

func (packedBackend) Name() string { return "packed" }

// btPool recycles the B-transpose packing buffers so steady-state inference
// does not allocate per GEMM call.
var btPool = sync.Pool{New: func() any { s := []float32(nil); return &s }}

func getPacked(n int) *[]float32 {
	p := btPool.Get().(*[]float32)
	if cap(*p) < n {
		*p = make([]float32, n)
	}
	*p = (*p)[:n]
	return p
}

func (be packedBackend) Gemm(m, n, k int, a, b, c []float32) {
	checkGemmArgs(m, n, k, a, b, c)
	be.gemmPanels(nil, m, n, k, a, b, c)
}

// gemmPanels transposes the whole of B once into a pooled column-major
// buffer, then computes 2×4 tiles of full-length dot products over the
// contiguous packed panels — k is the innermost loop over the entire inner
// dimension, the opposite traversal of the other two backends. Every output
// element is one straight ascending-p dot product in every code path, so
// results are bitwise identical at every parallelism level.
func (packedBackend) gemmPanels(r Ranger, m, n, k int, a, b, c []float32) {
	btp := getPacked(k * n)
	bt := *btp
	for p := 0; p < k; p++ {
		bp := b[p*n : p*n+n]
		for j, bv := range bp {
			bt[j*k+p] = bv
		}
	}
	runRange(r, (m+1)/2, func(tlo, thi int) {
		lo, hi := tlo*2, thi*2
		if hi > m {
			hi = m
		}
		i := lo
		for ; i+2 <= hi; i += 2 {
			packedRows2(i, n, k, a, bt, c)
		}
		if i < hi {
			ai := a[i*k : i*k+k]
			for j := 0; j < n; j++ {
				bj := bt[j*k : j*k+k]
				bj = bj[:len(ai)]
				var s float32
				for p := range ai {
					s += ai[p] * bj[p]
				}
				c[i*n+j] = s
			}
		}
	})
	btPool.Put(btp)
}

// packedRows2 fills C[i:i+2, :] with 2×4 dot-product tiles over packed B.
func packedRows2(i, n, k int, a, bt, c []float32) {
	a0 := a[(i+0)*k : (i+0)*k+k]
	a1 := a[(i+1)*k : (i+1)*k+k]
	a1 = a1[:len(a0)]
	j := 0
	for ; j+4 <= n; j += 4 {
		b0 := bt[(j+0)*k : (j+0)*k+k]
		b1 := bt[(j+1)*k : (j+1)*k+k]
		b2 := bt[(j+2)*k : (j+2)*k+k]
		b3 := bt[(j+3)*k : (j+3)*k+k]
		b0 = b0[:len(a0)]
		b1 = b1[:len(a0)]
		b2 = b2[:len(a0)]
		b3 = b3[:len(a0)]
		var c00, c01, c02, c03 float32
		var c10, c11, c12, c13 float32
		for p := range a0 {
			w0, w1, w2, w3 := b0[p], b1[p], b2[p], b3[p]
			av := a0[p]
			c00 += av * w0
			c01 += av * w1
			c02 += av * w2
			c03 += av * w3
			av = a1[p]
			c10 += av * w0
			c11 += av * w1
			c12 += av * w2
			c13 += av * w3
		}
		r0 := c[(i+0)*n+j : (i+0)*n+j+4]
		r0[0], r0[1], r0[2], r0[3] = c00, c01, c02, c03
		r1 := c[(i+1)*n+j : (i+1)*n+j+4]
		r1[0], r1[1], r1[2], r1[3] = c10, c11, c12, c13
	}
	for ; j < n; j++ {
		bj := bt[j*k : j*k+k]
		bj = bj[:len(a0)]
		var s0, s1 float32
		for p := range bj {
			bv := bj[p]
			s0 += a0[p] * bv
			s1 += a1[p] * bv
		}
		c[(i+0)*n+j] = s0
		c[(i+1)*n+j] = s1
	}
}
