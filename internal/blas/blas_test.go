package blas

import (
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"
)

// refGemm is the trusted double-precision reference.
func refGemm(m, n, k int, a, b []float32) []float32 {
	c := make([]float32, m*n)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			var s float64
			for p := 0; p < k; p++ {
				s += float64(a[i*k+p]) * float64(b[p*n+j])
			}
			c[i*n+j] = float32(s)
		}
	}
	return c
}

func randMat(rng *rand.Rand, n int) []float32 {
	m := make([]float32, n)
	for i := range m {
		m[i] = float32(rng.NormFloat64())
	}
	return m
}

func maxAbsDiff(a, b []float32) float64 {
	var d float64
	for i := range a {
		if x := math.Abs(float64(a[i]) - float64(b[i])); x > d {
			d = x
		}
	}
	return d
}

func TestNewAndNames(t *testing.T) {
	wantNames := map[Kind]string{Naive: "naive", Blocked: "blocked", Packed: "packed"}
	for _, k := range Kinds() {
		be, err := New(k)
		if err != nil {
			t.Fatalf("New(%v): %v", k, err)
		}
		if be.Name() != wantNames[k] {
			t.Errorf("New(%v).Name() = %q, want %q", k, be.Name(), wantNames[k])
		}
		if k.String() != wantNames[k] {
			t.Errorf("%v.String() = %q", k, k.String())
		}
	}
	if _, err := New(Kind(99)); err == nil {
		t.Error("expected error for unknown kind")
	}
}

func TestGemmMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 2))
	sizes := []struct{ m, n, k int }{
		{1, 1, 1}, {2, 3, 4}, {7, 5, 3}, {16, 16, 16}, {33, 129, 65}, {50, 1, 20}, {1, 40, 9},
	}
	for _, sz := range sizes {
		a := randMat(rng, sz.m*sz.k)
		b := randMat(rng, sz.k*sz.n)
		want := refGemm(sz.m, sz.n, sz.k, a, b)
		for _, kind := range Kinds() {
			be := MustNew(kind)
			c := make([]float32, sz.m*sz.n)
			be.Gemm(sz.m, sz.n, sz.k, a, b, c)
			if d := maxAbsDiff(c, want); d > 1e-3 {
				t.Errorf("%s gemm %dx%dx%d: max abs diff %g", be.Name(), sz.m, sz.n, sz.k, d)
			}
		}
	}
}

func TestGemmOverwritesC(t *testing.T) {
	a := []float32{1, 0, 0, 1}
	b := []float32{5, 6, 7, 8}
	for _, kind := range Kinds() {
		c := []float32{99, 99, 99, 99} // must be fully overwritten
		MustNew(kind).Gemm(2, 2, 2, a, b, c)
		want := []float32{5, 6, 7, 8}
		for i := range want {
			if c[i] != want[i] {
				t.Errorf("%s: c[%d] = %v, want %v", kind, i, c[i], want[i])
			}
		}
	}
}

func TestGemmZeroK(t *testing.T) {
	for _, kind := range Kinds() {
		c := []float32{1, 2}
		MustNew(kind).Gemm(1, 2, 0, nil, nil, c)
		if c[0] != 0 || c[1] != 0 {
			t.Errorf("%s: k=0 must zero c, got %v", kind, c)
		}
	}
}

func TestGemmShortBufferPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for short buffer")
		}
	}()
	MustNew(Naive).Gemm(2, 2, 2, make([]float32, 4), make([]float32, 4), make([]float32, 3))
}

// TestQuickBackendsAgree property-tests that the three diversity-bearing
// backends compute the same product (within float tolerance) on random
// shapes — the functional-equivalence invariant MVX variants rely on.
func TestQuickBackendsAgree(t *testing.T) {
	f := func(seed uint64, mm, nn, kk uint8) bool {
		m, n, k := int(mm%40)+1, int(nn%40)+1, int(kk%40)+1
		rng := rand.New(rand.NewPCG(seed, 3))
		a := randMat(rng, m*k)
		b := randMat(rng, k*n)
		want := refGemm(m, n, k, a, b)
		for _, kind := range Kinds() {
			c := make([]float32, m*n)
			MustNew(kind).Gemm(m, n, k, a, b, c)
			if maxAbsDiff(c, want) > 1e-3 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
