package blas

import (
	"fmt"
	"math/rand/v2"
	"testing"
)

// BenchmarkGemm compares the three diversity-bearing backends — the
// per-kernel cost axis behind variant execution-time differences (§6.4).
func BenchmarkGemm(b *testing.B) {
	rng := rand.New(rand.NewPCG(1, 1))
	for _, n := range []int{32, 128} {
		a := randMat(rng, n*n)
		bm := randMat(rng, n*n)
		c := make([]float32, n*n)
		for _, kind := range Kinds() {
			be := MustNew(kind)
			b.Run(fmt.Sprintf("%s/%d", be.Name(), n), func(b *testing.B) {
				b.SetBytes(int64(4 * n * n))
				for i := 0; i < b.N; i++ {
					be.Gemm(n, n, n, a, bm, c)
				}
			})
		}
	}
}
