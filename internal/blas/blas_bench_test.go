package blas

import (
	"fmt"
	"math/rand/v2"
	"testing"

	"repro/internal/workpool"
)

// BenchmarkGemm compares the three diversity-bearing backends — the
// per-kernel cost axis behind variant execution-time differences (§6.4).
func BenchmarkGemm(b *testing.B) {
	rng := rand.New(rand.NewPCG(1, 1))
	for _, n := range []int{32, 128, 256, 384} {
		a := randMat(rng, n*n)
		bm := randMat(rng, n*n)
		c := make([]float32, n*n)
		for _, kind := range Kinds() {
			be := MustNew(kind)
			b.Run(fmt.Sprintf("%s/%d", be.Name(), n), func(b *testing.B) {
				b.SetBytes(int64(4 * n * n))
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					be.Gemm(n, n, n, a, bm, c)
				}
			})
		}
	}
}

// BenchmarkGemmParallel measures row-panel parallel execution through a
// persistent worker pool at the Context.Parallelism levels variants use.
// On a single-core host the parallel levels measure dispatch overhead only;
// panel scaling needs real cores.
func BenchmarkGemmParallel(b *testing.B) {
	rng := rand.New(rand.NewPCG(2, 1))
	const n = 256
	a := randMat(rng, n*n)
	bm := randMat(rng, n*n)
	c := make([]float32, n*n)
	for _, par := range []int{1, 4} {
		pool := workpool.New(par)
		var r Ranger
		if pool != nil {
			r = pool
		}
		for _, kind := range Kinds() {
			be := MustNew(kind)
			b.Run(fmt.Sprintf("%s/%d/p%d", be.Name(), n, par), func(b *testing.B) {
				b.SetBytes(int64(4 * n * n))
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					ParallelGemm(be, r, n, n, n, a, bm, c)
				}
			})
		}
		pool.Close()
	}
}
