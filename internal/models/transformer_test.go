package models

import (
	"math"
	"math/rand/v2"
	"testing"

	"repro/internal/infer"
	"repro/internal/ops"
	"repro/internal/tensor"
)

func tinyInput(t *testing.T, seed uint64) *tensor.Tensor {
	t.Helper()
	g := MustBuild("tinyformer", Config{})
	shape := g.Inputs[0].Shape
	rng := rand.New(rand.NewPCG(seed, 1))
	in := tensor.New(shape...)
	for i := range in.Data() {
		in.Data()[i] = float32(rng.NormFloat64())
	}
	return in
}

func TestTinyFormerForward(t *testing.T) {
	g := MustBuild("tinyformer", Config{})
	if _, err := ops.InferShapes(g); err != nil {
		t.Fatal(err)
	}
	st := g.Stats()
	for _, op := range []string{"BatchMatMul", "LayerNorm", "Gelu", "Transpose", "Softmax"} {
		if st.OpCounts[op] == 0 {
			t.Errorf("tinyformer has no %s operators", op)
		}
	}
	in := tinyInput(t, 1)
	ex, err := infer.New(g, infer.Config{})
	if err != nil {
		t.Fatal(err)
	}
	out, err := ex.Run(map[string]*tensor.Tensor{"tokens": in})
	if err != nil {
		t.Fatal(err)
	}
	logits := out["logits"]
	if logits == nil || logits.HasNaN() {
		t.Fatalf("bad logits %v", logits)
	}
	var sum float64
	for _, v := range logits.Data() {
		sum += float64(v)
	}
	if math.Abs(sum-1) > 1e-4 {
		t.Fatalf("softmax output sums to %v", sum)
	}
}

func TestTinyFormerRuntimeEquivalence(t *testing.T) {
	g := MustBuild("tinyformer", Config{})
	in := map[string]*tensor.Tensor{"tokens": tinyInput(t, 2)}
	ref, err := infer.New(g, infer.Config{})
	if err != nil {
		t.Fatal(err)
	}
	want, err := ref.Run(in)
	if err != nil {
		t.Fatal(err)
	}
	for _, cfg := range []infer.Config{
		{Runtime: infer.Planned},
		{Runtime: infer.Planned, BLAS: 3 /* packed */, OptLevel: 1},
		{BLAS: 2 /* blocked */},
	} {
		ex, err := infer.New(g, cfg)
		if err != nil {
			t.Fatalf("%s: %v", cfg, err)
		}
		got, err := ex.Run(in)
		if err != nil {
			t.Fatalf("%s: %v", cfg, err)
		}
		for i := range want["logits"].Data() {
			d := math.Abs(float64(got["logits"].Data()[i] - want["logits"].Data()[i]))
			if d > 1e-4 {
				t.Fatalf("%s deviates by %g", cfg, d)
			}
		}
	}
}

func TestTinyFormerDepthScaling(t *testing.T) {
	shallow := MustBuild("tinyformer", Config{Depth: 0.5})
	deep := MustBuild("tinyformer", Config{Depth: 1})
	if len(deep.Nodes) <= len(shallow.Nodes) {
		t.Fatalf("depth scaling broken: %d vs %d nodes", len(deep.Nodes), len(shallow.Nodes))
	}
}
