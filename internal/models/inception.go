package models

import "repro/internal/graph"

// GoogleNet builds the GoogLeNet (Inception v1) replica: a convolutional stem
// followed by nine inception modules (3a–5b) with max-pool reductions.
func GoogleNet(cfg Config) *graph.Graph {
	cfg = cfg.withDefaults()
	b := newBuilder("googlenet", cfg)
	in := b.input("image", cfg.BatchSize, 3, cfg.InputSize, cfg.InputSize)

	x := b.convBNAct(in, 3, cfg.ch(64), 7, 2, 3, 1, "relu")
	x = b.maxPool(x, 3, 2, 1)
	x = b.convBNAct(x, cfg.ch(64), cfg.ch(64), 1, 1, 0, 1, "relu")
	x = b.convBNAct(x, cfg.ch(64), cfg.ch(192), 3, 1, 1, 1, "relu")
	x = b.maxPool(x, 3, 2, 1)
	cin := cfg.ch(192)

	// Inception module channel plans: {1x1, 3x3red, 3x3, 5x5red, 5x5, poolproj}.
	plans := [][6]int{
		{64, 96, 128, 16, 32, 32},     // 3a
		{128, 128, 192, 32, 96, 64},   // 3b
		{192, 96, 208, 16, 48, 64},    // 4a
		{160, 112, 224, 24, 64, 64},   // 4b
		{128, 128, 256, 24, 64, 64},   // 4c
		{112, 144, 288, 32, 64, 64},   // 4d
		{256, 160, 320, 32, 128, 128}, // 4e
		{256, 160, 320, 32, 128, 128}, // 5a
		{384, 192, 384, 48, 128, 128}, // 5b
	}
	for i, p := range plans {
		x, cin = b.inceptionV1(x, cin, cfg, p)
		if i == 1 || i == 6 { // pool after 3b and 4e
			x = b.maxPool(x, 3, 2, 1)
		}
	}
	b.classifier(x, cin, cfg.Classes)
	return b.g
}

// inceptionV1 adds one GoogLeNet inception module and returns the output and
// its channel count.
func (b *builder) inceptionV1(in string, cin int, cfg Config, plan [6]int) (string, int) {
	c1 := cfg.ch(plan[0])
	c3r, c3 := cfg.ch(plan[1]), cfg.ch(plan[2])
	c5r, c5 := cfg.ch(plan[3]), cfg.ch(plan[4])
	cp := cfg.ch(plan[5])

	b1 := b.convBNAct(in, cin, c1, 1, 1, 0, 1, "relu")
	b2 := b.convBNAct(in, cin, c3r, 1, 1, 0, 1, "relu")
	b2 = b.convBNAct(b2, c3r, c3, 3, 1, 1, 1, "relu")
	b3 := b.convBNAct(in, cin, c5r, 1, 1, 0, 1, "relu")
	b3 = b.convBNAct(b3, c5r, c5, 5, 1, 2, 1, "relu")
	b4 := b.maxPool(in, 3, 1, 1)
	b4 = b.convBNAct(b4, cin, cp, 1, 1, 0, 1, "relu")
	return b.concat(b1, b2, b3, b4), c1 + c3 + c5 + cp
}

// InceptionV3 builds the Inception V3 replica: stem, three Inception-A
// modules, a grid reduction, four Inception-B modules with factorized 7×1/1×7
// convolutions, another reduction, and two Inception-C modules.
func InceptionV3(cfg Config) *graph.Graph {
	cfg = cfg.withDefaults()
	b := newBuilder("inceptionv3", cfg)
	in := b.input("image", cfg.BatchSize, 3, cfg.InputSize, cfg.InputSize)

	x := b.convBNAct(in, 3, cfg.ch(32), 3, 2, 1, 1, "relu")
	x = b.convBNAct(x, cfg.ch(32), cfg.ch(64), 3, 1, 1, 1, "relu")
	x = b.maxPool(x, 3, 2, 1)
	x = b.convBNAct(x, cfg.ch(64), cfg.ch(192), 3, 1, 1, 1, "relu")
	cin := cfg.ch(192)

	for i := 0; i < 3; i++ {
		x, cin = b.inceptionA(x, cin, cfg)
	}
	x, cin = b.reductionGrid(x, cin, cfg)
	for i := 0; i < 4; i++ {
		x, cin = b.inceptionB(x, cin, cfg)
	}
	x, cin = b.reductionGrid(x, cin, cfg)
	for i := 0; i < 2; i++ {
		x, cin = b.inceptionC(x, cin, cfg)
	}
	b.classifier(x, cin, cfg.Classes)
	return b.g
}

func (b *builder) inceptionA(in string, cin int, cfg Config) (string, int) {
	c64, c48, c96 := cfg.ch(64), cfg.ch(48), cfg.ch(96)
	b1 := b.convBNAct(in, cin, c64, 1, 1, 0, 1, "relu")
	b2 := b.convBNAct(in, cin, c48, 1, 1, 0, 1, "relu")
	b2 = b.convBNAct(b2, c48, c64, 5, 1, 2, 1, "relu")
	b3 := b.convBNAct(in, cin, c64, 1, 1, 0, 1, "relu")
	b3 = b.convBNAct(b3, c64, c96, 3, 1, 1, 1, "relu")
	b3 = b.convBNAct(b3, c96, c96, 3, 1, 1, 1, "relu")
	b4 := b.avgPool(in, 3, 1, 1)
	b4 = b.convBNAct(b4, cin, c64, 1, 1, 0, 1, "relu")
	return b.concat(b1, b2, b3, b4), c64 + c64 + c96 + c64
}

// inceptionB uses factorized 1×7 and 7×1 convolutions (implemented as
// rectangular kernels with asymmetric padding).
func (b *builder) inceptionB(in string, cin int, cfg Config) (string, int) {
	c192, c128 := cfg.ch(192), cfg.ch(128)
	b1 := b.convBNAct(in, cin, c192, 1, 1, 0, 1, "relu")
	b2 := b.convBNAct(in, cin, c128, 1, 1, 0, 1, "relu")
	b2 = b.convRect(b2, c128, c128, 1, 7, 1)
	b2 = b.bn(b2, c128)
	b2 = b.relu(b2)
	b2 = b.convRect(b2, c128, c192, 7, 1, 1)
	b2 = b.bn(b2, c192)
	b2 = b.relu(b2)
	b3 := b.avgPool(in, 3, 1, 1)
	b3 = b.convBNAct(b3, cin, c192, 1, 1, 0, 1, "relu")
	return b.concat(b1, b2, b3), c192 + c192 + c192
}

func (b *builder) inceptionC(in string, cin int, cfg Config) (string, int) {
	c320, c384 := cfg.ch(320), cfg.ch(384)
	b1 := b.convBNAct(in, cin, c320, 1, 1, 0, 1, "relu")
	b2 := b.convBNAct(in, cin, c384, 1, 1, 0, 1, "relu")
	b2a := b.convRect(b2, c384, c384, 1, 3, 1)
	b2a = b.bn(b2a, c384)
	b2a = b.relu(b2a)
	b2b := b.convRect(b2, c384, c384, 3, 1, 1)
	b2b = b.bn(b2b, c384)
	b2b = b.relu(b2b)
	b3 := b.avgPool(in, 3, 1, 1)
	b3 = b.convBNAct(b3, cin, c320, 1, 1, 0, 1, "relu")
	return b.concat(b1, b2a, b2b, b3), c320 + c384 + c384 + c320
}

// reductionGrid halves the spatial grid with a stride-2 conv branch and a
// pooling branch.
func (b *builder) reductionGrid(in string, cin int, cfg Config) (string, int) {
	c := cfg.ch(192)
	b1 := b.convBNAct(in, cin, c, 3, 2, 1, 1, "relu")
	b2 := b.maxPool(in, 3, 2, 1)
	return b.concat(b1, b2), c + cin
}
