package models

import (
	"testing"

	"repro/internal/infer"
	"repro/internal/ops"
	"repro/internal/tensor"
)

func TestSmokeAllModels(t *testing.T) {
	for _, name := range Names() {
		g := MustBuild(name, Config{Depth: 0.2})
		if _, err := ops.InferShapes(g); err != nil {
			t.Fatalf("%s shapes: %v", name, err)
		}
		ex, err := infer.New(g, infer.Config{})
		if err != nil {
			t.Fatalf("%s exec: %v", name, err)
		}
		in := tensor.New(g.Inputs[0].Shape...)
		for i := range in.Data() {
			in.Data()[i] = float32(i%17) / 17
		}
		out, err := ex.Run(map[string]*tensor.Tensor{g.Inputs[0].Name: in})
		if err != nil {
			t.Fatalf("%s run: %v", name, err)
		}
		logits := out["logits"]
		if logits == nil || logits.HasNaN() {
			t.Fatalf("%s bad logits %v", name, logits)
		}
		st := g.Stats()
		t.Logf("%s: nodes=%d params=%d out=%v", name, st.Nodes, st.Parameters, logits.Shape())
	}
}
