package models

import (
	"math"
	"math/rand/v2"
	"reflect"
	"testing"

	"repro/internal/infer"
	"repro/internal/ops"
	"repro/internal/tensor"
)

func TestNamesMatchPaper(t *testing.T) {
	want := []string{
		"efficientnet-b7", "googlenet", "inceptionv3", "mnasnet",
		"mobilenetv3", "resnet-152", "resnet-50",
	}
	if got := PaperNames(); !reflect.DeepEqual(got, want) {
		t.Fatalf("PaperNames() = %v, want the paper's seven models %v", got, want)
	}
	all := map[string]bool{}
	for _, n := range Names() {
		all[n] = true
	}
	for _, n := range append(want, "tinyformer") {
		if !all[n] {
			t.Fatalf("Names() missing %q (have %v)", n, Names())
		}
	}
}

func TestBuildUnknown(t *testing.T) {
	if _, err := Build("vgg", Config{}); err == nil {
		t.Fatal("expected error for unknown model")
	}
}

func TestDeterministicWeights(t *testing.T) {
	// Identical-variant MVX requires bitwise-identical model construction
	// across processes for a given seed.
	a := MustBuild("resnet-50", Config{Seed: 7})
	b := MustBuild("resnet-50", Config{Seed: 7})
	if len(a.Nodes) != len(b.Nodes) {
		t.Fatal("node counts differ")
	}
	for name, ta := range a.Initializers {
		tb, ok := b.Initializers[name]
		if !ok {
			t.Fatalf("initializer %q missing in second build", name)
		}
		if !reflect.DeepEqual(ta.Data(), tb.Data()) {
			t.Fatalf("initializer %q differs between builds", name)
		}
	}
	c := MustBuild("resnet-50", Config{Seed: 8})
	same := true
	for name, ta := range a.Initializers {
		if tc, ok := c.Initializers[name]; ok && !reflect.DeepEqual(ta.Data(), tc.Data()) {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical weights")
	}
}

func TestScaleChangesWidth(t *testing.T) {
	small := MustBuild("resnet-50", Config{Scale: 0.25})
	big := MustBuild("resnet-50", Config{Scale: 0.5})
	if big.Stats().Parameters <= small.Stats().Parameters {
		t.Fatalf("scale 0.5 params %d <= scale 0.25 params %d",
			big.Stats().Parameters, small.Stats().Parameters)
	}
}

func TestDepthChangesNodeCount(t *testing.T) {
	shallow := MustBuild("resnet-152", Config{Depth: 0.2})
	deep := MustBuild("resnet-152", Config{Depth: 1})
	if len(deep.Nodes) <= len(shallow.Nodes) {
		t.Fatalf("depth 1 nodes %d <= depth 0.2 nodes %d", len(deep.Nodes), len(shallow.Nodes))
	}
}

func TestInputSizePropagates(t *testing.T) {
	g := MustBuild("mobilenetv3", Config{InputSize: 64})
	if g.Inputs[0].Shape[2] != 64 || g.Inputs[0].Shape[3] != 64 {
		t.Fatalf("input shape = %v", g.Inputs[0].Shape)
	}
	if _, err := ops.InferShapes(g); err != nil {
		t.Fatalf("shapes at 64px: %v", err)
	}
}

func TestClassesPropagate(t *testing.T) {
	g := MustBuild("mnasnet", Config{Classes: 42})
	shapes, err := ops.InferShapes(g)
	if err != nil {
		t.Fatal(err)
	}
	if got := shapes["logits"]; got[len(got)-1] != 42 {
		t.Fatalf("logits shape = %v, want trailing 42", got)
	}
}

func TestResNet152DeeperThan50(t *testing.T) {
	r50 := MustBuild("resnet-50", Config{})
	r152 := MustBuild("resnet-152", Config{})
	if len(r152.Nodes) <= len(r50.Nodes) {
		t.Fatalf("resnet-152 nodes %d <= resnet-50 nodes %d", len(r152.Nodes), len(r50.Nodes))
	}
}

func TestArchitectureSignatures(t *testing.T) {
	// Each replica must carry its family's signature operators.
	cases := []struct {
		model string
		op    string
	}{
		{"mobilenetv3", "HardSwish"},
		{"mobilenetv3", "DepthwiseConv"},
		{"efficientnet-b7", "Sigmoid"}, // swish gates + SE
		{"googlenet", "Concat"},        // inception branches
		{"inceptionv3", "Pad"},         // factorized asymmetric kernels
		{"resnet-50", "Add"},           // residual connections
		{"mnasnet", "DepthwiseConv"},
	}
	for _, c := range cases {
		g := MustBuild(c.model, Config{Depth: 0.34})
		if g.Stats().OpCounts[c.op] == 0 {
			t.Errorf("%s has no %s operators", c.model, c.op)
		}
	}
}

func TestBatchSizeEquivalence(t *testing.T) {
	// A batch-2 inference must equal two stacked batch-1 inferences.
	single := MustBuild("mnasnet", Config{BatchSize: 1})
	double := MustBuild("mnasnet", Config{BatchSize: 2})
	if double.Inputs[0].Shape[0] != 2 {
		t.Fatalf("batch dim = %d", double.Inputs[0].Shape[0])
	}
	ex1, err := infer.New(single, infer.Config{})
	if err != nil {
		t.Fatal(err)
	}
	ex2, err := infer.New(double, infer.Config{})
	if err != nil {
		t.Fatal(err)
	}
	mk := func(seed uint64) *tensor.Tensor {
		rng := rand.New(rand.NewPCG(seed, 5))
		in := tensor.New(1, 3, 32, 32)
		for i := range in.Data() {
			in.Data()[i] = float32(rng.NormFloat64())
		}
		return in
	}
	a, b := mk(1), mk(2)
	stacked := tensor.New(2, 3, 32, 32)
	copy(stacked.Data()[:a.Size()], a.Data())
	copy(stacked.Data()[a.Size():], b.Data())

	outA, err := ex1.Run(map[string]*tensor.Tensor{"image": a})
	if err != nil {
		t.Fatal(err)
	}
	outB, err := ex1.Run(map[string]*tensor.Tensor{"image": b})
	if err != nil {
		t.Fatal(err)
	}
	out2, err := ex2.Run(map[string]*tensor.Tensor{"image": stacked})
	if err != nil {
		t.Fatal(err)
	}
	logits := out2["logits"]
	n := outA["logits"].Size()
	for i := 0; i < n; i++ {
		if d := math.Abs(float64(logits.Data()[i] - outA["logits"].Data()[i])); d > 1e-5 {
			t.Fatalf("batch row 0 deviates by %g at %d", d, i)
		}
		if d := math.Abs(float64(logits.Data()[n+i] - outB["logits"].Data()[i])); d > 1e-5 {
			t.Fatalf("batch row 1 deviates by %g at %d", d, i)
		}
	}
}
