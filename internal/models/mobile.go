package models

import "repro/internal/graph"

// mbConvSpec describes one inverted-residual (MBConv / bneck) block.
type mbConvSpec struct {
	kernel  int     // depthwise kernel (3 or 5)
	expand  float64 // expansion ratio over input channels
	out     int     // base output channels (pre-scale)
	stride  int
	se      bool   // squeeze-and-excitation
	act     string // "relu", "relu6", "hswish", "swish"
	seGate  string // gate op for SE (HardSigmoid for v3, Sigmoid for EfficientNet)
	repeats int
}

// mbConv adds one inverted-residual block and returns output tensor + channels.
func (b *builder) mbConv(in string, cin int, cfg Config, s mbConvSpec) (string, int) {
	cout := cfg.ch(s.out)
	exp := int(float64(cin) * s.expand)
	if exp < 1 {
		exp = 1
	}
	x := in
	if exp != cin {
		x = b.convBNAct(x, cin, exp, 1, 1, 0, 1, s.act)
	}
	// Depthwise.
	dw := b.name("dwconv")
	w := b.weight(s.kernel*s.kernel, exp, 1, s.kernel, s.kernel)
	bias := newZeroBias(b, dw, exp)
	out := dw + "_out"
	b.g.AddNode(dw, graph.OpDepthwiseConv, []string{x, dw + "_w", bias}, []string{out}, map[string]graph.Attr{
		"stride": graph.IntAttr(s.stride),
		"pad":    graph.IntAttr((s.kernel - 1) / 2),
	})
	b.g.AddInitializer(dw+"_w", w)
	x = b.bn(out, exp)
	switch s.act {
	case "relu":
		x = b.relu(x)
	case "relu6":
		x = b.relu6(x)
	case "hswish":
		x = b.unary(graph.OpHardSwish, x)
	case "swish":
		x = b.swish(x)
	}
	if s.se {
		gate := s.seGate
		if gate == "" {
			gate = graph.OpHardSigmoid
		}
		x = b.se(x, exp, exp/4, gate)
	}
	// Project.
	x = b.conv(x, exp, cout, 1, 1, 0, 1)
	x = b.bn(x, cout)
	if s.stride == 1 && cin == cout {
		x = b.add(x, in)
	}
	return x, cout
}

func newZeroBias(b *builder, prefix string, c int) string {
	name := prefix + "_bz"
	t := b.weight(c, c) // small random bias adds benign variety
	t.Scale(0.01)
	b.g.AddInitializer(name, t)
	return name
}

func (b *builder) mbStage(x string, cin int, cfg Config, specs []mbConvSpec) (string, int) {
	for _, s := range specs {
		n := cfg.reps(s.repeats)
		for i := 0; i < n; i++ {
			ss := s
			if i > 0 {
				ss.stride = 1
			}
			x, cin = b.mbConv(x, cin, cfg, ss)
		}
	}
	return x, cin
}

// MobileNetV3 builds the MobileNet V3 (large) replica: bneck blocks with
// depthwise convolutions, squeeze-and-excitation and hard-swish activations.
func MobileNetV3(cfg Config) *graph.Graph {
	cfg = cfg.withDefaults()
	b := newBuilder("mobilenetv3", cfg)
	in := b.input("image", cfg.BatchSize, 3, cfg.InputSize, cfg.InputSize)

	stem := cfg.ch(16)
	x := b.convBNAct(in, 3, stem, 3, 2, 1, 1, "hswish")
	cin := stem
	specs := []mbConvSpec{
		{kernel: 3, expand: 1, out: 16, stride: 1, act: "relu", repeats: 1},
		{kernel: 3, expand: 4, out: 24, stride: 2, act: "relu", repeats: 1},
		{kernel: 3, expand: 3, out: 24, stride: 1, act: "relu", repeats: 1},
		{kernel: 5, expand: 3, out: 40, stride: 2, se: true, act: "relu", repeats: 3},
		{kernel: 3, expand: 6, out: 80, stride: 2, act: "hswish", repeats: 1},
		{kernel: 3, expand: 2.5, out: 80, stride: 1, act: "hswish", repeats: 3},
		{kernel: 3, expand: 6, out: 112, stride: 1, se: true, act: "hswish", repeats: 2},
		{kernel: 5, expand: 6, out: 160, stride: 2, se: true, act: "hswish", repeats: 3},
	}
	x, cin = b.mbStage(x, cin, cfg, specs)
	head := cfg.ch(960)
	x = b.convBNAct(x, cin, head, 1, 1, 0, 1, "hswish")
	b.classifier(x, head, cfg.Classes)
	return b.g
}

// MnasNet builds the MnasNet-B1 replica: MBConv blocks found by NAS, without
// SE in most stages.
func MnasNet(cfg Config) *graph.Graph {
	cfg = cfg.withDefaults()
	b := newBuilder("mnasnet", cfg)
	in := b.input("image", cfg.BatchSize, 3, cfg.InputSize, cfg.InputSize)

	stem := cfg.ch(32)
	x := b.convBNAct(in, 3, stem, 3, 2, 1, 1, "relu")
	// SepConv stem block.
	cin := stem
	x, cin = b.mbConv(x, cin, cfg, mbConvSpec{kernel: 3, expand: 1, out: 16, stride: 1, act: "relu"})
	specs := []mbConvSpec{
		{kernel: 3, expand: 3, out: 24, stride: 2, act: "relu", repeats: 3},
		{kernel: 5, expand: 3, out: 40, stride: 2, act: "relu", repeats: 3},
		{kernel: 5, expand: 6, out: 80, stride: 2, act: "relu", repeats: 3},
		{kernel: 3, expand: 6, out: 96, stride: 1, act: "relu", repeats: 2},
		{kernel: 5, expand: 6, out: 192, stride: 2, act: "relu", repeats: 4},
		{kernel: 3, expand: 6, out: 320, stride: 1, act: "relu", repeats: 1},
	}
	x, cin = b.mbStage(x, cin, cfg, specs)
	head := cfg.ch(1280)
	x = b.convBNAct(x, cin, head, 1, 1, 0, 1, "relu")
	b.classifier(x, head, cfg.Classes)
	return b.g
}

// EfficientNetB7 builds the EfficientNet-b7 replica: deep MBConv stages with
// squeeze-and-excitation and SiLU (swish) activations. Stage depths follow the
// b7 compound scaling; cfg.Depth scales them down for laptop-scale runs.
func EfficientNetB7(cfg Config) *graph.Graph {
	cfg = cfg.withDefaults()
	b := newBuilder("efficientnetb7", cfg)
	in := b.input("image", cfg.BatchSize, 3, cfg.InputSize, cfg.InputSize)

	stem := cfg.ch(64)
	x := b.convBNAct(in, 3, stem, 3, 2, 1, 1, "swish")
	cin := stem
	specs := []mbConvSpec{
		{kernel: 3, expand: 1, out: 32, stride: 1, se: true, act: "swish", seGate: graph.OpSigmoid, repeats: 4},
		{kernel: 3, expand: 6, out: 48, stride: 2, se: true, act: "swish", seGate: graph.OpSigmoid, repeats: 7},
		{kernel: 5, expand: 6, out: 80, stride: 2, se: true, act: "swish", seGate: graph.OpSigmoid, repeats: 7},
		{kernel: 3, expand: 6, out: 160, stride: 2, se: true, act: "swish", seGate: graph.OpSigmoid, repeats: 10},
		{kernel: 5, expand: 6, out: 224, stride: 1, se: true, act: "swish", seGate: graph.OpSigmoid, repeats: 10},
		{kernel: 5, expand: 6, out: 384, stride: 2, se: true, act: "swish", seGate: graph.OpSigmoid, repeats: 13},
		{kernel: 3, expand: 6, out: 640, stride: 1, se: true, act: "swish", seGate: graph.OpSigmoid, repeats: 4},
	}
	x, cin = b.mbStage(x, cin, cfg, specs)
	head := cfg.ch(2560)
	x = b.convBNAct(x, cin, head, 1, 1, 0, 1, "swish")
	b.classifier(x, head, cfg.Classes)
	return b.g
}
