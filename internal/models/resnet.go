package models

import "repro/internal/graph"

// resNet builds a ResNet with bottleneck blocks (He et al.), the architecture
// family of the paper's ResNet-50 and ResNet-152 workloads. stageBlocks gives
// the block count per stage (ResNet-50: 3,4,6,3; ResNet-152: 3,8,36,3).
func resNet(name string, stageBlocks [4]int, cfg Config) *graph.Graph {
	cfg = cfg.withDefaults()
	b := newBuilder(name, cfg)
	in := b.input("image", cfg.BatchSize, 3, cfg.InputSize, cfg.InputSize)

	stem := cfg.ch(64)
	x := b.convBNAct(in, 3, stem, 7, 2, 3, 1, "relu")
	x = b.maxPool(x, 3, 2, 1)

	widths := [4]int{cfg.ch(64), cfg.ch(128), cfg.ch(256), cfg.ch(512)}
	const expansion = 4
	cin := stem
	for s := 0; s < 4; s++ {
		blocks := cfg.reps(stageBlocks[s])
		for i := 0; i < blocks; i++ {
			stride := 1
			if s > 0 && i == 0 {
				stride = 2
			}
			x, cin = b.bottleneck(x, cin, widths[s], expansion, stride)
		}
	}
	b.classifier(x, cin, cfg.Classes)
	return b.g
}

// bottleneck adds a ResNet bottleneck block (1x1 reduce → 3x3 → 1x1 expand,
// with projection shortcut when shape changes) and returns the output tensor
// and its channel count.
func (b *builder) bottleneck(in string, cin, width, expansion, stride int) (string, int) {
	cout := width * expansion
	x := b.convBNAct(in, cin, width, 1, 1, 0, 1, "relu")
	x = b.convBNAct(x, width, width, 3, stride, 1, 1, "relu")
	x = b.conv(x, width, cout, 1, 1, 0, 1)
	x = b.bn(x, cout)

	shortcut := in
	if cin != cout || stride != 1 {
		shortcut = b.conv(in, cin, cout, 1, stride, 0, 1)
		shortcut = b.bn(shortcut, cout)
	}
	x = b.add(x, shortcut)
	x = b.relu(x)
	return x, cout
}

// ResNet50 builds the ResNet-50 replica.
func ResNet50(cfg Config) *graph.Graph {
	return resNet("resnet50", [4]int{3, 4, 6, 3}, cfg)
}

// ResNet152 builds the ResNet-152 replica.
func ResNet152(cfg Config) *graph.Graph {
	return resNet("resnet152", [4]int{3, 8, 36, 3}, cfg)
}
