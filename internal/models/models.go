package models

import (
	"fmt"
	"sort"

	"repro/internal/graph"
)

// BuildFunc constructs a model graph from a configuration.
type BuildFunc func(Config) *graph.Graph

// zoo maps model names to their builders: the paper's seven evaluation
// workloads plus the §7.4 foundation-model extension.
var zoo = map[string]BuildFunc{
	"efficientnet-b7": EfficientNetB7,
	"googlenet":       GoogleNet,
	"inceptionv3":     InceptionV3,
	"mnasnet":         MnasNet,
	"mobilenetv3":     MobileNetV3,
	"resnet-152":      ResNet152,
	"resnet-50":       ResNet50,
	"tinyformer":      TinyFormer,
}

// PaperNames lists the paper's seven evaluation workloads (§6.1), the
// default set for the figure benchmarks.
func PaperNames() []string {
	return []string{
		"efficientnet-b7", "googlenet", "inceptionv3", "mnasnet",
		"mobilenetv3", "resnet-152", "resnet-50",
	}
}

// Names lists the available model names in sorted order — the paper's seven
// evaluation workloads.
func Names() []string {
	out := make([]string, 0, len(zoo))
	for name := range zoo {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Build constructs the named model, validating the result.
func Build(name string, cfg Config) (*graph.Graph, error) {
	f, ok := zoo[name]
	if !ok {
		return nil, fmt.Errorf("models: unknown model %q (have %v)", name, Names())
	}
	g := f(cfg)
	if err := g.Validate(); err != nil {
		return nil, fmt.Errorf("models: %s: %w", name, err)
	}
	return g, nil
}

// MustBuild is Build that panics on error; for benchmarks and examples.
func MustBuild(name string, cfg Config) *graph.Graph {
	g, err := Build(name, cfg)
	if err != nil {
		panic(err)
	}
	return g
}
