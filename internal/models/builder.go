// Package models provides structurally faithful replicas of the seven DNNs
// the paper evaluates (§6.1): ResNet-50, ResNet-152, GoogleNet, Inception V3,
// MobileNet V3, MnasNet and EfficientNet-b7. Block types, depths and topology
// match the published architectures; channel widths, input resolution and
// stage depths are scalable so the same graphs run at laptop scale. Weights
// are deterministic (seeded He initialization) so identical-variant
// configurations are bitwise reproducible across processes — a requirement of
// the MVX monitor's consistency checking.
package models

import (
	"fmt"
	"math"
	"math/rand/v2"

	"repro/internal/graph"
	"repro/internal/tensor"
)

// Config controls model construction scale.
type Config struct {
	// InputSize is the square input resolution; 0 means 32 (paper: 224).
	InputSize int
	// Scale multiplies channel widths; 0 means 0.25 (paper: 1.0).
	Scale float64
	// Depth multiplies per-stage block counts; 0 means 1.0.
	Depth float64
	// Classes is the classifier width; 0 means 16 (paper: 1000).
	Classes int
	// Seed drives deterministic weight initialization; 0 means 1.
	Seed uint64
	// BatchSize sets the input batch dimension; 0 means 1 (the paper's
	// default). The transformer extension supports batch 1 only.
	BatchSize int
}

func (c Config) withDefaults() Config {
	if c.InputSize == 0 {
		c.InputSize = 32
	}
	if c.Scale == 0 {
		c.Scale = 0.25
	}
	if c.Depth == 0 {
		c.Depth = 1.0
	}
	if c.Classes == 0 {
		c.Classes = 16
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.BatchSize == 0 {
		c.BatchSize = 1
	}
	return c
}

// ch scales a channel count, keeping it positive and divisible by 4 where
// possible (SE blocks and groups need small divisors).
func (c Config) ch(base int) int {
	v := int(math.Round(float64(base) * c.Scale))
	if v < 4 {
		if v < 1 {
			v = 1
		}
		return v
	}
	return (v + 3) / 4 * 4
}

// reps scales a block repeat count.
func (c Config) reps(base int) int {
	v := int(math.Round(float64(base) * c.Depth))
	if v < 1 {
		v = 1
	}
	return v
}

// builder accumulates graph nodes with auto-generated names and seeded
// weights.
type builder struct {
	g   *graph.Graph
	rng *rand.Rand
	idx int
}

func newBuilder(name string, cfg Config) *builder {
	return &builder{
		g:   graph.New(name),
		rng: rand.New(rand.NewPCG(cfg.Seed, 0x6d76746565)), // "mvtee"
	}
}

func (b *builder) name(op string) string {
	b.idx++
	return fmt.Sprintf("%s_%d", op, b.idx)
}

// weight creates a He-normal initialized tensor with fan-in fan.
func (b *builder) weight(fan int, shape ...int) *tensor.Tensor {
	t := tensor.New(shape...)
	std := math.Sqrt(2 / float64(fan))
	d := t.Data()
	for i := range d {
		d[i] = float32(b.rng.NormFloat64() * std)
	}
	return t
}

func (b *builder) input(name string, shape ...int) string {
	b.g.Inputs = append(b.g.Inputs, graph.ValueInfo{Name: name, Shape: shape})
	return name
}

// conv adds Conv(+bias) and returns the output tensor name.
func (b *builder) conv(in string, cin, cout, k, stride, pad, group int) string {
	n := b.name("conv")
	w := b.weight(cin/group*k*k, cout, cin/group, k, k)
	bias := tensor.New(cout)
	b.g.AddInitializer(n+"_w", w)
	b.g.AddInitializer(n+"_b", bias)
	out := n + "_out"
	b.g.AddNode(n, graph.OpConv, []string{in, n + "_w", n + "_b"}, []string{out}, map[string]graph.Attr{
		"stride": graph.IntAttr(stride),
		"pad":    graph.IntAttr(pad),
		"group":  graph.IntAttr(group),
	})
	return out
}

// convRect adds a rectangular-kernel convolution (kh×kw) with explicit
// asymmetric padding via a preceding Pad node when needed.
func (b *builder) convRect(in string, cin, cout, kh, kw, stride int) string {
	padH, padW := (kh-1)/2, (kw-1)/2
	if padH != padW {
		p := b.name("pad")
		out := p + "_out"
		b.g.AddNode(p, graph.OpPad, []string{in}, []string{out}, map[string]graph.Attr{
			"pads": graph.IntsAttr(padH, padH, padW, padW),
		})
		in = out
		padH, padW = 0, 0
	}
	n := b.name("conv")
	w := b.weight(cin*kh*kw, cout, cin, kh, kw)
	bias := tensor.New(cout)
	b.g.AddInitializer(n+"_w", w)
	b.g.AddInitializer(n+"_b", bias)
	out := n + "_out"
	b.g.AddNode(n, graph.OpConv, []string{in, n + "_w", n + "_b"}, []string{out}, map[string]graph.Attr{
		"stride": graph.IntAttr(stride),
		"pad":    graph.IntAttr(padH),
		"group":  graph.IntAttr(1),
	})
	return out
}

// bn adds a BatchNorm with randomized (but benign) statistics.
func (b *builder) bn(in string, c int) string {
	n := b.name("bn")
	scale := tensor.New(c)
	bias := tensor.New(c)
	mean := tensor.New(c)
	variance := tensor.New(c)
	for i := 0; i < c; i++ {
		scale.Data()[i] = float32(0.8 + 0.4*b.rng.Float64())
		bias.Data()[i] = float32(0.2 * b.rng.NormFloat64())
		mean.Data()[i] = float32(0.1 * b.rng.NormFloat64())
		variance.Data()[i] = float32(0.5 + b.rng.Float64())
	}
	b.g.AddInitializer(n+"_s", scale)
	b.g.AddInitializer(n+"_b", bias)
	b.g.AddInitializer(n+"_m", mean)
	b.g.AddInitializer(n+"_v", variance)
	out := n + "_out"
	b.g.AddNode(n, graph.OpBatchNorm,
		[]string{in, n + "_s", n + "_b", n + "_m", n + "_v"}, []string{out},
		map[string]graph.Attr{"epsilon": graph.FloatAttr(1e-5)})
	return out
}

func (b *builder) unary(op, in string) string {
	n := b.name(opShort(op))
	out := n + "_out"
	b.g.AddNode(n, op, []string{in}, []string{out}, nil)
	return out
}

func opShort(op string) string {
	switch op {
	case graph.OpRelu:
		return "relu"
	case graph.OpRelu6:
		return "relu6"
	case graph.OpSigmoid:
		return "sig"
	case graph.OpHardSwish:
		return "hswish"
	case graph.OpHardSigmoid:
		return "hsig"
	case graph.OpSoftmax:
		return "softmax"
	case graph.OpFlatten:
		return "flat"
	case graph.OpGlobalAvgPool:
		return "gap"
	default:
		return "op"
	}
}

func (b *builder) relu(in string) string  { return b.unary(graph.OpRelu, in) }
func (b *builder) relu6(in string) string { return b.unary(graph.OpRelu6, in) }

// swish adds x*sigmoid(x) as explicit Sigmoid+Mul nodes (SiLU).
func (b *builder) swish(in string) string {
	s := b.unary(graph.OpSigmoid, in)
	n := b.name("swish")
	out := n + "_out"
	b.g.AddNode(n, graph.OpMul, []string{in, s}, []string{out}, nil)
	return out
}

func (b *builder) maxPool(in string, k, stride, pad int) string {
	n := b.name("maxpool")
	out := n + "_out"
	b.g.AddNode(n, graph.OpMaxPool, []string{in}, []string{out}, map[string]graph.Attr{
		"kernel": graph.IntAttr(k), "stride": graph.IntAttr(stride), "pad": graph.IntAttr(pad),
	})
	return out
}

func (b *builder) avgPool(in string, k, stride, pad int) string {
	n := b.name("avgpool")
	out := n + "_out"
	b.g.AddNode(n, graph.OpAvgPool, []string{in}, []string{out}, map[string]graph.Attr{
		"kernel": graph.IntAttr(k), "stride": graph.IntAttr(stride), "pad": graph.IntAttr(pad),
	})
	return out
}

func (b *builder) gap(in string) string { return b.unary(graph.OpGlobalAvgPool, in) }

func (b *builder) add(ins ...string) string {
	n := b.name("add")
	out := n + "_out"
	b.g.AddNode(n, graph.OpAdd, ins, []string{out}, nil)
	return out
}

func (b *builder) mul(a, c string) string {
	n := b.name("mul")
	out := n + "_out"
	b.g.AddNode(n, graph.OpMul, []string{a, c}, []string{out}, nil)
	return out
}

func (b *builder) concat(ins ...string) string {
	n := b.name("concat")
	out := n + "_out"
	b.g.AddNode(n, graph.OpConcat, ins, []string{out}, map[string]graph.Attr{"axis": graph.IntAttr(1)})
	return out
}

// classifier adds GlobalAvgPool → Flatten → Gemm → Softmax and marks the
// result as the graph output named "logits".
func (b *builder) classifier(in string, cin, classes int) {
	x := b.gap(in)
	x = b.unary(graph.OpFlatten, x)
	n := b.name("fc")
	w := b.weight(cin, cin, classes)
	bias := tensor.New(classes)
	b.g.AddInitializer(n+"_w", w)
	b.g.AddInitializer(n+"_b", bias)
	b.g.AddNode(n, graph.OpGemm, []string{x, n + "_w", n + "_b"}, []string{n + "_out"}, nil)
	sm := b.name("softmax")
	b.g.AddNode(sm, graph.OpSoftmax, []string{n + "_out"}, []string{"logits"}, nil)
	b.g.Outputs = []string{"logits"}
}

// convBNAct is the ubiquitous Conv→BN→activation trio. act may be "" (none),
// "relu", "relu6", "hswish" or "swish".
func (b *builder) convBNAct(in string, cin, cout, k, stride, pad, group int, act string) string {
	x := b.conv(in, cin, cout, k, stride, pad, group)
	x = b.bn(x, cout)
	switch act {
	case "relu":
		x = b.relu(x)
	case "relu6":
		x = b.relu6(x)
	case "hswish":
		x = b.unary(graph.OpHardSwish, x)
	case "swish":
		x = b.swish(x)
	case "":
	default:
		panic("models: unknown activation " + act)
	}
	return x
}

// se adds a squeeze-and-excitation block on c channels and returns the
// rescaled tensor.
func (b *builder) se(in string, c, reduced int, gateOp string) string {
	if reduced < 1 {
		reduced = 1
	}
	s := b.gap(in)
	s = b.conv(s, c, reduced, 1, 1, 0, 1)
	s = b.relu(s)
	s = b.conv(s, reduced, c, 1, 1, 0, 1)
	s = b.unary(gateOp, s)
	return b.mul(in, s)
}
