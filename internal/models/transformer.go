package models

import (
	"math"

	"repro/internal/graph"
)

// TinyFormer is the §7.4 foundation-model extension: a pre-norm transformer
// encoder (multi-head self-attention + GELU feed-forward blocks with
// residual connections and LayerNorm) over pre-embedded token vectors,
// classified by mean pooling. Structure follows BERT/GPT-style encoders at
// laptop scale; cfg.Depth scales the block count and cfg.Scale the model
// width.
func TinyFormer(cfg Config) *graph.Graph {
	cfg = cfg.withDefaults()
	b := newBuilder("tinyformer", cfg)

	const (
		baseDim   = 256
		baseSeq   = 32
		baseHeads = 4
		ffnMult   = 4
		blocks    = 4
	)
	dim := cfg.ch(baseDim)
	heads := baseHeads
	for dim%(4*heads) != 0 && heads > 1 { // head dim must divide the width
		heads /= 2
	}
	headDim := dim / heads
	seq := baseSeq
	nBlocks := cfg.reps(blocks)

	in := b.input("tokens", 1, seq, dim)
	x := in
	for i := 0; i < nBlocks; i++ {
		x = b.encoderBlock(x, seq, dim, heads, headDim, ffnMult)
	}
	// Final LayerNorm → mean pool over the sequence → classifier head.
	x = b.layerNorm(x, dim)
	pool := b.name("pool")
	b.g.AddNode(pool, graph.OpReduceMean, []string{x}, []string{pool + "_out"},
		map[string]graph.Attr{"axis": graph.IntAttr(1)})
	x = pool + "_out"

	fc := b.name("fc")
	b.g.AddInitializer(fc+"_w", b.weight(dim, dim, cfg.Classes))
	b.g.AddInitializer(fc+"_b", b.weight(cfg.Classes, cfg.Classes))
	b.g.AddNode(fc, graph.OpGemm, []string{x, fc + "_w", fc + "_b"}, []string{fc + "_out"}, nil)
	sm := b.name("softmax")
	b.g.AddNode(sm, graph.OpSoftmax, []string{fc + "_out"}, []string{"logits"}, nil)
	b.g.Outputs = []string{"logits"}
	return b.g
}

// encoderBlock adds one pre-norm transformer block:
//
//	x = x + MHA(LN(x));  x = x + FFN(LN(x))
func (b *builder) encoderBlock(in string, seq, dim, heads, headDim, ffnMult int) string {
	// --- multi-head self-attention -----------------------------------------
	h := b.layerNorm(in, dim)
	q := b.linear3(h, dim, dim, "q")
	k := b.linear3(h, dim, dim, "k")
	v := b.linear3(h, dim, dim, "v")

	// [1,S,D] -> [heads, S, headDim]
	qh := b.splitHeads(q, seq, heads, headDim)
	kh := b.splitHeads(k, seq, heads, headDim)
	vh := b.splitHeads(v, seq, heads, headDim)

	// scores = softmax(Q·Kᵀ / sqrt(dh)) · V
	sc := b.name("scores")
	b.g.AddNode(sc, graph.OpBatchMatMul, []string{qh, kh}, []string{sc + "_out"},
		map[string]graph.Attr{"transB": graph.IntAttr(1)})
	scaleName := b.name("attnscale")
	scale := b.weight(1, 1)
	scale.Data()[0] = 1 / sqrt32(float32(headDim))
	b.g.AddInitializer(scaleName+"_s", scale)
	scaled := b.mul(sc+"_out", scaleName+"_s")
	attn := b.unary(graph.OpSoftmax, scaled)
	ctxn := b.name("attnctx")
	b.g.AddNode(ctxn, graph.OpBatchMatMul, []string{attn, vh}, []string{ctxn + "_out"}, nil)

	// [heads, S, headDim] -> [1, S, D] and the output projection.
	merged := b.mergeHeads(ctxn+"_out", seq, heads, headDim)
	proj := b.linear3(merged, dim, dim, "proj")
	x := b.add(in, proj)

	// --- feed-forward -------------------------------------------------------
	h2 := b.layerNorm(x, dim)
	up := b.linear3(h2, dim, dim*ffnMult, "ffup")
	act := b.unary(graph.OpGelu, up)
	down := b.linear3(act, dim*ffnMult, dim, "ffdown")
	return b.add(x, down)
}

// layerNorm adds a LayerNorm over the last axis of width d.
func (b *builder) layerNorm(in string, d int) string {
	n := b.name("ln")
	scale := b.weight(d, d)
	scale.Fill(1)
	bias := b.weight(d, d)
	bias.Scale(0.01)
	b.g.AddInitializer(n+"_s", scale)
	b.g.AddInitializer(n+"_b", bias)
	out := n + "_out"
	b.g.AddNode(n, graph.OpLayerNorm, []string{in, n + "_s", n + "_b"}, []string{out},
		map[string]graph.Attr{"epsilon": graph.FloatAttr(1e-5)})
	return out
}

// linear3 applies a dense layer to a 3-D activation via broadcast
// BatchMatMul plus a bias Add.
func (b *builder) linear3(in string, din, dout int, tag string) string {
	n := b.name(tag)
	b.g.AddInitializer(n+"_w", b.weight(din, din, dout))
	bias := b.weight(dout, dout)
	bias.Scale(0.01)
	b.g.AddInitializer(n+"_b", bias)
	mm := n + "_mm"
	b.g.AddNode(n, graph.OpBatchMatMul, []string{in, n + "_w"}, []string{mm}, nil)
	return b.add(mm, n+"_b")
}

// splitHeads reshapes [1,S,heads*dh] into [heads,S,dh].
func (b *builder) splitHeads(in string, seq, heads, dh int) string {
	r1 := b.name("split")
	b.g.AddNode(r1, graph.OpReshape, []string{in}, []string{r1 + "_out"},
		map[string]graph.Attr{"shape": graph.IntsAttr(seq, heads, dh)})
	t := b.name("splitT")
	b.g.AddNode(t, graph.OpTranspose, []string{r1 + "_out"}, []string{t + "_out"},
		map[string]graph.Attr{"perm": graph.IntsAttr(1, 0, 2)})
	return t + "_out"
}

// mergeHeads reshapes [heads,S,dh] back into [1,S,heads*dh].
func (b *builder) mergeHeads(in string, seq, heads, dh int) string {
	t := b.name("mergeT")
	b.g.AddNode(t, graph.OpTranspose, []string{in}, []string{t + "_out"},
		map[string]graph.Attr{"perm": graph.IntsAttr(1, 0, 2)})
	r := b.name("merge")
	b.g.AddNode(r, graph.OpReshape, []string{t + "_out"}, []string{r + "_out"},
		map[string]graph.Attr{"shape": graph.IntsAttr(1, seq, heads*dh)})
	return r + "_out"
}

func sqrt32(x float32) float32 { return float32(math.Sqrt(float64(x))) }
