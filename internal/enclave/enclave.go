// Package enclave simulates the CPU Trusted Execution Environments MVTEE
// runs on. The paper's prototype uses Intel SGX and TDX hardware; this
// package substitutes a software platform with the same trust interfaces:
// per-platform hardware signing keys, code measurement, signed attestation
// reports bound to caller-chosen report data, sealing keys derived from
// measurement and platform secrets, and EPC (secure memory) accounting with
// SGX1/SGX2/TDX capability profiles. All protocol logic above this layer —
// attestation verification, channel binding, trust policy — is identical to
// what would run against real hardware.
package enclave

import (
	"crypto/ecdsa"
	"crypto/elliptic"
	"crypto/hkdf"
	"crypto/rand"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"sync"

	"repro/internal/telemetry"
)

// EPC accounting series: the in-use gauge tracks committed secure memory
// across every platform in the process; launches and EDMM grows count the
// commitment events themselves.
var (
	mEPCBytes = telemetry.Default.Gauge(telemetry.MetricEnclaveEPCBytes)
	mLaunches = telemetry.Default.Counter(telemetry.MetricEnclaveLaunches)
	mGrows    = telemetry.Default.Counter(telemetry.MetricEnclaveGrows)
)

// TEEType identifies the simulated TEE technology of a platform.
type TEEType int

// Supported TEE types. They differ in memory model and integrity guarantees,
// mirroring §6.5's discussion (SGX1: small EPC with hardware integrity tree;
// SGX2: large EPC + dynamic memory management, no integrity tree; TDX:
// VM-based, large memory).
const (
	SGX1 TEEType = iota + 1
	SGX2
	TDX
)

func (t TEEType) String() string {
	switch t {
	case SGX1:
		return "sgx1"
	case SGX2:
		return "sgx2"
	case TDX:
		return "tdx"
	default:
		return fmt.Sprintf("TEEType(%d)", int(t))
	}
}

// Measurement is the SHA-256 digest of an enclave's initial code and
// configuration (MRENCLAVE analogue).
type Measurement [32]byte

// ReportData is the caller-chosen payload bound into an attestation report
// (e.g., a hash of a channel public key for RA-TLS binding).
type ReportData [64]byte

// Platform is one simulated TEE-capable machine. It owns the hardware
// attestation key and the secure-memory budget shared by its enclaves.
type Platform struct {
	ID   string
	Type TEEType

	mu       sync.Mutex
	key      *ecdsa.PrivateKey
	secret   [32]byte // fused provisioning secret (sealing root)
	epcTotal int64
	epcUsed  int64
	features Features
}

// Features describes platform capabilities relevant to MVTEE's security
// analysis.
type Features struct {
	// IntegrityTree: hardware memory-integrity protection (SGX1).
	IntegrityTree bool
	// DynamicMemory: EDMM-style runtime page management (SGX2, TDX).
	DynamicMemory bool
}

// NewPlatform creates a platform of the given type with an EPC budget in
// bytes. Keys and secrets are freshly generated.
func NewPlatform(id string, tt TEEType, epcBytes int64) (*Platform, error) {
	key, err := ecdsa.GenerateKey(elliptic.P256(), rand.Reader)
	if err != nil {
		return nil, fmt.Errorf("enclave: generate platform key: %w", err)
	}
	p := &Platform{ID: id, Type: tt, key: key, epcTotal: epcBytes}
	if _, err := rand.Read(p.secret[:]); err != nil {
		return nil, fmt.Errorf("enclave: generate platform secret: %w", err)
	}
	switch tt {
	case SGX1:
		p.features = Features{IntegrityTree: true}
	case SGX2, TDX:
		p.features = Features{DynamicMemory: true}
	default:
		return nil, fmt.Errorf("enclave: unknown TEE type %d", int(tt))
	}
	return p, nil
}

// Features returns the platform capability profile.
func (p *Platform) Features() Features { return p.features }

// PublicKey returns the platform's attestation verification key.
func (p *Platform) PublicKey() *ecdsa.PublicKey { return &p.key.PublicKey }

// Image is the code and configuration loaded into an enclave; its digest is
// the enclave measurement.
type Image struct {
	Name string
	// Code is the measured payload (binary, manifest, static data).
	Code []byte
	// InitialPages is the committed secure-memory size at launch.
	InitialPages int64
}

// Measure computes the measurement of an image.
func Measure(img Image) Measurement {
	h := sha256.New()
	h.Write([]byte(img.Name))
	var sz [8]byte
	binary.LittleEndian.PutUint64(sz[:], uint64(len(img.Code)))
	h.Write(sz[:])
	h.Write(img.Code)
	var m Measurement
	copy(m[:], h.Sum(nil))
	return m
}

// Errors.
var (
	ErrEPCExhausted = errors.New("enclave: EPC exhausted")
	ErrNoEDMM       = errors.New("enclave: platform lacks dynamic memory management")
	ErrDestroyed    = errors.New("enclave: destroyed")
)

// Enclave is a launched TEE instance.
type Enclave struct {
	platform *Platform
	name     string
	meas     Measurement

	mu        sync.Mutex
	committed int64
	destroyed bool
}

// Launch creates an enclave from img, committing its initial secure memory.
func (p *Platform) Launch(img Image) (*Enclave, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.epcUsed+img.InitialPages > p.epcTotal {
		return nil, fmt.Errorf("%w: need %d, %d of %d in use", ErrEPCExhausted, img.InitialPages, p.epcUsed, p.epcTotal)
	}
	p.epcUsed += img.InitialPages
	mEPCBytes.Add(img.InitialPages)
	mLaunches.Inc()
	return &Enclave{platform: p, name: img.Name, meas: Measure(img), committed: img.InitialPages}, nil
}

// Name returns the enclave's launch name.
func (e *Enclave) Name() string { return e.name }

// Measurement returns the enclave's code measurement.
func (e *Enclave) Measurement() Measurement { return e.meas }

// Platform returns the hosting platform.
func (e *Enclave) Platform() *Platform { return e.platform }

// Grow commits additional secure memory (requires EDMM on the platform).
func (e *Enclave) Grow(bytes int64) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.destroyed {
		return ErrDestroyed
	}
	if !e.platform.features.DynamicMemory {
		return ErrNoEDMM
	}
	e.platform.mu.Lock()
	defer e.platform.mu.Unlock()
	if e.platform.epcUsed+bytes > e.platform.epcTotal {
		return fmt.Errorf("%w: need %d more", ErrEPCExhausted, bytes)
	}
	e.platform.epcUsed += bytes
	e.committed += bytes
	mEPCBytes.Add(bytes)
	mGrows.Inc()
	return nil
}

// Destroy releases the enclave's secure memory.
func (e *Enclave) Destroy() {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.destroyed {
		return
	}
	e.destroyed = true
	e.platform.mu.Lock()
	e.platform.epcUsed -= e.committed
	e.platform.mu.Unlock()
	mEPCBytes.Add(-e.committed)
	e.committed = 0
}

// EPCInUse reports the platform's current secure-memory consumption.
func (p *Platform) EPCInUse() int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.epcUsed
}

// SealKey derives the enclave's sealing key (bound to measurement and
// platform secret, like SGX's MRENCLAVE-policy sealing).
func (e *Enclave) SealKey(context string) ([]byte, error) {
	key, err := hkdf.Key(sha256.New, e.platform.secret[:], e.meas[:], "mvtee-seal/"+context, 32)
	if err != nil {
		return nil, fmt.Errorf("enclave: seal key: %w", err)
	}
	return key, nil
}
