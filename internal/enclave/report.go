package enclave

import (
	"crypto/ecdsa"
	"crypto/rand"
	"crypto/sha256"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
)

// Report is a hardware-signed attestation report (SGX quote / TDX report
// analogue). It binds the enclave's measurement and caller-chosen report
// data to the platform's attestation key.
type Report struct {
	PlatformID  string
	TEEType     TEEType
	Measurement Measurement
	ReportData  ReportData
	Signature   []byte // ASN.1 ECDSA over the canonical body
}

func reportDigest(platformID string, tt TEEType, m Measurement, rd ReportData) [32]byte {
	h := sha256.New()
	h.Write([]byte("mvtee-report-v1"))
	var n [4]byte
	binary.LittleEndian.PutUint32(n[:], uint32(len(platformID)))
	h.Write(n[:])
	h.Write([]byte(platformID))
	binary.LittleEndian.PutUint32(n[:], uint32(tt))
	h.Write(n[:])
	h.Write(m[:])
	h.Write(rd[:])
	var d [32]byte
	copy(d[:], h.Sum(nil))
	return d
}

// GenerateReport produces a signed attestation report for the enclave with
// the given report data.
func (e *Enclave) GenerateReport(rd ReportData) (*Report, error) {
	e.mu.Lock()
	destroyed := e.destroyed
	e.mu.Unlock()
	if destroyed {
		return nil, ErrDestroyed
	}
	d := reportDigest(e.platform.ID, e.platform.Type, e.meas, rd)
	sig, err := ecdsa.SignASN1(rand.Reader, e.platform.key, d[:])
	if err != nil {
		return nil, fmt.Errorf("enclave: sign report: %w", err)
	}
	return &Report{
		PlatformID:  e.platform.ID,
		TEEType:     e.platform.Type,
		Measurement: e.meas,
		ReportData:  rd,
		Signature:   sig,
	}, nil
}

// Marshal encodes the report for transmission.
func (r *Report) Marshal() ([]byte, error) { return json.Marshal(r) }

// UnmarshalReport decodes a transmitted report.
func UnmarshalReport(b []byte) (*Report, error) {
	var r Report
	if err := json.Unmarshal(b, &r); err != nil {
		return nil, fmt.Errorf("enclave: decode report: %w", err)
	}
	return &r, nil
}

// Verification errors.
var (
	ErrUnknownPlatform = errors.New("enclave: report from unknown platform")
	ErrBadSignature    = errors.New("enclave: report signature invalid")
	ErrMeasurement     = errors.New("enclave: unexpected measurement")
)

// Verifier validates attestation reports against a set of trusted platforms
// (the role of the Intel attestation infrastructure in the paper's setup).
type Verifier struct {
	anchors map[string]*ecdsa.PublicKey
}

// NewVerifier returns an empty verifier.
func NewVerifier() *Verifier {
	return &Verifier{anchors: make(map[string]*ecdsa.PublicKey)}
}

// Trust registers a platform's attestation key as a trust anchor.
func (v *Verifier) Trust(p *Platform) {
	v.anchors[p.ID] = p.PublicKey()
}

// TrustKey registers a raw public key under a platform ID.
func (v *Verifier) TrustKey(platformID string, key *ecdsa.PublicKey) {
	v.anchors[platformID] = key
}

// Verify checks the report's signature against the trust anchors and, when
// expected is non-nil, that the measurement matches one of the expected
// values.
func (v *Verifier) Verify(r *Report, expected []Measurement) error {
	key, ok := v.anchors[r.PlatformID]
	if !ok {
		return fmt.Errorf("%w: %q", ErrUnknownPlatform, r.PlatformID)
	}
	d := reportDigest(r.PlatformID, r.TEEType, r.Measurement, r.ReportData)
	if !ecdsa.VerifyASN1(key, d[:], r.Signature) {
		return ErrBadSignature
	}
	if expected != nil {
		for _, m := range expected {
			if m == r.Measurement {
				return nil
			}
		}
		return fmt.Errorf("%w: %x", ErrMeasurement, r.Measurement[:8])
	}
	return nil
}
