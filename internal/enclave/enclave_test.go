package enclave

import (
	"bytes"
	"errors"
	"testing"
)

func newPlatform(t *testing.T, tt TEEType) *Platform {
	t.Helper()
	p, err := NewPlatform("test-"+tt.String(), tt, 1<<30)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestMeasurementDeterministicAndSensitive(t *testing.T) {
	img := Image{Name: "app", Code: []byte("binary")}
	if Measure(img) != Measure(img) {
		t.Fatal("measurement not deterministic")
	}
	tampered := Image{Name: "app", Code: []byte("binarY")}
	if Measure(img) == Measure(tampered) {
		t.Fatal("tampered code has same measurement")
	}
	renamed := Image{Name: "app2", Code: []byte("binary")}
	if Measure(img) == Measure(renamed) {
		t.Fatal("renamed image has same measurement")
	}
}

func TestFeatureProfiles(t *testing.T) {
	if f := newPlatform(t, SGX1).Features(); !f.IntegrityTree || f.DynamicMemory {
		t.Errorf("SGX1 features = %+v", f)
	}
	if f := newPlatform(t, SGX2).Features(); f.IntegrityTree || !f.DynamicMemory {
		t.Errorf("SGX2 features = %+v", f)
	}
	if f := newPlatform(t, TDX).Features(); !f.DynamicMemory {
		t.Errorf("TDX features = %+v", f)
	}
	if _, err := NewPlatform("x", TEEType(9), 1); err == nil {
		t.Error("unknown TEE type accepted")
	}
}

func TestEPCAccounting(t *testing.T) {
	p, err := NewPlatform("epc", SGX2, 100)
	if err != nil {
		t.Fatal(err)
	}
	e1, err := p.Launch(Image{Name: "a", Code: []byte("a"), InitialPages: 60})
	if err != nil {
		t.Fatal(err)
	}
	if p.EPCInUse() != 60 {
		t.Fatalf("EPC in use = %d", p.EPCInUse())
	}
	if _, err := p.Launch(Image{Name: "b", Code: []byte("b"), InitialPages: 50}); !errors.Is(err, ErrEPCExhausted) {
		t.Fatalf("overcommit: got %v", err)
	}
	if err := e1.Grow(30); err != nil {
		t.Fatal(err)
	}
	if err := e1.Grow(20); !errors.Is(err, ErrEPCExhausted) {
		t.Fatalf("grow past cap: got %v", err)
	}
	e1.Destroy()
	if p.EPCInUse() != 0 {
		t.Fatalf("EPC not released: %d", p.EPCInUse())
	}
	e1.Destroy() // idempotent
	if p.EPCInUse() != 0 {
		t.Fatal("double destroy corrupted accounting")
	}
}

func TestGrowNeedsEDMM(t *testing.T) {
	p := newPlatform(t, SGX1)
	e, err := p.Launch(Image{Name: "a", Code: []byte("a"), InitialPages: 10})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Grow(10); !errors.Is(err, ErrNoEDMM) {
		t.Fatalf("SGX1 grow: got %v, want ErrNoEDMM", err)
	}
}

func TestReportVerify(t *testing.T) {
	p := newPlatform(t, SGX2)
	e, err := p.Launch(Image{Name: "app", Code: []byte("code"), InitialPages: 1})
	if err != nil {
		t.Fatal(err)
	}
	var rd ReportData
	copy(rd[:], "channel binding hash")
	rep, err := e.GenerateReport(rd)
	if err != nil {
		t.Fatal(err)
	}

	v := NewVerifier()
	if err := v.Verify(rep, nil); !errors.Is(err, ErrUnknownPlatform) {
		t.Fatalf("untrusted platform: got %v", err)
	}
	v.Trust(p)
	if err := v.Verify(rep, nil); err != nil {
		t.Fatal(err)
	}
	if err := v.Verify(rep, []Measurement{e.Measurement()}); err != nil {
		t.Fatal(err)
	}
	if err := v.Verify(rep, []Measurement{{1, 2, 3}}); !errors.Is(err, ErrMeasurement) {
		t.Fatalf("wrong measurement: got %v", err)
	}
}

func TestReportTamperDetected(t *testing.T) {
	p := newPlatform(t, SGX2)
	e, _ := p.Launch(Image{Name: "app", Code: []byte("code"), InitialPages: 1})
	rep, _ := e.GenerateReport(ReportData{1})
	v := NewVerifier()
	v.Trust(p)

	bad := *rep
	bad.Measurement[0] ^= 1
	if err := v.Verify(&bad, nil); !errors.Is(err, ErrBadSignature) {
		t.Fatalf("tampered measurement: got %v", err)
	}
	bad2 := *rep
	bad2.ReportData[5] ^= 1
	if err := v.Verify(&bad2, nil); !errors.Is(err, ErrBadSignature) {
		t.Fatalf("tampered report data: got %v", err)
	}
	// A report from a different (untrusted) platform claiming this
	// platform's ID must fail signature verification.
	p2 := newPlatform(t, SGX2)
	e2, _ := p2.Launch(Image{Name: "app", Code: []byte("code"), InitialPages: 1})
	forged, _ := e2.GenerateReport(ReportData{1})
	forged.PlatformID = p.ID
	if err := v.Verify(forged, nil); !errors.Is(err, ErrBadSignature) {
		t.Fatalf("forged platform id: got %v", err)
	}
}

func TestReportMarshalRoundtrip(t *testing.T) {
	p := newPlatform(t, TDX)
	e, _ := p.Launch(Image{Name: "app", Code: []byte("c"), InitialPages: 1})
	rep, _ := e.GenerateReport(ReportData{9})
	b, err := rep.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	got, err := UnmarshalReport(b)
	if err != nil {
		t.Fatal(err)
	}
	v := NewVerifier()
	v.Trust(p)
	if err := v.Verify(got, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDestroyedEnclaveCannotAttest(t *testing.T) {
	p := newPlatform(t, SGX2)
	e, _ := p.Launch(Image{Name: "a", Code: []byte("a"), InitialPages: 1})
	e.Destroy()
	if _, err := e.GenerateReport(ReportData{}); !errors.Is(err, ErrDestroyed) {
		t.Fatalf("got %v, want ErrDestroyed", err)
	}
}

func TestSealKey(t *testing.T) {
	p := newPlatform(t, SGX2)
	e1, _ := p.Launch(Image{Name: "a", Code: []byte("same"), InitialPages: 1})
	e2, _ := p.Launch(Image{Name: "a", Code: []byte("same"), InitialPages: 1})
	k1, err := e1.SealKey("fs")
	if err != nil {
		t.Fatal(err)
	}
	k2, _ := e2.SealKey("fs")
	if !bytes.Equal(k1, k2) {
		t.Fatal("same measurement on same platform must derive the same seal key")
	}
	k3, _ := e1.SealKey("other")
	if bytes.Equal(k1, k3) {
		t.Fatal("different contexts must derive different keys")
	}
	e3, _ := p.Launch(Image{Name: "a", Code: []byte("different"), InitialPages: 1})
	k4, _ := e3.SealKey("fs")
	if bytes.Equal(k1, k4) {
		t.Fatal("different measurements must derive different keys")
	}
}

func TestExportImportPlatform(t *testing.T) {
	p := newPlatform(t, SGX2)
	b, err := p.Export()
	if err != nil {
		t.Fatal(err)
	}
	q, err := ImportPlatform(b)
	if err != nil {
		t.Fatal(err)
	}
	// A report generated on the imported platform must verify against a
	// verifier trusting the original (same hardware identity).
	e, err := q.Launch(Image{Name: "a", Code: []byte("x"), InitialPages: 1})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := e.GenerateReport(ReportData{3})
	if err != nil {
		t.Fatal(err)
	}
	v := NewVerifier()
	v.Trust(p)
	if err := v.Verify(rep, nil); err != nil {
		t.Fatal(err)
	}
	// Sealing must also carry over.
	e0, _ := p.Launch(Image{Name: "a", Code: []byte("x"), InitialPages: 1})
	k0, _ := e0.SealKey("fs")
	k1, _ := e.SealKey("fs")
	if !bytes.Equal(k0, k1) {
		t.Fatal("seal keys differ after import")
	}
	if _, err := ImportPlatform([]byte("junk")); err == nil {
		t.Fatal("junk accepted")
	}
}
