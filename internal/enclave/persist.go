package enclave

import (
	"crypto/ecdsa"
	"crypto/x509"
	"encoding/json"
	"encoding/pem"
	"fmt"
)

// PlatformSecrets is the serialized identity of a simulated platform: the
// hardware attestation key and provisioning secret. In a real deployment
// these live in fuses and the attestation infrastructure distributes the
// certificates; for process-separated runs of this repository the offline
// tool writes them to the deployment bundle so every process models the same
// machine. Treat the file as the hardware root of trust.
type PlatformSecrets struct {
	ID     string  `json:"id"`
	Type   TEEType `json:"type"`
	KeyPEM string  `json:"key_pem"`
	Secret []byte  `json:"secret"`
	EPC    int64   `json:"epc"`
}

// Export serializes the platform's identity.
func (p *Platform) Export() ([]byte, error) {
	der, err := x509.MarshalECPrivateKey(p.key)
	if err != nil {
		return nil, fmt.Errorf("enclave: export key: %w", err)
	}
	pemB := pem.EncodeToMemory(&pem.Block{Type: "EC PRIVATE KEY", Bytes: der})
	return json.Marshal(PlatformSecrets{
		ID: p.ID, Type: p.Type, KeyPEM: string(pemB), Secret: p.secret[:], EPC: p.epcTotal,
	})
}

// ImportPlatform reconstructs a platform from its exported identity.
func ImportPlatform(b []byte) (*Platform, error) {
	var ps PlatformSecrets
	if err := json.Unmarshal(b, &ps); err != nil {
		return nil, fmt.Errorf("enclave: import platform: %w", err)
	}
	blk, _ := pem.Decode([]byte(ps.KeyPEM))
	if blk == nil {
		return nil, fmt.Errorf("enclave: import platform: no PEM block")
	}
	key, err := x509.ParseECPrivateKey(blk.Bytes)
	if err != nil {
		return nil, fmt.Errorf("enclave: import platform: %w", err)
	}
	if len(ps.Secret) != 32 {
		return nil, fmt.Errorf("enclave: import platform: bad secret length %d", len(ps.Secret))
	}
	p := &Platform{ID: ps.ID, Type: ps.Type, key: key, epcTotal: ps.EPC}
	copy(p.secret[:], ps.Secret)
	switch ps.Type {
	case SGX1:
		p.features = Features{IntegrityTree: true}
	case SGX2, TDX:
		p.features = Features{DynamicMemory: true}
	default:
		return nil, fmt.Errorf("enclave: import platform: unknown type %d", int(ps.Type))
	}
	return p, nil
}

// PublicKeyOnly returns just the verification key for building a Verifier in
// a process that must not hold the private identity (e.g., the model owner).
func (p *Platform) PublicKeyOnly() *ecdsa.PublicKey { return p.PublicKey() }

// PlatformIdentity is the public half of a platform: what an attestation
// infrastructure distributes to verifiers (model owners, users).
type PlatformIdentity struct {
	ID     string  `json:"id"`
	Type   TEEType `json:"type"`
	PubPEM string  `json:"pub_pem"`
}

// ExportPublic serializes the platform's verification identity.
func (p *Platform) ExportPublic() ([]byte, error) {
	der, err := x509.MarshalPKIXPublicKey(p.PublicKey())
	if err != nil {
		return nil, fmt.Errorf("enclave: export public key: %w", err)
	}
	pemB := pem.EncodeToMemory(&pem.Block{Type: "PUBLIC KEY", Bytes: der})
	return json.Marshal(PlatformIdentity{ID: p.ID, Type: p.Type, PubPEM: string(pemB)})
}

// TrustIdentity registers an exported public platform identity as a trust
// anchor in the verifier.
func (v *Verifier) TrustIdentity(b []byte) error {
	var pi PlatformIdentity
	if err := json.Unmarshal(b, &pi); err != nil {
		return fmt.Errorf("enclave: import identity: %w", err)
	}
	blk, _ := pem.Decode([]byte(pi.PubPEM))
	if blk == nil {
		return fmt.Errorf("enclave: import identity: no PEM block")
	}
	pub, err := x509.ParsePKIXPublicKey(blk.Bytes)
	if err != nil {
		return fmt.Errorf("enclave: import identity: %w", err)
	}
	ek, ok := pub.(*ecdsa.PublicKey)
	if !ok {
		return fmt.Errorf("enclave: import identity: not an ECDSA key")
	}
	v.TrustKey(pi.ID, ek)
	return nil
}
