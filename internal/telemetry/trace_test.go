package telemetry

import (
	"sync"
	"testing"
)

func TestTracerRingWraps(t *testing.T) {
	tr := NewTracer(4)
	for i := 1; i <= 6; i++ {
		tr.Record(Span{Trace: uint64(i), Batch: uint64(i), Name: "s", Stage: -1})
	}
	got := tr.Snapshot()
	if len(got) != 4 {
		t.Fatalf("len = %d, want 4", len(got))
	}
	for i, s := range got {
		if want := uint64(i + 3); s.Trace != want {
			t.Fatalf("span %d trace = %d, want %d (oldest-first)", i, s.Trace, want)
		}
	}
	if tr.Total() != 6 {
		t.Fatalf("total = %d, want 6", tr.Total())
	}
}

func TestTracerDropsZeroTrace(t *testing.T) {
	tr := NewTracer(4)
	tr.Record(Span{Trace: 0, Name: "untraced"})
	if len(tr.Snapshot()) != 0 {
		t.Fatal("zero trace IDs must not be recorded")
	}
}

func TestTracerDisabled(t *testing.T) {
	defer SetEnabled(true)
	tr := NewTracer(4)
	SetEnabled(false)
	tr.Record(Span{Trace: 1, Name: "x"})
	SetEnabled(true)
	if len(tr.Snapshot()) != 0 {
		t.Fatal("disabled tracer must drop spans")
	}
}

func TestSpansFor(t *testing.T) {
	tr := NewTracer(8)
	tr.Record(Span{Trace: 1, Name: "a"})
	tr.Record(Span{Trace: 2, Name: "b"})
	tr.Record(Span{Trace: 1, Name: "c"})
	got := tr.SpansFor(1)
	if len(got) != 2 || got[0].Name != "a" || got[1].Name != "c" {
		t.Fatalf("SpansFor(1) = %+v", got)
	}
}

func TestNewTraceIDUnique(t *testing.T) {
	seen := make(map[uint64]bool)
	for i := 0; i < 1000; i++ {
		id := NewTraceID()
		if id == 0 {
			t.Fatal("trace ID must be nonzero when enabled")
		}
		if seen[id] {
			t.Fatalf("duplicate trace ID %d", id)
		}
		seen[id] = true
	}
}

func TestTracerConcurrent(t *testing.T) {
	tr := NewTracer(128)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				tr.Record(Span{Trace: uint64(g + 1), Batch: uint64(i), Name: "s"})
			}
		}(g)
	}
	wg.Wait()
	if tr.Total() != 8*500 {
		t.Fatalf("total = %d, want %d", tr.Total(), 8*500)
	}
	if len(tr.Snapshot()) != 128 {
		t.Fatal("ring should be full")
	}
}

func TestTracerRecordAllocFree(t *testing.T) {
	tr := NewTracer(1024)
	s := Span{Trace: 7, Batch: 1, Name: "dispatch", Stage: 0, Start: 1, End: 2}
	allocs := testing.AllocsPerRun(1000, func() { tr.Record(s) })
	if allocs != 0 {
		t.Fatalf("Record allocated %v/op, want 0", allocs)
	}
}

func BenchmarkTracerRecord(b *testing.B) {
	tr := NewTracer(8192)
	s := Span{Trace: 7, Batch: 1, Name: "dispatch", Stage: 0, Start: 1, End: 2}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr.Record(s)
	}
}
