package telemetry

import (
	"encoding/json"
	"net/http"
	"sync"
	"time"
)

// FlightSample is one tick of the flight recorder: every registered source
// read at the same instant. Values is index-aligned with Incident.Sources.
type FlightSample struct {
	At     int64   `json:"at_ns"`
	Values []int64 `json:"values"`
}

// FlightNote is one annotation on the timeline (control decisions, operator
// marks) — context the numeric sources can't carry.
type FlightNote struct {
	At   int64  `json:"at_ns"`
	Text string `json:"text"`
}

// Incident is one frozen before/after window around a trigger. Before is the
// sample ring as it stood when the trigger fired (oldest first); After is
// filled by the sampler over the next PostSamples ticks, at which point
// Complete flips true. Notes carries the annotation ring captured at trigger
// time plus anything noted while the incident was open.
type Incident struct {
	Reason   string         `json:"reason"`
	At       int64          `json:"at_ns"`
	Sources  []string       `json:"sources"`
	Interval int64          `json:"interval_ns"`
	Before   []FlightSample `json:"before"`
	After    []FlightSample `json:"after"`
	Notes    []FlightNote   `json:"notes,omitempty"`
	Complete bool           `json:"complete"`
}

// FlightConfig sizes a FlightRecorder. The defaults give a ~16s lookback
// (64 samples x 250ms) and a ~4s post-trigger window.
type FlightConfig struct {
	// Interval is the sampling cadence. Zero means 250ms.
	Interval time.Duration
	// Window is the sample ring size (the "before" depth). Zero means 64.
	Window int
	// PostSamples is how many post-trigger ticks complete an incident.
	// Zero means 16.
	PostSamples int
	// MaxIncidents bounds retained incidents (oldest evicted). Zero means 8.
	MaxIncidents int
	// MaxNotes bounds the annotation ring. Zero means 64.
	MaxNotes int
	// Metrics receives the per-reason incident counter; nil disables.
	Metrics *Registry
	// OnIncident, when set, is invoked once per new incident (not for
	// coalesced re-triggers), outside the recorder lock. Hosts use it to
	// ship incidents to an event bus so /events streams them live. The
	// Incident is a snapshot taken at trigger time; its after-window is
	// still filling.
	OnIncident func(Incident)
}

// FlightRecorder is the failover black box: a fixed-size ring continuously
// snapshotting a set of int64 sources (ladder level, shed floor, queue
// depths, cluster health counters), frozen into a before/after Incident when
// a trigger fires (failover, dissent, demotion, SLO breach). Trigger is cheap
// — it copies the ring and marks the incident open; the sampler goroutine
// fills the after-window on its normal cadence. All methods are
// nil-receiver-safe so uninstrumented hosts pay one branch, and sampling
// honors the global kill switch (a disabled process records nothing).
type FlightRecorder struct {
	cfg FlightConfig

	mu        sync.Mutex
	started   bool
	names     []string
	fns       []func() int64
	ring      []FlightSample
	n, pos    int
	notes     []FlightNote
	nn, npos  int
	incidents []*Incident
	active    *Incident
	remaining int

	stop     chan struct{}
	stopOnce sync.Once
	wg       sync.WaitGroup
}

// NewFlightRecorder builds a recorder; register sources with AddSource, then
// Start it.
func NewFlightRecorder(cfg FlightConfig) *FlightRecorder {
	if cfg.Interval <= 0 {
		cfg.Interval = 250 * time.Millisecond
	}
	if cfg.Window <= 0 {
		cfg.Window = 64
	}
	if cfg.PostSamples <= 0 {
		cfg.PostSamples = 16
	}
	if cfg.MaxIncidents <= 0 {
		cfg.MaxIncidents = 8
	}
	if cfg.MaxNotes <= 0 {
		cfg.MaxNotes = 64
	}
	return &FlightRecorder{
		cfg:   cfg,
		ring:  make([]FlightSample, cfg.Window),
		notes: make([]FlightNote, cfg.MaxNotes),
		stop:  make(chan struct{}),
	}
}

// AddSource registers one named sampled value. Must happen before Start so
// every sample has the same shape; registrations after Start are ignored.
func (f *FlightRecorder) AddSource(name string, fn func() int64) {
	if f == nil || fn == nil {
		return
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.started {
		return
	}
	f.names = append(f.names, name)
	f.fns = append(f.fns, fn)
}

// Start launches the sampler goroutine. Safe to call once.
func (f *FlightRecorder) Start() {
	if f == nil {
		return
	}
	f.mu.Lock()
	if f.started {
		f.mu.Unlock()
		return
	}
	f.started = true
	f.mu.Unlock()
	f.wg.Add(1)
	go f.sampler()
}

// Stop halts the sampler. An open incident stays incomplete.
func (f *FlightRecorder) Stop() {
	if f == nil {
		return
	}
	f.stopOnce.Do(func() { close(f.stop) })
	f.wg.Wait()
}

func (f *FlightRecorder) sampler() {
	defer f.wg.Done()
	t := time.NewTicker(f.cfg.Interval)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			f.tick()
		case <-f.stop:
			return
		}
	}
}

// tick reads every source outside the recorder lock (sources may take their
// own locks — engine ladders, router state) and stores one sample.
func (f *FlightRecorder) tick() {
	if !Enabled() {
		return
	}
	vals := make([]int64, len(f.fns))
	for i, fn := range f.fns {
		vals[i] = fn()
	}
	s := FlightSample{At: time.Now().UnixNano(), Values: vals}
	f.mu.Lock()
	f.ring[f.pos] = s
	f.pos++
	if f.pos == len(f.ring) {
		f.pos = 0
	}
	if f.n < len(f.ring) {
		f.n++
	}
	if f.active != nil {
		f.active.After = append(f.active.After, s)
		f.remaining--
		if f.remaining <= 0 {
			f.active.Complete = true
			f.active = nil
		}
	}
	f.mu.Unlock()
}

// Note records one timeline annotation; while an incident is open it is also
// appended to the incident directly.
func (f *FlightRecorder) Note(text string) {
	if f == nil || !Enabled() {
		return
	}
	n := FlightNote{At: time.Now().UnixNano(), Text: text}
	f.mu.Lock()
	f.notes[f.npos] = n
	f.npos++
	if f.npos == len(f.notes) {
		f.npos = 0
	}
	if f.nn < len(f.notes) {
		f.nn++
	}
	if f.active != nil {
		f.active.Notes = append(f.active.Notes, n)
	}
	f.mu.Unlock()
}

// Trigger freezes the current ring into a new incident. Triggers while an
// incident is still collecting its after-window coalesce into a note on the
// open incident — a failover storm yields one record, not eight overlapping
// ones. Cheap enough to call from a router's event path.
func (f *FlightRecorder) Trigger(reason string) {
	if f == nil || !Enabled() {
		return
	}
	now := time.Now().UnixNano()
	f.mu.Lock()
	if f.active != nil {
		f.active.Notes = append(f.active.Notes, FlightNote{At: now, Text: "trigger: " + reason})
		f.mu.Unlock()
		return
	}
	inc := &Incident{
		Reason:   reason,
		At:       now,
		Sources:  f.names,
		Interval: int64(f.cfg.Interval),
		Before:   f.ringLocked(),
		Notes:    f.notesLocked(),
		After:    make([]FlightSample, 0, f.cfg.PostSamples),
	}
	f.incidents = append(f.incidents, inc)
	if len(f.incidents) > f.cfg.MaxIncidents {
		f.incidents = append(f.incidents[:0], f.incidents[len(f.incidents)-f.cfg.MaxIncidents:]...)
	}
	f.active = inc
	f.remaining = f.cfg.PostSamples
	snap := *inc
	snap.Before = append([]FlightSample(nil), inc.Before...)
	snap.Notes = append([]FlightNote(nil), inc.Notes...)
	snap.After = nil
	f.mu.Unlock()
	if f.cfg.Metrics != nil {
		f.cfg.Metrics.Counter(MetricFlightIncidents, L("reason", reason)).Inc()
	}
	if f.cfg.OnIncident != nil {
		f.cfg.OnIncident(snap)
	}
}

// ringLocked copies the sample ring oldest-first. Caller holds f.mu.
func (f *FlightRecorder) ringLocked() []FlightSample {
	out := make([]FlightSample, 0, f.n)
	start := f.pos - f.n
	if start < 0 {
		start += len(f.ring)
	}
	for i := 0; i < f.n; i++ {
		out = append(out, f.ring[(start+i)%len(f.ring)])
	}
	return out
}

// notesLocked copies the annotation ring oldest-first. Caller holds f.mu.
func (f *FlightRecorder) notesLocked() []FlightNote {
	if f.nn == 0 {
		return nil
	}
	out := make([]FlightNote, 0, f.nn)
	start := f.npos - f.nn
	if start < 0 {
		start += len(f.notes)
	}
	for i := 0; i < f.nn; i++ {
		out = append(out, f.notes[(start+i)%len(f.notes)])
	}
	return out
}

// Incidents returns deep copies of the retained incidents, oldest first —
// safe to serialize while the sampler keeps appending to an open one.
func (f *FlightRecorder) Incidents() []Incident {
	if f == nil {
		return nil
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]Incident, 0, len(f.incidents))
	for _, inc := range f.incidents {
		c := *inc
		c.Before = append([]FlightSample(nil), inc.Before...)
		c.After = append([]FlightSample(nil), inc.After...)
		c.Notes = append([]FlightNote(nil), inc.Notes...)
		out = append(out, c)
	}
	return out
}

// flightView is the /debug/flight JSON document.
type flightView struct {
	Sources    []string   `json:"sources"`
	IntervalNs int64      `json:"interval_ns"`
	Window     int        `json:"window"`
	Incidents  []Incident `json:"incidents"`
}

// Handler serves the incident ring as JSON at /debug/flight.
func (f *FlightRecorder) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		if f == nil {
			_, _ = w.Write([]byte("{}"))
			return
		}
		f.mu.Lock()
		names := append([]string(nil), f.names...)
		f.mu.Unlock()
		v := flightView{
			Sources:    names,
			IntervalNs: int64(f.cfg.Interval),
			Window:     f.cfg.Window,
			Incidents:  f.Incidents(),
		}
		_ = json.NewEncoder(w).Encode(v)
	})
}
