package telemetry

import (
	"encoding/json"
	"net/http"
	"net/http/pprof"
	"strconv"
)

// NewMux builds the operator HTTP surface over a registry and tracer:
//
//	/metrics       Prometheus text exposition of reg
//	/trace         retained spans as JSON (?trace=<id> filters one trace)
//	/debug/pprof/  the standard pprof handlers
//
// Event streaming (/events) is mounted separately by the host via SSE,
// because the bus element type is host-defined.
func NewMux(reg *Registry, tr *Tracer) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		// Refresh the tracer's loss gauges at scrape time so the scrape
		// itself is the only reader the span ring ever pays for.
		if tr != nil && reg != nil {
			reg.Gauge(MetricTraceSpansRecorded).Set(int64(tr.Total()))
			reg.Gauge(MetricTraceSpansDropped).Set(int64(tr.Dropped()))
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = reg.WriteProm(w)
	})
	mux.HandleFunc("/trace", func(w http.ResponseWriter, r *http.Request) {
		spans := tr.Snapshot()
		if q := r.URL.Query().Get("trace"); q != "" {
			id, err := strconv.ParseUint(q, 10, 64)
			if err != nil {
				http.Error(w, "bad trace id", http.StatusBadRequest)
				return
			}
			filtered := make([]Span, 0, len(spans))
			for _, s := range spans {
				if s.Trace == id {
					filtered = append(filtered, s)
				}
			}
			spans = filtered
		}
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(spans)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// SSE serves a bus as a Server-Sent-Events stream: on connect the retained
// ring is replayed, then live entries stream as `data: <json>` frames until
// the client disconnects. Each element is JSON-encoded (honoring custom
// MarshalJSON on T).
func SSE[T any](bus *Bus[T]) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		fl, ok := w.(http.Flusher)
		if !ok {
			http.Error(w, "streaming unsupported", http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "text/event-stream")
		w.Header().Set("Cache-Control", "no-cache")
		w.Header().Set("Connection", "keep-alive")

		sub := bus.Subscribe(256)
		defer sub.Close()

		enc := func(v T) bool {
			b, err := json.Marshal(v)
			if err != nil {
				return true // skip unencodable entries, keep the stream up
			}
			if _, err := w.Write([]byte("data: ")); err != nil {
				return false
			}
			if _, err := w.Write(b); err != nil {
				return false
			}
			if _, err := w.Write([]byte("\n\n")); err != nil {
				return false
			}
			fl.Flush()
			return true
		}

		for _, v := range bus.Snapshot() {
			if !enc(v) {
				return
			}
		}
		for {
			select {
			case <-r.Context().Done():
				return
			case v, ok := <-sub.C:
				if !ok {
					return
				}
				if !enc(v) {
					return
				}
			}
		}
	})
}
