package telemetry

import "testing"

func TestHistStateQuantile(t *testing.T) {
	var h Histogram
	// 1000 observations at ~1000ns, 10 at ~1_000_000ns: p50 must land in the
	// low cluster's bucket range, p99.9+ in the high one.
	for i := 0; i < 1000; i++ {
		h.Observe(1000)
	}
	for i := 0; i < 10; i++ {
		h.Observe(1_000_000)
	}
	s := h.State()
	if s.Count != 1010 {
		t.Fatalf("count = %d, want 1010", s.Count)
	}
	p50 := s.Quantile(0.5)
	if p50 < 512 || p50 > 2047 {
		t.Errorf("p50 = %d, want within bucket of 1000 [512,2047]", p50)
	}
	p999 := s.Quantile(0.9999)
	if p999 < 512*1024 || p999 > 2*1024*1024 {
		t.Errorf("p99.99 = %d, want within bucket of 1e6", p999)
	}
	if got := s.Quantile(0); got > 2047 {
		t.Errorf("q=0 = %d, want low bucket", got)
	}
}

func TestHistStateQuantileMonotone(t *testing.T) {
	var h Histogram
	for v := int64(1); v <= 1<<20; v *= 3 {
		for i := 0; i < 7; i++ {
			h.Observe(v)
		}
	}
	s := h.State()
	prev := uint64(0)
	for _, q := range []float64{0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1} {
		cur := s.Quantile(q)
		if cur < prev {
			t.Fatalf("quantile not monotone: q=%v gave %d after %d", q, cur, prev)
		}
		prev = cur
	}
}

func TestHistStateSub(t *testing.T) {
	var h Histogram
	h.Observe(100)
	h.Observe(100)
	before := h.State()
	h.Observe(100)
	h.Observe(1 << 30)
	delta := h.State().Sub(before)
	if delta.Count != 2 {
		t.Fatalf("delta count = %d, want 2", delta.Count)
	}
	if delta.Sum != 100+(1<<30) {
		t.Fatalf("delta sum = %d", delta.Sum)
	}
	// Stale prev (from a different histogram with larger counts) must not
	// underflow.
	var h2 Histogram
	h2.Observe(5)
	if d := h2.State().Sub(h.State()); d.Count != 0 && d.Count > 1 {
		t.Fatalf("saturating sub broken: %+v", d)
	}
}

func TestHistStateEmpty(t *testing.T) {
	var s HistState
	if s.Quantile(0.99) != 0 || s.Mean() != 0 {
		t.Fatal("empty state must report zeros")
	}
	var h *Histogram
	if h.State().Count != 0 {
		t.Fatal("nil histogram state must be empty")
	}
}
