package telemetry

import (
	"sync"
	"sync/atomic"
)

// Bus is a non-blocking publish/subscribe ring. Publish never blocks: the
// ring overwrites its oldest entry when full, and slow subscribers lose
// messages (counted, never stalling the producer). This is the delivery
// discipline an engine hot path needs — an operator tailing /events must not
// be able to wedge checkpoint processing.
type Bus[T any] struct {
	mu      sync.Mutex
	ring    []T
	n       int // valid entries
	pos     int // next write index
	total   uint64
	subs    []*Sub[T]
	dropped atomic.Uint64
}

// Sub is one subscription. Receive from C; Close when done. C is closed by
// Close (never by the bus), so ranging over it terminates cleanly.
type Sub[T any] struct {
	C       chan T
	bus     *Bus[T]
	dropped atomic.Uint64
	closed  bool
}

// NewBus returns a bus retaining the most recent capacity entries for
// snapshots and replay.
func NewBus[T any](capacity int) *Bus[T] {
	if capacity < 1 {
		capacity = 1
	}
	return &Bus[T]{ring: make([]T, capacity)}
}

// Publish appends v to the ring and fans it out to every subscriber whose
// channel has room. It never blocks and allocates nothing.
func (b *Bus[T]) Publish(v T) {
	if b == nil {
		return
	}
	b.mu.Lock()
	b.ring[b.pos] = v
	b.pos++
	if b.pos == len(b.ring) {
		b.pos = 0
	}
	if b.n < len(b.ring) {
		b.n++
	}
	b.total++
	for _, s := range b.subs {
		select {
		case s.C <- v:
		default:
			s.dropped.Add(1)
			b.dropped.Add(1)
		}
	}
	b.mu.Unlock()
}

// Snapshot returns the retained entries, oldest first.
func (b *Bus[T]) Snapshot() []T {
	if b == nil {
		return nil
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	out := make([]T, 0, b.n)
	start := b.pos - b.n
	if start < 0 {
		start += len(b.ring)
	}
	for i := 0; i < b.n; i++ {
		out = append(out, b.ring[(start+i)%len(b.ring)])
	}
	return out
}

// Len returns how many entries the ring currently retains.
func (b *Bus[T]) Len() int {
	if b == nil {
		return 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.n
}

// Total returns the number of entries ever published.
func (b *Bus[T]) Total() uint64 {
	if b == nil {
		return 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.total
}

// Dropped returns the number of fan-out sends lost to full subscriber
// buffers across all subscribers.
func (b *Bus[T]) Dropped() uint64 {
	if b == nil {
		return 0
	}
	return b.dropped.Load()
}

// Subscribe registers a new subscriber with the given channel buffer.
// Messages published while the buffer is full are dropped for that
// subscriber, not queued.
func (b *Bus[T]) Subscribe(buffer int) *Sub[T] {
	if buffer < 1 {
		buffer = 1
	}
	s := &Sub[T]{C: make(chan T, buffer), bus: b}
	b.mu.Lock()
	b.subs = append(b.subs, s)
	b.mu.Unlock()
	return s
}

// Dropped returns how many messages this subscriber missed.
func (s *Sub[T]) Dropped() uint64 { return s.dropped.Load() }

// Close detaches the subscription and closes C. Safe to call once; sends
// only ever happen under the bus lock, so closing after removal cannot race
// a Publish.
func (s *Sub[T]) Close() {
	b := s.bus
	b.mu.Lock()
	if s.closed {
		b.mu.Unlock()
		return
	}
	s.closed = true
	for i, x := range b.subs {
		if x == s {
			b.subs = append(b.subs[:i], b.subs[i+1:]...)
			break
		}
	}
	b.mu.Unlock()
	close(s.C)
}
