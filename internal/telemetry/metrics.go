package telemetry

import (
	"fmt"
	"io"
	"math/bits"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing atomic counter. All methods are
// nil-receiver-safe so uninstrumented call sites cost a nil check.
type Counter struct{ v atomic.Uint64 }

// Inc adds one.
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add adds n.
func (c *Counter) Add(n uint64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Value returns the current count.
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an atomically set/adjusted instantaneous value.
type Gauge struct{ v atomic.Int64 }

// Set stores v.
func (g *Gauge) Set(v int64) {
	if g != nil {
		g.v.Store(v)
	}
}

// Add adjusts the gauge by d (negative to decrease).
func (g *Gauge) Add(d int64) {
	if g != nil {
		g.v.Add(d)
	}
}

// Value returns the current value.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// HistBuckets is the fixed bucket count of every histogram: log2 buckets
// covering observations from 0 up to 2^(HistBuckets-1)-1, with the last
// bucket absorbing everything larger. 40 buckets span 1ns..~9 minutes when
// observing nanoseconds — wider than any checkpoint latency this engine can
// produce.
const HistBuckets = 40

// Histogram is a fixed-bucket log2 latency histogram: Observe is lock-free
// (one atomic add per bucket plus one for the sum) and allocation-free, so it
// can sit directly on the dispatch/gather hot path. Bucket i counts
// observations v with bits.Len64(v) == i, i.e. upper bound 2^i - 1.
type Histogram struct {
	buckets [HistBuckets]atomic.Uint64
	sum     atomic.Uint64
}

// Observe records one value (negative values clamp to zero).
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	var u uint64
	if v > 0 {
		u = uint64(v)
	}
	b := bits.Len64(u)
	if b >= HistBuckets {
		b = HistBuckets - 1
	}
	h.buckets[b].Add(1)
	h.sum.Add(u)
}

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	var n uint64
	for i := range h.buckets {
		n += h.buckets[i].Load()
	}
	return n
}

// Sum returns the total of all observed values.
func (h *Histogram) Sum() uint64 {
	if h == nil {
		return 0
	}
	return h.sum.Load()
}

// BucketBound returns the inclusive upper bound of bucket i (2^i - 1); the
// last bucket is unbounded (+Inf in the Prometheus rendering).
func BucketBound(i int) uint64 {
	if i >= HistBuckets-1 {
		return ^uint64(0)
	}
	return (uint64(1) << uint(i)) - 1
}

// Label is one metric dimension, rendered as name{key="value"}.
type Label struct{ Key, Value string }

// L is shorthand for constructing a Label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

type metricKind uint8

const (
	kindCounter metricKind = iota + 1
	kindGauge
	kindHistogram
)

func (k metricKind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	case kindHistogram:
		return "histogram"
	}
	return "unknown"
}

// entry is one registered time series.
type entry struct {
	name   string
	labels []Label
	kind   metricKind
	c      *Counter
	g      *Gauge
	h      *Histogram
}

// Registry holds named metrics. Registration (Counter/Gauge/Histogram) is
// get-or-create and mutex-guarded — do it once at construction time, never on
// the hot path; the returned handles record lock-free.
type Registry struct {
	mu      sync.Mutex
	entries []*entry
	index   map[string]*entry
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{index: make(map[string]*entry)}
}

// Default is the process-wide registry. Package-level instrumentation
// (securechan, workpool, check, teeos, enclave) registers here; the engine
// defaults here unless EngineConfig overrides it.
var Default = NewRegistry()

func seriesKey(name string, labels []Label) string {
	if len(labels) == 0 {
		return name
	}
	var b strings.Builder
	b.WriteString(name)
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteString(`="`)
		b.WriteString(l.Value)
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func (r *Registry) lookup(name string, labels []Label, kind metricKind) *entry {
	key := seriesKey(name, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	if e, ok := r.index[key]; ok {
		if e.kind != kind {
			panic(fmt.Sprintf("telemetry: %s registered as %s, requested as %s", key, e.kind, kind))
		}
		return e
	}
	e := &entry{name: name, labels: append([]Label(nil), labels...), kind: kind}
	switch kind {
	case kindCounter:
		e.c = &Counter{}
	case kindGauge:
		e.g = &Gauge{}
	case kindHistogram:
		e.h = &Histogram{}
	}
	r.entries = append(r.entries, e)
	r.index[key] = e
	return e
}

// Counter returns the counter registered under name+labels, creating it on
// first use.
func (r *Registry) Counter(name string, labels ...Label) *Counter {
	return r.lookup(name, labels, kindCounter).c
}

// Gauge returns the gauge registered under name+labels, creating it on first
// use.
func (r *Registry) Gauge(name string, labels ...Label) *Gauge {
	return r.lookup(name, labels, kindGauge).g
}

// Histogram returns the histogram registered under name+labels, creating it
// on first use.
func (r *Registry) Histogram(name string, labels ...Label) *Histogram {
	return r.lookup(name, labels, kindHistogram).h
}

// MetricSnapshot is one series' point-in-time state, JSON-serializable for
// the bench report and the /trace-adjacent tooling.
type MetricSnapshot struct {
	Name   string            `json:"name"`
	Labels map[string]string `json:"labels,omitempty"`
	Kind   string            `json:"kind"`
	// Value carries counter and gauge readings.
	Value int64 `json:"value,omitempty"`
	// Count/Sum/Buckets carry histogram state; Buckets maps each non-empty
	// bucket's upper bound (decimal, "+Inf" for the last) to its count.
	Count   uint64            `json:"count,omitempty"`
	Sum     uint64            `json:"sum,omitempty"`
	Buckets map[string]uint64 `json:"buckets,omitempty"`
}

// Snapshot captures every registered series in registration order.
func (r *Registry) Snapshot() []MetricSnapshot {
	r.mu.Lock()
	entries := append([]*entry(nil), r.entries...)
	r.mu.Unlock()
	out := make([]MetricSnapshot, 0, len(entries))
	for _, e := range entries {
		s := MetricSnapshot{Name: e.name, Kind: e.kind.String()}
		if len(e.labels) > 0 {
			s.Labels = make(map[string]string, len(e.labels))
			for _, l := range e.labels {
				s.Labels[l.Key] = l.Value
			}
		}
		switch e.kind {
		case kindCounter:
			s.Value = int64(e.c.Value())
		case kindGauge:
			s.Value = e.g.Value()
		case kindHistogram:
			s.Count = e.h.Count()
			s.Sum = e.h.Sum()
			s.Buckets = make(map[string]uint64)
			for i := 0; i < HistBuckets; i++ {
				if n := e.h.buckets[i].Load(); n > 0 {
					s.Buckets[bucketLabel(i)] = n
				}
			}
		}
		out = append(out, s)
	}
	return out
}

func bucketLabel(i int) string {
	if i >= HistBuckets-1 {
		return "+Inf"
	}
	return fmt.Sprintf("%d", BucketBound(i))
}

// WriteProm renders the registry in the Prometheus text exposition format
// (hand-rolled; counters get _total-as-registered names, histograms emit
// cumulative _bucket/_sum/_count series). Series sharing a metric name are
// grouped under one # TYPE line as the format requires.
func (r *Registry) WriteProm(w io.Writer) error {
	r.mu.Lock()
	entries := append([]*entry(nil), r.entries...)
	r.mu.Unlock()

	byName := make(map[string][]*entry)
	var order []string
	for _, e := range entries {
		if _, ok := byName[e.name]; !ok {
			order = append(order, e.name)
		}
		byName[e.name] = append(byName[e.name], e)
	}
	sort.Strings(order)

	for _, name := range order {
		group := byName[name]
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", name, group[0].kind); err != nil {
			return err
		}
		for _, e := range group {
			if err := writePromEntry(w, e); err != nil {
				return err
			}
		}
	}
	return nil
}

func writePromEntry(w io.Writer, e *entry) error {
	switch e.kind {
	case kindCounter:
		_, err := fmt.Fprintf(w, "%s %d\n", seriesKey(e.name, e.labels), e.c.Value())
		return err
	case kindGauge:
		_, err := fmt.Fprintf(w, "%s %d\n", seriesKey(e.name, e.labels), e.g.Value())
		return err
	case kindHistogram:
		var cum uint64
		for i := 0; i < HistBuckets; i++ {
			cum += e.h.buckets[i].Load()
			le := bucketLabel(i)
			bl := append(append([]Label(nil), e.labels...), L("le", le))
			if _, err := fmt.Fprintf(w, "%s %d\n", seriesKey(e.name+"_bucket", bl), cum); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s %d\n", seriesKey(e.name+"_sum", e.labels), e.h.Sum()); err != nil {
			return err
		}
		_, err := fmt.Fprintf(w, "%s %d\n", seriesKey(e.name+"_count", e.labels), e.h.Count())
		return err
	}
	return nil
}
