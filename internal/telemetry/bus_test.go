package telemetry

import (
	"sync"
	"testing"
	"time"
)

func TestBusRingSnapshot(t *testing.T) {
	b := NewBus[int](3)
	for i := 1; i <= 5; i++ {
		b.Publish(i)
	}
	got := b.Snapshot()
	if len(got) != 3 || got[0] != 3 || got[1] != 4 || got[2] != 5 {
		t.Fatalf("snapshot = %v, want [3 4 5]", got)
	}
	if b.Total() != 5 || b.Len() != 3 {
		t.Fatalf("total=%d len=%d", b.Total(), b.Len())
	}
}

func TestBusFanOut(t *testing.T) {
	b := NewBus[string](8)
	s1 := b.Subscribe(4)
	s2 := b.Subscribe(4)
	defer s1.Close()
	defer s2.Close()
	b.Publish("x")
	for _, s := range []*Sub[string]{s1, s2} {
		select {
		case v := <-s.C:
			if v != "x" {
				t.Fatalf("got %q", v)
			}
		case <-time.After(time.Second):
			t.Fatal("fan-out did not deliver")
		}
	}
}

func TestBusDropsWhenSubscriberFull(t *testing.T) {
	b := NewBus[int](8)
	s := b.Subscribe(1)
	defer s.Close()
	b.Publish(1) // fills the buffer
	b.Publish(2) // dropped
	b.Publish(3) // dropped
	if s.Dropped() != 2 || b.Dropped() != 2 {
		t.Fatalf("sub dropped=%d bus dropped=%d, want 2/2", s.Dropped(), b.Dropped())
	}
	if v := <-s.C; v != 1 {
		t.Fatalf("delivered %d, want 1", v)
	}
	// Ring still retains everything regardless of subscriber slowness.
	if got := b.Snapshot(); len(got) != 3 {
		t.Fatalf("ring len = %d, want 3", len(got))
	}
}

func TestBusCloseIdempotentAndDetaches(t *testing.T) {
	b := NewBus[int](4)
	s := b.Subscribe(1)
	s.Close()
	s.Close() // must not panic
	b.Publish(1)
	if _, ok := <-s.C; ok {
		t.Fatal("closed sub channel must be drained/closed")
	}
}

func TestBusPublishNeverBlocks(t *testing.T) {
	b := NewBus[int](4)
	_ = b.Subscribe(1) // never read
	done := make(chan struct{})
	go func() {
		for i := 0; i < 10000; i++ {
			b.Publish(i)
		}
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Publish blocked on a slow subscriber")
	}
}

func TestBusConcurrent(t *testing.T) {
	b := NewBus[int](64)
	s := b.Subscribe(1024)
	var recv sync.WaitGroup
	recv.Add(1)
	var n int
	go func() {
		defer recv.Done()
		for range s.C {
			n++
		}
	}()
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 250; i++ {
				b.Publish(i)
			}
		}()
	}
	wg.Wait()
	s.Close()
	recv.Wait()
	if b.Total() != 1000 {
		t.Fatalf("total = %d, want 1000", b.Total())
	}
	if uint64(n)+s.Dropped() != 1000 {
		t.Fatalf("delivered %d + dropped %d != 1000", n, s.Dropped())
	}
}

func BenchmarkBusPublish(b *testing.B) {
	bus := NewBus[int](4096)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		bus.Publish(i)
	}
}
