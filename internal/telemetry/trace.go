package telemetry

import (
	crand "crypto/rand"
	"encoding/binary"
	"sync"
	"sync/atomic"
)

// Span is one timed hop of a batch's journey through the pipeline. Trace is
// the batch-scoped TraceID minted at Submit and carried through the wire
// header; Batch is the engine-assigned batch ID; Stage is -1 for spans that
// are not stage-scoped (batch, variant-compute on the variant side); Variant
// is empty for monitor-side aggregate spans; Replica names the cluster node
// that recorded the span — set by the router when merging a replica's
// harvested spans into its own ring, empty for spans recorded in-process.
// Times are UnixNano so the ring holds no pointers.
type Span struct {
	Trace   uint64 `json:"trace"`
	Batch   uint64 `json:"batch"`
	Name    string `json:"name"`
	Stage   int    `json:"stage"`
	Variant string `json:"variant,omitempty"`
	Replica string `json:"replica,omitempty"`
	Start   int64  `json:"start_ns"`
	End     int64  `json:"end_ns"`
}

// Tracer is a fixed-capacity span ring. Record is a mutex-guarded copy into
// pre-allocated storage — no allocation per span — and a no-op for zero trace
// IDs (the disabled sentinel) so untraced batches cost one branch.
type Tracer struct {
	mu    sync.Mutex
	ring  []Span
	n     int // valid spans, == len(ring) once wrapped
	pos   int // next write index
	total uint64
}

// NewTracer returns a tracer retaining the most recent capacity spans.
func NewTracer(capacity int) *Tracer {
	if capacity < 1 {
		capacity = 1
	}
	return &Tracer{ring: make([]Span, capacity)}
}

// DefaultTracer is the process-wide span ring, served by /trace. In-process
// variants (the facade's default deployment) record their compute spans here
// too, so a single snapshot sees the full end-to-end timeline.
var DefaultTracer = NewTracer(8192)

// Record stores one finished span. Nil tracers, zero trace IDs, and disabled
// telemetry all drop the span without touching the ring.
func (t *Tracer) Record(s Span) {
	if t == nil || s.Trace == 0 || !Enabled() {
		return
	}
	t.mu.Lock()
	t.ring[t.pos] = s
	t.pos++
	if t.pos == len(t.ring) {
		t.pos = 0
	}
	if t.n < len(t.ring) {
		t.n++
	}
	t.total++
	t.mu.Unlock()
}

// Total returns the number of spans ever recorded (including evicted ones).
func (t *Tracer) Total() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.total
}

// Snapshot returns the retained spans, oldest first.
func (t *Tracer) Snapshot() []Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Span, 0, t.n)
	start := t.pos - t.n
	if start < 0 {
		start += len(t.ring)
	}
	for i := 0; i < t.n; i++ {
		out = append(out, t.ring[(start+i)%len(t.ring)])
	}
	return out
}

// Dropped returns how many recorded spans have been evicted from the ring —
// the tracer's loss count, surfaced as a metric so operators can tell when
// -trace-ring is undersized for the traffic.
func (t *Tracer) Dropped() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.total - uint64(t.n)
}

// SpansFor returns the retained spans with the given trace ID, oldest first.
func (t *Tracer) SpansFor(trace uint64) []Span {
	all := t.Snapshot()
	out := all[:0]
	for _, s := range all {
		if s.Trace == trace {
			out = append(out, s)
		}
	}
	return out
}

// SpansForRecent returns up to maxSpans retained spans with the given trace
// ID, scanning only the most recent maxScan ring entries (non-positive scans
// everything). A just-completed batch's spans live at the young end of the
// ring, so replica-side span harvesting — which runs once per delivered batch
// — pays a cost bounded by the scan window, not the ring capacity. Results
// are oldest first, like SpansFor.
func (t *Tracer) SpansForRecent(trace uint64, maxScan, maxSpans int) []Span {
	if t == nil || trace == 0 || maxSpans == 0 {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	n := t.n
	if maxScan > 0 && n > maxScan {
		n = maxScan
	}
	var out []Span
	for i := 0; i < n; i++ {
		idx := t.pos - 1 - i
		if idx < 0 {
			idx += len(t.ring)
		}
		if t.ring[idx].Trace == trace {
			out = append(out, t.ring[idx])
			if maxSpans > 0 && len(out) == maxSpans {
				break
			}
		}
	}
	// The scan walked newest-to-oldest; flip to the canonical order.
	for i, j := 0, len(out)-1; i < j; i, j = i+1, j-1 {
		out[i], out[j] = out[j], out[i]
	}
	return out
}

// traceBase is a random per-process base so trace IDs from different monitor
// processes don't collide in merged logs; traceSeq disambiguates within a
// process.
var (
	traceBase uint64
	traceSeq  atomic.Uint64
	traceOnce sync.Once
)

// NewTraceID mints a process-unique, never-zero trace ID, or 0 when telemetry
// is disabled (the zero ID disables all downstream span recording for the
// batch, so disabled runs carry no tracing cost past this one branch).
func NewTraceID() uint64 {
	if !Enabled() {
		return 0
	}
	traceOnce.Do(func() {
		var b [8]byte
		if _, err := crand.Read(b[:]); err == nil {
			traceBase = binary.LittleEndian.Uint64(b[:])
		}
	})
	id := traceBase + traceSeq.Add(1)
	if id == 0 {
		id = traceSeq.Add(1)
	}
	return id
}
