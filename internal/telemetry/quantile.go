package telemetry

import "math"

// HistState is a point-in-time copy of one histogram's buckets, the read-side
// counterpart of Histogram.Observe. Controllers that steer on latency
// percentiles snapshot a histogram every epoch and difference consecutive
// snapshots (Sub) so their quantiles describe the last epoch's traffic, not
// the process lifetime.
type HistState struct {
	Buckets [HistBuckets]uint64
	Count   uint64
	Sum     uint64
}

// State snapshots the histogram. Loads are per-bucket atomic (not a global
// cross-bucket atomic snapshot), which is fine for control loops: a torn read
// misattributes at most the handful of observations racing the snapshot.
func (h *Histogram) State() HistState {
	var s HistState
	if h == nil {
		return s
	}
	for i := range h.buckets {
		n := h.buckets[i].Load()
		s.Buckets[i] = n
		s.Count += n
	}
	s.Sum = h.sum.Load()
	return s
}

// Sub returns the observations recorded between prev and s (s must be the
// later snapshot of the same histogram; counts are monotone, so saturating
// subtraction guards a stale prev).
func (s HistState) Sub(prev HistState) HistState {
	var d HistState
	for i := range s.Buckets {
		if s.Buckets[i] > prev.Buckets[i] {
			d.Buckets[i] = s.Buckets[i] - prev.Buckets[i]
			d.Count += d.Buckets[i]
		}
	}
	if s.Sum > prev.Sum {
		d.Sum = s.Sum - prev.Sum
	}
	return d
}

// Mean returns the average observed value, or 0 with no observations.
func (s HistState) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.Sum) / float64(s.Count)
}

// FractionAbove estimates the fraction of observations whose value exceeded
// bound, counting every bucket whose full range lies above it — a
// conservative floor, off by at most the one straddling bucket. The SLO
// burn-rate gauges divide this (fraction of requests over the tenant's
// latency objective) by the error budget. Returns 0 with no observations.
func (s HistState) FractionAbove(bound uint64) float64 {
	if s.Count == 0 {
		return 0
	}
	var above uint64
	for i := 1; i < HistBuckets; i++ { // bucket 0 is exactly 0, never above
		if n := s.Buckets[i]; n > 0 && uint64(1)<<uint(i-1) > bound {
			above += n
		}
	}
	return float64(above) / float64(s.Count)
}

// Quantile approximates the q-quantile (q in [0,1]) from the log2 buckets by
// linear interpolation inside the bucket holding the target rank. The error
// is bounded by the bucket width (at most 2x), which is enough resolution to
// steer a control loop — the loops clamp and hysteresize anyway. Returns 0
// with no observations.
func (s HistState) Quantile(q float64) uint64 {
	if s.Count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := uint64(math.Ceil(q * float64(s.Count)))
	if rank == 0 {
		rank = 1
	}
	var cum uint64
	for i := 0; i < HistBuckets; i++ {
		n := s.Buckets[i]
		if n == 0 {
			continue
		}
		if cum+n < rank {
			cum += n
			continue
		}
		// Bucket i holds values in [lo, hi]: bucket 0 is exactly 0, bucket
		// i>0 spans [2^(i-1), 2^i - 1]. The last bucket is unbounded; report
		// its lower edge (a conservative floor).
		if i == 0 {
			return 0
		}
		lo := uint64(1) << uint(i-1)
		if i >= HistBuckets-1 {
			return lo
		}
		hi := BucketBound(i)
		frac := float64(rank-cum) / float64(n)
		return lo + uint64(frac*float64(hi-lo))
	}
	return BucketBound(HistBuckets - 2)
}
