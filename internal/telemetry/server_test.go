package telemetry

import (
	"bufio"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func TestMuxMetrics(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("up_total").Add(3)
	mux := NewMux(reg, NewTracer(8))
	srv := httptest.NewServer(mux)
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("content-type = %q", ct)
	}
	body, _ := io.ReadAll(resp.Body)
	if !strings.Contains(string(body), "up_total 3") {
		t.Fatalf("metrics body missing series:\n%s", body)
	}
}

func TestMuxTrace(t *testing.T) {
	tr := NewTracer(8)
	tr.Record(Span{Trace: 11, Batch: 1, Name: "dispatch", Stage: 0})
	tr.Record(Span{Trace: 22, Batch: 2, Name: "gather", Stage: 0})
	mux := NewMux(NewRegistry(), tr)
	srv := httptest.NewServer(mux)
	defer srv.Close()

	var spans []Span
	resp, err := http.Get(srv.URL + "/trace")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&spans); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(spans) != 2 {
		t.Fatalf("spans = %d, want 2", len(spans))
	}

	resp, err = http.Get(srv.URL + "/trace?trace=22")
	if err != nil {
		t.Fatal(err)
	}
	spans = nil
	if err := json.NewDecoder(resp.Body).Decode(&spans); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(spans) != 1 || spans[0].Name != "gather" {
		t.Fatalf("filtered spans = %+v", spans)
	}

	resp, err = http.Get(srv.URL + "/trace?trace=bogus")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad trace id should 400, got %d", resp.StatusCode)
	}
}

func TestMuxPprof(t *testing.T) {
	mux := NewMux(NewRegistry(), NewTracer(8))
	srv := httptest.NewServer(mux)
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("pprof index status = %d", resp.StatusCode)
	}
}

func TestSSEReplaysAndStreams(t *testing.T) {
	bus := NewBus[map[string]string](8)
	bus.Publish(map[string]string{"k": "old"})
	srv := httptest.NewServer(SSE(bus))
	defer srv.Close()

	resp, err := http.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("content-type = %q", ct)
	}

	lines := make(chan string, 16)
	go func() {
		sc := bufio.NewScanner(resp.Body)
		for sc.Scan() {
			if l := sc.Text(); strings.HasPrefix(l, "data: ") {
				lines <- strings.TrimPrefix(l, "data: ")
			}
		}
		close(lines)
	}()

	readLine := func() string {
		select {
		case l := <-lines:
			return l
		case <-time.After(3 * time.Second):
			t.Fatal("timed out waiting for SSE frame")
			return ""
		}
	}

	if l := readLine(); !strings.Contains(l, `"old"`) {
		t.Fatalf("replay frame = %q", l)
	}
	// Live publish after subscribe must stream through. The subscriber races
	// connection setup, so retry until the live frame lands.
	deadline := time.Now().Add(3 * time.Second)
	for {
		bus.Publish(map[string]string{"k": "live"})
		got := false
		select {
		case l := <-lines:
			got = strings.Contains(l, `"live"`) || got
		case <-time.After(100 * time.Millisecond):
		}
		if got || time.Now().After(deadline) {
			if !got {
				t.Fatal("live frame never arrived")
			}
			break
		}
	}
}
