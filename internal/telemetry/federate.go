package telemetry

import (
	"io"
	"sort"
	"strconv"
)

// WritePromSnapshots renders a remote registry's Snapshot in the Prometheus
// text exposition format with extra labels appended to every series — the
// metrics-federation path: the cluster router polls each replica's registry
// over the status channel as []MetricSnapshot and /metrics/cluster re-renders
// the snapshots tagged replica="<id>" alongside its own local series.
//
// Snapshots keep only non-empty histogram buckets, so the rendered _bucket
// series are sparse; the cumulative counts and the mandatory +Inf bucket are
// reconstructed here, which is all a quantile-over-le consumer needs.
func WritePromSnapshots(w io.Writer, snaps []MetricSnapshot, extra ...Label) error {
	byName := make(map[string][]*MetricSnapshot)
	var order []string
	for i := range snaps {
		s := &snaps[i]
		if _, ok := byName[s.Name]; !ok {
			order = append(order, s.Name)
		}
		byName[s.Name] = append(byName[s.Name], s)
	}
	sort.Strings(order)

	var buf []byte
	for _, name := range order {
		group := byName[name]
		buf = append(buf[:0], "# TYPE "...)
		buf = append(buf, name...)
		buf = append(buf, ' ')
		buf = append(buf, group[0].Kind...)
		buf = append(buf, '\n')
		if _, err := w.Write(buf); err != nil {
			return err
		}
		for _, s := range group {
			if err := writeSnapshotEntry(w, s, extra); err != nil {
				return err
			}
		}
	}
	return nil
}

// snapshotLabels rebuilds a deterministic label list from the snapshot's map
// (sorted by key — the original registration order is not serialized) with
// the federation labels appended.
func snapshotLabels(s *MetricSnapshot, extra []Label) []Label {
	keys := make([]string, 0, len(s.Labels))
	for k := range s.Labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	labels := make([]Label, 0, len(keys)+len(extra)+1)
	for _, k := range keys {
		labels = append(labels, L(k, s.Labels[k]))
	}
	return append(labels, extra...)
}

func writeSnapshotEntry(w io.Writer, s *MetricSnapshot, extra []Label) error {
	labels := snapshotLabels(s, extra)
	line := func(name string, ls []Label, v uint64, signed int64, isSigned bool) error {
		out := []byte(seriesKey(name, ls))
		out = append(out, ' ')
		if isSigned {
			out = strconv.AppendInt(out, signed, 10)
		} else {
			out = strconv.AppendUint(out, v, 10)
		}
		out = append(out, '\n')
		_, err := w.Write(out)
		return err
	}
	switch s.Kind {
	case "histogram":
		// Sort the sparse bucket bounds numerically, +Inf last, and emit
		// cumulative counts as the format requires.
		bounds := make([]string, 0, len(s.Buckets))
		for b := range s.Buckets {
			if b != "+Inf" {
				bounds = append(bounds, b)
			}
		}
		sort.Slice(bounds, func(i, j int) bool {
			a, _ := strconv.ParseUint(bounds[i], 10, 64)
			b, _ := strconv.ParseUint(bounds[j], 10, 64)
			return a < b
		})
		var cum uint64
		for _, b := range bounds {
			cum += s.Buckets[b]
			if err := line(s.Name+"_bucket", append(labels[:len(labels):len(labels)], L("le", b)), cum, 0, false); err != nil {
				return err
			}
		}
		if err := line(s.Name+"_bucket", append(labels[:len(labels):len(labels)], L("le", "+Inf")), s.Count, 0, false); err != nil {
			return err
		}
		if err := line(s.Name+"_sum", labels, s.Sum, 0, false); err != nil {
			return err
		}
		return line(s.Name+"_count", labels, s.Count, 0, false)
	default: // counter, gauge
		return line(s.Name, labels, 0, s.Value, true)
	}
}
