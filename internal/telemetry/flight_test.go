package telemetry

import (
	"encoding/json"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

func flightWait(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("timeout waiting for %s", what)
}

func TestFlightTriggerFreezesAndCompletes(t *testing.T) {
	reg := NewRegistry()
	fr := NewFlightRecorder(FlightConfig{
		Interval: 2 * time.Millisecond, Window: 8, PostSamples: 3, Metrics: reg,
	})
	var v atomic.Int64
	v.Store(10)
	fr.AddSource("depth", v.Load)
	fr.Start()
	defer fr.Stop()

	time.Sleep(20 * time.Millisecond) // let the before-ring fill
	v.Store(42)
	fr.Trigger(FlightReasonFailover)
	flightWait(t, "incident completion", func() bool {
		incs := fr.Incidents()
		return len(incs) == 1 && incs[0].Complete
	})
	inc := fr.Incidents()[0]
	if inc.Reason != FlightReasonFailover {
		t.Fatalf("reason %q", inc.Reason)
	}
	if len(inc.Sources) != 1 || inc.Sources[0] != "depth" {
		t.Fatalf("sources %v", inc.Sources)
	}
	if inc.Interval != int64(2*time.Millisecond) {
		t.Fatalf("interval %d", inc.Interval)
	}
	if len(inc.Before) == 0 || len(inc.Before) > 8 {
		t.Fatalf("before-window %d samples, want 1..8", len(inc.Before))
	}
	if inc.Before[0].Values[0] != 10 {
		t.Fatalf("before sample %v, want pre-incident value 10", inc.Before[0].Values)
	}
	if len(inc.After) != 3 {
		t.Fatalf("after-window %d samples, want 3", len(inc.After))
	}
	for _, s := range inc.After {
		if s.Values[0] != 42 {
			t.Fatalf("after sample %v, want post-trigger value 42", s.Values)
		}
	}
	if n := reg.Counter(MetricFlightIncidents, L("reason", FlightReasonFailover)).Value(); n != 1 {
		t.Fatalf("incident counter %d, want 1", n)
	}
}

func TestFlightTriggerCoalescesWhileOpen(t *testing.T) {
	// An hour-long interval keeps the incident open for the whole test: the
	// sampler never ticks, so the after-window never fills.
	fr := NewFlightRecorder(FlightConfig{Interval: time.Hour, Window: 4, PostSamples: 2})
	fr.AddSource("x", func() int64 { return 1 })
	fr.Trigger(FlightReasonFailover)
	fr.Trigger(FlightReasonDissent) // storm: must coalesce, not open a second record
	fr.Note("operator mark")
	incs := fr.Incidents()
	if len(incs) != 1 {
		t.Fatalf("%d incidents, want 1 (second trigger must coalesce)", len(incs))
	}
	if incs[0].Complete {
		t.Fatal("incident complete without after-samples")
	}
	var sawTrigger, sawMark bool
	for _, n := range incs[0].Notes {
		switch n.Text {
		case "trigger: " + FlightReasonDissent:
			sawTrigger = true
		case "operator mark":
			sawMark = true
		}
	}
	if !sawTrigger || !sawMark {
		t.Fatalf("notes %v missing coalesced trigger or open-incident note", incs[0].Notes)
	}
}

func TestFlightNotesPreTriggerRing(t *testing.T) {
	fr := NewFlightRecorder(FlightConfig{Interval: time.Hour, MaxNotes: 2})
	fr.Note("first")  // evicted by the ring bound
	fr.Note("second") //
	fr.Note("third")  // retained: ["second", "third"]
	fr.Trigger(FlightReasonDemotion)
	inc := fr.Incidents()[0]
	if len(inc.Notes) != 2 || inc.Notes[0].Text != "second" || inc.Notes[1].Text != "third" {
		t.Fatalf("notes %v, want the 2 newest pre-trigger annotations", inc.Notes)
	}
}

func TestFlightIncidentEviction(t *testing.T) {
	fr := NewFlightRecorder(FlightConfig{
		Interval: time.Millisecond, Window: 2, PostSamples: 1, MaxIncidents: 2,
	})
	fr.AddSource("x", func() int64 { return 0 })
	fr.Start()
	defer fr.Stop()
	for _, reason := range []string{"one", "two", "three"} {
		fr.Trigger(reason)
		flightWait(t, "incident "+reason+" completion", func() bool {
			incs := fr.Incidents()
			return len(incs) > 0 && incs[len(incs)-1].Reason == reason && incs[len(incs)-1].Complete
		})
	}
	incs := fr.Incidents()
	if len(incs) != 2 || incs[0].Reason != "two" || incs[1].Reason != "three" {
		got := make([]string, len(incs))
		for i := range incs {
			got[i] = incs[i].Reason
		}
		t.Fatalf("retained incidents %v, want [two three]", got)
	}
}

func TestFlightNilReceiverSafe(t *testing.T) {
	var fr *FlightRecorder
	fr.AddSource("x", func() int64 { return 0 })
	fr.Start()
	fr.Note("n")
	fr.Trigger("r")
	fr.Stop()
	if fr.Incidents() != nil {
		t.Fatal("nil recorder returned incidents")
	}
	rr := httptest.NewRecorder()
	fr.Handler().ServeHTTP(rr, httptest.NewRequest("GET", "/debug/flight", nil))
	if body := strings.TrimSpace(rr.Body.String()); body != "{}" {
		t.Fatalf("nil handler body %q", body)
	}
}

func TestFlightDisabledRecordsNothing(t *testing.T) {
	SetEnabled(false)
	defer SetEnabled(true)
	fr := NewFlightRecorder(FlightConfig{Interval: time.Millisecond, PostSamples: 1})
	fr.AddSource("x", func() int64 { return 1 })
	fr.Start()
	defer fr.Stop()
	fr.Note("dropped")
	fr.Trigger(FlightReasonSLOBreach)
	time.Sleep(10 * time.Millisecond)
	if incs := fr.Incidents(); len(incs) != 0 {
		t.Fatalf("disabled recorder kept %d incidents", len(incs))
	}
	// Re-enabled, the same recorder works and the pre-toggle note is gone.
	SetEnabled(true)
	fr.Trigger(FlightReasonSLOBreach)
	flightWait(t, "post-enable incident", func() bool {
		incs := fr.Incidents()
		return len(incs) == 1 && incs[0].Complete
	})
	for _, n := range fr.Incidents()[0].Notes {
		if n.Text == "dropped" {
			t.Fatal("note recorded while disabled")
		}
	}
}

func TestFlightHandlerJSON(t *testing.T) {
	fr := NewFlightRecorder(FlightConfig{Interval: time.Hour})
	fr.AddSource("queue", func() int64 { return 5 })
	fr.Trigger(FlightReasonSLOBreach)
	rr := httptest.NewRecorder()
	fr.Handler().ServeHTTP(rr, httptest.NewRequest("GET", "/debug/flight", nil))
	if ct := rr.Header().Get("Content-Type"); ct != "application/json" {
		t.Fatalf("content type %q", ct)
	}
	var v struct {
		Sources    []string   `json:"sources"`
		IntervalNs int64      `json:"interval_ns"`
		Window     int        `json:"window"`
		Incidents  []Incident `json:"incidents"`
	}
	if err := json.Unmarshal(rr.Body.Bytes(), &v); err != nil {
		t.Fatalf("decode /debug/flight: %v", err)
	}
	if len(v.Sources) != 1 || v.Sources[0] != "queue" {
		t.Fatalf("sources %v", v.Sources)
	}
	if v.Window != 64 { // config default
		t.Fatalf("window %d", v.Window)
	}
	if len(v.Incidents) != 1 || v.Incidents[0].Reason != FlightReasonSLOBreach {
		t.Fatalf("incidents %+v", v.Incidents)
	}
}

func TestFlightAddSourceAfterStartIgnored(t *testing.T) {
	fr := NewFlightRecorder(FlightConfig{Interval: time.Millisecond, PostSamples: 1})
	fr.AddSource("early", func() int64 { return 1 })
	fr.Start()
	defer fr.Stop()
	fr.AddSource("late", func() int64 { return 2 }) // would tear sample shape
	fr.Trigger("x")
	flightWait(t, "incident completion", func() bool {
		incs := fr.Incidents()
		return len(incs) == 1 && incs[0].Complete
	})
	inc := fr.Incidents()[0]
	if len(inc.Sources) != 1 || inc.Sources[0] != "early" {
		t.Fatalf("sources %v, want only the pre-Start registration", inc.Sources)
	}
	if len(inc.After[0].Values) != 1 {
		t.Fatalf("sample width %d, want 1", len(inc.After[0].Values))
	}
}
