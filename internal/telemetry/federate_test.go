package telemetry

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// TestWritePromSnapshots renders a snapshot the way /metrics/cluster does —
// after a JSON round-trip, since federation ships []MetricSnapshot inside a
// MetricsReport — and checks the relabelled exposition output, including the
// sparse histogram's reconstructed cumulative buckets.
func TestWritePromSnapshots(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("jobs_total", L("kind", "a")).Add(3)
	reg.Gauge("depth").Set(-2)
	h := reg.Histogram("lat_ns")
	h.Observe(0)
	h.Observe(1)
	h.Observe(3)
	h.Observe(1 << 30)

	blob, err := json.Marshal(reg.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	var snaps []MetricSnapshot
	if err := json.Unmarshal(blob, &snaps); err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := WritePromSnapshots(&buf, snaps, L("replica", "r1")); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# TYPE jobs_total counter",
		`jobs_total{kind="a",replica="r1"} 3`,
		"# TYPE depth gauge",
		`depth{replica="r1"} -2`,
		"# TYPE lat_ns histogram",
		`lat_ns_bucket{replica="r1",le="0"} 1`,
		`lat_ns_bucket{replica="r1",le="1"} 2`,
		`lat_ns_bucket{replica="r1",le="3"} 3`,
		`lat_ns_bucket{replica="r1",le="+Inf"} 4`,
		`lat_ns_count{replica="r1"} 4`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
	// Cumulative bucket counts must be monotone in le order — the line for
	// le="3" already proved reconstruction; make sure no raw (non-cumulative)
	// counts leaked for the sparse middle bucket.
	if strings.Contains(out, `lat_ns_bucket{replica="r1",le="3"} 1`) {
		t.Fatalf("bucket counts not cumulative:\n%s", out)
	}
}

func TestWritePromSnapshotsEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := WritePromSnapshots(&buf, nil, L("replica", "r1")); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != 0 {
		t.Fatalf("empty snapshot rendered %q", buf.String())
	}
}

func TestTracerDropped(t *testing.T) {
	tr := NewTracer(4)
	for i := 0; i < 7; i++ {
		tr.Record(Span{Trace: uint64(i + 1)})
	}
	if got := tr.Total(); got != 7 {
		t.Fatalf("total %d, want 7", got)
	}
	if got := tr.Dropped(); got != 3 {
		t.Fatalf("dropped %d, want 3 (capacity 4, recorded 7)", got)
	}
	var nilT *Tracer
	if nilT.Dropped() != 0 || nilT.Total() != 0 {
		t.Fatal("nil tracer not zero-valued")
	}
}

func TestSpansForRecentScanWindow(t *testing.T) {
	tr := NewTracer(16)
	tr.Record(Span{Trace: 7, Name: "old"})
	for i := 0; i < 5; i++ {
		tr.Record(Span{Trace: 9, Name: "young"})
	}
	// A scan bounded to the youngest 3 entries never reaches trace 7...
	if got := tr.SpansForRecent(7, 3, 8); len(got) != 0 {
		t.Fatalf("bounded scan found %d spans, want 0", len(got))
	}
	// ...an unbounded scan does.
	if got := tr.SpansForRecent(7, 0, 8); len(got) != 1 || got[0].Name != "old" {
		t.Fatalf("unbounded scan %v, want the one old span", got)
	}
}

func TestSpansForRecentCapAndOrder(t *testing.T) {
	tr := NewTracer(16)
	names := []string{"s0", "s1", "s2", "s3", "s4"}
	for _, n := range names {
		tr.Record(Span{Trace: 9, Name: n})
	}
	// Unbounded: all spans, oldest first.
	got := tr.SpansForRecent(9, 0, 10)
	if len(got) != 5 {
		t.Fatalf("%d spans, want 5", len(got))
	}
	for i, s := range got {
		if s.Name != names[i] {
			t.Fatalf("span %d = %q, want %q (oldest-first order)", i, s.Name, names[i])
		}
	}
	// Capped: the scan walks newest-to-oldest, so the cap keeps the youngest
	// spans — still returned oldest-first.
	got = tr.SpansForRecent(9, 0, 2)
	if len(got) != 2 || got[0].Name != "s3" || got[1].Name != "s4" {
		t.Fatalf("capped scan %v, want [s3 s4]", got)
	}
	// Zero maxSpans and zero trace are both empty, not panics.
	if tr.SpansForRecent(9, 0, 0) != nil || tr.SpansForRecent(0, 0, 4) != nil {
		t.Fatal("degenerate queries returned spans")
	}
	var nilT *Tracer
	if nilT.SpansForRecent(9, 0, 4) != nil {
		t.Fatal("nil tracer returned spans")
	}
}

func TestFractionAbove(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("x")
	h.Observe(0)
	h.Observe(1)
	h.Observe(1000)
	h.Observe(1_000_000)
	s := h.State()
	// Buckets are counted only when their whole range exceeds the bound:
	// 1000 sits in [512,1023] and 1e6 in [524288,1048575] — both above 100.
	if got := s.FractionAbove(100); got != 0.5 {
		t.Fatalf("FractionAbove(100) = %v, want 0.5", got)
	}
	// Above 0: everything but the exact-zero bucket.
	if got := s.FractionAbove(0); got != 0.75 {
		t.Fatalf("FractionAbove(0) = %v, want 0.75", got)
	}
	// A bound above every observation.
	if got := s.FractionAbove(1 << 40); got != 0 {
		t.Fatalf("FractionAbove(2^40) = %v, want 0", got)
	}
	var empty HistState
	if got := empty.FractionAbove(0); got != 0 {
		t.Fatalf("empty FractionAbove = %v, want 0", got)
	}
}
