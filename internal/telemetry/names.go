package telemetry

// Canonical metric names. They live here — not in the packages that emit
// them — so live runs (internal/monitor) and simulated runs
// (internal/pipesim) publish identical series, and the bench suite can
// assert on stable names.
const (
	// Engine (monitor) series.
	MetricEngineBatches        = "mvtee_engine_batches_total"
	MetricEngineBatchErrors    = "mvtee_engine_batch_errors_total"
	MetricEngineBatchNs        = "mvtee_engine_batch_latency_ns"
	MetricEngineQueueDepth     = "mvtee_engine_stage_queue_depth"
	MetricEngineWindowOccupied = "mvtee_engine_stage_window_occupancy"
	MetricEngineGatherNs       = "mvtee_engine_gather_ns"
	MetricEngineForwards       = "mvtee_engine_forwards_total"
	MetricEngineLadderRung     = "mvtee_engine_ladder_rung"
	MetricEngineVotes          = "mvtee_engine_votes_total"

	// Secure channel series.
	MetricChanBytesSent  = "mvtee_chan_bytes_sent_total"
	MetricChanBytesRecv  = "mvtee_chan_bytes_recv_total"
	MetricChanFramesSent = "mvtee_chan_frames_sent_total"
	MetricChanFramesRecv = "mvtee_chan_frames_recv_total"
	MetricChanSealNs     = "mvtee_chan_seal_ns"
	MetricChanOpenNs     = "mvtee_chan_open_ns"
	MetricChanRetries    = "mvtee_chan_retries_total"
	MetricChanRedials    = "mvtee_chan_redials_total"

	// Worker pool series.
	MetricPoolRegions         = "mvtee_pool_regions_total"
	MetricPoolParallelRegions = "mvtee_pool_parallel_regions_total"
	MetricPoolOffers          = "mvtee_pool_offers_total"
	MetricPoolAccepts         = "mvtee_pool_accepts_total"

	// Cross-validation series.
	MetricCheckVotes           = "mvtee_check_votes_total"
	MetricCheckPairDisagree    = "mvtee_check_pair_disagree_total"
	MetricCheckDivergenceScore = "mvtee_check_divergence_score"

	// TEE OS / enclave series.
	MetricTeeosSyscalls        = "mvtee_teeos_syscalls_total"
	MetricTeeosSyscallsBlocked = "mvtee_teeos_syscalls_blocked_total"
	MetricTeeosReads           = "mvtee_teeos_reads_total"
	MetricEnclaveEPCBytes      = "mvtee_enclave_epc_bytes"
	MetricEnclaveLaunches      = "mvtee_enclave_launches_total"
	MetricEnclaveGrows         = "mvtee_enclave_grows_total"

	// Event bus series. Dropped is a gauge mirroring the bus's cumulative
	// fan-out drop count (updated at publish time).
	MetricEventsPublished = "mvtee_events_published_total"
	MetricEventsDropped   = "mvtee_events_dropped"

	// Serving front-end series (internal/serve). Requests, queue depth and
	// latency carry a tenant label; admission verdicts carry a verdict label
	// (AdmitOutcome*); flushes carry a reason label (FlushReason*).
	MetricServeRequests    = "mvtee_serve_requests_total"
	MetricServeAdmission   = "mvtee_serve_admission_total"
	MetricServeQueueDepth  = "mvtee_serve_queue_depth"
	MetricServeQueueGlobal = "mvtee_serve_queue_depth_global"
	MetricServeBatchFill   = "mvtee_serve_batch_fill"
	MetricServeFlushes     = "mvtee_serve_batch_flush_total"
	MetricServeLatencyNs   = "mvtee_serve_request_latency_ns"
	MetricServeShedLevel   = "mvtee_serve_shed_level"
	MetricServeInflight    = "mvtee_serve_inflight_batches"
	// MetricServeProto counts HTTP requests by negotiated request codec
	// (proto label: "json" | "binary").
	MetricServeProto = "mvtee_serve_proto_total"

	// Control-plane series (internal/control). Decisions carry loop
	// (ControlLoop*) and direction ("up" | "down") labels; the knob gauges
	// mirror each actuator's current setting so operators can watch the
	// controller steer; breaches carry a tenant label.
	MetricControlEpochs         = "mvtee_control_epochs_total"
	MetricControlDecisions      = "mvtee_control_decisions_total"
	MetricControlBatchMax       = "mvtee_control_batch_max"
	MetricControlBatchDelayNs   = "mvtee_control_batch_delay_ns"
	MetricControlInflightWindow = "mvtee_control_inflight_window"
	MetricControlSpareTarget    = "mvtee_control_spare_target"
	MetricControlShedFloor      = "mvtee_control_shed_floor"
	MetricControlTenantWeight   = "mvtee_control_tenant_weight"
	MetricControlSLOBreaches    = "mvtee_control_slo_breach_total"

	// Cluster tier series (internal/cluster). Per-replica series carry a
	// replica label; forward bytes carry a plane label (ForwardPlane*) so
	// the digest-vs-tensor cross-node cost split is directly observable;
	// digest votes carry a verdict label (DigestVote*).
	MetricClusterReplicas     = "mvtee_cluster_replicas"
	MetricClusterReplicaUp    = "mvtee_cluster_replica_up"
	MetricClusterInflight     = "mvtee_cluster_replica_inflight"
	MetricClusterReplicaRung  = "mvtee_cluster_replica_ladder_rung"
	MetricClusterBatches      = "mvtee_cluster_batches_total"
	MetricClusterFailovers    = "mvtee_cluster_failovers_total"
	MetricClusterDigestVotes  = "mvtee_cluster_digest_votes_total"
	MetricClusterStageDissent = "mvtee_cluster_stage_digest_mismatch_total"
	MetricClusterFwdBytes     = "mvtee_cluster_forward_bytes_total"
	MetricClusterRouteNs      = "mvtee_cluster_route_latency_ns"

	// Cluster observability plane (trace federation + metrics federation).
	// Span reports are the replica->router span-harvest frames; span bytes
	// are accounted separately from MetricClusterFwdBytes so observability
	// traffic never skews the digest-vs-tensor forwarding cost split.
	MetricClusterSpanReports = "mvtee_cluster_span_reports_total"
	MetricClusterSpansMerged = "mvtee_cluster_spans_merged_total"
	MetricClusterSpanBytes   = "mvtee_cluster_span_report_bytes_total"
	MetricClusterMetricPolls = "mvtee_cluster_metric_polls_total"

	// Tracer series: gauges mirroring the span ring's cumulative recorded and
	// evicted counts (like MetricEventsDropped, refreshed at /metrics scrape).
	MetricTraceSpansRecorded = "mvtee_trace_spans_recorded"
	MetricTraceSpansDropped  = "mvtee_trace_spans_dropped"

	// Flight recorder series: incidents carry a reason label (FlightReason*).
	MetricFlightIncidents = "mvtee_flight_incidents_total"

	// Verifiable-transcript series (internal/transcript): leaves appended to
	// the Merkle log, hot-path events dropped on a full recorder channel
	// (each degrades one leaf, never stalls serving), and signed tree heads
	// published.
	MetricTranscriptLeaves  = "mvtee_transcript_leaves_total"
	MetricTranscriptDropped = "mvtee_transcript_dropped_total"
	MetricTranscriptHeads   = "mvtee_transcript_heads_total"

	// Derived SLO burn rate per tenant, in milli-units (1000 = burning the
	// error budget exactly as fast as it accrues), computed at /metrics/cluster
	// scrape time from the latency histogram delta since the previous scrape.
	MetricServeSLOBurnMilli = "mvtee_serve_slo_burn_rate_milli"
)

// Flight-recorder trigger reason label values for MetricFlightIncidents.
const (
	FlightReasonFailover    = "failover"
	FlightReasonDissent     = "dissent"
	FlightReasonReplicaDown = "replica_down"
	FlightReasonDemotion    = "ladder_demotion"
	FlightReasonSLOBreach   = "slo_breach"
)

// Forward plane label values for MetricClusterFwdBytes: input dispatch
// (identical in both forwarding modes), result shipping (leader results plus
// follower full-tensor cross-checks), and the digest verification plane.
const (
	ForwardPlaneInput  = "input"
	ForwardPlaneResult = "result"
	ForwardPlaneDigest = "digest"
)

// Digest vote verdict label values for MetricClusterDigestVotes.
const (
	DigestVoteAgree   = "agree"
	DigestVoteDissent = "dissent"
	DigestVoteAbstain = "abstain"
)

// Control loop label values for MetricControlDecisions.
const (
	ControlLoopBatch    = "batch_window"
	ControlLoopInflight = "inflight_window"
	ControlLoopSpares   = "spares"
	ControlLoopSLO      = "tenant_slo"
	ControlLoopQueue    = "queue_depth"
)

// Admission verdict label values for MetricServeAdmission.
const (
	AdmitOutcomeAdmitted     = "admitted"
	AdmitOutcomeRejectTenant = "reject_tenant"
	AdmitOutcomeRejectGlobal = "reject_global"
	AdmitOutcomeShed         = "shed"
	AdmitOutcomeDraining     = "draining"
)

// Batch flush reason label values for MetricServeFlushes.
const (
	FlushReasonSize  = "size"
	FlushReasonTimer = "timer"
	FlushReasonDrain = "drain"
)

// Vote outcome label values for MetricEngineVotes.
const (
	VoteOutcomeOK          = "ok"
	VoteOutcomeDivergence  = "divergence"
	VoteOutcomeLateDissent = "late_dissent"
)
