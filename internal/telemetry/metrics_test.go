package telemetry

import (
	"bytes"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeNilSafe(t *testing.T) {
	var c *Counter
	c.Inc()
	c.Add(5)
	if c.Value() != 0 {
		t.Fatal("nil counter should read 0")
	}
	var g *Gauge
	g.Set(3)
	g.Add(-1)
	if g.Value() != 0 {
		t.Fatal("nil gauge should read 0")
	}
	var h *Histogram
	h.Observe(10)
	if h.Count() != 0 || h.Sum() != 0 {
		t.Fatal("nil histogram should read 0")
	}
}

func TestRegistryGetOrCreate(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("x_total")
	b := r.Counter("x_total")
	if a != b {
		t.Fatal("same name must return same counter")
	}
	l1 := r.Counter("x_total", L("k", "1"))
	l2 := r.Counter("x_total", L("k", "2"))
	if l1 == l2 || l1 == a {
		t.Fatal("distinct labels must be distinct series")
	}
	a.Inc()
	a.Add(2)
	if b.Value() != 3 {
		t.Fatalf("value = %d, want 3", b.Value())
	}
}

func TestRegistryKindMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("m")
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on kind mismatch")
		}
	}()
	r.Gauge("m")
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat_ns")
	// bits.Len64: 0 -> bucket 0, 1 -> 1, 2..3 -> 2, 4..7 -> 3, ...
	h.Observe(0)
	h.Observe(1)
	h.Observe(3)
	h.Observe(7)
	h.Observe(-5) // clamps to 0
	if h.Count() != 5 {
		t.Fatalf("count = %d, want 5", h.Count())
	}
	if h.Sum() != 11 {
		t.Fatalf("sum = %d, want 11", h.Sum())
	}
	if h.buckets[0].Load() != 2 { // 0 and clamped -5
		t.Fatalf("bucket0 = %d, want 2", h.buckets[0].Load())
	}
	if h.buckets[2].Load() != 1 || h.buckets[3].Load() != 1 {
		t.Fatal("log2 bucket placement wrong")
	}
	// Huge values land in the last bucket.
	h.Observe(1 << 62)
	if h.buckets[HistBuckets-1].Load() != 1 {
		t.Fatal("overflow value must land in last bucket")
	}
}

func TestHistogramObserveConcurrent(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("conc_ns")
	var wg sync.WaitGroup
	const G, N = 8, 1000
	for g := 0; g < G; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < N; i++ {
				h.Observe(int64(i))
			}
		}()
	}
	wg.Wait()
	if h.Count() != G*N {
		t.Fatalf("count = %d, want %d", h.Count(), G*N)
	}
}

func TestWriteProm(t *testing.T) {
	r := NewRegistry()
	r.Counter("req_total", L("code", "200")).Add(7)
	r.Counter("req_total", L("code", "500")).Add(1)
	r.Gauge("depth").Set(-2)
	h := r.Histogram("lat_ns")
	h.Observe(1)
	h.Observe(100)

	var buf bytes.Buffer
	if err := r.WriteProm(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# TYPE req_total counter",
		`req_total{code="200"} 7`,
		`req_total{code="500"} 1`,
		"# TYPE depth gauge",
		"depth -2",
		"# TYPE lat_ns histogram",
		`lat_ns_bucket{le="+Inf"} 2`,
		"lat_ns_sum 101",
		"lat_ns_count 2",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("prometheus output missing %q:\n%s", want, out)
		}
	}
	if n := strings.Count(out, "# TYPE req_total"); n != 1 {
		t.Fatalf("series sharing a name must share one TYPE line, got %d", n)
	}
	// Cumulative buckets: the le="1" bucket holds the observation of 1.
	if !strings.Contains(out, `lat_ns_bucket{le="1"} 1`) {
		t.Fatalf("cumulative bucket rendering wrong:\n%s", out)
	}
}

func TestSnapshot(t *testing.T) {
	r := NewRegistry()
	r.Counter("c_total").Add(4)
	r.Gauge("g", L("stage", "0")).Set(9)
	h := r.Histogram("h_ns")
	h.Observe(5)

	snaps := r.Snapshot()
	if len(snaps) != 3 {
		t.Fatalf("snapshot len = %d, want 3", len(snaps))
	}
	if snaps[0].Name != "c_total" || snaps[0].Kind != "counter" || snaps[0].Value != 4 {
		t.Fatalf("counter snapshot wrong: %+v", snaps[0])
	}
	if snaps[1].Labels["stage"] != "0" || snaps[1].Value != 9 {
		t.Fatalf("gauge snapshot wrong: %+v", snaps[1])
	}
	if snaps[2].Count != 1 || snaps[2].Sum != 5 || len(snaps[2].Buckets) != 1 {
		t.Fatalf("histogram snapshot wrong: %+v", snaps[2])
	}
}

func TestSeverity(t *testing.T) {
	cases := map[Severity]string{SevInfo: "info", SevWarn: "warn", SevSecurity: "security", Severity(0): "unknown"}
	for s, want := range cases {
		if s.String() != want {
			t.Fatalf("%d.String() = %q, want %q", s, s.String(), want)
		}
	}
	if Severity(0).Valid() || Severity(99).Valid() {
		t.Fatal("out-of-range severities must be invalid")
	}
	if !SevInfo.Valid() || !SevSecurity.Valid() {
		t.Fatal("defined severities must be valid")
	}
}

func TestEnabledToggle(t *testing.T) {
	defer SetEnabled(true)
	SetEnabled(false)
	if Enabled() {
		t.Fatal("disable failed")
	}
	if id := NewTraceID(); id != 0 {
		t.Fatalf("disabled NewTraceID = %d, want 0", id)
	}
	SetEnabled(true)
	if NewTraceID() == 0 {
		t.Fatal("enabled NewTraceID must be nonzero")
	}
}

func BenchmarkCounterInc(b *testing.B) {
	r := NewRegistry()
	c := r.Counter("bench_total")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkHistogramObserve(b *testing.B) {
	r := NewRegistry()
	h := r.Histogram("bench_ns")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(int64(i))
	}
}

func TestRecordPathsAllocFree(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("af_total")
	g := r.Gauge("af_g")
	h := r.Histogram("af_ns")
	allocs := testing.AllocsPerRun(1000, func() {
		c.Inc()
		g.Set(1)
		h.Observe(42)
	})
	if allocs != 0 {
		t.Fatalf("record paths allocated %v/op, want 0", allocs)
	}
}
