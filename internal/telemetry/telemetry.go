// Package telemetry is MVTEE's stdlib-only observability subsystem: a
// zero-allocation metrics core (atomic counters/gauges and fixed-bucket log2
// latency histograms with lock-free recording), batch-scoped tracing (a
// TraceID minted per inference batch, propagated through the wire batch
// header to variants and back, with spans for every pipeline hop), and a
// non-blocking event bus (ring buffer plus subscriber fan-out that drops
// instead of blocking). An operator HTTP surface exports all three:
// /metrics (Prometheus text format), /trace (recent spans as JSON),
// /events (SSE) and /debug/pprof/*.
//
// The subsystem must cost nothing on the hot path when disabled: every
// instrumentation site guards on Enabled() — one atomic load and a branch —
// and every metric method is nil-receiver-safe, so uninstrumented builds and
// disabled runs pay no allocation, no lock, and no syscall. When enabled, the
// budget is <5% on the warm inference hot path with zero additional
// steady-state allocations (pinned by the monitor's warm-allocs test and the
// mvtee-bench -perf telemetry suite).
package telemetry

import "sync/atomic"

// enabled gates every instrumentation site. Telemetry is on by default; the
// disabled state exists for measuring its own overhead and for hosts that
// want the hot path absolutely bare.
var enabled atomic.Bool

func init() { enabled.Store(true) }

// Enabled reports whether instrumentation sites should record. It is a single
// atomic load — cheap enough to guard every hot-path touch point.
func Enabled() bool { return enabled.Load() }

// SetEnabled switches instrumentation globally. Metrics already registered
// keep their accumulated values; disabling only stops new recording.
func SetEnabled(v bool) { enabled.Store(v) }

// Severity classifies operator-facing events for the /events stream: routine
// lifecycle (info), degraded-but-operating conditions (warn), and signals
// bearing on the security argument itself (security).
type Severity int

// Severities, least to most urgent.
const (
	SevInfo Severity = iota + 1
	SevWarn
	SevSecurity
)

func (s Severity) String() string {
	switch s {
	case SevInfo:
		return "info"
	case SevWarn:
		return "warn"
	case SevSecurity:
		return "security"
	default:
		return "unknown"
	}
}

// Valid reports whether s is one of the defined severities — the event-kind
// exhaustiveness tests use it to reject unclassified kinds.
func (s Severity) Valid() bool { return s >= SevInfo && s <= SevSecurity }
