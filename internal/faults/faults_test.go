package faults

import (
	"errors"
	"math"
	"testing"

	"repro/internal/blas"
	"repro/internal/graph"
	"repro/internal/infer"
	"repro/internal/models"
	"repro/internal/tensor"
)

func runModel(t *testing.T, cfg infer.Config, trigger float32) (map[string]*tensor.Tensor, error) {
	t.Helper()
	g, err := models.Build("mnasnet", models.Config{})
	if err != nil {
		t.Fatal(err)
	}
	ex, err := infer.New(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	in := tensor.New(1, 3, 32, 32)
	for i := range in.Data() {
		in.Data()[i] = float32(i%7)/7 - 0.5
	}
	if trigger != 0 {
		in.Data()[0] = trigger
	}
	return ex.Run(map[string]*tensor.Tensor{"image": in})
}

func maxAbs(a, b *tensor.Tensor) float64 {
	var m float64
	for i := range a.Data() {
		if d := math.Abs(float64(a.Data()[i]) - float64(b.Data()[i])); d > m {
			m = d
		}
	}
	return m
}

func clean(t *testing.T) map[string]*tensor.Tensor {
	t.Helper()
	out, err := runModel(t, infer.Config{}, 0)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func TestOOBManifestations(t *testing.T) {
	inj := Injection{Class: OOB, TargetOp: graph.OpConv, Seed: 2}
	want := clean(t)

	// Unhardened: silent corruption.
	out, err := runModel(t, Arm(infer.Config{}, inj), 0)
	if err != nil {
		t.Fatalf("unhardened OOB should corrupt silently, got %v", err)
	}
	if maxAbs(out["logits"], want["logits"]) == 0 {
		t.Fatal("OOB produced no corruption")
	}
	// Hardened variants turn it into a detectable crash.
	hardenings := []struct {
		name string
		cfg  infer.Config
		err  error
	}{
		{"bounds", infer.Config{BoundsCheck: true}, ErrBoundsViolation},
		{"sanitizer", infer.Config{Sanitizer: true}, ErrSanitizer},
		{"aslr", infer.Config{ASLR: true}, ErrSegfault},
	}
	for _, h := range hardenings {
		if _, err := runModel(t, Arm(h.cfg, inj), 0); !errors.Is(err, h.err) {
			t.Errorf("%s: got %v, want %v", h.name, err, h.err)
		}
	}
}

func TestFPEManifestations(t *testing.T) {
	inj := Injection{Class: FPE, TargetOp: graph.OpConv, Seed: 1}
	out, err := runModel(t, Arm(infer.Config{}, inj), 0)
	if err != nil {
		t.Fatalf("unhandled FPE should propagate silently: %v", err)
	}
	if !hasNaN(out) {
		// NaN may be squashed by downstream relu/softmax; corruption still
		// counts if outputs differ from clean.
		if maxAbs(out["logits"], clean(t)["logits"]) == 0 {
			t.Fatal("FPE had no observable effect")
		}
	}
	// Error-handling variant catches it at the kernel boundary.
	if _, err := runModel(t, Arm(infer.Config{CheckFinite: true}, inj), 0); err == nil {
		t.Fatal("CheckFinite variant did not catch the FPE")
	}
}

func hasNaN(outs map[string]*tensor.Tensor) bool {
	for _, t := range outs {
		if t.HasNaN() {
			return true
		}
	}
	return false
}

func TestACFAlwaysCrashes(t *testing.T) {
	inj := Injection{Class: ACF, TargetOp: graph.OpConv}
	if _, err := runModel(t, Arm(infer.Config{}, inj), 0); !errors.Is(err, ErrAssertion) {
		t.Fatalf("got %v, want ErrAssertion", err)
	}
}

func TestUNPAndUAFAndIO(t *testing.T) {
	cases := []struct {
		class Class
		seed  uint64
	}{
		{UNP, 2}, {UNP, 1}, {UAF, 3}, {UAF, 1}, {IntOverflow, 2}, {IntOverflow, 1},
	}
	want := clean(t)
	for _, c := range cases {
		inj := Injection{Class: c.class, TargetOp: graph.OpConv, Seed: c.seed}
		out, err := runModel(t, Arm(infer.Config{}, inj), 0)
		if err == nil && maxAbs(out["logits"], want["logits"]) == 0 {
			t.Errorf("%s seed %d: neither crashed nor corrupted", c.class, c.seed)
		}
		// Sanitizer detects every memory-error class.
		if c.class != IntOverflow {
			if _, err := runModel(t, Arm(infer.Config{Sanitizer: true}, inj), 0); !errors.Is(err, ErrSanitizer) {
				t.Errorf("%s: sanitizer missed it: %v", c.class, err)
			}
		}
	}
}

func TestDifferentRuntimeImmune(t *testing.T) {
	// The CVE lives in the Interp runtime; Planned variants never execute
	// the vulnerable code.
	inj := Injection{Class: OOB, TargetOp: graph.OpConv, TargetRuntime: infer.Interp, Seed: 2}
	want := clean(t)
	out, err := runModel(t, Arm(infer.Config{Runtime: infer.Planned}, inj), 0)
	if err != nil {
		t.Fatal(err)
	}
	if maxAbs(out["logits"], want["logits"]) > 1e-4 {
		t.Fatal("planned-runtime variant was affected by an interp-only fault")
	}
}

func TestTriggerGating(t *testing.T) {
	// Crafted-input vulnerability: fires only when the magic value appears.
	const magic = float32(123456.0)
	inj := Injection{Class: ACF, TargetOp: graph.OpConv, Trigger: magic}
	cfg := Arm(infer.Config{}, inj)
	if _, err := runModel(t, cfg, 0); err != nil {
		t.Fatalf("benign input must not trigger: %v", err)
	}
	if _, err := runModel(t, cfg, magic); !errors.Is(err, ErrAssertion) {
		t.Fatalf("crafted input must trigger: %v", err)
	}
}

func TestCodeBitFlipHitsOnlyTargetLibrary(t *testing.T) {
	inj := Injection{Class: CodeBitFlip, TargetBLAS: blas.Naive, Seed: 4}
	im2col := infer.Config{ConvAlgo: 2 /* im2col routes conv through BLAS */}

	want, err := runModel(t, im2col, 0)
	if err != nil {
		t.Fatal(err)
	}
	hitCfg := im2col
	hitCfg.BLAS = blas.Naive
	out, err := runModel(t, Arm(hitCfg, inj), 0)
	if err != nil {
		t.Fatal(err)
	}
	if maxAbs(out["logits"], want["logits"]) == 0 {
		t.Fatal("target library fault had no effect")
	}
	immuneCfg := im2col
	immuneCfg.BLAS = blas.Blocked
	out, err = runModel(t, Arm(immuneCfg, inj), 0)
	if err != nil {
		t.Fatal(err)
	}
	if maxAbs(out["logits"], want["logits"]) > 1e-4 {
		t.Fatal("non-target library was affected (FrameFlip property violated)")
	}
}

func TestFlipWeightBit(t *testing.T) {
	g, err := models.Build("mnasnet", models.Config{})
	if err != nil {
		t.Fatal(err)
	}
	var target string
	for name := range g.Initializers {
		if g.Initializers[name].Size() > 0 {
			target = name
			break
		}
	}
	before := g.Initializers[target].Data()[0]
	if !FlipWeightBit(g, target, 0, 30) {
		t.Fatal("flip missed an existing target")
	}
	after := g.Initializers[target].Data()[0]
	if before == after {
		t.Fatal("bit flip changed nothing")
	}
	// Flip back restores the value (involution).
	FlipWeightBit(g, target, 0, 30)
	if g.Initializers[target].Data()[0] != before {
		t.Fatal("double flip is not identity")
	}
	if FlipWeightBit(g, "no-such-weight", 0, 30) {
		t.Fatal("flip hit a missing target")
	}
	if FlipWeightBit(g, target, 1<<30, 30) {
		t.Fatal("flip accepted out-of-range index")
	}
}

func TestDelayFault(t *testing.T) {
	inj := Injection{Class: Delay, Latency: 100 * 1000} // 100µs per node
	cfg := Arm(infer.Config{}, inj)
	if cfg.KernelWrapper == nil {
		t.Fatal("delay fault did not install a kernel wrapper")
	}
}
