// Package faults injects the vulnerability and fault classes of the paper's
// security analysis (§6.5, Table 1) into inference variants: memory-safety
// bugs in ML-framework kernels (OOB, null pointers, integer overflows,
// use-after-free, assertion failures, FPEs) triggered by maliciously crafted
// inputs, and runtime fault attacks (Rowhammer-style weight bit flips,
// FrameFlip-style code bit flips in one BLAS library, latency faults).
//
// Each injection targets a *specific implementation* — a runtime family, a
// BLAS backend, an operator kernel — so diversified variants that use a
// different implementation are unaffected, and hardening features (bounds
// checks, sanitizer, ASLR, error handling) convert silent corruption into a
// detectable crash. That selectivity is exactly the property MVX detection
// relies on.
package faults

import (
	"errors"
	"fmt"
	"math"
	"math/rand/v2"
	"sync"
	"time"

	"repro/internal/blas"
	"repro/internal/graph"
	"repro/internal/infer"
	"repro/internal/ops"
	"repro/internal/tensor"
)

// Class enumerates vulnerability/fault classes.
type Class string

// Vulnerability classes of Table 1 plus the runtime fault attacks of §6.5.
const (
	OOB           Class = "oob"            // out-of-bounds read/write
	UNP           Class = "unp"            // uninitialized/null pointer
	FPE           Class = "fpe"            // floating point exception
	IntOverflow   Class = "io"             // integer overflow
	UAF           Class = "uaf"            // use after free
	ACF           Class = "acf"            // assertion check failure
	WeightBitFlip Class = "weight-bitflip" // Rowhammer-style model fault
	CodeBitFlip   Class = "code-bitflip"   // FrameFlip-style library fault
	Delay         Class = "delay"          // latency fault (straggler)

	// Chaos classes exercising the monitor's robustness layer (straggler
	// deadlines, degradation ladder, hot replacement). After counts the
	// batches served faithfully before onset; Trigger gates them like any
	// other class.
	Hang               Class = "hang"                 // stops responding mid-batch
	Slow               Class = "slow"                 // heavy per-batch latency after onset
	DropLate           Class = "drop-late"            // serves, then fails permanently
	CorruptAfterQuorum Class = "corrupt-after-quorum" // correct until onset, then slow + corrupt (late dissent)
)

// Injection describes one fault to arm in a variant.
type Injection struct {
	Class Class
	// TargetOp restricts kernel-level faults to one operator type (e.g.
	// graph.OpConv); empty hits every operator.
	TargetOp string
	// TargetRuntime restricts the fault to variants of one runtime family
	// (the vulnerable framework); 0 hits all.
	TargetRuntime infer.RuntimeKind
	// TargetBLAS restricts library faults to one backend (the vulnerable
	// linear-algebra library); 0 hits all.
	TargetBLAS blas.Kind
	// Trigger, when non-zero, is the crafted-input magic: the fault fires
	// only when an input tensor contains this exact value. Zero fires
	// unconditionally.
	Trigger float32
	// Seed drives which elements get corrupted.
	Seed uint64
	// Latency is the per-node delay for Delay and Slow faults, the extra
	// delay before a CorruptAfterQuorum result, and the stall length of a
	// Hang (zero hangs for a practically-infinite 30s — far past any stage
	// deadline, but bounded so test harnesses can drain their goroutines).
	Latency time.Duration
	// After is the number of triggering batches (invocations of the armed
	// node) served faithfully before a late-onset chaos fault (Hang, Slow,
	// DropLate, CorruptAfterQuorum) activates. Zero activates immediately.
	After int
}

// Detected errors raised by hardening features intercepting a fault, and
// crash errors raised by the fault itself. All surface as variant failures
// the monitor observes.
var (
	ErrBoundsViolation = errors.New("faults: bounds check: out-of-bounds access blocked")
	ErrSanitizer       = errors.New("faults: sanitizer: memory error detected")
	ErrSegfault        = errors.New("faults: segmentation fault")
	ErrNullPointer     = errors.New("faults: null pointer dereference")
	ErrAssertion       = errors.New("faults: assertion check failed")
	ErrAllocFailure    = errors.New("faults: allocation failure (integer overflow)")
	ErrVariantLost     = errors.New("faults: variant process lost")
)

// Arm wires the injection into an executor configuration, returning the
// armed configuration. Variants whose configuration does not match the
// injection's implementation targets are returned unchanged — the fault
// simply does not exist in their code.
func Arm(cfg infer.Config, inj Injection) infer.Config {
	if inj.TargetRuntime != 0 {
		rt := cfg.Runtime
		if rt == 0 {
			rt = infer.Interp
		}
		if rt != inj.TargetRuntime {
			return cfg
		}
	}
	switch inj.Class {
	case CodeBitFlip:
		target := inj.TargetBLAS
		if target == 0 {
			target = blas.Naive
		}
		kind := cfg.BLAS
		if kind == 0 {
			kind = blas.Naive
		}
		if kind != target {
			return cfg // different library: fault is harmless (§6.5 FrameFlip)
		}
		prev := cfg.BLASWrapper
		cfg.BLASWrapper = func(b blas.Backend) blas.Backend {
			if prev != nil {
				b = prev(b)
			}
			return &flippedBLAS{inner: b, seed: inj.Seed}
		}
		return cfg
	case Delay:
		prev := cfg.KernelWrapper
		cfg.KernelWrapper = func(name string, k ops.Kernel) ops.Kernel {
			if prev != nil {
				k = prev(name, k)
			}
			return func(ctx *ops.Context, n *graph.Node, ins []*tensor.Tensor) ([]*tensor.Tensor, error) {
				time.Sleep(inj.Latency)
				return k(ctx, n, ins)
			}
		}
		return cfg
	case WeightBitFlip:
		// Applied at the graph level via FlipWeightBit, not here.
		return cfg
	case Hang, Slow, DropLate, CorruptAfterQuorum:
		prev := cfg.KernelWrapper
		st := &lateState{counts: make(map[string]int)}
		cfg.KernelWrapper = func(name string, k ops.Kernel) ops.Kernel {
			if prev != nil {
				k = prev(name, k)
			}
			return chaosKernel(k, inj, st)
		}
		return cfg
	default:
		prev := cfg.KernelWrapper
		hard := hardening{
			bounds:    cfg.BoundsCheck,
			sanitizer: cfg.Sanitizer,
			aslr:      cfg.ASLR,
			finite:    cfg.CheckFinite,
		}
		cfg.KernelWrapper = func(name string, k ops.Kernel) ops.Kernel {
			if prev != nil {
				k = prev(name, k)
			}
			return vulnerableKernel(k, inj, hard)
		}
		return cfg
	}
}

type hardening struct {
	bounds, sanitizer, aslr, finite bool
}

// lateState counts triggering invocations per node so late-onset chaos
// faults know when their grace period (Injection.After) is over. A given
// node runs once per batch, so its count is the variant's batch count.
type lateState struct {
	mu     sync.Mutex
	counts map[string]int
}

// onset increments the node's invocation count and reports whether the
// fault is past its grace period.
func (st *lateState) onset(node string, after int) bool {
	st.mu.Lock()
	defer st.mu.Unlock()
	st.counts[node]++
	return st.counts[node] > after
}

// chaosKernel wraps a kernel with a late-onset availability/timing fault:
// the variant behaves faithfully for Injection.After triggering batches and
// then hangs, slows down, dies, or turns slow-and-corrupt — the failure
// modes the monitor's straggler deadlines, degradation ladder and hot
// replacement must absorb.
func chaosKernel(k ops.Kernel, inj Injection, st *lateState) ops.Kernel {
	return func(ctx *ops.Context, n *graph.Node, ins []*tensor.Tensor) ([]*tensor.Tensor, error) {
		if inj.TargetOp != "" && n.Op != inj.TargetOp {
			return k(ctx, n, ins)
		}
		if !triggered(inj, ins) {
			return k(ctx, n, ins)
		}
		if !st.onset(n.Name, inj.After) {
			return k(ctx, n, ins)
		}
		switch inj.Class {
		case Hang:
			d := inj.Latency
			if d == 0 {
				d = 30 * time.Second // practically infinite vs any stage deadline
			}
			time.Sleep(d)
			return k(ctx, n, ins)
		case Slow:
			time.Sleep(inj.Latency)
			return k(ctx, n, ins)
		case DropLate:
			return nil, fmt.Errorf("node %q: %w", n.Name, ErrVariantLost)
		case CorruptAfterQuorum:
			outs, err := k(ctx, n, ins)
			if err != nil {
				return nil, err
			}
			// Arrive after the async quorum has already forwarded, carrying
			// a corrupted result: the retroactive cross-validation of
			// Figure 8 must flag it as late dissent.
			time.Sleep(inj.Latency)
			corruptTail(outs, inj.Seed|1, 0.1)
			return outs, nil
		default:
			return k(ctx, n, ins)
		}
	}
}

// triggered reports whether the crafted-input condition holds.
func triggered(inj Injection, ins []*tensor.Tensor) bool {
	if inj.Trigger == 0 {
		return true
	}
	for _, t := range ins {
		for _, v := range t.Data() {
			if v == inj.Trigger {
				return true
			}
		}
	}
	return false
}

// vulnerableKernel wraps a kernel with a simulated vulnerability of the
// given class and resolves its manifestation against the variant's
// hardening profile.
func vulnerableKernel(k ops.Kernel, inj Injection, hard hardening) ops.Kernel {
	return func(ctx *ops.Context, n *graph.Node, ins []*tensor.Tensor) ([]*tensor.Tensor, error) {
		if inj.TargetOp != "" && n.Op != inj.TargetOp {
			return k(ctx, n, ins)
		}
		if !triggered(inj, ins) {
			return k(ctx, n, ins)
		}
		switch inj.Class {
		case OOB:
			// A write past the output buffer. Bounds checking and the
			// sanitizer block it; ASLR derails the exploit into a crash;
			// otherwise it silently corrupts adjacent output memory.
			if hard.bounds {
				return nil, fmt.Errorf("node %q: %w", n.Name, ErrBoundsViolation)
			}
			if hard.sanitizer {
				return nil, fmt.Errorf("node %q: %w", n.Name, ErrSanitizer)
			}
			if hard.aslr {
				return nil, fmt.Errorf("node %q: %w", n.Name, ErrSegfault)
			}
			outs, err := k(ctx, n, ins)
			if err != nil {
				return nil, err
			}
			corruptTail(outs, inj.Seed, 0.05)
			return outs, nil
		case UNP:
			// Uninitialized/null pointer: sanitizer reports; otherwise the
			// dereference crashes (DoS) or yields garbage.
			if hard.sanitizer {
				return nil, fmt.Errorf("node %q: %w", n.Name, ErrSanitizer)
			}
			if inj.Seed%2 == 0 {
				return nil, fmt.Errorf("node %q: %w", n.Name, ErrNullPointer)
			}
			outs, err := k(ctx, n, ins)
			if err != nil {
				return nil, err
			}
			zeroPrefix(outs, 0.1) // reads through uninitialized memory
			return outs, nil
		case FPE:
			// Division by zero / invalid op producing non-finite values.
			// Error-handling variants (CheckFinite) catch it; otherwise the
			// NaN propagates silently.
			outs, err := k(ctx, n, ins)
			if err != nil {
				return nil, err
			}
			injectNaN(outs, inj.Seed)
			if hard.finite {
				return nil, fmt.Errorf("node %q: FPE: %w", n.Name, ops.ErrNonFinite)
			}
			return outs, nil
		case IntOverflow:
			// A size computation wraps around: either the allocation fails
			// (DoS) or a short buffer truncates the result (corruption).
			if hard.sanitizer || hard.bounds {
				return nil, fmt.Errorf("node %q: %w", n.Name, ErrSanitizer)
			}
			if inj.Seed%2 == 0 {
				return nil, fmt.Errorf("node %q: %w", n.Name, ErrAllocFailure)
			}
			outs, err := k(ctx, n, ins)
			if err != nil {
				return nil, err
			}
			zeroSuffix(outs, 0.25)
			return outs, nil
		case UAF:
			// Freed buffer reused: sanitizer detects; otherwise stale data
			// corrupts the output or the dangling access crashes.
			if hard.sanitizer {
				return nil, fmt.Errorf("node %q: %w", n.Name, ErrSanitizer)
			}
			if inj.Seed%3 == 0 {
				return nil, fmt.Errorf("node %q: %w", n.Name, ErrSegfault)
			}
			outs, err := k(ctx, n, ins)
			if err != nil {
				return nil, err
			}
			corruptTail(outs, inj.Seed^0x5a5a, 0.2)
			return outs, nil
		case ACF:
			// Reachable assertion: always a crash (DoS).
			return nil, fmt.Errorf("node %q: %w", n.Name, ErrAssertion)
		default:
			return k(ctx, n, ins)
		}
	}
}

func corruptTail(outs []*tensor.Tensor, seed uint64, frac float64) {
	rng := rand.New(rand.NewPCG(seed, 0xbad))
	for _, t := range outs {
		d := t.Data()
		n := int(float64(len(d)) * frac)
		if n < 1 {
			n = 1
		}
		for i := 0; i < n; i++ {
			d[rng.IntN(len(d))] = float32(rng.NormFloat64() * 1e3)
		}
	}
}

func zeroPrefix(outs []*tensor.Tensor, frac float64) {
	for _, t := range outs {
		d := t.Data()
		n := int(float64(len(d)) * frac)
		for i := 0; i < n; i++ {
			d[i] = 0
		}
	}
}

func zeroSuffix(outs []*tensor.Tensor, frac float64) {
	for _, t := range outs {
		d := t.Data()
		n := int(float64(len(d)) * frac)
		for i := len(d) - n; i >= 0 && i < len(d); i++ {
			d[i] = 0
		}
	}
}

func injectNaN(outs []*tensor.Tensor, seed uint64) {
	rng := rand.New(rand.NewPCG(seed, 0xfe))
	for _, t := range outs {
		d := t.Data()
		if len(d) == 0 {
			continue
		}
		d[rng.IntN(len(d))] = float32(math.NaN())
	}
}

// flippedBLAS simulates a FrameFlip-style single-bit code fault in one BLAS
// library: the corrupted kernel drops a column of every product, degrading
// all inference built on that library while leaving other backends intact.
type flippedBLAS struct {
	inner blas.Backend
	seed  uint64
}

func (f *flippedBLAS) Name() string { return f.inner.Name() + "+bitflip" }

func (f *flippedBLAS) Gemm(m, n, k int, a, b, c []float32) {
	f.inner.Gemm(m, n, k, a, b, c)
	if n == 0 {
		return
	}
	col := int(f.seed % uint64(n))
	for i := 0; i < m; i++ {
		c[i*n+col] = 0
	}
}

// FlipWeightBit injects a Rowhammer-style bit flip into the named initializer
// of g, flipping the given bit of element idx (§6.5 "model-targeted
// attacks"). It reports whether the target existed — graph-level
// diversification changes tensor names and layouts, so a flip aimed at the
// original model typically misses diversified variants.
func FlipWeightBit(g *graph.Graph, initializer string, idx, bit int) bool {
	t, ok := g.Initializers[initializer]
	if !ok {
		return false
	}
	d := t.Data()
	if idx < 0 || idx >= len(d) || bit < 0 || bit > 31 {
		return false
	}
	bits := math.Float32bits(d[idx])
	bits ^= 1 << uint(bit)
	d[idx] = math.Float32frombits(bits)
	return true
}
