package ops

import (
	"fmt"
	"math"

	"repro/internal/blas"
	"repro/internal/graph"
	"repro/internal/tensor"
)

// gemmKernel computes Y = X·W + B for X [N,K], W [K,M], optional B [M].
func gemmKernel(ctx *Context, _ *graph.Node, inputs []*tensor.Tensor) ([]*tensor.Tensor, error) {
	if len(inputs) < 2 {
		return nil, fmt.Errorf("gemm wants >=2 inputs, got %d", len(inputs))
	}
	x, w := inputs[0], inputs[1]
	if x.Dims() != 2 || w.Dims() != 2 {
		return nil, fmt.Errorf("gemm wants 2-D operands, got %v and %v", x.Shape(), w.Shape())
	}
	n, k := x.Dim(0), x.Dim(1)
	if w.Dim(0) != k {
		return nil, fmt.Errorf("gemm inner dims mismatch: %v x %v", x.Shape(), w.Shape())
	}
	m := w.Dim(1)
	out := ctx.NewTensorUninit(n, m)
	blas.ParallelGemm(ctx.blas(), ctx.ranger(), n, m, k, x.Data(), w.Data(), out.Data())
	if len(inputs) >= 3 {
		b := inputs[2]
		if b.Size() != m {
			return nil, fmt.Errorf("gemm bias size %d != %d", b.Size(), m)
		}
		od, bd := out.Data(), b.Data()
		for i := 0; i < n; i++ {
			row := od[i*m : (i+1)*m]
			for j := range row {
				row[j] += bd[j]
			}
		}
	}
	return []*tensor.Tensor{out}, nil
}

func matMulKernel(ctx *Context, n *graph.Node, inputs []*tensor.Tensor) ([]*tensor.Tensor, error) {
	if len(inputs) != 2 {
		return nil, fmt.Errorf("matmul wants 2 inputs, got %d", len(inputs))
	}
	return gemmKernel(ctx, n, inputs)
}

// batchNormKernel normalizes X with per-channel scale/bias/mean/var. X may be
// NCHW or [N,C].
func batchNormKernel(ctx *Context, n *graph.Node, inputs []*tensor.Tensor) ([]*tensor.Tensor, error) {
	if len(inputs) != 5 {
		return nil, fmt.Errorf("batchnorm wants 5 inputs, got %d", len(inputs))
	}
	x, scale, bias, mean, variance := inputs[0], inputs[1], inputs[2], inputs[3], inputs[4]
	eps := float32(n.Float("epsilon", 1e-5))
	var c, spatial, nb int
	switch x.Dims() {
	case 4:
		nb, c, spatial = x.Dim(0), x.Dim(1), x.Dim(2)*x.Dim(3)
	case 2:
		nb, c, spatial = x.Dim(0), x.Dim(1), 1
	default:
		return nil, fmt.Errorf("batchnorm input must be 2-D or 4-D, got %v", x.Shape())
	}
	for _, p := range []*tensor.Tensor{scale, bias, mean, variance} {
		if p.Size() != c {
			return nil, fmt.Errorf("batchnorm param size %d != channels %d", p.Size(), c)
		}
	}
	out := ctx.CloneTensor(x)
	od := out.Data()
	sd, bd, md, vd := scale.Data(), bias.Data(), mean.Data(), variance.Data()
	// Precompute per-channel a = scale/sqrt(var+eps), b = bias - a*mean.
	abBuf := getScratch(2 * c)
	av, bv := (*abBuf)[:c], (*abBuf)[c:]
	for i := 0; i < c; i++ {
		a := sd[i] / float32(math.Sqrt(float64(vd[i]+eps)))
		av[i] = a
		bv[i] = bd[i] - a*md[i]
	}
	ctx.parallelFor(nb*c, func(idx int) {
		ch := idx % c
		a, b := av[ch], bv[ch]
		seg := od[idx*spatial : (idx+1)*spatial]
		for i, v := range seg {
			seg[i] = a*v + b
		}
	})
	putScratch(abBuf)
	return []*tensor.Tensor{out}, nil
}

func softmaxKernel(ctx *Context, _ *graph.Node, inputs []*tensor.Tensor) ([]*tensor.Tensor, error) {
	if len(inputs) != 1 {
		return nil, fmt.Errorf("softmax wants 1 input, got %d", len(inputs))
	}
	x := inputs[0]
	if x.Dims() < 1 {
		return nil, fmt.Errorf("softmax wants rank >= 1, got %v", x.Shape())
	}
	last := x.Dim(x.Dims() - 1)
	out := ctx.CloneTensor(x)
	od := out.Data()
	rows := out.Size() / last
	for r := 0; r < rows; r++ {
		seg := od[r*last : (r+1)*last]
		maxV := seg[0]
		for _, v := range seg {
			if v > maxV {
				maxV = v
			}
		}
		var sum float64
		for i, v := range seg {
			e := math.Exp(float64(v - maxV))
			seg[i] = float32(e)
			sum += e
		}
		inv := float32(1 / sum)
		for i := range seg {
			seg[i] *= inv
		}
	}
	return []*tensor.Tensor{out}, nil
}

func flattenKernel(ctx *Context, _ *graph.Node, inputs []*tensor.Tensor) ([]*tensor.Tensor, error) {
	if len(inputs) != 1 {
		return nil, fmt.Errorf("flatten wants 1 input, got %d", len(inputs))
	}
	x := inputs[0]
	if x.Dims() < 1 {
		return nil, fmt.Errorf("flatten wants rank >= 1, got %v", x.Shape())
	}
	nb := x.Dim(0)
	rest := x.Size() / nb
	out, err := ctx.CloneTensor(x).Reshape(nb, rest)
	if err != nil {
		return nil, err
	}
	return []*tensor.Tensor{out}, nil
}
