package ops

import (
	"fmt"

	"repro/internal/graph"
)

// InferShapes statically computes the shape of every tensor in g from the
// declared input shapes and initializer shapes. The result maps tensor name
// to shape. Partitioning uses this to attach boundary (checkpoint) shapes to
// subgraphs, and executors use it for memory planning.
func InferShapes(g *graph.Graph) (map[string][]int, error) {
	shapes := make(map[string][]int, len(g.Nodes)*2)
	for _, vi := range g.Inputs {
		if len(vi.Shape) == 0 {
			return nil, fmt.Errorf("ops: input %q has no declared shape", vi.Name)
		}
		shapes[vi.Name] = append([]int(nil), vi.Shape...)
	}
	for name, t := range g.Initializers {
		shapes[name] = t.Shape()
	}
	order, err := g.TopoSort()
	if err != nil {
		return nil, err
	}
	for _, n := range order {
		ins := make([][]int, len(n.Inputs))
		for i, in := range n.Inputs {
			s, ok := shapes[in]
			if !ok {
				return nil, fmt.Errorf("ops: node %q input %q has unknown shape", n.Name, in)
			}
			ins[i] = s
		}
		outs, err := nodeOutputShapes(n, ins)
		if err != nil {
			return nil, fmt.Errorf("ops: node %q (%s): %w", n.Name, n.Op, err)
		}
		if len(outs) != len(n.Outputs) {
			return nil, fmt.Errorf("ops: node %q: inferred %d outputs, node declares %d", n.Name, len(outs), len(n.Outputs))
		}
		for i, out := range n.Outputs {
			shapes[out] = outs[i]
		}
	}
	return shapes, nil
}

func nodeOutputShapes(n *graph.Node, ins [][]int) ([][]int, error) {
	switch n.Op {
	case graph.OpConv, graph.OpConvRelu, graph.OpConvBNRelu, graph.OpDepthwiseConv:
		if len(ins) < 2 {
			return nil, fmt.Errorf("conv wants >=2 inputs")
		}
		x, w := ins[0], ins[1]
		if len(x) != 4 || len(w) != 4 {
			return nil, fmt.Errorf("conv shapes must be 4-D, got %v and %v", x, w)
		}
		stride := n.Int("stride", 1)
		pad := n.Int("pad", 0)
		h := convOutDim(x[2], w[2], stride, pad)
		ww := convOutDim(x[3], w[3], stride, pad)
		if h <= 0 || ww <= 0 {
			return nil, fmt.Errorf("conv output collapses to %dx%d (input %v kernel %v stride %d pad %d)", h, ww, x, w, stride, pad)
		}
		return [][]int{{x[0], w[0], h, ww}}, nil

	case graph.OpMaxPool, graph.OpAvgPool:
		x := ins[0]
		if len(x) != 4 {
			return nil, fmt.Errorf("pool input must be 4-D, got %v", x)
		}
		k := n.Int("kernel", 2)
		stride := n.Int("stride", k)
		pad := n.Int("pad", 0)
		h := convOutDim(x[2], k, stride, pad)
		w := convOutDim(x[3], k, stride, pad)
		if h <= 0 || w <= 0 {
			return nil, fmt.Errorf("pool output collapses to %dx%d", h, w)
		}
		return [][]int{{x[0], x[1], h, w}}, nil

	case graph.OpGlobalAvgPool:
		x := ins[0]
		if len(x) != 4 {
			return nil, fmt.Errorf("global avg pool input must be 4-D, got %v", x)
		}
		return [][]int{{x[0], x[1], 1, 1}}, nil

	case graph.OpGemm, graph.OpMatMul:
		if len(ins) < 2 {
			return nil, fmt.Errorf("gemm wants >=2 inputs")
		}
		x, w := ins[0], ins[1]
		if len(x) != 2 || len(w) != 2 || x[1] != w[0] {
			return nil, fmt.Errorf("gemm shape mismatch: %v x %v", x, w)
		}
		return [][]int{{x[0], w[1]}}, nil

	case graph.OpBatchNorm, graph.OpRelu, graph.OpRelu6, graph.OpSigmoid,
		graph.OpHardSwish, graph.OpHardSigmoid, graph.OpSoftmax, graph.OpIdentity:
		return [][]int{append([]int(nil), ins[0]...)}, nil

	case graph.OpAdd, graph.OpMul:
		// Result takes the largest (full) input shape; rank breaks volume
		// ties, matching the kernel's accumulator choice.
		full := ins[0]
		for _, s := range ins[1:] {
			if volume(s) > volume(full) || (volume(s) == volume(full) && len(s) > len(full)) {
				full = s
			}
		}
		return [][]int{append([]int(nil), full...)}, nil

	case graph.OpConcat:
		axis := n.Int("axis", 1)
		out := append([]int(nil), ins[0]...)
		if axis < 0 || axis >= len(out) {
			return nil, fmt.Errorf("concat axis %d out of range", axis)
		}
		for _, s := range ins[1:] {
			out[axis] += s[axis]
		}
		return [][]int{out}, nil

	case graph.OpFlatten:
		x := ins[0]
		return [][]int{{x[0], volume(x) / x[0]}}, nil

	case graph.OpLayerNorm, graph.OpGelu:
		return [][]int{append([]int(nil), ins[0]...)}, nil

	case graph.OpTranspose:
		perm := n.IntsOr("perm", nil)
		x := ins[0]
		if len(perm) != len(x) {
			return nil, fmt.Errorf("transpose perm rank %d != input rank %d", len(perm), len(x))
		}
		out := make([]int, len(perm))
		for i, p := range perm {
			if p < 0 || p >= len(x) {
				return nil, fmt.Errorf("transpose perm %v invalid", perm)
			}
			out[i] = x[p]
		}
		return [][]int{out}, nil

	case graph.OpReshape:
		shape := n.IntsOr("shape", nil)
		if volume(shape) != volume(ins[0]) {
			return nil, fmt.Errorf("reshape volume %d != input volume %d", volume(shape), volume(ins[0]))
		}
		return [][]int{append([]int(nil), shape...)}, nil

	case graph.OpBatchMatMul:
		if len(ins) < 2 {
			return nil, fmt.Errorf("batchmatmul wants 2 inputs")
		}
		a, b := ins[0], ins[1]
		if len(a) != 3 {
			return nil, fmt.Errorf("batchmatmul A must be 3-D, got %v", a)
		}
		transB := n.Int("transB", 0) == 1
		var rows, cols int
		switch len(b) {
		case 3:
			rows, cols = b[1], b[2]
		case 2:
			rows, cols = b[0], b[1]
		default:
			return nil, fmt.Errorf("batchmatmul B must be 2-D or 3-D, got %v", b)
		}
		inner, outc := rows, cols
		if transB {
			inner, outc = cols, rows
		}
		if inner != a[2] {
			return nil, fmt.Errorf("batchmatmul inner dims mismatch: %v x %v (transB=%v)", a, b, transB)
		}
		return [][]int{{a[0], a[1], outc}}, nil

	case graph.OpReduceMean:
		axis := n.Int("axis", 1)
		x := ins[0]
		if axis < 0 || axis >= len(x) {
			return nil, fmt.Errorf("reducemean axis %d out of range", axis)
		}
		out := append(append([]int{}, x[:axis]...), x[axis+1:]...)
		return [][]int{out}, nil

	case graph.OpPad:
		x := ins[0]
		pads := n.IntsOr("pads", []int{0, 0, 0, 0})
		if len(x) != 4 || len(pads) != 4 {
			return nil, fmt.Errorf("pad wants 4-D input and 4 pads")
		}
		return [][]int{{x[0], x[1], x[2] + pads[0] + pads[1], x[3] + pads[2] + pads[3]}}, nil

	default:
		return nil, fmt.Errorf("unknown op %q", n.Op)
	}
}

func volume(s []int) int {
	v := 1
	for _, d := range s {
		v *= d
	}
	return v
}
