package ops

import (
	"math"
	"math/rand/v2"
	"testing"

	"repro/internal/blas"
	"repro/internal/graph"
	"repro/internal/tensor"
)

func TestLayerNorm(t *testing.T) {
	x := tensor.MustFromSlice([]float32{1, 2, 3, 4}, 1, 4)
	scale := tensor.MustFromSlice([]float32{1, 1, 1, 1}, 4)
	bias := tensor.New(4)
	out := run(t, &Context{}, graph.OpLayerNorm, map[string]graph.Attr{
		"epsilon": graph.FloatAttr(0),
	}, x, scale, bias)
	// mean 2.5, std sqrt(1.25)
	std := math.Sqrt(1.25)
	for i, v := range []float64{1, 2, 3, 4} {
		want := (v - 2.5) / std
		if math.Abs(float64(out.Data()[i])-want) > 1e-5 {
			t.Fatalf("ln[%d] = %v, want %v", i, out.Data()[i], want)
		}
	}
	// Normalized rows have zero mean and unit variance.
	var mean float64
	for _, v := range out.Data() {
		mean += float64(v)
	}
	if math.Abs(mean) > 1e-5 {
		t.Fatalf("row mean %v != 0", mean)
	}
}

func TestLayerNormScaleBias(t *testing.T) {
	x := tensor.MustFromSlice([]float32{1, 3}, 1, 2)
	scale := tensor.MustFromSlice([]float32{2, 2}, 2)
	bias := tensor.MustFromSlice([]float32{10, 10}, 2)
	out := run(t, &Context{}, graph.OpLayerNorm, nil, x, scale, bias)
	// normalized = [-1, 1] (with eps≈0) → *2 + 10 = [8, 12]
	if math.Abs(float64(out.Data()[0]-8)) > 1e-3 || math.Abs(float64(out.Data()[1]-12)) > 1e-3 {
		t.Fatalf("ln = %v", out.Data())
	}
}

func TestGelu(t *testing.T) {
	out := run(t, &Context{}, graph.OpGelu, nil, tensor.MustFromSlice([]float32{0, 3, -3}, 3))
	if out.Data()[0] != 0 {
		t.Fatalf("gelu(0) = %v", out.Data()[0])
	}
	if math.Abs(float64(out.Data()[1])-2.9964) > 1e-3 {
		t.Fatalf("gelu(3) = %v", out.Data()[1])
	}
	if math.Abs(float64(out.Data()[2])-(-0.00363)) > 1e-3 {
		t.Fatalf("gelu(-3) = %v", out.Data()[2])
	}
}

func TestTranspose(t *testing.T) {
	x := tensor.MustFromSlice([]float32{1, 2, 3, 4, 5, 6}, 2, 3)
	out := run(t, &Context{}, graph.OpTranspose, map[string]graph.Attr{
		"perm": graph.IntsAttr(1, 0),
	}, x)
	want := []float32{1, 4, 2, 5, 3, 6}
	if out.Dim(0) != 3 || out.Dim(1) != 2 {
		t.Fatalf("shape %v", out.Shape())
	}
	for i, v := range want {
		if out.Data()[i] != v {
			t.Fatalf("transpose = %v, want %v", out.Data(), want)
		}
	}
}

func TestTransposeInvolution(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 1))
	x := randT(rng, 2, 3, 4)
	perm := map[string]graph.Attr{"perm": graph.IntsAttr(1, 0, 2)}
	once := run(t, &Context{}, graph.OpTranspose, perm, x)
	twice := run(t, &Context{}, graph.OpTranspose, perm, once)
	if !closeTo(x, twice, 0) {
		t.Fatal("double transpose with a self-inverse perm is not identity")
	}
}

func TestTransposeBadPerm(t *testing.T) {
	reg := NewRegistry()
	n := &graph.Node{Name: "t", Op: graph.OpTranspose, Inputs: []string{"x"}, Outputs: []string{"y"},
		Attrs: map[string]graph.Attr{"perm": graph.IntsAttr(0, 0)}}
	if _, err := reg.Run(&Context{}, n, []*tensor.Tensor{tensor.New(2, 2)}); err == nil {
		t.Fatal("duplicate perm accepted")
	}
}

func TestReshape(t *testing.T) {
	x := tensor.MustFromSlice([]float32{1, 2, 3, 4, 5, 6}, 2, 3)
	out := run(t, &Context{}, graph.OpReshape, map[string]graph.Attr{
		"shape": graph.IntsAttr(3, 2),
	}, x)
	if out.Dim(0) != 3 || out.Data()[4] != 5 {
		t.Fatalf("reshape %v %v", out.Shape(), out.Data())
	}
	reg := NewRegistry()
	n := &graph.Node{Name: "r", Op: graph.OpReshape, Inputs: []string{"x"}, Outputs: []string{"y"},
		Attrs: map[string]graph.Attr{"shape": graph.IntsAttr(4, 2)}}
	if _, err := reg.Run(&Context{}, n, []*tensor.Tensor{x}); err == nil {
		t.Fatal("volume-changing reshape accepted")
	}
}

func TestBatchMatMul(t *testing.T) {
	// Two batches of 1x2 · 2x1.
	a := tensor.MustFromSlice([]float32{1, 2, 3, 4}, 2, 1, 2)
	bm := tensor.MustFromSlice([]float32{1, 1, 2, 2}, 2, 2, 1)
	out := run(t, &Context{}, graph.OpBatchMatMul, nil, a, bm)
	want := []float32{3, 14} // [1+2], [6+8]
	for i, v := range want {
		if out.Data()[i] != v {
			t.Fatalf("bmm = %v, want %v", out.Data(), want)
		}
	}
}

func TestBatchMatMulBroadcastWeights(t *testing.T) {
	rng := rand.New(rand.NewPCG(2, 2))
	a := randT(rng, 3, 4, 5)
	w := randT(rng, 5, 6)
	out := run(t, &Context{}, graph.OpBatchMatMul, nil, a, w)
	if out.Dim(0) != 3 || out.Dim(1) != 4 || out.Dim(2) != 6 {
		t.Fatalf("shape %v", out.Shape())
	}
	// Batch 0 must equal a plain 2-D matmul of the first slice.
	a0, _ := tensor.FromSlice(a.Data()[:20], 4, 5)
	ref := run(t, &Context{}, graph.OpMatMul, nil, a0, w)
	got, _ := tensor.FromSlice(out.Data()[:24], 4, 6)
	if !closeTo(ref, got, 1e-5) {
		t.Fatal("broadcast batch 0 != plain matmul")
	}
}

func TestBatchMatMulTransB(t *testing.T) {
	rng := rand.New(rand.NewPCG(3, 3))
	q := randT(rng, 2, 3, 4)
	k := randT(rng, 2, 3, 4)
	// Q·Kᵀ via transB must equal transposing K explicitly first.
	viaAttr := run(t, &Context{}, graph.OpBatchMatMul, map[string]graph.Attr{
		"transB": graph.IntAttr(1),
	}, q, k)
	kt := run(t, &Context{}, graph.OpTranspose, map[string]graph.Attr{
		"perm": graph.IntsAttr(0, 2, 1),
	}, k)
	explicit := run(t, &Context{}, graph.OpBatchMatMul, nil, q, kt)
	if !closeTo(viaAttr, explicit, 1e-5) {
		t.Fatal("transB != explicit transpose")
	}
}

func TestBatchMatMulAcrossBackends(t *testing.T) {
	rng := rand.New(rand.NewPCG(4, 4))
	a := randT(rng, 2, 8, 16)
	w := randT(rng, 16, 8)
	ref := run(t, &Context{}, graph.OpBatchMatMul, nil, a, w)
	for _, kind := range blas.Kinds() {
		got := run(t, &Context{BLAS: blas.MustNew(kind)}, graph.OpBatchMatMul, nil, a, w)
		if !closeTo(ref, got, 1e-3) {
			t.Errorf("backend %v deviates", kind)
		}
	}
}

func TestBatchMatMulErrors(t *testing.T) {
	reg := NewRegistry()
	n := &graph.Node{Name: "b", Op: graph.OpBatchMatMul, Inputs: []string{"a", "b"}, Outputs: []string{"y"}}
	cases := [][2]*tensor.Tensor{
		{tensor.New(2, 3), tensor.New(3, 2)},       // A not 3-D
		{tensor.New(2, 3, 4), tensor.New(3, 5, 6)}, // batch mismatch
		{tensor.New(2, 3, 4), tensor.New(5, 6)},    // inner mismatch
	}
	for i, c := range cases {
		if _, err := reg.Run(&Context{}, n, []*tensor.Tensor{c[0], c[1]}); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestReduceMean(t *testing.T) {
	x := tensor.MustFromSlice([]float32{1, 2, 3, 4, 5, 6}, 1, 3, 2)
	out := run(t, &Context{}, graph.OpReduceMean, map[string]graph.Attr{
		"axis": graph.IntAttr(1),
	}, x)
	if out.Dim(0) != 1 || out.Dim(1) != 2 {
		t.Fatalf("shape %v", out.Shape())
	}
	if out.Data()[0] != 3 || out.Data()[1] != 4 { // mean of {1,3,5} and {2,4,6}
		t.Fatalf("reducemean = %v", out.Data())
	}
	out0 := run(t, &Context{}, graph.OpReduceMean, map[string]graph.Attr{
		"axis": graph.IntAttr(2),
	}, x)
	if out0.Data()[0] != 1.5 {
		t.Fatalf("axis 2: %v", out0.Data())
	}
}
