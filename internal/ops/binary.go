package ops

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/tensor"
)

// addKernel sums all inputs element-wise with channel broadcasting. Add is
// variadic (>=2 inputs) to support the commutative-reorder and dummy-operator
// diversification transforms; the result is independent of input order up to
// floating-point association.
func addKernel(ctx *Context, _ *graph.Node, inputs []*tensor.Tensor) ([]*tensor.Tensor, error) {
	return foldKernel(ctx, inputs, 2, func(a, b float32) float32 { return a + b })
}

func mulKernel(ctx *Context, _ *graph.Node, inputs []*tensor.Tensor) ([]*tensor.Tensor, error) {
	if len(inputs) != 2 {
		return nil, fmt.Errorf("mul wants 2 inputs, got %d", len(inputs))
	}
	return foldKernel(ctx, inputs, 2, func(a, b float32) float32 { return a * b })
}

// foldKernel reduces inputs with f, cloning the largest-shape input as the
// accumulator so broadcasting works regardless of argument order.
func foldKernel(ctx *Context, inputs []*tensor.Tensor, minIn int, f func(a, b float32) float32) ([]*tensor.Tensor, error) {
	if len(inputs) < minIn {
		return nil, fmt.Errorf("op wants >=%d inputs, got %d", minIn, len(inputs))
	}
	fullIdx := 0
	for i, in := range inputs[1:] {
		if in.Size() > inputs[fullIdx].Size() ||
			(in.Size() == inputs[fullIdx].Size() && in.Dims() > inputs[fullIdx].Dims()) {
			fullIdx = i + 1
		}
	}
	out := ctx.CloneTensor(inputs[fullIdx])
	for i, in := range inputs {
		if i == fullIdx {
			continue
		}
		if err := broadcastApply(out, in, f); err != nil {
			return nil, err
		}
	}
	return []*tensor.Tensor{out}, nil
}

// broadcastApply folds b into acc element-wise using f, broadcasting b when
// it has shape [N,C,1,1], [1,C,1,1], [C] or [1] against acc [N,C,H,W].
func broadcastApply(acc, b *tensor.Tensor, f func(a, b float32) float32) error {
	ad, bd := acc.Data(), b.Data()
	if acc.SameShape(b) {
		for i := range ad {
			ad[i] = f(ad[i], bd[i])
		}
		return nil
	}
	if b.Size() == 1 {
		v := bd[0]
		for i := range ad {
			ad[i] = f(ad[i], v)
		}
		return nil
	}
	if b.Size() == acc.Size() {
		// Same volume, different rank (e.g. [16] vs [1,16]): identical
		// row-major layout, fold element-wise.
		for i := range ad {
			ad[i] = f(ad[i], bd[i])
		}
		return nil
	}
	if acc.Dims() == 3 {
		d := acc.Dim(2)
		if (b.Dims() == 1 && b.Dim(0) == d) ||
			(b.Dims() == 3 && b.Dim(0) == 1 && b.Dim(1) == 1 && b.Dim(2) == d) {
			rows := acc.Size() / d
			for r := 0; r < rows; r++ {
				row := ad[r*d : (r+1)*d]
				for i := range row {
					row[i] = f(row[i], bd[i])
				}
			}
			return nil
		}
	}
	if acc.Dims() == 2 {
		n, m := acc.Dim(0), acc.Dim(1)
		if (b.Dims() == 1 && b.Dim(0) == m) ||
			(b.Dims() == 2 && b.Dim(0) == 1 && b.Dim(1) == m) {
			for r := 0; r < n; r++ {
				row := ad[r*m : (r+1)*m]
				for i := range row {
					row[i] = f(row[i], bd[i])
				}
			}
			return nil
		}
	}
	if acc.Dims() == 4 {
		nb, c, h, w := acc.Dim(0), acc.Dim(1), acc.Dim(2), acc.Dim(3)
		spatial := h * w
		switch {
		case b.Dims() == 4 && b.Dim(0) == nb && b.Dim(1) == c && b.Dim(2) == 1 && b.Dim(3) == 1:
			for bc := 0; bc < nb*c; bc++ {
				v := bd[bc]
				seg := ad[bc*spatial : (bc+1)*spatial]
				for i := range seg {
					seg[i] = f(seg[i], v)
				}
			}
			return nil
		case (b.Dims() == 1 && b.Dim(0) == c) ||
			(b.Dims() == 4 && b.Dim(0) == 1 && b.Dim(1) == c && b.Dim(2) == 1 && b.Dim(3) == 1):
			for bc := 0; bc < nb*c; bc++ {
				v := bd[bc%c]
				seg := ad[bc*spatial : (bc+1)*spatial]
				for i := range seg {
					seg[i] = f(seg[i], v)
				}
			}
			return nil
		}
	}
	return fmt.Errorf("broadcast: unsupported shapes %v and %v", acc.Shape(), b.Shape())
}

func concatKernel(ctx *Context, n *graph.Node, inputs []*tensor.Tensor) ([]*tensor.Tensor, error) {
	if len(inputs) < 2 {
		return nil, fmt.Errorf("concat wants >=2 inputs, got %d", len(inputs))
	}
	axis := n.Int("axis", 1)
	rank := inputs[0].Dims()
	if axis < 0 || axis >= rank {
		return nil, fmt.Errorf("concat axis %d out of range for rank %d", axis, rank)
	}
	outShape := inputs[0].Shape()
	for _, in := range inputs[1:] {
		if in.Dims() != rank {
			return nil, fmt.Errorf("concat rank mismatch: %v vs %v", inputs[0].Shape(), in.Shape())
		}
		for d := 0; d < rank; d++ {
			if d == axis {
				continue
			}
			if in.Dim(d) != outShape[d] {
				return nil, fmt.Errorf("concat dim %d mismatch: %v vs %v", d, outShape, in.Shape())
			}
		}
		outShape[axis] += in.Dim(axis)
	}
	out := ctx.NewTensorUninit(outShape...)
	od := out.Data()

	outer := 1
	for d := 0; d < axis; d++ {
		outer *= outShape[d]
	}
	inner := 1
	for d := axis + 1; d < rank; d++ {
		inner *= outShape[d]
	}
	outRow := outShape[axis] * inner
	off := 0
	for _, in := range inputs {
		id := in.Data()
		chunk := in.Dim(axis) * inner
		for o := 0; o < outer; o++ {
			copy(od[o*outRow+off:o*outRow+off+chunk], id[o*chunk:(o+1)*chunk])
		}
		off += chunk
	}
	return []*tensor.Tensor{out}, nil
}
