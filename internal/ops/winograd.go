package ops

import (
	"repro/internal/tensor"
)

// Winograd F(2×2, 3×3) convolution — a third kernel strategy for the variant
// pool. ML compilers like TVM emit Winograd kernels as auto-tuning trial
// candidates (§4.2 "tensor operation strategies"); its radically different
// arithmetic (4×4 tile transforms instead of dot products) makes it a strong
// implementation-diversity axis. Applies to ungrouped 3×3 stride-1
// convolutions; other shapes fall back to the direct kernel.

// winogradApplicable reports whether the parameters fit F(2x2,3x3).
func winogradApplicable(p convParams) bool {
	return p.kh == 3 && p.kw == 3 && p.stride == 1 && p.group == 1
}

// convWinograd computes the convolution via F(2x2,3x3) tile transforms.
func convWinograd(ctx *Context, x, w *tensor.Tensor, bias []float32, p convParams) *tensor.Tensor {
	nb, hin, win := x.Dim(0), x.Dim(2), x.Dim(3)
	hout := convOutDim(hin, 3, 1, p.pad)
	wout := convOutDim(win, 3, 1, p.pad)
	out := ctx.NewTensorUninit(nb, p.cout, hout, wout)
	xd, wd, od := x.Data(), w.Data(), out.Data()

	// Precompute U = G·g·Gᵀ for every (oc, ic) filter: 4×4 transformed
	// filters.
	uBuf := getScratch(p.cout * p.cin * 16)
	u := *uBuf
	for oc := 0; oc < p.cout; oc++ {
		for ic := 0; ic < p.cin; ic++ {
			g := wd[(oc*p.cin+ic)*9 : (oc*p.cin+ic)*9+9]
			transformFilter(g, u[(oc*p.cin+ic)*16:(oc*p.cin+ic)*16+16])
		}
	}

	tilesH := (hout + 1) / 2
	tilesW := (wout + 1) / 2
	ctx.parallelFor(nb, func(b int) {
		var dArr, vArr, mArr [16]float32
		var yArr [4]float32
		d := dArr[:] // input tile
		v := vArr[:] // transformed input tile
		m := mArr[:] // accumulated elementwise products
		y := yArr[:] // output tile
		vAllBuf := getScratch(p.cin * 16)
		vAll := *vAllBuf
		for th := 0; th < tilesH; th++ {
			for tw := 0; tw < tilesW; tw++ {
				// Gather and transform the 4×4 input tile of every input
				// channel once per tile position.
				ih0 := th*2 - p.pad
				iw0 := tw*2 - p.pad
				for ic := 0; ic < p.cin; ic++ {
					xc := xd[((b*p.cin+ic)*hin)*win:]
					for r := 0; r < 4; r++ {
						ir := ih0 + r
						for c := 0; c < 4; c++ {
							iw := iw0 + c
							if ir >= 0 && ir < hin && iw >= 0 && iw < win {
								d[r*4+c] = xc[ir*win+iw]
							} else {
								d[r*4+c] = 0
							}
						}
					}
					transformInput(d, v)
					copy(vAll[ic*16:ic*16+16], v)
				}
				for oc := 0; oc < p.cout; oc++ {
					for i := range m {
						m[i] = 0
					}
					for ic := 0; ic < p.cin; ic++ {
						uf := u[(oc*p.cin+ic)*16 : (oc*p.cin+ic)*16+16]
						vf := vAll[ic*16 : ic*16+16]
						for i := 0; i < 16; i++ {
							m[i] += uf[i] * vf[i]
						}
					}
					transformOutput(m, y)
					var bv float32
					if bias != nil {
						bv = bias[oc]
					}
					base := ((b*p.cout + oc) * hout) * wout
					for r := 0; r < 2; r++ {
						oh := th*2 + r
						if oh >= hout {
							continue
						}
						for c := 0; c < 2; c++ {
							ow := tw*2 + c
							if ow >= wout {
								continue
							}
							od[base+oh*wout+ow] = y[r*2+c] + bv
						}
					}
				}
			}
		}
		putScratch(vAllBuf)
	})
	putScratch(uBuf)
	applyFusedActivation(out, p)
	return out
}

// transformFilter computes U = G·g·Gᵀ for a 3×3 filter g into a 4×4 u.
//
//	G = [ 1    0    0  ]
//	    [ 1/2  1/2  1/2]
//	    [ 1/2 -1/2  1/2]
//	    [ 0    0    1  ]
func transformFilter(g, u []float32) {
	var t [12]float32 // G·g (4×3)
	for c := 0; c < 3; c++ {
		g0, g1, g2 := g[c], g[3+c], g[6+c]
		t[c] = g0
		t[3+c] = 0.5 * (g0 + g1 + g2)
		t[6+c] = 0.5 * (g0 - g1 + g2)
		t[9+c] = g2
	}
	for r := 0; r < 4; r++ {
		t0, t1, t2 := t[r*3], t[r*3+1], t[r*3+2]
		u[r*4] = t0
		u[r*4+1] = 0.5 * (t0 + t1 + t2)
		u[r*4+2] = 0.5 * (t0 - t1 + t2)
		u[r*4+3] = t2
	}
}

// transformInput computes V = Bᵀ·d·B for a 4×4 tile d.
//
//	Bᵀ = [1  0 -1  0]
//	     [0  1  1  0]
//	     [0 -1  1  0]
//	     [0  1  0 -1]
func transformInput(d, v []float32) {
	var t [16]float32 // Bᵀ·d
	for c := 0; c < 4; c++ {
		d0, d1, d2, d3 := d[c], d[4+c], d[8+c], d[12+c]
		t[c] = d0 - d2
		t[4+c] = d1 + d2
		t[8+c] = d2 - d1
		t[12+c] = d1 - d3
	}
	for r := 0; r < 4; r++ {
		t0, t1, t2, t3 := t[r*4], t[r*4+1], t[r*4+2], t[r*4+3]
		v[r*4] = t0 - t2
		v[r*4+1] = t1 + t2
		v[r*4+2] = t2 - t1
		v[r*4+3] = t1 - t3
	}
}

// transformOutput computes Y = Aᵀ·m·A for a 4×4 m into a 2×2 y.
//
//	Aᵀ = [1 1  1  0]
//	     [0 1 -1 -1]
func transformOutput(m, y []float32) {
	var t [8]float32 // Aᵀ·m (2×4)
	for c := 0; c < 4; c++ {
		m0, m1, m2, m3 := m[c], m[4+c], m[8+c], m[12+c]
		t[c] = m0 + m1 + m2
		t[4+c] = m1 - m2 - m3
	}
	for r := 0; r < 2; r++ {
		t0, t1, t2, t3 := t[r*4], t[r*4+1], t[r*4+2], t[r*4+3]
		y[r*2] = t0 + t1 + t2
		y[r*2+1] = t1 - t2 - t3
	}
}
