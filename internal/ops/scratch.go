package ops

import "sync"

// scratchPool recycles the float32 scratch slices kernels need per invocation
// (im2col columns, GEMM products, transpose staging, Winograd tile panels).
// These are the last per-call heap allocations on the steady-state inference
// path once tensor outputs come from the executor arena.
var scratchPool = sync.Pool{New: func() any { s := []float32(nil); return &s }}

// getScratch returns a pooled slice of length n with unspecified contents.
// Release it with putScratch when the kernel invocation is done.
func getScratch(n int) *[]float32 {
	p := scratchPool.Get().(*[]float32)
	if cap(*p) < n {
		*p = make([]float32, n)
	}
	*p = (*p)[:n]
	return p
}

func putScratch(p *[]float32) { scratchPool.Put(p) }
