package ops

import (
	"errors"
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"

	"repro/internal/blas"
	"repro/internal/graph"
	"repro/internal/tensor"
)

func run(t *testing.T, ctx *Context, op string, attrs map[string]graph.Attr, ins ...*tensor.Tensor) *tensor.Tensor {
	t.Helper()
	reg := NewRegistry()
	names := make([]string, len(ins))
	for i := range names {
		names[i] = "x"
	}
	n := &graph.Node{Name: "n", Op: op, Inputs: names, Outputs: []string{"y"}, Attrs: attrs}
	outs, err := reg.Run(ctx, n, ins)
	if err != nil {
		t.Fatalf("%s: %v", op, err)
	}
	return outs[0]
}

func randT(rng *rand.Rand, shape ...int) *tensor.Tensor {
	x := tensor.New(shape...)
	for i := range x.Data() {
		x.Data()[i] = float32(rng.NormFloat64())
	}
	return x
}

func closeTo(a, b *tensor.Tensor, tol float64) bool {
	if !a.SameShape(b) {
		return false
	}
	for i := range a.Data() {
		if math.Abs(float64(a.Data()[i])-float64(b.Data()[i])) > tol {
			return false
		}
	}
	return true
}

// --- convolution ----------------------------------------------------------------

func TestConvKnownValues(t *testing.T) {
	// 1x1x3x3 input, single 2x2 kernel of ones, stride 1, no pad:
	// windows sum to 8, 12, 20, 24.
	x := tensor.MustFromSlice([]float32{0, 1, 2, 3, 4, 5, 6, 7, 8}, 1, 1, 3, 3)
	w := tensor.MustFromSlice([]float32{1, 1, 1, 1}, 1, 1, 2, 2)
	b := tensor.New(1)
	out := run(t, &Context{}, graph.OpConv, map[string]graph.Attr{"stride": graph.IntAttr(1)}, x, w, b)
	want := []float32{8, 12, 20, 24}
	for i, v := range want {
		if out.Data()[i] != v {
			t.Fatalf("conv[%d] = %v, want %v (all %v)", i, out.Data()[i], v, out.Data())
		}
	}
}

func TestConvPaddingAndStride(t *testing.T) {
	x := tensor.MustFromSlice([]float32{1, 1, 1, 1}, 1, 1, 2, 2)
	w := tensor.MustFromSlice([]float32{1}, 1, 1, 1, 1)
	out := run(t, &Context{}, graph.OpConv, map[string]graph.Attr{
		"stride": graph.IntAttr(2), "pad": graph.IntAttr(1),
	}, x, w, tensor.New(1))
	// 2x2 input padded to 4x4, 1x1 kernel stride 2 -> 2x2 output sampling
	// positions (0,0),(0,2),(2,0),(2,2) = pad,pad,pad,x[1][1].
	want := []float32{0, 0, 0, 1}
	for i, v := range want {
		if out.Data()[i] != v {
			t.Fatalf("out = %v, want %v", out.Data(), want)
		}
	}
}

func TestConvBias(t *testing.T) {
	x := tensor.MustFromSlice([]float32{2}, 1, 1, 1, 1)
	w := tensor.MustFromSlice([]float32{3}, 1, 1, 1, 1)
	b := tensor.MustFromSlice([]float32{10}, 1)
	out := run(t, &Context{}, graph.OpConv, nil, x, w, b)
	if out.Data()[0] != 16 {
		t.Fatalf("conv+bias = %v, want 16", out.Data()[0])
	}
}

func TestConvDirectVsIm2ColAllBackends(t *testing.T) {
	rng := rand.New(rand.NewPCG(4, 4))
	x := randT(rng, 2, 6, 9, 9)
	w := randT(rng, 8, 6, 3, 3)
	b := randT(rng, 8)
	attrs := map[string]graph.Attr{"stride": graph.IntAttr(2), "pad": graph.IntAttr(1)}
	ref := run(t, &Context{ConvAlgo: ConvDirect}, graph.OpConv, attrs, x, w, b)
	for _, kind := range blas.Kinds() {
		ctx := &Context{ConvAlgo: ConvIm2Col, BLAS: blas.MustNew(kind)}
		got := run(t, ctx, graph.OpConv, attrs, x, w, b)
		if !closeTo(ref, got, 1e-3) {
			t.Errorf("im2col/%v deviates from direct conv", kind)
		}
	}
}

func TestConvGrouped(t *testing.T) {
	rng := rand.New(rand.NewPCG(5, 5))
	x := randT(rng, 1, 4, 5, 5)
	w := randT(rng, 4, 2, 3, 3) // groups=2: cin/g = 2
	attrs := map[string]graph.Attr{"pad": graph.IntAttr(1), "group": graph.IntAttr(2)}
	direct := run(t, &Context{ConvAlgo: ConvDirect}, graph.OpConv, attrs, x, w)
	im2col := run(t, &Context{ConvAlgo: ConvIm2Col}, graph.OpConv, attrs, x, w)
	if !closeTo(direct, im2col, 1e-3) {
		t.Fatal("grouped conv: direct vs im2col mismatch")
	}
}

func TestDepthwiseConvEqualsGroupedConv(t *testing.T) {
	rng := rand.New(rand.NewPCG(6, 6))
	x := randT(rng, 1, 3, 5, 5)
	w := randT(rng, 3, 1, 3, 3)
	dw := run(t, &Context{}, graph.OpDepthwiseConv, map[string]graph.Attr{"pad": graph.IntAttr(1)}, x, w)
	grouped := run(t, &Context{}, graph.OpConv, map[string]graph.Attr{
		"pad": graph.IntAttr(1), "group": graph.IntAttr(3),
	}, x, w)
	if !closeTo(dw, grouped, 1e-5) {
		t.Fatal("depthwise != grouped conv with g=C")
	}
}

func TestConvParallelismEquivalence(t *testing.T) {
	rng := rand.New(rand.NewPCG(7, 7))
	x := randT(rng, 2, 8, 7, 7)
	w := randT(rng, 16, 8, 3, 3)
	attrs := map[string]graph.Attr{"pad": graph.IntAttr(1)}
	seq := run(t, &Context{Parallelism: 1}, graph.OpConv, attrs, x, w)
	par := run(t, &Context{Parallelism: 8}, graph.OpConv, attrs, x, w)
	if !closeTo(seq, par, 0) {
		t.Fatal("parallel conv must be bitwise identical to sequential")
	}
}

func TestConvFusedActivationAttr(t *testing.T) {
	x := tensor.MustFromSlice([]float32{-1}, 1, 1, 1, 1)
	w := tensor.MustFromSlice([]float32{1}, 1, 1, 1, 1)
	out := run(t, &Context{}, graph.OpConv, map[string]graph.Attr{
		"activation": graph.StringAttr("relu"),
	}, x, w)
	if out.Data()[0] != 0 {
		t.Fatalf("fused relu: got %v, want 0", out.Data()[0])
	}
	out6 := run(t, &Context{}, graph.OpConv, map[string]graph.Attr{
		"activation": graph.StringAttr("relu6"),
	}, tensor.MustFromSlice([]float32{10}, 1, 1, 1, 1), w)
	if out6.Data()[0] != 6 {
		t.Fatalf("fused relu6: got %v, want 6", out6.Data()[0])
	}
}

// --- pooling --------------------------------------------------------------------

func TestMaxPool(t *testing.T) {
	x := tensor.MustFromSlice([]float32{1, 2, 3, 4, 5, 6, 7, 8, 9}, 1, 1, 3, 3)
	out := run(t, &Context{}, graph.OpMaxPool, map[string]graph.Attr{
		"kernel": graph.IntAttr(2), "stride": graph.IntAttr(1),
	}, x)
	want := []float32{5, 6, 8, 9}
	for i, v := range want {
		if out.Data()[i] != v {
			t.Fatalf("maxpool = %v, want %v", out.Data(), want)
		}
	}
}

func TestAvgPoolExcludesPadding(t *testing.T) {
	x := tensor.MustFromSlice([]float32{4, 4, 4, 4}, 1, 1, 2, 2)
	out := run(t, &Context{}, graph.OpAvgPool, map[string]graph.Attr{
		"kernel": graph.IntAttr(2), "stride": graph.IntAttr(2), "pad": graph.IntAttr(1),
	}, x)
	// Each 2x2 window at the corners covers exactly one real element (pad
	// excluded from the count), so every output is 4.
	for i, v := range out.Data() {
		if v != 4 {
			t.Fatalf("avgpool[%d] = %v, want 4 (count must exclude padding)", i, v)
		}
	}
}

func TestGlobalAvgPool(t *testing.T) {
	x := tensor.MustFromSlice([]float32{1, 2, 3, 4, 10, 10, 10, 10}, 1, 2, 2, 2)
	out := run(t, &Context{}, graph.OpGlobalAvgPool, nil, x)
	if out.Data()[0] != 2.5 || out.Data()[1] != 10 {
		t.Fatalf("gap = %v", out.Data())
	}
	if out.Dim(2) != 1 || out.Dim(3) != 1 {
		t.Fatalf("gap shape = %v", out.Shape())
	}
}

func TestPad(t *testing.T) {
	x := tensor.MustFromSlice([]float32{1, 2, 3, 4}, 1, 1, 2, 2)
	out := run(t, &Context{}, graph.OpPad, map[string]graph.Attr{
		"pads": graph.IntsAttr(1, 0, 0, 1),
	}, x)
	if out.Dim(2) != 3 || out.Dim(3) != 3 {
		t.Fatalf("pad shape = %v", out.Shape())
	}
	want := []float32{0, 0, 0, 1, 2, 0, 3, 4, 0}
	for i, v := range want {
		if out.Data()[i] != v {
			t.Fatalf("pad = %v, want %v", out.Data(), want)
		}
	}
}

// --- linear ---------------------------------------------------------------------

func TestGemmWithBias(t *testing.T) {
	x := tensor.MustFromSlice([]float32{1, 2}, 1, 2)
	w := tensor.MustFromSlice([]float32{3, 4, 5, 6}, 2, 2)
	b := tensor.MustFromSlice([]float32{10, 20}, 2)
	out := run(t, &Context{}, graph.OpGemm, nil, x, w, b)
	// [1 2]·[[3 4][5 6]] = [13 16]; + bias = [23 36]
	if out.Data()[0] != 23 || out.Data()[1] != 36 {
		t.Fatalf("gemm = %v", out.Data())
	}
}

func TestMatMulShapeError(t *testing.T) {
	reg := NewRegistry()
	n := &graph.Node{Name: "m", Op: graph.OpMatMul, Inputs: []string{"a", "b"}, Outputs: []string{"y"}}
	_, err := reg.Run(&Context{}, n, []*tensor.Tensor{tensor.New(2, 3), tensor.New(4, 2)})
	if err == nil {
		t.Fatal("expected inner-dim mismatch error")
	}
}

func TestBatchNorm(t *testing.T) {
	x := tensor.MustFromSlice([]float32{1, 2, 3, 4}, 1, 2, 1, 2)
	scale := tensor.MustFromSlice([]float32{2, 1}, 2)
	bias := tensor.MustFromSlice([]float32{0, 5}, 2)
	mean := tensor.MustFromSlice([]float32{1, 0}, 2)
	variance := tensor.MustFromSlice([]float32{4, 1}, 2)
	out := run(t, &Context{}, graph.OpBatchNorm, map[string]graph.Attr{
		"epsilon": graph.FloatAttr(0),
	}, x, scale, bias, mean, variance)
	// ch0: 2*(x-1)/2 = x-1 -> 0,1 ; ch1: (x-0)/1 + 5 -> 8,9
	want := []float32{0, 1, 8, 9}
	for i, v := range want {
		if math.Abs(float64(out.Data()[i]-v)) > 1e-5 {
			t.Fatalf("bn = %v, want %v", out.Data(), want)
		}
	}
}

func TestSoftmaxRowsSumToOne(t *testing.T) {
	rng := rand.New(rand.NewPCG(8, 8))
	x := randT(rng, 3, 7)
	out := run(t, &Context{}, graph.OpSoftmax, nil, x)
	for r := 0; r < 3; r++ {
		var s float64
		for c := 0; c < 7; c++ {
			v := out.At(r, c)
			if v < 0 || v > 1 {
				t.Fatalf("softmax out of range: %v", v)
			}
			s += float64(v)
		}
		if math.Abs(s-1) > 1e-5 {
			t.Fatalf("row %d sums to %v", r, s)
		}
	}
}

func TestSoftmaxNumericalStability(t *testing.T) {
	x := tensor.MustFromSlice([]float32{1000, 1000}, 1, 2)
	out := run(t, &Context{}, graph.OpSoftmax, nil, x)
	if out.HasNaN() {
		t.Fatal("softmax overflowed on large inputs")
	}
	if math.Abs(float64(out.Data()[0])-0.5) > 1e-5 {
		t.Fatalf("softmax = %v, want 0.5", out.Data())
	}
}

func TestFlatten(t *testing.T) {
	x := tensor.New(2, 3, 4)
	out := run(t, &Context{}, graph.OpFlatten, nil, x)
	if out.Dim(0) != 2 || out.Dim(1) != 12 {
		t.Fatalf("flatten shape = %v", out.Shape())
	}
}

// --- elementwise & binary ---------------------------------------------------------

func TestActivations(t *testing.T) {
	cases := []struct {
		op   string
		in   float32
		want float32
	}{
		{graph.OpRelu, -2, 0}, {graph.OpRelu, 3, 3},
		{graph.OpRelu6, 10, 6}, {graph.OpRelu6, -1, 0}, {graph.OpRelu6, 4, 4},
		{graph.OpHardSigmoid, -10, 0}, {graph.OpHardSigmoid, 10, 1}, {graph.OpHardSigmoid, 0, 0.5},
		{graph.OpHardSwish, 10, 10}, {graph.OpHardSwish, -10, 0},
		{graph.OpIdentity, 1.25, 1.25},
	}
	for _, c := range cases {
		out := run(t, &Context{}, c.op, nil, tensor.MustFromSlice([]float32{c.in}, 1))
		if math.Abs(float64(out.Data()[0]-c.want)) > 1e-6 {
			t.Errorf("%s(%v) = %v, want %v", c.op, c.in, out.Data()[0], c.want)
		}
	}
	sig := run(t, &Context{}, graph.OpSigmoid, nil, tensor.MustFromSlice([]float32{0}, 1))
	if sig.Data()[0] != 0.5 {
		t.Errorf("sigmoid(0) = %v", sig.Data()[0])
	}
}

func TestAddVariadicAndOrderIndependent(t *testing.T) {
	a := tensor.MustFromSlice([]float32{1, 2}, 1, 2)
	b := tensor.MustFromSlice([]float32{10, 20}, 1, 2)
	c := tensor.MustFromSlice([]float32{100}, 1)
	out1 := run(t, &Context{}, graph.OpAdd, nil, a, b, c)
	out2 := run(t, &Context{}, graph.OpAdd, nil, c, b, a) // scalar first (reordered)
	want := []float32{111, 122}
	for i, v := range want {
		if out1.Data()[i] != v || out2.Data()[i] != v {
			t.Fatalf("add = %v / %v, want %v", out1.Data(), out2.Data(), want)
		}
	}
}

func TestMulChannelBroadcast(t *testing.T) {
	x := tensor.MustFromSlice([]float32{1, 2, 3, 4, 5, 6, 7, 8}, 1, 2, 2, 2)
	s := tensor.MustFromSlice([]float32{2, 10}, 1, 2, 1, 1)
	out := run(t, &Context{}, graph.OpMul, nil, x, s)
	want := []float32{2, 4, 6, 8, 50, 60, 70, 80}
	for i, v := range want {
		if out.Data()[i] != v {
			t.Fatalf("mul = %v, want %v", out.Data(), want)
		}
	}
}

func TestAddChannelVectorBroadcast(t *testing.T) {
	x := tensor.New(1, 2, 2, 2)
	bias := tensor.MustFromSlice([]float32{1, 5}, 2)
	out := run(t, &Context{}, graph.OpAdd, nil, x, bias)
	want := []float32{1, 1, 1, 1, 5, 5, 5, 5}
	for i, v := range want {
		if out.Data()[i] != v {
			t.Fatalf("add[C] = %v, want %v", out.Data(), want)
		}
	}
}

func TestBroadcastUnsupported(t *testing.T) {
	reg := NewRegistry()
	n := &graph.Node{Name: "a", Op: graph.OpAdd, Inputs: []string{"x", "y"}, Outputs: []string{"z"}}
	_, err := reg.Run(&Context{}, n, []*tensor.Tensor{tensor.New(1, 2, 3, 3), tensor.New(1, 5, 1, 1)})
	if err == nil {
		t.Fatal("expected broadcast error for mismatched channels")
	}
}

func TestConcatAxis1(t *testing.T) {
	a := tensor.MustFromSlice([]float32{1, 2}, 1, 1, 1, 2)
	b := tensor.MustFromSlice([]float32{3, 4, 5, 6}, 1, 2, 1, 2)
	out := run(t, &Context{}, graph.OpConcat, map[string]graph.Attr{"axis": graph.IntAttr(1)}, a, b)
	want := []float32{1, 2, 3, 4, 5, 6}
	if out.Dim(1) != 3 {
		t.Fatalf("concat shape = %v", out.Shape())
	}
	for i, v := range want {
		if out.Data()[i] != v {
			t.Fatalf("concat = %v, want %v", out.Data(), want)
		}
	}
}

func TestConcatMismatch(t *testing.T) {
	reg := NewRegistry()
	n := &graph.Node{Name: "c", Op: graph.OpConcat, Inputs: []string{"a", "b"}, Outputs: []string{"y"},
		Attrs: map[string]graph.Attr{"axis": graph.IntAttr(1)}}
	_, err := reg.Run(&Context{}, n, []*tensor.Tensor{tensor.New(1, 2, 2, 2), tensor.New(1, 2, 3, 2)})
	if err == nil {
		t.Fatal("expected concat dim mismatch error")
	}
}

// --- registry & policy ------------------------------------------------------------

func TestRegistryUnknownOp(t *testing.T) {
	reg := NewRegistry()
	n := &graph.Node{Name: "u", Op: "Nonsense", Outputs: []string{"y"}}
	if _, err := reg.Run(&Context{}, n, nil); err == nil {
		t.Fatal("expected unknown-op error")
	}
}

func TestCheckFinitePolicy(t *testing.T) {
	reg := NewRegistry()
	x := tensor.MustFromSlice([]float32{float32(math.NaN())}, 1)
	n := &graph.Node{Name: "i", Op: graph.OpIdentity, Inputs: []string{"x"}, Outputs: []string{"y"}}
	if _, err := reg.Run(&Context{CheckFinite: true}, n, []*tensor.Tensor{x}); !errors.Is(err, ErrNonFinite) {
		t.Fatalf("got %v, want ErrNonFinite", err)
	}
	if _, err := reg.Run(&Context{}, n, []*tensor.Tensor{x}); err != nil {
		t.Fatalf("without CheckFinite NaN should pass through: %v", err)
	}
}

func TestRegistryClone(t *testing.T) {
	reg := NewRegistry()
	c := reg.Clone()
	c["Custom"] = identityKernel
	if _, ok := reg["Custom"]; ok {
		t.Fatal("Clone must not alias the original map")
	}
}

// --- shape inference ---------------------------------------------------------------

// TestQuickConvShapeInferenceMatchesExecution property-tests that static
// shape inference agrees with actual kernel output shapes for convolution
// configurations.
func TestQuickConvShapeInferenceMatchesExecution(t *testing.T) {
	f := func(seed uint64, hw, kk, ss, pp uint8) bool {
		h := int(hw%12) + 3
		k := int(kk%3) + 1
		s := int(ss%2) + 1
		p := int(pp % 2)
		if (h+2*p-k)/s+1 <= 0 {
			return true // collapsed configs rejected elsewhere
		}
		rng := rand.New(rand.NewPCG(seed, 11))
		g := graph.New("t")
		g.Inputs = []graph.ValueInfo{{Name: "x", Shape: []int{1, 2, h, h}}}
		g.AddInitializer("w", randT(rng, 3, 2, k, k))
		g.AddNode("c", graph.OpConv, []string{"x", "w"}, []string{"y"}, map[string]graph.Attr{
			"stride": graph.IntAttr(s), "pad": graph.IntAttr(p),
		})
		g.Outputs = []string{"y"}
		shapes, err := InferShapes(g)
		if err != nil {
			return false
		}
		reg := NewRegistry()
		x := randT(rng, 1, 2, h, h)
		outs, err := reg.Run(&Context{}, g.Nodes[0], []*tensor.Tensor{x, g.Initializers["w"]})
		if err != nil {
			return false
		}
		got := outs[0].Shape()
		want := shapes["y"]
		if len(got) != len(want) {
			return false
		}
		for i := range got {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestInferShapesErrors(t *testing.T) {
	g := graph.New("bad")
	g.Inputs = []graph.ValueInfo{{Name: "x"}} // no shape
	g.Outputs = nil
	if _, err := InferShapes(g); err == nil {
		t.Fatal("expected error for shapeless input")
	}

	g2 := graph.New("collapse")
	g2.Inputs = []graph.ValueInfo{{Name: "x", Shape: []int{1, 1, 2, 2}}}
	g2.AddInitializer("w", tensor.New(1, 1, 5, 5))
	g2.AddNode("c", graph.OpConv, []string{"x", "w"}, []string{"y"}, nil)
	g2.Outputs = []string{"y"}
	if _, err := InferShapes(g2); err == nil {
		t.Fatal("expected error for collapsed conv output")
	}
}

func TestConvWinogradMatchesDirect(t *testing.T) {
	rng := rand.New(rand.NewPCG(9, 9))
	cases := []struct{ nb, cin, cout, h, w, pad int }{
		{1, 3, 8, 8, 8, 1},
		{2, 4, 4, 9, 7, 1}, // odd spatial dims exercise edge tiles
		{1, 2, 3, 5, 5, 0},
		{1, 1, 1, 4, 4, 1},
	}
	for _, c := range cases {
		x := randT(rng, c.nb, c.cin, c.h, c.w)
		w := randT(rng, c.cout, c.cin, 3, 3)
		bias := randT(rng, c.cout)
		attrs := map[string]graph.Attr{"pad": graph.IntAttr(c.pad)}
		want := run(t, &Context{ConvAlgo: ConvDirect}, graph.OpConv, attrs, x, w, bias)
		got := run(t, &Context{ConvAlgo: ConvWinograd}, graph.OpConv, attrs, x, w, bias)
		if !closeTo(want, got, 1e-3) {
			t.Errorf("winograd deviates from direct for %+v", c)
		}
	}
}

func TestConvWinogradFallback(t *testing.T) {
	// Off-shape convs (5x5, stride 2, grouped) silently use the direct path.
	rng := rand.New(rand.NewPCG(10, 10))
	x := randT(rng, 1, 4, 9, 9)
	w5 := randT(rng, 4, 4, 5, 5)
	attrs := map[string]graph.Attr{"pad": graph.IntAttr(2)}
	want := run(t, &Context{ConvAlgo: ConvDirect}, graph.OpConv, attrs, x, w5)
	got := run(t, &Context{ConvAlgo: ConvWinograd}, graph.OpConv, attrs, x, w5)
	if !closeTo(want, got, 0) {
		t.Error("fallback path must be bitwise identical to direct")
	}
	w3 := randT(rng, 4, 4, 3, 3)
	strided := map[string]graph.Attr{"pad": graph.IntAttr(1), "stride": graph.IntAttr(2)}
	want = run(t, &Context{ConvAlgo: ConvDirect}, graph.OpConv, strided, x, w3)
	got = run(t, &Context{ConvAlgo: ConvWinograd}, graph.OpConv, strided, x, w3)
	if !closeTo(want, got, 0) {
		t.Error("strided fallback must be bitwise identical to direct")
	}
}

func TestConvWinogradFusedActivation(t *testing.T) {
	rng := rand.New(rand.NewPCG(11, 11))
	x := randT(rng, 1, 2, 6, 6)
	w := randT(rng, 2, 2, 3, 3)
	attrs := map[string]graph.Attr{"pad": graph.IntAttr(1), "activation": graph.StringAttr("relu")}
	want := run(t, &Context{ConvAlgo: ConvDirect}, graph.OpConv, attrs, x, w)
	got := run(t, &Context{ConvAlgo: ConvWinograd}, graph.OpConv, attrs, x, w)
	if !closeTo(want, got, 1e-3) {
		t.Error("winograd fused relu deviates")
	}
	for _, v := range got.Data() {
		if v < 0 {
			t.Fatal("fused relu not applied on winograd path")
		}
	}
}
