// Package ops implements the operator kernels of the MVTEE inference stack
// and their shape semantics. Several operators have more than one kernel
// implementation (e.g., direct vs. im2col convolution) and all matrix work is
// routed through a configurable BLAS backend; together these form the
// kernel-level diversification axis of the paper's variant pool (§4.2).
package ops

import (
	"errors"
	"fmt"
	"math"
	"runtime"
	"sync"

	"repro/internal/blas"
	"repro/internal/graph"
	"repro/internal/tensor"
	"repro/internal/workpool"
)

// ConvAlgo selects the convolution kernel implementation.
type ConvAlgo int

// Convolution algorithm choices.
const (
	ConvDirect   ConvAlgo = iota + 1 // straightforward nested loops
	ConvIm2Col                       // im2col lowering + GEMM through the BLAS backend
	ConvWinograd                     // Winograd F(2x2,3x3) tiles; falls back to direct off-shape
)

func (a ConvAlgo) String() string {
	switch a {
	case ConvDirect:
		return "direct"
	case ConvIm2Col:
		return "im2col"
	case ConvWinograd:
		return "winograd"
	default:
		return fmt.Sprintf("ConvAlgo(%d)", int(a))
	}
}

// Allocator supplies output tensors to kernels. Executors install an arena
// here so steady-state runs recycle intermediate buffers instead of
// allocating; a nil Allocator falls back to tensor.New.
type Allocator interface {
	// NewTensor returns a zero-filled tensor of the given shape.
	NewTensor(shape ...int) *tensor.Tensor
	// NewTensorUninit returns a tensor whose contents are unspecified; the
	// caller promises to overwrite every element.
	NewTensorUninit(shape ...int) *tensor.Tensor
}

// Context carries per-variant execution configuration into kernels. A zero
// Context is usable: it defaults to the naive BLAS backend, direct
// convolution and single-threaded execution. Contexts must not be copied
// after first use (they lazily own a worker pool).
type Context struct {
	// BLAS is the linear-algebra backend; nil means blas.Naive.
	BLAS blas.Backend
	// ConvAlgo selects the convolution kernel; zero means ConvDirect.
	ConvAlgo ConvAlgo
	// Parallelism bounds intra-op workers; <=1 means sequential. Workers
	// live in a persistent pool owned by the Context, created on first
	// parallel region and reused across all operator invocations.
	Parallelism int
	// CheckFinite makes kernels fail with ErrNonFinite when an output
	// contains NaN/Inf — the "error handling" hardening variant that turns
	// silent FPE corruption into a detectable crash.
	CheckFinite bool
	// Alloc, when non-nil, supplies kernel output tensors (see Allocator).
	Alloc Allocator

	poolOnce sync.Once
	pool     *workpool.Pool
}

// workers returns the context's persistent pool, creating it on first use.
// Returns nil (sequential) when Parallelism <= 1.
func (c *Context) workers() *workpool.Pool {
	if c == nil || c.Parallelism <= 1 {
		return nil
	}
	c.poolOnce.Do(func() {
		c.pool = workpool.New(c.Parallelism)
		if c.pool != nil {
			// Contexts have no Close; release the background workers when
			// the owning Context is collected.
			runtime.AddCleanup(c, func(p *workpool.Pool) { p.Close() }, c.pool)
		}
	})
	return c.pool
}

// parallelFor runs f(i) for i in [0,n) on the context's worker pool.
func (c *Context) parallelFor(n int, f func(i int)) {
	c.workers().Run(n, f)
}

// ranger exposes the worker pool to BLAS panel execution; nil means
// sequential.
func (c *Context) ranger() blas.Ranger {
	if p := c.workers(); p != nil {
		return p
	}
	return nil
}

// NewTensor allocates a zero-filled tensor through the context's allocator.
func (c *Context) NewTensor(shape ...int) *tensor.Tensor {
	if c != nil && c.Alloc != nil {
		return c.Alloc.NewTensor(shape...)
	}
	return tensor.New(shape...)
}

// NewTensorUninit allocates a tensor with unspecified contents through the
// context's allocator; every element must be overwritten by the caller.
func (c *Context) NewTensorUninit(shape ...int) *tensor.Tensor {
	if c != nil && c.Alloc != nil {
		return c.Alloc.NewTensorUninit(shape...)
	}
	return tensor.New(shape...)
}

// CloneTensor deep-copies t through the context's allocator.
func (c *Context) CloneTensor(t *tensor.Tensor) *tensor.Tensor {
	if c == nil || c.Alloc == nil {
		return t.Clone()
	}
	out := c.Alloc.NewTensorUninit(t.Shape()...)
	copy(out.Data(), t.Data())
	return out
}

// ErrNonFinite is returned by kernels when CheckFinite is set and an output
// tensor contains NaN or Inf.
var ErrNonFinite = errors.New("ops: non-finite value in kernel output")

func (c *Context) blas() blas.Backend {
	if c.BLAS == nil {
		return blas.MustNew(blas.Naive)
	}
	return c.BLAS
}

func (c *Context) convAlgo() ConvAlgo {
	if c.ConvAlgo == 0 {
		return ConvDirect
	}
	return c.ConvAlgo
}

// Kernel executes one operator: given the node (for attributes) and its
// resolved input tensors, it returns the output tensors in node-output order.
type Kernel func(ctx *Context, n *graph.Node, inputs []*tensor.Tensor) ([]*tensor.Tensor, error)

// Registry maps operator types to kernels. Registries are cheap value maps;
// runtimes copy and override entries to build diversified kernel sets.
type Registry map[string]Kernel

// NewRegistry returns the default kernel registry covering every operator in
// the IR vocabulary.
func NewRegistry() Registry {
	return Registry{
		graph.OpConv:          convKernel,
		graph.OpConvRelu:      convReluKernel,
		graph.OpConvBNRelu:    convReluKernel, // BN already folded into weights
		graph.OpDepthwiseConv: convKernel,     // group attr drives depthwise path
		graph.OpGemm:          gemmKernel,
		graph.OpMatMul:        matMulKernel,
		graph.OpBatchNorm:     batchNormKernel,
		graph.OpRelu:          unaryKernel(relu),
		graph.OpRelu6:         unaryKernel(relu6),
		graph.OpSigmoid:       unaryKernel(sigmoid),
		graph.OpHardSwish:     unaryKernel(hardSwish),
		graph.OpHardSigmoid:   unaryKernel(hardSigmoid),
		graph.OpMaxPool:       maxPoolKernel,
		graph.OpAvgPool:       avgPoolKernel,
		graph.OpGlobalAvgPool: globalAvgPoolKernel,
		graph.OpAdd:           addKernel,
		graph.OpMul:           mulKernel,
		graph.OpConcat:        concatKernel,
		graph.OpSoftmax:       softmaxKernel,
		graph.OpFlatten:       flattenKernel,
		graph.OpIdentity:      identityKernel,
		graph.OpPad:           padKernel,
		graph.OpLayerNorm:     layerNormKernel,
		graph.OpGelu:          unaryKernel(gelu),
		graph.OpTranspose:     transposeKernel,
		graph.OpReshape:       reshapeKernel,
		graph.OpBatchMatMul:   batchMatMulKernel,
		graph.OpReduceMean:    reduceMeanKernel,
	}
}

// Clone returns a copy of the registry that can be overridden independently.
func (r Registry) Clone() Registry {
	c := make(Registry, len(r))
	for k, v := range r {
		c[k] = v
	}
	return c
}

// Run executes the kernel for n, applying the CheckFinite policy.
func (r Registry) Run(ctx *Context, n *graph.Node, inputs []*tensor.Tensor) ([]*tensor.Tensor, error) {
	k, ok := r[n.Op]
	if !ok {
		return nil, fmt.Errorf("ops: no kernel for op %q (node %q)", n.Op, n.Name)
	}
	outs, err := k(ctx, n, inputs)
	if err != nil {
		return nil, fmt.Errorf("ops: node %q (%s): %w", n.Name, n.Op, err)
	}
	if ctx != nil && ctx.CheckFinite {
		for _, o := range outs {
			if o.HasNaN() {
				return nil, fmt.Errorf("node %q (%s): %w", n.Name, n.Op, ErrNonFinite)
			}
		}
	}
	return outs, nil
}

// --- elementwise activations -------------------------------------------------

func relu(x float32) float32 {
	if x < 0 {
		return 0
	}
	return x
}

func relu6(x float32) float32 {
	if x < 0 {
		return 0
	}
	if x > 6 {
		return 6
	}
	return x
}

func sigmoid(x float32) float32 {
	return float32(1 / (1 + math.Exp(-float64(x))))
}

func hardSigmoid(x float32) float32 {
	y := x/6 + 0.5
	if y < 0 {
		return 0
	}
	if y > 1 {
		return 1
	}
	return y
}

func hardSwish(x float32) float32 { return x * hardSigmoid(x) }

func unaryKernel(f func(float32) float32) Kernel {
	return func(ctx *Context, _ *graph.Node, inputs []*tensor.Tensor) ([]*tensor.Tensor, error) {
		if len(inputs) != 1 {
			return nil, fmt.Errorf("unary op wants 1 input, got %d", len(inputs))
		}
		out := ctx.CloneTensor(inputs[0])
		out.Apply(f)
		return []*tensor.Tensor{out}, nil
	}
}

func identityKernel(ctx *Context, _ *graph.Node, inputs []*tensor.Tensor) ([]*tensor.Tensor, error) {
	if len(inputs) != 1 {
		return nil, fmt.Errorf("Identity wants 1 input, got %d", len(inputs))
	}
	return []*tensor.Tensor{ctx.CloneTensor(inputs[0])}, nil
}
