package ops

import (
	"fmt"
	"math"

	"repro/internal/blas"
	"repro/internal/graph"
	"repro/internal/tensor"
)

// Transformer-family operators — the §7.4 future-work extension
// ("running large Foundation Models within CPU TEEs is also practical"):
// LayerNorm, GELU, Transpose, Reshape, batched matrix multiply and
// mean-reduction, enough to express multi-head self-attention encoders.

// layerNormKernel normalizes the last axis: (x-μ)/σ * scale + bias, with
// scale/bias of the last-axis length.
func layerNormKernel(ctx *Context, n *graph.Node, inputs []*tensor.Tensor) ([]*tensor.Tensor, error) {
	if len(inputs) != 3 {
		return nil, fmt.Errorf("layernorm wants 3 inputs, got %d", len(inputs))
	}
	x, scale, bias := inputs[0], inputs[1], inputs[2]
	if x.Dims() < 1 {
		return nil, fmt.Errorf("layernorm wants rank >= 1")
	}
	d := x.Dim(x.Dims() - 1)
	if scale.Size() != d || bias.Size() != d {
		return nil, fmt.Errorf("layernorm params size %d/%d != last dim %d", scale.Size(), bias.Size(), d)
	}
	eps := n.Float("epsilon", 1e-5)
	out := ctx.CloneTensor(x)
	od := out.Data()
	sd, bd := scale.Data(), bias.Data()
	rows := out.Size() / d
	for r := 0; r < rows; r++ {
		seg := od[r*d : (r+1)*d]
		var mean float64
		for _, v := range seg {
			mean += float64(v)
		}
		mean /= float64(d)
		var varsum float64
		for _, v := range seg {
			dv := float64(v) - mean
			varsum += dv * dv
		}
		inv := 1 / math.Sqrt(varsum/float64(d)+eps)
		for i, v := range seg {
			seg[i] = float32((float64(v)-mean)*inv)*sd[i] + bd[i]
		}
	}
	return []*tensor.Tensor{out}, nil
}

// gelu is the tanh approximation used by BERT/GPT-family models.
func gelu(x float32) float32 {
	const c = 0.7978845608028654 // sqrt(2/pi)
	x64 := float64(x)
	return float32(0.5 * x64 * (1 + math.Tanh(c*(x64+0.044715*x64*x64*x64))))
}

// transposeKernel permutes axes per the "perm" attribute.
func transposeKernel(ctx *Context, n *graph.Node, inputs []*tensor.Tensor) ([]*tensor.Tensor, error) {
	if len(inputs) != 1 {
		return nil, fmt.Errorf("transpose wants 1 input, got %d", len(inputs))
	}
	x := inputs[0]
	perm := n.IntsOr("perm", nil)
	if len(perm) != x.Dims() {
		return nil, fmt.Errorf("transpose perm rank %d != tensor rank %d", len(perm), x.Dims())
	}
	inShape := x.Shape()
	outShape := make([]int, len(perm))
	seen := make([]bool, len(perm))
	for i, p := range perm {
		if p < 0 || p >= len(perm) || seen[p] {
			return nil, fmt.Errorf("transpose perm %v invalid", perm)
		}
		seen[p] = true
		outShape[i] = inShape[p]
	}
	out := ctx.NewTensorUninit(outShape...)
	inStride := strides(inShape)
	outStride := strides(outShape)
	od, xd := out.Data(), x.Data()
	for o := range od {
		// Decompose o into out coordinates, map back through perm.
		rem := o
		src := 0
		for i := range outShape {
			idx := rem / outStride[i]
			rem %= outStride[i]
			src += idx * inStride[perm[i]]
		}
		od[o] = xd[src]
	}
	return []*tensor.Tensor{out}, nil
}

func strides(shape []int) []int {
	s := make([]int, len(shape))
	acc := 1
	for i := len(shape) - 1; i >= 0; i-- {
		s[i] = acc
		acc *= shape[i]
	}
	return s
}

// reshapeKernel reshapes to the static "shape" attribute (volume-preserving).
func reshapeKernel(ctx *Context, n *graph.Node, inputs []*tensor.Tensor) ([]*tensor.Tensor, error) {
	if len(inputs) != 1 {
		return nil, fmt.Errorf("reshape wants 1 input, got %d", len(inputs))
	}
	shape := n.IntsOr("shape", nil)
	if shape == nil {
		return nil, fmt.Errorf("reshape needs a shape attribute")
	}
	out, err := ctx.CloneTensor(inputs[0]).Reshape(shape...)
	if err != nil {
		return nil, err
	}
	return []*tensor.Tensor{out}, nil
}

// batchMatMulKernel computes C[b] = A[b] · B[b] for A [B,M,K]; B may be
// [B,K,N] (per-batch) or [K,N] (broadcast weights). The "transB" attribute
// (0/1) multiplies by Bᵀ instead — the Q·Kᵀ pattern of attention.
func batchMatMulKernel(ctx *Context, n *graph.Node, inputs []*tensor.Tensor) ([]*tensor.Tensor, error) {
	if len(inputs) != 2 {
		return nil, fmt.Errorf("batchmatmul wants 2 inputs, got %d", len(inputs))
	}
	a, bm := inputs[0], inputs[1]
	if a.Dims() != 3 {
		return nil, fmt.Errorf("batchmatmul A must be 3-D, got %v", a.Shape())
	}
	nb, m, k := a.Dim(0), a.Dim(1), a.Dim(2)
	transB := n.Int("transB", 0) == 1
	be := ctx.blas()

	var bn int // output columns
	var bData func(batch int) []float32
	switch bm.Dims() {
	case 3:
		if bm.Dim(0) != nb {
			return nil, fmt.Errorf("batchmatmul batch mismatch: %d vs %d", nb, bm.Dim(0))
		}
		rows, cols := bm.Dim(1), bm.Dim(2)
		if err := checkInner(transB, k, rows, cols); err != nil {
			return nil, err
		}
		if transB {
			bn = rows
		} else {
			bn = cols
		}
		sz := rows * cols
		bData = func(batch int) []float32 { return bm.Data()[batch*sz : (batch+1)*sz] }
	case 2:
		rows, cols := bm.Dim(0), bm.Dim(1)
		if err := checkInner(transB, k, rows, cols); err != nil {
			return nil, err
		}
		if transB {
			bn = rows
		} else {
			bn = cols
		}
		bData = func(int) []float32 { return bm.Data() }
	default:
		return nil, fmt.Errorf("batchmatmul B must be 2-D or 3-D, got %v", bm.Shape())
	}

	out := ctx.NewTensorUninit(nb, m, bn)
	od := out.Data()
	var tbufP *[]float32
	var tbuf []float32
	if transB {
		tbufP = getScratch(k * bn)
		tbuf = *tbufP
	}
	ranger := ctx.ranger()
	for batch := 0; batch < nb; batch++ {
		ab := a.Data()[batch*m*k : (batch+1)*m*k]
		bb := bData(batch)
		if transB {
			// bb is [bn, k]; transpose into [k, bn] for the row-major GEMM.
			for r := 0; r < bn; r++ {
				for c := 0; c < k; c++ {
					tbuf[c*bn+r] = bb[r*k+c]
				}
			}
			bb = tbuf
		}
		blas.ParallelGemm(be, ranger, m, bn, k, ab, bb, od[batch*m*bn:(batch+1)*m*bn])
	}
	if tbufP != nil {
		putScratch(tbufP)
	}
	return []*tensor.Tensor{out}, nil
}

func checkInner(transB bool, k, rows, cols int) error {
	inner := rows
	if transB {
		inner = cols
	}
	if inner != k {
		return fmt.Errorf("batchmatmul inner dim %d != %d", inner, k)
	}
	return nil
}

// reduceMeanKernel averages over the "axis" attribute (keepdims=false).
func reduceMeanKernel(ctx *Context, n *graph.Node, inputs []*tensor.Tensor) ([]*tensor.Tensor, error) {
	if len(inputs) != 1 {
		return nil, fmt.Errorf("reducemean wants 1 input, got %d", len(inputs))
	}
	x := inputs[0]
	axis := n.Int("axis", 1)
	if axis < 0 || axis >= x.Dims() {
		return nil, fmt.Errorf("reducemean axis %d out of range for rank %d", axis, x.Dims())
	}
	shape := x.Shape()
	outShape := append(append([]int{}, shape[:axis]...), shape[axis+1:]...)
	out := ctx.NewTensorUninit(outShape...)
	outer := 1
	for _, d := range shape[:axis] {
		outer *= d
	}
	red := shape[axis]
	inner := 1
	for _, d := range shape[axis+1:] {
		inner *= d
	}
	xd, od := x.Data(), out.Data()
	for o := 0; o < outer; o++ {
		for i := 0; i < inner; i++ {
			var s float64
			for r := 0; r < red; r++ {
				s += float64(xd[(o*red+r)*inner+i])
			}
			od[o*inner+i] = float32(s / float64(red))
		}
	}
	return []*tensor.Tensor{out}, nil
}
