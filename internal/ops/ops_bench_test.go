package ops

import (
	"fmt"
	"math/rand/v2"
	"testing"

	"repro/internal/blas"
	"repro/internal/graph"
	"repro/internal/tensor"
)

// BenchmarkConv compares the convolution kernel variants (direct vs im2col ×
// BLAS backend) — the dominant cost of every model in the zoo.
func BenchmarkConv(b *testing.B) {
	rng := rand.New(rand.NewPCG(2, 2))
	x := randT(rng, 1, 32, 16, 16)
	w := randT(rng, 32, 32, 3, 3)
	bias := randT(rng, 32)
	n := &graph.Node{Name: "c", Op: graph.OpConv, Inputs: []string{"x", "w", "b"},
		Outputs: []string{"y"}, Attrs: map[string]graph.Attr{"pad": graph.IntAttr(1)}}
	reg := NewRegistry()
	cases := []struct {
		name string
		ctx  *Context
	}{
		{"direct", &Context{ConvAlgo: ConvDirect}},
		{"im2col-naive", &Context{ConvAlgo: ConvIm2Col, BLAS: blas.MustNew(blas.Naive)}},
		{"im2col-blocked", &Context{ConvAlgo: ConvIm2Col, BLAS: blas.MustNew(blas.Blocked)}},
		{"im2col-packed", &Context{ConvAlgo: ConvIm2Col, BLAS: blas.MustNew(blas.Packed)}},
	}
	for _, c := range cases {
		b.Run(c.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := reg.Run(c.ctx, n, []*tensor.Tensor{x, w, bias}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkBatchNorm measures the fused-affine BatchNorm kernel.
func BenchmarkBatchNorm(b *testing.B) {
	rng := rand.New(rand.NewPCG(3, 3))
	x := randT(rng, 1, 64, 16, 16)
	p := make([]*tensor.Tensor, 4)
	for i := range p {
		p[i] = randT(rng, 64)
		p[i].Apply(func(v float32) float32 { return v*v + 0.5 }) // positive variance
	}
	n := &graph.Node{Name: "bn", Op: graph.OpBatchNorm,
		Inputs: []string{"x", "s", "b", "m", "v"}, Outputs: []string{"y"}}
	reg := NewRegistry()
	ctx := &Context{}
	for i := 0; i < b.N; i++ {
		if _, err := reg.Run(ctx, n, append([]*tensor.Tensor{x}, p...)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkConvParallelism shows intra-op scaling (single-core hosts see no
// gain; the paper's testbed does).
func BenchmarkConvParallelism(b *testing.B) {
	rng := rand.New(rand.NewPCG(4, 4))
	x := randT(rng, 1, 32, 16, 16)
	w := randT(rng, 64, 32, 3, 3)
	n := &graph.Node{Name: "c", Op: graph.OpConv, Inputs: []string{"x", "w"},
		Outputs: []string{"y"}, Attrs: map[string]graph.Attr{"pad": graph.IntAttr(1)}}
	reg := NewRegistry()
	for _, par := range []int{1, 4} {
		b.Run(fmt.Sprintf("par%d", par), func(b *testing.B) {
			ctx := &Context{Parallelism: par}
			for i := 0; i < b.N; i++ {
				if _, err := reg.Run(ctx, n, []*tensor.Tensor{x, w}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
