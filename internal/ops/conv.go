package ops

import (
	"fmt"

	"repro/internal/blas"
	"repro/internal/graph"
	"repro/internal/tensor"
)

// convParams collects the resolved convolution hyper-parameters of a node.
type convParams struct {
	kh, kw     int
	stride     int
	pad        int
	group      int
	cin, cout  int // full channel counts (not per-group)
	hasBias    bool
	fusedRelu  bool
	fusedRelu6 bool
}

func resolveConv(n *graph.Node, x, w *tensor.Tensor, nin int) (convParams, error) {
	var p convParams
	if x.Dims() != 4 {
		return p, fmt.Errorf("conv input must be NCHW, got shape %v", x.Shape())
	}
	if w.Dims() != 4 {
		return p, fmt.Errorf("conv weight must be [Cout,Cin/g,Kh,Kw], got %v", w.Shape())
	}
	p.cout, p.kh, p.kw = w.Dim(0), w.Dim(2), w.Dim(3)
	p.cin = x.Dim(1)
	p.stride = n.Int("stride", 1)
	p.pad = n.Int("pad", 0)
	p.group = n.Int("group", 1)
	if n.Op == graph.OpDepthwiseConv {
		p.group = p.cin
	}
	if p.group < 1 || p.cin%p.group != 0 || p.cout%p.group != 0 {
		return p, fmt.Errorf("conv groups %d incompatible with cin=%d cout=%d", p.group, p.cin, p.cout)
	}
	if w.Dim(1) != p.cin/p.group {
		return p, fmt.Errorf("conv weight cin/g %d != input cin %d / groups %d", w.Dim(1), p.cin, p.group)
	}
	p.hasBias = nin >= 3
	switch n.Str("activation", "") {
	case "relu":
		p.fusedRelu = true
	case "relu6":
		p.fusedRelu6 = true
	}
	if n.Op == graph.OpConvRelu || n.Op == graph.OpConvBNRelu {
		p.fusedRelu = true
	}
	return p, nil
}

func convOutDim(in, k, stride, pad int) int {
	return (in+2*pad-k)/stride + 1
}

func convKernel(ctx *Context, n *graph.Node, inputs []*tensor.Tensor) ([]*tensor.Tensor, error) {
	if len(inputs) < 2 {
		return nil, fmt.Errorf("conv wants >=2 inputs, got %d", len(inputs))
	}
	x, w := inputs[0], inputs[1]
	p, err := resolveConv(n, x, w, len(inputs))
	if err != nil {
		return nil, err
	}
	var bias []float32
	if p.hasBias {
		bias = inputs[2].Data()
	}
	var out *tensor.Tensor
	switch algo := ctx.convAlgo(); {
	case algo == ConvIm2Col:
		out = convIm2Col(ctx, x, w, bias, p)
	case algo == ConvWinograd && winogradApplicable(p):
		// convWinograd applies its own fused activation.
		return []*tensor.Tensor{convWinograd(ctx, x, w, bias, p)}, nil
	default:
		out = convDirect(ctx, x, w, bias, p)
	}
	applyFusedActivation(out, p)
	return []*tensor.Tensor{out}, nil
}

func convReluKernel(ctx *Context, n *graph.Node, inputs []*tensor.Tensor) ([]*tensor.Tensor, error) {
	outs, err := convKernel(ctx, n, inputs)
	if err != nil {
		return nil, err
	}
	outs[0].Apply(relu)
	return outs, nil
}

func applyFusedActivation(out *tensor.Tensor, p convParams) {
	switch {
	case p.fusedRelu:
		out.Apply(relu)
	case p.fusedRelu6:
		out.Apply(relu6)
	}
}

// convDirect is the straightforward nested-loop convolution.
func convDirect(ctx *Context, x, w *tensor.Tensor, bias []float32, p convParams) *tensor.Tensor {
	nb, hin, win := x.Dim(0), x.Dim(2), x.Dim(3)
	hout := convOutDim(hin, p.kh, p.stride, p.pad)
	wout := convOutDim(win, p.kw, p.stride, p.pad)
	out := ctx.NewTensorUninit(nb, p.cout, hout, wout)
	xd, wd, od := x.Data(), w.Data(), out.Data()
	cinG := p.cin / p.group
	coutG := p.cout / p.group

	ctx.parallelFor(nb*p.cout, func(idx int) {
		b, oc := idx/p.cout, idx%p.cout
		g := oc / coutG
		icBase := g * cinG
		var bv float32
		if bias != nil {
			bv = bias[oc]
		}
		for oh := 0; oh < hout; oh++ {
			ihBase := oh*p.stride - p.pad
			for ow := 0; ow < wout; ow++ {
				iwBase := ow*p.stride - p.pad
				acc := bv
				for ic := 0; ic < cinG; ic++ {
					xc := xd[((b*p.cin+icBase+ic)*hin)*win:]
					wc := wd[((oc*cinG+ic)*p.kh)*p.kw:]
					for fh := 0; fh < p.kh; fh++ {
						ih := ihBase + fh
						if ih < 0 || ih >= hin {
							continue
						}
						for fw := 0; fw < p.kw; fw++ {
							iw := iwBase + fw
							if iw < 0 || iw >= win {
								continue
							}
							acc += xc[ih*win+iw] * wc[fh*p.kw+fw]
						}
					}
				}
				od[((b*p.cout+oc)*hout+oh)*wout+ow] = acc
			}
		}
	})
	return out
}

// convIm2Col lowers convolution to GEMM via an im2col buffer, routing the
// matrix product through the context's BLAS backend. This is the kernel path
// a library-level fault (e.g., a FrameFlip-style bit flip in one BLAS
// backend) propagates through.
func convIm2Col(ctx *Context, x, w *tensor.Tensor, bias []float32, p convParams) *tensor.Tensor {
	nb, hin, win := x.Dim(0), x.Dim(2), x.Dim(3)
	hout := convOutDim(hin, p.kh, p.stride, p.pad)
	wout := convOutDim(win, p.kw, p.stride, p.pad)
	out := ctx.NewTensorUninit(nb, p.cout, hout, wout)
	xd, wd, od := x.Data(), w.Data(), out.Data()
	cinG := p.cin / p.group
	coutG := p.cout / p.group
	be := ctx.blas()

	k := cinG * p.kh * p.kw
	spatial := hout * wout
	// When the outer (batch, group) loop is trivial — the common single-image
	// inference case — parallelize inside the GEMM instead.
	var gemmRanger blas.Ranger
	if nb*p.group == 1 {
		gemmRanger = ctx.ranger()
	}
	ctx.parallelFor(nb*p.group, func(idx int) {
		b, g := idx/p.group, idx%p.group
		colBuf := getScratch(k*spatial + coutG*spatial)
		col, prod := (*colBuf)[:k*spatial], (*colBuf)[k*spatial:]
		// Layout: rows = (ic, fh, fw), cols = (oh, ow) — matches the weight
		// row layout so GEMM accumulates in the same index order as direct.
		row := 0
		for ic := 0; ic < cinG; ic++ {
			xc := xd[((b*p.cin+g*cinG+ic)*hin)*win:]
			for fh := 0; fh < p.kh; fh++ {
				for fw := 0; fw < p.kw; fw++ {
					dst := col[row*spatial:]
					ci := 0
					for oh := 0; oh < hout; oh++ {
						ih := oh*p.stride - p.pad + fh
						for ow := 0; ow < wout; ow++ {
							iw := ow*p.stride - p.pad + fw
							if ih >= 0 && ih < hin && iw >= 0 && iw < win {
								dst[ci] = xc[ih*win+iw]
							} else {
								dst[ci] = 0
							}
							ci++
						}
					}
					row++
				}
			}
		}
		blas.ParallelGemm(be, gemmRanger, coutG, spatial, k, wd[g*coutG*k:(g+1)*coutG*k], col, prod)
		for oc := 0; oc < coutG; oc++ {
			dst := od[((b*p.cout+g*coutG+oc)*hout)*wout:]
			src := prod[oc*spatial:]
			var bv float32
			if bias != nil {
				bv = bias[g*coutG+oc]
			}
			for i := 0; i < spatial; i++ {
				dst[i] = src[i] + bv
			}
		}
		putScratch(colBuf)
	})
	return out
}

// --- pooling ------------------------------------------------------------------

func maxPoolKernel(ctx *Context, n *graph.Node, inputs []*tensor.Tensor) ([]*tensor.Tensor, error) {
	return poolKernel(ctx, n, inputs, true)
}

func avgPoolKernel(ctx *Context, n *graph.Node, inputs []*tensor.Tensor) ([]*tensor.Tensor, error) {
	return poolKernel(ctx, n, inputs, false)
}

func poolKernel(ctx *Context, n *graph.Node, inputs []*tensor.Tensor, isMax bool) ([]*tensor.Tensor, error) {
	if len(inputs) != 1 {
		return nil, fmt.Errorf("pool wants 1 input, got %d", len(inputs))
	}
	x := inputs[0]
	if x.Dims() != 4 {
		return nil, fmt.Errorf("pool input must be NCHW, got %v", x.Shape())
	}
	k := n.Int("kernel", 2)
	stride := n.Int("stride", k)
	pad := n.Int("pad", 0)
	nb, c, hin, win := x.Dim(0), x.Dim(1), x.Dim(2), x.Dim(3)
	hout := convOutDim(hin, k, stride, pad)
	wout := convOutDim(win, k, stride, pad)
	out := ctx.NewTensorUninit(nb, c, hout, wout)
	xd, od := x.Data(), out.Data()

	ctx.parallelFor(nb*c, func(idx int) {
		xc := xd[idx*hin*win:]
		oc := od[idx*hout*wout:]
		for oh := 0; oh < hout; oh++ {
			for ow := 0; ow < wout; ow++ {
				var acc float32
				count := 0
				first := true
				for fh := 0; fh < k; fh++ {
					ih := oh*stride - pad + fh
					if ih < 0 || ih >= hin {
						continue
					}
					for fw := 0; fw < k; fw++ {
						iw := ow*stride - pad + fw
						if iw < 0 || iw >= win {
							continue
						}
						v := xc[ih*win+iw]
						if isMax {
							if first || v > acc {
								acc = v
							}
							first = false
						} else {
							acc += v
							count++
						}
					}
				}
				if !isMax && count > 0 {
					acc /= float32(count)
				}
				oc[oh*wout+ow] = acc
			}
		}
	})
	return []*tensor.Tensor{out}, nil
}

func globalAvgPoolKernel(ctx *Context, _ *graph.Node, inputs []*tensor.Tensor) ([]*tensor.Tensor, error) {
	if len(inputs) != 1 {
		return nil, fmt.Errorf("global avg pool wants 1 input, got %d", len(inputs))
	}
	x := inputs[0]
	if x.Dims() != 4 {
		return nil, fmt.Errorf("global avg pool input must be NCHW, got %v", x.Shape())
	}
	nb, c, h, w := x.Dim(0), x.Dim(1), x.Dim(2), x.Dim(3)
	out := ctx.NewTensorUninit(nb, c, 1, 1)
	xd, od := x.Data(), out.Data()
	area := float32(h * w)
	ctx.parallelFor(nb*c, func(idx int) {
		var s float32
		for _, v := range xd[idx*h*w : (idx+1)*h*w] {
			s += v
		}
		od[idx] = s / area
	})
	return []*tensor.Tensor{out}, nil
}

func padKernel(ctx *Context, n *graph.Node, inputs []*tensor.Tensor) ([]*tensor.Tensor, error) {
	if len(inputs) != 1 {
		return nil, fmt.Errorf("pad wants 1 input, got %d", len(inputs))
	}
	x := inputs[0]
	if x.Dims() != 4 {
		return nil, fmt.Errorf("pad input must be NCHW, got %v", x.Shape())
	}
	pads := n.IntsOr("pads", []int{0, 0, 0, 0}) // top, bottom, left, right
	if len(pads) != 4 {
		return nil, fmt.Errorf("pads attr must have 4 entries, got %d", len(pads))
	}
	nb, c, h, w := x.Dim(0), x.Dim(1), x.Dim(2), x.Dim(3)
	ho, wo := h+pads[0]+pads[1], w+pads[2]+pads[3]
	// Pad relies on zero-filled borders; NewTensor (not Uninit) guarantees
	// them even for arena-recycled buffers.
	out := ctx.NewTensor(nb, c, ho, wo)
	xd, od := x.Data(), out.Data()
	for bc := 0; bc < nb*c; bc++ {
		for ih := 0; ih < h; ih++ {
			src := xd[bc*h*w+ih*w : bc*h*w+(ih+1)*w]
			dst := od[bc*ho*wo+(ih+pads[0])*wo+pads[2]:]
			copy(dst[:w], src)
		}
	}
	return []*tensor.Tensor{out}, nil
}
