package core

import (
	"fmt"
	"net"
	"os"
	"path/filepath"
	"sync"

	"repro/internal/enclave"
	"repro/internal/manifest"
	"repro/internal/monitor"
	"repro/internal/securechan"
	"repro/internal/teeos"
	"repro/internal/variant"
)

// SpareFactoryConfig wires DirSpareFactory to a process-separated monitor
// running against a saved bundle directory.
type SpareFactoryConfig struct {
	// Dir is the bundle directory (mvtee-tool build output).
	Dir string
	// SetIdx selects the partition set, matching the monitor's provisioning.
	SetIdx int
	// Monitor receives the synthesized spares via AddSpare.
	Monitor *monitor.Monitor
	// MonitorEnclave attests the monitor's side of each in-memory channel.
	MonitorEnclave *enclave.Enclave
	// Platform launches the variant enclaves (the bundle's shared simulated
	// platform, already trusted by Verifier).
	Platform *enclave.Platform
	// Verifier checks both handshake directions.
	Verifier *enclave.Verifier
	// KeyFor resolves a pool entry key to its KDK (the monitor's owner-
	// provisioned table or the on-disk key table).
	KeyFor func(entryKey string) ([]byte, bool)
}

// DirSpareFactory builds the spare-provisioning hook for process-separated
// monitors (cmd/mvtee-monitor): each invocation launches a fresh variant TEE
// in-process from the bundle's init manifest — the exact boot sequence
// cmd/mvtee-variant performs, minus the TCP socket — connects it to the
// monitor over an in-memory attested channel, and registers it with AddSpare.
// The synthesized spare idles in stage-1 bootstrap until a Recover response
// promotes it into a dead slot. Specs cycle through the partition's spare
// plan (falling back to its variant plan) so successive spares stay
// heterogeneous, mirroring Deployment.ProvisionSpare.
func DirSpareFactory(cfg SpareFactoryConfig) (func(partition int) error, error) {
	meta, err := LoadMeta(cfg.Dir)
	if err != nil {
		return nil, err
	}
	imb, err := os.ReadFile(filepath.Join(cfg.Dir, InitManFile))
	if err != nil {
		return nil, fmt.Errorf("core: spare factory: %w", err)
	}
	im, err := manifest.Unmarshal(imb)
	if err != nil {
		return nil, fmt.Errorf("core: spare factory: %w", err)
	}
	host := teeos.DirFS(cfg.Dir)
	initBin, err := host.Get(InitEntrypoint)
	if err != nil {
		return nil, fmt.Errorf("core: spare factory: %w", err)
	}
	verify := func(r *enclave.Report) error {
		if r == nil {
			return fmt.Errorf("core: peer presented no attestation report")
		}
		return cfg.Verifier.Verify(r, nil)
	}

	var mu sync.Mutex
	seq := 0
	return func(partition int) error {
		mvx := cfg.Monitor.Config()
		if mvx == nil {
			return fmt.Errorf("core: spare factory: monitor not provisioned")
		}
		if partition < 0 {
			partition = 0
		}
		if partition >= len(mvx.Plans) {
			return fmt.Errorf("core: spare factory: partition %d out of range", partition)
		}
		specs := mvx.Plans[partition].Variants
		if partition < len(mvx.Spares) && len(mvx.Spares[partition].Variants) > 0 {
			specs = mvx.Spares[partition].Variants
		}
		if len(specs) == 0 {
			return fmt.Errorf("core: spare factory: partition %d has no specs", partition)
		}
		mu.Lock()
		seq++
		n := seq
		mu.Unlock()
		spec := specs[n%len(specs)]

		key := EntryKeyFor(cfg.SetIdx, partition, spec)
		kdk, ok := cfg.KeyFor(key)
		if !ok {
			return fmt.Errorf("core: spare factory: no pool key for %s", key)
		}
		e := Entry{Set: cfg.SetIdx, Partition: partition, Spec: spec}

		encl, err := cfg.Platform.Launch(enclave.Image{
			Name:         "mvtee-variant",
			Code:         initBin,
			InitialPages: 64 << 20,
		})
		if err != nil {
			return fmt.Errorf("core: spare factory: %w", err)
		}
		vos, err := teeos.New(encl, im, host, nil)
		if err != nil {
			encl.Destroy()
			return fmt.Errorf("core: spare factory: %w", err)
		}

		monRaw, varRaw := net.Pipe()
		type hsres struct {
			c   securechan.Conn
			err error
		}
		vCh := make(chan hsres, 1)
		go func() {
			c, err := securechan.Server(varRaw, encl, verify)
			vCh <- hsres{c, err}
		}()
		mc, err := securechan.Client(monRaw, cfg.MonitorEnclave, verify)
		vr := <-vCh
		if err != nil || vr.err != nil {
			if mc != nil {
				_ = mc.Close()
			}
			if vr.c != nil {
				_ = vr.c.Close()
			}
			encl.Destroy()
			if err != nil {
				return fmt.Errorf("core: spare factory handshake: %w", err)
			}
			return fmt.Errorf("core: spare factory handshake: %w", vr.err)
		}
		// The variant serves (or idles in bootstrap) until its channel closes:
		// RetireSpare tears an unclaimed spare down, engine shutdown a
		// promoted one. The enclave is destroyed when the loop exits.
		go func() {
			_ = variant.Run(vr.c, vos, variant.Options{})
			encl.Destroy()
		}()

		cfg.Monitor.AddSpare(mc, monitor.Assignment{
			VariantID:  fmt.Sprintf("autospare-p%d-%s-%d", partition, spec, n),
			Partition:  partition,
			Spec:       spec,
			KDK:        kdk,
			Manifest:   e.ManifestPath(),
			Files:      []string{e.GraphPath(), e.SpecPath()},
			Entrypoint: e.EntrypointPath(),
			Evidence:   meta.Evidence[key],
		})
		return nil
	}, nil
}
