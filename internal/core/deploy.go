package core

import (
	"fmt"
	"net"
	"sync"

	"repro/internal/attest"
	"repro/internal/diversify"
	"repro/internal/enclave"
	"repro/internal/infer"
	"repro/internal/models"
	"repro/internal/monitor"
	"repro/internal/securechan"
	"repro/internal/teeos"
	"repro/internal/tensor"
	"repro/internal/variant"
	"repro/internal/wire"
)

// Transport selects how monitor and variants are connected in an in-process
// deployment.
type Transport int

// Transports.
const (
	// InProc connects TEEs over in-memory pipes.
	InProc Transport = iota + 1
	// TCPLoopback connects TEEs over real localhost TCP sockets (the
	// closest in-process analogue to the paper's co-located setup).
	TCPLoopback
)

// DeployConfig drives the online phase.
type DeployConfig struct {
	// MVX is the runtime-provisioned configuration (partition set choice,
	// variant claims, execution policy).
	MVX *monitor.MVXConfig
	// Transport selects the interconnect; zero means InProc.
	Transport Transport
	// Encrypt enables the RA-TLS-style secure channels (default in the
	// paper; disable only for the Figure 10 no-encryption baseline).
	Encrypt bool
	// EPCBytes sizes each simulated platform's secure memory; zero means
	// 128 GiB (the paper's testbed EPC).
	EPCBytes int64
	// VariantOptions, if set, customizes each variant's construction —
	// the hook fault-injection experiments use.
	VariantOptions func(variantID string, e Entry) variant.Options
	// DeferEngineStart leaves the engine stopped so the user can run the
	// combined attestation of all TEEs (Figure 6) before provisioning
	// inputs; call Deployment.Start afterwards.
	DeferEngineStart bool
}

// Deployment is a running MVTEE system.
type Deployment struct {
	Monitor *monitor.Monitor
	Engine  *monitor.Engine
	Bundle  *Bundle
	SetIdx  int

	cfg       DeployConfig
	monEncl   *enclave.Enclave
	platforms map[enclave.TEEType]*enclave.Platform
	verifier  *enclave.Verifier
	enclaves  []*enclave.Enclave
	wg        sync.WaitGroup
	closers   []func()

	// spareMu serializes post-deploy spare provisioning (the adaptive
	// controller's scale-up hook) against itself; Deploy-time bring-up is
	// single-threaded and does not take it.
	spareMu  sync.Mutex
	spareSeq int
}

// platform returns (creating on first use) the simulated machine for a TEE
// type, registering it as a trust anchor.
func (d *Deployment) platform(tt enclave.TEEType) (*enclave.Platform, error) {
	if p, ok := d.platforms[tt]; ok {
		return p, nil
	}
	p, err := enclave.NewPlatform(fmt.Sprintf("plat-%s", tt), tt, d.cfg.EPCBytes)
	if err != nil {
		return nil, err
	}
	d.platforms[tt] = p
	d.verifier.Trust(p)
	return p, nil
}

// launchAndBind brings up one variant TEE for the pool entry and runs the
// bootstrap/binding protocol against the monitor.
func (d *Deployment) launchAndBind(variantID string, e Entry) error {
	b := d.Bundle
	kdk, ok := b.Keys[e]
	if !ok {
		return fmt.Errorf("core: no pool entry %+v", e)
	}
	spec, err := findSpec(b, e.Spec)
	if err != nil {
		return err
	}
	tt, err := spec.TEEType()
	if err != nil {
		return err
	}
	plat, err := d.platform(tt)
	if err != nil {
		return err
	}
	vEncl, err := plat.Launch(enclave.Image{
		Name:         "mvtee-variant",
		Code:         b.InitBinary,
		InitialPages: 64 << 20,
	})
	if err != nil {
		return err
	}
	d.enclaves = append(d.enclaves, vEncl)
	vos, err := teeos.New(vEncl, b.InitManifest, b.FS, nil)
	if err != nil {
		return err
	}
	monConn, varConn, err := d.connect(d.cfg, d.monEncl, vEncl, d.verifier)
	if err != nil {
		return err
	}
	// Ensure Close unblocks the variant goroutine even when bring-up fails
	// before the engine exists (Engine.Stop normally closes these).
	d.closers = append(d.closers, func() {
		_ = monConn.Close()
		_ = varConn.Close()
	})
	var vopts variant.Options
	if d.cfg.VariantOptions != nil {
		vopts = d.cfg.VariantOptions(variantID, e)
	}
	d.wg.Add(1)
	go func() {
		defer d.wg.Done()
		_ = variant.Run(varConn, vos, vopts) // terminates on Shutdown or conn close
	}()
	if _, err := d.Monitor.Bind(monConn, monitor.Assignment{
		VariantID:  variantID,
		Partition:  e.Partition,
		Spec:       e.Spec,
		KDK:        kdk,
		Manifest:   e.ManifestPath(),
		Files:      []string{e.GraphPath(), e.SpecPath()},
		Entrypoint: e.EntrypointPath(),
		Evidence:   b.Evidence[e],
	}); err != nil {
		return fmt.Errorf("core: bind %s: %w", variantID, err)
	}
	return nil
}

// launchSpare brings up a spare variant TEE (Figure 6: the pool of spares
// pre-established for cheap recovery) and registers it with the monitor
// without binding: the spare idles in stage-1 bootstrap, waiting for its
// assignment, until a Recover response promotes it into a dead slot.
func (d *Deployment) launchSpare(variantID string, e Entry) error {
	b := d.Bundle
	kdk, ok := b.Keys[e]
	if !ok {
		return fmt.Errorf("core: no pool entry %+v", e)
	}
	spec, err := findSpec(b, e.Spec)
	if err != nil {
		return err
	}
	tt, err := spec.TEEType()
	if err != nil {
		return err
	}
	plat, err := d.platform(tt)
	if err != nil {
		return err
	}
	vEncl, err := plat.Launch(enclave.Image{
		Name:         "mvtee-variant",
		Code:         b.InitBinary,
		InitialPages: 64 << 20,
	})
	if err != nil {
		return err
	}
	d.enclaves = append(d.enclaves, vEncl)
	vos, err := teeos.New(vEncl, b.InitManifest, b.FS, nil)
	if err != nil {
		return err
	}
	monConn, varConn, err := d.connect(d.cfg, d.monEncl, vEncl, d.verifier)
	if err != nil {
		return err
	}
	d.closers = append(d.closers, func() {
		_ = monConn.Close()
		_ = varConn.Close()
	})
	var vopts variant.Options
	if d.cfg.VariantOptions != nil {
		vopts = d.cfg.VariantOptions(variantID, e)
	}
	d.wg.Add(1)
	go func() {
		defer d.wg.Done()
		_ = variant.Run(varConn, vos, vopts) // blocks in bootstrap until promoted
	}()
	d.Monitor.AddSpare(monConn, monitor.Assignment{
		VariantID:  variantID,
		Partition:  e.Partition,
		Spec:       e.Spec,
		KDK:        kdk,
		Manifest:   e.ManifestPath(),
		Files:      []string{e.GraphPath(), e.SpecPath()},
		Entrypoint: e.EntrypointPath(),
		Evidence:   b.Evidence[e],
	})
	return nil
}

// ProvisionSpare launches one additional pre-attested spare for a partition
// (the adaptive controller's spare-pool scale-up actuator; Deploy wires it
// as the monitor's spare factory). The spec is taken from the partition's
// spare plan when one is configured, else from its variant plan, cycling
// through the diversified specs so successive spares stay heterogeneous.
func (d *Deployment) ProvisionSpare(partition int) error {
	if partition < 0 {
		partition = 0
	}
	if partition >= len(d.cfg.MVX.Plans) {
		return fmt.Errorf("core: partition %d out of range", partition)
	}
	specs := d.cfg.MVX.Plans[partition].Variants
	if partition < len(d.cfg.MVX.Spares) && len(d.cfg.MVX.Spares[partition].Variants) > 0 {
		specs = d.cfg.MVX.Spares[partition].Variants
	}
	if len(specs) == 0 {
		return fmt.Errorf("core: partition %d has no specs to provision from", partition)
	}
	d.spareMu.Lock()
	defer d.spareMu.Unlock()
	d.spareSeq++
	spec := specs[d.spareSeq%len(specs)]
	variantID := fmt.Sprintf("autospare-p%d-%s-%d", partition, spec, d.spareSeq)
	return d.launchSpare(variantID, Entry{Set: d.SetIdx, Partition: partition, Spec: spec})
}

// Deploy brings up the full system on partition set setIdx of the bundle:
// monitor TEE, variant TEEs per the MVX plan, attested bootstrap, binding,
// and a started execution engine.
func Deploy(b *Bundle, setIdx int, cfg DeployConfig) (*Deployment, error) {
	if setIdx < 0 || setIdx >= len(b.Sets) {
		return nil, fmt.Errorf("core: partition set %d out of range", setIdx)
	}
	if cfg.MVX == nil {
		return nil, fmt.Errorf("core: missing MVX config")
	}
	set := b.Sets[setIdx]
	if len(cfg.MVX.Plans) != len(set.Partitions) {
		return nil, fmt.Errorf("core: %d plans for %d partitions", len(cfg.MVX.Plans), len(set.Partitions))
	}
	if cfg.Transport == 0 {
		cfg.Transport = InProc
	}
	if cfg.EPCBytes == 0 {
		cfg.EPCBytes = 128 << 30
	}

	d := &Deployment{Bundle: b, SetIdx: setIdx, cfg: cfg, platforms: make(map[enclave.TEEType]*enclave.Platform)}
	d.verifier = enclave.NewVerifier()

	// Monitor TEE: small, integrity-enhanced (§6.5 recommends SGX1 for the
	// minimalistic monitor).
	monPlat, err := d.platform(enclave.SGX1)
	if err != nil {
		return nil, err
	}
	monEncl, err := monPlat.Launch(MonitorImage())
	if err != nil {
		return nil, err
	}
	d.monEncl = monEncl
	d.enclaves = append(d.enclaves, monEncl)
	mon := monitor.New(monEncl, d.verifier)
	d.Monitor = mon

	// Owner provisioning (Figure 6 steps 2–3): config + anti-replay nonce.
	nonce, err := attest.NewNonce()
	if err != nil {
		d.Close()
		return nil, err
	}
	cfgJSON, err := cfg.MVX.Marshal()
	if err != nil {
		d.Close()
		return nil, err
	}
	if err := mon.Provision(&wire.Provision{Nonce: nonce, Config: cfgJSON}); err != nil {
		d.Close()
		return nil, err
	}

	// Variant TEEs per claim.
	for pi, plan := range cfg.MVX.Plans {
		for vi, specName := range plan.Variants {
			variantID := fmt.Sprintf("p%d-%s-%d", pi, specName, vi)
			if err := d.launchAndBind(variantID, Entry{Set: setIdx, Partition: pi, Spec: specName}); err != nil {
				d.Close()
				return nil, err
			}
		}
	}

	// Spare TEEs per claim (pre-established, bound on promotion).
	for pi, plan := range cfg.MVX.Spares {
		for vi, specName := range plan.Variants {
			variantID := fmt.Sprintf("spare-p%d-%s-%d", pi, specName, vi)
			if err := d.launchSpare(variantID, Entry{Set: setIdx, Partition: pi, Spec: specName}); err != nil {
				d.Close()
				return nil, err
			}
		}
	}
	// In-process deployments can synthesize further spares on demand; the
	// adaptive controller autoscales the pool through this hook.
	mon.SetSpareFactory(d.ProvisionSpare)

	eng, err := d.RebuildEngine()
	if err != nil {
		d.Close()
		return nil, err
	}
	if !cfg.DeferEngineStart {
		eng.Start()
	}
	return d, nil
}

// RebindVariant launches a fresh variant TEE for the pool entry and binds it
// under variantID — the partial-update path of §4.3 (TEEs are never reused;
// updates replace them). Stop the engine and Unbind the old variant first,
// then RebuildEngine.
func (d *Deployment) RebindVariant(variantID string, e Entry) error {
	return d.launchAndBind(variantID, e)
}

// FullUpdate performs the full variant update of §4.3: it quiesces the
// engine, retires every bound variant (TEEs are never reused), reshuffles to
// partition set newSetIdx with the given plans, launches and binds an
// all-new variant fleet, and starts a fresh engine. The binding log keeps
// the retired generation's records (marked replaced) for auditing.
func (d *Deployment) FullUpdate(newSetIdx int, mvx *monitor.MVXConfig) error {
	if newSetIdx < 0 || newSetIdx >= len(d.Bundle.Sets) {
		return fmt.Errorf("core: partition set %d out of range", newSetIdx)
	}
	if len(mvx.Plans) != len(d.Bundle.Sets[newSetIdx].Partitions) {
		return fmt.Errorf("core: %d plans for %d partitions",
			len(mvx.Plans), len(d.Bundle.Sets[newSetIdx].Partitions))
	}
	if d.Engine != nil {
		d.Engine.StopKeepVariants()
	}
	for _, rec := range d.Monitor.Bindings() {
		if !rec.Replaced {
			d.Monitor.Unbind(rec.VariantID)
		}
	}
	// Re-provision the new configuration with a fresh nonce.
	nonce, err := attest.NewNonce()
	if err != nil {
		return err
	}
	cfgJSON, err := mvx.Marshal()
	if err != nil {
		return err
	}
	if err := d.Monitor.Provision(&wire.Provision{Nonce: nonce, Config: cfgJSON}); err != nil {
		return err
	}
	d.SetIdx = newSetIdx
	gen := len(d.Monitor.Bindings()) // uniquify the new generation's IDs
	for pi, plan := range mvx.Plans {
		for vi, specName := range plan.Variants {
			variantID := fmt.Sprintf("g%d-p%d-%s-%d", gen, pi, specName, vi)
			if err := d.launchAndBind(variantID, Entry{Set: newSetIdx, Partition: pi, Spec: specName}); err != nil {
				return err
			}
		}
	}
	eng, err := d.RebuildEngine()
	if err != nil {
		return err
	}
	eng.Start()
	return nil
}

// RebuildEngine rewires the execution engine from the monitor's current
// bindings (after initial bring-up or membership updates). The returned
// engine is not started.
func (d *Deployment) RebuildEngine() (*monitor.Engine, error) {
	set := d.Bundle.Sets[d.SetIdx]
	stages := make([]monitor.StageSpec, len(set.Partitions))
	for pi, p := range set.Partitions {
		for _, in := range p.Inputs {
			stages[pi].Inputs = append(stages[pi].Inputs, in.Name)
		}
		for _, out := range p.Outputs {
			stages[pi].Outputs = append(stages[pi].Outputs, out.Name)
		}
	}
	var gin []string
	for _, vi := range d.Bundle.Model.Inputs {
		gin = append(gin, vi.Name)
	}
	d.Monitor.ResetEngine()
	eng, err := d.Monitor.BuildEngine(gin, d.Bundle.Model.Outputs, stages)
	if err != nil {
		return nil, err
	}
	d.Engine = eng
	return eng, nil
}

// Start launches the execution engine (no-op if already running). Use with
// DeferEngineStart after the user's combined attestation.
func (d *Deployment) Start() { d.Engine.Start() }

// Verifier returns the deployment's trust anchors (for user-side report
// verification in examples and tests).
func (d *Deployment) Verifier() *enclave.Verifier { return d.verifier }

// PlatformIdentity exports the public identity of the platform that launched
// the monitor enclave. In-process deployments synthesize their platform at
// Deploy time, so transcript auditors have no bundle file to pin against;
// this is the identity the /audit surface publishes for trust-on-first-use
// verification.
func (d *Deployment) PlatformIdentity() ([]byte, error) {
	p, ok := d.platforms[enclave.SGX1]
	if !ok {
		return nil, fmt.Errorf("core: monitor platform not launched")
	}
	return p.ExportPublic()
}

func findSpec(b *Bundle, name string) (diversify.Spec, error) {
	for _, s := range b.Specs {
		if s.Name == name {
			return s, nil
		}
	}
	return diversify.Spec{}, fmt.Errorf("core: unknown spec %q", name)
}

// connect establishes the monitor<->variant channel pair per the transport
// and encryption settings, performing the mutual RA-TLS handshake when
// encryption is on.
func (d *Deployment) connect(cfg DeployConfig, monEncl, varEncl *enclave.Enclave, verifier *enclave.Verifier) (securechan.Conn, securechan.Conn, error) {
	var rawMon, rawVar net.Conn
	switch cfg.Transport {
	case InProc:
		rawMon, rawVar = net.Pipe()
	case TCPLoopback:
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, nil, fmt.Errorf("core: loopback listen: %w", err)
		}
		accepted := make(chan net.Conn, 1)
		errCh := make(chan error, 1)
		go func() {
			c, err := ln.Accept()
			if err != nil {
				errCh <- err
				return
			}
			accepted <- c
		}()
		rawMon, err = net.Dial("tcp", ln.Addr().String())
		if err != nil {
			_ = ln.Close()
			return nil, nil, fmt.Errorf("core: loopback dial: %w", err)
		}
		select {
		case rawVar = <-accepted:
		case err := <-errCh:
			_ = ln.Close()
			return nil, nil, fmt.Errorf("core: loopback accept: %w", err)
		}
		_ = ln.Close()
		if tc, ok := rawMon.(*net.TCPConn); ok {
			_ = tc.SetNoDelay(true)
		}
		if tc, ok := rawVar.(*net.TCPConn); ok {
			_ = tc.SetNoDelay(true)
		}
	default:
		return nil, nil, fmt.Errorf("core: unknown transport %d", cfg.Transport)
	}

	if !cfg.Encrypt {
		return securechan.Plain(rawMon), securechan.Plain(rawVar), nil
	}

	verify := func(r *enclave.Report) error {
		if r == nil {
			return fmt.Errorf("core: peer presented no attestation report")
		}
		return verifier.Verify(r, nil)
	}
	type res struct {
		c   securechan.Conn
		err error
	}
	vCh := make(chan res, 1)
	go func() {
		c, err := securechan.Server(rawVar, varEncl, verify)
		vCh <- res{c, err}
	}()
	mc, err := securechan.Client(rawMon, monEncl, verify)
	vr := <-vCh
	if err != nil {
		return nil, nil, fmt.Errorf("core: monitor handshake: %w", err)
	}
	if vr.err != nil {
		return nil, nil, fmt.Errorf("core: variant handshake: %w", vr.err)
	}
	return mc, vr.c, nil
}

// Close shuts down the engine, variants and enclaves.
func (d *Deployment) Close() {
	if d.Engine != nil {
		d.Engine.Stop()
	}
	for _, f := range d.closers {
		f()
	}
	d.wg.Wait()
	for _, e := range d.enclaves {
		e.Destroy()
	}
}

// Infer runs one batch sequentially through the deployment.
func (d *Deployment) Infer(inputs map[string]*tensor.Tensor) (monitor.BatchResult, error) {
	return d.Engine.Infer(inputs)
}

// Stream submits all batches for pipelined execution and collects their
// results (in completion order).
func (d *Deployment) Stream(batches []map[string]*tensor.Tensor) ([]monitor.BatchResult, error) {
	results := make([]monitor.BatchResult, 0, len(batches))
	done := make(chan error, 1)
	go func() {
		for range batches {
			r, ok := <-d.Engine.Outputs()
			if !ok {
				done <- fmt.Errorf("core: engine output channel closed")
				return
			}
			results = append(results, r)
		}
		done <- nil
	}()
	for _, in := range batches {
		if _, err := d.Engine.Submit(in); err != nil {
			// Drain whatever completes, then report.
			<-done
			return results, err
		}
	}
	err := <-done
	return results, err
}

// BaselineExecutor builds the original-model executor used as the evaluation
// baseline (no partitioning, no MVX, no transport).
func BaselineExecutor(modelName string, mc models.Config, rc infer.Config) (infer.Executor, error) {
	g, err := models.Build(modelName, mc)
	if err != nil {
		return nil, err
	}
	return infer.New(g, rc)
}
