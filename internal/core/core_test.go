package core

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/attest"
	"repro/internal/check"
	"repro/internal/diversify"
	"repro/internal/monitor"
	"repro/internal/pfcrypt"
	"repro/internal/tensor"
)

func smallBundle(t *testing.T, specs []diversify.Spec, targets ...int) *Bundle {
	t.Helper()
	if len(targets) == 0 {
		targets = []int{3}
	}
	b, err := BuildBundle(OfflineConfig{
		ModelName:        "mnasnet",
		PartitionTargets: targets,
		Specs:            specs,
	})
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestBundleStructure(t *testing.T) {
	specs := []diversify.Spec{diversify.ReplicaSpec("replica")}
	b := smallBundle(t, specs, 2, 4)
	if len(b.Sets) != 2 || len(b.Sets[0].Partitions) != 2 || len(b.Sets[1].Partitions) != 4 {
		t.Fatalf("sets = %d/%d/%d", len(b.Sets), len(b.Sets[0].Partitions), len(b.Sets[1].Partitions))
	}
	// One pool entry (4 encrypted files + keys + evidence) per (set, partition, spec).
	wantEntries := 2 + 4
	if len(b.Keys) != wantEntries || len(b.Evidence) != wantEntries {
		t.Fatalf("keys=%d evidence=%d, want %d", len(b.Keys), len(b.Evidence), wantEntries)
	}
	// Pool files must be ciphertext: decrypting with the right key works,
	// with a wrong key fails.
	e := Entry{Set: 0, Partition: 0, Spec: "replica"}
	ct := b.FS[e.GraphPath()]
	if ct == nil {
		t.Fatal("missing pool file")
	}
	if _, err := pfcrypt.Decrypt(b.Keys[e], e.GraphPath(), ct); err != nil {
		t.Fatal(err)
	}
	wrong, _ := pfcrypt.NewKDK()
	if _, err := pfcrypt.Decrypt(wrong, e.GraphPath(), ct); err == nil {
		t.Fatal("pool file decryptable with a wrong key")
	}
	if !b.InitManifest.TwoStage {
		t.Fatal("init manifest must enable two-stage")
	}
}

func TestBundleRequiresSpecs(t *testing.T) {
	if _, err := BuildBundle(OfflineConfig{ModelName: "mnasnet"}); err == nil {
		t.Fatal("bundle without specs accepted")
	}
}

func TestSaveLoadRoundtrip(t *testing.T) {
	dir := t.TempDir()
	b := smallBundle(t, []diversify.Spec{diversify.ReplicaSpec("replica")})
	if err := b.Save(dir); err != nil {
		t.Fatal(err)
	}
	meta, err := LoadMeta(dir)
	if err != nil {
		t.Fatal(err)
	}
	if meta.Model != b.Model.Name || len(meta.Sets) != 1 || len(meta.Sets[0].Partitions) != 3 {
		t.Fatalf("meta = %+v", meta)
	}
	keys, err := LoadKeys(dir)
	if err != nil {
		t.Fatal(err)
	}
	e := Entry{Set: 0, Partition: 1, Spec: "replica"}
	if !reflect.DeepEqual([]byte(keys[EntryKeyFor(0, 1, "replica")]), []byte(b.Keys[e])) {
		t.Fatal("keys lost in roundtrip")
	}
	if _, err := LoadPlatform(dir); err != nil {
		t.Fatal(err)
	}
	// Pool files on disk byte-identical.
	onDisk, err := os.ReadFile(filepath.Join(dir, filepath.FromSlash(e.GraphPath())))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(onDisk, b.FS[e.GraphPath()]) {
		t.Fatal("pool file corrupted on save")
	}
	// Entry key parsing inverts formatting.
	pe, err := ParseEntryKey(EntryKeyFor(0, 1, "replica"))
	if err != nil || pe != e {
		t.Fatalf("ParseEntryKey = %+v, %v", pe, err)
	}
	if _, err := ParseEntryKey("junk"); err == nil {
		t.Fatal("junk entry key accepted")
	}
}

func TestDeployTCPLoopbackWithAttestation(t *testing.T) {
	b := smallBundle(t, []diversify.Spec{diversify.ReplicaSpec("replica")})
	d, err := Deploy(b, 0, DeployConfig{
		MVX:              &monitor.MVXConfig{Plans: replicaPlans(3, 1)},
		Transport:        TCPLoopback,
		Encrypt:          true,
		DeferEngineStart: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()

	nonce, err := attest.NewNonce()
	if err != nil {
		t.Fatal(err)
	}
	bdl, err := d.Monitor.CombinedAttestation(nonce)
	if err != nil {
		t.Fatal(err)
	}
	if err := attest.CheckBundle(d.Verifier(), bdl, nonce); err != nil {
		t.Fatal(err)
	}
	if len(bdl.Variants) != 3 {
		t.Fatalf("attested %d variants", len(bdl.Variants))
	}
	d.Start()
	in := testInput(2)
	if _, err := d.Infer(map[string]*tensor.Tensor{"image": in}); err != nil {
		t.Fatal(err)
	}
}

func TestDeployPlainTransport(t *testing.T) {
	b := smallBundle(t, []diversify.Spec{diversify.ReplicaSpec("replica")})
	d, err := Deploy(b, 0, DeployConfig{
		MVX:     &monitor.MVXConfig{Plans: replicaPlans(3, 1)},
		Encrypt: false,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	if _, err := d.Infer(map[string]*tensor.Tensor{"image": testInput(4)}); err != nil {
		t.Fatal(err)
	}
}

func TestDeployErrors(t *testing.T) {
	b := smallBundle(t, []diversify.Spec{diversify.ReplicaSpec("replica")})
	if _, err := Deploy(b, 5, DeployConfig{MVX: &monitor.MVXConfig{Plans: replicaPlans(3, 1)}}); err == nil {
		t.Fatal("bad set index accepted")
	}
	if _, err := Deploy(b, 0, DeployConfig{}); err == nil {
		t.Fatal("missing MVX config accepted")
	}
	if _, err := Deploy(b, 0, DeployConfig{MVX: &monitor.MVXConfig{Plans: replicaPlans(2, 1)}}); err == nil {
		t.Fatal("plan/partition mismatch accepted")
	}
	bad := &monitor.MVXConfig{Plans: replicaPlans(3, 1)}
	bad.Plans[1].Variants = []string{"no-such-spec"}
	if _, err := Deploy(b, 0, DeployConfig{MVX: bad}); err == nil {
		t.Fatal("unknown spec accepted")
	}
}

func TestPartialUpdateFlow(t *testing.T) {
	// §4.3: partial updates replace a variant with a fresh TEE; the binding
	// log is append-only for auditing.
	b := smallBundle(t, []diversify.Spec{diversify.ReplicaSpec("replica")})
	d, err := Deploy(b, 0, DeployConfig{
		MVX:     &monitor.MVXConfig{Plans: replicaPlans(3, 3)},
		Encrypt: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	in := map[string]*tensor.Tensor{"image": testInput(6)}
	if _, err := d.Infer(in); err != nil {
		t.Fatal(err)
	}

	before := len(d.Monitor.Bindings())
	d.Engine.StopKeepVariants()
	d.Monitor.Unbind("p1-replica-1")
	if err := d.RebindVariant("p1-replica-1b", Entry{Set: 0, Partition: 1, Spec: "replica"}); err != nil {
		t.Fatal(err)
	}
	eng, err := d.RebuildEngine()
	if err != nil {
		t.Fatal(err)
	}
	eng.Start()
	if _, err := d.Infer(in); err != nil {
		t.Fatalf("inference after partial update: %v", err)
	}
	log := d.Monitor.Bindings()
	if len(log) != before+1 {
		t.Fatalf("binding log %d entries, want %d (append-only)", len(log), before+1)
	}
	replaced := false
	for _, r := range log {
		if r.VariantID == "p1-replica-1" && r.Replaced {
			replaced = true
		}
	}
	if !replaced {
		t.Fatal("old binding not marked replaced")
	}
}

func TestMultiTEEPlatforms(t *testing.T) {
	// Specs with different TEE placements launch on distinct platforms.
	specs := []diversify.Spec{
		{Name: "on-sgx2", Runtime: "interp", TEE: "sgx2", Seed: 1},
		{Name: "on-tdx", Runtime: "interp", TEE: "tdx", Seed: 2},
	}
	b := smallBundle(t, specs, 2)
	plans := []monitor.PartitionPlan{
		{Variants: []string{"on-sgx2", "on-tdx"}},
		{Variants: []string{"on-sgx2"}},
	}
	d, err := Deploy(b, 0, DeployConfig{
		MVX: &monitor.MVXConfig{Plans: plans, Criteria: []check.Criterion{
			{Metric: check.AllClose, RTol: 1e-2, ATol: 1e-4},
		}},
		Encrypt: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	if len(d.platforms) < 3 { // SGX1 (monitor) + SGX2 + TDX
		t.Fatalf("%d platforms, want >=3", len(d.platforms))
	}
	if _, err := d.Infer(map[string]*tensor.Tensor{"image": testInput(8)}); err != nil {
		t.Fatal(err)
	}
}

func TestKeyRotation(t *testing.T) {
	b := smallBundle(t, []diversify.Spec{diversify.ReplicaSpec("replica")})
	e := Entry{Set: 0, Partition: 0, Spec: "replica"}
	oldKey := append(pfcrypt.KDK(nil), b.Keys[e]...)
	oldCT := append([]byte(nil), b.FS[e.GraphPath()]...)
	oldEvidence := b.Evidence[e]

	if err := b.RotateKey(e); err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual([]byte(b.Keys[e]), []byte(oldKey)) {
		t.Fatal("KDK unchanged after rotation")
	}
	if reflect.DeepEqual(b.FS[e.GraphPath()], oldCT) {
		t.Fatal("ciphertext unchanged after rotation")
	}
	// Old key no longer decrypts; new key does; plaintext identical.
	if _, err := pfcrypt.Decrypt(oldKey, e.GraphPath(), b.FS[e.GraphPath()]); err == nil {
		t.Fatal("old key still decrypts rotated file")
	}
	pt, err := pfcrypt.Decrypt(b.Keys[e], e.GraphPath(), b.FS[e.GraphPath()])
	if err != nil {
		t.Fatal(err)
	}
	want, err := pfcrypt.Decrypt(oldKey, e.GraphPath(), oldCT)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(pt, want) {
		t.Fatal("rotation changed the plaintext")
	}
	// Evidence (plaintext digest) is stable across rotation.
	if b.Evidence[e] != oldEvidence {
		t.Fatal("rotation changed the evidence digest")
	}
	// A fresh deployment binds and serves with the rotated keys.
	d, err := Deploy(b, 0, DeployConfig{
		MVX:     &monitor.MVXConfig{Plans: replicaPlans(3, 1)},
		Encrypt: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	if _, err := d.Infer(map[string]*tensor.Tensor{"image": testInput(9)}); err != nil {
		t.Fatal(err)
	}
	if err := b.RotateAllKeys(); err != nil {
		t.Fatal(err)
	}
	if err := b.RotateKey(Entry{Set: 9}); err == nil {
		t.Fatal("rotating a missing entry succeeded")
	}
}

func TestFullUpdateFlow(t *testing.T) {
	// §4.3 full update: reshuffle to a different partition set with an
	// all-new variant fleet; old bindings retire into the audit log.
	b := smallBundle(t, []diversify.Spec{diversify.ReplicaSpec("replica")}, 3, 5)
	d, err := Deploy(b, 0, DeployConfig{
		MVX:     &monitor.MVXConfig{Plans: replicaPlans(3, 1)},
		Encrypt: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	in := map[string]*tensor.Tensor{"image": testInput(11)}
	r1, err := d.Infer(in)
	if err != nil {
		t.Fatal(err)
	}

	if err := d.FullUpdate(1, &monitor.MVXConfig{Plans: replicaPlans(5, 1)}); err != nil {
		t.Fatal(err)
	}
	r2, err := d.Infer(in)
	if err != nil {
		t.Fatalf("inference after full update: %v", err)
	}
	// Same model, new partitioning: same function.
	ok, err := check.Consistent(r2.Tensors, r1.Tensors, check.Policy{Criteria: []check.Criterion{
		{Metric: check.MaxAbsDiff, Threshold: 1e-5},
	}})
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("output changed across the full update")
	}
	// Audit log: the 3 retired bindings marked replaced, 5 live ones not.
	var retired, live int
	for _, rec := range d.Monitor.Bindings() {
		if rec.Replaced {
			retired++
		} else {
			live++
		}
	}
	if retired != 3 || live != 5 {
		t.Fatalf("binding log retired=%d live=%d, want 3/5", retired, live)
	}
	// Invalid update targets are rejected without wrecking the deployment.
	if err := d.FullUpdate(7, &monitor.MVXConfig{Plans: replicaPlans(5, 1)}); err == nil {
		t.Fatal("out-of-range set accepted")
	}
	if _, err := d.Infer(in); err != nil {
		t.Fatalf("deployment unusable after rejected update: %v", err)
	}
}
