package core

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/diversify"
	"repro/internal/enclave"
	"repro/internal/graph"
	"repro/internal/partition"
	"repro/internal/pfcrypt"
)

// BundleMeta is the public, on-disk description of a saved bundle: the
// partition sets with their checkpoint boundaries, the variant specs, and
// the model interface. It contains no secrets (keys are saved separately for
// the model owner).
type BundleMeta struct {
	Model        string              `json:"model"`
	ModelInputs  []graph.ValueInfo   `json:"model_inputs"`
	ModelOutputs []string            `json:"model_outputs"`
	Sets         []*partition.Set    `json:"sets"`
	Specs        []diversify.Spec    `json:"specs"`
	Evidence     map[string][32]byte `json:"evidence"` // entry key -> manifest digest
}

func entryKey(e Entry) string { return fmt.Sprintf("set%d/p%d/%s", e.Set, e.Partition, e.Spec) }

// Bundle directory layout.
const (
	MetaFile        = "meta.json"
	KeysFile        = "owner-keys.json"   // model-owner secret
	PlatformFile    = "platform.json"     // simulated hardware root (TEE hosts only)
	PlatformPubFile = "platform-pub.json" // verification identity (owners, users)
	InitManFile     = "init-manifest.json"
)

// Save writes the bundle to dir for process-separated deployments: the
// encrypted pool files, the public metadata and init manifest, the model
// owner's key table, and the simulated platform identity standing in for
// the attestation infrastructure.
func (b *Bundle) Save(dir string) error {
	for path, data := range b.FS {
		full := filepath.Join(dir, filepath.FromSlash(path))
		if err := os.MkdirAll(filepath.Dir(full), 0o755); err != nil {
			return fmt.Errorf("core: save bundle: %w", err)
		}
		if err := os.WriteFile(full, data, 0o644); err != nil {
			return fmt.Errorf("core: save bundle: %w", err)
		}
	}
	meta := BundleMeta{
		Model:        b.Model.Name,
		ModelInputs:  b.Model.Inputs,
		ModelOutputs: b.Model.Outputs,
		Sets:         b.Sets,
		Specs:        b.Specs,
		Evidence:     make(map[string][32]byte, len(b.Evidence)),
	}
	for e, ev := range b.Evidence {
		meta.Evidence[entryKey(e)] = ev
	}
	mb, err := json.MarshalIndent(meta, "", "  ")
	if err != nil {
		return fmt.Errorf("core: save bundle meta: %w", err)
	}
	if err := os.WriteFile(filepath.Join(dir, MetaFile), mb, 0o644); err != nil {
		return err
	}
	keys := make(map[string][]byte, len(b.Keys))
	for e, k := range b.Keys {
		keys[entryKey(e)] = k
	}
	kb, err := json.MarshalIndent(keys, "", "  ")
	if err != nil {
		return fmt.Errorf("core: save bundle keys: %w", err)
	}
	if err := os.WriteFile(filepath.Join(dir, KeysFile), kb, 0o600); err != nil {
		return err
	}
	imb, err := b.InitManifest.Marshal()
	if err != nil {
		return fmt.Errorf("core: save init manifest: %w", err)
	}
	if err := os.WriteFile(filepath.Join(dir, InitManFile), imb, 0o644); err != nil {
		return err
	}
	// Simulated hardware root shared by all deployment processes.
	plat, err := enclave.NewPlatform("plat-shared", enclave.SGX2, 128<<30)
	if err != nil {
		return err
	}
	pb, err := plat.Export()
	if err != nil {
		return err
	}
	if err := os.WriteFile(filepath.Join(dir, PlatformFile), pb, 0o600); err != nil {
		return err
	}
	pub, err := plat.ExportPublic()
	if err != nil {
		return err
	}
	return os.WriteFile(filepath.Join(dir, PlatformPubFile), pub, 0o644)
}

// LoadPlatformIdentity reads the public platform identity (what the model
// owner's verifier trusts) from dir.
func LoadPlatformIdentity(dir string) ([]byte, error) {
	b, err := os.ReadFile(filepath.Join(dir, PlatformPubFile))
	if err != nil {
		return nil, fmt.Errorf("core: load platform identity: %w", err)
	}
	return b, nil
}

// MonitorImage is the monitor TEE's launch image; its measurement is what
// model owners expect during attestation (both deployment paths must agree
// on it).
func MonitorImage() enclave.Image {
	return enclave.Image{Name: "mvtee-monitor", Code: []byte("mvtee monitor v1"), InitialPages: 16 << 20}
}

// RouterImage is the cluster routing tier's identity enclave image: the
// router's transcript recorder signs its tree heads under this measurement,
// so offline auditors can distinguish "signed by a monitor" from "signed by
// the routing tier" while trusting both against the same platform identity.
func RouterImage() enclave.Image {
	return enclave.Image{Name: "mvtee-router", Code: []byte("mvtee router v1"), InitialPages: 4 << 20}
}

// LoadMeta reads the public bundle metadata from dir.
func LoadMeta(dir string) (*BundleMeta, error) {
	mb, err := os.ReadFile(filepath.Join(dir, MetaFile))
	if err != nil {
		return nil, fmt.Errorf("core: load bundle meta: %w", err)
	}
	var meta BundleMeta
	if err := json.Unmarshal(mb, &meta); err != nil {
		return nil, fmt.Errorf("core: load bundle meta: %w", err)
	}
	return &meta, nil
}

// LoadKeys reads the model owner's key table from dir.
func LoadKeys(dir string) (map[string]pfcrypt.KDK, error) {
	kb, err := os.ReadFile(filepath.Join(dir, KeysFile))
	if err != nil {
		return nil, fmt.Errorf("core: load bundle keys: %w", err)
	}
	var raw map[string][]byte
	if err := json.Unmarshal(kb, &raw); err != nil {
		return nil, fmt.Errorf("core: load bundle keys: %w", err)
	}
	keys := make(map[string]pfcrypt.KDK, len(raw))
	for k, v := range raw {
		keys[k] = v
	}
	return keys, nil
}

// LoadPlatform reads the shared simulated platform identity from dir.
func LoadPlatform(dir string) (*enclave.Platform, error) {
	pb, err := os.ReadFile(filepath.Join(dir, PlatformFile))
	if err != nil {
		return nil, fmt.Errorf("core: load platform: %w", err)
	}
	return enclave.ImportPlatform(pb)
}

// ModelDigest canonically digests a sealed bundle's model identity: the
// model name plus every pool entry's manifest-evidence digest, sorted by
// entry key. Both ends of the audit chain compute it — the serving side from
// its in-memory Bundle, the offline verifier from the published meta.json —
// so a signed transcript head is bound to exactly one sealed bundle.
func ModelDigest(model string, evidence map[string][32]byte) [32]byte {
	keys := make([]string, 0, len(evidence))
	for k := range evidence {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	h := sha256.New()
	h.Write([]byte("mvtee-model-v1"))
	var n [8]byte
	binary.LittleEndian.PutUint64(n[:], uint64(len(model)))
	h.Write(n[:])
	h.Write([]byte(model))
	binary.LittleEndian.PutUint64(n[:], uint64(len(keys)))
	h.Write(n[:])
	for _, k := range keys {
		binary.LittleEndian.PutUint64(n[:], uint64(len(k)))
		h.Write(n[:])
		h.Write([]byte(k))
		ev := evidence[k]
		h.Write(ev[:])
	}
	var out [32]byte
	h.Sum(out[:0])
	return out
}

// ModelDigest computes the bundle's sealed-model identity digest.
func (b *Bundle) ModelDigest() [32]byte {
	ev := make(map[string][32]byte, len(b.Evidence))
	for e, d := range b.Evidence {
		ev[entryKey(e)] = d
	}
	return ModelDigest(b.Model.Name, ev)
}

// ModelDigest computes the saved bundle's sealed-model identity digest.
func (m *BundleMeta) ModelDigest() [32]byte {
	return ModelDigest(m.Model, m.Evidence)
}

// EntryKeyFor formats the key-table key for (set, partition, spec).
func EntryKeyFor(set, part int, spec string) string {
	return entryKey(Entry{Set: set, Partition: part, Spec: spec})
}

// ParseEntryKey inverts EntryKeyFor.
func ParseEntryKey(s string) (Entry, error) {
	var e Entry
	parts := strings.SplitN(s, "/", 3)
	if len(parts) != 3 {
		return e, fmt.Errorf("core: malformed entry key %q", s)
	}
	if _, err := fmt.Sscanf(parts[0], "set%d", &e.Set); err != nil {
		return e, fmt.Errorf("core: malformed entry key %q: %w", s, err)
	}
	if _, err := fmt.Sscanf(parts[1], "p%d", &e.Partition); err != nil {
		return e, fmt.Errorf("core: malformed entry key %q: %w", s, err)
	}
	e.Spec = parts[2]
	return e, nil
}
