package core

import (
	"math/rand/v2"
	"sort"
	"testing"

	"repro/internal/check"
	"repro/internal/diversify"
	"repro/internal/infer"
	"repro/internal/models"
	"repro/internal/monitor"
	"repro/internal/tensor"
)

func testInput(seed uint64) *tensor.Tensor {
	rng := rand.New(rand.NewPCG(seed, 7))
	in := tensor.New(1, 3, 32, 32)
	d := in.Data()
	for i := range d {
		d[i] = float32(rng.NormFloat64())
	}
	return in
}

func replicaPlans(n, variants int) []monitor.PartitionPlan {
	plans := make([]monitor.PartitionPlan, n)
	for i := range plans {
		for v := 0; v < variants; v++ {
			plans[i].Variants = append(plans[i].Variants, "replica")
		}
	}
	return plans
}

// TestEndToEndReplicaMVX deploys a 5-partition, 3-replica-per-partition MVX
// system in-process with encrypted channels and checks the pipeline output
// matches the unpartitioned baseline exactly.
func TestEndToEndReplicaMVX(t *testing.T) {
	mc := models.Config{Depth: 0.34}
	b, err := BuildBundle(OfflineConfig{
		ModelName:        "resnet-50",
		ModelConfig:      mc,
		PartitionTargets: []int{5},
		Specs:            []diversify.Spec{diversify.ReplicaSpec("replica")},
	})
	if err != nil {
		t.Fatal(err)
	}
	d, err := Deploy(b, 0, DeployConfig{
		MVX: &monitor.MVXConfig{
			Model: "resnet-50",
			Plans: replicaPlans(5, 3),
		},
		Encrypt: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()

	in := testInput(1)
	res, err := d.Infer(map[string]*tensor.Tensor{"image": in.Clone()})
	if err != nil {
		t.Fatalf("mvx infer: %v", err)
	}

	base, err := BaselineExecutor("resnet-50", mc, infer.Config{})
	if err != nil {
		t.Fatal(err)
	}
	want, err := base.Run(map[string]*tensor.Tensor{"image": in.Clone()})
	if err != nil {
		t.Fatal(err)
	}
	ok, err := check.Consistent(res.Tensors, want, check.Policy{Criteria: []check.Criterion{
		{Metric: check.MaxAbsDiff, Threshold: 1e-5},
	}})
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatalf("MVX output diverges from baseline: got %v want %v",
			res.Tensors["logits"].Data()[:4], want["logits"].Data()[:4])
	}
	if evs := d.Engine.Events(); len(evs) != 0 {
		t.Fatalf("unexpected events: %v", evs)
	}
}

// TestEndToEndPipelined streams several batches through the pipeline.
func TestEndToEndPipelined(t *testing.T) {
	b, err := BuildBundle(OfflineConfig{
		ModelName:        "mobilenetv3",
		PartitionTargets: []int{4},
		Specs:            []diversify.Spec{diversify.ReplicaSpec("replica")},
	})
	if err != nil {
		t.Fatal(err)
	}
	d, err := Deploy(b, 0, DeployConfig{
		MVX:     &monitor.MVXConfig{Plans: replicaPlans(4, 1)},
		Encrypt: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()

	base, err := BaselineExecutor("mobilenetv3", models.Config{}, infer.Config{})
	if err != nil {
		t.Fatal(err)
	}

	const n = 6
	batches := make([]map[string]*tensor.Tensor, n)
	wants := make([]map[string]*tensor.Tensor, n)
	for i := range batches {
		in := testInput(uint64(i + 10))
		batches[i] = map[string]*tensor.Tensor{"image": in.Clone()}
		w, err := base.Run(map[string]*tensor.Tensor{"image": in.Clone()})
		if err != nil {
			t.Fatal(err)
		}
		wants[i] = w
	}
	results, err := d.Stream(batches)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != n {
		t.Fatalf("got %d results, want %d", len(results), n)
	}
	// Batch IDs are process-unique and increase in submission order; rank
	// them to recover the original batch index.
	sort.Slice(results, func(i, j int) bool { return results[i].ID < results[j].ID })
	for i, r := range results {
		if r.Err != nil {
			t.Fatalf("batch %d failed: %v", r.ID, r.Err)
		}
		ok, err := check.Consistent(r.Tensors, wants[i], check.Policy{Criteria: []check.Criterion{
			{Metric: check.MaxAbsDiff, Threshold: 1e-5},
		}})
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			t.Fatalf("batch %d diverges from baseline", r.ID)
		}
	}
}

// TestEndToEndTransformer exercises the §7.4 foundation-model extension
// through the full MVTEE pipeline: partitioned transformer encoder, mixed
// interp/planned variants, MVX on the attention-heavy middle stage.
func TestEndToEndTransformer(t *testing.T) {
	specs := []diversify.Spec{
		{Name: "rt-a", Runtime: "interp", BLAS: "naive", Seed: 1},
		{Name: "rt-b", Runtime: "planned", BLAS: "blocked", Seed: 2},
		{Name: "rt-c", Runtime: "planned", BLAS: "packed", Seed: 3,
			Transforms: []diversify.GraphTransform{{Kind: diversify.TDummyOps, N: 3}}},
	}
	b, err := BuildBundle(OfflineConfig{
		ModelName:        "tinyformer",
		PartitionTargets: []int{3},
		Specs:            specs,
	})
	if err != nil {
		t.Fatal(err)
	}
	plans := []monitor.PartitionPlan{
		{Variants: []string{"rt-a"}},
		{Variants: []string{"rt-a", "rt-b", "rt-c"}},
		{Variants: []string{"rt-b"}},
	}
	d, err := Deploy(b, 0, DeployConfig{
		MVX: &monitor.MVXConfig{
			Plans:    plans,
			Criteria: []check.Criterion{{Metric: check.AllClose, RTol: 1e-2, ATol: 1e-4}},
		},
		Encrypt: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()

	shape := b.Model.Inputs[0].Shape
	rng := rand.New(rand.NewPCG(4, 4))
	in := tensor.New(shape...)
	for i := range in.Data() {
		in.Data()[i] = float32(rng.NormFloat64())
	}
	res, err := d.Infer(map[string]*tensor.Tensor{"tokens": in})
	if err != nil {
		t.Fatal(err)
	}
	base, err := infer.New(b.Model, infer.Config{})
	if err != nil {
		t.Fatal(err)
	}
	want, err := base.Run(map[string]*tensor.Tensor{"tokens": in})
	if err != nil {
		t.Fatal(err)
	}
	ok, err := check.Consistent(res.Tensors, want, check.Policy{Criteria: []check.Criterion{
		{Metric: check.MaxAbsDiff, Threshold: 1e-4},
	}})
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("transformer MVX output diverges from baseline")
	}
	if evs := d.Engine.Events(); len(evs) != 0 {
		t.Fatalf("unexpected events %v", evs)
	}
}
