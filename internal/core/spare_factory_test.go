package core

import (
	"strings"
	"testing"

	"repro/internal/attest"
	"repro/internal/diversify"
	"repro/internal/enclave"
	"repro/internal/monitor"
	"repro/internal/wire"
)

// TestDirSpareFactoryProvisionsIdleSpare exercises the process-separated
// monitor's spare path end to end against a saved bundle directory: the
// factory must boot a fresh variant TEE from disk, complete the mutual
// attested handshake over an in-memory channel, and register the idle spare
// with the monitor — turning the controller's ProvisionSpare from a no-op
// error into a real scale-up actuator for cmd/mvtee-monitor.
func TestDirSpareFactoryProvisionsIdleSpare(t *testing.T) {
	b, err := BuildBundle(OfflineConfig{
		ModelName:        "mobilenetv3",
		PartitionTargets: []int{2},
		Specs:            []diversify.Spec{diversify.ReplicaSpec("replica")},
	})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if err := b.Save(dir); err != nil {
		t.Fatal(err)
	}

	// Process-separated bring-up, exactly as cmd/mvtee-monitor does it.
	meta, err := LoadMeta(dir)
	if err != nil {
		t.Fatal(err)
	}
	plat, err := LoadPlatform(dir)
	if err != nil {
		t.Fatal(err)
	}
	verifier := enclave.NewVerifier()
	verifier.Trust(plat)
	monEncl, err := plat.Launch(MonitorImage())
	if err != nil {
		t.Fatal(err)
	}
	defer monEncl.Destroy()
	mon := monitor.New(monEncl, verifier)

	nonce, err := attest.NewNonce()
	if err != nil {
		t.Fatal(err)
	}
	mvx := &monitor.MVXConfig{
		Model: meta.Model,
		Plans: []monitor.PartitionPlan{
			{Variants: []string{"replica"}},
			{Variants: []string{"replica"}},
		},
	}
	cfgJSON, err := mvx.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if err := mon.Provision(&wire.Provision{Nonce: nonce, Config: cfgJSON}); err != nil {
		t.Fatal(err)
	}
	keys, err := LoadKeys(dir)
	if err != nil {
		t.Fatal(err)
	}

	// Before the factory is wired, scale-up must fail loudly.
	if err := mon.ProvisionSpare(0); err == nil {
		t.Fatal("ProvisionSpare succeeded with no factory configured")
	}

	f, err := DirSpareFactory(SpareFactoryConfig{
		Dir:            dir,
		Monitor:        mon,
		MonitorEnclave: monEncl,
		Platform:       plat,
		Verifier:       verifier,
		KeyFor: func(k string) ([]byte, bool) {
			kk, ok := keys[k]
			return []byte(kk), ok
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	mon.SetSpareFactory(f)

	if err := mon.ProvisionSpare(1); err != nil {
		t.Fatalf("ProvisionSpare(1): %v", err)
	}
	if got := mon.SpareCount(); got != 1 {
		t.Fatalf("SpareCount() = %d, want 1", got)
	}
	// Partition -1 means "any stage": the factory must normalize, not reject.
	if err := mon.ProvisionSpare(-1); err != nil {
		t.Fatalf("ProvisionSpare(-1): %v", err)
	}
	if got := mon.SpareCount(); got != 2 {
		t.Fatalf("SpareCount() = %d, want 2", got)
	}
	// Unknown partitions must fail without registering anything.
	if err := mon.ProvisionSpare(7); err == nil || !strings.Contains(err.Error(), "out of range") {
		t.Fatalf("ProvisionSpare(7) = %v, want out-of-range error", err)
	}
	if got := mon.SpareCount(); got != 2 {
		t.Fatalf("SpareCount() = %d after failed provision, want 2", got)
	}
	// Scale-down closes the synthesized spare's channel, which terminates its
	// variant goroutine and enclave.
	if !mon.RetireSpare() {
		t.Fatal("RetireSpare() = false with spares in the pool")
	}
	if got := mon.SpareCount(); got != 1 {
		t.Fatalf("SpareCount() = %d after retire, want 1", got)
	}
}
