// Package core orchestrates MVTEE end to end, mirroring the usage and
// deployment model of Figure 2:
//
//   - the offline phase (BuildBundle): partition the protected model into one
//     or more partition sets, generate the diversified variant pool for every
//     partition, and encrypt each pool entry (graph, variant spec and
//     second-stage manifest) under an entry-specific key — producing the
//     bundle an untrusted orchestrator can place on variant-TEE hosts;
//
//   - the online phase (Deploy): launch the monitor TEE and one variant TEE
//     per claim, run the attested two-stage bootstrap and binding protocol
//     (Figure 6), wire the bound variants into the MVX execution engine, and
//     serve inference sequentially or pipelined.
package core

import (
	"crypto/sha256"
	"fmt"

	"repro/internal/diversify"
	"repro/internal/graph"
	"repro/internal/manifest"
	"repro/internal/models"
	"repro/internal/partition"
	"repro/internal/pfcrypt"
	"repro/internal/teeos"
)

// OfflineConfig drives the offline ML MVX tool pipeline (§5.1).
type OfflineConfig struct {
	// ModelName selects a zoo model; alternatively set Graph directly.
	ModelName string
	// ModelConfig scales the zoo model.
	ModelConfig models.Config
	// Graph, if non-nil, is used instead of the zoo.
	Graph *graph.Graph
	// PartitionTargets lists the partition counts to generate (one Set per
	// target); empty means [5].
	PartitionTargets []int
	// Sets, if non-nil, supplies precomputed partition sets (e.g. from the
	// manual slicer) instead of running the randomized algorithm.
	Sets []*partition.Set
	// PartitionSeed drives the randomized contraction; 0 means 1.
	PartitionSeed uint64
	// PartitionOptions overrides soft preferences / hard constraints.
	PartitionOptions partition.Options
	// Specs is the variant recipe list; empty means three identical
	// replicas is NOT assumed — callers must pass at least one spec.
	Specs []diversify.Spec
}

// Entry identifies one encrypted pool entry.
type Entry struct {
	Set       int
	Partition int
	Spec      string
}

func (e Entry) dir() string {
	return fmt.Sprintf("pool/set%d/p%d/%s", e.Set, e.Partition, e.Spec)
}

// GraphPath returns the entry's encrypted graph path.
func (e Entry) GraphPath() string { return e.dir() + "/graph.pf" }

// SpecPath returns the entry's encrypted spec path.
func (e Entry) SpecPath() string { return e.dir() + "/spec.pf" }

// ManifestPath returns the entry's encrypted second-stage manifest path.
func (e Entry) ManifestPath() string { return e.dir() + "/manifest.pf" }

// EntrypointPath returns the entry's encrypted main-variant binary path.
func (e Entry) EntrypointPath() string { return e.dir() + "/main.pf" }

// Bundle is the output of the offline phase: the partition sets, the variant
// pool, the encrypted files, the per-entry keys (held by the model owner and
// provisioned to the monitor), and the expected installation evidence.
type Bundle struct {
	Model       *graph.Graph
	Partitioner *partition.Partitioner
	Sets        []*partition.Set
	Specs       []diversify.Spec
	// Pools holds the diversified subgraphs: Pools[set][partition][spec].
	Pools []*diversify.Pool
	// FS carries the encrypted pool files plus the public init-variant
	// files — what the untrusted orchestrator ships to variant hosts.
	FS teeos.MapFS
	// Keys maps pool entries to their variant-specific KDKs (model-owner
	// secret, provisioned to the monitor over the attested channel).
	Keys map[Entry]pfcrypt.KDK
	// Evidence maps pool entries to the expected second-stage manifest
	// digests.
	Evidence map[Entry][32]byte
	// InitManifest is the public stage-1 manifest all variant TEEs boot
	// with.
	InitManifest *manifest.Manifest
	// InitBinary is the measured init-variant payload.
	InitBinary []byte
}

// InitEntrypoint is the stage-1 entrypoint path.
const InitEntrypoint = "bin/init-variant"

// BuildBundle runs the offline pipeline: model construction (or the provided
// graph), partitioning into every requested set, multi-level variant
// generation, and per-entry encryption.
func BuildBundle(cfg OfflineConfig) (*Bundle, error) {
	g := cfg.Graph
	if g == nil {
		var err error
		g, err = models.Build(cfg.ModelName, cfg.ModelConfig)
		if err != nil {
			return nil, err
		}
	}
	if len(cfg.Specs) == 0 {
		return nil, fmt.Errorf("core: no variant specs given")
	}
	targets := cfg.PartitionTargets
	if len(targets) == 0 {
		targets = []int{5}
	}
	p, err := partition.NewPartitioner(g)
	if err != nil {
		return nil, err
	}
	opts := cfg.PartitionOptions
	if opts.Seed == 0 {
		opts.Seed = cfg.PartitionSeed
	}
	sets := cfg.Sets
	if sets == nil {
		sets, err = p.GenerateSets(targets, opts)
		if err != nil {
			return nil, err
		}
	}

	b := &Bundle{
		Model:       g,
		Partitioner: p,
		Sets:        sets,
		Specs:       cfg.Specs,
		FS:          make(teeos.MapFS),
		Keys:        make(map[Entry]pfcrypt.KDK),
		Evidence:    make(map[Entry][32]byte),
		InitBinary:  []byte("mvtee init-variant v1"),
	}
	b.FS[InitEntrypoint] = b.InitBinary

	im := &manifest.Manifest{
		Entrypoint:      InitEntrypoint,
		EncryptedFiles:  []string{"pool/*"},
		AllowedSyscalls: []string{"connect", "recvfrom", "sendto", "openat", "close", "execve"},
		TwoStage:        true,
	}
	im.AddTrustedFile(InitEntrypoint, b.InitBinary)
	b.InitManifest = im

	for si, set := range sets {
		subs := make([]*graph.Graph, len(set.Partitions))
		for pi := range set.Partitions {
			subs[pi], err = p.Extract(set, pi)
			if err != nil {
				return nil, err
			}
		}
		pool, err := diversify.BuildPool(subs, cfg.Specs)
		if err != nil {
			return nil, fmt.Errorf("core: set %d: %w", si, err)
		}
		b.Pools = append(b.Pools, pool)
		for pi := range set.Partitions {
			for _, v := range pool.Variants[pi] {
				if err := b.encryptEntry(Entry{Set: si, Partition: pi, Spec: v.Spec.Name}, v); err != nil {
					return nil, err
				}
			}
		}
	}
	return b, nil
}

// encryptEntry generates the entry's KDK, second-stage manifest and
// encrypted files.
func (b *Bundle) encryptEntry(e Entry, v diversify.Variant) error {
	kdk, err := pfcrypt.NewKDK()
	if err != nil {
		return err
	}
	b.Keys[e] = kdk

	mainBin := []byte("mvtee main-variant " + v.Spec.Name)
	m2 := &manifest.Manifest{
		Entrypoint:            e.EntrypointPath(),
		EncryptedFiles:        []string{e.GraphPath(), e.SpecPath(), e.EntrypointPath()},
		AllowedSyscalls:       []string{"recvfrom", "sendto", "close"},
		ExecFromEncryptedOnly: true,
	}
	m2b, err := m2.Marshal()
	if err != nil {
		return fmt.Errorf("core: entry %v manifest: %w", e, err)
	}
	b.Evidence[e] = sha256.Sum256(m2b)

	gb, err := graph.Marshal(v.Graph)
	if err != nil {
		return fmt.Errorf("core: entry %v graph: %w", e, err)
	}
	sb, err := v.Spec.Marshal()
	if err != nil {
		return fmt.Errorf("core: entry %v spec: %w", e, err)
	}
	for _, f := range []struct {
		path string
		data []byte
	}{
		{e.GraphPath(), gb},
		{e.SpecPath(), sb},
		{e.ManifestPath(), m2b},
		{e.EntrypointPath(), mainBin},
	} {
		ct, err := pfcrypt.Encrypt(kdk, f.path, f.data)
		if err != nil {
			return fmt.Errorf("core: encrypt %s: %w", f.path, err)
		}
		b.FS[f.path] = ct
	}
	return nil
}
