package core

import (
	"fmt"

	"repro/internal/pfcrypt"
)

// RotateKey re-keys one pool entry: a fresh variant-specific KDK is
// generated and every file of the entry is re-encrypted under it (§6.5 "key
// rotation can be conducted on a regular basis for proactive defense").
// Because the KDK only wraps per-file one-time keys, rotation touches little
// ciphertext and the evidence digest (a plaintext digest) is unchanged, so
// already-expected attestation values stay valid. Variants bound before the
// rotation keep serving (they hold decrypted state); new bindings receive
// the new key.
func (b *Bundle) RotateKey(e Entry) error {
	old, ok := b.Keys[e]
	if !ok {
		return fmt.Errorf("core: no pool entry %+v", e)
	}
	fresh, err := pfcrypt.NewKDK()
	if err != nil {
		return err
	}
	paths := []string{e.GraphPath(), e.SpecPath(), e.ManifestPath(), e.EntrypointPath()}
	reenc := make(map[string][]byte, len(paths))
	for _, p := range paths {
		ct, ok := b.FS[p]
		if !ok {
			return fmt.Errorf("core: pool file %q missing", p)
		}
		pt, err := pfcrypt.Decrypt(old, p, ct)
		if err != nil {
			return fmt.Errorf("core: rotate %q: %w", p, err)
		}
		nc, err := pfcrypt.Encrypt(fresh, p, pt)
		if err != nil {
			return fmt.Errorf("core: rotate %q: %w", p, err)
		}
		reenc[p] = nc
	}
	// Commit atomically only after every file re-encrypted.
	for p, ct := range reenc {
		b.FS[p] = ct
	}
	b.Keys[e] = fresh
	return nil
}

// RotateAllKeys rotates every pool entry.
func (b *Bundle) RotateAllKeys() error {
	for e := range b.Keys {
		if err := b.RotateKey(e); err != nil {
			return err
		}
	}
	return nil
}
