package securechan

import (
	"bytes"
	"errors"
	"net"
	"testing"

	"repro/internal/enclave"
)

func testEnclave(t testing.TB, name string) (*enclave.Platform, *enclave.Enclave) {
	t.Helper()
	p, err := enclave.NewPlatform("plat-"+name, enclave.SGX2, 1<<30)
	if err != nil {
		t.Fatal(err)
	}
	e, err := p.Launch(enclave.Image{Name: name, Code: []byte(name), InitialPages: 1})
	if err != nil {
		t.Fatal(err)
	}
	return p, e
}

// handshake establishes a mutually attested channel over net.Pipe.
func handshake(t *testing.T, cliVerify, srvVerify VerifyPeer) (*SecureConn, *SecureConn) {
	t.Helper()
	_, cliEncl := testEnclave(t, "client")
	_, srvEncl := testEnclave(t, "server")
	return handshakeWith(t, cliEncl, srvEncl, cliVerify, srvVerify)
}

func handshakeWith(t *testing.T, cliEncl, srvEncl *enclave.Enclave, cliVerify, srvVerify VerifyPeer) (*SecureConn, *SecureConn) {
	t.Helper()
	a, b := net.Pipe()
	type res struct {
		c   *SecureConn
		err error
	}
	ch := make(chan res, 1)
	go func() {
		c, err := Server(b, srvEncl, srvVerify)
		ch <- res{c, err}
	}()
	cli, err := Client(a, cliEncl, cliVerify)
	if err != nil {
		t.Fatalf("client handshake: %v", err)
	}
	r := <-ch
	if r.err != nil {
		t.Fatalf("server handshake: %v", r.err)
	}
	return cli, r.c
}

func TestRoundtripBothDirections(t *testing.T) {
	cli, srv := handshake(t, nil, nil)
	defer cli.Close()

	go func() { _ = cli.Send([]byte("hello from client")) }()
	got, err := srv.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, []byte("hello from client")) {
		t.Fatalf("got %q", got)
	}
	go func() { _ = srv.Send([]byte("hello from server")) }()
	got, err = cli.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, []byte("hello from server")) {
		t.Fatalf("got %q", got)
	}
}

func TestPeerReportsExchangedAndBound(t *testing.T) {
	cliPlat, cliEncl := testEnclave(t, "client")
	srvPlat, srvEncl := testEnclave(t, "server")
	v := enclave.NewVerifier()
	v.Trust(cliPlat)
	v.Trust(srvPlat)
	verify := func(r *enclave.Report) error {
		if r == nil {
			return errors.New("no report")
		}
		return v.Verify(r, nil)
	}
	cli, srv := handshakeWith(t, cliEncl, srvEncl, verify, verify)
	if cli.PeerReport() == nil || cli.PeerReport().Measurement != srvEncl.Measurement() {
		t.Fatal("client did not capture the server's report")
	}
	if srv.PeerReport() == nil || srv.PeerReport().Measurement != cliEncl.Measurement() {
		t.Fatal("server did not capture the client's report")
	}
}

func TestVerifyRejectionAborts(t *testing.T) {
	_, cliEncl := testEnclave(t, "client")
	_, srvEncl := testEnclave(t, "server")
	a, b := net.Pipe()
	done := make(chan error, 1)
	go func() {
		_, err := Server(b, srvEncl, nil)
		done <- err
	}()
	_, err := Client(a, cliEncl, func(*enclave.Report) error {
		return errors.New("untrusted platform")
	})
	if !errors.Is(err, ErrHandshake) {
		t.Fatalf("client: got %v, want ErrHandshake", err)
	}
	a.Close()
	<-done
}

func TestSequenceEnforced(t *testing.T) {
	cli, srv := handshake(t, nil, nil)
	// Capture a raw frame by sending through a recording pipe is complex;
	// instead simulate replay by desynchronizing expected sequence.
	go func() {
		_ = cli.Send([]byte("one"))
		_ = cli.Send([]byte("two"))
	}()
	if _, err := srv.Recv(); err != nil {
		t.Fatal(err)
	}
	srv.recvSeq = 0 // receiver expects seq 0 again: replayed record
	if _, err := srv.Recv(); !errors.Is(err, ErrSequence) {
		t.Fatalf("got %v, want ErrSequence", err)
	}
}

func TestTamperedRecordRejected(t *testing.T) {
	_, cliEncl := testEnclave(t, "client")
	_, srvEncl := testEnclave(t, "server")
	a, b := net.Pipe()
	// Man-in-the-middle pipe that flips a payload bit of the first data
	// record after the handshake (handshake frames pass through intact).
	am, bm := net.Pipe()
	go mitm(t, bm, b, 3) // client sends 2 handshake frames; 3rd is data
	type res struct {
		c   *SecureConn
		err error
	}
	ch := make(chan res, 1)
	go func() {
		c, err := Server(a, srvEncl, nil)
		ch <- res{c, err}
	}()
	cli, err := Client(am, cliEncl, nil)
	if err != nil {
		t.Fatal(err)
	}
	r := <-ch
	if r.err != nil {
		t.Fatal(r.err)
	}
	go func() { _ = cli.Send([]byte("sensitive tensor data")) }()
	if _, err := r.c.Recv(); err == nil {
		t.Fatal("tampered record accepted")
	}
}

// mitm forwards frames from src to dst, flipping a bit in frame number
// flipAt (1-based) in the client->server direction; server->client frames
// pass through untouched.
func mitm(t *testing.T, src, dst net.Conn, flipAt int) {
	go func() { // reverse direction passthrough
		buf := make([]byte, 4096)
		for {
			n, err := dst.Read(buf)
			if n > 0 {
				if _, werr := src.Write(buf[:n]); werr != nil {
					return
				}
			}
			if err != nil {
				return
			}
		}
	}()
	for frame := 1; ; frame++ {
		b, err := readFrame(src)
		if err != nil {
			return
		}
		if frame == flipAt && len(b) > 10 {
			b[len(b)-1] ^= 0x01
		}
		if err := writeFrame(dst, b); err != nil {
			return
		}
	}
}

func TestPlainConn(t *testing.T) {
	a, b := net.Pipe()
	p1, p2 := Plain(a), Plain(b)
	go func() { _ = p1.Send([]byte("clear")) }()
	got, err := p2.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, []byte("clear")) {
		t.Fatalf("got %q", got)
	}
	if err := p1.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestFrameTooLarge(t *testing.T) {
	a, b := net.Pipe()
	go func() {
		hdr := []byte{0xff, 0xff, 0xff, 0xff}
		_, _ = a.Write(hdr)
	}()
	if _, err := Plain(b).Recv(); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("got %v, want ErrFrameTooLarge", err)
	}
}

func TestNilSelfMeansNoReport(t *testing.T) {
	// Model owner (no enclave) connecting to an attested monitor.
	_, srvEncl := testEnclave(t, "server")
	a, b := net.Pipe()
	type res struct {
		c   *SecureConn
		err error
	}
	ch := make(chan res, 1)
	go func() {
		c, err := Server(b, srvEncl, nil)
		ch <- res{c, err}
	}()
	cli, err := Client(a, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	r := <-ch
	if r.err != nil {
		t.Fatal(r.err)
	}
	if r.c.PeerReport() != nil {
		t.Fatal("server should see no client report")
	}
	if cli.PeerReport() == nil {
		t.Fatal("client should see the server report")
	}
}
