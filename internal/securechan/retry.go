package securechan

import (
	"errors"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"time"
)

// RetryPolicy shapes exponential backoff with jitter for channel
// establishment and reliable sends.
type RetryPolicy struct {
	// MaxAttempts bounds total tries (first attempt included); zero means 4.
	MaxAttempts int
	// BaseDelay is the backoff before the second attempt; zero means 10ms.
	// Attempt k waits BaseDelay·2^(k-1), capped at MaxDelay.
	BaseDelay time.Duration
	// MaxDelay caps the backoff; zero means 2s.
	MaxDelay time.Duration
	// Jitter is the uniform fraction of the delay randomized away (0..1);
	// negative disables jitter, zero means 0.5 (half the delay is random).
	// Jitter decorrelates reconnect storms when many variants lose the
	// monitor at once.
	Jitter float64
	// Seed fixes the jitter source for deterministic tests; zero seeds from
	// the clock.
	Seed int64
}

func (p RetryPolicy) withDefaults() RetryPolicy {
	if p.MaxAttempts == 0 {
		p.MaxAttempts = 4
	}
	if p.BaseDelay == 0 {
		p.BaseDelay = 10 * time.Millisecond
	}
	if p.MaxDelay == 0 {
		p.MaxDelay = 2 * time.Second
	}
	if p.Jitter == 0 {
		p.Jitter = 0.5
	}
	return p
}

// delay computes the backoff before attempt k (k ≥ 1 is the retry index).
func (p RetryPolicy) delay(k int, rng *rand.Rand) time.Duration {
	d := p.BaseDelay
	for i := 1; i < k && d < p.MaxDelay; i++ {
		d *= 2
	}
	if d > p.MaxDelay {
		d = p.MaxDelay
	}
	if p.Jitter > 0 {
		j := p.Jitter
		if j > 1 {
			j = 1
		}
		// d·(1-j) .. d: full backoff minus a uniform slice.
		d -= time.Duration(rng.Float64() * j * float64(d))
	}
	return d
}

func (p RetryPolicy) rng() *rand.Rand {
	seed := p.Seed
	if seed == 0 {
		seed = time.Now().UnixNano()
	}
	return rand.New(rand.NewSource(seed))
}

// Retry runs op up to p.MaxAttempts times with exponential backoff + jitter
// between attempts, returning nil on the first success or the last error.
func Retry(p RetryPolicy, op func() error) error {
	p = p.withDefaults()
	rng := p.rng()
	var err error
	for k := 0; k < p.MaxAttempts; k++ {
		if k > 0 {
			mRetries.Inc()
			time.Sleep(p.delay(k, rng))
		}
		if err = op(); err == nil {
			return nil
		}
	}
	return fmt.Errorf("securechan: %d attempts: %w", p.MaxAttempts, err)
}

// Dialer establishes channels with retry: transient transport and handshake
// failures are retried under Policy with exponential backoff + jitter, and
// HandshakeTimeout bounds each attempt's handshake IO so a black-holed peer
// cannot stall establishment forever.
type Dialer struct {
	// Dial opens the transport (e.g., net.Dial, a TEE socket).
	Dial func() (net.Conn, error)
	// Handshake upgrades the transport to a channel (e.g., a Client or
	// Server closure, or Plain for the baseline).
	Handshake func(net.Conn) (Conn, error)
	// Policy shapes the retry schedule; zero value uses defaults.
	Policy RetryPolicy
	// HandshakeTimeout bounds each attempt (dial + handshake); zero means
	// no per-attempt deadline.
	HandshakeTimeout time.Duration
}

// Connect dials and handshakes under the retry policy. A handshake failure
// closes its transport before the next attempt (fresh key agreement and
// sequence space per attempt — retrying inside an established record layer
// would desynchronize sequence numbers).
func (d Dialer) Connect() (Conn, error) {
	if d.Dial == nil || d.Handshake == nil {
		return nil, errors.New("securechan: Dialer needs Dial and Handshake")
	}
	var conn Conn
	err := Retry(d.Policy, func() error {
		nc, err := d.Dial()
		if err != nil {
			return err
		}
		if d.HandshakeTimeout > 0 {
			_ = nc.SetDeadline(time.Now().Add(d.HandshakeTimeout))
		}
		c, err := d.Handshake(nc)
		if err != nil {
			_ = nc.Close()
			return err
		}
		if d.HandshakeTimeout > 0 {
			_ = nc.SetDeadline(time.Time{}) // record layer manages its own deadlines
		}
		conn = c
		return nil
	})
	if err != nil {
		return nil, err
	}
	return conn, nil
}

// ReliableConn wraps channel establishment with transparent reconnection:
// when a Send or Recv fails, the connection is torn down and re-established
// through the Dialer (a fresh handshake — sequence numbers and keys restart,
// so a half-written record can never desynchronize the record layer) and the
// operation is retried.
//
// Semantics are at-least-once for Send: a message whose acknowledgement path
// failed may be delivered twice after reconnect. MVTEE's data plane is safe
// under duplication — batches carry process-unique IDs and the monitor's
// gather ignores duplicate arrivals — but callers multiplexing other
// protocols over a ReliableConn must dedupe by message ID themselves.
type ReliableConn struct {
	dialer Dialer

	mu   sync.Mutex
	conn Conn
	// closed latches Close so reconnection stops racing teardown.
	closed bool
}

var (
	_ Conn     = (*ReliableConn)(nil)
	_ ZeroCopy = (*ReliableConn)(nil)
)

// NewReliable establishes the initial connection through d and returns a
// self-healing channel.
func NewReliable(d Dialer) (*ReliableConn, error) {
	conn, err := d.Connect()
	if err != nil {
		return nil, err
	}
	return &ReliableConn{dialer: d, conn: conn}, nil
}

// current returns the live connection, reconnecting if prev (the connection
// a failed operation used) is still installed.
func (r *ReliableConn) current(prev Conn) (Conn, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return nil, net.ErrClosed
	}
	if r.conn != nil && r.conn != prev {
		return r.conn, nil // another goroutine already reconnected
	}
	if r.conn != nil {
		_ = r.conn.Close()
		r.conn = nil
	}
	conn, err := r.dialer.Connect()
	if err != nil {
		return nil, err
	}
	mRedials.Inc()
	r.conn = conn
	return conn, nil
}

func (r *ReliableConn) live() (Conn, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return nil, net.ErrClosed
	}
	return r.conn, nil
}

// Send transmits b, reconnecting and retransmitting on failure
// (at-least-once; see type comment).
func (r *ReliableConn) Send(b []byte) error {
	conn, err := r.live()
	if err != nil {
		return err
	}
	if err = conn.Send(b); err == nil {
		return nil
	}
	conn, cerr := r.current(conn)
	if cerr != nil {
		return fmt.Errorf("securechan: reconnect after send error %v: %w", err, cerr)
	}
	return conn.Send(b)
}

// SendBuf transmits the buffer's payload with reconnection on failure. An
// in-place seal would destroy the plaintext needed for the retransmit, so
// the reliable path seals from the payload into a per-send pooled frame
// (SendShared) and frees the buffer afterwards — still one marshal and zero
// payload copies.
func (r *ReliableConn) SendBuf(b *Buf) error {
	defer b.Free()
	return r.SendShared(b.Payload())
}

// SendShared transmits the shared payload, reconnecting and retransmitting
// on failure (at-least-once; see Send). The payload is left intact.
func (r *ReliableConn) SendShared(payload []byte) error {
	conn, err := r.live()
	if err != nil {
		return err
	}
	if err = sendShared(conn, payload); err == nil {
		return nil
	}
	conn, cerr := r.current(conn)
	if cerr != nil {
		return fmt.Errorf("securechan: reconnect after send error %v: %w", err, cerr)
	}
	return sendShared(conn, payload)
}

// sendShared uses the zero-copy fan-out path when the underlying channel
// supports it, falling back to a plain copying Send.
func sendShared(c Conn, payload []byte) error {
	if zc, ok := c.(ZeroCopy); ok {
		return zc.SendShared(payload)
	}
	return c.Send(payload)
}

// RecvBuf receives into the current connection's pooled buffer, reconnecting
// on transport failure. The result is valid until the next receive.
func (r *ReliableConn) RecvBuf() ([]byte, error) {
	conn, err := r.live()
	if err != nil {
		return nil, err
	}
	b, err := recvBuf(conn)
	if err == nil {
		return b, nil
	}
	conn, cerr := r.current(conn)
	if cerr != nil {
		return nil, fmt.Errorf("securechan: reconnect after recv error %v: %w", err, cerr)
	}
	return recvBuf(conn)
}

func recvBuf(c Conn) ([]byte, error) {
	if zc, ok := c.(ZeroCopy); ok {
		return zc.RecvBuf()
	}
	return c.Recv()
}

// Recv receives one message, reconnecting on transport failure. Messages in
// flight on the failed connection are lost; senders retransmit (see Send).
func (r *ReliableConn) Recv() ([]byte, error) {
	conn, err := r.live()
	if err != nil {
		return nil, err
	}
	b, err := conn.Recv()
	if err == nil {
		return b, nil
	}
	conn, cerr := r.current(conn)
	if cerr != nil {
		return nil, fmt.Errorf("securechan: reconnect after recv error %v: %w", err, cerr)
	}
	return conn.Recv()
}

// Close shuts the channel down permanently; no further reconnects happen.
func (r *ReliableConn) Close() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.closed = true
	if r.conn == nil {
		return nil
	}
	err := r.conn.Close()
	r.conn = nil
	return err
}
