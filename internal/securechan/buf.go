package securechan

import (
	"math/bits"
	"sync"
)

// The zero-copy data plane encodes a wire message once, directly into the
// buffer the transport will write. A Buf reserves headroom in front of the
// payload for the frame header and record sequence number, and tailroom
// behind it for the AEAD tag, so the record layer can seal the payload in
// place and transmit header+sequence+ciphertext+tag as one contiguous write:
//
//	[0:4]    frame length (big endian), written at send time
//	[4:12]   record sequence number (secure channels; plain framing uses
//	         [8:12] for the length instead)
//	[12:12+n]    payload — plaintext, sealed in place on secure sends
//	[12+n:12+n+16] AEAD tag capacity
//
// Buffers come from size-classed pools, so a warm data plane allocates
// nothing on the send path.
const (
	frameHdrLen = 4
	recSeqLen   = 8
	// BufHeadroom is the space reserved in front of a Buf's payload for the
	// frame header and record sequence number.
	BufHeadroom = frameHdrLen + recSeqLen
	// BufTailroom is the space reserved behind the payload for the AEAD tag
	// (AES-GCM overhead).
	BufTailroom = 16
)

// Buf is a pooled frame buffer: a payload region with framing headroom and
// AEAD tailroom around it. Obtain with GetBuf, fill the payload via Grow (or
// AppendPayload), hand to a ZeroCopy channel's SendBuf — which consumes it —
// or release with Free.
type Buf struct {
	full []byte // BufHeadroom + payload capacity + BufTailroom
	n    int    // current payload length
	cls  int    // pool size class; -1 when unpooled (oversized)
}

// Buffer size classes are powers of two from 512 B to 512 MiB of total
// capacity; anything larger is allocated exactly and never pooled.
const (
	minBufClass = 9
	maxBufClass = 29
)

var bufPools [maxBufClass + 1]sync.Pool

// bufClass returns the smallest size class whose capacity holds total bytes,
// or -1 when total exceeds the largest pooled class.
func bufClass(total int) int {
	c := bits.Len(uint(total - 1))
	if c < minBufClass {
		c = minBufClass
	}
	if c > maxBufClass {
		return -1
	}
	return c
}

// GetBuf returns an empty pooled buffer whose payload region holds at least
// payloadCap bytes without reallocation.
func GetBuf(payloadCap int) *Buf {
	total := BufHeadroom + payloadCap + BufTailroom
	c := bufClass(total)
	if c < 0 {
		return &Buf{full: make([]byte, total), cls: -1}
	}
	if v := bufPools[c].Get(); v != nil {
		b := v.(*Buf)
		b.n = 0
		return b
	}
	return &Buf{full: make([]byte, 1<<c), cls: c}
}

// Free returns the buffer to its pool. The buffer must not be used after
// Free; SendBuf frees on the caller's behalf.
func (b *Buf) Free() {
	if b == nil || b.cls < 0 {
		return
	}
	bufPools[b.cls].Put(b)
}

// Len returns the current payload length.
func (b *Buf) Len() int { return b.n }

// Payload returns the current payload region. The slice aliases the pooled
// buffer: it is valid until SendBuf or Free.
func (b *Buf) Payload() []byte { return b.full[BufHeadroom : BufHeadroom+b.n] }

// Reset empties the payload, keeping the backing storage.
func (b *Buf) Reset() { b.n = 0 }

// Grow extends the payload by n bytes and returns the fresh region for the
// caller to fill, preserving the headroom/tailroom discipline if the backing
// array must be reallocated.
func (b *Buf) Grow(n int) []byte {
	need := BufHeadroom + b.n + n + BufTailroom
	if need > len(b.full) {
		c := bufClass(need)
		size := need
		if c >= 0 {
			size = 1 << c
		}
		nf := make([]byte, size)
		copy(nf, b.full[:BufHeadroom+b.n])
		b.full, b.cls = nf, c
	}
	p := b.full[BufHeadroom+b.n : BufHeadroom+b.n+n]
	b.n += n
	return p
}

// AppendPayload copies p onto the end of the payload.
func (b *Buf) AppendPayload(p []byte) { copy(b.Grow(len(p)), p) }

// ZeroCopy is implemented by channels that support the pooled zero-copy data
// plane: in-place sealed sends from headroom-bearing buffers, encode-once
// fan-out sends that seal a shared payload per connection, and pooled
// receives that reuse the connection's previous frame. SecureConn, the plain
// framing and ReliableConn all qualify; wire.Send/Recv use these paths
// automatically when available.
type ZeroCopy interface {
	Conn
	// SendBuf seals (secure channels) and frames the buffer's payload in
	// place and transmits it as a single write. The buffer is consumed:
	// SendBuf returns it to its pool whether or not the send succeeds.
	SendBuf(b *Buf) error
	// SendShared seals the shared payload into a pooled frame and transmits
	// it, leaving payload intact — the encode-once fan-out path, safe to call
	// with the same payload on many connections.
	SendShared(payload []byte) error
	// RecvBuf receives one message into the connection's pooled receive
	// buffer, decrypting in place on secure channels. The returned slice is
	// valid only until the next RecvBuf or Recv call on this connection;
	// callers must decode or copy before receiving again.
	RecvBuf() ([]byte, error)
}
