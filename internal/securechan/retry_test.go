package securechan

import (
	"errors"
	"net"
	"os"
	"sync"
	"testing"
	"time"
)

func TestRetryPolicyDelayCapsAndJitter(t *testing.T) {
	p := RetryPolicy{BaseDelay: 10 * time.Millisecond, MaxDelay: 40 * time.Millisecond,
		Jitter: 0.5, Seed: 1}.withDefaults()
	rng := p.rng()
	for k := 1; k <= 8; k++ {
		d := p.delay(k, rng)
		if d > p.MaxDelay {
			t.Fatalf("attempt %d: delay %v exceeds cap %v", k, d, p.MaxDelay)
		}
		if d <= 0 {
			t.Fatalf("attempt %d: non-positive delay %v", k, d)
		}
	}
	// Deep attempts sit in the jittered band below the cap.
	d := p.delay(6, rng)
	if d < p.MaxDelay/2 {
		t.Fatalf("capped delay %v below jitter floor %v", d, p.MaxDelay/2)
	}
}

func TestRetrySucceedsAfterTransientFailures(t *testing.T) {
	calls := 0
	err := Retry(RetryPolicy{MaxAttempts: 5, BaseDelay: time.Millisecond, Seed: 1}, func() error {
		calls++
		if calls < 3 {
			return errors.New("transient")
		}
		return nil
	})
	if err != nil {
		t.Fatalf("Retry: %v", err)
	}
	if calls != 3 {
		t.Fatalf("calls = %d, want 3", calls)
	}
}

func TestRetryExhaustsAttempts(t *testing.T) {
	calls := 0
	sentinel := errors.New("down")
	err := Retry(RetryPolicy{MaxAttempts: 3, BaseDelay: time.Millisecond, Seed: 1}, func() error {
		calls++
		return sentinel
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("err = %v, want wrapped %v", err, sentinel)
	}
	if calls != 3 {
		t.Fatalf("calls = %d, want 3", calls)
	}
}

// flakyListener hands out server ends; the first fail handshakes are aborted
// by closing the accepted conn.
type flakyListener struct {
	mu    sync.Mutex
	fail  int
	conns []Conn
}

func (fl *flakyListener) dial() (net.Conn, error) {
	client, server := net.Pipe()
	fl.mu.Lock()
	failing := fl.fail > 0
	if failing {
		fl.fail--
	}
	fl.mu.Unlock()
	go func() {
		if failing {
			_ = server.Close()
			return
		}
		sc, err := Server(server, nil, nil)
		if err != nil {
			return
		}
		fl.mu.Lock()
		fl.conns = append(fl.conns, sc)
		fl.mu.Unlock()
	}()
	return client, nil
}

func (fl *flakyListener) last() Conn {
	fl.mu.Lock()
	defer fl.mu.Unlock()
	if len(fl.conns) == 0 {
		return nil
	}
	return fl.conns[len(fl.conns)-1]
}

func newTestDialer(fl *flakyListener) Dialer {
	return Dialer{
		Dial:      fl.dial,
		Handshake: func(c net.Conn) (Conn, error) { return Client(c, nil, nil) },
		Policy:    RetryPolicy{MaxAttempts: 5, BaseDelay: time.Millisecond, Seed: 7},
	}
}

func TestDialerRetriesHandshakeFailures(t *testing.T) {
	fl := &flakyListener{fail: 2}
	conn, err := newTestDialer(fl).Connect()
	if err != nil {
		t.Fatalf("Connect after transient failures: %v", err)
	}
	defer conn.Close()
	srv := awaitServer(t, fl)
	go func() { _ = conn.Send([]byte("ping")) }()
	got, err := srv.Recv()
	if err != nil || string(got) != "ping" {
		t.Fatalf("Recv = %q, %v", got, err)
	}
}

func TestDialerGivesUp(t *testing.T) {
	fl := &flakyListener{fail: 1 << 20}
	_, err := newTestDialer(fl).Connect()
	if err == nil {
		t.Fatal("Connect succeeded against permanently failing peer")
	}
}

func awaitServer(t *testing.T, fl *flakyListener) Conn {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if c := fl.last(); c != nil {
			return c
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatal("server side never completed handshake")
	return nil
}

func TestReliableConnReconnectsOnSendFailure(t *testing.T) {
	fl := &flakyListener{}
	rc, err := NewReliable(newTestDialer(fl))
	if err != nil {
		t.Fatalf("NewReliable: %v", err)
	}
	defer rc.Close()
	first := awaitServer(t, fl)

	// Kill the first connection under the client, then send: the reliable
	// wrapper must redial (fresh sequence space) and retransmit.
	_ = first.Close()
	done := make(chan error, 1)
	go func() { done <- rc.Send([]byte("after-reconnect")) }()

	var second Conn
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if c := fl.last(); c != nil && c != first {
			second = c
			break
		}
		time.Sleep(time.Millisecond)
	}
	if second == nil {
		t.Fatal("no reconnect observed")
	}
	got, err := second.Recv()
	if err != nil || string(got) != "after-reconnect" {
		t.Fatalf("Recv on second conn = %q, %v", got, err)
	}
	if err := <-done; err != nil {
		t.Fatalf("Send: %v", err)
	}
}

func TestReliableConnClosePreventsReconnect(t *testing.T) {
	fl := &flakyListener{}
	rc, err := NewReliable(newTestDialer(fl))
	if err != nil {
		t.Fatalf("NewReliable: %v", err)
	}
	if err := rc.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := rc.Send([]byte("x")); !errors.Is(err, net.ErrClosed) {
		t.Fatalf("Send after Close = %v, want net.ErrClosed", err)
	}
	if _, err := rc.Recv(); !errors.Is(err, net.ErrClosed) {
		t.Fatalf("Recv after Close = %v, want net.ErrClosed", err)
	}
}

func TestIOTimeoutUnblocksRecv(t *testing.T) {
	for _, tc := range []struct {
		name string
		mk   func(c net.Conn) Conn
	}{
		{"plain", func(c net.Conn) Conn { return Plain(c) }},
		{"secure", func(c net.Conn) Conn {
			server, err := Server(c, nil, nil)
			if err != nil {
				t.Fatalf("handshake: %v", err)
			}
			return server
		}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			client, server := net.Pipe()
			defer client.Close()
			defer server.Close()
			connCh := make(chan Conn, 1)
			go func() { connCh <- tc.mk(server) }()
			if tc.name == "secure" {
				if _, err := Client(client, nil, nil); err != nil {
					t.Fatalf("client handshake: %v", err)
				}
			}
			conn := <-connCh
			dc, ok := conn.(DeadlineConn)
			if !ok {
				t.Fatalf("%T does not implement DeadlineConn", conn)
			}
			dc.SetIOTimeout(20 * time.Millisecond)
			start := time.Now()
			_, err := conn.Recv()
			if err == nil {
				t.Fatal("Recv returned without data")
			}
			var ne net.Error
			if !errors.As(err, &ne) || !ne.Timeout() {
				if !errors.Is(err, os.ErrDeadlineExceeded) {
					t.Fatalf("Recv error %v is not a timeout", err)
				}
			}
			if waited := time.Since(start); waited > 2*time.Second {
				t.Fatalf("Recv blocked %v despite deadline", waited)
			}
		})
	}
}
