package securechan

import (
	"bytes"
	"crypto/aes"
	"crypto/cipher"
	"encoding/binary"
	"testing"
)

// FuzzFrame drives the pre-authentication framing parser — the only record-
// layer surface an unauthenticated attacker controls — with arbitrary bytes:
// it must never panic, never accept a length beyond the cap, and never let a
// frame that was not sealed under the channel key authenticate.
func FuzzFrame(f *testing.F) {
	// Seed with a well-formed small frame, a forged giant length, a
	// truncated body and a zero-length frame.
	valid := make([]byte, 4+11)
	binary.BigEndian.PutUint32(valid, 11)
	copy(valid[4:], "hello world")
	f.Add(valid)
	huge := make([]byte, 4)
	binary.BigEndian.PutUint32(huge, uint32(MaxFrameSize)+1)
	f.Add(huge)
	trunc := make([]byte, 4+3)
	binary.BigEndian.PutUint32(trunc, 100)
	f.Add(trunc)
	f.Add(make([]byte, 4))

	blk, err := aes.NewCipher(bytes.Repeat([]byte{0x42}, 32))
	if err != nil {
		f.Fatal(err)
	}
	aead, err := cipher.NewGCM(blk)
	if err != nil {
		f.Fatal(err)
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		r := bytes.NewReader(data)
		n, err := readFrameLen(r)
		if err != nil {
			return
		}
		if n > MaxFrameSize {
			t.Fatalf("readFrameLen accepted %d > MaxFrameSize", n)
		}
		body, err := readBody(r, nil, n)
		if err != nil {
			return
		}
		if len(body) != n {
			t.Fatalf("readBody returned %d bytes for claimed %d", len(body), n)
		}
		// A frame the peer never sealed must not authenticate, whatever its
		// sequence number claims.
		sc := newSecureConn(nil, aead, aead, "c2s", "s2c", nil)
		if len(body) >= 8 {
			sc.recvSeq = binary.BigEndian.Uint64(body)
		}
		if _, err := sc.openLocked(append([]byte(nil), body...)); err == nil {
			t.Fatal("unauthenticated frame accepted by record layer")
		}
	})
}
