package securechan

import (
	"fmt"
	"net"
	"testing"
)

// BenchmarkChannelThroughput measures the record layer on checkpoint-sized
// payloads — the encryption overhead Figure 10 decomposes — for the secure
// (AES-GCM-256 + sequence numbers) and plain framings.
func BenchmarkChannelThroughput(b *testing.B) {
	for _, size := range []int{4 << 10, 64 << 10, 1 << 20} {
		payload := make([]byte, size)
		for _, mode := range []string{"plain", "secure"} {
			b.Run(fmt.Sprintf("%s/%dKiB", mode, size>>10), func(b *testing.B) {
				ca, cb := net.Pipe()
				defer ca.Close()
				var send, recv Conn
				if mode == "plain" {
					send, recv = Plain(ca), Plain(cb)
				} else {
					_, cliEncl := testEnclave(b, "cli")
					_, srvEncl := testEnclave(b, "srv")
					done := make(chan *SecureConn, 1)
					go func() {
						c, err := Server(cb, srvEncl, nil)
						if err != nil {
							panic(err)
						}
						done <- c
					}()
					cli, err := Client(ca, cliEncl, nil)
					if err != nil {
						b.Fatal(err)
					}
					send, recv = cli, <-done
				}
				errCh := make(chan error, 1)
				go func() {
					for i := 0; i < b.N; i++ {
						if _, err := recv.Recv(); err != nil {
							errCh <- err
							return
						}
					}
					errCh <- nil
				}()
				b.SetBytes(int64(size))
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if err := send.Send(payload); err != nil {
						b.Fatal(err)
					}
				}
				if err := <-errCh; err != nil {
					b.Fatal(err)
				}
			})
		}
	}
}

// BenchmarkHandshake measures the attested channel establishment cost (the
// per-variant bring-up price in Figure 6).
func BenchmarkHandshake(b *testing.B) {
	_, cliEncl := testEnclave(b, "cli")
	_, srvEncl := testEnclave(b, "srv")
	for i := 0; i < b.N; i++ {
		ca, cb := net.Pipe()
		done := make(chan error, 1)
		go func() {
			_, err := Server(cb, srvEncl, nil)
			done <- err
		}()
		if _, err := Client(ca, cliEncl, nil); err != nil {
			b.Fatal(err)
		}
		if err := <-done; err != nil {
			b.Fatal(err)
		}
		ca.Close()
	}
}
