package securechan

import (
	"repro/internal/telemetry"
)

// Channel-layer series, registered once on the process-wide default registry
// (every connection in the process shares them). Byte counts cover the framed
// record (sequence word + ciphertext + tag on secure channels); the 4-byte
// length word is excluded on both directions so sent and received totals
// match across a pipe.
var (
	mBytesSent  = telemetry.Default.Counter(telemetry.MetricChanBytesSent)
	mBytesRecv  = telemetry.Default.Counter(telemetry.MetricChanBytesRecv)
	mFramesSent = telemetry.Default.Counter(telemetry.MetricChanFramesSent)
	mFramesRecv = telemetry.Default.Counter(telemetry.MetricChanFramesRecv)
	mSealNs     = telemetry.Default.Histogram(telemetry.MetricChanSealNs)
	mOpenNs     = telemetry.Default.Histogram(telemetry.MetricChanOpenNs)
	mRetries    = telemetry.Default.Counter(telemetry.MetricChanRetries)
	mRedials    = telemetry.Default.Counter(telemetry.MetricChanRedials)
)

func countSent(frameBytes int) {
	if telemetry.Enabled() {
		mFramesSent.Inc()
		mBytesSent.Add(uint64(frameBytes))
	}
}

func countRecvd(frameBytes int) {
	if telemetry.Enabled() {
		mFramesRecv.Inc()
		mBytesRecv.Add(uint64(frameBytes))
	}
}
