package securechan

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"net"
	"testing"
	"time"
)

// pipePair returns both ends of a secure channel over net.Pipe with no
// attestation (nil attesters), for record-layer tests.
func pipePair(t testing.TB) (*SecureConn, *SecureConn) {
	t.Helper()
	a, b := net.Pipe()
	type res struct {
		c   *SecureConn
		err error
	}
	ch := make(chan res, 1)
	go func() {
		c, err := Server(b, nil, nil)
		ch <- res{c, err}
	}()
	cli, err := Client(a, nil, nil)
	if err != nil {
		t.Fatalf("client handshake: %v", err)
	}
	r := <-ch
	if r.err != nil {
		t.Fatalf("server handshake: %v", r.err)
	}
	t.Cleanup(func() { cli.Close() })
	return cli, r.c
}

func newBufPayload(p []byte) *Buf {
	b := GetBuf(len(p))
	b.AppendPayload(p)
	return b
}

// TestFrameLenCapPreAuth is the regression test for the unbounded
// pre-authentication allocation: a forged length word beyond MaxFrameSize
// must be rejected with the typed error before any body memory is committed.
func TestFrameLenCapPreAuth(t *testing.T) {
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(MaxFrameSize)+1)
	if _, err := readFrameLen(bytes.NewReader(hdr[:])); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("forged length accepted: err = %v", err)
	}
	// Exactly at the cap is allowed (the body read then proceeds
	// incrementally, committing memory only as bytes arrive).
	binary.BigEndian.PutUint32(hdr[:], uint32(MaxFrameSize))
	if n, err := readFrameLen(bytes.NewReader(hdr[:])); err != nil || n != MaxFrameSize {
		t.Fatalf("cap-sized length rejected: n=%d err=%v", n, err)
	}
	// Sender side enforces the same cap.
	if err := writeFrame(io.Discard, make([]byte, MaxFrameSize+1)); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("oversized send accepted: err = %v", err)
	}
}

// TestReadBodyIncremental verifies that large frame bodies are committed in
// readChunk steps tracking the bytes actually received: a peer that claims a
// huge frame but hangs up early never forces a full-size allocation.
func TestReadBodyIncremental(t *testing.T) {
	// 3 MiB claimed, only 2.5 MiB sent: must fail with EOF, not succeed.
	claimed := 3 << 20
	sent := claimed - (1 << 19)
	body := make([]byte, sent)
	for i := range body {
		body[i] = byte(i)
	}
	if _, err := readBody(bytes.NewReader(body), nil, claimed); err == nil {
		t.Fatal("short body accepted")
	}
	// Full delivery roundtrips.
	full := make([]byte, claimed)
	for i := range full {
		full[i] = byte(i * 7)
	}
	got, err := readBody(bytes.NewReader(full), nil, claimed)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, full) {
		t.Fatal("incremental body read corrupted data")
	}
	// Warm scratch path reuses capacity.
	scratch := make([]byte, 0, claimed)
	got, err = readBody(bytes.NewReader(full), scratch, claimed)
	if err != nil {
		t.Fatal(err)
	}
	if &got[0] != &scratch[:1][0] {
		t.Fatal("scratch capacity not reused")
	}
}

// TestZeroCopySecureInterop crosses every send path with every receive path
// on a secure channel: pooled and legacy ends must interoperate bitwise.
func TestZeroCopySecureInterop(t *testing.T) {
	cli, srv := pipePair(t)
	msgs := [][]byte{
		[]byte("small"),
		bytes.Repeat([]byte{0xAB}, 64<<10),
		{},
	}
	type sendFn func(Conn, []byte) error
	sends := map[string]sendFn{
		"Send":       func(c Conn, p []byte) error { return c.Send(p) },
		"SendBuf":    func(c Conn, p []byte) error { return c.(ZeroCopy).SendBuf(newBufPayload(p)) },
		"SendShared": func(c Conn, p []byte) error { return c.(ZeroCopy).SendShared(p) },
	}
	recvs := map[string]func(Conn) ([]byte, error){
		"Recv":    func(c Conn) ([]byte, error) { return c.Recv() },
		"RecvBuf": func(c Conn) ([]byte, error) { return c.(ZeroCopy).RecvBuf() },
	}
	for sname, send := range sends {
		for rname, recv := range recvs {
			for _, msg := range msgs {
				errCh := make(chan error, 1)
				go func() { errCh <- send(cli, msg) }()
				got, err := recv(srv)
				if err != nil {
					t.Fatalf("%s→%s: recv: %v", sname, rname, err)
				}
				if err := <-errCh; err != nil {
					t.Fatalf("%s→%s: send: %v", sname, rname, err)
				}
				if !bytes.Equal(got, msg) {
					t.Fatalf("%s→%s: payload mismatch (%d vs %d bytes)", sname, rname, len(got), len(msg))
				}
			}
		}
	}
}

// TestZeroCopyPlainInterop is the same matrix on the unencrypted framing.
func TestZeroCopyPlainInterop(t *testing.T) {
	a, b := net.Pipe()
	cli, srv := Plain(a), Plain(b)
	defer cli.Close()
	msg := bytes.Repeat([]byte{0x5C}, 8192)
	type sendFn func() error
	for name, send := range map[string]sendFn{
		"Send":       func() error { return cli.Send(msg) },
		"SendBuf":    func() error { return cli.(ZeroCopy).SendBuf(newBufPayload(msg)) },
		"SendShared": func() error { return cli.(ZeroCopy).SendShared(msg) },
	} {
		errCh := make(chan error, 1)
		go func() { errCh <- send() }()
		got, err := srv.(ZeroCopy).RecvBuf()
		if err != nil || !bytes.Equal(got, msg) {
			t.Fatalf("%s: recv err=%v match=%v", name, err, bytes.Equal(got, msg))
		}
		if err := <-errCh; err != nil {
			t.Fatalf("%s: send: %v", name, err)
		}
	}
}

// TestSendSharedLeavesPayloadIntact pins the fan-out contract: sealing for
// one connection must not disturb the shared plaintext, so the identical
// payload can go to every variant.
func TestSendSharedLeavesPayloadIntact(t *testing.T) {
	cli1, srv1 := pipePair(t)
	cli2, srv2 := pipePair(t)
	payload := bytes.Repeat([]byte{1, 2, 3, 4}, 4096)
	orig := append([]byte(nil), payload...)
	for i, pair := range []struct{ c, s *SecureConn }{{cli1, srv1}, {cli2, srv2}} {
		errCh := make(chan error, 1)
		go func() { errCh <- pair.c.SendShared(payload) }()
		got, err := pair.s.RecvBuf()
		if err != nil {
			t.Fatalf("conn %d: %v", i, err)
		}
		if !bytes.Equal(got, orig) {
			t.Fatalf("conn %d: delivered payload diverged", i)
		}
		if err := <-errCh; err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(payload, orig) {
			t.Fatalf("conn %d: SendShared mutated the shared payload", i)
		}
	}
}

// TestZeroCopySequenceDiscipline confirms the pooled paths share the same
// sequence space as the legacy ones: a replayed record still fails.
func TestZeroCopySequenceDiscipline(t *testing.T) {
	cli, srv := pipePair(t)
	go func() {
		_ = cli.SendBuf(newBufPayload([]byte("one")))
		_ = cli.Send([]byte("two"))
		_ = cli.SendShared([]byte("three"))
	}()
	for _, want := range []string{"one", "two", "three"} {
		got, err := srv.RecvBuf()
		if err != nil {
			t.Fatal(err)
		}
		if string(got) != want {
			t.Fatalf("got %q want %q", got, want)
		}
	}
}

// TestBufGrowPreservesLayout exercises the pooled buffer across size-class
// reallocation: headroom discipline and payload bytes must survive growth.
func TestBufGrowPreservesLayout(t *testing.T) {
	b := GetBuf(16)
	defer b.Free()
	first := []byte("0123456789abcdef")
	b.AppendPayload(first)
	// Force several reallocation steps.
	big := bytes.Repeat([]byte{0xEE}, 1<<14)
	b.AppendPayload(big)
	want := append(append([]byte(nil), first...), big...)
	if !bytes.Equal(b.Payload(), want) {
		t.Fatal("payload corrupted across Grow reallocation")
	}
	if len(b.full) < BufHeadroom+b.Len()+BufTailroom {
		t.Fatal("tailroom lost after growth")
	}
}

// TestBufOversizedUnpooled checks the beyond-class fallback allocates exactly
// and never panics on Free.
func TestBufOversizedUnpooled(t *testing.T) {
	b := GetBuf((1 << 29) + 1)
	if b.cls != -1 {
		t.Fatalf("oversized buffer pooled in class %d", b.cls)
	}
	b.Free() // must be a no-op
}

// TestReliableConnZeroCopy covers the retransmitting wrapper's pooled paths:
// SendBuf must survive a reconnect because it seals from, not into, the
// payload.
func TestReliableConnZeroCopy(t *testing.T) {
	fl := &flakyListener{}
	rc, err := NewReliable(newTestDialer(fl))
	if err != nil {
		t.Fatal(err)
	}
	defer rc.Close()
	first := awaitServer(t, fl)

	msg := bytes.Repeat([]byte{7}, 1024)
	go func() { _ = rc.SendBuf(newBufPayload(msg)) }()
	if got, err := first.(ZeroCopy).RecvBuf(); err != nil || !bytes.Equal(got, msg) {
		t.Fatalf("pre-failure roundtrip: err=%v", err)
	}

	// Kill the channel under the client: the next SendBuf must reconnect and
	// retransmit the same payload over the fresh channel.
	_ = first.Close()
	done := make(chan error, 1)
	go func() { done <- rc.SendBuf(newBufPayload(msg)) }()
	var second Conn
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if c := fl.last(); c != nil && c != first {
			second = c
			break
		}
		time.Sleep(time.Millisecond)
	}
	if second == nil {
		t.Fatal("no reconnect observed")
	}
	if got, err := second.(ZeroCopy).RecvBuf(); err != nil || !bytes.Equal(got, msg) {
		t.Fatalf("post-reconnect roundtrip: err=%v match=%v", err, bytes.Equal(got, msg))
	}
	if err := <-done; err != nil {
		t.Fatalf("SendBuf after channel loss: %v", err)
	}
	// And RecvBuf on the reliable side works over the fresh channel.
	go func() { _ = second.Send([]byte("pong")) }()
	if got, err := rc.RecvBuf(); err != nil || string(got) != "pong" {
		t.Fatalf("reliable RecvBuf: %q err=%v", got, err)
	}
}
