// Package securechan implements MVTEE's socket-level RA-TLS analogue
// (§5.2): an attested, encrypted, freshness-protected channel over any
// net.Conn. The handshake performs an X25519 key agreement in which each
// side's attestation report binds the channel's public keys and nonces into
// its report data — so a verified report proves the peer enclave owns the
// channel — and the record layer protects every message with AES-GCM-256
// under direction-separated keys and explicit monotonic sequence numbers.
package securechan

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/ecdh"
	"crypto/hkdf"
	"crypto/rand"
	"crypto/sha256"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/attest"
	"repro/internal/enclave"
	"repro/internal/telemetry"
)

// Conn is a message-oriented channel between monitor and variant. Send and
// Recv are each safe for use by one goroutine at a time (one sender, one
// receiver concurrently is fine).
type Conn interface {
	Send(b []byte) error
	Recv() ([]byte, error)
	Close() error
}

// MaxFrameSize is the largest accepted frame (largest checkpoint tensors
// plus record headers). The length word of an incoming frame is
// attacker-controlled until the record authenticates, so receivers enforce
// this cap before committing memory and grow large frames incrementally as
// their bytes actually arrive.
const MaxFrameSize = 1 << 28

// maxRecvRetain caps how large a connection's pooled receive buffer is kept
// across messages; a one-off giant frame does not pin its memory forever.
const maxRecvRetain = 1 << 24

// Errors.
var (
	ErrFrameTooLarge = errors.New("securechan: frame exceeds limit")
	ErrSequence      = errors.New("securechan: bad record sequence (replay or reorder)")
	ErrHandshake     = errors.New("securechan: handshake failed")
)

// --- raw framing ------------------------------------------------------------

func writeFrame(w io.Writer, b []byte) error {
	if len(b) > MaxFrameSize {
		return ErrFrameTooLarge
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(b)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(b)
	return err
}

// readFrameLen reads and validates a frame's length word.
func readFrameLen(r io.Reader) (int, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > MaxFrameSize {
		return 0, fmt.Errorf("%w: %d > %d", ErrFrameTooLarge, n, MaxFrameSize)
	}
	return int(n), nil
}

// readChunk bounds how much memory one growth step commits while a frame
// body is still arriving: a forged length word can make the receiver commit
// at most one chunk beyond the bytes the peer actually transmitted.
const readChunk = 1 << 20

// readBody reads an n-byte frame body, reusing scratch's capacity when it
// suffices. Oversized cold reads grow incrementally in readChunk steps.
func readBody(r io.Reader, scratch []byte, n int) ([]byte, error) {
	if n <= cap(scratch) || n <= readChunk {
		var b []byte
		if n <= cap(scratch) {
			b = scratch[:n]
		} else {
			b = make([]byte, n)
		}
		_, err := io.ReadFull(r, b)
		return b, err
	}
	b := scratch[:0]
	read := 0
	for read < n {
		step := n - read
		if step > readChunk {
			step = readChunk
		}
		need := read + step
		if cap(b) < need {
			newCap := 2 * cap(b)
			if newCap < need {
				newCap = need
			}
			if newCap > n {
				newCap = n
			}
			nb := make([]byte, need, newCap)
			copy(nb, b[:read])
			b = nb
		} else {
			b = b[:need]
		}
		if _, err := io.ReadFull(r, b[read:need]); err != nil {
			return nil, err
		}
		read = need
	}
	return b, nil
}

func readFrame(r io.Reader) ([]byte, error) {
	n, err := readFrameLen(r)
	if err != nil {
		return nil, err
	}
	return readBody(r, nil, n)
}

// --- plaintext channel (baseline) --------------------------------------------

// DeadlineConn is implemented by channels that can bound per-operation IO
// (both Plain and SecureConn wrap a net.Conn and qualify). A zero timeout
// disables deadlines — correct for data-plane readers that legitimately
// idle between batches; straggler detection there belongs to the engine's
// StageTimeout, not the transport.
type DeadlineConn interface {
	Conn
	// SetIOTimeout bounds every subsequent Send and Recv: an operation that
	// does not complete within d fails with a timeout error.
	SetIOTimeout(d time.Duration)
}

// ioDeadline arms a per-operation deadline on the transport.
func ioDeadline(d time.Duration, set func(time.Time) error) {
	if d > 0 {
		_ = set(time.Now().Add(d))
	} else {
		_ = set(time.Time{})
	}
}

// plainConn is the no-encryption baseline channel used by the Figure 10
// overhead experiments. Same framing, no crypto.
type plainConn struct {
	c         net.Conn
	sendMu    sync.Mutex
	recvMu    sync.Mutex
	recvBuf   []byte       // pooled receive scratch, guarded by recvMu
	ioTimeout atomic.Int64 // time.Duration; 0 = no deadline
}

var (
	_ DeadlineConn = (*plainConn)(nil)
	_ ZeroCopy     = (*plainConn)(nil)
)

// Plain wraps c in unencrypted framing.
func Plain(c net.Conn) Conn { return &plainConn{c: c} }

// SetIOTimeout bounds each Send/Recv; zero disables deadlines.
func (p *plainConn) SetIOTimeout(d time.Duration) { p.ioTimeout.Store(int64(d)) }

func (p *plainConn) Send(b []byte) error {
	p.sendMu.Lock()
	defer p.sendMu.Unlock()
	ioDeadline(time.Duration(p.ioTimeout.Load()), p.c.SetWriteDeadline)
	if err := writeFrame(p.c, b); err != nil {
		return err
	}
	countSent(len(b))
	return nil
}

func (p *plainConn) Recv() ([]byte, error) {
	p.recvMu.Lock()
	defer p.recvMu.Unlock()
	ioDeadline(time.Duration(p.ioTimeout.Load()), p.c.SetReadDeadline)
	frame, err := readFrame(p.c)
	if err != nil {
		return nil, err
	}
	countRecvd(len(frame))
	return frame, nil
}

// SendBuf frames the buffer's payload in place (the length word lands in the
// tail of the headroom) and transmits it as one write, consuming the buffer.
func (p *plainConn) SendBuf(b *Buf) error {
	defer b.Free()
	if b.n+frameHdrLen > MaxFrameSize {
		return ErrFrameTooLarge
	}
	frame := b.full[BufHeadroom-frameHdrLen : BufHeadroom+b.n]
	binary.BigEndian.PutUint32(frame[:frameHdrLen], uint32(b.n))
	p.sendMu.Lock()
	defer p.sendMu.Unlock()
	ioDeadline(time.Duration(p.ioTimeout.Load()), p.c.SetWriteDeadline)
	if _, err := p.c.Write(frame); err != nil {
		return err
	}
	countSent(b.n)
	return nil
}

// SendShared frames the shared payload without copying it, scattering the
// header and payload with a vectored write (net.Buffers → writev on TCP).
func (p *plainConn) SendShared(payload []byte) error {
	if len(payload) > MaxFrameSize {
		return ErrFrameTooLarge
	}
	var hdr [frameHdrLen]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(payload)))
	p.sendMu.Lock()
	defer p.sendMu.Unlock()
	ioDeadline(time.Duration(p.ioTimeout.Load()), p.c.SetWriteDeadline)
	bufs := net.Buffers{hdr[:], payload}
	if _, err := bufs.WriteTo(p.c); err != nil {
		return err
	}
	countSent(len(payload))
	return nil
}

// RecvBuf receives one message into the connection's pooled receive buffer;
// the result is valid until the next RecvBuf or Recv.
func (p *plainConn) RecvBuf() ([]byte, error) {
	p.recvMu.Lock()
	defer p.recvMu.Unlock()
	ioDeadline(time.Duration(p.ioTimeout.Load()), p.c.SetReadDeadline)
	n, err := readFrameLen(p.c)
	if err != nil {
		return nil, err
	}
	scratch := p.recvBuf
	if cap(scratch) > maxRecvRetain {
		scratch, p.recvBuf = nil, nil
	}
	frame, err := readBody(p.c, scratch, n)
	if err != nil {
		return nil, err
	}
	if cap(frame) <= maxRecvRetain {
		p.recvBuf = frame
	}
	countRecvd(len(frame))
	return frame, nil
}

func (p *plainConn) Close() error { return p.c.Close() }

// --- secure channel ----------------------------------------------------------

// SecureConn is an established RA-TLS-style channel.
type SecureConn struct {
	c         net.Conn
	sendMu    sync.Mutex
	recvMu    sync.Mutex
	sendAEAD  cipher.AEAD
	recvAEAD  cipher.AEAD
	sendSeq   uint64
	recvSeq   uint64
	sendLabel []byte
	recvLabel []byte
	// sendAAD/recvAAD are per-direction AAD scratch (label ‖ sequence),
	// guarded by the corresponding mutex so the hot path never reallocates
	// the additional data per record.
	sendAAD []byte
	recvAAD []byte
	// recvBuf is the pooled receive frame, reused across RecvBuf calls
	// (guarded by recvMu).
	recvBuf    []byte
	peerReport *enclave.Report
	ioTimeout  atomic.Int64 // time.Duration; 0 = no deadline
}

var (
	_ DeadlineConn = (*SecureConn)(nil)
	_ ZeroCopy     = (*SecureConn)(nil)
)

// newSecureConn assembles the record layer shared by both handshake roles.
func newSecureConn(c net.Conn, sendAEAD, recvAEAD cipher.AEAD, sendLabel, recvLabel string, peer *enclave.Report) *SecureConn {
	aad := func(label string) []byte {
		b := make([]byte, len(label)+8)
		copy(b, label)
		return b
	}
	return &SecureConn{
		c: c, sendAEAD: sendAEAD, recvAEAD: recvAEAD,
		sendLabel: []byte(sendLabel), recvLabel: []byte(recvLabel),
		sendAAD: aad(sendLabel), recvAAD: aad(recvLabel),
		peerReport: peer,
	}
}

// putSeqAAD stamps seq into the direction's AAD scratch and returns it.
func putSeqAAD(aad []byte, seq uint64) []byte {
	binary.BigEndian.PutUint64(aad[len(aad)-8:], seq)
	return aad
}

// SetIOTimeout bounds each Send/Recv; zero disables deadlines. A timed-out
// operation may leave a partial record on the wire, so the connection must
// be considered broken afterwards — reconnect (fresh handshake and sequence
// space) rather than retrying on the same channel; see ReliableConn.
func (s *SecureConn) SetIOTimeout(d time.Duration) { s.ioTimeout.Store(int64(d)) }

// PeerReport returns the attestation report presented by the peer during the
// handshake.
func (s *SecureConn) PeerReport() *enclave.Report { return s.peerReport }

// Close closes the underlying transport.
func (s *SecureConn) Close() error { return s.c.Close() }

// Send encrypts and transmits one message. The caller-owned path: b is
// copied through the AEAD into a fresh frame. The zero-copy data plane
// (SendBuf/SendShared) avoids that copy; Send remains for callers without
// pooled buffers.
func (s *SecureConn) Send(b []byte) error {
	s.sendMu.Lock()
	defer s.sendMu.Unlock()
	seq := s.sendSeq
	s.sendSeq++
	var nonce [12]byte
	binary.BigEndian.PutUint64(nonce[4:], seq)
	aad := putSeqAAD(s.sendAAD, seq)
	var t0 time.Time
	if telemetry.Enabled() {
		t0 = time.Now()
	}
	ct := s.sendAEAD.Seal(nil, nonce[:], b, aad)
	if !t0.IsZero() {
		mSealNs.Observe(time.Since(t0).Nanoseconds())
	}
	frame := make([]byte, 8+len(ct))
	binary.BigEndian.PutUint64(frame, seq)
	copy(frame[8:], ct)
	ioDeadline(time.Duration(s.ioTimeout.Load()), s.c.SetWriteDeadline)
	if err := writeFrame(s.c, frame); err != nil {
		return err
	}
	countSent(len(frame))
	return nil
}

// SendBuf seals the buffer's payload in place — the ciphertext and tag land
// where the plaintext was, the frame header and sequence number in the
// headroom — and transmits the record as a single write. The buffer is
// consumed (returned to its pool) whether or not the send succeeds.
func (s *SecureConn) SendBuf(b *Buf) error {
	defer b.Free()
	if recSeqLen+b.n+BufTailroom > MaxFrameSize {
		return ErrFrameTooLarge
	}
	s.sendMu.Lock()
	defer s.sendMu.Unlock()
	seq := s.sendSeq
	s.sendSeq++
	var nonce [12]byte
	binary.BigEndian.PutUint64(nonce[4:], seq)
	aad := putSeqAAD(s.sendAAD, seq)
	payload := b.Payload()
	var t0 time.Time
	if telemetry.Enabled() {
		t0 = time.Now()
	}
	ct := s.sendAEAD.Seal(payload[:0], nonce[:], payload, aad)
	if !t0.IsZero() {
		mSealNs.Observe(time.Since(t0).Nanoseconds())
	}
	frame := b.full[:BufHeadroom+len(ct)]
	binary.BigEndian.PutUint32(frame[:frameHdrLen], uint32(recSeqLen+len(ct)))
	binary.BigEndian.PutUint64(frame[frameHdrLen:BufHeadroom], seq)
	ioDeadline(time.Duration(s.ioTimeout.Load()), s.c.SetWriteDeadline)
	if _, err := s.c.Write(frame); err != nil {
		return err
	}
	countSent(recSeqLen + len(ct))
	return nil
}

// SendShared seals the shared payload into a pooled frame of this
// connection's own — payload is left intact, so the same encoded message can
// fan out across many connections with one marshal and one seal each.
func (s *SecureConn) SendShared(payload []byte) error {
	if recSeqLen+len(payload)+BufTailroom > MaxFrameSize {
		return ErrFrameTooLarge
	}
	f := GetBuf(len(payload))
	defer f.Free()
	s.sendMu.Lock()
	defer s.sendMu.Unlock()
	seq := s.sendSeq
	s.sendSeq++
	var nonce [12]byte
	binary.BigEndian.PutUint64(nonce[4:], seq)
	aad := putSeqAAD(s.sendAAD, seq)
	var t0 time.Time
	if telemetry.Enabled() {
		t0 = time.Now()
	}
	ct := s.sendAEAD.Seal(f.full[BufHeadroom:BufHeadroom], nonce[:], payload, aad)
	if !t0.IsZero() {
		mSealNs.Observe(time.Since(t0).Nanoseconds())
	}
	frame := f.full[:BufHeadroom+len(ct)]
	binary.BigEndian.PutUint32(frame[:frameHdrLen], uint32(recSeqLen+len(ct)))
	binary.BigEndian.PutUint64(frame[frameHdrLen:BufHeadroom], seq)
	ioDeadline(time.Duration(s.ioTimeout.Load()), s.c.SetWriteDeadline)
	if _, err := s.c.Write(frame); err != nil {
		return err
	}
	countSent(recSeqLen + len(ct))
	return nil
}

// Recv receives and decrypts one message, enforcing strict sequence order.
// The returned slice is caller-owned (freshly allocated); the data plane
// uses RecvBuf to reuse frames instead.
func (s *SecureConn) Recv() ([]byte, error) {
	s.recvMu.Lock()
	defer s.recvMu.Unlock()
	ioDeadline(time.Duration(s.ioTimeout.Load()), s.c.SetReadDeadline)
	frame, err := readFrame(s.c)
	if err != nil {
		return nil, err
	}
	return s.openLocked(frame)
}

// RecvBuf receives one message into the connection's pooled receive buffer
// and decrypts it in place. The returned slice aliases the buffer: it is
// valid only until the next RecvBuf or Recv on this connection.
func (s *SecureConn) RecvBuf() ([]byte, error) {
	s.recvMu.Lock()
	defer s.recvMu.Unlock()
	ioDeadline(time.Duration(s.ioTimeout.Load()), s.c.SetReadDeadline)
	n, err := readFrameLen(s.c)
	if err != nil {
		return nil, err
	}
	scratch := s.recvBuf
	if cap(scratch) > maxRecvRetain {
		scratch, s.recvBuf = nil, nil
	}
	frame, err := readBody(s.c, scratch, n)
	if err != nil {
		return nil, err
	}
	if cap(frame) <= maxRecvRetain {
		s.recvBuf = frame
	}
	return s.openLocked(frame)
}

// openLocked authenticates and decrypts one framed record in place
// (recvMu must be held).
func (s *SecureConn) openLocked(frame []byte) ([]byte, error) {
	if len(frame) < 8 {
		return nil, fmt.Errorf("securechan: short record")
	}
	seq := binary.BigEndian.Uint64(frame)
	if seq != s.recvSeq {
		return nil, fmt.Errorf("%w: got %d want %d", ErrSequence, seq, s.recvSeq)
	}
	s.recvSeq++
	var nonce [12]byte
	binary.BigEndian.PutUint64(nonce[4:], seq)
	aad := putSeqAAD(s.recvAAD, seq)
	ct := frame[8:]
	var t0 time.Time
	if telemetry.Enabled() {
		t0 = time.Now()
	}
	pt, err := s.recvAEAD.Open(ct[:0], nonce[:], ct, aad)
	if err != nil {
		return nil, fmt.Errorf("securechan: record auth: %w", err)
	}
	if !t0.IsZero() {
		mOpenNs.Observe(time.Since(t0).Nanoseconds())
	}
	countRecvd(len(frame))
	return pt, nil
}

// --- handshake ----------------------------------------------------------------

type helloMsg struct {
	Pub    []byte          `json:"pub"`
	Nonce  []byte          `json:"nonce"`
	Report json.RawMessage `json:"report,omitempty"`
}

// VerifyPeer validates the peer's attestation report during the handshake.
// Returning an error aborts the connection.
type VerifyPeer func(r *enclave.Report) error

func channelBinding(cPub, sPub, cNonce, sNonce []byte) enclave.ReportData {
	h := sha256.New()
	h.Write([]byte("mvtee-ratls-v1"))
	h.Write(cPub)
	h.Write(sPub)
	h.Write(cNonce)
	h.Write(sNonce)
	var rd enclave.ReportData
	copy(rd[:], h.Sum(nil))
	return rd
}

func deriveAEAD(shared, salt []byte, info string) (cipher.AEAD, error) {
	key, err := hkdf.Key(sha256.New, shared, salt, info, 32)
	if err != nil {
		return nil, err
	}
	blk, err := aes.NewCipher(key)
	if err != nil {
		return nil, err
	}
	return cipher.NewGCM(blk)
}

func newKeyPair() (*ecdh.PrivateKey, error) {
	return ecdh.X25519().GenerateKey(rand.Reader)
}

// Client performs the initiator side of the attested handshake. self may be
// nil for an unattested client (e.g., the model owner's machine, which is
// verified by other means); verify may be nil to skip peer verification.
func Client(c net.Conn, self attest.Attester, verify VerifyPeer) (*SecureConn, error) {
	priv, err := newKeyPair()
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrHandshake, err)
	}
	cNonce, err := attest.NewNonce()
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrHandshake, err)
	}
	hello := helloMsg{Pub: priv.PublicKey().Bytes(), Nonce: cNonce}
	b, err := json.Marshal(hello)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrHandshake, err)
	}
	if err := writeFrame(c, b); err != nil {
		return nil, fmt.Errorf("%w: send hello: %v", ErrHandshake, err)
	}

	rb, err := readFrame(c)
	if err != nil {
		return nil, fmt.Errorf("%w: read server hello: %v", ErrHandshake, err)
	}
	var sh helloMsg
	if err := json.Unmarshal(rb, &sh); err != nil {
		return nil, fmt.Errorf("%w: parse server hello: %v", ErrHandshake, err)
	}
	sPub, err := ecdh.X25519().NewPublicKey(sh.Pub)
	if err != nil {
		return nil, fmt.Errorf("%w: server key: %v", ErrHandshake, err)
	}
	binding := channelBinding(hello.Pub, sh.Pub, cNonce, sh.Nonce)

	var peer *enclave.Report
	if len(sh.Report) > 0 {
		peer, err = enclave.UnmarshalReport(sh.Report)
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrHandshake, err)
		}
		if peer.ReportData != binding {
			return nil, fmt.Errorf("%w: server report not bound to channel", ErrHandshake)
		}
	}
	if verify != nil {
		if err := verify(peer); err != nil {
			return nil, fmt.Errorf("%w: peer verification: %v", ErrHandshake, err)
		}
	}

	// Client finish: our report, bound to the same transcript.
	fin := helloMsg{}
	if self != nil {
		rep, err := self.GenerateReport(binding)
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrHandshake, err)
		}
		rj, err := rep.Marshal()
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrHandshake, err)
		}
		fin.Report = rj
	}
	fb, err := json.Marshal(fin)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrHandshake, err)
	}
	if err := writeFrame(c, fb); err != nil {
		return nil, fmt.Errorf("%w: send finish: %v", ErrHandshake, err)
	}

	shared, err := priv.ECDH(sPub)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrHandshake, err)
	}
	salt := append(append([]byte(nil), cNonce...), sh.Nonce...)
	c2s, err := deriveAEAD(shared, salt, "mvtee-ratls/c2s")
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrHandshake, err)
	}
	s2c, err := deriveAEAD(shared, salt, "mvtee-ratls/s2c")
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrHandshake, err)
	}
	return newSecureConn(c, c2s, s2c, "c2s", "s2c", peer), nil
}

// Server performs the responder side of the attested handshake. self may be
// nil (plaintext-authenticated server); verify may be nil to accept any
// client.
func Server(c net.Conn, self attest.Attester, verify VerifyPeer) (*SecureConn, error) {
	hb, err := readFrame(c)
	if err != nil {
		return nil, fmt.Errorf("%w: read hello: %v", ErrHandshake, err)
	}
	var ch helloMsg
	if err := json.Unmarshal(hb, &ch); err != nil {
		return nil, fmt.Errorf("%w: parse hello: %v", ErrHandshake, err)
	}
	cPub, err := ecdh.X25519().NewPublicKey(ch.Pub)
	if err != nil {
		return nil, fmt.Errorf("%w: client key: %v", ErrHandshake, err)
	}
	priv, err := newKeyPair()
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrHandshake, err)
	}
	sNonce, err := attest.NewNonce()
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrHandshake, err)
	}
	myPub := priv.PublicKey().Bytes()
	binding := channelBinding(ch.Pub, myPub, ch.Nonce, sNonce)

	sh := helloMsg{Pub: myPub, Nonce: sNonce}
	if self != nil {
		rep, err := self.GenerateReport(binding)
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrHandshake, err)
		}
		rj, err := rep.Marshal()
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrHandshake, err)
		}
		sh.Report = rj
	}
	sb, err := json.Marshal(sh)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrHandshake, err)
	}
	if err := writeFrame(c, sb); err != nil {
		return nil, fmt.Errorf("%w: send server hello: %v", ErrHandshake, err)
	}

	fb, err := readFrame(c)
	if err != nil {
		return nil, fmt.Errorf("%w: read finish: %v", ErrHandshake, err)
	}
	var fin helloMsg
	if err := json.Unmarshal(fb, &fin); err != nil {
		return nil, fmt.Errorf("%w: parse finish: %v", ErrHandshake, err)
	}
	var peer *enclave.Report
	if len(fin.Report) > 0 {
		peer, err = enclave.UnmarshalReport(fin.Report)
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrHandshake, err)
		}
		if peer.ReportData != binding {
			return nil, fmt.Errorf("%w: client report not bound to channel", ErrHandshake)
		}
	}
	if verify != nil {
		if err := verify(peer); err != nil {
			return nil, fmt.Errorf("%w: peer verification: %v", ErrHandshake, err)
		}
	}

	shared, err := priv.ECDH(cPub)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrHandshake, err)
	}
	salt := append(append([]byte(nil), ch.Nonce...), sNonce...)
	c2s, err := deriveAEAD(shared, salt, "mvtee-ratls/c2s")
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrHandshake, err)
	}
	s2c, err := deriveAEAD(shared, salt, "mvtee-ratls/s2c")
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrHandshake, err)
	}
	return newSecureConn(c, s2c, c2s, "s2c", "c2s", peer), nil
}
