package wire

import (
	"bytes"
	"math"
	"math/rand/v2"
	"net"
	"testing"

	"repro/internal/securechan"
	"repro/internal/tensor"
)

func checkpointBatch(tb testing.TB, seed uint64) *Batch {
	tb.Helper()
	rng := rand.New(rand.NewPCG(seed, 99))
	ts := make(map[string]*tensor.Tensor)
	for _, name := range []string{"boundary", "skip", "aux"} {
		x := tensor.New(1, 16, 14, 14)
		d := x.Data()
		for i := range d {
			d[i] = float32(rng.NormFloat64())
		}
		ts[name] = x
	}
	return &Batch{ID: seed, Tensors: ts}
}

// securePipe returns both ends of an attestation-less secure channel.
func securePipe(tb testing.TB) (*securechan.SecureConn, *securechan.SecureConn) {
	tb.Helper()
	a, b := net.Pipe()
	type res struct {
		c   *securechan.SecureConn
		err error
	}
	ch := make(chan res, 1)
	go func() {
		c, err := securechan.Server(b, nil, nil)
		ch <- res{c, err}
	}()
	cli, err := securechan.Client(a, nil, nil)
	if err != nil {
		tb.Fatalf("client handshake: %v", err)
	}
	r := <-ch
	if r.err != nil {
		tb.Fatalf("server handshake: %v", r.err)
	}
	tb.Cleanup(func() { cli.Close() })
	return cli, r.c
}

// tensorsBitwiseEqual compares tensor maps element-for-element on the raw
// float32 bit patterns (NaN-safe).
func tensorsBitwiseEqual(a, b map[string]*tensor.Tensor) bool {
	if len(a) != len(b) {
		return false
	}
	for name, x := range a {
		y, ok := b[name]
		if !ok || !x.SameShape(y) {
			return false
		}
		xd, yd := x.Data(), y.Data()
		for i := range xd {
			if math.Float32bits(xd[i]) != math.Float32bits(yd[i]) {
				return false
			}
		}
	}
	return true
}

// TestCodecEquivalence pins the pooled encoder to the legacy codec: a message
// marshalled through MarshalBuf must decode to tensors bitwise-identical to
// those produced by the legacy Marshal path, in both cross directions.
func TestCodecEquivalence(t *testing.T) {
	batch := checkpointBatch(t, 1)
	// Include pathological float values: the codec must be bit-transparent.
	batch.Tensors["aux"].Data()[0] = float32(math.NaN())
	batch.Tensors["aux"].Data()[1] = float32(math.Inf(-1))
	batch.Tensors["aux"].Data()[2] = -0.0

	legacy, err := Marshal(batch)
	if err != nil {
		t.Fatal(err)
	}
	pooled, err := MarshalBuf(batch)
	if err != nil {
		t.Fatal(err)
	}
	defer pooled.Free()

	// Pooled encoding decoded by the (unchanged) decoder.
	fromPooled, err := Unmarshal(pooled.Payload())
	if err != nil {
		t.Fatal(err)
	}
	// Legacy encoding decoded likewise.
	fromLegacy, err := Unmarshal(legacy)
	if err != nil {
		t.Fatal(err)
	}
	pb, lb := fromPooled.(*Batch), fromLegacy.(*Batch)
	if pb.ID != batch.ID || lb.ID != batch.ID {
		t.Fatalf("IDs: pooled=%d legacy=%d", pb.ID, lb.ID)
	}
	if !tensorsBitwiseEqual(pb.Tensors, batch.Tensors) {
		t.Fatal("pooled path tensors differ from source")
	}
	if !tensorsBitwiseEqual(pb.Tensors, lb.Tensors) {
		t.Fatal("pooled and legacy paths decode differently")
	}

	// Same check for Result, which additionally carries strings.
	res := &Result{ID: 5, VariantID: "variant-α", Err: "kernel α failed", Tensors: batch.Tensors}
	legacy, err = Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	pooledR, err := MarshalBuf(res)
	if err != nil {
		t.Fatal(err)
	}
	defer pooledR.Free()
	d1, err := Unmarshal(pooledR.Payload())
	if err != nil {
		t.Fatal(err)
	}
	d2, err := Unmarshal(legacy)
	if err != nil {
		t.Fatal(err)
	}
	r1, r2 := d1.(*Result), d2.(*Result)
	if r1.VariantID != res.VariantID || r1.Err != res.Err ||
		r2.VariantID != res.VariantID || r2.Err != res.Err {
		t.Fatal("result metadata drifted")
	}
	if !tensorsBitwiseEqual(r1.Tensors, r2.Tensors) {
		t.Fatal("result tensors differ between codecs")
	}
}

// TestMarshalBufDeterministic pins the sorted-name property the fan-out path
// and the fuzz oracle rely on: repeated pooled marshals of one message are
// byte-identical.
func TestMarshalBufDeterministic(t *testing.T) {
	batch := checkpointBatch(t, 3)
	a, err := MarshalBuf(batch)
	if err != nil {
		t.Fatal(err)
	}
	first := append([]byte(nil), a.Payload()...)
	a.Free()
	for i := 0; i < 8; i++ {
		b, err := MarshalBuf(batch)
		if err != nil {
			t.Fatal(err)
		}
		same := bytes.Equal(b.Payload(), first)
		b.Free()
		if !same {
			t.Fatalf("marshal %d differs from first", i)
		}
	}
}

// TestSendRecvZeroCopySecure runs the full data plane — pooled marshal,
// in-place seal, single write, pooled receive, in-place open, decode — over a
// secure channel and checks tensors arrive bit-exact.
func TestSendRecvZeroCopySecure(t *testing.T) {
	cli, srv := securePipe(t)
	for seed := uint64(1); seed <= 3; seed++ {
		batch := checkpointBatch(t, seed)
		errCh := make(chan error, 1)
		go func() { errCh <- Send(cli, batch) }()
		msg, err := Recv(srv)
		if err != nil {
			t.Fatal(err)
		}
		if err := <-errCh; err != nil {
			t.Fatal(err)
		}
		got := msg.(*Batch)
		if got.ID != batch.ID || !tensorsBitwiseEqual(got.Tensors, batch.Tensors) {
			t.Fatalf("batch %d corrupted through zero-copy data plane", seed)
		}
	}
}

// TestEncodeOnceFanOut models the monitor's dispatch: one MarshalBatch, then
// SendEncoded of the same payload to several secure connections. Every
// variant must decode identical tensors, and the shared payload must be
// untouched afterwards.
func TestEncodeOnceFanOut(t *testing.T) {
	const variants = 3
	batch := checkpointBatch(t, 11)
	buf := MarshalBatch(batch)
	defer buf.Free()
	payload := buf.Payload()
	orig := append([]byte(nil), payload...)

	for v := 0; v < variants; v++ {
		cli, srv := securePipe(t)
		errCh := make(chan error, 1)
		go func() { errCh <- SendEncoded(cli, payload) }()
		msg, err := Recv(srv)
		if err != nil {
			t.Fatalf("variant %d: %v", v, err)
		}
		if err := <-errCh; err != nil {
			t.Fatalf("variant %d: %v", v, err)
		}
		got := msg.(*Batch)
		if got.ID != batch.ID || !tensorsBitwiseEqual(got.Tensors, batch.Tensors) {
			t.Fatalf("variant %d decoded different tensors", v)
		}
	}
	if !bytes.Equal(payload, orig) {
		t.Fatal("fan-out mutated the shared encoded payload")
	}
}

// TestWarmDataPlaneAllocs pins the zero-copy steady state: after warm-up, a
// full send+receive of a checkpoint-sized tensor batch may allocate only the
// decoded tensors themselves (data + shape + map + Tensor headers per tensor,
// plus the message struct) — no marshal buffers, no frame copies, no AEAD
// output buffers.
func TestWarmDataPlaneAllocs(t *testing.T) {
	cli, srv := securePipe(t)
	batch := checkpointBatch(t, 2)
	roundtrip := func() {
		errCh := make(chan error, 1)
		go func() { errCh <- Send(cli, batch) }()
		msg, err := Recv(srv)
		if err != nil {
			t.Fatal(err)
		}
		if err := <-errCh; err != nil {
			t.Fatal(err)
		}
		if msg.(*Batch).ID != batch.ID {
			t.Fatal("wrong batch")
		}
	}
	for i := 0; i < 8; i++ {
		roundtrip() // warm the buffer pools and connection scratch
	}
	avg := testing.AllocsPerRun(50, roundtrip)
	// Decode allocates per tensor: float32 data + shape + Tensor + map entry
	// assignment, plus the map, Batch, name strings and goroutine/channel
	// plumbing of the ping-pong itself. The tensor-data budget is ≤2 per
	// message (issue acceptance); everything else is fixed small overhead.
	// Measured ~26 on a warm path; 40 leaves headroom without letting a
	// reintroduced per-message frame copy (+3 per tensor ≥ +9) slip through.
	const budget = 40
	if avg > budget {
		t.Fatalf("warm data-plane roundtrip allocates %.1f/op, budget %d", avg, budget)
	}
}

// TestWarmSendAllocs isolates the transmit half: marshal + seal + write of a
// warm batch must not allocate at all (the ≤2 tensor-data allocation
// criterion is consumed entirely by the receive side's decode).
func TestWarmSendAllocs(t *testing.T) {
	cli, srv := securePipe(t)
	batch := checkpointBatch(t, 4)
	done := make(chan struct{})
	go func() {
		defer close(done)
		for {
			if _, err := srv.RecvBuf(); err != nil {
				return
			}
		}
	}()
	for i := 0; i < 8; i++ {
		if err := Send(cli, batch); err != nil {
			t.Fatal(err)
		}
	}
	avg := testing.AllocsPerRun(50, func() {
		if err := Send(cli, batch); err != nil {
			t.Fatal(err)
		}
	})
	cli.Close()
	<-done
	// Marshal into a pooled warm buffer + in-place seal + single write: the
	// only steady-state allocation is the sorted-names slice (1) — pin a
	// small budget that a marshal-copy or seal-copy regression would blow.
	const budget = 4
	if avg > budget {
		t.Fatalf("warm send allocates %.1f/op, budget %d", avg, budget)
	}
}
