package wire

import (
	"bytes"
	"reflect"
	"testing"

	"repro/internal/tensor"
)

// FuzzWireUnmarshal drives the tagged-message decoder with arbitrary bytes:
// it must never panic, and everything it does accept must survive a
// re-marshal/re-unmarshal roundtrip (decode-encode-decode stability).
func FuzzWireUnmarshal(f *testing.F) {
	seedMsgs := []Msg{
		&Batch{ID: 7, Tensors: map[string]*tensor.Tensor{
			"a": tensor.MustFromSlice([]float32{1, 2, 3, 4}, 2, 2),
			"b": tensor.MustFromSlice([]float32{-1.5}, 1),
		}},
		&Result{ID: 9, VariantID: "v1", Err: "boom", Tensors: map[string]*tensor.Tensor{
			"y": tensor.MustFromSlice([]float32{0}, 1),
		}},
		&Ack{Detail: "ok"},
		&Bound{VariantID: "v1", Resume: 3},
		&Shutdown{},
	}
	for _, m := range seedMsgs {
		b, err := Marshal(m)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(b)
	}
	f.Add([]byte{byte(TBatch), 0, 0, 0})
	f.Add([]byte{byte(TResult)})
	f.Add([]byte(nil))

	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := Unmarshal(data)
		if err != nil {
			return
		}
		b2, err := Marshal(m)
		if err != nil {
			t.Fatalf("accepted message fails to re-marshal: %v", err)
		}
		m2, err := Unmarshal(b2)
		if err != nil {
			t.Fatalf("re-marshalled message fails to decode: %v", err)
		}
		// Tensor messages must be bit-stable across the roundtrip (compare
		// the deterministic pooled encoding, which is NaN-safe); control
		// messages may normalize JSON, so compare only the concrete type.
		switch m.(type) {
		case *Batch, *Result:
			e1, err1 := MarshalBuf(m)
			e2, err2 := MarshalBuf(m2)
			if err1 != nil || err2 != nil {
				t.Fatalf("pooled marshal: %v / %v", err1, err2)
			}
			stable := bytes.Equal(e1.Payload(), e2.Payload())
			e1.Free()
			e2.Free()
			if !stable {
				t.Fatalf("%T not bit-stable across roundtrip", m)
			}
		default:
			if reflect.TypeOf(m) != reflect.TypeOf(m2) {
				t.Fatalf("type drift: %T -> %T", m, m2)
			}
		}
	})
}
