package wire

import (
	"bytes"
	"math"
	"reflect"
	"testing"

	"repro/internal/tensor"
)

// FuzzWireUnmarshal drives the tagged-message decoder with arbitrary bytes:
// it must never panic, and everything it does accept must survive a
// re-marshal/re-unmarshal roundtrip (decode-encode-decode stability).
// FuzzPublicRequest drives the public binary request decoder — the one
// parser on the serving surface that pre-auth internet bytes reach — with
// arbitrary input: it must never panic, and every body it accepts must
// re-encode deterministically and decode back bit-identically.
func FuzzPublicRequest(f *testing.F) {
	seed := func(inputs map[string]*tensor.Tensor) {
		var b bytes.Buffer
		if err := EncodeRequest(&b, inputs); err != nil {
			f.Fatal(err)
		}
		f.Add(b.Bytes())
	}
	seed(map[string]*tensor.Tensor{
		"image": tensor.MustFromSlice([]float32{1, 2, 3, 4, 5, 6}, 2, 3),
		"mask":  tensor.MustFromSlice([]float32{-0, float32(math.NaN())}, 1, 2),
	})
	seed(map[string]*tensor.Tensor{"x": tensor.MustFromSlice([]float32{0}, 1)})
	f.Add([]byte("MVT\x01"))
	f.Add([]byte{'M', 'V', 'T', 1, 1, 0, FrameTensor, 0xff, 0xff, 0xff, 0xff})
	f.Add([]byte(nil))

	f.Fuzz(func(t *testing.T, data []byte) {
		inputs, err := DecodeRequest(bytes.NewReader(data), nil)
		if err != nil {
			return
		}
		var b1, b2 bytes.Buffer
		if err := EncodeRequest(&b1, inputs); err != nil {
			t.Fatalf("accepted request fails to re-encode: %v", err)
		}
		in2, err := DecodeRequest(bytes.NewReader(b1.Bytes()), nil)
		if err != nil {
			t.Fatalf("re-encoded request fails to decode: %v", err)
		}
		if err := EncodeRequest(&b2, in2); err != nil {
			t.Fatalf("second re-encode: %v", err)
		}
		if !bytes.Equal(b1.Bytes(), b2.Bytes()) {
			t.Fatal("request not bit-stable across roundtrip")
		}
	})
}

func FuzzWireUnmarshal(f *testing.F) {
	seedMsgs := []Msg{
		&Batch{ID: 7, Tensors: map[string]*tensor.Tensor{
			"a": tensor.MustFromSlice([]float32{1, 2, 3, 4}, 2, 2),
			"b": tensor.MustFromSlice([]float32{-1.5}, 1),
		}},
		&Result{ID: 9, VariantID: "v1", Err: "boom", Tensors: map[string]*tensor.Tensor{
			"y": tensor.MustFromSlice([]float32{0}, 1),
		}},
		&Ack{Detail: "ok"},
		&Bound{VariantID: "v1", Resume: 3},
		&Shutdown{},
	}
	for _, m := range seedMsgs {
		b, err := Marshal(m)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(b)
	}
	f.Add([]byte{byte(TBatch), 0, 0, 0})
	f.Add([]byte{byte(TResult)})
	f.Add([]byte(nil))

	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := Unmarshal(data)
		if err != nil {
			return
		}
		b2, err := Marshal(m)
		if err != nil {
			t.Fatalf("accepted message fails to re-marshal: %v", err)
		}
		m2, err := Unmarshal(b2)
		if err != nil {
			t.Fatalf("re-marshalled message fails to decode: %v", err)
		}
		// Tensor messages must be bit-stable across the roundtrip (compare
		// the deterministic pooled encoding, which is NaN-safe); control
		// messages may normalize JSON, so compare only the concrete type.
		switch m.(type) {
		case *Batch, *Result:
			e1, err1 := MarshalBuf(m)
			e2, err2 := MarshalBuf(m2)
			if err1 != nil || err2 != nil {
				t.Fatalf("pooled marshal: %v / %v", err1, err2)
			}
			stable := bytes.Equal(e1.Payload(), e2.Payload())
			e1.Free()
			e2.Free()
			if !stable {
				t.Fatalf("%T not bit-stable across roundtrip", m)
			}
		default:
			if reflect.TypeOf(m) != reflect.TypeOf(m2) {
				t.Fatalf("type drift: %T -> %T", m, m2)
			}
		}
	})
}
