package wire

import (
	"bytes"
	"testing"

	"repro/internal/tensor"
)

func TestDigestRoundtrip(t *testing.T) {
	d := &Digest{ID: 42, Stage: -1, Vote: true, Agree: true}
	for i := range d.Sum {
		d.Sum[i] = byte(i * 7)
	}
	b, err := Marshal(d)
	if err != nil {
		t.Fatal(err)
	}
	if len(b) != digestMsgLen {
		t.Fatalf("encoded length %d, want %d", len(b), digestMsgLen)
	}
	m, err := Unmarshal(b)
	if err != nil {
		t.Fatal(err)
	}
	got, ok := m.(*Digest)
	if !ok {
		t.Fatalf("decoded %T", m)
	}
	if *got != *d {
		t.Fatalf("roundtrip mismatch: %+v != %+v", got, d)
	}

	// Pooled encode-once path must be byte-identical to Marshal.
	buf := MarshalDigest(d)
	if !bytes.Equal(buf.Payload(), b) {
		t.Fatal("MarshalDigest differs from Marshal")
	}
	buf.Free()

	// Announce flavor (Vote=false) keeps Agree clear.
	an := &Digest{ID: 7, Stage: 2, Sum: d.Sum}
	b2, _ := Marshal(an)
	m2, err := Unmarshal(b2)
	if err != nil {
		t.Fatal(err)
	}
	if g := m2.(*Digest); g.Vote || g.Agree || g.Stage != 2 {
		t.Fatalf("announce decoded %+v", g)
	}

	// Truncated and oversized digest frames are rejected.
	if _, err := Unmarshal(b[:digestMsgLen-3]); err == nil {
		t.Fatal("truncated digest frame accepted")
	}
	if _, err := Unmarshal(append(append([]byte(nil), b...), 0)); err == nil {
		t.Fatal("oversized digest frame accepted")
	}
}

func TestVerifyRetagSharesLayout(t *testing.T) {
	x := tensor.New(2, 2)
	for i := range x.Data() {
		x.Data()[i] = float32(i)
	}
	batch := &Batch{ID: 9, Trace: 33, Tensors: map[string]*tensor.Tensor{"x": x}}
	buf := MarshalBatch(batch)
	defer buf.Free()

	RetagVerify(buf.Payload())
	m, err := Unmarshal(buf.Payload())
	if err != nil {
		t.Fatal(err)
	}
	v, ok := m.(*Verify)
	if !ok {
		t.Fatalf("retagged payload decoded as %T", m)
	}
	if v.ID != 9 || v.Trace != 33 || v.Tensors["x"].At(1, 1) != 3 {
		t.Fatalf("verify fields lost: %+v", v)
	}

	RetagBatch(buf.Payload())
	m, err = Unmarshal(buf.Payload())
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := m.(*Batch); !ok {
		t.Fatalf("restored payload decoded as %T", m)
	}
}

func TestReplicaControlRoundtrip(t *testing.T) {
	hello := &ReplicaHello{
		ID: "replica-0", Stages: 2, Variants: 3,
		GraphInputs: []string{"x"}, GraphOutputs: []string{"y"},
		ItemShapes: map[string][]int{"x": {1, 64}},
	}
	b, err := Marshal(hello)
	if err != nil {
		t.Fatal(err)
	}
	m, err := Unmarshal(b)
	if err != nil {
		t.Fatal(err)
	}
	h := m.(*ReplicaHello)
	if h.ID != "replica-0" || h.Variants != 3 || len(h.ItemShapes["x"]) != 2 {
		t.Fatalf("hello roundtrip: %+v", h)
	}

	st := &ReplicaStatus{Ladder: []int{3, 2}, Spares: 1}
	b, _ = Marshal(st)
	m, err = Unmarshal(b)
	if err != nil {
		t.Fatal(err)
	}
	if got := m.(*ReplicaStatus); got.Ladder[1] != 2 || got.Spares != 1 {
		t.Fatalf("status roundtrip: %+v", got)
	}

	tune := &ReplicaTune{InflightWindow: 8}
	b, _ = Marshal(tune)
	m, err = Unmarshal(b)
	if err != nil {
		t.Fatal(err)
	}
	if got := m.(*ReplicaTune); got.InflightWindow != 8 {
		t.Fatalf("tune roundtrip: %+v", got)
	}
}
