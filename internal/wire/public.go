// Public binary tensor protocol: the length-prefixed streaming frame format
// the serving front door speaks with clients under the
// `application/x-mvtee-tensor` content type. It reuses the internal
// checkpoint codec's primitives (little-endian, u32 rank + dims, raw float32
// payload) but adds what a public surface needs and the monitor↔variant
// plane does not: a magic/version header so the format can evolve, a
// per-frame length prefix so bodies stream incrementally, a validate hook so
// hostile shapes die before their payload is read, and an explicit end frame
// so a truncated response is distinguishable from a complete one.
//
// Request body (POST /v1/infer, Content-Type: application/x-mvtee-tensor):
//
//	magic   "MVT" (3 bytes) + version (1 byte, currently 1)
//	count   u16 — number of tensor frames that follow
//	count × tensor frame
//	end frame
//
// Every frame is kind (1 byte) + body length (u32 LE) + body:
//
//	FrameTensor  body = u16 name len + name + u32 rank + rank×u32 dims
//	             + 4·volume bytes of raw little-endian float32 payload
//	FrameMeta    body = u64 request ID + u64 batch ID + u32 batch fill
//	             + u64 latency ns + u16 output tensor count
//	FrameError   body = u32 HTTP status + u64 retry-after ns
//	             + u16 message len + message
//	FrameEnd     body empty — the stream completed intact
//
// Response body: header, one FrameMeta, then the announced tensor frames
// (each flushed as written, so outputs stream back the moment the
// micro-batch clears the monitor quorum), then FrameEnd. Errors carry the
// HTTP status plus one FrameError body. Tensor names are sorted in both
// directions, so equal messages encode byte-identically.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"slices"
	"time"

	"repro/internal/securechan"
	"repro/internal/tensor"
)

// ContentTypeBinary is the public binary tensor media type.
const ContentTypeBinary = "application/x-mvtee-tensor"

// PubVersion is the current public protocol version, carried in the header
// and advertised by /healthz.
const PubVersion = 1

// Public frame kinds.
const (
	FrameTensor byte = 1
	FrameMeta   byte = 2
	FrameError  byte = 3
	FrameEnd    byte = 4
)

// Public-surface limits: unlike the monitor↔variant plane, the client API
// is reachable before any attestation, so every bound is enforced during
// decode, before payload bytes are read.
const (
	// MaxPublicTensors caps the tensor count of one request or response.
	MaxPublicTensors = 64
	// MaxPublicNameLen caps a tensor name.
	MaxPublicNameLen = 256
	// pubScratch is the pooled staging-chunk size for payload conversion.
	pubScratch = 64 << 10
)

var pubMagic = [3]byte{'M', 'V', 'T'}

// ErrPubDecode reports a malformed public binary body. The serving layer
// maps it to 400.
var ErrPubDecode = errors.New("wire: malformed public tensor body")

const pubHeaderLen = 3 + 1 + 2 // magic + version + tensor count
const frameHdrSize = 1 + 4     // kind + body length

// PubMeta is the response metadata carried by a FrameMeta.
type PubMeta struct {
	ID        uint64
	BatchID   uint64
	BatchFill int
	Latency   time.Duration
	Tensors   int
}

// PubError is a decoded FrameError: the binary path's equivalent of the
// JSON error envelope, preserving the HTTP status and retry-after hint.
type PubError struct {
	Status     int
	RetryAfter time.Duration
	Msg        string
}

func (e *PubError) Error() string {
	if e.RetryAfter > 0 {
		return fmt.Sprintf("wire: server error %d: %s (retry after %v)", e.Status, e.Msg, e.RetryAfter)
	}
	return fmt.Sprintf("wire: server error %d: %s", e.Status, e.Msg)
}

// CheckPublicShape validates a tensor shape arriving over the public
// surface and returns its volume: rank within [1, tensor.MaxWireDims],
// every dimension ≥ 1 (the leading dimension is the item count; zero-volume
// tensors have no meaning in a batch), and an overflow-checked volume. Both
// the JSON and the binary door use it, so the two paths reject exactly the
// same shapes.
func CheckPublicShape(shape []int) (int, error) {
	if len(shape) == 0 || len(shape) > tensor.MaxWireDims {
		return 0, fmt.Errorf("%w: rank %d outside [1, %d]", tensor.ErrShape, len(shape), tensor.MaxWireDims)
	}
	for _, d := range shape {
		if d < 1 {
			return 0, fmt.Errorf("%w: dimension %d < 1 in %v", tensor.ErrShape, d, shape)
		}
	}
	return tensor.CheckedVolume(shape)
}

// --- request encode -----------------------------------------------------------

// tensorFrameSize is a tensor frame's full size including the frame header.
func tensorFrameSize(name string, shape []int, vol int) int {
	return frameHdrSize + 2 + len(name) + 4 + 4*len(shape) + 4*vol
}

// RequestEncodedSize returns the exact body size EncodeRequest will produce
// for inputs, for Content-Length preflight.
func RequestEncodedSize(inputs map[string]*tensor.Tensor) int64 {
	size := int64(pubHeaderLen + frameHdrSize) // header + end frame
	for name, t := range inputs {
		size += int64(tensorFrameSize(name, t.Shape(), t.Size()))
	}
	return size
}

// MaxRequestSize bounds the body of a binary request against the declared
// input interface: per input, a maximal frame of maxItems items; without
// declared shapes, a flat 64 MiB. Binary payloads are 4 bytes per float32
// plus tight framing, so the bound tracks real bodies closely — unlike the
// JSON cap, which must assume ~24 text bytes per float.
func MaxRequestSize(itemShapes map[string][]int, maxItems int) int64 {
	const fallback = 64 << 20
	if len(itemShapes) == 0 {
		return fallback
	}
	size := int64(pubHeaderLen + frameHdrSize)
	for name, shape := range itemShapes {
		per := 1
		for _, d := range shape[1:] {
			per *= d
		}
		size += int64(tensorFrameSize(name, shape, per*maxItems))
	}
	return size
}

func writeFrameHdr(dst []byte, kind byte, bodyLen int) {
	dst[0] = kind
	binary.LittleEndian.PutUint32(dst[1:], uint32(bodyLen))
}

// encodeTensorFrame encodes one complete tensor frame into a pooled buffer.
func encodeTensorFrame(name string, t *tensor.Tensor, shape []int) *securechan.Buf {
	vol := t.Size()
	size := tensorFrameSize(name, shape, vol)
	buf := securechan.GetBuf(size)
	dst := buf.Grow(size)
	writeFrameHdr(dst, FrameTensor, size-frameHdrSize)
	off := frameHdrSize
	off += putStrAt(dst[off:], name)
	binary.LittleEndian.PutUint32(dst[off:], uint32(len(shape)))
	off += 4
	for _, d := range shape {
		binary.LittleEndian.PutUint32(dst[off:], uint32(d))
		off += 4
	}
	tensor.EncodeFloats(dst[off:], t.Data())
	return buf
}

// WriteTensorFrame streams one named tensor as a public frame: the frame is
// staged in a pooled buffer (one size-classed pool hit, no allocation warm)
// and written in a single Write call.
func WriteTensorFrame(w io.Writer, name string, t *tensor.Tensor) error {
	if len(name) > MaxPublicNameLen {
		return fmt.Errorf("%w: tensor name %d bytes exceeds %d", ErrPubDecode, len(name), MaxPublicNameLen)
	}
	buf := encodeTensorFrame(name, t, t.Shape())
	_, err := w.Write(buf.Payload())
	buf.Free()
	return err
}

// EncodeRequest writes a complete v1 binary request body for inputs to w:
// header, one tensor frame per input in sorted name order, end frame.
func EncodeRequest(w io.Writer, inputs map[string]*tensor.Tensor) error {
	if len(inputs) == 0 || len(inputs) > MaxPublicTensors {
		return fmt.Errorf("%w: %d tensors outside [1, %d]", ErrPubDecode, len(inputs), MaxPublicTensors)
	}
	var hdr [pubHeaderLen]byte
	copy(hdr[:], pubMagic[:])
	hdr[3] = PubVersion
	binary.LittleEndian.PutUint16(hdr[4:], uint16(len(inputs)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	names := make([]string, 0, len(inputs))
	for name := range inputs {
		names = append(names, name)
	}
	slices.Sort(names)
	for _, name := range names {
		if err := WriteTensorFrame(w, name, inputs[name]); err != nil {
			return err
		}
	}
	return WriteEndFrame(w)
}

// --- request decode -----------------------------------------------------------

// readFrameHdr reads one frame header from r using scratch.
func readFrameHdr(r io.Reader, scratch []byte) (kind byte, bodyLen int, err error) {
	if _, err := io.ReadFull(r, scratch[:frameHdrSize]); err != nil {
		return 0, 0, fmt.Errorf("%w: frame header: %w", ErrPubDecode, err)
	}
	return scratch[0], int(binary.LittleEndian.Uint32(scratch[1:])), nil
}

// decodeTensorHeader reads and validates one tensor frame's preamble (name,
// rank, dims) from r, returning the name, shape and volume without touching
// the payload. bodyLen cross-checks the frame's declared length.
func decodeTensorHeader(r io.Reader, scratch []byte, bodyLen int) (string, []int, int, error) {
	if _, err := io.ReadFull(r, scratch[:2]); err != nil {
		return "", nil, 0, fmt.Errorf("%w: tensor name: %w", ErrPubDecode, err)
	}
	nameLen := int(binary.LittleEndian.Uint16(scratch))
	if nameLen == 0 || nameLen > MaxPublicNameLen {
		return "", nil, 0, fmt.Errorf("%w: tensor name length %d outside [1, %d]", ErrPubDecode, nameLen, MaxPublicNameLen)
	}
	if _, err := io.ReadFull(r, scratch[:nameLen+4]); err != nil {
		return "", nil, 0, fmt.Errorf("%w: tensor header: %w", ErrPubDecode, err)
	}
	name := string(scratch[:nameLen])
	rank := int(binary.LittleEndian.Uint32(scratch[nameLen:]))
	if rank < 1 || rank > tensor.MaxWireDims {
		return "", nil, 0, fmt.Errorf("%w: tensor %q rank %d outside [1, %d]", ErrPubDecode, name, rank, tensor.MaxWireDims)
	}
	if _, err := io.ReadFull(r, scratch[:4*rank]); err != nil {
		return "", nil, 0, fmt.Errorf("%w: tensor dims: %w", ErrPubDecode, err)
	}
	shape := make([]int, rank)
	for i := range shape {
		shape[i] = int(binary.LittleEndian.Uint32(scratch[4*i:]))
	}
	vol, err := CheckPublicShape(shape)
	if err != nil {
		return "", nil, 0, fmt.Errorf("%w: tensor %q: %v", ErrPubDecode, name, err)
	}
	if want := 2 + nameLen + 4 + 4*rank + 4*vol; bodyLen != want {
		return "", nil, 0, fmt.Errorf("%w: tensor %q frame length %d != %d for shape %v",
			ErrPubDecode, name, bodyLen, want, shape)
	}
	return name, shape, vol, nil
}

// DecodeRequest incrementally decodes a v1 binary request body from r. For
// each tensor frame the name and shape are decoded and — when validate is
// non-nil — vetted before a single payload byte is read, so a frame that
// fails admission (wrong shape, oversize item count) is rejected at header
// cost. Payloads stream through one pooled scratch buffer into each
// tensor's backing array: the backing array is the only per-tensor
// allocation regardless of body size.
//
// A validate error is returned unwrapped so the caller can keep its own
// error taxonomy (e.g. serve.ErrBadRequest); framing violations wrap
// ErrPubDecode.
func DecodeRequest(r io.Reader, validate func(name string, shape []int) error) (map[string]*tensor.Tensor, error) {
	scratch := securechan.GetBuf(pubScratch)
	defer scratch.Free()
	sb := scratch.Grow(pubScratch)

	if _, err := io.ReadFull(r, sb[:pubHeaderLen]); err != nil {
		return nil, fmt.Errorf("%w: header: %w", ErrPubDecode, err)
	}
	if [3]byte(sb[:3]) != pubMagic {
		return nil, fmt.Errorf("%w: bad magic", ErrPubDecode)
	}
	if sb[3] != PubVersion {
		return nil, fmt.Errorf("%w: unsupported version %d (have %d)", ErrPubDecode, sb[3], PubVersion)
	}
	count := int(binary.LittleEndian.Uint16(sb[4:]))
	if count == 0 || count > MaxPublicTensors {
		return nil, fmt.Errorf("%w: %d tensors outside [1, %d]", ErrPubDecode, count, MaxPublicTensors)
	}

	inputs := make(map[string]*tensor.Tensor, count)
	for i := 0; i < count; i++ {
		kind, bodyLen, err := readFrameHdr(r, sb)
		if err != nil {
			return nil, err
		}
		if kind != FrameTensor {
			return nil, fmt.Errorf("%w: frame %d kind %d, want tensor", ErrPubDecode, i, kind)
		}
		name, shape, vol, err := decodeTensorHeader(r, sb, bodyLen)
		if err != nil {
			return nil, err
		}
		if _, dup := inputs[name]; dup {
			return nil, fmt.Errorf("%w: duplicate tensor %q", ErrPubDecode, name)
		}
		if validate != nil {
			if err := validate(name, shape); err != nil {
				return nil, err
			}
		}
		t := tensor.New(shape...)
		if err := tensor.ReadPayloadInto(r, t.Data(), sb); err != nil {
			// Double-wrap: keep ErrPubDecode for the 400 mapping, but leave the
			// reader's own error reachable — an http.MaxBytesError here must
			// surface as 413, not 400.
			return nil, fmt.Errorf("%w: tensor %q payload (%d floats): %w", ErrPubDecode, name, vol, err)
		}
		inputs[name] = t
	}
	kind, bodyLen, err := readFrameHdr(r, sb)
	if err != nil {
		return nil, err
	}
	if kind != FrameEnd || bodyLen != 0 {
		return nil, fmt.Errorf("%w: trailing frame kind %d len %d, want end", ErrPubDecode, kind, bodyLen)
	}
	return inputs, nil
}

// --- response stream ----------------------------------------------------------

// WriteResponseHeader writes the protocol header plus the FrameMeta
// announcing m.Tensors output frames.
func WriteResponseHeader(w io.Writer, m PubMeta) error {
	const metaBody = 8 + 8 + 4 + 8 + 2
	var buf [pubHeaderLen + frameHdrSize + metaBody]byte
	copy(buf[:], pubMagic[:])
	buf[3] = PubVersion
	binary.LittleEndian.PutUint16(buf[4:], uint16(m.Tensors))
	writeFrameHdr(buf[pubHeaderLen:], FrameMeta, metaBody)
	off := pubHeaderLen + frameHdrSize
	binary.LittleEndian.PutUint64(buf[off:], m.ID)
	binary.LittleEndian.PutUint64(buf[off+8:], m.BatchID)
	binary.LittleEndian.PutUint32(buf[off+16:], uint32(m.BatchFill))
	binary.LittleEndian.PutUint64(buf[off+20:], uint64(m.Latency))
	binary.LittleEndian.PutUint16(buf[off+28:], uint16(m.Tensors))
	_, err := w.Write(buf[:])
	return err
}

// WriteEndFrame terminates a well-formed stream.
func WriteEndFrame(w io.Writer) error {
	var buf [frameHdrSize]byte
	writeFrameHdr(buf[:], FrameEnd, 0)
	_, err := w.Write(buf[:])
	return err
}

// WriteErrorFrame writes the protocol header plus one FrameError. It is a
// complete (unterminated — errors are terminal) binary body for a failed
// request.
func WriteErrorFrame(w io.Writer, status int, retryAfter time.Duration, msg string) error {
	if len(msg) > 1<<15 {
		msg = msg[:1<<15]
	}
	size := pubHeaderLen + frameHdrSize + 4 + 8 + 2 + len(msg)
	buf := securechan.GetBuf(size)
	dst := buf.Grow(size)
	copy(dst, pubMagic[:])
	dst[3] = PubVersion
	binary.LittleEndian.PutUint16(dst[4:], 0)
	writeFrameHdr(dst[pubHeaderLen:], FrameError, 4+8+2+len(msg))
	off := pubHeaderLen + frameHdrSize
	binary.LittleEndian.PutUint32(dst[off:], uint32(status))
	binary.LittleEndian.PutUint64(dst[off+4:], uint64(retryAfter))
	putStrAt(dst[off+12:], msg)
	_, err := w.Write(buf.Payload())
	buf.Free()
	return err
}

// DecodeResponse decodes a complete binary response stream from r: meta
// plus the announced tensors, verified to terminate with an end frame. A
// FrameError decodes into a *PubError return.
func DecodeResponse(r io.Reader) (PubMeta, map[string]*tensor.Tensor, error) {
	scratch := securechan.GetBuf(pubScratch)
	defer scratch.Free()
	sb := scratch.Grow(pubScratch)

	var meta PubMeta
	if _, err := io.ReadFull(r, sb[:pubHeaderLen]); err != nil {
		return meta, nil, fmt.Errorf("%w: header: %w", ErrPubDecode, err)
	}
	if [3]byte(sb[:3]) != pubMagic || sb[3] != PubVersion {
		return meta, nil, fmt.Errorf("%w: bad magic/version", ErrPubDecode)
	}
	kind, bodyLen, err := readFrameHdr(r, sb)
	if err != nil {
		return meta, nil, err
	}
	switch kind {
	case FrameError:
		if bodyLen < 4+8+2 || bodyLen > 4+8+2+(1<<15) {
			return meta, nil, fmt.Errorf("%w: error frame length %d", ErrPubDecode, bodyLen)
		}
		if _, err := io.ReadFull(r, sb[:bodyLen]); err != nil {
			return meta, nil, fmt.Errorf("%w: error frame: %v", ErrPubDecode, err)
		}
		msgLen := int(binary.LittleEndian.Uint16(sb[12:]))
		if 4+8+2+msgLen != bodyLen {
			return meta, nil, fmt.Errorf("%w: error frame message length %d", ErrPubDecode, msgLen)
		}
		return meta, nil, &PubError{
			Status:     int(binary.LittleEndian.Uint32(sb)),
			RetryAfter: time.Duration(binary.LittleEndian.Uint64(sb[4:])),
			Msg:        string(sb[14 : 14+msgLen]),
		}
	case FrameMeta:
		if bodyLen != 8+8+4+8+2 {
			return meta, nil, fmt.Errorf("%w: meta frame length %d", ErrPubDecode, bodyLen)
		}
		if _, err := io.ReadFull(r, sb[:bodyLen]); err != nil {
			return meta, nil, fmt.Errorf("%w: meta frame: %v", ErrPubDecode, err)
		}
		meta.ID = binary.LittleEndian.Uint64(sb)
		meta.BatchID = binary.LittleEndian.Uint64(sb[8:])
		meta.BatchFill = int(binary.LittleEndian.Uint32(sb[16:]))
		meta.Latency = time.Duration(binary.LittleEndian.Uint64(sb[20:]))
		meta.Tensors = int(binary.LittleEndian.Uint16(sb[28:]))
	default:
		return meta, nil, fmt.Errorf("%w: leading frame kind %d", ErrPubDecode, kind)
	}
	if meta.Tensors > MaxPublicTensors {
		return meta, nil, fmt.Errorf("%w: %d tensors exceeds %d", ErrPubDecode, meta.Tensors, MaxPublicTensors)
	}
	outs := make(map[string]*tensor.Tensor, meta.Tensors)
	for i := 0; i < meta.Tensors; i++ {
		kind, bodyLen, err := readFrameHdr(r, sb)
		if err != nil {
			return meta, nil, err
		}
		if kind != FrameTensor {
			return meta, nil, fmt.Errorf("%w: frame %d kind %d, want tensor", ErrPubDecode, i, kind)
		}
		name, shape, _, err := decodeTensorHeader(r, sb, bodyLen)
		if err != nil {
			return meta, nil, err
		}
		if _, dup := outs[name]; dup {
			return meta, nil, fmt.Errorf("%w: duplicate tensor %q", ErrPubDecode, name)
		}
		t := tensor.New(shape...)
		if err := tensor.ReadPayloadInto(r, t.Data(), sb); err != nil {
			return meta, nil, fmt.Errorf("%w: tensor %q payload: %v", ErrPubDecode, name, err)
		}
		outs[name] = t
	}
	kind, bodyLen, err = readFrameHdr(r, sb)
	if err != nil {
		return meta, nil, err
	}
	if kind != FrameEnd || bodyLen != 0 {
		return meta, nil, fmt.Errorf("%w: response not terminated (kind %d)", ErrPubDecode, kind)
	}
	return meta, outs, nil
}
