package wire

import (
	"encoding/binary"
	"errors"
	"reflect"
	"testing"

	"repro/internal/telemetry"
)

func TestSpanReportRoundtrip(t *testing.T) {
	r := &SpanReport{ID: 42, Replica: "replica-a", Spans: []telemetry.Span{
		{Trace: 7, Batch: 42, Name: "batch", Stage: -1, Start: 100, End: 250},
		{Trace: 7, Batch: 42, Name: "stage", Stage: 3, Variant: "v1", Start: 120, End: 200},
		{}, // all-zero span must survive too
	}}
	b, err := Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	if len(b) != r.EncodedLen() {
		t.Fatalf("encoded %d bytes, EncodedLen says %d", len(b), r.EncodedLen())
	}
	m, err := Unmarshal(b)
	if err != nil {
		t.Fatal(err)
	}
	got, ok := m.(*SpanReport)
	if !ok {
		t.Fatalf("decoded %T", m)
	}
	if !reflect.DeepEqual(got, r) {
		t.Fatalf("roundtrip mismatch:\n got %+v\nwant %+v", got, r)
	}
}

// TestSpanReportReplicaFieldNotEncoded pins the wire contract: a span's
// Replica field is stamped router-side from the report header on merge; the
// codec must never ship it (a replica cannot claim spans for another node,
// and the frame stays compact).
func TestSpanReportReplicaFieldNotEncoded(t *testing.T) {
	r := &SpanReport{ID: 1, Replica: "honest", Spans: []telemetry.Span{
		{Trace: 3, Name: "batch", Stage: -1, Replica: "forged-node", Start: 1, End: 2},
	}}
	b, err := Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	m, err := Unmarshal(b)
	if err != nil {
		t.Fatal(err)
	}
	got := m.(*SpanReport)
	if got.Replica != "honest" {
		t.Fatalf("report replica %q", got.Replica)
	}
	if got.Spans[0].Replica != "" {
		t.Fatalf("span replica %q survived the wire, want empty", got.Spans[0].Replica)
	}
}

func TestSpanReportRejectsMalformed(t *testing.T) {
	valid, err := Marshal(&SpanReport{ID: 1, Replica: "r", Spans: []telemetry.Span{
		{Trace: 1, Name: "n", Stage: -1, Start: 1, End: 2},
	}})
	if err != nil {
		t.Fatal(err)
	}
	clone := func(b []byte) []byte { return append([]byte(nil), b...) }

	// Forged span count pointing past the payload: the decoder must reject
	// before allocating 999 spans.
	forgedCount := clone(valid)
	// Layout: tag(1) id(8) replica-len(2) replica("r",1) count(2).
	binary.LittleEndian.PutUint16(forgedCount[12:], 999)

	cases := map[string][]byte{
		"empty payload":    {byte(TSpanReport)},
		"truncated header": valid[:6],
		"truncated span":   valid[:len(valid)-1],
		"trailing bytes":   append(clone(valid), 0),
		"forged count":     forgedCount,
	}
	for name, b := range cases {
		if _, err := Unmarshal(b); !errors.Is(err, ErrDecode) {
			t.Errorf("%s: err = %v, want ErrDecode", name, err)
		}
	}
}

func TestMetricsPollReportRoundtrip(t *testing.T) {
	p := &MetricsPoll{Seq: 9}
	b, err := Marshal(p)
	if err != nil {
		t.Fatal(err)
	}
	m, err := Unmarshal(b)
	if err != nil {
		t.Fatal(err)
	}
	if got, ok := m.(*MetricsPoll); !ok || got.Seq != 9 {
		t.Fatalf("poll roundtrip %+v", m)
	}

	rep := &MetricsReport{Seq: 9, Series: []telemetry.MetricSnapshot{
		{Name: "c_total", Kind: "counter", Value: 5, Labels: map[string]string{"k": "v"}},
		{Name: "g", Kind: "gauge", Value: -3},
		{Name: "h_ns", Kind: "histogram", Count: 2, Sum: 30,
			Buckets: map[string]uint64{"15": 1, "31": 1}},
	}}
	b, err = Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	m, err = Unmarshal(b)
	if err != nil {
		t.Fatal(err)
	}
	got, ok := m.(*MetricsReport)
	if !ok {
		t.Fatalf("decoded %T", m)
	}
	if !reflect.DeepEqual(got, rep) {
		t.Fatalf("report roundtrip mismatch:\n got %+v\nwant %+v", got, rep)
	}
}
