// Package wire defines the message protocol spoken between the MVTEE monitor
// and variant TEEs over securechan connections: the control-plane messages of
// the variant initialization/update protocol (Figure 6) and the data-plane
// batch/checkpoint messages of pipelined inference (§4.3). Control messages
// are JSON (rare, small); data messages carry tensors in a compact binary
// codec (hot path).
package wire

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"slices"

	"repro/internal/securechan"
	"repro/internal/telemetry"
	"repro/internal/tensor"
)

// Type tags a wire message.
type Type byte

// Message types.
const (
	TProvision  Type = iota + 1 // owner -> monitor: MVX configuration
	TAssignKey                  // monitor -> init-variant: key + identity + file set
	TInstalled                  // init-variant -> monitor: installation evidence
	TBound                      // monitor -> variant: binding confirmed, begin serving
	TAttestReq                  // any -> enclave: challenge
	TAttestResp                 // enclave -> any: report
	TBatch                      // upstream -> variant: input tensors for one batch
	TResult                     // variant -> monitor: checkpoint outputs for one batch
	TUpdate                     // monitor -> variant: update command
	TShutdown                   // monitor -> variant: terminate
	TAck                        // generic success
	TError                      // generic failure carrying a message

	// Cluster tier (router <-> replica) messages.
	TVerify        // router -> follower replica: input tensors for a cross-check batch
	TDigest        // digest announce/vote: the cluster verification plane
	TReplicaHello  // replica -> router: registration (model interface, variant set)
	TReplicaStatus // replica -> router: ladder/spare health heartbeat
	TReplicaTune   // router -> replica: controller knob scoped to one replica

	// Cluster observability plane (trace + metrics federation).
	TSpanReport    // replica -> router: harvested spans for one batch
	TMetricsPoll   // router -> replica: registry snapshot request
	TMetricsReport // replica -> router: registry snapshot answering a poll
)

// Msg is a decoded wire message.
type Msg interface{ wireType() Type }

// Provision carries the MVX configuration from the model owner (step 3 of
// Figure 6). Config is an opaque JSON document interpreted by the monitor.
// Keys is the owner's pool key table (entry key -> variant-specific KDK); it
// only ever travels over the attested encrypted channel.
type Provision struct {
	Nonce  []byte            `json:"nonce"`
	Config json.RawMessage   `json:"config"`
	Keys   map[string][]byte `json:"keys,omitempty"`
}

// AssignKey distributes a variant-specific key and identity (step 5).
type AssignKey struct {
	VariantID  string   `json:"variant_id"`
	Partition  int      `json:"partition"`
	KDK        []byte   `json:"kdk"`
	ManifestPB []byte   `json:"manifest"` // encrypted second-stage manifest blob
	Files      []string `json:"files"`    // encrypted variant file paths
	Entrypoint string   `json:"entrypoint"`
}

// Installed reports successful second-stage installation with evidence
// (step 6).
type Installed struct {
	VariantID string   `json:"variant_id"`
	Evidence  [32]byte `json:"evidence"`
}

// Bound confirms monitor-side binding (step 7). Resume is the first batch ID
// the variant should expect: zero for initial binding, and the successor of
// the last dispatched batch when a spare is hot-replaced into a dead slot
// mid-run (§2.4 recover) — earlier batch IDs were served by the predecessor.
type Bound struct {
	VariantID string `json:"variant_id"`
	Resume    uint64 `json:"resume,omitempty"`
}

// AttestReq is a challenge for combined attestation.
type AttestReq struct {
	Nonce   []byte `json:"nonce"`
	Context string `json:"context"`
}

// AttestResp carries a serialized enclave report.
type AttestResp struct {
	Report []byte `json:"report"`
}

// Update carries a variant update command (full or partial, §4.3).
type Update struct {
	Kind      string          `json:"kind"` // "full" or "partial"
	VariantID string          `json:"variant_id,omitempty"`
	Config    json.RawMessage `json:"config,omitempty"`
}

// Shutdown terminates a variant.
type Shutdown struct{}

// Ack acknowledges success.
type Ack struct {
	Detail string `json:"detail,omitempty"`
}

// Error reports failure.
type Error struct {
	Message string `json:"message"`
}

// Batch is one inference batch's named input tensors. Trace is the
// batch-scoped telemetry trace ID minted by the monitor at submit; zero means
// tracing is off for this batch. Variants echo it back in their Result so
// monitor- and variant-side spans stitch into one timeline.
type Batch struct {
	ID      uint64
	Trace   uint64
	Tensors map[string]*tensor.Tensor
}

// Result is one variant's checkpoint output for a batch. Err is non-empty
// when the variant crashed or its kernel failed (the MVX monitor treats that
// as dissent). Trace echoes the Batch's trace ID.
type Result struct {
	ID        uint64
	Trace     uint64
	VariantID string
	Err       string
	Tensors   map[string]*tensor.Tensor
}

// Verify is a cross-check batch on the cluster verification plane: the
// follower replica executes it like a Batch but answers with a Digest vote
// instead of shipping its output tensors back — the dMVX-style selective
// result forwarding that keeps cross-node verification O(digest bytes). The
// binary layout is identical to Batch; only the type tag differs, so the
// router can encode a batch once and retag the shared payload per role.
type Verify struct {
	ID      uint64
	Trace   uint64
	Tensors map[string]*tensor.Tensor
}

// Digest is one message on the cluster verification plane, a fixed 46-byte
// frame. With Vote false it is an announcement: the leader's checkpoint
// digest fanned out to the batch's followers. With Vote true it is a
// follower's verdict: Agree reports whether its own execution's digest
// matched the announced one (Sum carries the follower's digest either way,
// so a dissent pinpoints what the follower actually computed). Stage is the
// checkpoint index, or -1 for the final output checkpoint.
type Digest struct {
	ID    uint64
	Stage int32 // checkpoint stage; -1 = final graph outputs
	Vote  bool  // false: announce (leader digest), true: follower verdict
	Agree bool  // meaningful only when Vote
	Sum   [32]byte
}

// ReplicaHello registers a replica engine with the cluster router: its
// identity, variant fan-out, and the model interface the router's front door
// should validate requests against.
type ReplicaHello struct {
	ID           string           `json:"id"`
	Stages       int              `json:"stages"`
	Variants     int              `json:"variants"`
	GraphInputs  []string         `json:"graph_inputs,omitempty"`
	GraphOutputs []string         `json:"graph_outputs,omitempty"`
	ItemShapes   map[string][]int `json:"item_shapes,omitempty"`
	// InflightWindow seeds the router's view of the replica's per-stage
	// credit window until the controller retunes it with ReplicaTune.
	InflightWindow int `json:"inflight_window,omitempty"`
}

// ReplicaStatus is the replica health heartbeat: the engine's per-stage
// degradation ladder and spare pool size, sent on change so the router can
// shed a demoted replica's load to peers without polling.
type ReplicaStatus struct {
	Ladder []int `json:"ladder"`
	Spares int   `json:"spares"`
}

// ReplicaTune scopes a controller knob to one replica (the distributed
// analogue of Engine.SetInflightWindow).
type ReplicaTune struct {
	InflightWindow int `json:"inflight_window"`
}

// SpanReport ships one batch's replica-side spans back to the router,
// piggybacked on the replica connection right after the batch's result or
// vote — the trace-federation plane. ID is the router batch ID; Replica is
// the sender's hello identity, which the router stamps into each span's
// Replica field as it merges them into its own ring (the field is not
// encoded on the wire). The replica bounds spans per batch, so the frame
// stays compact.
type SpanReport struct {
	ID      uint64
	Replica string
	Spans   []telemetry.Span
}

// MetricsPoll requests a replica registry snapshot over the status channel
// (metrics federation: no extra HTTP surface on replicas). Seq matches a
// report to its poll cycle.
type MetricsPoll struct {
	Seq uint64 `json:"seq"`
}

// MetricsReport answers a MetricsPoll with the replica registry's snapshot.
// It rides the JSON control-message path: polls run on a seconds cadence, so
// compactness doesn't matter the way it does for the per-batch planes.
type MetricsReport struct {
	Seq    uint64                     `json:"seq"`
	Series []telemetry.MetricSnapshot `json:"series"`
}

func (*Provision) wireType() Type  { return TProvision }
func (*AssignKey) wireType() Type  { return TAssignKey }
func (*Installed) wireType() Type  { return TInstalled }
func (*Bound) wireType() Type      { return TBound }
func (*AttestReq) wireType() Type  { return TAttestReq }
func (*AttestResp) wireType() Type { return TAttestResp }
func (*Batch) wireType() Type      { return TBatch }
func (*Result) wireType() Type     { return TResult }
func (*Update) wireType() Type     { return TUpdate }
func (*Shutdown) wireType() Type   { return TShutdown }
func (*Ack) wireType() Type        { return TAck }
func (*Error) wireType() Type      { return TError }

func (*Verify) wireType() Type        { return TVerify }
func (*Digest) wireType() Type        { return TDigest }
func (*ReplicaHello) wireType() Type  { return TReplicaHello }
func (*ReplicaStatus) wireType() Type { return TReplicaStatus }
func (*ReplicaTune) wireType() Type   { return TReplicaTune }
func (*SpanReport) wireType() Type    { return TSpanReport }
func (*MetricsPoll) wireType() Type   { return TMetricsPoll }
func (*MetricsReport) wireType() Type { return TMetricsReport }

// ErrDecode reports a malformed wire message.
var ErrDecode = errors.New("wire: malformed message")

// Marshal encodes m with its type tag.
func Marshal(m Msg) ([]byte, error) {
	switch v := m.(type) {
	case *Batch:
		return marshalTensorMsg(TBatch, v.ID, v.Trace, "", "", v.Tensors), nil
	case *Verify:
		return marshalTensorMsg(TVerify, v.ID, v.Trace, "", "", v.Tensors), nil
	case *Result:
		return marshalTensorMsg(TResult, v.ID, v.Trace, v.VariantID, v.Err, v.Tensors), nil
	case *Digest:
		out := make([]byte, digestMsgLen)
		encodeDigestMsg(out, v)
		return out, nil
	case *SpanReport:
		out := make([]byte, v.EncodedLen())
		encodeSpanReportMsg(out, v)
		return out, nil
	default:
		b, err := json.Marshal(m)
		if err != nil {
			return nil, fmt.Errorf("wire: marshal %T: %w", m, err)
		}
		out := make([]byte, 1+len(b))
		out[0] = byte(m.wireType())
		copy(out[1:], b)
		return out, nil
	}
}

// Unmarshal decodes a tagged wire message.
func Unmarshal(b []byte) (Msg, error) {
	if len(b) < 1 {
		return nil, ErrDecode
	}
	t, payload := Type(b[0]), b[1:]
	var m Msg
	switch t {
	case TProvision:
		m = &Provision{}
	case TAssignKey:
		m = &AssignKey{}
	case TInstalled:
		m = &Installed{}
	case TBound:
		m = &Bound{}
	case TAttestReq:
		m = &AttestReq{}
	case TAttestResp:
		m = &AttestResp{}
	case TUpdate:
		m = &Update{}
	case TShutdown:
		return &Shutdown{}, nil
	case TAck:
		m = &Ack{}
	case TError:
		m = &Error{}
	case TReplicaHello:
		m = &ReplicaHello{}
	case TReplicaStatus:
		m = &ReplicaStatus{}
	case TReplicaTune:
		m = &ReplicaTune{}
	case TMetricsPoll:
		m = &MetricsPoll{}
	case TMetricsReport:
		m = &MetricsReport{}
	case TDigest:
		return decodeDigestMsg(payload)
	case TSpanReport:
		return decodeSpanReportMsg(payload)
	case TBatch:
		id, trace, _, _, ts, err := unmarshalTensorMsg(payload)
		if err != nil {
			return nil, err
		}
		return &Batch{ID: id, Trace: trace, Tensors: ts}, nil
	case TVerify:
		id, trace, _, _, ts, err := unmarshalTensorMsg(payload)
		if err != nil {
			return nil, err
		}
		return &Verify{ID: id, Trace: trace, Tensors: ts}, nil
	case TResult:
		id, trace, vid, errStr, ts, err := unmarshalTensorMsg(payload)
		if err != nil {
			return nil, err
		}
		return &Result{ID: id, Trace: trace, VariantID: vid, Err: errStr, Tensors: ts}, nil
	default:
		return nil, fmt.Errorf("%w: unknown type %d", ErrDecode, t)
	}
	if err := json.Unmarshal(payload, m); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrDecode, err)
	}
	return m, nil
}

// MarshalBuf encodes m once into a pooled frame buffer with framing headroom
// and AEAD tailroom already reserved, so a ZeroCopy channel can seal and
// transmit the payload without any further copy. The buffer is consumed by
// SendBuf, or must be released with Free. Tensor names are encoded in sorted
// order so repeated marshals of the same message are byte-identical.
func MarshalBuf(m Msg) (*securechan.Buf, error) {
	switch v := m.(type) {
	case *Batch:
		return encodeTensorMsg(TBatch, v.ID, v.Trace, "", "", v.Tensors), nil
	case *Verify:
		return encodeTensorMsg(TVerify, v.ID, v.Trace, "", "", v.Tensors), nil
	case *Result:
		return encodeTensorMsg(TResult, v.ID, v.Trace, v.VariantID, v.Err, v.Tensors), nil
	case *Digest:
		buf := securechan.GetBuf(digestMsgLen)
		encodeDigestMsg(buf.Grow(digestMsgLen), v)
		return buf, nil
	case *SpanReport:
		n := v.EncodedLen()
		buf := securechan.GetBuf(n)
		encodeSpanReportMsg(buf.Grow(n), v)
		return buf, nil
	default:
		b, err := json.Marshal(m)
		if err != nil {
			return nil, fmt.Errorf("wire: marshal %T: %w", m, err)
		}
		buf := securechan.GetBuf(1 + len(b))
		dst := buf.Grow(1 + len(b))
		dst[0] = byte(m.wireType())
		copy(dst[1:], b)
		return buf, nil
	}
}

// --- cluster digest codec ----------------------------------------------------

// digestMsgLen is the fixed encoded size of a Digest message: type tag,
// batch ID, stage, flags, and the 32-byte digest. Digest frames are the
// entire steady-state cross-node verification cost of the cluster tier, so
// the codec is a fixed-layout binary write, not JSON.
const digestMsgLen = 1 + 8 + 4 + 1 + 32

// DigestFrameLen is the encoded payload size of every Digest message,
// exported so the cluster tier's byte accounting can charge digest-plane
// traffic without re-encoding.
const DigestFrameLen = digestMsgLen

const (
	digestFlagVote  = 1 << 0
	digestFlagAgree = 1 << 1
)

func encodeDigestMsg(dst []byte, d *Digest) {
	dst[0] = byte(TDigest)
	binary.LittleEndian.PutUint64(dst[1:], d.ID)
	binary.LittleEndian.PutUint32(dst[9:], uint32(d.Stage))
	var flags byte
	if d.Vote {
		flags |= digestFlagVote
	}
	if d.Agree {
		flags |= digestFlagAgree
	}
	dst[13] = flags
	copy(dst[14:], d.Sum[:])
}

func decodeDigestMsg(payload []byte) (*Digest, error) {
	if len(payload) != digestMsgLen-1 {
		return nil, fmt.Errorf("%w: digest frame length %d", ErrDecode, len(payload))
	}
	d := &Digest{
		ID:    binary.LittleEndian.Uint64(payload),
		Stage: int32(binary.LittleEndian.Uint32(payload[8:])),
		Vote:  payload[12]&digestFlagVote != 0,
		Agree: payload[12]&digestFlagAgree != 0,
	}
	copy(d.Sum[:], payload[13:])
	return d, nil
}

// MarshalDigest encodes a digest message once into a pooled buffer for
// encode-once fan-out: the router marshals the leader's checkpoint digest a
// single time and transmits the same 46-byte payload to every follower with
// SendEncoded. The caller owns the buffer and must Free it after the last
// send.
func MarshalDigest(d *Digest) *securechan.Buf {
	buf := securechan.GetBuf(digestMsgLen)
	encodeDigestMsg(buf.Grow(digestMsgLen), d)
	return buf
}

// --- span report codec -------------------------------------------------------

// spanFixed is the per-span fixed portion: trace, batch, stage, start, end.
const spanFixed = 8 + 8 + 4 + 8 + 8

// spanMinLen is the smallest encoded span (empty name and variant strings) —
// the decoder's allocation guard against forged counts.
const spanMinLen = spanFixed + 2 + 2

// EncodedLen returns the binary payload size of the report, shared by the
// codec and the router's span-plane byte accounting (the receive side would
// otherwise have to re-encode just to charge bytes).
func (r *SpanReport) EncodedLen() int {
	n := 1 + 8 + 2 + len(r.Replica) + 2
	for i := range r.Spans {
		n += spanMinLen + len(r.Spans[i].Name) + len(r.Spans[i].Variant)
	}
	return n
}

// encodeSpanReportMsg writes the report into dst (sized by EncodedLen):
// tag, batch ID, replica string, span count, then per span the fixed fields
// and name/variant strings. Span.Replica is never encoded — the router stamps
// it from the report header on merge.
func encodeSpanReportMsg(dst []byte, r *SpanReport) {
	dst[0] = byte(TSpanReport)
	binary.LittleEndian.PutUint64(dst[1:], r.ID)
	off := 9
	off += putStrAt(dst[off:], r.Replica)
	binary.LittleEndian.PutUint16(dst[off:], uint16(len(r.Spans)))
	off += 2
	for i := range r.Spans {
		s := &r.Spans[i]
		binary.LittleEndian.PutUint64(dst[off:], s.Trace)
		binary.LittleEndian.PutUint64(dst[off+8:], s.Batch)
		binary.LittleEndian.PutUint32(dst[off+16:], uint32(int32(s.Stage)))
		binary.LittleEndian.PutUint64(dst[off+20:], uint64(s.Start))
		binary.LittleEndian.PutUint64(dst[off+28:], uint64(s.End))
		off += spanFixed
		off += putStrAt(dst[off:], s.Name)
		off += putStrAt(dst[off:], s.Variant)
	}
}

func decodeSpanReportMsg(payload []byte) (*SpanReport, error) {
	if len(payload) < 8+2+2 {
		return nil, fmt.Errorf("%w: span report header", ErrDecode)
	}
	r := &SpanReport{ID: binary.LittleEndian.Uint64(payload)}
	b := payload[8:]
	var err error
	if r.Replica, b, err = readStr(b); err != nil {
		return nil, err
	}
	if len(b) < 2 {
		return nil, fmt.Errorf("%w: span report count", ErrDecode)
	}
	count := int(binary.LittleEndian.Uint16(b))
	b = b[2:]
	if count*spanMinLen > len(b) {
		return nil, fmt.Errorf("%w: span report truncated", ErrDecode)
	}
	r.Spans = make([]telemetry.Span, count)
	for i := 0; i < count; i++ {
		if len(b) < spanFixed {
			return nil, fmt.Errorf("%w: span %d", ErrDecode, i)
		}
		s := &r.Spans[i]
		s.Trace = binary.LittleEndian.Uint64(b)
		s.Batch = binary.LittleEndian.Uint64(b[8:])
		s.Stage = int(int32(binary.LittleEndian.Uint32(b[16:])))
		s.Start = int64(binary.LittleEndian.Uint64(b[20:]))
		s.End = int64(binary.LittleEndian.Uint64(b[28:]))
		b = b[spanFixed:]
		if s.Name, b, err = readStr(b); err != nil {
			return nil, err
		}
		if s.Variant, b, err = readStr(b); err != nil {
			return nil, err
		}
	}
	if len(b) != 0 {
		return nil, fmt.Errorf("%w: span report trailing bytes", ErrDecode)
	}
	return r, nil
}

// RetagVerify flips an encoded Batch payload (from MarshalBatch) into a
// Verify payload in place, and RetagBatch flips it back. The two messages
// share one binary layout, so the router encodes a batch exactly once and
// retags the shared payload between the leader send (TBatch: execute and
// return the result) and the follower fan-out (TVerify: execute and vote) —
// SendShared seals its own copy per connection, leaving the payload intact.
func RetagVerify(payload []byte) { payload[0] = byte(TVerify) }

// RetagBatch restores a payload retagged by RetagVerify.
func RetagBatch(payload []byte) { payload[0] = byte(TBatch) }

// MarshalBatch encodes b exactly once into a pooled buffer for encode-once
// fan-out: the monitor marshals the batch a single time, then transmits the
// same payload on every variant connection with SendEncoded (each secure
// channel seals its own copy into a pooled frame; the payload stays intact).
// The caller owns the buffer and must Free it after the last send.
func MarshalBatch(b *Batch) *securechan.Buf {
	return encodeTensorMsg(TBatch, b.ID, b.Trace, "", "", b.Tensors)
}

// SendEncoded transmits an already-marshalled wire payload on c, using the
// shared-payload zero-copy path when the channel supports it. The payload is
// left intact, so the same encoding can fan out across many connections.
func SendEncoded(c securechan.Conn, payload []byte) error {
	if zc, ok := c.(securechan.ZeroCopy); ok {
		return zc.SendShared(payload)
	}
	return c.Send(payload)
}

// Send marshals and transmits m on c. On ZeroCopy channels the message is
// encoded once into a pooled frame and sealed in place — one allocation-free
// write on the warm path.
func Send(c securechan.Conn, m Msg) error {
	if zc, ok := c.(securechan.ZeroCopy); ok {
		b, err := MarshalBuf(m)
		if err != nil {
			return err
		}
		return zc.SendBuf(b)
	}
	b, err := Marshal(m)
	if err != nil {
		return err
	}
	return c.Send(b)
}

// Recv receives and decodes one message from c. On ZeroCopy channels the
// frame lands in the connection's pooled receive buffer (decrypted in place on
// secure channels) and is fully decoded before the next receive can reuse it;
// the returned Msg never aliases the frame.
func Recv(c securechan.Conn) (Msg, error) {
	var (
		b   []byte
		err error
	)
	if zc, ok := c.(securechan.ZeroCopy); ok {
		b, err = zc.RecvBuf()
	} else {
		b, err = c.Recv()
	}
	if err != nil {
		return nil, err
	}
	return Unmarshal(b)
}

// --- binary tensor-message codec ---------------------------------------------

func putStr(buf []byte, s string) []byte {
	buf = binary.LittleEndian.AppendUint16(buf, uint16(len(s)))
	return append(buf, s...)
}

func marshalTensorMsg(t Type, id, trace uint64, vid, errStr string, ts map[string]*tensor.Tensor) []byte {
	size := 1 + 8 + 8 + 2 + len(vid) + 2 + len(errStr) + 4
	for name, tt := range ts {
		size += 2 + len(name) + 4 + 4*tt.Dims() + 4*tt.Size()
	}
	buf := make([]byte, 0, size)
	buf = append(buf, byte(t))
	buf = binary.LittleEndian.AppendUint64(buf, id)
	buf = binary.LittleEndian.AppendUint64(buf, trace)
	buf = putStr(buf, vid)
	buf = putStr(buf, errStr)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(ts)))
	for name, tt := range ts {
		buf = putStr(buf, name)
		buf = append(buf, tt.Marshal()...)
	}
	return buf
}

// encodeTensorMsg encodes a tensor message directly into a pooled frame
// buffer sized exactly for the payload. Tensor names are sorted so the
// encoding is deterministic (map iteration order is not).
func encodeTensorMsg(t Type, id, trace uint64, vid, errStr string, ts map[string]*tensor.Tensor) *securechan.Buf {
	size := 1 + 8 + 8 + 2 + len(vid) + 2 + len(errStr) + 4
	names := make([]string, 0, len(ts))
	for name, tt := range ts {
		names = append(names, name)
		size += 2 + len(name) + tt.EncodedSize()
	}
	slices.Sort(names)
	buf := securechan.GetBuf(size)
	dst := buf.Grow(size)
	dst[0] = byte(t)
	binary.LittleEndian.PutUint64(dst[1:], id)
	binary.LittleEndian.PutUint64(dst[9:], trace)
	off := 17
	off += putStrAt(dst[off:], vid)
	off += putStrAt(dst[off:], errStr)
	binary.LittleEndian.PutUint32(dst[off:], uint32(len(ts)))
	off += 4
	for _, name := range names {
		off += putStrAt(dst[off:], name)
		off += ts[name].Encode(dst[off:])
	}
	return buf
}

func putStrAt(dst []byte, s string) int {
	binary.LittleEndian.PutUint16(dst, uint16(len(s)))
	copy(dst[2:], s)
	return 2 + len(s)
}

func readStr(b []byte) (string, []byte, error) {
	if len(b) < 2 {
		return "", nil, ErrDecode
	}
	n := int(binary.LittleEndian.Uint16(b))
	if len(b) < 2+n {
		return "", nil, ErrDecode
	}
	return string(b[2 : 2+n]), b[2+n:], nil
}

func unmarshalTensorMsg(b []byte) (id, trace uint64, vid, errStr string, ts map[string]*tensor.Tensor, err error) {
	if len(b) < 16 {
		return 0, 0, "", "", nil, ErrDecode
	}
	id = binary.LittleEndian.Uint64(b)
	trace = binary.LittleEndian.Uint64(b[8:])
	b = b[16:]
	if vid, b, err = readStr(b); err != nil {
		return 0, 0, "", "", nil, err
	}
	if errStr, b, err = readStr(b); err != nil {
		return 0, 0, "", "", nil, err
	}
	if len(b) < 4 {
		return 0, 0, "", "", nil, ErrDecode
	}
	count := binary.LittleEndian.Uint32(b)
	b = b[4:]
	ts = make(map[string]*tensor.Tensor, count)
	for i := uint32(0); i < count; i++ {
		var name string
		if name, b, err = readStr(b); err != nil {
			return 0, 0, "", "", nil, err
		}
		t, n, err := tensor.Unmarshal(b)
		if err != nil {
			return 0, 0, "", "", nil, fmt.Errorf("%w: tensor %q: %v", ErrDecode, name, err)
		}
		ts[name] = t
		b = b[n:]
	}
	return id, trace, vid, errStr, ts, nil
}
