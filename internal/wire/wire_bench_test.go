package wire

import (
	"fmt"
	"testing"

	"repro/internal/tensor"
)

// BenchmarkBatchCodec measures the hot-path tensor-message codec on
// checkpoint-sized payloads.
func BenchmarkBatchCodec(b *testing.B) {
	for _, dim := range []int{16, 56} {
		x := tensor.New(1, 64, dim, dim)
		msg := &Batch{ID: 1, Tensors: map[string]*tensor.Tensor{"boundary": x}}
		b.Run(fmt.Sprintf("marshal/%dx%d", dim, dim), func(b *testing.B) {
			b.SetBytes(int64(4 * x.Size()))
			for i := 0; i < b.N; i++ {
				if _, err := Marshal(msg); err != nil {
					b.Fatal(err)
				}
			}
		})
		buf, err := Marshal(msg)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("unmarshal/%dx%d", dim, dim), func(b *testing.B) {
			b.SetBytes(int64(4 * x.Size()))
			for i := 0; i < b.N; i++ {
				if _, err := Unmarshal(buf); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
