package wire

import (
	"bytes"
	"errors"
	"io"
	"math"
	"net/http"
	"strings"
	"testing"
	"time"

	"repro/internal/tensor"
)

func pubInputs() map[string]*tensor.Tensor {
	return map[string]*tensor.Tensor{
		"image": tensor.MustFromSlice([]float32{0, float32(math.Copysign(0, -1)), 1.5, -2.25, 3e38, -3e38}, 2, 3),
		"mask":  tensor.MustFromSlice([]float32{1}, 1, 1),
	}
}

func TestPublicRequestRoundtrip(t *testing.T) {
	in := pubInputs()
	var body bytes.Buffer
	if err := EncodeRequest(&body, in); err != nil {
		t.Fatal(err)
	}
	if got, want := int64(body.Len()), RequestEncodedSize(in); got != want {
		t.Fatalf("encoded size %d, RequestEncodedSize says %d", got, want)
	}
	out, err := DecodeRequest(bytes.NewReader(body.Bytes()), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(in) {
		t.Fatalf("decoded %d tensors, want %d", len(out), len(in))
	}
	for name, want := range in {
		got := out[name]
		if got == nil || !got.SameShape(want) {
			t.Fatalf("tensor %q shape mismatch", name)
		}
		for i, w := range want.Data() {
			if math.Float32bits(got.Data()[i]) != math.Float32bits(w) {
				t.Fatalf("tensor %q element %d: bits %x != %x", name, i,
					math.Float32bits(got.Data()[i]), math.Float32bits(w))
			}
		}
	}
}

func TestPublicRequestNaNSafe(t *testing.T) {
	// NaN payload bits (including a non-default quiet-NaN payload) and both
	// infinities must survive the binary roundtrip bit-exactly — the property
	// the JSON path cannot offer at all.
	odd := math.Float32frombits(0x7fc00123)
	in := map[string]*tensor.Tensor{"x": tensor.MustFromSlice(
		[]float32{float32(math.NaN()), odd, float32(math.Inf(1)), float32(math.Inf(-1))}, 1, 4)}
	var body bytes.Buffer
	if err := EncodeRequest(&body, in); err != nil {
		t.Fatal(err)
	}
	out, err := DecodeRequest(&body, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i, w := range in["x"].Data() {
		if g := out["x"].Data()[i]; math.Float32bits(g) != math.Float32bits(w) {
			t.Fatalf("element %d: bits %x != %x", i, math.Float32bits(g), math.Float32bits(w))
		}
	}
}

func TestPublicRequestDeterministic(t *testing.T) {
	var a, b bytes.Buffer
	if err := EncodeRequest(&a, pubInputs()); err != nil {
		t.Fatal(err)
	}
	if err := EncodeRequest(&b, pubInputs()); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("same inputs encode to different bytes (map-order leak)")
	}
}

// trackingReader counts how many bytes DecodeRequest consumed.
type trackingReader struct {
	r io.Reader
	n int
}

func (t *trackingReader) Read(p []byte) (int, error) {
	n, err := t.r.Read(p)
	t.n += n
	return n, err
}

func TestPublicDecodeValidatesBeforePayload(t *testing.T) {
	// A frame whose shape the validator rejects must be refused at header
	// cost: the reader must not be asked for the (large) payload.
	big := tensor.New(64, 1024) // 256 KiB payload
	var body bytes.Buffer
	if err := EncodeRequest(&body, map[string]*tensor.Tensor{"x": big}); err != nil {
		t.Fatal(err)
	}
	wantErr := errors.New("shape rejected at admission")
	tr := &trackingReader{r: bytes.NewReader(body.Bytes())}
	_, err := DecodeRequest(tr, func(name string, shape []int) error {
		if shape[0] > 1 {
			return wantErr
		}
		return nil
	})
	if !errors.Is(err, wantErr) {
		t.Fatalf("err = %v, want the validator's error", err)
	}
	if tr.n > 1024 {
		t.Fatalf("decoder consumed %d bytes of a rejected frame; payload must stay unread", tr.n)
	}
}

func TestPublicDecodeRejectsMalformed(t *testing.T) {
	valid := func() []byte {
		var b bytes.Buffer
		if err := EncodeRequest(&b, pubInputs()); err != nil {
			t.Fatal(err)
		}
		return b.Bytes()
	}
	cases := map[string][]byte{
		"empty":       {},
		"bad-magic":   append([]byte("XVT\x01"), valid()[4:]...),
		"bad-version": append([]byte("MVT\x09"), valid()[4:]...),
		"zero-count":  {'M', 'V', 'T', 1, 0, 0},
		"truncated":   valid()[:len(valid())/2],
		"no-end":      valid()[:len(valid())-frameHdrSize],
	}
	for name, body := range cases {
		if _, err := DecodeRequest(bytes.NewReader(body), nil); !errors.Is(err, ErrPubDecode) {
			t.Errorf("%s: err = %v, want ErrPubDecode", name, err)
		}
	}
	// Oversize declared count.
	hdr := []byte{'M', 'V', 'T', 1, 0xff, 0xff}
	if _, err := DecodeRequest(bytes.NewReader(hdr), nil); !errors.Is(err, ErrPubDecode) {
		t.Errorf("oversize count: err = %v, want ErrPubDecode", err)
	}
}

func TestPublicResponseRoundtrip(t *testing.T) {
	outs := pubInputs()
	meta := PubMeta{ID: 42, BatchID: 7, BatchFill: 3, Latency: 1500 * time.Microsecond, Tensors: len(outs)}
	var body bytes.Buffer
	if err := WriteResponseHeader(&body, meta); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"image", "mask"} { // sorted, as the server writes
		if err := WriteTensorFrame(&body, name, outs[name]); err != nil {
			t.Fatal(err)
		}
	}
	if err := WriteEndFrame(&body); err != nil {
		t.Fatal(err)
	}
	gotMeta, gotOuts, err := DecodeResponse(&body)
	if err != nil {
		t.Fatal(err)
	}
	if gotMeta != meta {
		t.Fatalf("meta = %+v, want %+v", gotMeta, meta)
	}
	for name, want := range outs {
		got := gotOuts[name]
		if got == nil || !got.SameShape(want) {
			t.Fatalf("output %q missing or misshapen", name)
		}
	}
}

func TestPublicResponseTruncationDetected(t *testing.T) {
	outs := map[string]*tensor.Tensor{"y": tensor.MustFromSlice([]float32{1, 2}, 1, 2)}
	var body bytes.Buffer
	if err := WriteResponseHeader(&body, PubMeta{Tensors: 1}); err != nil {
		t.Fatal(err)
	}
	if err := WriteTensorFrame(&body, "y", outs["y"]); err != nil {
		t.Fatal(err)
	}
	// No end frame: a complete-looking but unterminated stream must fail.
	if _, _, err := DecodeResponse(&body); !errors.Is(err, ErrPubDecode) {
		t.Fatalf("err = %v, want ErrPubDecode on missing end frame", err)
	}
}

func TestPublicErrorFrame(t *testing.T) {
	var body bytes.Buffer
	if err := WriteErrorFrame(&body, http.StatusTooManyRequests, 75*time.Millisecond, "tenant overloaded"); err != nil {
		t.Fatal(err)
	}
	_, _, err := DecodeResponse(&body)
	var pe *PubError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v, want *PubError", err)
	}
	if pe.Status != http.StatusTooManyRequests || pe.RetryAfter != 75*time.Millisecond ||
		!strings.Contains(pe.Msg, "overloaded") {
		t.Fatalf("decoded error = %+v", pe)
	}
}

func TestMaxRequestSizeCoversDeclaredShapes(t *testing.T) {
	shapes := map[string][]int{"image": {1, 3, 32, 32}, "mask": {1, 32}}
	const maxItems = 16
	bound := MaxRequestSize(shapes, maxItems)

	// A maximal legitimate request must fit under the bound.
	in := map[string]*tensor.Tensor{
		"image": tensor.New(maxItems, 3, 32, 32),
		"mask":  tensor.New(maxItems, 32),
	}
	if got := RequestEncodedSize(in); got > bound {
		t.Fatalf("maximal request %d bytes exceeds MaxRequestSize %d", got, bound)
	}
	// The bound must stay close to binary reality: not the ~24 bytes/float
	// JSON estimate (6x would already be generous).
	if slack := bound - RequestEncodedSize(in); slack > 1<<12 {
		t.Fatalf("bound slack %d bytes; binary sizing should be tight", slack)
	}
	if MaxRequestSize(nil, maxItems) != 64<<20 {
		t.Fatal("undeclared interface must fall back to the flat cap")
	}
}

func TestCheckPublicShape(t *testing.T) {
	for _, bad := range [][]int{
		{},                 // rank 0
		make([]int, 17),    // rank over MaxWireDims
		{1, 0, 3},          // zero dim
		{-1, 4},            // negative dim
		{1 << 31, 1 << 31}, // overflow
	} {
		if _, err := CheckPublicShape(bad); err == nil {
			t.Errorf("CheckPublicShape(%v) accepted", bad)
		}
	}
	vol, err := CheckPublicShape([]int{2, 3, 4})
	if err != nil || vol != 24 {
		t.Fatalf("vol=%d err=%v", vol, err)
	}
}
