package wire

import (
	"bytes"
	"math/rand/v2"
	"net"
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/securechan"
	"repro/internal/tensor"
)

func TestControlMessagesRoundtrip(t *testing.T) {
	msgs := []Msg{
		&Provision{Nonce: []byte{1, 2}, Config: []byte(`{"plans":[]}`)},
		&AssignKey{VariantID: "v1", Partition: 2, KDK: []byte{9}, ManifestPB: []byte("m"),
			Files: []string{"a", "b"}, Entrypoint: "e"},
		&Installed{VariantID: "v1", Evidence: [32]byte{5}},
		&Bound{VariantID: "v1"},
		&AttestReq{Nonce: []byte{7}, Context: "variant/v1"},
		&AttestResp{Report: []byte("{}")},
		&Update{Kind: "partial", VariantID: "v2"},
		&Shutdown{},
		&Ack{Detail: "ok"},
		&Error{Message: "boom"},
	}
	for _, m := range msgs {
		b, err := Marshal(m)
		if err != nil {
			t.Fatalf("%T: %v", m, err)
		}
		got, err := Unmarshal(b)
		if err != nil {
			t.Fatalf("%T: %v", m, err)
		}
		if !reflect.DeepEqual(m, got) {
			t.Errorf("%T roundtrip: %+v != %+v", m, m, got)
		}
	}
}

func TestBatchResultRoundtrip(t *testing.T) {
	ts := map[string]*tensor.Tensor{
		"a": tensor.MustFromSlice([]float32{1, 2, 3, 4}, 2, 2),
		"b": tensor.MustFromSlice([]float32{-1.5}, 1),
	}
	b := &Batch{ID: 42, Tensors: ts}
	buf, err := Marshal(b)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Unmarshal(buf)
	if err != nil {
		t.Fatal(err)
	}
	gb := got.(*Batch)
	if gb.ID != 42 || len(gb.Tensors) != 2 {
		t.Fatalf("batch = %+v", gb)
	}
	if !reflect.DeepEqual(gb.Tensors["a"].Data(), ts["a"].Data()) {
		t.Fatal("tensor payload mismatch")
	}

	r := &Result{ID: 7, VariantID: "v3", Err: "kernel exploded", Tensors: ts}
	buf, err = Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	got, err = Unmarshal(buf)
	if err != nil {
		t.Fatal(err)
	}
	gr := got.(*Result)
	if gr.ID != 7 || gr.VariantID != "v3" || gr.Err != "kernel exploded" || len(gr.Tensors) != 2 {
		t.Fatalf("result = %+v", gr)
	}
}

func TestEmptyTensorsAllowed(t *testing.T) {
	b := &Batch{ID: 1, Tensors: map[string]*tensor.Tensor{}}
	buf, _ := Marshal(b)
	got, err := Unmarshal(buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.(*Batch).Tensors) != 0 {
		t.Fatal("expected empty tensor map")
	}
}

func TestUnmarshalMalformed(t *testing.T) {
	good, _ := Marshal(&Batch{ID: 1, Tensors: map[string]*tensor.Tensor{
		"x": tensor.MustFromSlice([]float32{1}, 1),
	}})
	cases := [][]byte{
		nil,
		{0},
		{99},               // unknown type
		good[:5],           // truncated header
		good[:len(good)-2], // truncated tensor
		append([]byte{byte(TAck)}, []byte("not json")...),
	}
	for i, c := range cases {
		if _, err := Unmarshal(c); err == nil {
			t.Errorf("case %d: malformed message accepted", i)
		}
	}
}

func TestSendRecvOverChannel(t *testing.T) {
	a, b := net.Pipe()
	ca, cb := securechan.Plain(a), securechan.Plain(b)
	go func() {
		_ = Send(ca, &Batch{ID: 3, Tensors: map[string]*tensor.Tensor{
			"y": tensor.MustFromSlice([]float32{1, 2}, 2),
		}})
	}()
	msg, err := Recv(cb)
	if err != nil {
		t.Fatal(err)
	}
	if got := msg.(*Batch); got.ID != 3 || got.Tensors["y"].At(1) != 2 {
		t.Fatalf("got %+v", got)
	}
}

// TestQuickBatchRoundtrip property-tests the binary tensor-message codec.
func TestQuickBatchRoundtrip(t *testing.T) {
	f := func(seed uint64, id uint64, names []string) bool {
		rng := rand.New(rand.NewPCG(seed, 31))
		if len(names) > 5 {
			names = names[:5]
		}
		ts := make(map[string]*tensor.Tensor, len(names))
		for _, n := range names {
			if len(n) > 100 {
				n = n[:100]
			}
			x := tensor.New(rng.IntN(4)+1, rng.IntN(4)+1)
			for i := range x.Data() {
				x.Data()[i] = float32(rng.NormFloat64())
			}
			ts[n] = x
		}
		buf, err := Marshal(&Batch{ID: id, Tensors: ts})
		if err != nil {
			return false
		}
		got, err := Unmarshal(buf)
		if err != nil {
			return false
		}
		gb := got.(*Batch)
		if gb.ID != id || len(gb.Tensors) != len(ts) {
			return false
		}
		for n, x := range ts {
			y, ok := gb.Tensors[n]
			if !ok || !y.SameShape(x) || !reflect.DeepEqual(x.Data(), y.Data()) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestMarshalTypeTag(t *testing.T) {
	b, _ := Marshal(&Ack{})
	if Type(b[0]) != TAck {
		t.Fatalf("tag = %d", b[0])
	}
	if !bytes.Contains(b[1:], []byte("{")) {
		t.Fatal("control payload should be JSON")
	}
}
