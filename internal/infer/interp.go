package infer

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/ops"
	"repro/internal/tensor"
)

// interpExecutor is the ORT-like graph interpreter: it resolves the execution
// order once, then at each call walks the node list, dispatching kernels and
// releasing intermediate tensors when their last consumer has run.
//
// Unlike the Planned executor it deliberately keeps per-call map-based value
// tracking and fresh tensor allocation (no arena): the two runtimes' distinct
// allocation behaviour is part of the inference-instance diversification
// axis. It still shares the Context's persistent worker pool, so intra-op
// parallelism costs no goroutine spawning here either.
type interpExecutor struct {
	g     *graph.Graph
	cfg   Config
	ctx   *ops.Context
	order []*graph.Node
	kerns []ops.Kernel
	// lastUse[i] lists tensor names whose last consumer is order[i].
	lastUse [][]string
}

var _ Executor = (*interpExecutor)(nil)

func newInterp(g *graph.Graph, cfg Config) (*interpExecutor, error) {
	ctx, err := buildContext(cfg)
	if err != nil {
		return nil, fmt.Errorf("infer: interp: %w", err)
	}
	order, err := g.TopoSort()
	if err != nil {
		return nil, fmt.Errorf("infer: interp: %w", err)
	}
	reg := buildRegistry()
	kerns := make([]ops.Kernel, len(order))
	for i, n := range order {
		k, err := kernelFor(reg, cfg, n)
		if err != nil {
			return nil, err
		}
		kerns[i] = k
	}
	ex := &interpExecutor{g: g, cfg: cfg, ctx: ctx, order: order, kerns: kerns}
	ex.lastUse = computeLastUse(g, order)
	return ex, nil
}

// computeLastUse determines, per execution step, which tensors become dead
// after that step (not graph outputs, not initializers).
func computeLastUse(g *graph.Graph, order []*graph.Node) [][]string {
	keep := make(map[string]bool, len(g.Outputs)+len(g.Initializers))
	for _, o := range g.Outputs {
		keep[o] = true
	}
	for name := range g.Initializers {
		keep[name] = true
	}
	last := make(map[string]int)
	for i, n := range order {
		for _, in := range n.Inputs {
			if !keep[in] {
				last[in] = i
			}
		}
	}
	use := make([][]string, len(order))
	for name, i := range last {
		use[i] = append(use[i], name)
	}
	return use
}

func (e *interpExecutor) Graph() *graph.Graph { return e.g }
func (e *interpExecutor) Config() Config      { return e.cfg }

func (e *interpExecutor) Run(inputs map[string]*tensor.Tensor) (map[string]*tensor.Tensor, error) {
	values := make(map[string]*tensor.Tensor, len(e.g.Nodes)*2)
	for name, t := range e.g.Initializers {
		values[name] = t
	}
	for _, vi := range e.g.Inputs {
		t, ok := inputs[vi.Name]
		if !ok {
			return nil, fmt.Errorf("%w: %q", ErrMissingInput, vi.Name)
		}
		values[vi.Name] = t
	}
	for i, n := range e.order {
		ins := make([]*tensor.Tensor, len(n.Inputs))
		for j, in := range n.Inputs {
			t, ok := values[in]
			if !ok {
				return nil, fmt.Errorf("infer: node %q input %q unavailable", n.Name, in)
			}
			ins[j] = t
		}
		outs, err := runKernel(e.ctx, e.kerns[i], n, ins)
		if err != nil {
			return nil, err
		}
		for j, name := range n.Outputs {
			values[name] = outs[j]
		}
		for _, dead := range e.lastUse[i] {
			delete(values, dead)
		}
	}
	return gatherOutputs(e.g, values)
}
