package infer

import (
	"errors"
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"

	"repro/internal/blas"
	"repro/internal/graph"
	"repro/internal/models"
	"repro/internal/ops"
	"repro/internal/tensor"
)

func testModel(t *testing.T) *graph.Graph {
	t.Helper()
	g, err := models.Build("googlenet", models.Config{})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func testInput(seed uint64) *tensor.Tensor {
	rng := rand.New(rand.NewPCG(seed, 2))
	in := tensor.New(1, 3, 32, 32)
	for i := range in.Data() {
		in.Data()[i] = float32(rng.NormFloat64())
	}
	return in
}

func maxAbs(a, b *tensor.Tensor) float64 {
	var m float64
	for i := range a.Data() {
		if d := math.Abs(float64(a.Data()[i]) - float64(b.Data()[i])); d > m {
			m = d
		}
	}
	return m
}

func TestInterpVsPlannedEquivalence(t *testing.T) {
	g := testModel(t)
	in := map[string]*tensor.Tensor{"image": testInput(1)}
	interp, err := New(g, Config{Runtime: Interp})
	if err != nil {
		t.Fatal(err)
	}
	want, err := interp.Run(in)
	if err != nil {
		t.Fatal(err)
	}
	configs := []Config{
		{Runtime: Planned},
		{Runtime: Planned, OptLevel: 1},
		{Runtime: Interp, BLAS: blas.Blocked, ConvAlgo: ops.ConvIm2Col},
		{Runtime: Planned, BLAS: blas.Packed, ConvAlgo: ops.ConvIm2Col, OptLevel: 1},
		{Runtime: Interp, Parallelism: 4},
	}
	for _, cfg := range configs {
		ex, err := New(g, cfg)
		if err != nil {
			t.Fatalf("%s: %v", cfg, err)
		}
		got, err := ex.Run(in)
		if err != nil {
			t.Fatalf("%s: %v", cfg, err)
		}
		if d := maxAbs(got["logits"], want["logits"]); d > 1e-3 {
			t.Errorf("%s deviates from interp reference by %g", cfg, d)
		}
	}
}

func TestPlannedOptimizesGraph(t *testing.T) {
	g := testModel(t)
	ex, err := New(g, Config{Runtime: Planned, OptLevel: 1})
	if err != nil {
		t.Fatal(err)
	}
	if bn := ex.Graph().Stats().OpCounts[graph.OpBatchNorm]; bn != 0 {
		t.Errorf("planned opt=1 left %d BatchNorm nodes", bn)
	}
	// The original graph must be untouched.
	if bn := g.Stats().OpCounts[graph.OpBatchNorm]; bn == 0 {
		t.Error("optimizer mutated the caller's graph")
	}
}

func TestMissingInput(t *testing.T) {
	g := testModel(t)
	for _, cfg := range []Config{{Runtime: Interp}, {Runtime: Planned}} {
		ex, err := New(g, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := ex.Run(map[string]*tensor.Tensor{}); !errors.Is(err, ErrMissingInput) {
			t.Errorf("%s: got %v, want ErrMissingInput", cfg, err)
		}
	}
}

func TestRunReusable(t *testing.T) {
	// Executors are reusable across calls (intermediate tensors must not
	// leak between runs).
	g := testModel(t)
	for _, cfg := range []Config{{Runtime: Interp}, {Runtime: Planned}} {
		ex, err := New(g, cfg)
		if err != nil {
			t.Fatal(err)
		}
		in := map[string]*tensor.Tensor{"image": testInput(2)}
		a, err := ex.Run(in)
		if err != nil {
			t.Fatal(err)
		}
		b, err := ex.Run(in)
		if err != nil {
			t.Fatal(err)
		}
		if maxAbs(a["logits"], b["logits"]) != 0 {
			t.Errorf("%s: repeated runs differ", cfg)
		}
	}
}

func TestKernelWrapperInvoked(t *testing.T) {
	g := testModel(t)
	calls := 0
	cfg := Config{
		KernelWrapper: func(name string, k ops.Kernel) ops.Kernel {
			return func(ctx *ops.Context, n *graph.Node, ins []*tensor.Tensor) ([]*tensor.Tensor, error) {
				calls++
				return k(ctx, n, ins)
			}
		},
	}
	ex, err := New(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ex.Run(map[string]*tensor.Tensor{"image": testInput(3)}); err != nil {
		t.Fatal(err)
	}
	if calls != len(g.Nodes) {
		t.Errorf("wrapper called %d times, want %d", calls, len(g.Nodes))
	}
}

func TestBLASWrapperInvoked(t *testing.T) {
	g := testModel(t)
	wrapped := false
	cfg := Config{
		ConvAlgo: ops.ConvIm2Col,
		BLASWrapper: func(b blas.Backend) blas.Backend {
			wrapped = true
			return b
		},
	}
	if _, err := New(g, cfg); err != nil {
		t.Fatal(err)
	}
	if !wrapped {
		t.Error("BLAS wrapper not applied")
	}
}

func TestInvalidGraphRejected(t *testing.T) {
	g := graph.New("bad")
	g.AddNode("n", graph.OpIdentity, []string{"missing"}, []string{"y"}, nil)
	g.Outputs = []string{"y"}
	if _, err := New(g, Config{}); err == nil {
		t.Fatal("expected validation error")
	}
}

func TestUnknownRuntime(t *testing.T) {
	if _, err := New(testModel(t), Config{Runtime: RuntimeKind(42)}); err == nil {
		t.Fatal("expected unknown-runtime error")
	}
}

func TestConfigString(t *testing.T) {
	s := Config{Runtime: Planned, BLAS: blas.Packed, ConvAlgo: ops.ConvIm2Col, Parallelism: 2, OptLevel: 1}.String()
	want := "planned/blas=packed/conv=im2col/par=2/opt=1"
	if s != want {
		t.Errorf("Config.String() = %q, want %q", s, want)
	}
}

// TestQuickRandomConfigEquivalence property-tests the central functional-
// equivalence guarantee: any runtime configuration computes the same model
// function (within float tolerance) as the reference interpreter.
func TestQuickRandomConfigEquivalence(t *testing.T) {
	g, err := models.Build("mnasnet", models.Config{})
	if err != nil {
		t.Fatal(err)
	}
	in := map[string]*tensor.Tensor{"image": testInput(9)}
	ref, err := New(g, Config{})
	if err != nil {
		t.Fatal(err)
	}
	want, err := ref.Run(in)
	if err != nil {
		t.Fatal(err)
	}
	f := func(rt, bl, ca, par, opt uint8) bool {
		cfg := Config{
			Runtime:     RuntimeKind(int(rt)%2 + 1),
			BLAS:        blas.Kind(int(bl)%3 + 1),
			ConvAlgo:    ops.ConvAlgo(int(ca)%2 + 1),
			Parallelism: int(par % 4),
			OptLevel:    int(opt % 2),
		}
		ex, err := New(g, cfg)
		if err != nil {
			return false
		}
		got, err := ex.Run(in)
		if err != nil {
			return false
		}
		return maxAbs(got["logits"], want["logits"]) < 1e-3
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}
