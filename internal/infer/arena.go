package infer

import (
	"repro/internal/ops"
	"repro/internal/tensor"
)

// arena is a plan-lifetime tensor allocator for the Planned executor. Kernels
// draw their output tensors from it during a Run; at the end of the Run every
// tensor that did not escape as a graph output goes back onto a volume-keyed
// free list, so the next Run of the same plan — same shapes, same volumes —
// reuses the same buffers and performs no steady-state tensor allocations.
// Graph outputs are handed to the caller permanently (they are excluded from
// reclamation and replaced by fresh allocations on the next Run), so callers
// may retain results across Runs, as the monitor does with checkpoint tensors.
//
// An arena belongs to a single executor and inherits its concurrency
// contract: Run is not reentrant, so no locking is needed. Kernels running on
// pool workers never allocate through the context (they receive pre-allocated
// outputs), keeping the arena single-goroutine.
type arena struct {
	free map[int][]*tensor.Tensor // reclaimed tensors keyed by element count
	used []*tensor.Tensor         // tensors handed out during the current Run
}

var _ ops.Allocator = (*arena)(nil)

func newArena() *arena {
	return &arena{free: make(map[int][]*tensor.Tensor)}
}

// get returns a tensor of the given volume/shape and whether it was recycled
// (and therefore holds stale values).
func (a *arena) get(n int, shape []int) (*tensor.Tensor, bool) {
	if l := a.free[n]; len(l) > 0 {
		t := l[len(l)-1]
		l[len(l)-1] = nil
		a.free[n] = l[:len(l)-1]
		t.ResetShape(shape...)
		a.used = append(a.used, t)
		return t, true
	}
	t := tensor.New(shape...)
	a.used = append(a.used, t)
	return t, false
}

// NewTensorUninit implements ops.Allocator.
func (a *arena) NewTensorUninit(shape ...int) *tensor.Tensor {
	t, _ := a.get(tensor.Volume(shape), shape)
	return t
}

// NewTensor implements ops.Allocator: recycled buffers are re-zeroed.
func (a *arena) NewTensor(shape ...int) *tensor.Tensor {
	t, recycled := a.get(tensor.Volume(shape), shape)
	if recycled {
		d := t.Data()
		for i := range d {
			d[i] = 0
		}
	}
	return t
}

// reclaimExcept returns every tensor handed out during the current Run to the
// free lists, except those whose storage backs one of outs (graph outputs —
// including views of arena tensors — escape to the caller). Identity is by
// backing-array address, which catches Reshape/Flatten views sharing data
// with an arena-allocated clone.
func (a *arena) reclaimExcept(outs map[string]*tensor.Tensor) {
	for i, t := range a.used {
		a.used[i] = nil
		d := t.Data()
		if len(d) > 0 {
			escaped := false
			for _, o := range outs {
				od := o.Data()
				if len(od) > 0 && &od[0] == &d[0] {
					escaped = true
					break
				}
			}
			if escaped {
				continue
			}
		}
		a.free[len(d)] = append(a.free[len(d)], t)
	}
	a.used = a.used[:0]
}
