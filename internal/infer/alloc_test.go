package infer

import (
	"math"
	"testing"

	"repro/internal/tensor"
)

// TestPlannedRunSteadyStateAllocs locks in the arena guarantee: once warm, a
// Planned Run performs no tensor-data allocations — every intermediate buffer
// comes from the plan arena. What remains are per-step header allocations
// (the kernel's output slice, variadic shape slices crossing the Allocator
// interface) and the output map/tensor handed to the caller, all O(steps)
// small objects. The bound is deliberately tight: before the arena, every
// step allocated its full output tensor data.
func TestPlannedRunSteadyStateAllocs(t *testing.T) {
	g := testModel(t)
	ex, err := New(g, Config{Runtime: Planned})
	if err != nil {
		t.Fatal(err)
	}
	in := map[string]*tensor.Tensor{"image": testInput(1)}
	for i := 0; i < 3; i++ {
		if _, err := ex.Run(in); err != nil {
			t.Fatal(err)
		}
	}
	steps := len(ex.(*plannedExecutor).steps)
	allocs := testing.AllocsPerRun(5, func() {
		if _, err := ex.Run(in); err != nil {
			t.Fatal(err)
		}
	})
	if max := float64(5 * steps); allocs > max {
		t.Errorf("steady-state Planned.Run allocs = %v, want <= %v (5 per step over %d steps)", allocs, max, steps)
	}
}

// TestPlannedRunArenaReuseIsSafe verifies the arena recycles buffers without
// corrupting results the caller retains: two Runs produce bitwise-identical
// outputs on bitwise-identical storage-distinct tensors, and the first Run's
// output survives the second Run unchanged (graph outputs escape the arena).
func TestPlannedRunArenaReuseIsSafe(t *testing.T) {
	g := testModel(t)
	ex, err := New(g, Config{Runtime: Planned})
	if err != nil {
		t.Fatal(err)
	}
	in := map[string]*tensor.Tensor{"image": testInput(3)}
	first, err := ex.Run(in)
	if err != nil {
		t.Fatal(err)
	}
	snapshot := first["logits"].Clone()
	second, err := ex.Run(in)
	if err != nil {
		t.Fatal(err)
	}
	fd, sd := first["logits"].Data(), second["logits"].Data()
	if &fd[0] == &sd[0] {
		t.Fatal("second Run returned the first Run's output storage")
	}
	for i := range fd {
		if math.Float32bits(fd[i]) != math.Float32bits(snapshot.Data()[i]) {
			t.Fatalf("first Run's output mutated at %d after second Run", i)
		}
		if math.Float32bits(fd[i]) != math.Float32bits(sd[i]) {
			t.Fatalf("repeat Run output differs at %d", i)
		}
	}
}
