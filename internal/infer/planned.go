package infer

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/ops"
	"repro/internal/rewrite"
	"repro/internal/tensor"
)

// plannedExecutor is the TVM-like ahead-of-time engine. At load time it
// optionally optimizes the graph (operator fusion), infers all shapes,
// resolves the kernel and operand slots for every step and computes tensor
// lifetimes; Run replays the fixed plan against a slot table.
type plannedExecutor struct {
	g     *graph.Graph
	cfg   Config
	ctx   *ops.Context
	steps []planStep
	// slot assignment
	nSlots    int
	initSlots []slotInit
	inSlots   map[string]int
	outSlots  map[string]int
}

type planStep struct {
	node   *graph.Node
	kernel ops.Kernel
	in     []int
	out    []int
	free   []int // slots dead after this step
}

type slotInit struct {
	slot int
	t    *tensor.Tensor
}

var _ Executor = (*plannedExecutor)(nil)

func newPlanned(orig *graph.Graph, cfg Config) (*plannedExecutor, error) {
	g := orig
	if cfg.OptLevel > 0 {
		g = orig.Clone()
		rewrite.Optimize(g, cfg.OptLevel)
		if err := g.Validate(); err != nil {
			return nil, fmt.Errorf("infer: planned: optimized graph invalid: %w", err)
		}
	}
	if _, err := ops.InferShapes(g); err != nil {
		return nil, fmt.Errorf("infer: planned: %w", err)
	}
	ctx, err := buildContext(cfg)
	if err != nil {
		return nil, fmt.Errorf("infer: planned: %w", err)
	}
	order, err := g.TopoSort()
	if err != nil {
		return nil, fmt.Errorf("infer: planned: %w", err)
	}

	ex := &plannedExecutor{
		g:        g,
		cfg:      cfg,
		ctx:      ctx,
		inSlots:  make(map[string]int),
		outSlots: make(map[string]int),
	}
	slotOf := make(map[string]int)
	alloc := func(name string) int {
		if s, ok := slotOf[name]; ok {
			return s
		}
		s := ex.nSlots
		ex.nSlots++
		slotOf[name] = s
		return s
	}
	for name, t := range g.Initializers {
		ex.initSlots = append(ex.initSlots, slotInit{slot: alloc(name), t: t})
	}
	for _, vi := range g.Inputs {
		ex.inSlots[vi.Name] = alloc(vi.Name)
	}
	reg := buildRegistry()
	lastUse := computeLastUse(g, order)
	for i, n := range order {
		k, err := kernelFor(reg, cfg, n)
		if err != nil {
			return nil, err
		}
		st := planStep{node: n, kernel: k}
		for _, in := range n.Inputs {
			s, ok := slotOf[in]
			if !ok {
				return nil, fmt.Errorf("infer: planned: node %q input %q has no slot", n.Name, in)
			}
			st.in = append(st.in, s)
		}
		for _, out := range n.Outputs {
			st.out = append(st.out, alloc(out))
		}
		for _, dead := range lastUse[i] {
			if s, ok := slotOf[dead]; ok {
				st.free = append(st.free, s)
			}
		}
		ex.steps = append(ex.steps, st)
	}
	for _, o := range g.Outputs {
		s, ok := slotOf[o]
		if !ok {
			return nil, fmt.Errorf("infer: planned: graph output %q has no slot", o)
		}
		ex.outSlots[o] = s
	}
	return ex, nil
}

func (e *plannedExecutor) Graph() *graph.Graph { return e.g }
func (e *plannedExecutor) Config() Config      { return e.cfg }

func (e *plannedExecutor) Run(inputs map[string]*tensor.Tensor) (map[string]*tensor.Tensor, error) {
	slots := make([]*tensor.Tensor, e.nSlots)
	for _, si := range e.initSlots {
		slots[si.slot] = si.t
	}
	for name, s := range e.inSlots {
		t, ok := inputs[name]
		if !ok {
			return nil, fmt.Errorf("%w: %q", ErrMissingInput, name)
		}
		slots[s] = t
	}
	ins := make([]*tensor.Tensor, 0, 8)
	for _, st := range e.steps {
		ins = ins[:0]
		for _, s := range st.in {
			t := slots[s]
			if t == nil {
				return nil, fmt.Errorf("infer: planned: node %q reads empty slot", st.node.Name)
			}
			ins = append(ins, t)
		}
		outs, err := runKernel(e.ctx, st.kernel, st.node, ins)
		if err != nil {
			return nil, err
		}
		for i, s := range st.out {
			slots[s] = outs[i]
		}
		for _, s := range st.free {
			slots[s] = nil
		}
	}
	out := make(map[string]*tensor.Tensor, len(e.outSlots))
	for name, s := range e.outSlots {
		if slots[s] == nil {
			return nil, fmt.Errorf("infer: planned: graph output %q not produced", name)
		}
		out[name] = slots[s]
	}
	return out, nil
}
