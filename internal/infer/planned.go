package infer

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/ops"
	"repro/internal/rewrite"
	"repro/internal/tensor"
)

// plannedExecutor is the TVM-like ahead-of-time engine. At load time it
// optionally optimizes the graph (operator fusion), infers all shapes,
// resolves the kernel and operand slots for every step and computes tensor
// lifetimes; Run replays the fixed plan against a slot table.
type plannedExecutor struct {
	g     *graph.Graph
	cfg   Config
	ctx   *ops.Context
	arena *arena
	steps []planStep
	// slot assignment
	nSlots    int
	initSlots []slotInit
	inSlots   map[string]int
	outSlots  map[string]int
	// persistent Run state (Executors are not concurrently reusable).
	slots []*tensor.Tensor
	ins   []*tensor.Tensor
}

type planStep struct {
	node   *graph.Node
	kernel ops.Kernel
	in     []int
	out    []int
	free   []int // slots dead after this step
}

type slotInit struct {
	slot int
	t    *tensor.Tensor
}

var _ Executor = (*plannedExecutor)(nil)

func newPlanned(orig *graph.Graph, cfg Config) (*plannedExecutor, error) {
	g := orig
	if cfg.OptLevel > 0 {
		g = orig.Clone()
		rewrite.Optimize(g, cfg.OptLevel)
		if err := g.Validate(); err != nil {
			return nil, fmt.Errorf("infer: planned: optimized graph invalid: %w", err)
		}
	}
	if _, err := ops.InferShapes(g); err != nil {
		return nil, fmt.Errorf("infer: planned: %w", err)
	}
	ctx, err := buildContext(cfg)
	if err != nil {
		return nil, fmt.Errorf("infer: planned: %w", err)
	}
	order, err := g.TopoSort()
	if err != nil {
		return nil, fmt.Errorf("infer: planned: %w", err)
	}

	ex := &plannedExecutor{
		g:        g,
		cfg:      cfg,
		ctx:      ctx,
		arena:    newArena(),
		inSlots:  make(map[string]int),
		outSlots: make(map[string]int),
	}
	// Kernel outputs come from the plan's arena so repeated Runs reuse
	// intermediate buffers instead of allocating.
	ctx.Alloc = ex.arena
	slotOf := make(map[string]int)
	alloc := func(name string) int {
		if s, ok := slotOf[name]; ok {
			return s
		}
		s := ex.nSlots
		ex.nSlots++
		slotOf[name] = s
		return s
	}
	for name, t := range g.Initializers {
		ex.initSlots = append(ex.initSlots, slotInit{slot: alloc(name), t: t})
	}
	for _, vi := range g.Inputs {
		ex.inSlots[vi.Name] = alloc(vi.Name)
	}
	reg := buildRegistry()
	lastUse := computeLastUse(g, order)
	for i, n := range order {
		k, err := kernelFor(reg, cfg, n)
		if err != nil {
			return nil, err
		}
		st := planStep{node: n, kernel: k}
		for _, in := range n.Inputs {
			s, ok := slotOf[in]
			if !ok {
				return nil, fmt.Errorf("infer: planned: node %q input %q has no slot", n.Name, in)
			}
			st.in = append(st.in, s)
		}
		for _, out := range n.Outputs {
			st.out = append(st.out, alloc(out))
		}
		for _, dead := range lastUse[i] {
			if s, ok := slotOf[dead]; ok {
				st.free = append(st.free, s)
			}
		}
		ex.steps = append(ex.steps, st)
	}
	for _, o := range g.Outputs {
		s, ok := slotOf[o]
		if !ok {
			return nil, fmt.Errorf("infer: planned: graph output %q has no slot", o)
		}
		ex.outSlots[o] = s
	}
	return ex, nil
}

func (e *plannedExecutor) Graph() *graph.Graph { return e.g }
func (e *plannedExecutor) Config() Config      { return e.cfg }

func (e *plannedExecutor) Run(inputs map[string]*tensor.Tensor) (map[string]*tensor.Tensor, error) {
	if e.slots == nil {
		e.slots = make([]*tensor.Tensor, e.nSlots)
		e.ins = make([]*tensor.Tensor, 0, 8)
	}
	slots := e.slots
	for i := range slots {
		slots[i] = nil
	}
	for _, si := range e.initSlots {
		slots[si.slot] = si.t
	}
	for name, s := range e.inSlots {
		t, ok := inputs[name]
		if !ok {
			return nil, fmt.Errorf("%w: %q", ErrMissingInput, name)
		}
		slots[s] = t
	}
	ins := e.ins
	for _, st := range e.steps {
		ins = ins[:0]
		for _, s := range st.in {
			t := slots[s]
			if t == nil {
				e.arena.reclaimExcept(nil)
				return nil, fmt.Errorf("infer: planned: node %q reads empty slot", st.node.Name)
			}
			ins = append(ins, t)
		}
		outs, err := runKernel(e.ctx, st.kernel, st.node, ins)
		if err != nil {
			e.arena.reclaimExcept(nil)
			return nil, err
		}
		for i, s := range st.out {
			slots[s] = outs[i]
		}
		for _, s := range st.free {
			slots[s] = nil
		}
	}
	e.ins = ins
	out := make(map[string]*tensor.Tensor, len(e.outSlots))
	for name, s := range e.outSlots {
		if slots[s] == nil {
			e.arena.reclaimExcept(nil)
			return nil, fmt.Errorf("infer: planned: graph output %q not produced", name)
		}
		out[name] = slots[s]
	}
	// Everything except the escaping outputs goes back to the arena for the
	// next Run.
	e.arena.reclaimExcept(out)
	return out, nil
}
