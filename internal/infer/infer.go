// Package infer provides the inference runtimes of the MVTEE stack. Two
// executor families exist, mirroring the paper's ONNX Runtime and TVM graph
// executor variants (§4.2, §6.1):
//
//   - Interp — a graph-interpreting engine that resolves the node order and
//     dispatches kernels at call time ("ORT-like");
//   - Planned — an ahead-of-time engine that performs shape inference,
//     optional graph optimization and execution planning once at load time
//     ("TVM-like"), then replays the plan per call.
//
// Both produce functionally equivalent results; their implementation paths,
// allocation behaviour and optimization pipelines differ, giving the
// inference-instance-level diversification axis of the variant pool.
package infer

import (
	"errors"
	"fmt"

	"repro/internal/blas"
	"repro/internal/graph"
	"repro/internal/ops"
	"repro/internal/tensor"
)

// RuntimeKind selects the executor family.
type RuntimeKind int

// Executor families.
const (
	Interp  RuntimeKind = iota + 1 // ORT-like graph interpreter
	Planned                        // TVM-like pre-planned executor
)

func (k RuntimeKind) String() string {
	switch k {
	case Interp:
		return "interp"
	case Planned:
		return "planned"
	default:
		return fmt.Sprintf("RuntimeKind(%d)", int(k))
	}
}

// Config describes one inference-instance configuration: the runtime family
// plus the kernel-level and hardening knobs that diversify variants. The zero
// value means Interp, naive BLAS, direct convolution, sequential execution,
// no hardening.
type Config struct {
	// Runtime selects the executor family; zero means Interp.
	Runtime RuntimeKind
	// BLAS selects the linear-algebra backend; zero means blas.Naive.
	BLAS blas.Kind
	// ConvAlgo selects the convolution kernel; zero means direct.
	ConvAlgo ops.ConvAlgo
	// Parallelism bounds intra-op worker goroutines; <=1 means sequential.
	Parallelism int
	// OptLevel enables load-time graph optimization in the Planned runtime
	// (>=1 fuses Conv+BatchNorm and Conv+Relu). Ignored by Interp.
	OptLevel int

	// Hardening flags. These do not change correct execution; the faults
	// package consults them to decide how an injected vulnerability
	// manifests (silent corruption vs. detected crash).
	CheckFinite   bool // error-handling variant: NaN/Inf output -> error
	BoundsCheck   bool // bounds-checking build (e.g., SGXBounds-style)
	Sanitizer     bool // sanitizer build (ASan-style)
	ASLR          bool // address-space layout randomization
	StackProtect  bool // stack canaries
	SecondaryExec bool // reserved: ABI/ISA-diverse backend

	// KernelWrapper, if set, wraps the kernel chosen for each node; the
	// faults package uses it to inject vulnerabilities into specific
	// operators. The wrapper receives the node name.
	KernelWrapper func(nodeName string, k ops.Kernel) ops.Kernel
	// BLASWrapper, if set, wraps the BLAS backend; the faults package uses
	// it for library-level fault injection (FrameFlip-style).
	BLASWrapper func(b blas.Backend) blas.Backend
}

func (c Config) runtime() RuntimeKind {
	if c.Runtime == 0 {
		return Interp
	}
	return c.Runtime
}

func (c Config) blasKind() blas.Kind {
	if c.BLAS == 0 {
		return blas.Naive
	}
	return c.BLAS
}

// String renders a compact human-readable description of the configuration.
func (c Config) String() string {
	algo := c.ConvAlgo
	if algo == 0 {
		algo = ops.ConvDirect
	}
	return fmt.Sprintf("%s/blas=%s/conv=%s/par=%d/opt=%d", c.runtime(), c.blasKind(), algo, c.Parallelism, c.OptLevel)
}

// Executor runs a model graph. Implementations are safe for sequential reuse;
// a single executor must not be shared across goroutines concurrently.
type Executor interface {
	// Run executes the model on the named inputs and returns the named
	// graph outputs.
	Run(inputs map[string]*tensor.Tensor) (map[string]*tensor.Tensor, error)
	// Graph returns the (possibly optimized) model being executed.
	Graph() *graph.Graph
	// Config returns the configuration the executor was built with.
	Config() Config
}

// ErrMissingInput reports an absent required graph input.
var ErrMissingInput = errors.New("infer: missing graph input")

// New builds an executor for g under cfg. The graph is validated; Planned
// runtimes additionally require statically inferable shapes.
func New(g *graph.Graph, cfg Config) (Executor, error) {
	if err := g.Validate(); err != nil {
		return nil, fmt.Errorf("infer: %w", err)
	}
	switch cfg.runtime() {
	case Interp:
		return newInterp(g, cfg)
	case Planned:
		return newPlanned(g, cfg)
	default:
		return nil, fmt.Errorf("infer: unknown runtime kind %d", cfg.Runtime)
	}
}

// buildContext assembles the ops execution context for cfg.
func buildContext(cfg Config) (*ops.Context, error) {
	be, err := blas.New(cfg.blasKind())
	if err != nil {
		return nil, err
	}
	if cfg.BLASWrapper != nil {
		be = cfg.BLASWrapper(be)
	}
	return &ops.Context{
		BLAS:        be,
		ConvAlgo:    cfg.ConvAlgo,
		Parallelism: cfg.Parallelism,
		CheckFinite: cfg.CheckFinite,
	}, nil
}

// buildRegistry assembles the kernel registry for cfg, applying per-node
// wrappers lazily via lookup.
func buildRegistry() ops.Registry { return ops.NewRegistry() }

func kernelFor(reg ops.Registry, cfg Config, n *graph.Node) (ops.Kernel, error) {
	k, ok := reg[n.Op]
	if !ok {
		return nil, fmt.Errorf("infer: no kernel for op %q (node %q)", n.Op, n.Name)
	}
	if cfg.KernelWrapper != nil {
		k = cfg.KernelWrapper(n.Name, k)
	}
	return k, nil
}

// runKernel invokes k and applies the CheckFinite policy.
func runKernel(ctx *ops.Context, k ops.Kernel, n *graph.Node, ins []*tensor.Tensor) ([]*tensor.Tensor, error) {
	outs, err := k(ctx, n, ins)
	if err != nil {
		return nil, fmt.Errorf("infer: node %q (%s): %w", n.Name, n.Op, err)
	}
	if len(outs) != len(n.Outputs) {
		return nil, fmt.Errorf("infer: node %q produced %d outputs, declares %d", n.Name, len(outs), len(n.Outputs))
	}
	if ctx.CheckFinite {
		for _, o := range outs {
			if o.HasNaN() {
				return nil, fmt.Errorf("infer: node %q (%s): %w", n.Name, n.Op, ops.ErrNonFinite)
			}
		}
	}
	return outs, nil
}

func gatherOutputs(g *graph.Graph, values map[string]*tensor.Tensor) (map[string]*tensor.Tensor, error) {
	out := make(map[string]*tensor.Tensor, len(g.Outputs))
	for _, name := range g.Outputs {
		t, ok := values[name]
		if !ok {
			return nil, fmt.Errorf("infer: graph output %q was not produced", name)
		}
		out[name] = t
	}
	return out, nil
}
