// Package manifest defines the TEE-OS manifest format of MVTEE — the
// analogue of Gramine's manifest files (§5.1–5.2). A manifest pins the
// entrypoint, the hash-pinned trusted files, the encrypted-files set, and the
// allowlists for syscalls, environment variables and command-line arguments
// that together minimize a variant's attack surface. MVTEE's two-stage
// design adds a second-stage manifest installed once, post-launch, by the
// init-variant.
package manifest

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"sort"
)

// Manifest regulates one TEE application's execution environment.
type Manifest struct {
	// Entrypoint names the executable the TEE OS runs.
	Entrypoint string `json:"entrypoint"`
	// TrustedFiles maps path -> hex SHA-256; files are readable only if
	// their content matches at open time.
	TrustedFiles map[string]string `json:"trusted_files,omitempty"`
	// EncryptedFiles lists paths readable only through the protected-file
	// decryption layer (key installed at bootstrap).
	EncryptedFiles []string `json:"encrypted_files,omitempty"`
	// AllowedSyscalls is the syscall allowlist; empty means deny-all
	// except the always-available core set.
	AllowedSyscalls []string `json:"allowed_syscalls,omitempty"`
	// AllowedEnv lists host environment variables passed through; all
	// others are blocked (§6.5: blocked by default).
	AllowedEnv []string `json:"allowed_env,omitempty"`
	// AllowHostArgs permits host-provided command-line arguments; MVTEE
	// variant manifests leave this false.
	AllowHostArgs bool `json:"allow_host_args,omitempty"`
	// TwoStage enables the one-time second-stage manifest installation
	// interface (MVTEE's Gramine extension, §5.2).
	TwoStage bool `json:"two_stage,omitempty"`
	// ExecFromEncryptedOnly mandates that the second-stage entrypoint is
	// loaded from an encrypted file (enforced for main variants).
	ExecFromEncryptedOnly bool `json:"exec_from_encrypted_only,omitempty"`
}

// Errors.
var ErrInvalid = errors.New("manifest: invalid")

// Validate checks internal consistency.
func (m *Manifest) Validate() error {
	if m.Entrypoint == "" {
		return fmt.Errorf("%w: empty entrypoint", ErrInvalid)
	}
	for p, h := range m.TrustedFiles {
		if _, err := hex.DecodeString(h); err != nil || len(h) != 64 {
			return fmt.Errorf("%w: trusted file %q has malformed hash", ErrInvalid, p)
		}
	}
	return nil
}

// Clone returns a deep copy.
func (m *Manifest) Clone() *Manifest {
	c := *m
	if m.TrustedFiles != nil {
		c.TrustedFiles = make(map[string]string, len(m.TrustedFiles))
		for k, v := range m.TrustedFiles {
			c.TrustedFiles[k] = v
		}
	}
	c.EncryptedFiles = append([]string(nil), m.EncryptedFiles...)
	c.AllowedSyscalls = append([]string(nil), m.AllowedSyscalls...)
	c.AllowedEnv = append([]string(nil), m.AllowedEnv...)
	return &c
}

// AddTrustedFile pins a file's content hash.
func (m *Manifest) AddTrustedFile(path string, content []byte) {
	if m.TrustedFiles == nil {
		m.TrustedFiles = make(map[string]string)
	}
	sum := sha256.Sum256(content)
	m.TrustedFiles[path] = hex.EncodeToString(sum[:])
}

// IsEncrypted reports whether path is in the encrypted-files set. Entries
// ending in "/*" match any path under that prefix (the init-variant manifest
// covers a whole pool directory whose exact file names are assigned at
// runtime).
func (m *Manifest) IsEncrypted(path string) bool {
	for _, p := range m.EncryptedFiles {
		if p == path {
			return true
		}
		if n := len(p); n >= 2 && p[n-2:] == "/*" && len(path) > n-2 && path[:n-1] == p[:n-1] {
			return true
		}
	}
	return false
}

// SyscallAllowed reports whether the named syscall passes the allowlist.
// The core set (read, write, exit) is always available.
func (m *Manifest) SyscallAllowed(name string) bool {
	switch name {
	case "read", "write", "exit":
		return true
	}
	for _, s := range m.AllowedSyscalls {
		if s == name {
			return true
		}
	}
	return false
}

// EnvAllowed reports whether the named host environment variable passes.
func (m *Manifest) EnvAllowed(name string) bool {
	for _, e := range m.AllowedEnv {
		if e == name {
			return true
		}
	}
	return false
}

// Marshal renders the manifest canonically (sorted keys) so its bytes can be
// measured and attested.
func (m *Manifest) Marshal() ([]byte, error) {
	c := m.Clone()
	sort.Strings(c.EncryptedFiles)
	sort.Strings(c.AllowedSyscalls)
	sort.Strings(c.AllowedEnv)
	return json.MarshalIndent(c, "", "  ") // json sorts map keys
}

// Unmarshal parses and validates a manifest.
func Unmarshal(b []byte) (*Manifest, error) {
	var m Manifest
	if err := json.Unmarshal(b, &m); err != nil {
		return nil, fmt.Errorf("manifest: parse: %w", err)
	}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	return &m, nil
}

// Digest returns the SHA-256 of the canonical encoding.
func (m *Manifest) Digest() ([32]byte, error) {
	b, err := m.Marshal()
	if err != nil {
		return [32]byte{}, err
	}
	return sha256.Sum256(b), nil
}
