package manifest

import (
	"reflect"
	"testing"
)

func TestValidate(t *testing.T) {
	m := &Manifest{Entrypoint: "bin/app"}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := (&Manifest{}).Validate(); err == nil {
		t.Fatal("empty entrypoint accepted")
	}
	bad := &Manifest{Entrypoint: "a", TrustedFiles: map[string]string{"f": "nothex"}}
	if err := bad.Validate(); err == nil {
		t.Fatal("malformed hash accepted")
	}
}

func TestAddTrustedFile(t *testing.T) {
	m := &Manifest{Entrypoint: "a"}
	m.AddTrustedFile("bin/app", []byte("content"))
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(m.TrustedFiles["bin/app"]) != 64 {
		t.Fatal("hash not recorded")
	}
}

func TestIsEncrypted(t *testing.T) {
	m := &Manifest{Entrypoint: "a", EncryptedFiles: []string{"exact.pf", "pool/*"}}
	cases := []struct {
		path string
		want bool
	}{
		{"exact.pf", true},
		{"exact.pf2", false},
		{"pool/p0/graph.pf", true},
		{"pool/x", true},
		{"pool", false},
		{"poolx/y", false},
		{"other", false},
	}
	for _, c := range cases {
		if got := m.IsEncrypted(c.path); got != c.want {
			t.Errorf("IsEncrypted(%q) = %v, want %v", c.path, got, c.want)
		}
	}
}

func TestSyscallAllowlist(t *testing.T) {
	m := &Manifest{Entrypoint: "a", AllowedSyscalls: []string{"connect"}}
	for _, core := range []string{"read", "write", "exit"} {
		if !m.SyscallAllowed(core) {
			t.Errorf("core syscall %q blocked", core)
		}
	}
	if !m.SyscallAllowed("connect") {
		t.Error("allowlisted syscall blocked")
	}
	if m.SyscallAllowed("ptrace") {
		t.Error("unlisted syscall allowed")
	}
}

func TestEnvAllowlist(t *testing.T) {
	m := &Manifest{Entrypoint: "a", AllowedEnv: []string{"LANG"}}
	if !m.EnvAllowed("LANG") || m.EnvAllowed("LD_PRELOAD") {
		t.Error("env allowlist wrong")
	}
}

func TestMarshalCanonical(t *testing.T) {
	m := &Manifest{
		Entrypoint:      "a",
		EncryptedFiles:  []string{"z", "a"},
		AllowedSyscalls: []string{"b", "a"},
		TrustedFiles:    map[string]string{},
	}
	m.AddTrustedFile("f2", []byte("2"))
	m.AddTrustedFile("f1", []byte("1"))
	b1, err := m.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	b2, _ := m.Marshal()
	if !reflect.DeepEqual(b1, b2) {
		t.Fatal("marshal not deterministic")
	}
	d1, _ := m.Digest()
	d2, _ := m.Digest()
	if d1 != d2 {
		t.Fatal("digest not stable")
	}

	got, err := Unmarshal(b1)
	if err != nil {
		t.Fatal(err)
	}
	if got.Entrypoint != "a" || len(got.TrustedFiles) != 2 {
		t.Fatal("roundtrip lost fields")
	}
	// Marshal must not mutate the original ordering.
	if m.EncryptedFiles[0] != "z" {
		t.Fatal("Marshal mutated the manifest")
	}
}

func TestUnmarshalRejectsInvalid(t *testing.T) {
	if _, err := Unmarshal([]byte("not json")); err == nil {
		t.Fatal("junk accepted")
	}
	if _, err := Unmarshal([]byte(`{"trusted_files":{"f":"xx"}}`)); err == nil {
		t.Fatal("invalid manifest accepted")
	}
}

func TestCloneDeep(t *testing.T) {
	m := &Manifest{Entrypoint: "a", EncryptedFiles: []string{"x"}, TrustedFiles: map[string]string{}}
	m.AddTrustedFile("f", []byte("v"))
	c := m.Clone()
	c.EncryptedFiles[0] = "y"
	c.TrustedFiles["f"] = "changed"
	if m.EncryptedFiles[0] != "x" || len(m.TrustedFiles["f"]) != 64 {
		t.Fatal("Clone is shallow")
	}
}
