package pipesim

import (
	"fmt"
	"time"

	"repro/internal/control"
)

// ServeMetrics is SimulateServe's summary: request-level performance plus the
// knob trajectory the replayed batch loop steered through, one entry per
// control epoch (index 0 is the starting window). With Profile.AdaptiveBatch
// off the trajectory is constant — the open-loop baseline to diff against.
type ServeMetrics struct {
	Throughput float64       // requests per second
	Latency    time.Duration // mean request latency (arrival -> batch completion)
	Requests   uint64        // requests served across all flushed batches
	FlushSize  uint64        // batches flushed because they reached MaxBatch
	FlushTimer uint64        // batches flushed by the MaxDelay deadline
	Knobs      []control.BatchKnobs
}

// serveLimits mirrors the live controller's default clamps
// (control.Limits.fill) so the replayed law moves inside the same box.
func serveLimits(lim control.Limits) control.Limits {
	if lim.MinBatch <= 0 {
		lim.MinBatch = 1
	}
	if lim.MaxBatch <= 0 {
		lim.MaxBatch = 64
	}
	if lim.MinDelay <= 0 {
		lim.MinDelay = 50 * time.Microsecond
	}
	if lim.MaxDelay <= 0 {
		lim.MaxDelay = 20 * time.Millisecond
	}
	return lim
}

// SimulateServe runs a closed-loop serving simulation over the profile:
// `clients` zero-think-time clients each hold one outstanding request; the
// front door collects arrivals into micro-batches (flush on MaxBatch fill or
// on the MaxDelay deadline after the batch's first arrival, exactly the live
// scheduler's rule), and a serial engine executes one batch at a time with
// the profile's sequential pipeline latency. Every request's completion
// re-arrives its client, which is what couples the batching window to the
// offered concurrency — the regime where the live controller's overshoot
// state (MaxBatch grown past the client count, every flush stalling on the
// deadline) appears and BatchStep's slow-start memory earns its keep.
//
// With p.AdaptiveBatch, control.BatchStep re-sizes the knobs every
// adaptEveryBatches flushes from that epoch's flush mix; the returned
// trajectory replays deterministically because the whole simulation is a pure
// function of (profile, clients, batches, starting knobs).
func SimulateServe(p *Profile, clients, batches int, knobs control.BatchKnobs, lim control.Limits) (ServeMetrics, error) {
	if err := p.Validate(); err != nil {
		return ServeMetrics{}, err
	}
	if clients <= 0 || batches <= 0 {
		return ServeMetrics{}, fmt.Errorf("pipesim: need at least one client and one batch")
	}
	lim = serveLimits(lim)
	if knobs.MaxBatch <= 0 {
		knobs.MaxBatch = lim.MinBatch
	}
	if knobs.MaxDelay <= 0 {
		knobs.MaxDelay = lim.MinDelay
	}

	// One batch's engine latency: the sequential pipeline traversal. Stage
	// costs in the profile are per-batch, so engine latency is fill-invariant
	// — the simulator's analogue of the amortization that makes batching pay.
	one, err := Simulate(p, 1, true, 0)
	if err != nil {
		return ServeMetrics{}, err
	}
	engineLat := one.Latency

	// Future arrivals, sorted ascending. Initial arrivals are the clients'
	// first requests at t=0; re-arrivals are batch completions, which are
	// monotone non-decreasing (serial engine), so appending keeps the queue
	// sorted — no heap needed.
	arrivals := make([]time.Duration, clients)

	var (
		m          ServeMetrics
		st         control.BatchState
		engineFree time.Duration
		latencySum time.Duration
		served     int
		lastDone   time.Duration
		// Epoch deltas for the replayed law.
		epSize, epTimer uint64
		epFill          int
	)
	m.Knobs = append(m.Knobs, knobs)

	for flushed := 0; flushed < batches; flushed++ {
		t0 := arrivals[0]
		deadline := t0 + knobs.MaxDelay
		n := 1
		for n < len(arrivals) && n < knobs.MaxBatch && arrivals[n] <= deadline {
			n++
		}
		var flushAt time.Duration
		if n == knobs.MaxBatch {
			flushAt = arrivals[n-1] // filled: flush when the last member lands
			m.FlushSize++
			epSize++
		} else {
			flushAt = deadline // deadline fired first
			m.FlushTimer++
			epTimer++
		}
		done := max(flushAt, engineFree) + engineLat
		engineFree = done
		lastDone = done
		for i := 0; i < n; i++ {
			latencySum += done - arrivals[i]
		}
		served += n
		epFill += n
		// Members re-arrive at completion; the queue stays sorted because
		// completions never decrease.
		arrivals = arrivals[n:]
		for i := 0; i < n; i++ {
			arrivals = append(arrivals, done)
		}

		if p.AdaptiveBatch && (flushed+1)%adaptEveryBatches == 0 {
			sig := control.BatchSignals{
				FlushSize:  epSize,
				FlushTimer: epTimer,
				MeanFill:   float64(epFill) / float64(epSize+epTimer),
			}
			epSize, epTimer, epFill = 0, 0, 0
			knobs = control.BatchStep(sig, knobs, lim, &st)
			m.Knobs = append(m.Knobs, knobs)
		}
	}

	if lastDone <= 0 {
		lastDone = time.Nanosecond
	}
	m.Throughput = float64(served) / lastDone.Seconds()
	m.Latency = latencySum / time.Duration(served)
	m.Requests = uint64(served)
	return m, nil
}
