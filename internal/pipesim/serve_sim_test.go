package pipesim

import (
	"testing"
	"time"

	"repro/internal/control"
)

// TestAdaptiveBatchReplaysOvershootDiscovery drives the replayed batch loop
// closed-loop against 8 zero-think-time clients starting from MaxBatch=4 and
// asserts the exact knob trajectory the live controller's slow-start law
// produces: grow 4→8 (full size flushes), probe 8→16, discover the overshoot
// (16 exceeds the offered concurrency, every flush stalls on the deadline),
// revert to 8 and learn it as a ceiling, then hold. The whole run is a pure
// function of its inputs, so a second run must reproduce it bit for bit.
func TestAdaptiveBatchReplaysOvershootDiscovery(t *testing.T) {
	p := &Profile{
		Stages:        []StageProfile{{Service: []time.Duration{100 * time.Microsecond}}},
		AdaptiveBatch: true,
	}
	const clients, epochs = 8, 8
	batches := epochs * adaptEveryBatches
	start := control.BatchKnobs{MaxBatch: 4, MaxDelay: 2 * time.Millisecond}

	m, err := SimulateServe(p, clients, batches, start, control.Limits{})
	if err != nil {
		t.Fatal(err)
	}
	wantBatch := []int{4, 8, 16, 8, 8, 8, 8, 8, 8} // start + one entry per epoch
	if len(m.Knobs) != len(wantBatch) {
		t.Fatalf("trajectory has %d entries, want %d: %+v", len(m.Knobs), len(wantBatch), m.Knobs)
	}
	for i, k := range m.Knobs {
		if k.MaxBatch != wantBatch[i] {
			t.Fatalf("epoch %d MaxBatch %d, want %d (trajectory %+v)", i, k.MaxBatch, wantBatch[i], m.Knobs)
		}
		if k.MaxDelay != start.MaxDelay {
			t.Fatalf("epoch %d moved MaxDelay to %v; this load never justifies a delay move", i, k.MaxDelay)
		}
	}
	// The overshoot epoch is the only one that stalls on the deadline.
	if m.FlushTimer == 0 || m.FlushSize == 0 {
		t.Fatalf("flush mix size=%d timer=%d: expected both regimes in this trajectory", m.FlushSize, m.FlushTimer)
	}

	// Deterministic replay: same inputs, same everything.
	m2, err := SimulateServe(p, clients, batches, start, control.Limits{})
	if err != nil {
		t.Fatal(err)
	}
	if m2.Throughput != m.Throughput || m2.Latency != m.Latency ||
		m2.FlushSize != m.FlushSize || m2.FlushTimer != m.FlushTimer {
		t.Fatalf("replay diverged: %+v vs %+v", m2, m)
	}
	for i := range m.Knobs {
		if m2.Knobs[i] != m.Knobs[i] {
			t.Fatalf("replay knob trajectory diverged at %d: %+v vs %+v", i, m2.Knobs, m.Knobs)
		}
	}

	// Open loop holds the starting knobs: its batches never fill past the
	// static window, while the adaptive loop converges its fill toward the
	// offered concurrency (8 clients) — the thing the batch loop is for.
	p.AdaptiveBatch = false
	open, err := SimulateServe(p, clients, batches, start, control.Limits{})
	if err != nil {
		t.Fatal(err)
	}
	if len(open.Knobs) != 1 {
		t.Fatalf("open-loop trajectory %+v, want the starting knobs only", open.Knobs)
	}
	openFill := float64(open.Requests) / float64(open.FlushSize+open.FlushTimer)
	adaptFill := float64(m.Requests) / float64(m.FlushSize+m.FlushTimer)
	if openFill != float64(start.MaxBatch) {
		t.Fatalf("open-loop mean fill %.1f, want pinned at the static window %d", openFill, start.MaxBatch)
	}
	if adaptFill <= openFill {
		t.Fatalf("adaptive mean fill %.1f did not beat open-loop %.1f", adaptFill, openFill)
	}
}
