// Package pipesim is a deterministic discrete-event simulator of MVTEE's
// partitioned multi-variant pipeline on a multicore TEE testbed.
//
// The paper's evaluation runs on dual 36-core Xeons with SGX, where pipeline
// stages execute on distinct cores; this repository's host may have far
// fewer cores, so wall-clock runs cannot exhibit the compute-communication
// overlap the paper measures. pipesim substitutes the missing hardware: the
// per-stage per-variant service times, checkpoint transfer costs and
// consistency-check costs are *calibrated from real executions* of this
// repository's runtimes (see Calibrate), and the monitor's scheduling
// semantics — hybrid slow/fast path, unanimous-sync vs majority-quorum-async
// checkpoints, FIFO variant servers, bounded in-flight depth — are replayed
// exactly. A TEEFactor scales the communication/crypto costs to model
// SGX-class enclave transition and secure-memory overheads.
package pipesim

import (
	"fmt"
	"sort"
	"strconv"
	"time"

	"repro/internal/control"
	"repro/internal/telemetry"
)

// Adaptive-window replay parameters, mirroring the live controller's
// defaults (control.Config.Headroom, Limits.MaxWindow) with the epoch
// expressed in batches — the simulator has no wall clock.
const (
	adaptEveryBatches = 32
	adaptHeadroom     = 1.25
	adaptMaxWindow    = 64
)

// StageProfile carries the calibrated costs of one pipeline stage.
//
// The monitor serves each stage with one checkpoint thread (as the live
// engine's stage worker does), so TransferIn, TransferOut and Check occupy a
// serial per-stage monitor resource: in pipelined execution, checkpoint
// handling for consecutive batches at the same stage cannot overlap, which
// is why encryption and checkpointing consume a larger share of pipelined
// performance (Figure 10).
type StageProfile struct {
	// Service is the compute time of each variant of this stage.
	Service []time.Duration
	// TransferIn is the monitor-side cost of dispatching this stage's
	// input checkpoint to all its variants (serialize + AES-GCM seal),
	// already scaled by TEEFactor.
	TransferIn time.Duration
	// TransferOut is the monitor-side cost of receiving and decrypting all
	// variants' results, already scaled by TEEFactor.
	TransferOut time.Duration
	// Check is the consistency-evaluation cost at this stage's checkpoint
	// (zero on the fast path), already scaled by TEEFactor.
	Check time.Duration
	// Deps lists the stages whose checkpoints feed this stage; empty means
	// the stage consumes the model input.
	Deps []int
	// Output marks stages whose checkpoint contributes to the model
	// output.
	Output bool
}

// Profile is a complete simulation model.
type Profile struct {
	Stages []StageProfile
	// Async enables majority-quorum forwarding (Figure 8).
	Async bool
	// Cores bounds simultaneously computing variants; 0 means unbounded
	// (the paper's testbed has more cores than variants in every
	// configuration). When the variant count exceeds Cores, every service
	// time is scaled by demand/Cores — a static processor-sharing
	// approximation of time-multiplexing, adequate for locating the knee
	// where replication outruns the machine.
	Cores int
	// StageTimeout is the straggler deadline per checkpoint (the engine's
	// EngineConfig.StageTimeout); zero disables it. A variant that has not
	// finished within the deadline of its dispatch is dropped from the
	// checkpoint: the gather completes at the deadline with the survivors,
	// and the straggler's server is assumed hot-replaced from the spare
	// pool (available again at the deadline). Single-variant stages are
	// unaffected — there is no quorum to fall back on.
	StageTimeout time.Duration
	// InflightWindow models the engine's per-stage credit budget
	// (EngineConfig.InflightWindow): batch b cannot be dispatched at a stage
	// until batch b−W's checkpoint gather has fully closed there — every
	// variant arrived or was pruned at the deadline, which in async mode is
	// later than the quorum forward point. This is what bounds a stage's
	// straggler backlog. Zero disables the window.
	InflightWindow int
	// AdaptiveWindow replays the control plane's inflight-window loop inside
	// the simulation: every adaptEveryBatches batches the effective window is
	// re-sized by the same exported law the live controller applies
	// (control.LittleWindow) from the simulated arrival rate and the p90
	// simulated gather latency, clamped like the controller's defaults.
	// InflightWindow is the starting window; zero (feature off) disables
	// adaptation too, mirroring the live controller's refusal to impose a
	// window on a deployment that turned windowing off.
	AdaptiveWindow bool
	// AdaptiveBatch replays the control plane's micro-batching loop inside
	// SimulateServe: every adaptEveryBatches flushed batches the front-end
	// window is re-sized by the same exported law the live controller applies
	// (control.BatchStep, slow-start memory included) from the simulated
	// flush-reason mix and mean batch fill. Off, SimulateServe runs the
	// batching window open-loop at its starting knobs.
	AdaptiveBatch bool
	// Metrics, when non-nil, receives the simulated run under the same
	// series names the live engine emits (mvtee_engine_batches_total,
	// mvtee_engine_batch_latency_ns, per-stage mvtee_engine_gather_ns), so
	// simulated and measured runs can be compared on one dashboard.
	Metrics *telemetry.Registry
}

// Metrics mirrors the bench package's measurement summary.
type Metrics struct {
	Throughput float64 // batches per second
	Latency    time.Duration
}

// Validate checks profile consistency.
func (p *Profile) Validate() error {
	if len(p.Stages) == 0 {
		return fmt.Errorf("pipesim: empty profile")
	}
	for i, s := range p.Stages {
		if len(s.Service) == 0 {
			return fmt.Errorf("pipesim: stage %d has no variants", i)
		}
		for _, d := range s.Deps {
			if d < 0 || d >= i {
				return fmt.Errorf("pipesim: stage %d dep %d not topologically earlier", i, d)
			}
		}
	}
	return nil
}

// forwardTime computes when a stage's checkpoint releases downstream given
// its variants' finish times: the single-variant fast path forwards on
// completion; sync slow path waits for all variants plus the check; async
// slow path forwards at the majority quorum plus the check. A non-zero
// cutoff is the absolute straggler deadline: finishes past it are dropped
// from the checkpoint, which completes no later than the cutoff itself
// (the expiry tick prunes stragglers and votes with the survivors).
func forwardTime(fins []time.Duration, checkCost time.Duration, async bool, cutoff time.Duration) time.Duration {
	if len(fins) == 1 {
		return fins[0]
	}
	sorted := append([]time.Duration(nil), fins...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	var release time.Duration
	if async {
		quorum := len(sorted)/2 + 1 // strict majority
		release = sorted[quorum-1]
	} else {
		release = sorted[len(sorted)-1]
	}
	if cutoff > 0 && release > cutoff {
		release = cutoff
	}
	return release + checkCost
}

// lastFinish is when every variant of the stage has finished or — with a
// straggler deadline — been pruned at the cutoff (the bound that still
// gates output checkpoints in async mode).
func lastFinish(fins []time.Duration, cutoff time.Duration) time.Duration {
	m := time.Duration(0)
	for _, f := range fins {
		if cutoff > 0 && f > cutoff {
			f = cutoff
		}
		if f > m {
			m = f
		}
	}
	return m
}

// Simulate runs batches through the profile. sequential=true models the
// paper's sequential execution (each batch completes all stages before the
// next is admitted); otherwise batches stream with inFlight pipeline depth
// (0 means 2×stages, the engine default).
func Simulate(p *Profile, batches int, sequential bool, inFlight int) (Metrics, error) {
	if err := p.Validate(); err != nil {
		return Metrics{}, err
	}
	if batches <= 0 {
		return Metrics{}, fmt.Errorf("pipesim: need at least one batch")
	}
	if inFlight <= 0 {
		inFlight = 2 * len(p.Stages)
	}

	nStages := len(p.Stages)

	// Optional telemetry mirror: same series names as the live engine, fed
	// with simulated timestamps.
	var (
		mBatches  *telemetry.Counter
		mBatchNs  *telemetry.Histogram
		mGatherNs []*telemetry.Histogram
	)
	if p.Metrics != nil {
		mBatches = p.Metrics.Counter(telemetry.MetricEngineBatches)
		mBatchNs = p.Metrics.Histogram(telemetry.MetricEngineBatchNs)
		mGatherNs = make([]*telemetry.Histogram, nStages)
		for s := 0; s < nStages; s++ {
			mGatherNs[s] = p.Metrics.Histogram(telemetry.MetricEngineGatherNs,
				telemetry.L("stage", strconv.Itoa(s)))
		}
	}

	// Static processor-sharing contention when variant demand exceeds the
	// core budget.
	contention := 1.0
	if p.Cores > 0 {
		demand := 0
		for _, s := range p.Stages {
			demand += len(s.Service)
		}
		if demand > p.Cores {
			contention = float64(demand) / float64(p.Cores)
		}
	}
	svc := func(s, v int) time.Duration {
		return time.Duration(float64(p.Stages[s].Service[v]) * contention)
	}

	// Adaptive-window state: the effective credit budget starts at the
	// configured window and is re-sized at epoch boundaries from the same
	// pure law the live controller runs.
	effWindow := p.InflightWindow
	var gatherMax []time.Duration // per-batch max gather duration across stages
	if p.AdaptiveWindow && effWindow > 0 {
		gatherMax = make([]time.Duration, batches)
	}

	serverFree := make([][]time.Duration, nStages)
	for s := range serverFree {
		serverFree[s] = make([]time.Duration, len(p.Stages[s].Service))
	}
	// monitorFree models the per-stage checkpoint thread: transfer and check
	// work for consecutive batches at one stage serializes here.
	monitorFree := make([]time.Duration, nStages)
	complete := make([]time.Duration, batches)
	submit := make([]time.Duration, batches)
	forward := make([][]time.Duration, batches)
	// gatherClose is when a batch's checkpoint gather fully resolves at a
	// stage: the later of the forward point and the last variant's arrival
	// (or pruning). The credit window refunds here, not at forward time — in
	// async mode a forwarded gather still holds its credit until the final
	// straggler lands.
	gatherClose := make([][]time.Duration, batches)

	for b := 0; b < batches; b++ {
		switch {
		case b == 0:
			submit[b] = 0
		case sequential:
			submit[b] = complete[b-1]
		case b >= inFlight:
			submit[b] = complete[b-inFlight]
		default:
			submit[b] = submit[b-1] // streamed immediately
		}
		forward[b] = make([]time.Duration, nStages)
		gatherClose[b] = make([]time.Duration, nStages)

		var batchEnd time.Duration
		for s := 0; s < nStages; s++ {
			sp := &p.Stages[s]
			ready := submit[b]
			for _, d := range sp.Deps {
				if forward[b][d] > ready {
					ready = forward[b][d]
				}
			}
			// Per-stage credit window: dispatch of batch b waits until batch
			// b−W's gather closed at this stage (last variant arrived or was
			// pruned) and released its credit.
			if effWindow > 0 && b >= effWindow {
				if w := gatherClose[b-effWindow][s]; w > ready {
					ready = w
				}
			}
			// Input dispatch occupies the stage's monitor thread.
			xferStart := max(ready, monitorFree[s])
			dispatched := xferStart + sp.TransferIn
			monitorFree[s] = dispatched

			// Straggler deadline for this dispatch (single-variant stages
			// have no quorum to degrade to, so the deadline does not apply).
			var cutoff time.Duration
			if p.StageTimeout > 0 && len(sp.Service) > 1 {
				cutoff = dispatched + p.StageTimeout
			}

			fins := make([]time.Duration, len(sp.Service))
			for v := range sp.Service {
				start := dispatched
				if serverFree[s][v] > start {
					start = serverFree[s][v]
				}
				fins[v] = start + svc(s, v)
				serverFree[s][v] = fins[v]
				if cutoff > 0 && fins[v] > cutoff {
					// Timed out: the variant is dropped at the deadline and
					// its slot hot-replaced from the spare pool, so the
					// server is serviceable again at the cutoff.
					serverFree[s][v] = cutoff
				}
			}

			// Result collection + consistency evaluation occupy the monitor
			// thread again; async releases downstream at the majority
			// quorum, sync at the last variant.
			release := forwardTime(fins, 0, p.Async, cutoff)
			postStart := max(release, monitorFree[s])
			postDone := postStart + sp.TransferOut + sp.Check
			monitorFree[s] = postDone
			forward[b][s] = postDone
			gatherClose[b][s] = max(lastFinish(fins, cutoff), postDone)
			if mGatherNs != nil {
				mGatherNs[s].Observe(int64(gatherClose[b][s] - dispatched))
			}
			if gatherMax != nil {
				if d := gatherClose[b][s] - dispatched; d > gatherMax[b] {
					gatherMax[b] = d
				}
			}

			if sp.Output {
				// Output checkpoints must be fully validated before release
				// to the user, even in async mode.
				end := max(lastFinish(fins, cutoff), postDone-sp.TransferOut-sp.Check)
				end += sp.TransferOut + sp.Check
				if end > batchEnd {
					batchEnd = end
				}
			}
		}
		if batchEnd == 0 { // no explicit output stages: use the last stage
			batchEnd = forward[b][nStages-1]
		}
		complete[b] = batchEnd
		if mBatches != nil {
			mBatches.Inc()
			mBatchNs.Observe(int64(complete[b] - submit[b]))
		}
		// Epoch boundary: re-size the effective window with the controller's
		// exported law over the last epoch of simulated signals.
		if gatherMax != nil && (b+1)%adaptEveryBatches == 0 {
			lo := b + 1 - adaptEveryBatches
			// Epoch span: previous epoch's last completion to this one's —
			// submit times are useless here, a streamed run submits its whole
			// window at t=0.
			start := submit[lo]
			if lo > 0 {
				start = complete[lo-1]
			}
			if elapsed := complete[b] - start; elapsed > 0 {
				lambda := float64(adaptEveryBatches) / elapsed.Seconds()
				durs := append([]time.Duration(nil), gatherMax[lo:b+1]...)
				sort.Slice(durs, func(i, j int) bool { return durs[i] < durs[j] })
				p90 := durs[(len(durs)*9+9)/10-1]
				if w := control.LittleWindow(lambda, p90, adaptHeadroom); w > 0 {
					effWindow = min(max(w, 1), adaptMaxWindow)
				}
			}
		}
	}

	total := complete[batches-1] - submit[0]
	if total <= 0 {
		total = time.Nanosecond
	}
	var m Metrics
	m.Throughput = float64(batches) / total.Seconds()
	if sequential {
		var sum time.Duration
		for b := range complete {
			sum += complete[b] - submit[b]
		}
		m.Latency = sum / time.Duration(batches)
	} else {
		m.Latency = total / time.Duration(batches)
	}
	return m, nil
}

// SimulateBaseline models the unpartitioned original model: one server, one
// stage, no transfers or checks.
func SimulateBaseline(service time.Duration, batches int) Metrics {
	total := service * time.Duration(batches)
	return Metrics{
		Throughput: float64(batches) / total.Seconds(),
		Latency:    service,
	}
}
