package pipesim

import (
	"math"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/diversify"
	"repro/internal/monitor"
	"repro/internal/tensor"
)

const ms = time.Millisecond

// chain builds a linear pipeline profile with the given per-stage service
// times (single variant each).
func chain(svcs ...time.Duration) *Profile {
	p := &Profile{}
	for i, s := range svcs {
		sp := StageProfile{Service: []time.Duration{s}}
		if i > 0 {
			sp.Deps = []int{i - 1}
		}
		if i == len(svcs)-1 {
			sp.Output = true
		}
		p.Stages = append(p.Stages, sp)
	}
	return p
}

func approx(got, want, tol float64) bool {
	return math.Abs(got-want) <= tol*want
}

func TestSequentialLatencyIsSumOfStages(t *testing.T) {
	p := chain(10*ms, 20*ms, 30*ms)
	m, err := Simulate(p, 8, true, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !approx(m.Latency.Seconds(), 0.060, 0.01) {
		t.Fatalf("seq latency = %v, want 60ms", m.Latency)
	}
	if !approx(m.Throughput, 1/0.060, 0.01) {
		t.Fatalf("seq throughput = %v", m.Throughput)
	}
}

func TestPipelinedThroughputIsBottleneckBound(t *testing.T) {
	p := chain(10*ms, 30*ms, 10*ms)
	m, err := Simulate(p, 64, false, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Steady state: one batch per 30ms (the bottleneck stage).
	if !approx(m.Throughput, 1/0.030, 0.05) {
		t.Fatalf("pipe throughput = %v, want ~33.3/s", m.Throughput)
	}
}

func TestPipelinedBeatsSequentialOnBalancedChain(t *testing.T) {
	p := chain(10*ms, 10*ms, 10*ms, 10*ms, 10*ms)
	seq, _ := Simulate(p, 64, true, 0)
	pipe, _ := Simulate(p, 64, false, 0)
	speedup := pipe.Throughput / seq.Throughput
	if speedup < 4 { // ideal 5x, minus fill/drain
		t.Fatalf("pipeline speedup = %.2f, want ~5x on a balanced 5-stage chain", speedup)
	}
}

func TestSlowPathWaitsForAllVariantsSync(t *testing.T) {
	p := &Profile{Stages: []StageProfile{{
		Service: []time.Duration{10 * ms, 10 * ms, 50 * ms},
		Check:   1 * ms,
		Output:  true,
	}}}
	m, err := Simulate(p, 4, true, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !approx(m.Latency.Seconds(), 0.051, 0.01) {
		t.Fatalf("sync latency = %v, want straggler-bound 51ms", m.Latency)
	}
}

func TestAsyncReleasesAtQuorumButOutputWaits(t *testing.T) {
	// Two stages: MVX stage with straggler, then a fast stage. Async lets
	// stage 1 start at the quorum, so end-to-end latency is quorum-bound.
	p := &Profile{
		Async: true,
		Stages: []StageProfile{
			{Service: []time.Duration{10 * ms, 12 * ms, 60 * ms}, Check: 0},
			{Service: []time.Duration{5 * ms}, Deps: []int{0}, Output: true},
		},
	}
	m, err := Simulate(p, 1, true, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Quorum (2nd of 3) at 12ms + 5ms = 17ms.
	if !approx(m.Latency.Seconds(), 0.017, 0.05) {
		t.Fatalf("async latency = %v, want ~17ms", m.Latency)
	}
	sync := &Profile{Stages: p.Stages}
	ms2, _ := Simulate(sync, 1, true, 0)
	if ms2.Latency <= m.Latency {
		t.Fatalf("sync (%v) should be slower than async (%v)", ms2.Latency, m.Latency)
	}
}

func TestAsyncThroughputStillStragglerBound(t *testing.T) {
	// The straggler still serves every batch FIFO, so pipelined throughput
	// cannot exceed its rate even in async mode.
	p := &Profile{
		Async: true,
		Stages: []StageProfile{
			{Service: []time.Duration{10 * ms, 10 * ms, 40 * ms}, Output: true},
		},
	}
	m, err := Simulate(p, 64, false, 0)
	if err != nil {
		t.Fatal(err)
	}
	if m.Throughput > 1/0.040*1.05 {
		t.Fatalf("async throughput %v exceeds straggler bound 25/s", m.Throughput)
	}
}

func TestStageTimeoutBoundsSyncLatency(t *testing.T) {
	// A 500ms straggler in a sync MVX stage: without a deadline the batch
	// is straggler-bound; with one, the checkpoint completes at the cutoff
	// with the two survivors.
	p := &Profile{Stages: []StageProfile{{
		Service: []time.Duration{10 * ms, 10 * ms, 500 * ms},
		Check:   1 * ms,
		Output:  true,
	}}}
	unbounded, err := Simulate(p, 1, true, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !approx(unbounded.Latency.Seconds(), 0.501, 0.01) {
		t.Fatalf("no deadline: latency = %v, want straggler-bound 501ms", unbounded.Latency)
	}
	p.StageTimeout = 50 * ms
	bounded, err := Simulate(p, 1, true, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !approx(bounded.Latency.Seconds(), 0.051, 0.01) {
		t.Fatalf("deadline: latency = %v, want cutoff-bound 51ms", bounded.Latency)
	}
}

func TestStageTimeoutRestoresAsyncThroughput(t *testing.T) {
	// The async straggler-bound case of TestAsyncThroughputStillStragglerBound:
	// with a deadline, the straggler is dropped and hot-replaced each time it
	// overruns, so pipelined throughput recovers past the straggler's rate.
	p := &Profile{
		Async: true,
		Stages: []StageProfile{
			{Service: []time.Duration{10 * ms, 10 * ms, 40 * ms}, Output: true},
		},
	}
	p.StageTimeout = 15 * ms
	m, err := Simulate(p, 64, false, 0)
	if err != nil {
		t.Fatal(err)
	}
	if m.Throughput <= 1/0.040 {
		t.Fatalf("deadline should lift the straggler bound: %v <= 25/s", m.Throughput)
	}
}

func TestStageTimeoutIgnoredOnFastPath(t *testing.T) {
	// A single-variant stage has no quorum to degrade to: the deadline must
	// not truncate its (legitimate) service time.
	p := chain(100 * ms)
	p.StageTimeout = 10 * ms
	m, err := Simulate(p, 1, true, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !approx(m.Latency.Seconds(), 0.100, 0.01) {
		t.Fatalf("fast-path latency = %v, want full 100ms", m.Latency)
	}
}

func TestMonitorThreadSerializesCheckpoints(t *testing.T) {
	// With transfer cost comparable to service, pipelined throughput is
	// bound by service + can't hide the serialized monitor work entirely.
	fast := chain(10 * ms)
	fast.Stages[0].TransferIn = 0
	noXfer, _ := Simulate(fast, 64, false, 0)

	slow := chain(10 * ms)
	slow.Stages[0].TransferIn = 5 * ms
	slow.Stages[0].TransferOut = 5 * ms
	withXfer, _ := Simulate(slow, 64, false, 0)
	if withXfer.Throughput >= noXfer.Throughput*0.95 {
		t.Fatalf("transfer costs must reduce pipelined throughput: %v vs %v",
			withXfer.Throughput, noXfer.Throughput)
	}
}

func TestDAGDependencies(t *testing.T) {
	// Diamond: stage 0 feeds stages 1 and 2; stage 3 joins them.
	p := &Profile{Stages: []StageProfile{
		{Service: []time.Duration{10 * ms}},
		{Service: []time.Duration{20 * ms}, Deps: []int{0}},
		{Service: []time.Duration{30 * ms}, Deps: []int{0}},
		{Service: []time.Duration{5 * ms}, Deps: []int{1, 2}, Output: true},
	}}
	m, err := Simulate(p, 1, true, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Critical path: 10 + 30 + 5 = 45ms (branches run concurrently).
	if !approx(m.Latency.Seconds(), 0.045, 0.01) {
		t.Fatalf("diamond latency = %v, want 45ms", m.Latency)
	}
}

func TestValidation(t *testing.T) {
	if _, err := Simulate(&Profile{}, 1, true, 0); err == nil {
		t.Fatal("empty profile accepted")
	}
	bad := &Profile{Stages: []StageProfile{{Service: []time.Duration{ms}, Deps: []int{0}}}}
	if _, err := Simulate(bad, 1, true, 0); err == nil {
		t.Fatal("self-dependency accepted")
	}
	if _, err := Simulate(chain(ms), 0, true, 0); err == nil {
		t.Fatal("zero batches accepted")
	}
	if _, err := Simulate(&Profile{Stages: []StageProfile{{}}}, 1, true, 0); err == nil {
		t.Fatal("variant-less stage accepted")
	}
}

func TestSimulateBaseline(t *testing.T) {
	m := SimulateBaseline(20*ms, 10)
	if !approx(m.Throughput, 50, 0.01) || m.Latency != 20*ms {
		t.Fatalf("baseline = %+v", m)
	}
}

func TestCalibrateOnRealBundle(t *testing.T) {
	b, err := core.BuildBundle(core.OfflineConfig{
		ModelName:        "mnasnet",
		PartitionTargets: []int{3},
		Specs:            []diversify.Spec{diversify.ReplicaSpec("replica")},
	})
	if err != nil {
		t.Fatal(err)
	}
	in := tensor.New(1, 3, 32, 32)
	for i := range in.Data() {
		in.Data()[i] = 0.1
	}
	plans := []monitor.PartitionPlan{
		{Variants: []string{"replica"}},
		{Variants: []string{"replica", "replica", "replica"}},
		{Variants: []string{"replica"}},
	}
	prof, err := Calibrate(b, 0, in, CalibrationConfig{Plans: plans, TEEFactor: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(prof.Stages) != 3 {
		t.Fatalf("%d stages", len(prof.Stages))
	}
	if len(prof.Stages[1].Service) != 3 || len(prof.Stages[0].Service) != 1 {
		t.Fatalf("variant counts: %d/%d", len(prof.Stages[0].Service), len(prof.Stages[1].Service))
	}
	if prof.Stages[1].Check == 0 {
		t.Fatal("MVX stage has no check cost")
	}
	if prof.Stages[0].Check != 0 {
		t.Fatal("fast-path stage has a check cost")
	}
	for i, s := range prof.Stages {
		if s.TransferIn <= 0 || s.TransferOut <= 0 {
			t.Fatalf("stage %d transfer not calibrated", i)
		}
		for _, svc := range s.Service {
			if svc <= 0 {
				t.Fatalf("stage %d service not calibrated", i)
			}
		}
	}
	// The profile must actually simulate.
	if _, err := Simulate(prof, 16, false, 0); err != nil {
		t.Fatal(err)
	}
	// Plan/partition mismatch rejected.
	if _, err := Calibrate(b, 0, in, CalibrationConfig{Plans: plans[:2]}); err == nil {
		t.Fatal("plan count mismatch accepted")
	}
}

func TestCoreContention(t *testing.T) {
	p := &Profile{Stages: []StageProfile{{
		Service: []time.Duration{10 * ms, 10 * ms, 10 * ms, 10 * ms},
		Output:  true,
	}}}
	free, err := Simulate(p, 16, false, 0)
	if err != nil {
		t.Fatal(err)
	}
	p.Cores = 2 // 4 variants on 2 cores: service doubles
	packed, err := Simulate(p, 16, false, 0)
	if err != nil {
		t.Fatal(err)
	}
	ratio := free.Throughput / packed.Throughput
	if !approx(ratio, 2, 0.05) {
		t.Fatalf("2x oversubscription should halve throughput, ratio = %.2f", ratio)
	}
	p.Cores = 8 // budget exceeds demand: no penalty
	roomy, err := Simulate(p, 16, false, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !approx(roomy.Throughput, free.Throughput, 0.01) {
		t.Fatalf("sufficient cores must not penalize: %v vs %v", roomy.Throughput, free.Throughput)
	}
}

func TestInflightWindowGatesOnStragglerResolution(t *testing.T) {
	// Async 3-variant stage with one chronic straggler and a straggler
	// deadline. Without a window the quorum forwards every batch at
	// service+transfer time (~14ms cycle) and the straggler's open gathers
	// pile up behind the stream — the exact backlog the credit window exists
	// to bound. With a window of 1, each dispatch waits for the previous
	// gather to fully close (its straggler pruned at the 30ms deadline), so
	// the cycle stretches to deadline+transfer (~32ms).
	p := &Profile{
		Stages: []StageProfile{{
			Service:    []time.Duration{10 * ms, 10 * ms, 50 * ms},
			TransferIn: 2 * ms, TransferOut: 2 * ms,
			Output: true,
		}},
		Async:        true,
		StageTimeout: 30 * ms,
	}
	open, err := Simulate(p, 64, false, 64)
	if err != nil {
		t.Fatal(err)
	}
	p.InflightWindow = 1
	windowed, err := Simulate(p, 64, false, 64)
	if err != nil {
		t.Fatal(err)
	}
	// Open: ~1 batch per 14ms (quorum service 10 + transfers 4).
	if !approx(open.Throughput, 1/0.014, 0.05) {
		t.Fatalf("open throughput = %v, want ~71/s", open.Throughput)
	}
	// Window=1: ~1 per 32ms (straggler deadline 30 + TransferIn 2).
	if !approx(windowed.Throughput, 1/0.032, 0.05) {
		t.Fatalf("window=1 throughput = %v, want ~31/s", windowed.Throughput)
	}
}

func TestInflightWindowWideEnoughIsFree(t *testing.T) {
	p := chain(10*ms, 30*ms, 10*ms)
	open, err := Simulate(p, 64, false, 0)
	if err != nil {
		t.Fatal(err)
	}
	p.InflightWindow = 64 // wider than the stream: never binds
	wide, err := Simulate(p, 64, false, 0)
	if err != nil {
		t.Fatal(err)
	}
	if wide.Throughput != open.Throughput || wide.Latency != open.Latency {
		t.Fatalf("wide window changed the schedule: %+v vs %+v", wide, open)
	}
}

// stragglerProfile is the async 3-variant straggler stage from the window
// tests: the configuration where a too-tight credit window costs real
// throughput, so the adaptive law has something to recover.
func stragglerProfile() *Profile {
	return &Profile{
		Stages: []StageProfile{{
			Service:    []time.Duration{10 * ms, 10 * ms, 50 * ms},
			TransferIn: 2 * ms, TransferOut: 2 * ms,
			Output: true,
		}},
		Async:        true,
		StageTimeout: 30 * ms,
	}
}

func TestAdaptiveWindowRecoversFromStarvedStart(t *testing.T) {
	// Static window=1 serializes every gather behind the 30ms straggler
	// deadline. The adaptive run starts from the same starved window but
	// re-sizes it each epoch with the controller's Little's-law, so after
	// the first epoch the stream opens up and mean throughput over the run
	// must land strictly above the static schedule.
	static := stragglerProfile()
	static.InflightWindow = 1
	s, err := Simulate(static, 256, false, 64)
	if err != nil {
		t.Fatal(err)
	}
	adaptive := stragglerProfile()
	adaptive.InflightWindow = 1
	adaptive.AdaptiveWindow = true
	a, err := Simulate(adaptive, 256, false, 64)
	if err != nil {
		t.Fatal(err)
	}
	if a.Throughput <= s.Throughput*1.2 {
		t.Fatalf("adaptive window did not recover: %.1f/s vs static %.1f/s", a.Throughput, s.Throughput)
	}
}

func TestAdaptiveWindowIsDeterministic(t *testing.T) {
	run := func() Metrics {
		p := stragglerProfile()
		p.InflightWindow = 1
		p.AdaptiveWindow = true
		m, err := Simulate(p, 200, false, 64)
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("two identical adaptive runs diverged: %+v vs %+v", a, b)
	}
}

func TestAdaptiveWindowRespectsDisabledWindow(t *testing.T) {
	// InflightWindow=0 means the deployment turned windowing off; the
	// adaptive flag must not impose one (same contract as the live
	// controller against Engine.InflightWindow()==0).
	off := stragglerProfile()
	base, err := Simulate(off, 128, false, 64)
	if err != nil {
		t.Fatal(err)
	}
	offAdaptive := stragglerProfile()
	offAdaptive.AdaptiveWindow = true
	got, err := Simulate(offAdaptive, 128, false, 64)
	if err != nil {
		t.Fatal(err)
	}
	if got != base {
		t.Fatalf("adaptive flag changed a window-off schedule: %+v vs %+v", got, base)
	}
}
