package pipesim

import (
	"crypto/aes"
	"crypto/cipher"
	"fmt"
	"time"

	"repro/internal/check"
	"repro/internal/core"
	"repro/internal/infer"
	"repro/internal/monitor"
	"repro/internal/tensor"
	"repro/internal/wire"
)

// CalibrationConfig tunes profile construction.
type CalibrationConfig struct {
	// Plans is the MVX plan (one per partition), as in monitor.MVXConfig.
	Plans []monitor.PartitionPlan
	// Async carries over to the profile.
	Async bool
	// Policy is the consistency policy used to cost checks; empty means
	// the default.
	Policy check.Policy
	// TEEFactor scales communication and checking costs to model
	// SGX-class enclave-transition and secure-memory overheads; 0 means 1
	// (raw host costs).
	TEEFactor float64
	// Plain disables the AES-GCM portion of transfer costing (the Figure
	// 10 no-encryption baseline).
	Plain bool
	// Reps is the number of measurement repetitions (min taken); 0 means 3.
	Reps int
}

// Calibrate builds a simulation profile for one partition set of a bundle by
// executing every (partition, variant) pair of the plan on this host and
// measuring service, transfer and check costs.
func Calibrate(b *core.Bundle, setIdx int, input *tensor.Tensor, cfg CalibrationConfig) (*Profile, error) {
	if setIdx < 0 || setIdx >= len(b.Sets) {
		return nil, fmt.Errorf("pipesim: set %d out of range", setIdx)
	}
	set := b.Sets[setIdx]
	pool := b.Pools[setIdx]
	if len(cfg.Plans) != len(set.Partitions) {
		return nil, fmt.Errorf("pipesim: %d plans for %d partitions", len(cfg.Plans), len(set.Partitions))
	}
	if cfg.TEEFactor == 0 {
		cfg.TEEFactor = 1
	}
	if cfg.Reps == 0 {
		cfg.Reps = 3
	}
	if len(cfg.Policy.Criteria) == 0 {
		cfg.Policy = check.DefaultPolicy()
	}

	// Producer map: tensor -> producing stage.
	producedBy := make(map[string]int)
	for pi, p := range set.Partitions {
		for _, o := range p.Outputs {
			producedBy[o.Name] = pi
		}
	}
	modelOut := make(map[string]bool)
	for _, o := range b.Model.Outputs {
		modelOut[o] = true
	}

	// Reference forward pass capturing boundary tensors.
	values := map[string]*tensor.Tensor{}
	for _, vi := range b.Model.Inputs {
		values[vi.Name] = input
	}

	prof := &Profile{Async: cfg.Async}
	for pi, part := range set.Partitions {
		sp := StageProfile{}
		depSet := map[int]bool{}
		ins := make(map[string]*tensor.Tensor, len(part.Inputs))
		for _, bd := range part.Inputs {
			t, ok := values[bd.Name]
			if !ok {
				return nil, fmt.Errorf("pipesim: stage %d input %q unavailable (topological order violated)", pi, bd.Name)
			}
			ins[bd.Name] = t
			if d, ok := producedBy[bd.Name]; ok && d != pi {
				depSet[d] = true
			}
		}
		for d := range depSet {
			sp.Deps = append(sp.Deps, d)
		}
		for _, bd := range part.Outputs {
			if modelOut[bd.Name] {
				sp.Output = true
			}
		}

		// Reference outputs for downstream stages and check costing: use the
		// first claimed variant.
		var refOut map[string]*tensor.Tensor
		for _, specName := range cfg.Plans[pi].Variants {
			v, err := pool.Lookup(pi, specName)
			if err != nil {
				return nil, err
			}
			rc, err := v.Spec.RuntimeConfig()
			if err != nil {
				return nil, err
			}
			ex, err := infer.New(v.Graph, rc)
			if err != nil {
				return nil, fmt.Errorf("pipesim: stage %d spec %s: %w", pi, specName, err)
			}
			svc, out, err := measureService(ex, ins, cfg.Reps)
			if err != nil {
				return nil, fmt.Errorf("pipesim: stage %d spec %s: %w", pi, specName, err)
			}
			sp.Service = append(sp.Service, svc)
			if refOut == nil {
				refOut = out
			}
		}
		for name, t := range refOut {
			values[name] = t
		}

		k := len(sp.Service)
		inCost, err := measureTransfer(ins, cfg.Reps, cfg.Plain)
		if err != nil {
			return nil, err
		}
		outCost, err := measureTransfer(refOut, cfg.Reps, cfg.Plain)
		if err != nil {
			return nil, err
		}
		// Each of the k variants receives the input and returns its output
		// through the monitor's encrypted channels.
		sp.TransferIn = time.Duration(float64(inCost) * float64(k) * cfg.TEEFactor)
		sp.TransferOut = time.Duration(float64(outCost) * float64(k) * cfg.TEEFactor)
		if k > 1 {
			perPair, err := measureCheck(refOut, cfg.Policy, cfg.Reps)
			if err != nil {
				return nil, err
			}
			pairs := k * (k - 1) / 2
			sp.Check = time.Duration(float64(perPair) * float64(pairs) * cfg.TEEFactor)
		}
		prof.Stages = append(prof.Stages, sp)
	}
	return prof, nil
}

// CalibrateBaseline measures the unpartitioned model's single-inference
// service time for SimulateBaseline.
func CalibrateBaseline(ex infer.Executor, input *tensor.Tensor, reps int) (time.Duration, error) {
	if reps == 0 {
		reps = 3
	}
	ins := map[string]*tensor.Tensor{"image": input}
	svc, _, err := measureService(ex, ins, reps)
	return svc, err
}

func measureService(ex infer.Executor, ins map[string]*tensor.Tensor, reps int) (time.Duration, map[string]*tensor.Tensor, error) {
	var out map[string]*tensor.Tensor
	var err error
	// Warmup.
	if out, err = ex.Run(ins); err != nil {
		return 0, nil, err
	}
	best := time.Duration(1<<62 - 1)
	for i := 0; i < reps; i++ {
		start := time.Now()
		out, err = ex.Run(ins)
		el := time.Since(start)
		if err != nil {
			return 0, nil, err
		}
		if el < best {
			best = el
		}
	}
	return best, out, nil
}

// measureTransfer times one monitor<->variant hop for the tensor map:
// binary serialization, AES-GCM-256 seal and open (unless plain), and
// deserialization.
func measureTransfer(ts map[string]*tensor.Tensor, reps int, plain bool) (time.Duration, error) {
	if len(ts) == 0 {
		return 0, nil
	}
	msg := &wire.Batch{ID: 1, Tensors: ts}
	key := make([]byte, 32)
	blk, err := aes.NewCipher(key)
	if err != nil {
		return 0, err
	}
	gcm, err := cipher.NewGCM(blk)
	if err != nil {
		return 0, err
	}
	nonce := make([]byte, 12)
	best := time.Duration(1<<62 - 1)
	for i := 0; i < reps; i++ {
		start := time.Now()
		buf, err := wire.Marshal(msg)
		if err != nil {
			return 0, err
		}
		pt := buf
		if !plain {
			ct := gcm.Seal(nil, nonce, buf, nil)
			pt, err = gcm.Open(nil, nonce, ct, nil)
			if err != nil {
				return 0, err
			}
		}
		if _, err := wire.Unmarshal(pt); err != nil {
			return 0, err
		}
		if el := time.Since(start); el < best {
			best = el
		}
	}
	return best, nil
}

// measureCheck times one pairwise consistency evaluation on the checkpoint
// tensors.
func measureCheck(ts map[string]*tensor.Tensor, pol check.Policy, reps int) (time.Duration, error) {
	best := time.Duration(1<<62 - 1)
	for i := 0; i < reps; i++ {
		start := time.Now()
		ok, err := check.Consistent(ts, ts, pol)
		if err != nil {
			return 0, err
		}
		if !ok {
			return 0, fmt.Errorf("pipesim: self-comparison inconsistent")
		}
		if el := time.Since(start); el < best {
			best = el
		}
	}
	return best, nil
}
