// Package attest implements MVTEE's challenge-response attestation flows
// (§4.3, Figure 6): nonce-fresh verification of a single TEE by the model
// owner or monitor, and the combined attestation through which a user
// verifies the monitor plus every variant TEE in one exchange.
package attest

import (
	"crypto/rand"
	"crypto/sha256"
	"errors"
	"fmt"

	"repro/internal/enclave"
)

// Attester produces attestation reports; *enclave.Enclave satisfies it.
type Attester interface {
	GenerateReport(rd enclave.ReportData) (*enclave.Report, error)
}

var _ Attester = (*enclave.Enclave)(nil)

// NonceSize is the challenge length in bytes.
const NonceSize = 32

// NewNonce returns a fresh random challenge.
func NewNonce() ([]byte, error) {
	n := make([]byte, NonceSize)
	if _, err := rand.Read(n); err != nil {
		return nil, fmt.Errorf("attest: nonce: %w", err)
	}
	return n, nil
}

// BindNonce derives the report data binding a challenge nonce and a context
// label (e.g., a protocol step or channel transcript digest).
func BindNonce(nonce []byte, context string) enclave.ReportData {
	h := sha256.New()
	h.Write([]byte("mvtee-attest/"))
	h.Write([]byte(context))
	h.Write(nonce)
	var rd enclave.ReportData
	copy(rd[:], h.Sum(nil))
	return rd
}

// Respond answers a challenge: the attester produces a report whose report
// data binds the nonce and context.
func Respond(a Attester, nonce []byte, context string) (*enclave.Report, error) {
	return a.GenerateReport(BindNonce(nonce, context))
}

// ErrNonceMismatch indicates a replayed or mis-bound report.
var ErrNonceMismatch = errors.New("attest: report does not bind the challenge nonce")

// Check verifies a challenge response: the report signature (and optional
// expected measurements) via v, and that its report data binds nonce/context.
func Check(v *enclave.Verifier, r *enclave.Report, nonce []byte, context string, expected []enclave.Measurement) error {
	if err := v.Verify(r, expected); err != nil {
		return err
	}
	want := BindNonce(nonce, context)
	if r.ReportData != want {
		return ErrNonceMismatch
	}
	return nil
}

// Bundle is a combined attestation: the monitor's own report plus the
// reports of all bound variants, each binding the same user nonce (§4.3
// "users perform a combined attestation of all TEEs through the monitor").
type Bundle struct {
	Monitor  *enclave.Report
	Variants map[string]*enclave.Report // variant ID -> report
}

// CheckBundle verifies every report in the bundle against the same nonce.
func CheckBundle(v *enclave.Verifier, b *Bundle, nonce []byte) error {
	if b.Monitor == nil {
		return errors.New("attest: bundle missing monitor report")
	}
	if err := Check(v, b.Monitor, nonce, "monitor", nil); err != nil {
		return fmt.Errorf("attest: monitor: %w", err)
	}
	for id, r := range b.Variants {
		if err := Check(v, r, nonce, "variant/"+id, nil); err != nil {
			return fmt.Errorf("attest: variant %s: %w", id, err)
		}
	}
	return nil
}
