package attest

import (
	"errors"
	"testing"

	"repro/internal/enclave"
)

func testEnclave(t *testing.T, name string) (*enclave.Platform, *enclave.Enclave) {
	t.Helper()
	p, err := enclave.NewPlatform("plat-"+name, enclave.SGX2, 1<<30)
	if err != nil {
		t.Fatal(err)
	}
	e, err := p.Launch(enclave.Image{Name: name, Code: []byte(name), InitialPages: 1})
	if err != nil {
		t.Fatal(err)
	}
	return p, e
}

func TestChallengeResponse(t *testing.T) {
	p, e := testEnclave(t, "app")
	nonce, err := NewNonce()
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Respond(e, nonce, "ctx")
	if err != nil {
		t.Fatal(err)
	}
	v := enclave.NewVerifier()
	v.Trust(p)
	if err := Check(v, rep, nonce, "ctx", nil); err != nil {
		t.Fatal(err)
	}
	if err := Check(v, rep, nonce, "ctx", []enclave.Measurement{e.Measurement()}); err != nil {
		t.Fatal(err)
	}
}

func TestReplayRejected(t *testing.T) {
	p, e := testEnclave(t, "app")
	v := enclave.NewVerifier()
	v.Trust(p)
	nonce1, _ := NewNonce()
	rep, _ := Respond(e, nonce1, "ctx")

	nonce2, _ := NewNonce()
	if err := Check(v, rep, nonce2, "ctx", nil); !errors.Is(err, ErrNonceMismatch) {
		t.Fatalf("replayed report: got %v, want ErrNonceMismatch", err)
	}
	// Context confusion is also a replay.
	if err := Check(v, rep, nonce1, "other-step", nil); !errors.Is(err, ErrNonceMismatch) {
		t.Fatalf("cross-context report: got %v, want ErrNonceMismatch", err)
	}
}

func TestBundle(t *testing.T) {
	p, mon := testEnclave(t, "monitor")
	_, v1 := testEnclave(t, "v1")
	v := enclave.NewVerifier()
	v.Trust(p)
	v.Trust(v1.Platform())

	nonce, _ := NewNonce()
	monRep, _ := Respond(mon, nonce, "monitor")
	v1Rep, _ := Respond(v1, nonce, "variant/v1")
	b := &Bundle{Monitor: monRep, Variants: map[string]*enclave.Report{"v1": v1Rep}}
	if err := CheckBundle(v, b, nonce); err != nil {
		t.Fatal(err)
	}

	// A variant report bound to the wrong ID fails.
	bad := &Bundle{Monitor: monRep, Variants: map[string]*enclave.Report{"v2": v1Rep}}
	if err := CheckBundle(v, bad, nonce); err == nil {
		t.Fatal("mis-bound variant report accepted")
	}
	if err := CheckBundle(v, &Bundle{}, nonce); err == nil {
		t.Fatal("empty bundle accepted")
	}
}
