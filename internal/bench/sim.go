package bench

import (
	"fmt"
	"time"

	"repro/internal/check"
	"repro/internal/core"
	"repro/internal/infer"
	"repro/internal/monitor"
	"repro/internal/pipesim"
)

// SimOptions extends Options for the calibrated multicore simulation mode.
// The live engine measures wall-clock behaviour on this host; the simulation
// replays the monitor's scheduling semantics on a modeled many-core TEE
// testbed (the paper's dual 36-core Xeons), with per-variant service times
// and checkpoint costs calibrated from real executions.
type SimOptions struct {
	Options
	// TEEFactor scales communication/crypto costs to SGX-class overheads;
	// 0 means 24 (calibrated to land Figure 10's overhead band).
	TEEFactor float64
	// SimBatches is the simulated stream length; 0 means 64.
	SimBatches int
	// Reps is the calibration repetition count (min taken); 0 means 5.
	Reps int
	// InflightWindow is the per-stage credit budget applied to the simulated
	// pipelined engine (pipesim.Profile.InflightWindow); 0 disables it.
	InflightWindow int
}

func (o SimOptions) withDefaults() SimOptions {
	o.Options = o.Options.withDefaults()
	if o.TEEFactor == 0 {
		o.TEEFactor = 24
	}
	if o.SimBatches == 0 {
		o.SimBatches = 64
	}
	if o.Reps == 0 {
		o.Reps = 5
	}
	return o
}

func simToMetrics(m pipesim.Metrics) Metrics {
	return Metrics{Throughput: m.Throughput, Latency: m.Latency, TransitLatency: m.Latency}
}

// simBaseline calibrates and simulates the original unpartitioned model.
func simBaseline(model string, o SimOptions) (Metrics, error) {
	ex, err := core.BaselineExecutor(model, o.ModelConfig, infer.Config{})
	if err != nil {
		return Metrics{}, err
	}
	svc, err := pipesim.CalibrateBaseline(ex, Input(o.ModelConfig, 1), o.Reps)
	if err != nil {
		return Metrics{}, err
	}
	return simToMetrics(pipesim.SimulateBaseline(svc, o.SimBatches)), nil
}

// simRealBaseline simulates the original model on the production inference
// stack of the real-setup evaluation (the "ort-cpu" recipe applied to the
// whole model) — the fair "original inference baseline" of §6.4.
func simRealBaseline(model string, o SimOptions) (Metrics, error) {
	ex, err := realBaselineExecutor(model, o.Options)
	if err != nil {
		return Metrics{}, err
	}
	svc, err := pipesim.CalibrateBaseline(ex, Input(o.ModelConfig, 1), o.Reps)
	if err != nil {
		return Metrics{}, err
	}
	return simToMetrics(pipesim.SimulateBaseline(svc, o.SimBatches)), nil
}

// simMeasure calibrates one deployment configuration and simulates both
// execution modes.
func simMeasure(b *core.Bundle, setIdx int, plans []monitor.PartitionPlan, async, plain bool,
	pol check.Policy, o SimOptions) (seq, pipe Metrics, err error) {
	prof, err := pipesim.Calibrate(b, setIdx, Input(o.ModelConfig, 1), pipesim.CalibrationConfig{
		Plans:     plans,
		Async:     async,
		Policy:    pol,
		TEEFactor: o.TEEFactor,
		Plain:     plain,
		Reps:      o.Reps,
	})
	if err != nil {
		return Metrics{}, Metrics{}, err
	}
	prof.InflightWindow = o.InflightWindow
	sm, err := pipesim.Simulate(prof, o.SimBatches, true, 0)
	if err != nil {
		return Metrics{}, Metrics{}, err
	}
	pm, err := pipesim.Simulate(prof, o.SimBatches, false, 0)
	if err != nil {
		return Metrics{}, Metrics{}, err
	}
	return simToMetrics(sm), simToMetrics(pm), nil
}

func simRows(model, config string, seq, pipe, baseSeq, basePipe Metrics) []Row {
	return []Row{
		row(model, config, "seq", seq, baseSeq),
		row(model, config, "pipe", pipe, basePipe),
	}
}

// SimFig9 is Fig9 on the simulated testbed.
func SimFig9(o SimOptions) ([]Row, error) {
	o = o.withDefaults()
	targets := []int{3, 5, 7, 9}
	var rows []Row
	for _, model := range o.Models {
		base, err := simBaseline(model, o)
		if err != nil {
			return nil, err
		}
		b, err := buildReplicaBundle(model, o.Options, targets)
		if err != nil {
			return nil, err
		}
		for si, t := range targets {
			seq, pipe, err := simMeasure(b, si, replicaPlans(t, 1), false, false, check.Policy{}, o)
			if err != nil {
				return nil, err
			}
			rows = append(rows, simRows(model, fmt.Sprintf("%dp", t), seq, pipe, base, base)...)
		}
	}
	return rows, nil
}

// SimFig10 is Fig10 on the simulated testbed: baseline is the unencrypted
// full fast path; rows show encryption and checkpointing overheads.
func SimFig10(o SimOptions) ([]Row, error) {
	o = o.withDefaults()
	const parts = 5
	var rows []Row
	for _, model := range o.Models {
		b, err := buildReplicaBundle(model, o.Options, []int{parts})
		if err != nil {
			return nil, err
		}
		baseSeq, basePipe, err := simMeasure(b, 0, replicaPlans(parts, 1), false, true, check.Policy{}, o)
		if err != nil {
			return nil, err
		}
		rows = append(rows, simRows(model, "plain+fast", baseSeq, basePipe, baseSeq, basePipe)...)
		encSeq, encPipe, err := simMeasure(b, 0, replicaPlans(parts, 1), false, false, check.Policy{}, o)
		if err != nil {
			return nil, err
		}
		rows = append(rows, simRows(model, "enc+fast", encSeq, encPipe, baseSeq, basePipe)...)
		slowSeq, slowPipe, err := simMeasure(b, 0, replicaPlans(parts, 2), false, false, check.Policy{}, o)
		if err != nil {
			return nil, err
		}
		rows = append(rows, simRows(model, "enc+slow", slowSeq, slowPipe, baseSeq, basePipe)...)
	}
	return rows, nil
}

// SimFig11 is Fig11 on the simulated testbed.
func SimFig11(o SimOptions) ([]Row, error) {
	o = o.withDefaults()
	const parts = 5
	var rows []Row
	for _, model := range o.Models {
		base, err := simBaseline(model, o)
		if err != nil {
			return nil, err
		}
		b, err := buildReplicaBundle(model, o.Options, []int{parts})
		if err != nil {
			return nil, err
		}
		for _, nvar := range []int{1, 3, 5} {
			plans := replicaPlans(parts, 1)
			plans[2] = replicaPlans(1, nvar)[0]
			seq, pipe, err := simMeasure(b, 0, plans, false, false, check.Policy{}, o)
			if err != nil {
				return nil, err
			}
			rows = append(rows, simRows(model, fmt.Sprintf("%dvar", nvar), seq, pipe, base, base)...)
		}
	}
	return rows, nil
}

// SimFig12 is Fig12 on the simulated testbed.
func SimFig12(o SimOptions) ([]Row, error) {
	o = o.withDefaults()
	const parts = 5
	configs := []struct {
		label string
		mvxOn []int
	}{
		{"1-mvx", []int{2}},
		{"3-mvx", []int{2, 3, 4}},
		{"5-mvx", []int{0, 1, 2, 3, 4}},
	}
	var rows []Row
	for _, model := range o.Models {
		base, err := simBaseline(model, o)
		if err != nil {
			return nil, err
		}
		b, err := buildReplicaBundle(model, o.Options, []int{parts})
		if err != nil {
			return nil, err
		}
		for _, cfg := range configs {
			plans := replicaPlans(parts, 1)
			for _, pi := range cfg.mvxOn {
				plans[pi] = replicaPlans(1, 3)[0]
			}
			seq, pipe, err := simMeasure(b, 0, plans, false, false, check.Policy{}, o)
			if err != nil {
				return nil, err
			}
			rows = append(rows, simRows(model, cfg.label, seq, pipe, base, base)...)
		}
	}
	return rows, nil
}

// SimFig13 is Fig13 on the simulated testbed: async normalized against sync.
func SimFig13(o SimOptions) ([]Row, error) {
	o = o.withDefaults()
	mvxVariants := []string{"ort-cpu", "ort-altep", "tvm-heavy"}
	pol := check.Policy{Criteria: realPolicy()}
	var rows []Row
	for _, model := range o.Models {
		b, _, err := realSetupBundle(model, o.Options)
		if err != nil {
			return nil, err
		}
		plans := make([]monitor.PartitionPlan, 5)
		for i := range plans {
			plans[i] = monitor.PartitionPlan{Variants: []string{"ort-cpu"}}
		}
		plans[1] = monitor.PartitionPlan{Variants: mvxVariants}
		plans[2] = monitor.PartitionPlan{Variants: mvxVariants}

		syncSeq, syncPipe, err := simMeasure(b, 0, plans, false, false, pol, o)
		if err != nil {
			return nil, err
		}
		asyncSeq, asyncPipe, err := simMeasure(b, 0, plans, true, false, pol, o)
		if err != nil {
			return nil, err
		}
		rows = append(rows,
			row(model, "sync", "seq", syncSeq, syncSeq),
			row(model, "sync", "pipe", syncPipe, syncPipe),
			row(model, "async", "seq", asyncSeq, syncSeq),
			row(model, "async", "pipe", asyncPipe, syncPipe),
		)
	}
	return rows, nil
}

// SimFig14 is Fig14 on the simulated testbed.
func SimFig14(o SimOptions) ([]Row, error) {
	o = o.withDefaults()
	mvxVariants := []string{"ort-cpu", "ort-altep", "tvm-graph"}
	pol := check.Policy{Criteria: realPolicy()}
	configs := []struct {
		label string
		mvxOn []int
	}{
		{"1-mvx", []int{2}},
		{"3-mvx", []int{2, 3, 4}},
	}
	var rows []Row
	for _, model := range o.Models {
		base, err := simRealBaseline(model, o)
		if err != nil {
			return nil, err
		}
		b, _, err := realSetupBundle(model, o.Options)
		if err != nil {
			return nil, err
		}
		for _, cfg := range configs {
			plans := make([]monitor.PartitionPlan, 5)
			for i := range plans {
				plans[i] = monitor.PartitionPlan{Variants: []string{"ort-cpu"}}
			}
			for _, pi := range cfg.mvxOn {
				plans[pi] = monitor.PartitionPlan{Variants: mvxVariants}
			}
			seq, pipe, err := simMeasure(b, 0, plans, true, false, pol, o)
			if err != nil {
				return nil, err
			}
			rows = append(rows, simRows(model, cfg.label, seq, pipe, base, base)...)
		}
	}
	return rows, nil
}

// TotalServiceTime sums a profile's variant service times (diagnostics).
func TotalServiceTime(p *pipesim.Profile) time.Duration {
	var t time.Duration
	for _, s := range p.Stages {
		for _, svc := range s.Service {
			t += svc
		}
	}
	return t
}
