// Package bench is MVTEE's evaluation harness: it regenerates every figure
// and table of the paper's §6 as text tables, using the same workload
// construction (the seven pre-trained-model replicas, batch size 1, encrypted
// checkpoint transport) and the same experiment matrix. Absolute numbers
// reflect this repository's simulated substrate; the reproduction target is
// the shape — who wins, by what factor, where the crossovers fall (see
// EXPERIMENTS.md).
package bench

import (
	"fmt"
	"math/rand/v2"
	"time"

	"repro/internal/core"
	"repro/internal/infer"
	"repro/internal/models"
	"repro/internal/monitor"
	"repro/internal/tensor"
)

// Metrics summarizes one measured configuration.
type Metrics struct {
	// Throughput is completed batches per second.
	Throughput float64
	// Latency is the per-batch time: for sequential runs the end-to-end
	// batch time; for pipelined runs the steady-state completion interval
	// (total time / batches), the definition under which pipelining
	// improves latency as in Figure 9.
	Latency time.Duration
	// TransitLatency is the mean submit-to-completion time of a batch
	// (pipelined runs only; equals Latency for sequential runs).
	TransitLatency time.Duration
}

// Input builds the standard evaluation input (the 3×H×W analogue of the
// paper's 3×224×224 images) for a model configuration.
func Input(mc models.Config, seed uint64) *tensor.Tensor {
	size := mc.InputSize
	if size == 0 {
		size = 32
	}
	rng := rand.New(rand.NewPCG(seed, 99))
	in := tensor.New(1, 3, size, size)
	d := in.Data()
	for i := range d {
		d[i] = float32(rng.NormFloat64())
	}
	return in
}

// MeasureBaseline times the original unpartitioned model (the evaluation
// baseline of §6.2).
func MeasureBaseline(ex infer.Executor, in *tensor.Tensor, warmup, n int) (Metrics, error) {
	inputs := map[string]*tensor.Tensor{"image": in}
	for i := 0; i < warmup; i++ {
		if _, err := ex.Run(inputs); err != nil {
			return Metrics{}, err
		}
	}
	start := time.Now()
	for i := 0; i < n; i++ {
		if _, err := ex.Run(inputs); err != nil {
			return Metrics{}, err
		}
	}
	el := time.Since(start)
	lat := el / time.Duration(n)
	return Metrics{Throughput: float64(n) / el.Seconds(), Latency: lat, TransitLatency: lat}, nil
}

// MeasureSequential times the deployment under sequential execution: each
// batch completes all pipeline stages before the next is submitted.
func MeasureSequential(d *core.Deployment, in *tensor.Tensor, warmup, n int) (Metrics, error) {
	inputs := map[string]*tensor.Tensor{"image": in}
	for i := 0; i < warmup; i++ {
		if _, err := d.Infer(inputs); err != nil {
			return Metrics{}, err
		}
	}
	start := time.Now()
	for i := 0; i < n; i++ {
		if _, err := d.Infer(inputs); err != nil {
			return Metrics{}, err
		}
	}
	el := time.Since(start)
	lat := el / time.Duration(n)
	return Metrics{Throughput: float64(n) / el.Seconds(), Latency: lat, TransitLatency: lat}, nil
}

// MeasurePipelined times the deployment under pipelined execution: a stream
// of batches processed simultaneously across stages.
func MeasurePipelined(d *core.Deployment, in *tensor.Tensor, warmup, n int) (Metrics, error) {
	mk := func(k int) []map[string]*tensor.Tensor {
		bs := make([]map[string]*tensor.Tensor, k)
		for i := range bs {
			bs[i] = map[string]*tensor.Tensor{"image": in}
		}
		return bs
	}
	if warmup > 0 {
		if _, err := d.Stream(mk(warmup)); err != nil {
			return Metrics{}, err
		}
	}
	start := time.Now()
	results, err := d.Stream(mk(n))
	if err != nil {
		return Metrics{}, err
	}
	el := time.Since(start)
	var transit time.Duration
	for _, r := range results {
		if r.Err != nil {
			return Metrics{}, fmt.Errorf("bench: batch %d failed: %w", r.ID, r.Err)
		}
		transit += r.Latency
	}
	return Metrics{
		Throughput:     float64(n) / el.Seconds(),
		Latency:        el / time.Duration(n),
		TransitLatency: transit / time.Duration(n),
	}, nil
}

// Row is one measured configuration, normalized against the original-model
// baseline.
type Row struct {
	Model  string
	Config string // configuration label (partition count, variant plan, …)
	Mode   string // "seq" or "pipe"
	// Normalized values: >1 throughput is better than baseline, <1 latency
	// is better than baseline.
	ThroughputX float64
	LatencyX    float64
	// Raw values.
	Throughput float64
	LatencyMS  float64
}

// Options tunes experiment scale.
type Options struct {
	// Models restricts the workload set; empty means all seven.
	Models []string
	// ModelConfig scales the model replicas.
	ModelConfig models.Config
	// Warmup and Batches control measurement length; zero means 2 / 10.
	Warmup, Batches int
	// Seed drives partitioning.
	Seed uint64
}

func (o Options) withDefaults() Options {
	if len(o.Models) == 0 {
		o.Models = models.PaperNames()
	}
	if o.Warmup == 0 {
		o.Warmup = 2
	}
	if o.Batches == 0 {
		o.Batches = 10
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	return o
}

// replicaPlans builds an n-partition plan with k identical variants each.
func replicaPlans(n, k int) []monitor.PartitionPlan {
	plans := make([]monitor.PartitionPlan, n)
	for i := range plans {
		for v := 0; v < k; v++ {
			plans[i].Variants = append(plans[i].Variants, "replica")
		}
	}
	return plans
}

// baselineMetrics measures the original model once per call site.
func baselineMetrics(model string, o Options) (Metrics, error) {
	ex, err := core.BaselineExecutor(model, o.ModelConfig, infer.Config{})
	if err != nil {
		return Metrics{}, err
	}
	return MeasureBaseline(ex, Input(o.ModelConfig, 1), o.Warmup, o.Batches)
}

func normalize(m, base Metrics) (tputX, latX float64) {
	return m.Throughput / base.Throughput, m.Latency.Seconds() / base.Latency.Seconds()
}

func row(model, config, mode string, m, base Metrics) Row {
	tx, lx := normalize(m, base)
	return Row{
		Model: model, Config: config, Mode: mode,
		ThroughputX: tx, LatencyX: lx,
		Throughput: m.Throughput, LatencyMS: float64(m.Latency.Microseconds()) / 1000,
	}
}
