package bench

import (
	"os"
	"testing"
)

func TestTable1Quick(t *testing.T) {
	results, err := Table1(Options{})
	if err != nil {
		t.Fatal(err)
	}
	WriteSecurityTable(os.Stderr, "Table 1 quick", results)
	for _, r := range results {
		if !r.Detected {
			t.Errorf("class %s not detected", r.Case.Class)
		}
	}
}

func TestFaultCasesQuick(t *testing.T) {
	results, err := FaultCases(Options{})
	if err != nil {
		t.Fatal(err)
	}
	WriteSecurityTable(os.Stderr, "Fault cases quick", results)
	for _, r := range results {
		if !r.Detected || !r.Recovered {
			t.Errorf("class %s detected=%v recovered=%v", r.Case.Class, r.Detected, r.Recovered)
		}
	}
}

// quickSim keeps per-test harness coverage fast: one small model, short
// simulated streams.
func quickSim() SimOptions {
	return SimOptions{Options: Options{Models: []string{"mnasnet"}}, SimBatches: 16, Reps: 2}
}

func TestSimHarnessAllFigures(t *testing.T) {
	figs := []struct {
		name string
		f    func(SimOptions) ([]Row, error)
		want int // expected row count for one model
	}{
		{"SimFig9", SimFig9, 8},
		{"SimFig10", SimFig10, 6},
		{"SimFig11", SimFig11, 6},
		{"SimFig12", SimFig12, 6},
		{"SimFig13", SimFig13, 4},
		{"SimFig14", SimFig14, 4},
	}
	for _, fig := range figs {
		rows, err := fig.f(quickSim())
		if err != nil {
			t.Fatalf("%s: %v", fig.name, err)
		}
		if len(rows) != fig.want {
			t.Errorf("%s: %d rows, want %d", fig.name, len(rows), fig.want)
		}
		for _, r := range rows {
			if r.Throughput <= 0 || r.LatencyMS <= 0 {
				t.Errorf("%s: non-positive measurement in %+v", fig.name, r)
			}
		}
	}
}

func TestLiveHarnessFig11(t *testing.T) {
	rows, err := Fig11(Options{Models: []string{"mnasnet"}, Warmup: 1, Batches: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("%d rows", len(rows))
	}
}

func TestLiveHarnessFig13(t *testing.T) {
	rows, err := Fig13(Options{Models: []string{"mnasnet"}, Warmup: 1, Batches: 3})
	if err != nil {
		t.Fatal(err)
	}
	// sync rows must be the normalization anchor.
	for _, r := range rows {
		if r.Config == "sync" && (r.ThroughputX != 1 || r.LatencyX != 1) {
			t.Fatalf("sync row not normalized to itself: %+v", r)
		}
	}
}

func TestLiveHarnessFig12And14(t *testing.T) {
	o := Options{Models: []string{"mnasnet"}, Warmup: 1, Batches: 3}
	if _, err := Fig12(o); err != nil {
		t.Fatal(err)
	}
	if _, err := Fig14(o); err != nil {
		t.Fatal(err)
	}
}
