// Perf is the machine-readable microbenchmark harness behind
// `mvtee-bench -perf`: it measures the inference hot path (GEMM kernels,
// convolution, end-to-end executors, checkpoint evaluation) with the standard
// testing.Benchmark machinery and emits one JSON report per revision
// (BENCH_<rev>.json) so kernel regressions show up in review diffs.

package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"math/rand/v2"
	"runtime"
	"testing"
	"time"

	"repro/internal/blas"
	"repro/internal/check"
	"repro/internal/graph"
	"repro/internal/infer"
	"repro/internal/models"
	"repro/internal/ops"
	"repro/internal/telemetry"
	"repro/internal/tensor"
	"repro/internal/workpool"
)

// PerfResult is one benchmark measurement in the report.
type PerfResult struct {
	// Name identifies the benchmark, slash-separated like `go test -bench`
	// output (e.g. "gemm/blocked/256/p4").
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	Iterations  int     `json:"iterations"`
}

// PerfReport is the full serialized run.
type PerfReport struct {
	Rev        string `json:"rev"`
	Date       string `json:"date"`
	GoVersion  string `json:"go_version"`
	GOOS       string `json:"goos"`
	GOARCH     string `json:"goarch"`
	NumCPU     int    `json:"num_cpu"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	// Note records measurement caveats that affect interpretation (e.g.
	// parallel levels on a single-core host measure dispatch overhead only).
	Note    string       `json:"note,omitempty"`
	Results []PerfResult `json:"results"`
	// Telemetry is a snapshot of the process-default metric registry taken
	// after the suite ran: the series the benchmarked subsystems emitted
	// while being measured, included so a report also documents what the
	// observability layer saw.
	Telemetry []telemetry.MetricSnapshot `json:"telemetry,omitempty"`
}

func record(name string, r testing.BenchmarkResult) PerfResult {
	return PerfResult{
		Name:        name,
		NsPerOp:     float64(r.T.Nanoseconds()) / float64(max(r.N, 1)),
		AllocsPerOp: r.AllocsPerOp(),
		BytesPerOp:  r.AllocedBytesPerOp(),
		Iterations:  r.N,
	}
}

func convNode() *graph.Node {
	return &graph.Node{Name: "c", Op: graph.OpConv, Inputs: []string{"x", "w"},
		Outputs: []string{"y"}, Attrs: map[string]graph.Attr{"pad": graph.IntAttr(1)}}
}

// RunPerf executes the microbenchmark suite and returns the report. note is
// appended to the report's caveat field (baseline context, host remarks);
// progress, if non-nil, receives one line per completed benchmark.
func RunPerf(rev, note string, progress io.Writer) (PerfReport, error) {
	rep := PerfReport{
		Rev:        rev,
		Date:       time.Now().UTC().Format(time.RFC3339),
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		NumCPU:     runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
	}
	if rep.NumCPU == 1 {
		rep.Note = "single-core host: parallel (pN) levels measure worker-pool " +
			"dispatch overhead only; row-panel scaling requires real cores; " +
			"transcript/engine-hotpath on/off deltas include the recorder " +
			"worker's amortized hashing CPU (no spare core absorbs it) — the " +
			"hot-path stall itself is transcript/record/checkpoint"
	}
	if note != "" {
		if rep.Note != "" {
			rep.Note += "; "
		}
		rep.Note += note
	}
	emit := func(pr PerfResult) {
		rep.Results = append(rep.Results, pr)
		if progress != nil {
			fmt.Fprintf(progress, "%-40s %12.0f ns/op %8d allocs/op\n",
				pr.Name, pr.NsPerOp, pr.AllocsPerOp)
		}
	}
	add := func(name string, f func(b *testing.B)) {
		emit(record(name, testing.Benchmark(f)))
	}

	perfGemm(add)
	perfConv(add)
	if err := perfInfer(add); err != nil {
		return rep, err
	}
	perfCheck(add)
	perfDataPlane(add)
	perfServe(add)
	perfServeWire(add)
	if err := perfCluster(add, emit); err != nil {
		return rep, err
	}
	if err := perfTelemetry(add, emit); err != nil {
		return rep, err
	}
	if err := perfTranscript(add, emit); err != nil {
		return rep, err
	}
	rep.Telemetry = telemetry.Default.Snapshot()
	return rep, nil
}

// perfGemm measures each BLAS backend at the sizes the acceptance gate tracks
// (256³ and larger), sequentially and through a 4-worker pool.
func perfGemm(add func(string, func(b *testing.B))) {
	rng := rand.New(rand.NewPCG(1, 1))
	for _, n := range []int{128, 256, 384} {
		a := randSlice(rng, n*n)
		bm := randSlice(rng, n*n)
		c := make([]float32, n*n)
		for _, kind := range blas.Kinds() {
			be := blas.MustNew(kind)
			add(fmt.Sprintf("gemm/%s/%d", be.Name(), n), func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					be.Gemm(n, n, n, a, bm, c)
				}
			})
			if n != 256 {
				continue
			}
			pool := workpool.New(4)
			add(fmt.Sprintf("gemm/%s/%d/p4", be.Name(), n), func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					blas.ParallelGemm(be, pool, n, n, n, a, bm, c)
				}
			})
			pool.Close()
		}
	}
}

// perfConv measures the convolution kernels (direct and im2col × backend) on
// the dominant mid-network shape.
func perfConv(add func(string, func(b *testing.B))) {
	rng := rand.New(rand.NewPCG(2, 2))
	x := randTensor(rng, 1, 32, 16, 16)
	w := randTensor(rng, 32, 32, 3, 3)
	cases := []struct {
		name string
		ctx  *ops.Context
	}{
		{"direct", &ops.Context{ConvAlgo: ops.ConvDirect}},
		{"im2col-naive", &ops.Context{ConvAlgo: ops.ConvIm2Col, BLAS: blas.MustNew(blas.Naive)}},
		{"im2col-blocked", &ops.Context{ConvAlgo: ops.ConvIm2Col, BLAS: blas.MustNew(blas.Blocked)}},
		{"im2col-packed", &ops.Context{ConvAlgo: ops.ConvIm2Col, BLAS: blas.MustNew(blas.Packed)}},
	}
	node := convNode()
	reg := ops.NewRegistry()
	for _, c := range cases {
		add("conv/"+c.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := reg.Run(c.ctx, node, []*tensor.Tensor{x, w}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// perfInfer measures end-to-end single-image inference through both executor
// families on the standard evaluation model, surfacing the steady-state
// allocation contrast between the interpreter (per-call maps) and the planned
// executor (plan-time arena).
func perfInfer(add func(string, func(b *testing.B))) error {
	g, err := models.Build("googlenet", models.Config{})
	if err != nil {
		return err
	}
	in := map[string]*tensor.Tensor{"image": Input(models.Config{}, 5)}
	for _, rt := range []infer.RuntimeKind{infer.Interp, infer.Planned} {
		ex, err := infer.New(g, infer.Config{Runtime: rt})
		if err != nil {
			return err
		}
		for i := 0; i < 2; i++ { // warm the arena and scratch pools
			if _, err := ex.Run(in); err != nil {
				return err
			}
		}
		add(fmt.Sprintf("infer/googlenet/%s", rt), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := ex.Run(in); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
	return nil
}

// perfCheck measures checkpoint evaluation on the default policy: the fused
// single-pass Evaluate against the legacy per-criterion Compare sweep it
// replaced on the monitor hot path.
func perfCheck(add func(string, func(b *testing.B))) {
	x := tensor.New(1, 64, 16, 16)
	for i := range x.Data() {
		x.Data()[i] = float32(i%31) / 31
	}
	pol := check.DefaultPolicy()
	add("check/evaluate-fused/default", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			ok, err := check.Evaluate(x, x, pol)
			if err != nil || !ok {
				b.Fatalf("ok=%v err=%v", ok, err)
			}
		}
	})
	add("check/compare-per-criterion/default", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for _, c := range pol.Criteria {
				_, ok, err := check.Compare(x, x, c)
				if err != nil || !ok {
					b.Fatalf("ok=%v err=%v", ok, err)
				}
			}
		}
	})
}

// WritePerfJSON serializes the report with stable indentation.
func WritePerfJSON(w io.Writer, rep PerfReport) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}

func randSlice(rng *rand.Rand, n int) []float32 {
	s := make([]float32, n)
	for i := range s {
		s[i] = float32(rng.NormFloat64())
	}
	return s
}

func randTensor(rng *rand.Rand, shape ...int) *tensor.Tensor {
	t := tensor.New(shape...)
	d := t.Data()
	for i := range d {
		d[i] = float32(rng.NormFloat64())
	}
	return t
}
