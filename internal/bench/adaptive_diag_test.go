package bench

import (
	"context"
	"fmt"
	"os"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/control"
	"repro/internal/serve"
	"repro/internal/telemetry"
	"repro/internal/tensor"
)

// TestAdaptiveTrajectoryDiag replays the serve/16c/adaptive-batch8 benchmark
// loop while logging every controller decision, so law regressions under the
// saturating closed-loop load can be diagnosed instead of guessed at.
// Diagnostic only: run with -run TestAdaptiveTrajectoryDiag -v.
func TestAdaptiveTrajectoryDiag(t *testing.T) {
	if os.Getenv("ADAPTIVE_DIAG") == "" {
		t.Skip("diagnostic; set ADAPTIVE_DIAG=1 to run")
	}
	const clients = 16
	const itemWidth = 64

	// ADAPTIVE_DIAG_STATIC=<n> pins MaxBatch at n with no controller, to
	// measure the plant's static throughput at one operating point.
	staticBatch := 0
	if s := os.Getenv("ADAPTIVE_DIAG_STATIC"); s != "" {
		fmt.Sscanf(s, "%d", &staticBatch)
	}
	maxBatch := 8
	if staticBatch > 0 {
		maxBatch = staticBatch
	}

	reg := telemetry.NewRegistry()
	eng := newServeEngine(t, reg)
	srv := serve.New(eng, serve.Config{
		MaxBatch:    maxBatch,
		MaxDelay:    500 * time.Microsecond,
		TenantQueue: 4 * clients,
		GlobalQueue: 8 * clients,
		Metrics:     reg,
	})
	defer srv.Close()
	if staticBatch == 0 {
		ctl := control.New(control.Config{
			Epoch:    50 * time.Millisecond,
			Registry: reg,
			Frontend: srv,
			Pipeline: eng,
			Events:   eng.EventBus(),
		})
		sub := ctl.Decisions().Subscribe(256)
		go func() {
			for d := range sub.C {
				mb, md := srv.BatchWindow()
				fmt.Printf("decision loop=%s dir=%s knob=%s %d->%d reason=%q now maxBatch=%d maxDelay=%v\n",
					d.Loop, d.Direction, d.Knob, d.From, d.To, d.Reason, mb, md)
			}
		}()
		ctl.Start()
		defer func() { ctl.Stop(); sub.Close() }()
	}

	inputs := make([]map[string]*tensor.Tensor, clients)
	for c := range inputs {
		x := tensor.New(1, itemWidth)
		for j := range x.Data() {
			x.Data()[j] = float32(c + j)
		}
		inputs[c] = map[string]*tensor.Tensor{"x": x}
	}

	var done atomic.Int64
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				_, err := srv.Infer(context.Background(), serve.Request{
					Tenant: fmt.Sprintf("t%d", c%4), Inputs: inputs[c],
				})
				if err != nil {
					t.Error(err)
					return
				}
				done.Add(1)
			}
		}(c)
	}
	start := time.Now()
	last := int64(0)
	for i := 0; i < 6; i++ {
		time.Sleep(500 * time.Millisecond)
		n := done.Load()
		mb, md := srv.BatchWindow()
		fmt.Printf("t=%v served=%d (+%d, %.0f req/s) maxBatch=%d maxDelay=%v\n",
			time.Since(start).Round(time.Millisecond), n, n-last,
			float64(n-last)/0.5, mb, md)
		last = n
	}
	close(stop)
	wg.Wait()
}
