// Telemetry microbenchmarks: the zero-alloc metrics core primitives (counter,
// histogram, tracer, event bus) and the engine hot path with instrumentation
// enabled vs disabled. The enabled/disabled pair is the PR acceptance number:
// enabled must stay within a few percent of disabled on the warm path.

package bench

import (
	"fmt"
	"net"
	"testing"
	"time"

	"repro/internal/monitor"
	"repro/internal/securechan"
	"repro/internal/telemetry"
	"repro/internal/tensor"
	"repro/internal/transcript"
	"repro/internal/wire"
)

// perfTelemetry registers the telemetry primitive and engine-overhead
// benchmarks. emit records a pre-measured result (the engine pair measures
// itself with interleaved chunks rather than through testing.Benchmark).
func perfTelemetry(add func(string, func(b *testing.B)), emit func(PerfResult)) error {
	perfTelemetryPrimitives(add)
	return perfTelemetryEngine(emit)
}

// perfTelemetryPrimitives measures the four hot-path record operations on a
// private registry/tracer/bus so the run does not pollute the process
// defaults.
func perfTelemetryPrimitives(add func(string, func(b *testing.B))) {
	reg := telemetry.NewRegistry()
	ctr := reg.Counter("bench_counter_total")
	hist := reg.Histogram("bench_hist_ns")
	add("telemetry/counter-inc", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			ctr.Inc()
		}
	})
	add("telemetry/histogram-observe", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			hist.Observe(int64(i))
		}
	})
	tr := telemetry.NewTracer(4096)
	add("telemetry/tracer-record", func(b *testing.B) {
		b.ReportAllocs()
		span := telemetry.Span{Trace: 1, Batch: 1, Name: "bench", Start: 1, End: 2}
		for i := 0; i < b.N; i++ {
			tr.Record(span)
		}
	})
	bus := telemetry.NewBus[int](4096)
	add("telemetry/bus-publish", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			bus.Publish(i)
		}
	})
}

// echoVariant serves wire batches on vc, renaming the single input tensor to
// outName — just enough compute to exercise the full dispatch→gather path.
func echoVariant(id, outName string, vc securechan.Conn) {
	for {
		msg, err := wire.Recv(vc)
		if err != nil {
			return
		}
		switch m := msg.(type) {
		case *wire.Batch:
			outs := make(map[string]*tensor.Tensor, 1)
			for _, t := range m.Tensors {
				outs[outName] = t
			}
			res := &wire.Result{ID: m.ID, Trace: m.Trace, VariantID: id, Tensors: outs}
			if err := wire.Send(vc, res); err != nil {
				return
			}
		case *wire.Shutdown:
			_ = vc.Close()
			return
		}
	}
}

// benchEngine builds a two-stage pipeline (x→y→z) with nVariants replicas at
// each stage, served by in-process echo variants over plain pipes so the
// benchmark isolates engine orchestration cost from AEAD cost. rec, when
// non-nil, attaches a transcript recorder to the engine (the transcript
// overhead pair); the telemetry pair passes nil.
func benchEngine(nVariants int, rec *transcript.Recorder) (*monitor.Engine, error) {
	stage := func(idx int, outName string) monitor.StageSpec {
		ins := []string{"x"}
		if idx > 0 {
			ins = []string{"y"}
		}
		hs := make([]*monitor.Handle, nVariants)
		for v := 0; v < nVariants; v++ {
			mon, varC := net.Pipe()
			id := fmt.Sprintf("s%d-v%d", idx, v)
			go echoVariant(id, outName, securechan.Plain(varC))
			hs[v] = monitor.NewHandle(id, idx, "spec", securechan.Plain(mon))
		}
		return monitor.StageSpec{Inputs: ins, Outputs: []string{outName}, Handles: hs}
	}
	e, err := monitor.NewEngine(monitor.EngineConfig{
		GraphInputs:  []string{"x"},
		GraphOutputs: []string{"z"},
		Stages:       []monitor.StageSpec{stage(0, "y"), stage(1, "z")},
		Transcript:   rec,
	})
	if err != nil {
		return nil, err
	}
	e.Start()
	return e, nil
}

// perfTelemetryEngine measures warm end-to-end Infer through the engine with
// telemetry enabled and disabled, on the fast path (1 variant/stage) and the
// voting slow path (3 variants/stage).
//
// The two states run as alternating chunks on the same warm engine and each
// state reports its fastest chunk — back-to-back testing.Benchmark runs of a
// multi-goroutine pipeline drift by ±20% from scheduling alone, which would
// drown the effect being measured. Interleaving subjects both states to the
// same drift, and taking the minimum compares best case to best case, which
// discards the one-sided scheduling noise instead of averaging it in.
func perfTelemetryEngine(emit func(PerfResult)) error {
	defer telemetry.SetEnabled(true)
	in := map[string]*tensor.Tensor{"x": tensor.MustFromSlice([]float32{1, 2, 3, 4}, 4)}
	const (
		chunks    = 15  // per state
		chunkIter = 100 // Infer calls per chunk
	)
	for _, n := range []int{1, 3} {
		e, err := benchEngine(n, nil)
		if err != nil {
			return err
		}
		for i := 0; i < 10; i++ { // warm codec pools and worker paths
			if _, err := e.Infer(in); err != nil {
				e.Stop()
				return err
			}
		}
		var errOut error
		chunk := func(enabled bool) float64 {
			telemetry.SetEnabled(enabled)
			start := time.Now()
			for i := 0; i < chunkIter; i++ {
				if _, err := e.Infer(in); err != nil && errOut == nil {
					errOut = err
				}
			}
			return float64(time.Since(start).Nanoseconds()) / chunkIter
		}
		var en, dis []float64
		for c := 0; c < chunks; c++ {
			dis = append(dis, chunk(false))
			en = append(en, chunk(true))
		}
		allocs := map[bool]float64{}
		for _, enabled := range []bool{true, false} {
			telemetry.SetEnabled(enabled)
			allocs[enabled] = testing.AllocsPerRun(50, func() {
				if _, err := e.Infer(in); err != nil && errOut == nil {
					errOut = err
				}
			})
		}
		telemetry.SetEnabled(true)
		e.Stop()
		if errOut != nil {
			return errOut
		}
		for _, s := range []struct {
			state   string
			samples []float64
			enabled bool
		}{
			{"enabled", en, true},
			{"disabled", dis, false},
		} {
			emit(PerfResult{
				Name:        fmt.Sprintf("telemetry/engine-hotpath/v%d/%s", n, s.state),
				NsPerOp:     minSample(s.samples),
				AllocsPerOp: int64(allocs[s.enabled]),
				Iterations:  chunks * chunkIter,
			})
		}
	}
	return nil
}

func minSample(xs []float64) float64 {
	m := xs[0]
	for _, x := range xs[1:] {
		m = min(m, x)
	}
	return m
}
