package bench

import (
	"testing"
	"time"

	"repro/internal/tensor"
	"repro/internal/transcript"
)

// TestBenchEngineSmoke validates the benchmark harness itself: the
// echo-variant pipeline must produce correct output on both the fast path and
// the voting path before its timings mean anything. The transcript-attached
// build must also actually record — an overhead pair where the "on" state
// silently records nothing would measure nothing.
func TestBenchEngineSmoke(t *testing.T) {
	for _, n := range []int{1, 3} {
		for _, withRec := range []bool{false, true} {
			var rec *transcript.Recorder
			if withRec {
				rec = transcript.NewRecorder(transcript.Config{SampleEvery: -1})
			}
			e, err := benchEngine(n, rec)
			if err != nil {
				t.Fatal(err)
			}
			in := map[string]*tensor.Tensor{"x": tensor.MustFromSlice([]float32{1, 2}, 2)}
			r, err := e.Infer(in)
			if err != nil {
				e.Stop()
				t.Fatalf("v%d: %v", n, err)
			}
			z := r.Tensors["z"]
			if z == nil || z.At(0) != 1 || z.At(1) != 2 {
				e.Stop()
				t.Fatalf("v%d: bad output %v", n, z)
			}
			e.Stop()
			if withRec {
				deadline := time.Now().Add(2 * time.Second)
				for rec.Size() == 0 && time.Now().Before(deadline) {
					time.Sleep(time.Millisecond)
				}
				if got := rec.Size(); got != 1 {
					t.Fatalf("v%d: transcript recorded %d leaves, want 1", n, got)
				}
				rec.Close()
			}
		}
	}
}
