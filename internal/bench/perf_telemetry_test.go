package bench

import (
	"testing"

	"repro/internal/tensor"
)

// TestTelemetryBenchEngineSmoke validates the benchmark harness itself: the
// echo-variant pipeline must produce correct output on both the fast path and
// the voting path before its timings mean anything.
func TestTelemetryBenchEngineSmoke(t *testing.T) {
	for _, n := range []int{1, 3} {
		e, err := telemetryBenchEngine(n)
		if err != nil {
			t.Fatal(err)
		}
		in := map[string]*tensor.Tensor{"x": tensor.MustFromSlice([]float32{1, 2}, 2)}
		r, err := e.Infer(in)
		if err != nil {
			e.Stop()
			t.Fatalf("v%d: %v", n, err)
		}
		z := r.Tensors["z"]
		if z == nil || z.At(0) != 1 || z.At(1) != 2 {
			e.Stop()
			t.Fatalf("v%d: bad output %v", n, z)
		}
		e.Stop()
	}
}
