package bench

import (
	"fmt"
	"io"

	"repro/internal/check"
	"repro/internal/core"
	"repro/internal/diversify"
	"repro/internal/faults"
	"repro/internal/graph"
	"repro/internal/infer"
	"repro/internal/monitor"
	"repro/internal/rewrite"
	"repro/internal/tensor"
	"repro/internal/variant"
)

// SecurityCase is one row of the Table 1 experiment: a vulnerability class
// injected into the TensorFlow-stand-in variant, defended by the variant
// types the paper's table lists.
type SecurityCase struct {
	Class     faults.Class
	CVE       string
	Impact    string
	Defenders []string // defending variant spec names (from diversify.HardenedSpecs)
}

// SecurityResult reports the MVX outcome for one case.
type SecurityResult struct {
	Case SecurityCase
	// Detected means the monitor observed the attack: a divergence /
	// late-dissent event, a dissenting crash, or a failed vote.
	Detected bool
	// Detail describes what the monitor saw.
	Detail string
	// Recovered means a clean majority output was still delivered.
	Recovered bool
}

// table1Cases mirrors Table 1 of the paper: TensorFlow vulnerability classes
// with example CVEs and the variant types that defend against them.
func table1Cases() []SecurityCase {
	return []SecurityCase{
		{Class: faults.OOB, CVE: "CVE-2021-41226", Impact: "DoS / data corruption / code exec",
			Defenders: []string{"different-rt", "bounds-check", "sanitizer", "aslr"}},
		{Class: faults.UNP, CVE: "CVE-2022-21739", Impact: "DoS / incorrect results",
			Defenders: []string{"different-rt", "sanitizer"}},
		{Class: faults.FPE, CVE: "CVE-2022-21725", Impact: "DoS / incorrect results",
			Defenders: []string{"different-rt", "error-handling", "compiler"}},
		{Class: faults.IntOverflow, CVE: "CVE-2022-21727", Impact: "DoS / data corruption / incorrect results",
			Defenders: []string{"different-rt", "sanitizer", "compiler"}},
		{Class: faults.UAF, CVE: "CVE-2021-37652", Impact: "DoS / data corruption / code exec",
			Defenders: []string{"different-rt", "sanitizer"}},
		{Class: faults.ACF, CVE: "CVE-2022-35935", Impact: "DoS",
			Defenders: []string{"different-rt", "error-handling"}},
	}
}

// vulnerableSpec is the TensorFlow stand-in: the plain interp runtime on the
// naive BLAS with no hardening — the stack the injected CVE lives in.
func vulnerableSpec() diversify.Spec {
	return diversify.Spec{Name: "tf-stack", Runtime: "interp", BLAS: "naive", ConvAlgo: "direct", Seed: 1}
}

// Table1 runs the §6.5 security analysis: for each vulnerability class, a
// 3-partition MVX deployment whose panel holds the vulnerable variant plus
// the class's defending variants, attacked by a crafted input that triggers
// the injected bug. The experiment asserts detection and records whether a
// clean majority recovered the batch.
func Table1(o Options) ([]SecurityResult, error) {
	o = o.withDefaults()
	model := "mnasnet"

	specs := append([]diversify.Spec{vulnerableSpec()}, diversify.HardenedSpecs()...)
	b, err := core.BuildBundle(core.OfflineConfig{
		ModelName:        model,
		ModelConfig:      o.ModelConfig,
		PartitionTargets: []int{3},
		PartitionSeed:    o.Seed,
		Specs:            specs,
	})
	if err != nil {
		return nil, err
	}

	var results []SecurityResult
	for _, sc := range table1Cases() {
		inj := faults.Injection{
			Class:         sc.Class,
			TargetOp:      graph.OpConv,
			TargetRuntime: infer.Interp, // the vulnerable framework build
			Seed:          uint64(len(sc.CVE)),
		}
		// Panel: vulnerable + class defenders, MVX on every partition so the
		// fault is covered wherever it fires.
		panel := append([]string{"tf-stack"}, sc.Defenders...)
		res, err := runSecurityCase(b, panel, inj, nil, o)
		if err != nil {
			return nil, fmt.Errorf("bench: table1 %s: %w", sc.Class, err)
		}
		res.Case = sc
		results = append(results, *res)
	}
	return results, nil
}

// FaultCases runs the §6.5 runtime-fault experiments beyond Table 1: a
// FrameFlip-style code bit flip in one BLAS library and a Rowhammer-style
// weight bit flip, each defeated by implementation- or graph-level
// diversity with full majority recovery.
func FaultCases(o Options) ([]SecurityResult, error) {
	o = o.withDefaults()
	model := "mnasnet"
	specs := []diversify.Spec{
		{Name: "blas-naive", Runtime: "interp", BLAS: "naive", ConvAlgo: "im2col", Seed: 21},
		{Name: "blas-blocked", Runtime: "interp", BLAS: "blocked", ConvAlgo: "im2col", Seed: 22},
		{Name: "blas-packed", Runtime: "interp", BLAS: "packed", ConvAlgo: "im2col", Seed: 23},
		{Name: "plain-graph", Runtime: "interp", BLAS: "naive", ConvAlgo: "direct", Seed: 24},
		{Name: "graph-fuse", Runtime: "interp", BLAS: "naive", ConvAlgo: "direct", Seed: 25,
			Transforms: []diversify.GraphTransform{{Kind: diversify.TFuse}}},
	}
	b, err := core.BuildBundle(core.OfflineConfig{
		ModelName:        model,
		ModelConfig:      o.ModelConfig,
		PartitionTargets: []int{3},
		PartitionSeed:    o.Seed,
		Specs:            specs,
	})
	if err != nil {
		return nil, err
	}

	var results []SecurityResult

	// FrameFlip analogue: single-bit code fault in the naive BLAS backend.
	res, err := runSecurityCase(b,
		[]string{"blas-naive", "blas-blocked", "blas-packed"},
		faults.Injection{Class: faults.CodeBitFlip, TargetBLAS: 1 /* blas.Naive */, Seed: 5},
		nil, o)
	if err != nil {
		return nil, fmt.Errorf("bench: frameflip: %w", err)
	}
	res.Case = SecurityCase{Class: faults.CodeBitFlip, CVE: "FrameFlip (Li et al. '24)",
		Impact: "inference depletion", Defenders: []string{"blas-blocked", "blas-packed"}}
	results = append(results, *res)

	// Rowhammer analogue on model weights: the flip targets a weight tensor
	// of the original layout; graph-level fusion renames/retransforms the
	// weights, so diversified variants miss.
	target, err := foldedWeightTarget(b)
	if err != nil {
		return nil, err
	}
	flip := func(vID string, g *graph.Graph) {
		faults.FlipWeightBit(g, target, 0, 30) // high exponent bit
	}
	res, err = runSecurityCase(b,
		[]string{"plain-graph", "graph-fuse", "graph-fuse"},
		faults.Injection{Class: faults.WeightBitFlip},
		flip, o)
	if err != nil {
		return nil, fmt.Errorf("bench: weight bitflip: %w", err)
	}
	res.Case = SecurityCase{Class: faults.WeightBitFlip, CVE: "Rowhammer / TBD (Hong et al. '19)",
		Impact: "model integrity", Defenders: []string{"graph-fuse"}}
	results = append(results, *res)
	return results, nil
}

// foldedWeightTarget picks an initializer of the original model that the
// fusion transform folds away (so the attack misses fused variants).
func foldedWeightTarget(b *core.Bundle) (string, error) {
	sub, err := b.Partitioner.Extract(b.Sets[0], 0)
	if err != nil {
		return "", err
	}
	fused := sub.Clone()
	rewrite.FuseConvBN(fused)
	for name := range sub.Initializers {
		if _, ok := fused.Initializers[name]; !ok {
			return name, nil
		}
	}
	return "", fmt.Errorf("bench: no foldable weight found")
}

// runSecurityCase deploys the panel on every partition, arms the injection
// in all variants (it only bites implementations matching its target), runs
// one batch against a clean baseline, and classifies the outcome.
func runSecurityCase(b *core.Bundle, panel []string, inj faults.Injection,
	flip func(variantID string, g *graph.Graph), o Options) (*SecurityResult, error) {
	plans := make([]monitor.PartitionPlan, len(b.Sets[0].Partitions))
	for i := range plans {
		plans[i] = monitor.PartitionPlan{Variants: panel}
	}
	d, err := core.Deploy(b, 0, core.DeployConfig{
		MVX: &monitor.MVXConfig{
			Plans:    plans,
			Response: monitor.ReportOnly,
			Criteria: realPolicy(),
		},
		Encrypt: true,
		VariantOptions: func(variantID string, e core.Entry) variant.Options {
			opts := variant.Options{
				ConfigureRuntime: func(cfg infer.Config) infer.Config {
					return faults.Arm(cfg, inj)
				},
			}
			if flip != nil {
				opts.TransformGraph = func(g *graph.Graph) { flip(variantID, g) }
			}
			return opts
		},
	})
	if err != nil {
		return nil, err
	}
	defer d.Close()

	in := Input(o.ModelConfig, 3)
	inputs := map[string]*tensor.Tensor{"image": in}
	res, _ := d.Infer(inputs) // failure is classified below, not fatal

	// Clean reference.
	base, err := core.BaselineExecutor(b.Model.Name, o.ModelConfig, infer.Config{})
	if err != nil {
		return nil, err
	}
	want, err := base.Run(inputs)
	if err != nil {
		return nil, err
	}

	out := &SecurityResult{}
	events := d.Engine.Events()
	if len(events) > 0 {
		out.Detected = true
		out.Detail = fmt.Sprintf("%s at stage %d (dissenters %v)", events[0].Kind, events[0].Stage, events[0].Variants)
	}
	if res.Err != nil {
		out.Detected = true
		if out.Detail == "" {
			out.Detail = res.Err.Error()
		}
	}
	if res.Err == nil && res.Tensors != nil {
		ok, err := check.Consistent(res.Tensors, want, check.Policy{Criteria: realPolicy()})
		if err == nil && ok {
			out.Recovered = true
		}
	}
	return out, nil
}

// WriteSecurityTable renders security results.
func WriteSecurityTable(w io.Writer, title string, results []SecurityResult) {
	fmt.Fprintf(w, "\n== %s ==\n", title)
	fmt.Fprintf(w, "%-16s %-26s %-10s %-10s %s\n", "class", "example", "detected", "recovered", "detail")
	for _, r := range results {
		fmt.Fprintf(w, "%-16s %-26s %-10v %-10v %s\n",
			r.Case.Class, r.Case.CVE, r.Detected, r.Recovered, r.Detail)
	}
}
