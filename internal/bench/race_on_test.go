//go:build race

package bench

// raceEnabled reports whether this test binary carries race-detector
// instrumentation, which slows CPU-bound paths ~10x and invalidates
// wall-clock performance assertions.
const raceEnabled = true
