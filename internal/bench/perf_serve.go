// Serving-path benchmarks: N concurrent clients issuing single-input
// requests through the serve front door onto a real MVX engine (3 variants
// behind encrypted pipes). The batched configuration coalesces compatible
// requests into engine batches inside a short window; the naive baseline
// (MaxBatch=1) submits one engine batch per request, paying the per-batch
// wire/seal/checkpoint cost for every client. The ns/op ratio between the
// two is the dynamic-batching speedup the PR acceptance gate tracks.

package bench

import (
	"context"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/control"
	"repro/internal/monitor"
	"repro/internal/securechan"
	"repro/internal/serve"
	"repro/internal/telemetry"
	"repro/internal/tensor"
	"repro/internal/wire"
)

// startServeVariant launches a wire-speaking variant that doubles its "x"
// input, connected to the monitor over an AEAD-sealed in-memory channel so
// every engine batch pays realistic marshal+seal costs. A non-zero offload
// models accelerator execution: the variant parks for that long per batch
// with the host core idle, the regime where real model inference lives (the
// CPU cost of a forward pass is on the device, not the host).
func startServeVariant(b testing.TB, id string, offload time.Duration) *monitor.Handle {
	monC, varC := net.Pipe()
	done := make(chan *securechan.SecureConn, 1)
	go func() {
		vc, err := securechan.Server(varC, nil, nil)
		if err != nil {
			panic(err)
		}
		done <- vc
		for {
			msg, err := wire.Recv(vc)
			if err != nil {
				return
			}
			switch m := msg.(type) {
			case *wire.Batch:
				if offload > 0 {
					time.Sleep(offload)
				}
				y := m.Tensors["x"].Clone()
				y.Scale(2)
				res := &wire.Result{ID: m.ID, Trace: m.Trace, VariantID: id,
					Tensors: map[string]*tensor.Tensor{"y": y}}
				if err := wire.Send(vc, res); err != nil {
					return
				}
			case *wire.Shutdown:
				_ = vc.Close()
				return
			}
		}
	}()
	mc, err := securechan.Client(monC, nil, nil)
	if err != nil {
		b.Fatal(err)
	}
	<-done
	return monitor.NewHandle(id, 0, "spec", mc)
}

// newServeEngine stands up a 3-variant MVX stage for the serving benchmarks.
// A nil reg gives the engine its own private registry.
func newServeEngine(b testing.TB, reg *telemetry.Registry) *monitor.Engine {
	return newServeEngineOffload(b, reg, 0)
}

// newServeEngineOffload is newServeEngine with per-batch accelerator time on
// every variant.
func newServeEngineOffload(b testing.TB, reg *telemetry.Registry, offload time.Duration) *monitor.Engine {
	if reg == nil {
		reg = telemetry.NewRegistry()
	}
	handles := make([]*monitor.Handle, 3)
	for i := range handles {
		handles[i] = startServeVariant(b, fmt.Sprintf("v%d", i), offload)
	}
	eng, err := monitor.NewEngine(monitor.EngineConfig{
		GraphInputs:  []string{"x"},
		GraphOutputs: []string{"y"},
		Stages: []monitor.StageSpec{{
			Inputs:  []string{"x"},
			Outputs: []string{"y"},
			Handles: handles,
		}},
		Metrics: reg,
	})
	if err != nil {
		b.Fatal(err)
	}
	eng.Start()
	b.Cleanup(eng.Stop)
	return eng
}

// perfServe measures sustained request throughput with `clients` concurrent
// callers, batched (window coalescing up to maxBatch requests) vs naive
// (every request is its own engine batch). One op = one request served.
func perfServe(add func(string, func(b *testing.B))) {
	const clients = 16
	const itemWidth = 64 // single-item request payload: x[1,64]

	for _, case_ := range []struct {
		name     string
		maxBatch int
		adaptive bool
	}{
		{"serve/16c/naive-batch1", 1, false},
		{"serve/16c/batched-batch8", 8, false},
		// Same static starting point as batched-batch8, plus the closed-loop
		// controller retuning the batching window from live telemetry on a
		// fast epoch. The acceptance bar is parity-or-better with the static
		// configuration under this saturating load.
		{"serve/16c/adaptive-batch8", 8, true},
	} {
		maxBatch, adaptive := case_.maxBatch, case_.adaptive
		add(case_.name, func(b *testing.B) {
			// The controller reads front-end and engine signals from one
			// registry, so the adaptive case shares it across all three.
			reg := telemetry.NewRegistry()
			eng := newServeEngine(b, reg)
			srv := serve.New(eng, serve.Config{
				MaxBatch:    maxBatch,
				MaxDelay:    500 * time.Microsecond,
				TenantQueue: 4 * clients,
				GlobalQueue: 8 * clients,
				Metrics:     reg,
			})
			b.Cleanup(srv.Close)
			if adaptive {
				ctl := control.New(control.Config{
					Epoch:    50 * time.Millisecond,
					Registry: reg,
					Frontend: srv,
					Pipeline: eng,
					Events:   eng.EventBus(),
				})
				ctl.Start()
				b.Cleanup(ctl.Stop)
			}

			inputs := make([]map[string]*tensor.Tensor, clients)
			for c := range inputs {
				x := tensor.New(1, itemWidth)
				for j := range x.Data() {
					x.Data()[j] = float32(c + j)
				}
				inputs[c] = map[string]*tensor.Tensor{"x": x}
			}

			b.ReportAllocs()
			b.ResetTimer()
			var next atomic.Int64
			var wg sync.WaitGroup
			for c := 0; c < clients; c++ {
				wg.Add(1)
				go func(c int) {
					defer wg.Done()
					for next.Add(1) <= int64(b.N) {
						r, err := srv.Infer(context.Background(), serve.Request{
							Tenant: fmt.Sprintf("t%d", c%4), Inputs: inputs[c],
						})
						if err != nil {
							b.Error(err)
							return
						}
						if r.Tensors["y"].At(0, 0) != 2*float32(c) {
							b.Errorf("client %d: bad demux row", c)
							return
						}
					}
				}(c)
			}
			wg.Wait()
		})
	}
}
