// Data-plane microbenchmarks: the pooled wire codec, the secure record layer
// roundtrip (legacy copying path vs the zero-copy path), and the monitor's
// checkpoint fan-out (per-connection marshal vs encode-once). These back the
// PR acceptance numbers in BENCH_<rev>.json.

package bench

import (
	"fmt"
	"math/rand/v2"
	"net"
	"testing"

	"repro/internal/securechan"
	"repro/internal/tensor"
	"repro/internal/wire"
)

// benchSecurePipe establishes an attestation-less secure channel over an
// in-memory pipe; the handshake (RA-TLS shape, X25519+HKDF) is identical to
// the attested one minus evidence verification, so record-layer costs match.
func benchSecurePipe(b *testing.B) (cli, srv *securechan.SecureConn) {
	b.Helper()
	ca, cb := net.Pipe()
	done := make(chan *securechan.SecureConn, 1)
	go func() {
		c, err := securechan.Server(cb, nil, nil)
		if err != nil {
			panic(err)
		}
		done <- c
	}()
	cli, err := securechan.Client(ca, nil, nil)
	if err != nil {
		b.Fatal(err)
	}
	srv = <-done
	b.Cleanup(func() { cli.Close() })
	return cli, srv
}

// checkpointBatch builds a boundary-checkpoint-sized Batch (~100 KiB of
// tensor data), the dominant message on the monitor's dispatch path.
func checkpointBatch() *wire.Batch {
	rng := rand.New(rand.NewPCG(7, 7))
	return &wire.Batch{ID: 42, Tensors: map[string]*tensor.Tensor{
		"boundary": randTensor(rng, 1, 32, 28, 28),
	}}
}

// perfDataPlane registers the wire/securechan benchmarks.
func perfDataPlane(add func(string, func(b *testing.B))) {
	perfMarshal(add)
	perfRoundtrip(add)
	perfFanOut(add)
}

// perfMarshal contrasts the legacy allocating codec with the pooled
// deterministic encoder on a checkpoint batch.
func perfMarshal(add func(string, func(b *testing.B))) {
	batch := checkpointBatch()
	add("dataplane/marshal/legacy", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := wire.Marshal(batch); err != nil {
				b.Fatal(err)
			}
		}
	})
	add("dataplane/marshal/pooled", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			buf, err := wire.MarshalBuf(batch)
			if err != nil {
				b.Fatal(err)
			}
			buf.Free()
		}
	})
}

// perfRoundtrip measures a full secure-channel echo (client send → server
// receive → server echo → client receive) at checkpoint payload sizes. The
// copy variant uses the legacy Send/Recv (fresh frame, seal output and
// receive buffers per message); the zerocopy variant uses SendShared/RecvBuf
// (pooled frames, in-place open, single write per frame).
func perfRoundtrip(add func(string, func(b *testing.B))) {
	for _, size := range []int{64 << 10, 1 << 20} {
		payload := make([]byte, size)
		for i := range payload {
			payload[i] = byte(i)
		}
		name := fmt.Sprintf("securechan/roundtrip/%dKiB", size>>10)

		add(name+"/copy", func(b *testing.B) {
			cli, srv := benchSecurePipe(b)
			go func() {
				for {
					p, err := srv.Recv()
					if err != nil {
						return
					}
					if err := srv.Send(p); err != nil {
						return
					}
				}
			}()
			b.SetBytes(int64(size))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := cli.Send(payload); err != nil {
					b.Fatal(err)
				}
				if _, err := cli.Recv(); err != nil {
					b.Fatal(err)
				}
			}
		})

		add(name+"/zerocopy", func(b *testing.B) {
			cli, srv := benchSecurePipe(b)
			go func() {
				for {
					p, err := srv.RecvBuf()
					if err != nil {
						return
					}
					if err := srv.SendShared(p); err != nil {
						return
					}
				}
			}()
			b.SetBytes(int64(size))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := cli.SendShared(payload); err != nil {
					b.Fatal(err)
				}
				if _, err := cli.RecvBuf(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// perfFanOut measures dispatching one checkpoint batch to a 3-variant stage:
// the legacy shape marshals per connection and sends the copy; the
// encode-once shape marshals once and seals the shared payload per
// connection, as the monitor's dispatcher now does.
func perfFanOut(add func(string, func(b *testing.B))) {
	const variants = 3
	batch := checkpointBatch()

	setup := func(b *testing.B) []*securechan.SecureConn {
		conns := make([]*securechan.SecureConn, variants)
		for v := range conns {
			cli, srv := benchSecurePipe(b)
			go func() {
				for {
					if _, err := srv.RecvBuf(); err != nil {
						return
					}
				}
			}()
			conns[v] = cli
		}
		return conns
	}

	add("dataplane/fanout/3/per-conn-marshal", func(b *testing.B) {
		conns := setup(b)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for _, c := range conns {
				p, err := wire.Marshal(batch)
				if err != nil {
					b.Fatal(err)
				}
				if err := c.Send(p); err != nil {
					b.Fatal(err)
				}
			}
		}
	})

	add("dataplane/fanout/3/encode-once", func(b *testing.B) {
		conns := setup(b)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			buf := wire.MarshalBatch(batch)
			for _, c := range conns {
				if err := wire.SendEncoded(c, buf.Payload()); err != nil {
					b.Fatal(err)
				}
			}
			buf.Free()
		}
	})
}
