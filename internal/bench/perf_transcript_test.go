package bench

import (
	"testing"
)

// TestTranscriptPerfSmoke runs the transcript benchmark family once and
// checks every gated case actually runs — the benchgate comparison can only
// hold the transcript-on/off pair to its bar if both series are present in
// the report.
func TestTranscriptPerfSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("engine-pair benchmarks are slow")
	}
	ns := map[string]float64{}
	err := perfTranscript(func(name string, f func(b *testing.B)) {
		r := testing.Benchmark(f)
		if r.N == 0 {
			t.Fatalf("%s: benchmark did not run", name)
		}
		ns[name] = float64(r.T.Nanoseconds()) / float64(max(r.N, 1))
		t.Logf("%-44s %12.0f ns/op", name, ns[name])
	}, func(pr PerfResult) {
		ns[pr.Name] = pr.NsPerOp
		t.Logf("%-44s %12.0f ns/op %6d allocs/op", pr.Name, pr.NsPerOp, pr.AllocsPerOp)
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"transcript/merkle/append",
		"transcript/prove/inclusion/4096",
		"transcript/prove/consistency/4096",
		"transcript/record/checkpoint",
		"transcript/record/batch-cycle",
		"transcript/engine-hotpath/v1/on",
		"transcript/engine-hotpath/v1/off",
		"transcript/engine-hotpath/v3/on",
		"transcript/engine-hotpath/v3/off",
	} {
		if ns[want] == 0 {
			t.Fatalf("family missing case %q", want)
		}
	}
	for _, n := range []string{"v1", "v3"} {
		on, off := ns["transcript/engine-hotpath/"+n+"/on"], ns["transcript/engine-hotpath/"+n+"/off"]
		t.Logf("%s transcript overhead: %+.1f%%", n, 100*(on-off)/off)
	}
}
