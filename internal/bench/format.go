package bench

import (
	"fmt"
	"io"
	"time"
)

func msToDur(ms float64) time.Duration {
	return time.Duration(ms * float64(time.Millisecond))
}

// WriteTable renders rows as an aligned text table.
func WriteTable(w io.Writer, title string, rows []Row) {
	fmt.Fprintf(w, "\n== %s ==\n", title)
	fmt.Fprintf(w, "%-16s %-12s %-5s %10s %10s %12s %12s\n",
		"model", "config", "mode", "tput(x)", "lat(x)", "tput(b/s)", "lat(ms)")
	for _, r := range rows {
		fmt.Fprintf(w, "%-16s %-12s %-5s %10.2f %10.2f %12.2f %12.2f\n",
			r.Model, r.Config, r.Mode, r.ThroughputX, r.LatencyX, r.Throughput, r.LatencyMS)
	}
}
