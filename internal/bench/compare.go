// Compare diffs two BENCH_<rev>.json perf reports and gates the named
// hot-path benchmarks: a >15% ns/op regression on a gated series fails the
// comparison (exit 1 from `mvtee-bench -compare`), so kernel and data-plane
// slowdowns surface in CI instead of review archaeology. Non-gated series
// and allocation counts are reported for context only — micro-noise on cold
// series must not block merges.

package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
)

// GatedPrefixes names the hot-path benchmark families whose ns_per_op is
// regression-gated. Everything else in the report is informational.
var GatedPrefixes = []string{
	"gemm/blocked/",
	"gemm/packed/",
	"conv/im2col-blocked",
	"conv/im2col-packed",
	"infer/",
	"check/evaluate-fused/",
	"dataplane/marshal/pooled",
	"dataplane/fanout/3/encode-once",
	"securechan/roundtrip/64KiB/zerocopy",
	"serve/16c/batched-batch8",
	"serve/16c/adaptive-batch8",
	"serve/wire/decode-binary/",
	"serve/wire/encode-binary/",
	"serve/wire/e2e-binary/",
	"cluster/forward/digest/",
	"cluster/serve/16c/2r/",
	"serve/16c/offload200-single",
	"transcript/",
}

// DefaultRegressionThreshold is the fractional ns/op slowdown on a gated
// benchmark that fails the comparison (0.15 = 15%).
const DefaultRegressionThreshold = 0.15

// CompareRow is one benchmark's old-vs-new measurement.
type CompareRow struct {
	Name    string
	OldNs   float64
	NewNs   float64
	Delta   float64 // fractional change, (new-old)/old; +0.20 = 20% slower
	Gated   bool
	Verdict string // "ok", "REGRESSED", "improved", "new", "removed"
}

// ReadPerfJSON loads a BENCH_<rev>.json report.
func ReadPerfJSON(path string) (PerfReport, error) {
	var rep PerfReport
	data, err := os.ReadFile(path)
	if err != nil {
		return rep, err
	}
	if err := json.Unmarshal(data, &rep); err != nil {
		return rep, fmt.Errorf("%s: %w", path, err)
	}
	if len(rep.Results) == 0 {
		return rep, fmt.Errorf("%s: no benchmark results", path)
	}
	return rep, nil
}

func gated(name string) bool {
	for _, p := range GatedPrefixes {
		if strings.HasPrefix(name, p) {
			return true
		}
	}
	return false
}

// ComparePerf diffs two reports. threshold is the fractional gated-series
// slowdown that counts as a regression (<=0 uses the default). The returned
// failures list is empty iff every gated benchmark present in both reports
// stayed within the threshold.
func ComparePerf(old, new PerfReport, threshold float64) (rows []CompareRow, failures []string) {
	if threshold <= 0 {
		threshold = DefaultRegressionThreshold
	}
	oldBy := make(map[string]PerfResult, len(old.Results))
	for _, r := range old.Results {
		oldBy[r.Name] = r
	}
	seen := make(map[string]bool, len(new.Results))
	for _, nr := range new.Results {
		seen[nr.Name] = true
		row := CompareRow{Name: nr.Name, NewNs: nr.NsPerOp, Gated: gated(nr.Name)}
		or, ok := oldBy[nr.Name]
		if !ok {
			row.Verdict = "new"
			rows = append(rows, row)
			continue
		}
		row.OldNs = or.NsPerOp
		if or.NsPerOp > 0 {
			row.Delta = (nr.NsPerOp - or.NsPerOp) / or.NsPerOp
		}
		switch {
		case row.Gated && row.Delta > threshold:
			row.Verdict = "REGRESSED"
			failures = append(failures, fmt.Sprintf("%s: %.0f -> %.0f ns/op (%+.1f%%, limit +%.0f%%)",
				nr.Name, or.NsPerOp, nr.NsPerOp, 100*row.Delta, 100*threshold))
		case row.Delta < -threshold:
			row.Verdict = "improved"
		default:
			row.Verdict = "ok"
		}
		rows = append(rows, row)
	}
	for name, or := range oldBy {
		if !seen[name] {
			rows = append(rows, CompareRow{Name: name, OldNs: or.NsPerOp,
				Gated: gated(name), Verdict: "removed"})
		}
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].Gated != rows[j].Gated {
			return rows[i].Gated // gated series first
		}
		return rows[i].Name < rows[j].Name
	})
	return rows, failures
}

// WriteCompareTable renders the comparison for terminals and CI logs.
func WriteCompareTable(w io.Writer, oldRev, newRev string, rows []CompareRow) {
	fmt.Fprintf(w, "benchmark comparison: %s -> %s\n", oldRev, newRev)
	fmt.Fprintf(w, "%-42s %14s %14s %9s %6s %s\n",
		"name", "old ns/op", "new ns/op", "delta", "gate", "verdict")
	for _, r := range rows {
		gate := ""
		if r.Gated {
			gate = "gated"
		}
		delta := "-"
		if r.OldNs > 0 && r.NewNs > 0 {
			delta = fmt.Sprintf("%+.1f%%", 100*r.Delta)
		}
		oldCol, newCol := "-", "-"
		if r.OldNs > 0 {
			oldCol = fmt.Sprintf("%.0f", r.OldNs)
		}
		if r.NewNs > 0 {
			newCol = fmt.Sprintf("%.0f", r.NewNs)
		}
		fmt.Fprintf(w, "%-42s %14s %14s %9s %6s %s\n", r.Name, oldCol, newCol, delta, gate, r.Verdict)
	}
}
