// Transcript microbenchmarks: the Merkle log primitives (append, inclusion
// and consistency proofs), the recorder hot-path emission cost, and the
// engine hot path with a live transcript recorder attached vs detached. The
// on/off pair is the PR acceptance number: transcript-on serving must stay
// within a few percent of transcript-off on the warm path. The pair needs a
// spare core to mean what it claims — what the serving path pays is the
// non-blocking channel post (transcript/record/checkpoint, ~tens of ns);
// the recorder worker's hashing runs concurrently, so on a single-core host
// its amortized CPU (~3-4µs/batch) lands in the on-state wall time and the
// delta overstates the hot-path cost. The perf report's Note flags this.

package bench

import (
	"encoding/binary"
	"fmt"
	"testing"
	"time"

	"repro/internal/check"
	"repro/internal/monitor"
	"repro/internal/tensor"
	"repro/internal/transcript"
)

// perfTranscript registers the transcript primitive benchmarks and the
// engine-overhead pair. emit records the pre-measured interleaved pair.
func perfTranscript(add func(string, func(b *testing.B)), emit func(PerfResult)) error {
	perfTranscriptMerkle(add)
	perfTranscriptRecord(add)
	return perfTranscriptEngine(emit)
}

// perfTranscriptMerkle measures the tree primitives the audit surface is
// built from: leaf append (amortized over a growing tree) and proof
// generation over a log the size of a busy head window.
func perfTranscriptMerkle(add func(string, func(b *testing.B))) {
	add("transcript/merkle/append", func(b *testing.B) {
		b.ReportAllocs()
		log := transcript.NewLog()
		var leaf [8]byte
		for i := 0; i < b.N; i++ {
			binary.LittleEndian.PutUint64(leaf[:], uint64(i))
			log.Append(transcript.LeafHash(leaf[:]))
		}
	})

	const size = 4096
	log := transcript.NewLog()
	var leaf [8]byte
	for i := 0; i < size; i++ {
		binary.LittleEndian.PutUint64(leaf[:], uint64(i))
		log.Append(transcript.LeafHash(leaf[:]))
	}
	add(fmt.Sprintf("transcript/prove/inclusion/%d", size), func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := log.InclusionProof(uint64(i)%size, size); err != nil {
				b.Fatal(err)
			}
		}
	})
	add(fmt.Sprintf("transcript/prove/consistency/%d", size), func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			m := uint64(i)%(size-1) + 1
			if _, err := log.ConsistencyProof(m, size); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// perfTranscriptRecord measures what the serving hot path actually pays: the
// non-blocking event post into the recorder's channel (checkpoint — the
// highest-frequency call site), and one full batch record cycle including
// the worker-side leaf build and tree append it triggers.
func perfTranscriptRecord(add func(string, func(b *testing.B))) {
	in := map[string]*tensor.Tensor{"x": tensor.MustFromSlice([]float32{1, 2, 3, 4}, 4)}
	rec := transcript.NewRecorder(transcript.Config{
		Buffer:      1 << 16,
		SampleEvery: -1,
		HeadEvery:   1 << 30, // unsigned heads only; never triggered
	})
	defer rec.Close()
	add("transcript/record/checkpoint", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			rec.Checkpoint(uint64(i), 0, check.Digest{})
		}
	})
	add("transcript/record/batch-cycle", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			id := uint64(i) + 1
			rec.Begin(id, id, in)
			rec.Checkpoint(id, 0, check.Digest{1})
			rec.Checkpoint(id, 1, check.Digest{2})
			rec.Deliver(id, in, 0, "bench")
		}
	})
}

// perfTranscriptEngine measures warm end-to-end Infer with a live transcript
// recorder attached vs detached, fast path (1 variant/stage) and voting path
// (3 variants/stage). Same interleaved-chunk protocol as the telemetry pair:
// back-to-back runs of a multi-goroutine pipeline drift too much from
// scheduling alone, so both states alternate chunks on their own warm engine
// and report the fastest chunk.
func perfTranscriptEngine(emit func(PerfResult)) error {
	in := map[string]*tensor.Tensor{"x": tensor.MustFromSlice([]float32{1, 2, 3, 4}, 4)}
	const (
		chunks    = 15
		chunkIter = 100
	)
	for _, n := range []int{1, 3} {
		rec := transcript.NewRecorder(transcript.Config{
			Buffer:      1 << 16,
			SampleEvery: -1,
			HeadEvery:   64,
		})
		engines := map[bool]*monitor.Engine{}
		for _, on := range []bool{false, true} {
			var r *transcript.Recorder
			if on {
				r = rec
			}
			e, err := benchEngine(n, r)
			if err != nil {
				rec.Close()
				return err
			}
			engines[on] = e
		}
		stop := func() {
			engines[false].Stop()
			engines[true].Stop()
			rec.Close()
		}
		var errOut error
		warm := func(e *monitor.Engine) {
			for i := 0; i < 10; i++ {
				if _, err := e.Infer(in); err != nil && errOut == nil {
					errOut = err
				}
			}
		}
		warm(engines[false])
		warm(engines[true])
		chunk := func(on bool) float64 {
			e := engines[on]
			start := time.Now()
			for i := 0; i < chunkIter; i++ {
				if _, err := e.Infer(in); err != nil && errOut == nil {
					errOut = err
				}
			}
			return float64(time.Since(start).Nanoseconds()) / chunkIter
		}
		var onNs, offNs []float64
		for c := 0; c < chunks; c++ {
			offNs = append(offNs, chunk(false))
			onNs = append(onNs, chunk(true))
		}
		allocs := map[bool]float64{}
		for _, on := range []bool{false, true} {
			e := engines[on]
			allocs[on] = testing.AllocsPerRun(50, func() {
				if _, err := e.Infer(in); err != nil && errOut == nil {
					errOut = err
				}
			})
		}
		stop()
		if errOut != nil {
			return errOut
		}
		for _, s := range []struct {
			state   string
			samples []float64
			on      bool
		}{
			{"on", onNs, true},
			{"off", offNs, false},
		} {
			emit(PerfResult{
				Name:        fmt.Sprintf("transcript/engine-hotpath/v%d/%s", n, s.state),
				NsPerOp:     minSample(s.samples),
				AllocsPerOp: int64(allocs[s.on]),
				Iterations:  chunks * chunkIter,
			})
		}
	}
	return nil
}
