package bench

import (
	"fmt"
	"io"
	"time"

	"repro/internal/check"
	"repro/internal/core"
	"repro/internal/diversify"
	"repro/internal/monitor"
	"repro/internal/partition"
	"repro/internal/pipesim"
	"repro/internal/tensor"
)

// AblationRow is one row of a design-choice ablation table.
type AblationRow struct {
	Name   string
	Config string
	Value  float64
	Unit   string
}

// WriteAblationTable renders ablation rows.
func WriteAblationTable(w io.Writer, title string, rows []AblationRow) {
	fmt.Fprintf(w, "\n== %s ==\n", title)
	fmt.Fprintf(w, "%-34s %-22s %12s %s\n", "ablation", "config", "value", "unit")
	for _, r := range rows {
		fmt.Fprintf(w, "%-34s %-22s %12.3f %s\n", r.Name, r.Config, r.Value, r.Unit)
	}
}

// AblationPartitioning compares the paper's random-balanced contraction
// against the naive chain-split baseline (contiguous topological slices):
// balance quality and simulated pipelined throughput.
func AblationPartitioning(o SimOptions) ([]AblationRow, error) {
	o = o.withDefaults()
	var rows []AblationRow
	for _, model := range o.Models {
		b, err := buildReplicaBundle(model, o.Options, []int{5})
		if err != nil {
			return nil, err
		}
		// Random-balanced set is b.Sets[0]; build the chain-split set too.
		chain, err := b.Partitioner.SliceEven(5)
		if err != nil {
			return nil, err
		}
		rows = append(rows,
			AblationRow{Name: "partition-balance", Config: model + "/random", Value: partition.Balance(b.Sets[0]), Unit: "max/mean cost"},
			AblationRow{Name: "partition-balance", Config: model + "/chain", Value: partition.Balance(chain), Unit: "max/mean cost"},
		)
		// Simulated pipelined throughput under both partitionings.
		for _, cs := range []struct {
			label string
			set   *partition.Set
		}{{"random", b.Sets[0]}, {"chain", chain}} {
			bb := b
			if cs.label == "chain" {
				bb, err = core.BuildBundle(core.OfflineConfig{
					Graph: b.Model,
					Sets:  []*partition.Set{chain},
					Specs: []diversify.Spec{diversify.ReplicaSpec("replica")},
				})
				if err != nil {
					return nil, err
				}
			}
			prof, err := pipesim.Calibrate(bb, 0, Input(o.ModelConfig, 1), pipesim.CalibrationConfig{
				Plans:     replicaPlans(5, 1),
				TEEFactor: o.TEEFactor,
				Reps:      o.Reps,
			})
			if err != nil {
				return nil, err
			}
			m, err := pipesim.Simulate(prof, o.SimBatches, false, 0)
			if err != nil {
				return nil, err
			}
			rows = append(rows, AblationRow{
				Name: "pipelined-throughput", Config: model + "/" + cs.label,
				Value: m.Throughput, Unit: "batches/s",
			})
		}
	}
	return rows, nil
}

// AblationVoting measures the checkpoint evaluation cost of the two voting
// strategies across panel sizes — the reliability/resource trade-off §4.3
// mentions.
func AblationVoting(o Options) ([]AblationRow, error) {
	o = o.withDefaults()
	out := tensor.New(1, 64, 16, 16)
	for i := range out.Data() {
		out.Data()[i] = float32(i%97) / 97
	}
	res := map[string]*tensor.Tensor{"y": out}
	var rows []AblationRow
	for _, k := range []int{2, 3, 5, 7} {
		results := make([]map[string]*tensor.Tensor, k)
		for i := range results {
			results[i] = res
		}
		for _, s := range []check.Strategy{check.Unanimous, check.Majority} {
			const iters = 50
			start := time.Now()
			for i := 0; i < iters; i++ {
				if _, err := check.Vote(results, check.DefaultPolicy(), s); err != nil {
					return nil, err
				}
			}
			el := time.Since(start) / iters
			rows = append(rows, AblationRow{
				Name: "vote-cost", Config: fmt.Sprintf("%dvar/%s", k, s),
				Value: float64(el.Microseconds()), Unit: "us/checkpoint",
			})
		}
	}
	return rows, nil
}

// AblationCores sweeps the simulated core budget under full 5-partition ×
// 3-variant MVX (demand: 15 busy variants) to locate the knee where
// replication outruns the machine — the resource trade-off of §7.3. Service
// times scale by demand/cores once the budget is exceeded (static
// processor-sharing approximation).
func AblationCores(o SimOptions) ([]AblationRow, error) {
	o = o.withDefaults()
	model := o.Models[0]
	b, err := buildReplicaBundle(model, o.Options, []int{5})
	if err != nil {
		return nil, err
	}
	prof, err := pipesim.Calibrate(b, 0, Input(o.ModelConfig, 1), pipesim.CalibrationConfig{
		Plans:     replicaPlans(5, 3),
		TEEFactor: o.TEEFactor,
		Reps:      o.Reps,
	})
	if err != nil {
		return nil, err
	}
	var rows []AblationRow
	for _, cores := range []int{4, 8, 15, 36, 72} {
		prof.Cores = cores
		m, err := pipesim.Simulate(prof, o.SimBatches, false, 0)
		if err != nil {
			return nil, err
		}
		rows = append(rows, AblationRow{
			Name:   "pipelined-throughput",
			Config: fmt.Sprintf("%s/5p x 3var @ %d cores", model, cores),
			Value:  m.Throughput, Unit: "batches/s",
		})
	}
	prof.Cores = 0
	return rows, nil
}

// AblationBootstrap measures the Figure 6 bring-up path: per-variant
// attested bootstrap latency (handshake, key distribution, two-stage
// install, exec, binding) and total deployment time, for both transports.
func AblationBootstrap(o Options) ([]AblationRow, error) {
	o = o.withDefaults()
	model := "mnasnet"
	b, err := buildReplicaBundle(model, o, []int{5})
	if err != nil {
		return nil, err
	}
	var rows []AblationRow
	for _, tr := range []struct {
		label string
		t     core.Transport
	}{{"inproc", core.InProc}, {"tcp", core.TCPLoopback}} {
		start := time.Now()
		d, err := core.Deploy(b, 0, core.DeployConfig{
			MVX:     &monitor.MVXConfig{Plans: replicaPlans(5, 3)},
			Encrypt: true, Transport: tr.t,
		})
		if err != nil {
			return nil, err
		}
		el := time.Since(start)
		n := len(d.Monitor.Bindings())
		d.Close()
		rows = append(rows,
			AblationRow{Name: "bootstrap-total", Config: fmt.Sprintf("%s/15var", tr.label),
				Value: float64(el.Microseconds()) / 1000, Unit: "ms"},
			AblationRow{Name: "bootstrap-per-variant", Config: tr.label,
				Value: float64(el.Microseconds()) / 1000 / float64(n), Unit: "ms/variant"},
		)
	}
	return rows, nil
}
