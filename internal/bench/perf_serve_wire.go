// Wire-protocol benchmarks for the public serving surface: the float32-JSON
// compatibility codec against the application/x-mvtee-tensor binary
// streaming codec, at request-decode (the per-request cost the front door
// pays before admission), response-encode, and end-to-end over a real HTTP
// server onto a real MVX engine. The decode ratio at ≥64 KiB inputs is the
// PR acceptance gate: binary must be ≥10x.

package bench

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand/v2"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/serve"
	"repro/internal/telemetry"
	"repro/internal/tensor"
	"repro/internal/wire"
)

// wireInputs builds one request's inputs: x[items, 1024], values drawn from
// a fixed-seed normal so the JSON text carries realistic long decimal
// mantissas instead of compressible round numbers.
func wireInputs(items int) map[string]*tensor.Tensor {
	rng := rand.New(rand.NewPCG(7, uint64(items)))
	x := tensor.New(items, 1024)
	for i := range x.Data() {
		x.Data()[i] = float32(rng.NormFloat64())
	}
	return map[string]*tensor.Tensor{"x": x}
}

func jsonRequestBody(inputs map[string]*tensor.Tensor) []byte {
	jr := serve.InferRequest{Inputs: make(map[string]serve.WireTensor, len(inputs))}
	for name, t := range inputs {
		jr.Inputs[name] = serve.WireTensor{Shape: t.Shape(), Data: t.Data()}
	}
	body, err := json.Marshal(jr)
	if err != nil {
		panic(err)
	}
	return body
}

func binaryRequestBody(inputs map[string]*tensor.Tensor) []byte {
	var b bytes.Buffer
	b.Grow(int(wire.RequestEncodedSize(inputs)))
	if err := wire.EncodeRequest(&b, inputs); err != nil {
		panic(err)
	}
	return b.Bytes()
}

// perfServeWire measures both public codecs. One op = one request body
// decoded (or one response encoded, or one request served end to end).
func perfServeWire(add func(string, func(b *testing.B))) {
	// Request decode: the payload sizes the acceptance gate tracks. Both
	// paths do the full front-door work of turning bytes into validated
	// tensors (the JSON side mirrors serve's decodeJSON: unmarshal, then
	// shape-checked FromSlice per input).
	for _, sz := range []struct {
		name  string
		items int
	}{
		{"64KiB", 16}, // 16×1024 floats
		{"1MiB", 256}, // 256×1024 floats
	} {
		inputs := wireInputs(sz.items)
		jbody := jsonRequestBody(inputs)
		bbody := binaryRequestBody(inputs)

		add("serve/wire/decode-json/"+sz.name, func(b *testing.B) {
			b.SetBytes(int64(len(jbody)))
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				var jr serve.InferRequest
				if err := json.Unmarshal(jbody, &jr); err != nil {
					b.Fatal(err)
				}
				for name, wt := range jr.Inputs {
					if _, err := tensor.FromSlice(wt.Data, wt.Shape...); err != nil {
						b.Fatalf("%s: %v", name, err)
					}
				}
			}
		})
		add("serve/wire/decode-binary/"+sz.name, func(b *testing.B) {
			b.SetBytes(int64(len(bbody)))
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := wire.DecodeRequest(bytes.NewReader(bbody), nil); err != nil {
					b.Fatal(err)
				}
			}
		})
	}

	// Response encode at 64 KiB: the JSON envelope against the streamed
	// binary frames, both into a discarding writer.
	outputs := wireInputs(16)
	add("serve/wire/encode-json/64KiB", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			out := serve.InferResponse{ID: 1, BatchID: 1, BatchFill: 1,
				Outputs: make(map[string]serve.WireTensor, len(outputs))}
			for name, t := range outputs {
				out.Outputs[name] = serve.WireTensor{Shape: t.Shape(), Data: t.Data()}
			}
			if err := json.NewEncoder(io.Discard).Encode(out); err != nil {
				b.Fatal(err)
			}
		}
	})
	add("serve/wire/encode-binary/64KiB", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			meta := wire.PubMeta{ID: 1, BatchID: 1, BatchFill: 1, Tensors: len(outputs)}
			if err := wire.WriteResponseHeader(io.Discard, meta); err != nil {
				b.Fatal(err)
			}
			for name, t := range outputs {
				if err := wire.WriteTensorFrame(io.Discard, name, t); err != nil {
					b.Fatal(err)
				}
			}
			if err := wire.WriteEndFrame(io.Discard); err != nil {
				b.Fatal(err)
			}
		}
	})

	// End to end: concurrent clients through a real HTTP front door (content
	// negotiation, body caps, batching window) onto the 3-variant MVX engine
	// behind sealed channels. 16 KiB per request — large enough that codec
	// cost is visible next to the engine's wire/seal/checkpoint work.
	const clients = 16
	for _, binary := range []bool{false, true} {
		binary := binary
		name := "serve/wire/e2e-json/16KiB"
		if binary {
			name = "serve/wire/e2e-binary/16KiB"
		}
		add(name, func(b *testing.B) {
			eng := newServeEngine(b, nil)
			srv := serve.New(eng, serve.Config{
				MaxBatch:    8,
				MaxDelay:    500 * time.Microsecond,
				TenantQueue: 4 * clients,
				GlobalQueue: 8 * clients,
				Metrics:     telemetry.NewRegistry(),
			})
			b.Cleanup(srv.Close)
			ts := httptest.NewServer(serve.Handler(srv))
			b.Cleanup(ts.Close)

			reqs := make([]serve.Request, clients)
			for c := range reqs {
				x := tensor.New(1, 4096)
				for j := range x.Data() {
					x.Data()[j] = float32(c + j)
				}
				reqs[c] = serve.Request{
					Tenant: fmt.Sprintf("t%d", c%4),
					Inputs: map[string]*tensor.Tensor{"x": x},
				}
			}

			b.ReportAllocs()
			b.ResetTimer()
			var next atomic.Int64
			var wg sync.WaitGroup
			for c := 0; c < clients; c++ {
				wg.Add(1)
				go func(c int) {
					defer wg.Done()
					cl := serve.Client{BaseURL: ts.URL, Binary: binary}
					for next.Add(1) <= int64(b.N) {
						r, err := cl.Infer(context.Background(), reqs[c])
						if err != nil {
							b.Error(err)
							return
						}
						if r.Tensors["y"].At(0, 0) != 2*float32(c) {
							b.Errorf("client %d: bad demux row", c)
							return
						}
					}
				}(c)
			}
			wg.Wait()
		})
	}
}
