package bench

import (
	"strings"
	"testing"
)

// TestClusterPerfSmoke runs the cluster benchmark family once and checks the
// structural invariants the BENCH_<rev>.json review leans on: every case runs,
// the byte planes are populated, digest mode's verification plane is digest
// frames (result plane = leader result only), tensor mode's is follower
// results (digest plane empty), and the verify-bytes ratio — the selective
// forwarding win — clears the 10x acceptance bar with margin to spare. The
// ratio is a deterministic function of payload shape and frame overhead, not
// of host speed, so asserting it here is not a flaky timing gate.
func TestClusterPerfSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("cluster benchmarks are slow")
	}
	ns := map[string]float64{}
	extras := map[string]PerfResult{}
	err := perfCluster(func(name string, f func(b *testing.B)) {
		r := testing.Benchmark(f)
		if r.N == 0 {
			t.Fatalf("%s: benchmark did not run", name)
		}
		ns[name] = float64(r.T.Nanoseconds()) / float64(max(r.N, 1))
		t.Logf("%-40s %12.0f ns/op", name, ns[name])
	}, func(pr PerfResult) {
		extras[pr.Name] = pr
		t.Logf("%-40s %12.0f ns %8d bytes/op", pr.Name, pr.NsPerOp, pr.BytesPerOp)
	})
	if err != nil {
		t.Fatal(err)
	}

	for _, want := range []string{
		"cluster/forward/digest/2r", "cluster/forward/tensor/2r",
		"cluster/forward/digest/4r", "cluster/forward/tensor/4r",
		"cluster/serve/16c/2r/verify0", "cluster/serve/16c/2r/verify1-digest",
		"serve/16c/offload200-single", "cluster/serve/16c/2r/offload200-verify0",
	} {
		if ns[want] == 0 {
			t.Fatalf("family missing case %q: %v", want, ns)
		}
	}
	// The scale-out acceptance bar: with identical modeled accelerator time
	// per batch, two replicas must out-serve one engine. The margin is held
	// loose (any win counts) because the pair is sleep-dominated, not
	// CPU-noise-dominated — except under the race detector, whose ~10x
	// slowdown on the protocol path makes CPU, not accelerator time, the
	// bottleneck again; wall-clock ordering is not asserted there.
	if single, dual := ns["serve/16c/offload200-single"], ns["cluster/serve/16c/2r/offload200-verify0"]; dual >= single && !raceEnabled {
		t.Errorf("2-replica offload serving (%.0f ns/op) does not beat single-engine (%.0f ns/op)", dual, single)
	}
	for name, pr := range extras {
		switch {
		case strings.HasSuffix(name, "/bytes/input"):
			if pr.BytesPerOp <= 0 {
				t.Errorf("%s: empty input plane", name)
			}
		case strings.Contains(name, "/digest/") && strings.HasSuffix(name, "/bytes/digest"):
			if pr.BytesPerOp <= 0 {
				t.Errorf("%s: digest mode recorded no digest traffic", name)
			}
		case strings.Contains(name, "/tensor/") && strings.HasSuffix(name, "/bytes/digest"):
			if pr.BytesPerOp != 0 {
				t.Errorf("%s: tensor mode recorded digest traffic (%d bytes/op)", name, pr.BytesPerOp)
			}
		}
	}
	for _, r := range []string{"2r", "4r"} {
		ratio := extras["cluster/forward/"+r+"/verify-bytes-ratio"].NsPerOp
		if ratio < 10 {
			t.Errorf("%s verify-bytes ratio %.1fx below the 10x acceptance bar", r, ratio)
		}
	}
	// The self-measured telemetry pair: both states must have run on the warm
	// stack. Their relative magnitude is a timing property the perf gate owns;
	// here only presence and sanity are structural.
	for _, want := range []string{
		"cluster/serve/16c/2r/telemetry-on", "cluster/serve/16c/2r/telemetry-off",
	} {
		if extras[want].NsPerOp <= 0 {
			t.Errorf("telemetry pair missing case %q", want)
		}
	}
}
