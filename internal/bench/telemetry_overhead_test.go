package bench

import (
	"testing"
	"time"

	"repro/internal/telemetry"
	"repro/internal/tensor"
)

// TestTelemetryOverheadVariance is a diagnostic for the enabled/disabled
// engine pair: interleaved trials expose scheduling variance that a single
// testing.Benchmark run hides.
func TestTelemetryOverheadVariance(t *testing.T) {
	if testing.Short() {
		t.Skip("diagnostic")
	}
	defer telemetry.SetEnabled(true)
	in := map[string]*tensor.Tensor{"x": tensor.MustFromSlice([]float32{1, 2, 3, 4}, 4)}
	e, err := benchEngine(3, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Stop()
	for i := 0; i < 5; i++ {
		if _, err := e.Infer(in); err != nil {
			t.Fatal(err)
		}
	}
	const iters = 200
	run := func(enabled bool) time.Duration {
		telemetry.SetEnabled(enabled)
		start := time.Now()
		for i := 0; i < iters; i++ {
			if _, err := e.Infer(in); err != nil {
				t.Fatal(err)
			}
		}
		return time.Since(start) / iters
	}
	for trial := 0; trial < 6; trial++ {
		d := run(false)
		en := run(true)
		t.Logf("trial %d: disabled=%v enabled=%v delta=%+.1f%%", trial, d, en,
			100*(float64(en)-float64(d))/float64(d))
	}
}
