// Cluster-tier benchmarks: a router fronting N remote replica engines over
// AEAD-sealed in-memory channels, exercising the full wire protocol (encode,
// seal, frame) without TCP so the numbers isolate protocol cost from kernel
// scheduling. Two families:
//
//   cluster/forward/{digest,tensor}/Nr — per-request route latency with
//   follower cross-checking in digest mode (46-byte vote frames) vs tensor
//   mode (followers ship full outputs), plus companion */bytes/* series
//   reporting the per-op wire bytes on each forward plane. The headline
//   number is the verify-bytes ratio: cross-node verification bytes in
//   tensor mode over digest mode.
//
//   cluster/serve/16c/2r — the serve/16c workload (16 concurrent clients,
//   dynamic batching) over a 2-replica router. The CPU-bound echo cases
//   (verify0, verify1-digest) measure the cluster protocol tax: on a
//   single-core bench host every replica shares the one core, so adding
//   replicas cannot add compute and the delta vs serve/16c is pure routing +
//   wire overhead. The offload200 pair is where the scale-out claim lives:
//   each variant parks 200µs per batch with the host core idle — the
//   accelerator-offload regime real inference runs in — and there 2 replicas
//   genuinely overlap, so cluster/serve/16c/2r/offload200-verify0 must beat
//   the serve/16c/offload200-single baseline (the acceptance bar).

package bench

import (
	"context"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/monitor"
	"repro/internal/securechan"
	"repro/internal/serve"
	"repro/internal/telemetry"
	"repro/internal/tensor"
	"repro/internal/wire"
)

// startBenchReplica serves eng to a router over an in-memory securechan pair
// and returns the router-side handle.
func startBenchReplica(b testing.TB, id string, eng *monitor.Engine) *cluster.Remote {
	routerC, replicaC := net.Pipe()
	go func() {
		conn, err := securechan.Server(replicaC, nil, nil)
		if err != nil {
			return
		}
		_ = cluster.ServeReplica(conn, eng, cluster.ReplicaServerOptions{
			Hello: wire.ReplicaHello{
				ID:           id,
				Variants:     3,
				GraphInputs:  []string{"x"},
				GraphOutputs: []string{"y"},
			},
		})
	}()
	cc, err := securechan.Client(routerC, nil, nil)
	if err != nil {
		b.Fatal(err)
	}
	rem, err := cluster.NewRemote(cc)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { _ = rem.Close() })
	return rem
}

func newBenchRouter(b testing.TB, replicas, verify int, mode cluster.ForwardMode, reg *telemetry.Registry) *cluster.Router {
	reps := make([]cluster.Replica, replicas)
	for i := range reps {
		reps[i] = startBenchReplica(b, fmt.Sprintf("rep-%d", i), newServeEngine(b, nil))
	}
	router, err := cluster.NewRouter(cluster.RouterConfig{
		Replicas: reps,
		Verify:   verify,
		Mode:     mode,
		Sync:     verify > 0, // hold each result until the follower votes land
		Metrics:  reg,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { _ = router.Close() })
	return router
}

// fwdPlanes snapshots the router's per-plane forward-bytes counters.
func fwdPlanes(reg *telemetry.Registry) (input, result, digest uint64) {
	return reg.Counter(telemetry.MetricClusterFwdBytes, telemetry.L("plane", telemetry.ForwardPlaneInput)).Value(),
		reg.Counter(telemetry.MetricClusterFwdBytes, telemetry.L("plane", telemetry.ForwardPlaneResult)).Value(),
		reg.Counter(telemetry.MetricClusterFwdBytes, telemetry.L("plane", telemetry.ForwardPlaneDigest)).Value()
}

// perfCluster measures the distributed tier. It needs emit as well as add:
// the wire-byte series are computed from the router's forward-plane counters
// rather than testing.B's allocation accounting, and the telemetry-on/off
// pair measures itself with interleaved chunks.
func perfCluster(add func(string, func(b *testing.B)), emit func(PerfResult)) error {
	const itemWidth = 1024 // x[1,1024]: 4KiB of activation per request

	// Per-op plane bytes from the last (largest-N) timed run of each case,
	// keyed by case name.
	type planes struct{ input, result, digest float64 }
	perOp := map[string]planes{}

	for _, case_ := range []struct {
		name     string
		replicas int
		mode     cluster.ForwardMode
	}{
		{"cluster/forward/digest/2r", 2, cluster.DigestForward},
		{"cluster/forward/tensor/2r", 2, cluster.TensorForward},
		{"cluster/forward/digest/4r", 4, cluster.DigestForward},
		{"cluster/forward/tensor/4r", 4, cluster.TensorForward},
	} {
		name, nrep, mode := case_.name, case_.replicas, case_.mode
		add(name, func(b *testing.B) {
			reg := telemetry.NewRegistry()
			// Every peer cross-checks the leader: verify = N-1 followers.
			router := newBenchRouter(b, nrep, nrep-1, mode, reg)
			x := tensor.New(1, itemWidth)
			for i := range x.Data() {
				x.Data()[i] = float32(i % 251)
			}
			in := map[string]*tensor.Tensor{"x": x}
			out := router.Outputs()
			infer := func() {
				if _, err := router.Submit(in); err != nil {
					b.Fatal(err)
				}
				r := <-out
				if r.Err != nil {
					b.Fatal(r.Err)
				}
			}
			infer() // warm codec pools and the placement path
			i0, r0, d0 := fwdPlanes(reg)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				infer()
			}
			b.StopTimer()
			i1, r1, d1 := fwdPlanes(reg)
			n := float64(b.N)
			perOp[name] = planes{
				input:  float64(i1-i0) / n,
				result: float64(r1-r0) / n,
				digest: float64(d1-d0) / n,
			}
		})
		p := perOp[name]
		for _, pl := range []struct {
			plane string
			bytes float64
		}{
			{"input", p.input}, {"result", p.result}, {"digest", p.digest},
		} {
			emit(PerfResult{Name: fmt.Sprintf("%s/bytes/%s", name, pl.plane),
				BytesPerOp: int64(pl.bytes)})
		}
	}

	// Verification-plane byte ratio, the PR's headline: what followers cost
	// on the wire per request. In tensor mode that is the follower results —
	// the result plane beyond the leader's own result (which the digest run
	// of the same shape measures). In digest mode it is the digest plane
	// (announce + votes).
	for _, r := range []string{"2r", "4r"} {
		dig, ten := perOp["cluster/forward/digest/"+r], perOp["cluster/forward/tensor/"+r]
		if dig.digest > 0 {
			ratio := (ten.result - dig.result) / dig.digest
			emit(PerfResult{Name: "cluster/forward/" + r + "/verify-bytes-ratio",
				NsPerOp: ratio}) // ratio, not ns: tensor-mode verify bytes / digest-mode verify bytes
		}
	}

	perfClusterServe(add)
	return perfClusterTelemetry(emit)
}

// driveServeClients runs the standard closed-loop client swarm against a
// serve front-end: each client issues single-item x[1,64] requests and checks
// its demuxed row, b.N requests total across the swarm.
func driveServeClients(b *testing.B, srv *serve.Server, clients int) {
	const itemWidth = 64
	inputs := make([]map[string]*tensor.Tensor, clients)
	for c := range inputs {
		x := tensor.New(1, itemWidth)
		for j := range x.Data() {
			x.Data()[j] = float32(c + j)
		}
		inputs[c] = map[string]*tensor.Tensor{"x": x}
	}

	b.ReportAllocs()
	b.ResetTimer()
	var next atomic.Int64
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for next.Add(1) <= int64(b.N) {
				r, err := srv.Infer(context.Background(), serve.Request{
					Tenant: fmt.Sprintf("t%d", c%4), Inputs: inputs[c],
				})
				if err != nil {
					b.Error(err)
					return
				}
				if r.Tensors["y"].At(0, 0) != 2*float32(c) {
					b.Errorf("client %d: bad demux row", c)
					return
				}
			}
		}(c)
	}
	wg.Wait()
}

// benchServeConfig is the serve/16c batching configuration, shared by every
// serving case so single-engine and cluster numbers stay comparable.
func benchServeConfig(clients int, reg *telemetry.Registry) serve.Config {
	return serve.Config{
		MaxBatch:    8,
		MaxDelay:    500 * time.Microsecond,
		TenantQueue: 4 * clients,
		GlobalQueue: 8 * clients,
		Metrics:     reg,
	}
}

// clusterOffload is the modeled per-batch accelerator time for the offload200
// serving pair.
const clusterOffload = 200 * time.Microsecond

// perfClusterServe runs the serve/16c workload over a 2-replica router so its
// ns/op is directly comparable with the single-engine serve/16c family, plus
// the offload200 pair (single engine vs 2 replicas, identical accelerator
// time) that isolates the scale-out benefit from host-CPU contention.
func perfClusterServe(add func(string, func(b *testing.B))) {
	const clients = 16

	for _, case_ := range []struct {
		name   string
		verify int
	}{
		{"cluster/serve/16c/2r/verify0", 0},
		{"cluster/serve/16c/2r/verify1-digest", 1},
	} {
		verify := case_.verify
		add(case_.name, func(b *testing.B) {
			reg := telemetry.NewRegistry()
			router := newBenchRouter(b, 2, verify, cluster.DigestForward, reg)
			srv := serve.New(router, benchServeConfig(clients, reg))
			b.Cleanup(srv.Close)
			driveServeClients(b, srv, clients)
		})
	}

	// The offload pair: same serving stack, same batching knobs, same modeled
	// accelerator time per engine batch. Single-engine throughput is pinned at
	// one device; the 2-replica router overlaps two.
	add("serve/16c/offload200-single", func(b *testing.B) {
		reg := telemetry.NewRegistry()
		eng := newServeEngineOffload(b, reg, clusterOffload)
		srv := serve.New(eng, benchServeConfig(clients, reg))
		b.Cleanup(srv.Close)
		driveServeClients(b, srv, clients)
	})
	add("cluster/serve/16c/2r/offload200-verify0", func(b *testing.B) {
		reg := telemetry.NewRegistry()
		reps := make([]cluster.Replica, 2)
		for i := range reps {
			reps[i] = startBenchReplica(b, fmt.Sprintf("rep-%d", i),
				newServeEngineOffload(b, nil, clusterOffload))
		}
		router, err := cluster.NewRouter(cluster.RouterConfig{Replicas: reps, Metrics: reg})
		if err != nil {
			b.Fatal(err)
		}
		b.Cleanup(func() { _ = router.Close() })
		srv := serve.New(router, benchServeConfig(clients, reg))
		b.Cleanup(srv.Close)
		driveServeClients(b, srv, clients)
	})
}

// perfClusterTelemetry measures the observability tax on the full cluster
// serving path: the serve/16c workload over a 2-replica verifying router with
// the whole cross-node plane live (span harvesting + SpanReport federation,
// digest votes, metrics polling) against the same warm stack with the global
// telemetry kill switch off. Like telemetry/engine-hotpath, the two states
// run as alternating chunks on one warm stack and each reports its fastest
// chunk — min-vs-min discards the one-sided scheduling drift that dwarfs the
// effect on a many-goroutine tier. Both series land under the gated
// cluster/serve/16c/2r/ family: the off state pins the kill switch staying
// free, the on state pins the full-plane tax.
func perfClusterTelemetry(emit func(PerfResult)) error {
	defer telemetry.SetEnabled(true)
	const (
		clients   = 16
		chunks    = 11  // per state
		chunkIter = 400 // requests per chunk across the swarm
		itemWidth = 64
	)

	// Replicas get echo variants over plain pipes (the engine-orchestration
	// and federation cost is the subject, not AEAD) and private tracers and
	// registries so span harvesting and metrics polls run at production shape
	// without polluting the process defaults.
	newEngine := func() (*monitor.Engine, error) {
		hs := make([]*monitor.Handle, 3)
		for v := range hs {
			mon, varC := net.Pipe()
			id := fmt.Sprintf("v%d", v)
			go echoVariant(id, "y", securechan.Plain(varC))
			hs[v] = monitor.NewHandle(id, 0, "spec", securechan.Plain(mon))
		}
		e, err := monitor.NewEngine(monitor.EngineConfig{
			GraphInputs:  []string{"x"},
			GraphOutputs: []string{"y"},
			Stages: []monitor.StageSpec{{
				Inputs: []string{"x"}, Outputs: []string{"y"}, Handles: hs,
			}},
			Metrics: telemetry.NewRegistry(),
			Tracer:  telemetry.NewTracer(4096),
		})
		if err != nil {
			return nil, err
		}
		e.Start()
		return e, nil
	}
	startReplica := func(id string, eng *monitor.Engine) (*cluster.Remote, error) {
		routerC, replicaC := net.Pipe()
		go func() {
			conn, err := securechan.Server(replicaC, nil, nil)
			if err != nil {
				return
			}
			_ = cluster.ServeReplica(conn, eng, cluster.ReplicaServerOptions{
				Hello: wire.ReplicaHello{
					ID:           id,
					Variants:     3,
					GraphInputs:  []string{"x"},
					GraphOutputs: []string{"y"},
				},
				Metrics: telemetry.NewRegistry(),
			})
		}()
		cc, err := securechan.Client(routerC, nil, nil)
		if err != nil {
			return nil, err
		}
		return cluster.NewRemote(cc)
	}

	reps := make([]cluster.Replica, 2)
	for i := range reps {
		eng, err := newEngine()
		if err != nil {
			return err
		}
		defer eng.Stop()
		rem, err := startReplica(fmt.Sprintf("rep-%d", i), eng)
		if err != nil {
			return err
		}
		defer func() { _ = rem.Close() }()
		reps[i] = rem
	}
	reg := telemetry.NewRegistry()
	router, err := cluster.NewRouter(cluster.RouterConfig{
		Replicas: reps,
		Verify:   1,
		Mode:     cluster.DigestForward,
		Sync:     true,
		Metrics:  reg,
		Tracer:   telemetry.NewTracer(8192),
		// A 2s production cadence would fire at most once inside the run;
		// poll fast enough that the metrics-federation plane is part of the
		// measured on-state.
		MetricsInterval: 50 * time.Millisecond,
	})
	if err != nil {
		return err
	}
	defer func() { _ = router.Close() }()
	srv := serve.New(router, benchServeConfig(clients, reg))
	defer srv.Close()

	inputs := make([]map[string]*tensor.Tensor, clients)
	for c := range inputs {
		x := tensor.New(1, itemWidth)
		for j := range x.Data() {
			x.Data()[j] = float32(c + j)
		}
		inputs[c] = map[string]*tensor.Tensor{"x": x}
	}
	// drive issues n requests across the client swarm; the echo variants hand
	// each client its own row back.
	drive := func(n int) error {
		var next atomic.Int64
		var wg sync.WaitGroup
		var mu sync.Mutex
		var firstErr error
		fail := func(err error) {
			mu.Lock()
			if firstErr == nil {
				firstErr = err
			}
			mu.Unlock()
		}
		for c := 0; c < clients; c++ {
			wg.Add(1)
			go func(c int) {
				defer wg.Done()
				for next.Add(1) <= int64(n) {
					r, err := srv.Infer(context.Background(), serve.Request{
						Tenant: fmt.Sprintf("t%d", c%4), Inputs: inputs[c],
					})
					if err != nil {
						fail(err)
						return
					}
					if r.Tensors["y"].At(0, 0) != float32(c) {
						fail(fmt.Errorf("client %d: bad demux row", c))
						return
					}
				}
			}(c)
		}
		wg.Wait()
		return firstErr
	}

	if err := drive(8 * clients); err != nil { // warm codec pools, placement, span plane
		return err
	}
	var errOut error
	chunk := func(enabled bool) float64 {
		telemetry.SetEnabled(enabled)
		start := time.Now()
		if err := drive(chunkIter); err != nil && errOut == nil {
			errOut = err
		}
		return float64(time.Since(start).Nanoseconds()) / chunkIter
	}
	var en, dis []float64
	for c := 0; c < chunks; c++ {
		dis = append(dis, chunk(false))
		en = append(en, chunk(true))
	}
	allocs := map[bool]float64{}
	for _, enabled := range []bool{true, false} {
		telemetry.SetEnabled(enabled)
		allocs[enabled] = testing.AllocsPerRun(30, func() {
			r, err := srv.Infer(context.Background(), serve.Request{
				Tenant: "t0", Inputs: inputs[0],
			})
			if err != nil && errOut == nil {
				errOut = err
			}
			_ = r
		})
	}
	telemetry.SetEnabled(true)
	if errOut != nil {
		return errOut
	}
	for _, s := range []struct {
		state   string
		samples []float64
		enabled bool
	}{
		{"telemetry-on", en, true},
		{"telemetry-off", dis, false},
	} {
		emit(PerfResult{
			Name:        "cluster/serve/16c/2r/" + s.state,
			NsPerOp:     minSample(s.samples),
			AllocsPerOp: int64(allocs[s.enabled]),
			Iterations:  chunks * chunkIter,
		})
	}
	return nil
}
