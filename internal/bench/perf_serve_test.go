package bench

import (
	"testing"
)

// TestServePerfSmoke runs the serving benchmark pair once and reports the
// batched-vs-naive throughput ratio. The ≥2x acceptance bar is enforced by
// review on BENCH_<rev>.json, not here — CI hosts are too noisy for a hard
// assert — but the pair must at least run and demux correctly.
func TestServePerfSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("serving benchmarks are slow")
	}
	results := map[string]float64{}
	perfServe(func(name string, f func(b *testing.B)) {
		r := testing.Benchmark(f)
		if r.N == 0 {
			t.Fatalf("%s: benchmark did not run", name)
		}
		results[name] = float64(r.T.Nanoseconds()) / float64(r.N)
		t.Logf("%-28s %12.0f ns/op", name, results[name])
	})
	naive, batched := results["serve/16c/naive-batch1"], results["serve/16c/batched-batch8"]
	if naive == 0 || batched == 0 {
		t.Fatalf("missing results: %v", results)
	}
	t.Logf("batched speedup: %.2fx", naive/batched)
}
