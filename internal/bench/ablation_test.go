package bench

import (
	"os"
	"testing"
)

func TestAblations(t *testing.T) {
	o := Options{Models: []string{"mnasnet"}}
	so := SimOptions{Options: o, SimBatches: 32}

	rows, err := AblationPartitioning(so)
	if err != nil {
		t.Fatal(err)
	}
	WriteAblationTable(os.Stderr, "Partitioning ablation", rows)

	rows, err = AblationVoting(o)
	if err != nil {
		t.Fatal(err)
	}
	WriteAblationTable(os.Stderr, "Voting ablation", rows)

	rows, err = AblationCores(so)
	if err != nil {
		t.Fatal(err)
	}
	WriteAblationTable(os.Stderr, "Cores ablation", rows)

	rows, err = AblationBootstrap(o)
	if err != nil {
		t.Fatal(err)
	}
	WriteAblationTable(os.Stderr, "Bootstrap ablation", rows)
}
