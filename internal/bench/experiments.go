package bench

import (
	"fmt"

	"repro/internal/check"
	"repro/internal/core"
	"repro/internal/diversify"
	"repro/internal/infer"
	"repro/internal/models"
	"repro/internal/monitor"
)

// buildReplicaBundle partitions one model into the given target counts with
// the identical-replica variant pool (§6.1 "Variants").
func buildReplicaBundle(model string, o Options, targets []int) (*core.Bundle, error) {
	return core.BuildBundle(core.OfflineConfig{
		ModelName:        model,
		ModelConfig:      o.ModelConfig,
		PartitionTargets: targets,
		PartitionSeed:    o.Seed,
		Specs:            []diversify.Spec{diversify.ReplicaSpec("replica")},
	})
}

func deploy(b *core.Bundle, setIdx int, plans []monitor.PartitionPlan, encrypt, async bool) (*core.Deployment, error) {
	return core.Deploy(b, setIdx, core.DeployConfig{
		MVX: &monitor.MVXConfig{
			Plans:    plans,
			Async:    async,
			Response: monitor.Halt,
		},
		Encrypt: encrypt,
	})
}

// measureBoth runs sequential and pipelined measurements on a fresh
// deployment each (pipelined state should not warm sequential runs).
func measureBoth(mk func() (*core.Deployment, error), o Options, model, config string, base Metrics) ([]Row, error) {
	var rows []Row
	d, err := mk()
	if err != nil {
		return nil, err
	}
	seq, err := MeasureSequential(d, Input(o.ModelConfig, 1), o.Warmup, o.Batches)
	d.Close()
	if err != nil {
		return nil, fmt.Errorf("bench: %s %s seq: %w", model, config, err)
	}
	rows = append(rows, row(model, config, "seq", seq, base))

	d, err = mk()
	if err != nil {
		return nil, err
	}
	pipe, err := MeasurePipelined(d, Input(o.ModelConfig, 1), o.Warmup, o.Batches)
	d.Close()
	if err != nil {
		return nil, fmt.Errorf("bench: %s %s pipe: %w", model, config, err)
	}
	rows = append(rows, row(model, config, "pipe", pipe, base))
	return rows, nil
}

// Fig9 reproduces "Performance Impact of Random-Balanced Partitioning": all
// models, partition counts {3,5,7,9}, full fast path (one replica per
// partition), encrypted transport, sequential vs pipelined, normalized to
// the original model.
func Fig9(o Options) ([]Row, error) {
	o = o.withDefaults()
	targets := []int{3, 5, 7, 9}
	var rows []Row
	for _, model := range o.Models {
		base, err := baselineMetrics(model, o)
		if err != nil {
			return nil, err
		}
		b, err := buildReplicaBundle(model, o, targets)
		if err != nil {
			return nil, err
		}
		for si, t := range targets {
			cfg := fmt.Sprintf("%dp", t)
			r, err := measureBoth(func() (*core.Deployment, error) {
				return deploy(b, si, replicaPlans(t, 1), true, false)
			}, o, model, cfg, base)
			if err != nil {
				return nil, err
			}
			rows = append(rows, r...)
		}
	}
	return rows, nil
}

// Fig10 reproduces "Encryption and Checkpoint Overheads": a 5-partition
// setup where the baseline is the unencrypted full fast path; the encrypted
// fast path isolates encryption cost, and the encrypted full slow path (two
// identical variants per partition, so every checkpoint gathers, checks and
// votes) adds the checkpointing cost.
func Fig10(o Options) ([]Row, error) {
	o = o.withDefaults()
	const parts = 5
	var rows []Row
	for _, model := range o.Models {
		b, err := buildReplicaBundle(model, o, []int{parts})
		if err != nil {
			return nil, err
		}
		// Baseline for this figure: plain transport, full fast path.
		d, err := deploy(b, 0, replicaPlans(parts, 1), false, false)
		if err != nil {
			return nil, err
		}
		baseSeq, err := MeasureSequential(d, Input(o.ModelConfig, 1), o.Warmup, o.Batches)
		d.Close()
		if err != nil {
			return nil, err
		}
		d, err = deploy(b, 0, replicaPlans(parts, 1), false, false)
		if err != nil {
			return nil, err
		}
		basePipe, err := MeasurePipelined(d, Input(o.ModelConfig, 1), o.Warmup, o.Batches)
		d.Close()
		if err != nil {
			return nil, err
		}
		rows = append(rows,
			row(model, "plain+fast", "seq", baseSeq, baseSeq),
			row(model, "plain+fast", "pipe", basePipe, basePipe))

		for _, cfg := range []struct {
			label string
			vars  int
		}{
			{"enc+fast", 1},
			{"enc+slow", 2},
		} {
			r, err := measureBoth(func() (*core.Deployment, error) {
				return deploy(b, 0, replicaPlans(parts, cfg.vars), true, false)
			}, o, model, cfg.label, baseSeq)
			if err != nil {
				return nil, err
			}
			// Normalize pipe rows against the pipelined baseline.
			for i := range r {
				if r[i].Mode == "pipe" {
					tx, lx := normalize(Metrics{Throughput: r[i].Throughput,
						Latency: msToDur(r[i].LatencyMS)}, basePipe)
					r[i].ThroughputX, r[i].LatencyX = tx, lx
				}
			}
			rows = append(rows, r...)
		}
	}
	return rows, nil
}

// Fig11 reproduces "Horizontal Variant Scaling Using Selective MVX": a
// 5-partition setup scaling the 3rd partition to 1, 3 and 5 identical
// variants under the hybrid slow-fast path, normalized to the original
// model.
func Fig11(o Options) ([]Row, error) {
	o = o.withDefaults()
	const parts = 5
	var rows []Row
	for _, model := range o.Models {
		base, err := baselineMetrics(model, o)
		if err != nil {
			return nil, err
		}
		b, err := buildReplicaBundle(model, o, []int{parts})
		if err != nil {
			return nil, err
		}
		for _, nvar := range []int{1, 3, 5} {
			plans := replicaPlans(parts, 1)
			plans[2] = replicaPlans(1, nvar)[0] // scale the 3rd partition
			cfg := fmt.Sprintf("%dvar", nvar)
			r, err := measureBoth(func() (*core.Deployment, error) {
				return deploy(b, 0, plans, true, false)
			}, o, model, cfg, base)
			if err != nil {
				return nil, err
			}
			rows = append(rows, r...)
		}
	}
	return rows, nil
}

// Fig12 reproduces "Vertical Variant Scaling Using Selective MVX": a
// 5-partition setup enabling 3-variant MVX on the 3rd partition (1-MVX), on
// the 3rd–5th partitions (3-MVX), and on all partitions (5-MVX/full).
func Fig12(o Options) ([]Row, error) {
	o = o.withDefaults()
	const parts = 5
	configs := []struct {
		label string
		mvxOn []int
	}{
		{"1-mvx", []int{2}},
		{"3-mvx", []int{2, 3, 4}},
		{"5-mvx", []int{0, 1, 2, 3, 4}},
	}
	var rows []Row
	for _, model := range o.Models {
		base, err := baselineMetrics(model, o)
		if err != nil {
			return nil, err
		}
		b, err := buildReplicaBundle(model, o, []int{parts})
		if err != nil {
			return nil, err
		}
		for _, cfg := range configs {
			plans := replicaPlans(parts, 1)
			for _, pi := range cfg.mvxOn {
				plans[pi] = replicaPlans(1, 3)[0]
			}
			r, err := measureBoth(func() (*core.Deployment, error) {
				return deploy(b, 0, plans, true, false)
			}, o, model, cfg.label, base)
			if err != nil {
				return nil, err
			}
			rows = append(rows, r...)
		}
	}
	return rows, nil
}

// realSetupBundle builds the diversified pool of §6.4 (ORT-like and TVM-like
// runtimes with multi-level diversification) plus the heavy straggler spec.
func realSetupBundle(model string, o Options) (*core.Bundle, []diversify.Spec, error) {
	specs := append(diversify.RealSetupSpecs(), diversify.HeavyTVMSpec())
	b, err := core.BuildBundle(core.OfflineConfig{
		ModelName:        model,
		ModelConfig:      o.ModelConfig,
		PartitionTargets: []int{5},
		PartitionSeed:    o.Seed,
		Specs:            specs,
	})
	return b, specs, err
}

// realBaselineExecutor builds the §6.4 "original inference" baseline: the
// unpartitioned model on the production runtime recipe (the ort-cpu spec's
// graph transforms and instance configuration).
func realBaselineExecutor(model string, o Options) (infer.Executor, error) {
	spec := diversify.RealSetupSpecs()[0]
	g, err := models.Build(model, o.ModelConfig)
	if err != nil {
		return nil, err
	}
	dg, err := diversify.Apply(spec, g)
	if err != nil {
		return nil, err
	}
	rc, err := spec.RuntimeConfig()
	if err != nil {
		return nil, err
	}
	return infer.New(dg, rc)
}

// realPolicy is the consistency policy of the diversified-variant runs:
// thresholds wide enough for benign cross-runtime float divergence (§4.3
// "adjust thresholds based on variant noise levels").
func realPolicy() []check.Criterion {
	return []check.Criterion{
		{Metric: check.AllClose, RTol: 5e-2, ATol: 1e-3},
		{Metric: check.Cosine, Threshold: 0.999},
	}
}

// Fig13 reproduces "Performance of Asynchronous Cross-validation Execution
// Mode": 5 partitions, MVX with 3 diversified variants (including the heavy
// TVM straggler) on the 2nd and 3rd partitions, sync vs async. Rows are
// normalized sync-vs-async per model: the async row's ThroughputX/LatencyX
// are relative to the sync row.
func Fig13(o Options) ([]Row, error) {
	o = o.withDefaults()
	var rows []Row
	mvxVariants := []string{"ort-cpu", "ort-altep", "tvm-heavy"}
	for _, model := range o.Models {
		b, _, err := realSetupBundle(model, o)
		if err != nil {
			return nil, err
		}
		plans := make([]monitor.PartitionPlan, 5)
		for i := range plans {
			plans[i] = monitor.PartitionPlan{Variants: []string{"ort-cpu"}}
		}
		plans[1] = monitor.PartitionPlan{Variants: mvxVariants}
		plans[2] = monitor.PartitionPlan{Variants: mvxVariants}

		mk := func(async bool) func() (*core.Deployment, error) {
			return func() (*core.Deployment, error) {
				return core.Deploy(b, 0, core.DeployConfig{
					MVX: &monitor.MVXConfig{
						Plans: plans, Async: async,
						Criteria: realPolicy(),
						Response: monitor.Halt,
					},
					Encrypt: true,
				})
			}
		}
		syncRows, err := measureBoth(mk(false), o, model, "sync", Metrics{Throughput: 1, Latency: msToDur(1000)})
		if err != nil {
			return nil, err
		}
		asyncRows, err := measureBoth(mk(true), o, model, "async", Metrics{Throughput: 1, Latency: msToDur(1000)})
		if err != nil {
			return nil, err
		}
		// Re-normalize async against sync per mode.
		for i := range asyncRows {
			asyncRows[i].ThroughputX = asyncRows[i].Throughput / syncRows[i].Throughput
			asyncRows[i].LatencyX = asyncRows[i].LatencyMS / syncRows[i].LatencyMS
			syncRows[i].ThroughputX, syncRows[i].LatencyX = 1, 1
		}
		rows = append(rows, syncRows...)
		rows = append(rows, asyncRows...)
	}
	return rows, nil
}

// Fig14 reproduces "MVTEE Performance in Real-World Setup": diversified
// 3-variant MVX on the 3rd partition and on the 3rd–5th partitions,
// asynchronous execution, against the original-model baseline.
func Fig14(o Options) ([]Row, error) {
	o = o.withDefaults()
	mvxVariants := []string{"ort-cpu", "ort-altep", "tvm-graph"}
	configs := []struct {
		label string
		mvxOn []int
	}{
		{"1-mvx", []int{2}},
		{"3-mvx", []int{2, 3, 4}},
	}
	var rows []Row
	for _, model := range o.Models {
		ex, err := realBaselineExecutor(model, o)
		if err != nil {
			return nil, err
		}
		base, err := MeasureBaseline(ex, Input(o.ModelConfig, 1), o.Warmup, o.Batches)
		if err != nil {
			return nil, err
		}
		b, _, err := realSetupBundle(model, o)
		if err != nil {
			return nil, err
		}
		for _, cfg := range configs {
			plans := make([]monitor.PartitionPlan, 5)
			for i := range plans {
				plans[i] = monitor.PartitionPlan{Variants: []string{"ort-cpu"}}
			}
			for _, pi := range cfg.mvxOn {
				plans[pi] = monitor.PartitionPlan{Variants: mvxVariants}
			}
			r, err := measureBoth(func() (*core.Deployment, error) {
				return core.Deploy(b, 0, core.DeployConfig{
					MVX: &monitor.MVXConfig{
						Plans: plans, Async: true,
						Criteria: realPolicy(),
						Response: monitor.Halt,
					},
					Encrypt: true,
				})
			}, o, model, cfg.label, base)
			if err != nil {
				return nil, err
			}
			rows = append(rows, r...)
		}
	}
	return rows, nil
}
