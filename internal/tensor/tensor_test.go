package tensor

import (
	"bytes"
	"errors"
	"math"
	"math/rand/v2"
	"reflect"
	"testing"
	"testing/quick"
)

func TestNewShapeAndSize(t *testing.T) {
	tests := []struct {
		shape []int
		size  int
	}{
		{nil, 1},
		{[]int{3}, 3},
		{[]int{2, 3}, 6},
		{[]int{1, 3, 4, 4}, 48},
		{[]int{5, 0, 2}, 0},
	}
	for _, tt := range tests {
		x := New(tt.shape...)
		if x.Size() != tt.size {
			t.Errorf("New(%v).Size() = %d, want %d", tt.shape, x.Size(), tt.size)
		}
		if !reflect.DeepEqual(x.Shape(), append([]int{}, tt.shape...)) && len(tt.shape) > 0 {
			t.Errorf("New(%v).Shape() = %v", tt.shape, x.Shape())
		}
	}
}

func TestNewNegativeDimPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for negative dimension")
		}
	}()
	New(2, -1)
}

func TestVolumeOverflowRejected(t *testing.T) {
	// The wraparound attack: 2^54 * 3 * 32 * 32 ≡ 0 (mod 2^64), so an
	// unchecked product would equal len(nil) and admit a tensor claiming
	// 2^54 leading items.
	if _, err := FromSlice(nil, 1<<54, 3, 32, 32); !errors.Is(err, ErrShape) {
		t.Fatalf("FromSlice(wrapping shape) err = %v, want ErrShape", err)
	}
	if _, err := CheckedVolume([]int{math.MaxInt, 2}); !errors.Is(err, ErrShape) {
		t.Fatalf("Volume(overflowing shape) err = %v, want ErrShape", err)
	}
	if _, err := CheckedVolume([]int{MaxVolume + 1}); !errors.Is(err, ErrShape) {
		t.Fatalf("Volume(MaxVolume+1) err = %v, want ErrShape", err)
	}
	if n, err := CheckedVolume([]int{MaxVolume}); err != nil || n != MaxVolume {
		t.Fatalf("Volume(MaxVolume) = %d, %v; want %d, nil", n, err, MaxVolume)
	}
	// Zero dimensions still give volume zero, even next to huge ones.
	if n, err := CheckedVolume([]int{0, 1 << 54}); err != nil || n != 0 {
		t.Fatalf("Volume([0, 2^54]) = %d, %v; want 0, nil", n, err)
	}
}

func TestNewOverflowPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for overflowing volume")
		}
	}()
	New(1<<54, 1<<54)
}

func TestFromSlice(t *testing.T) {
	data := []float32{1, 2, 3, 4, 5, 6}
	x, err := FromSlice(data, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	if x.At(1, 2) != 6 {
		t.Errorf("At(1,2) = %v, want 6", x.At(1, 2))
	}
	x.Set(9, 0, 1)
	if data[1] != 9 {
		t.Error("FromSlice must retain the caller's slice")
	}
	if _, err := FromSlice(data, 4, 2); err == nil {
		t.Error("expected shape/volume mismatch error")
	}
	if _, err := FromSlice(data, -1, 6); err == nil {
		t.Error("expected negative dim error")
	}
}

func TestAtSetBounds(t *testing.T) {
	x := New(2, 3)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on out-of-range index")
		}
	}()
	x.At(2, 0)
}

func TestReshape(t *testing.T) {
	x := MustFromSlice([]float32{1, 2, 3, 4, 5, 6}, 2, 3)
	y, err := x.Reshape(3, 2)
	if err != nil {
		t.Fatal(err)
	}
	if y.At(2, 1) != 6 {
		t.Errorf("reshaped At(2,1) = %v, want 6", y.At(2, 1))
	}
	y.Set(42, 0, 0)
	if x.At(0, 0) != 42 {
		t.Error("Reshape must share data")
	}
	if _, err := x.Reshape(4, 2); err == nil {
		t.Error("expected volume mismatch error")
	}
}

func TestCloneIndependence(t *testing.T) {
	x := MustFromSlice([]float32{1, 2, 3}, 3)
	y := x.Clone()
	y.Set(7, 1)
	if x.At(1) != 2 {
		t.Error("Clone must deep-copy data")
	}
	if !x.SameShape(y) {
		t.Error("Clone must preserve shape")
	}
}

func TestElementwiseHelpers(t *testing.T) {
	x := MustFromSlice([]float32{1, -2, 3}, 3)
	x.Apply(func(v float32) float32 { return v * 2 })
	if got := x.Data(); got[0] != 2 || got[1] != -4 || got[2] != 6 {
		t.Errorf("Apply result %v", got)
	}
	y := MustFromSlice([]float32{1, 1, 1}, 3)
	if err := x.AddInPlace(y); err != nil {
		t.Fatal(err)
	}
	if x.At(1) != -3 {
		t.Errorf("AddInPlace: %v", x.Data())
	}
	if err := x.AddInPlace(New(2)); err == nil {
		t.Error("expected shape error")
	}
	x.Scale(0.5)
	if x.At(0) != 1.5 {
		t.Errorf("Scale: %v", x.Data())
	}
	x.Fill(0)
	for _, v := range x.Data() {
		if v != 0 {
			t.Fatal("Fill(0) left nonzero")
		}
	}
}

func TestHasNaN(t *testing.T) {
	x := New(3)
	if x.HasNaN() {
		t.Error("zero tensor has no NaN")
	}
	x.Set(float32(math.NaN()), 1)
	if !x.HasNaN() {
		t.Error("NaN not detected")
	}
	y := New(2)
	y.Set(float32(math.Inf(1)), 0)
	if !y.HasNaN() {
		t.Error("Inf not detected")
	}
}

func TestMarshalUnmarshalRoundtrip(t *testing.T) {
	x := MustFromSlice([]float32{1.5, -2.25, 3.125, 0}, 2, 2)
	buf := x.Marshal()
	y, n, err := Unmarshal(buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != len(buf) {
		t.Errorf("consumed %d of %d bytes", n, len(buf))
	}
	if !reflect.DeepEqual(x.Shape(), y.Shape()) || !reflect.DeepEqual(x.Data(), y.Data()) {
		t.Errorf("roundtrip mismatch: %v vs %v", x, y)
	}
}

func TestWriteToReadFromRoundtrip(t *testing.T) {
	x := MustFromSlice([]float32{1, 2, 3, 4, 5, 6, 7, 8}, 2, 2, 2)
	var buf bytes.Buffer
	if _, err := x.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	y, err := ReadFrom(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(x.Data(), y.Data()) || !x.SameShape(y) {
		t.Error("stream roundtrip mismatch")
	}
}

func TestUnmarshalMalformed(t *testing.T) {
	cases := [][]byte{
		nil,
		{1},
		{0xff, 0xff, 0xff, 0xff}, // absurd rank
		MustFromSlice([]float32{1, 2}, 2).Marshal()[:6], // truncated
	}
	for i, c := range cases {
		if _, _, err := Unmarshal(c); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}

// TestQuickSerializationRoundtrip property-tests the wire codec: any tensor
// survives marshal/unmarshal bit-exactly.
func TestQuickSerializationRoundtrip(t *testing.T) {
	f := func(seed uint64, d1, d2 uint8) bool {
		rng := rand.New(rand.NewPCG(seed, 1))
		shape := []int{int(d1%8) + 1, int(d2%8) + 1}
		x := New(shape...)
		for i := range x.Data() {
			x.Data()[i] = float32(rng.NormFloat64())
		}
		y, _, err := Unmarshal(x.Marshal())
		if err != nil {
			return false
		}
		return x.SameShape(y) && reflect.DeepEqual(x.Data(), y.Data())
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestQuickReshapeVolume property-tests that reshape succeeds exactly when
// volumes match.
func TestQuickReshapeVolume(t *testing.T) {
	f := func(a, b uint8) bool {
		m, n := int(a%6)+1, int(b%6)+1
		x := New(m, n)
		_, err := x.Reshape(n, m)
		if err != nil {
			return false
		}
		_, err = x.Reshape(m*n + 1)
		return err != nil
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
