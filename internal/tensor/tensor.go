// Package tensor provides the dense float32 tensor type used throughout the
// MVTEE inference stack. Tensors are row-major (C order); for image data the
// layout is NCHW, matching the ONNX convention the paper builds on.
package tensor

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
)

// Tensor is a dense, row-major float32 tensor. The zero value is an empty
// scalar-less tensor; use New or FromSlice to construct usable values.
type Tensor struct {
	shape []int
	data  []float32
}

// ErrShape reports an invalid or mismatched shape.
var ErrShape = errors.New("tensor: invalid shape")

// MaxVolume bounds a tensor's element count. The float32 backing of a
// tensor at this size is already 8 GiB — far beyond anything the engine
// serves — and the bound keeps the volume product from wrapping around
// the int range on adversarial shapes.
const MaxVolume = math.MaxInt32

// CheckedVolume returns the element count of shape, rejecting negative
// dimensions and products that exceed MaxVolume (including ones that would
// overflow). Use it wherever a shape crosses a trust boundary; Volume is
// the unchecked variant for shapes the process made itself.
func CheckedVolume(shape []int) (int, error) {
	n := 1
	for _, d := range shape {
		if d < 0 {
			return 0, fmt.Errorf("%w: negative dimension %d", ErrShape, d)
		}
		if d > 0 && n > MaxVolume/d {
			return 0, fmt.Errorf("%w: volume of %v exceeds %d elements", ErrShape, shape, MaxVolume)
		}
		n *= d
	}
	return n, nil
}

// New returns a zero-filled tensor with the given shape. It panics if any
// dimension is negative or the volume exceeds MaxVolume; an empty shape
// yields a scalar (one element).
func New(shape ...int) *Tensor {
	n, err := CheckedVolume(shape)
	if err != nil {
		panic(err.Error())
	}
	return &Tensor{shape: append([]int(nil), shape...), data: make([]float32, n)}
}

// FromSlice wraps data in a tensor with the given shape. The data slice is
// retained, not copied. It returns an error if the shape is invalid (see
// Volume) or len(data) does not match the shape volume.
func FromSlice(data []float32, shape ...int) (*Tensor, error) {
	n, err := CheckedVolume(shape)
	if err != nil {
		return nil, err
	}
	if len(data) != n {
		return nil, fmt.Errorf("%w: data length %d != volume %d of %v", ErrShape, len(data), n, shape)
	}
	return &Tensor{shape: append([]int(nil), shape...), data: data}, nil
}

// MustFromSlice is FromSlice that panics on error; for tests and literals.
func MustFromSlice(data []float32, shape ...int) *Tensor {
	t, err := FromSlice(data, shape...)
	if err != nil {
		panic(err)
	}
	return t
}

// Shape returns a copy of the tensor's shape.
func (t *Tensor) Shape() []int { return append([]int(nil), t.shape...) }

// Dims returns the number of dimensions.
func (t *Tensor) Dims() int { return len(t.shape) }

// Dim returns the size of dimension i.
func (t *Tensor) Dim(i int) int { return t.shape[i] }

// Size returns the total number of elements.
func (t *Tensor) Size() int { return len(t.data) }

// Data returns the underlying storage. Mutating it mutates the tensor.
func (t *Tensor) Data() []float32 { return t.data }

// Clone returns a deep copy.
func (t *Tensor) Clone() *Tensor {
	c := &Tensor{shape: append([]int(nil), t.shape...), data: make([]float32, len(t.data))}
	copy(c.data, t.data)
	return c
}

// ResetShape repoints t at shape, reusing t's storage when capacity allows.
// Executor arenas use it to recycle tensors across runs. Existing element
// values are preserved up to the new volume; callers that rely on zeroed
// contents must clear the data themselves.
func (t *Tensor) ResetShape(shape ...int) {
	n := 1
	for _, d := range shape {
		if d < 0 {
			panic(fmt.Sprintf("tensor: negative dimension %d", d))
		}
		n *= d
	}
	if cap(t.data) < n {
		t.data = make([]float32, n)
	} else {
		t.data = t.data[:n]
	}
	t.shape = append(t.shape[:0], shape...)
}

// Reshape returns a view of t with a new shape of equal volume. The data is
// shared with t.
func (t *Tensor) Reshape(shape ...int) (*Tensor, error) {
	n := 1
	for _, d := range shape {
		n *= d
	}
	if n != len(t.data) {
		return nil, fmt.Errorf("%w: cannot reshape volume %d to %v", ErrShape, len(t.data), shape)
	}
	return &Tensor{shape: append([]int(nil), shape...), data: t.data}, nil
}

// At returns the element at the given multi-index.
func (t *Tensor) At(idx ...int) float32 { return t.data[t.offset(idx)] }

// Set stores v at the given multi-index.
func (t *Tensor) Set(v float32, idx ...int) { t.data[t.offset(idx)] = v }

func (t *Tensor) offset(idx []int) int {
	if len(idx) != len(t.shape) {
		panic(fmt.Sprintf("tensor: index rank %d != tensor rank %d", len(idx), len(t.shape)))
	}
	off := 0
	for i, x := range idx {
		if x < 0 || x >= t.shape[i] {
			panic(fmt.Sprintf("tensor: index %d out of range for dim %d (size %d)", x, i, t.shape[i]))
		}
		off = off*t.shape[i] + x
	}
	return off
}

// SameShape reports whether t and o have identical shapes.
func (t *Tensor) SameShape(o *Tensor) bool {
	if len(t.shape) != len(o.shape) {
		return false
	}
	for i := range t.shape {
		if t.shape[i] != o.shape[i] {
			return false
		}
	}
	return true
}

// Fill sets every element to v.
func (t *Tensor) Fill(v float32) {
	for i := range t.data {
		t.data[i] = v
	}
}

// Apply replaces every element x with f(x).
func (t *Tensor) Apply(f func(float32) float32) {
	for i, x := range t.data {
		t.data[i] = f(x)
	}
}

// AddInPlace adds o element-wise into t. Shapes must match exactly.
func (t *Tensor) AddInPlace(o *Tensor) error {
	if !t.SameShape(o) {
		return fmt.Errorf("%w: add %v vs %v", ErrShape, t.shape, o.shape)
	}
	for i := range t.data {
		t.data[i] += o.data[i]
	}
	return nil
}

// Scale multiplies every element by s.
func (t *Tensor) Scale(s float32) {
	for i := range t.data {
		t.data[i] *= s
	}
}

// String renders a compact description (shape plus a few leading values).
func (t *Tensor) String() string {
	n := len(t.data)
	if n > 4 {
		n = 4
	}
	return fmt.Sprintf("Tensor%v%v…", t.shape, t.data[:n])
}

// HasNaN reports whether any element is NaN or ±Inf.
func (t *Tensor) HasNaN() bool {
	for _, x := range t.data {
		if math.IsNaN(float64(x)) || math.IsInf(float64(x), 0) {
			return true
		}
	}
	return false
}

// Volume returns the product of the dims in shape.
func Volume(shape []int) int {
	n := 1
	for _, d := range shape {
		n *= d
	}
	return n
}

// --- Binary serialization -------------------------------------------------
//
// Checkpoint tensors cross TEE boundaries constantly, so the codec is a tight
// little-endian format: u32 rank, rank×u32 dims, raw float32 payload.

// MaxWireDims bounds a tensor's rank on every wire surface (internal
// checkpoint codec and the public binary request protocol alike).
const MaxWireDims = 16

const maxWireDims = MaxWireDims

// WriteTo serializes t to w in the wire format.
func (t *Tensor) WriteTo(w io.Writer) (int64, error) {
	hdr := make([]byte, 4+4*len(t.shape))
	binary.LittleEndian.PutUint32(hdr, uint32(len(t.shape)))
	for i, d := range t.shape {
		binary.LittleEndian.PutUint32(hdr[4+4*i:], uint32(d))
	}
	n1, err := w.Write(hdr)
	if err != nil {
		return int64(n1), fmt.Errorf("tensor: write header: %w", err)
	}
	buf := make([]byte, 4*len(t.data))
	for i, f := range t.data {
		binary.LittleEndian.PutUint32(buf[4*i:], math.Float32bits(f))
	}
	n2, err := w.Write(buf)
	if err != nil {
		return int64(n1 + n2), fmt.Errorf("tensor: write payload: %w", err)
	}
	return int64(n1 + n2), nil
}

// EncodedSize returns the exact wire-format size of t in bytes, so callers
// can encode into a pre-sized buffer with Encode.
func (t *Tensor) EncodedSize() int { return 4 + 4*len(t.shape) + 4*len(t.data) }

// Encode writes the wire-format encoding of t into dst, which must hold at
// least EncodedSize bytes, and returns the number of bytes written. It is the
// allocation-free core of Marshal, used by the pooled wire codec.
func (t *Tensor) Encode(dst []byte) int {
	binary.LittleEndian.PutUint32(dst, uint32(len(t.shape)))
	for i, d := range t.shape {
		binary.LittleEndian.PutUint32(dst[4+4*i:], uint32(d))
	}
	off := 4 + 4*len(t.shape)
	EncodeFloats(dst[off:], t.data)
	return off + 4*len(t.data)
}

// Marshal returns the wire-format encoding of t.
func (t *Tensor) Marshal() []byte {
	buf := make([]byte, t.EncodedSize())
	t.Encode(buf)
	return buf
}

// Unmarshal decodes a tensor from the wire format, returning the tensor and
// the number of bytes consumed.
func Unmarshal(buf []byte) (*Tensor, int, error) {
	if len(buf) < 4 {
		return nil, 0, io.ErrUnexpectedEOF
	}
	rank := int(binary.LittleEndian.Uint32(buf))
	if rank > maxWireDims {
		return nil, 0, fmt.Errorf("%w: rank %d exceeds limit %d", ErrShape, rank, maxWireDims)
	}
	if len(buf) < 4+4*rank {
		return nil, 0, io.ErrUnexpectedEOF
	}
	shape := make([]int, rank)
	vol := 1
	for i := range shape {
		shape[i] = int(binary.LittleEndian.Uint32(buf[4+4*i:]))
		vol *= shape[i]
	}
	off := 4 + 4*rank
	if len(buf) < off+4*vol {
		return nil, 0, io.ErrUnexpectedEOF
	}
	data := make([]float32, vol)
	for i := range data {
		data[i] = math.Float32frombits(binary.LittleEndian.Uint32(buf[off+4*i:]))
	}
	return &Tensor{shape: shape, data: data}, off + 4*vol, nil
}

// EncodeFloats writes src as little-endian float32 bytes into dst, which
// must hold at least 4*len(src) bytes. It is the payload core of Encode,
// exposed so streaming writers can convert in pooled chunks.
func EncodeFloats(dst []byte, src []float32) {
	for i, f := range src {
		binary.LittleEndian.PutUint32(dst[4*i:], math.Float32bits(f))
	}
}

// DecodeFloats fills dst from little-endian float32 bytes in src, which must
// hold at least 4*len(dst) bytes. Bit patterns are preserved exactly (NaN
// payloads included); it is the inverse of EncodeFloats.
func DecodeFloats(dst []float32, src []byte) {
	for i := range dst {
		dst[i] = math.Float32frombits(binary.LittleEndian.Uint32(src[4*i:]))
	}
}

// ReadPayloadInto streams 4*len(dst) bytes of little-endian float32 payload
// from r into dst, staging through scratch so an arbitrarily large tensor
// body is decoded with zero additional allocation. scratch must hold at
// least 4 bytes; larger scratch means fewer reads.
func ReadPayloadInto(r io.Reader, dst []float32, scratch []byte) error {
	if len(scratch) < 4 {
		return fmt.Errorf("tensor: payload scratch too small (%d bytes)", len(scratch))
	}
	chunk := len(scratch) / 4 // whole floats per read
	for off := 0; off < len(dst); off += chunk {
		n := min(chunk, len(dst)-off)
		if _, err := io.ReadFull(r, scratch[:4*n]); err != nil {
			return err
		}
		DecodeFloats(dst[off:off+n], scratch)
	}
	return nil
}

// ReadFrom deserializes a tensor from r in the wire format.
func ReadFrom(r io.Reader) (*Tensor, error) {
	var rankBuf [4]byte
	if _, err := io.ReadFull(r, rankBuf[:]); err != nil {
		return nil, fmt.Errorf("tensor: read rank: %w", err)
	}
	rank := int(binary.LittleEndian.Uint32(rankBuf[:]))
	if rank > maxWireDims {
		return nil, fmt.Errorf("%w: rank %d exceeds limit %d", ErrShape, rank, maxWireDims)
	}
	dims := make([]byte, 4*rank)
	if _, err := io.ReadFull(r, dims); err != nil {
		return nil, fmt.Errorf("tensor: read dims: %w", err)
	}
	shape := make([]int, rank)
	vol := 1
	for i := range shape {
		shape[i] = int(binary.LittleEndian.Uint32(dims[4*i:]))
		vol *= shape[i]
	}
	payload := make([]byte, 4*vol)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, fmt.Errorf("tensor: read payload: %w", err)
	}
	data := make([]float32, vol)
	for i := range data {
		data[i] = math.Float32frombits(binary.LittleEndian.Uint32(payload[4*i:]))
	}
	return &Tensor{shape: shape, data: data}, nil
}
