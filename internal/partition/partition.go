// Package partition implements MVTEE's model partitioning (§4.1, Algorithm
// 1): a randomized graph-contraction algorithm in the spirit of Karger's
// global min-cut, with a customizable soft-preference weight function that
// biases toward balanced partitions and hard constraints that cap partition
// size and keep the partition quotient graph acyclic. Partition boundaries
// become the MVX checkpoints, so the quotient must admit a pipeline order —
// a condition the textbook contraction algorithm does not guarantee on DAGs,
// which CheckConstraints enforces here.
//
// The package also provides the manual "graph slicer" mode (§5.1) and
// parallel generation of multiple partition sets.
package partition

import (
	"errors"
	"fmt"
	"math"
	"math/rand/v2"
	"sort"

	"repro/internal/graph"
	"repro/internal/ops"
)

// Boundary is a checkpoint tensor crossing a partition border.
type Boundary struct {
	Name  string
	Shape []int
}

// Partition is one stage of the partitioned model: a set of graph nodes plus
// its boundary interface.
type Partition struct {
	// Index is the pipeline position (0-based, topological).
	Index int
	// Nodes lists the member node names.
	Nodes []string
	// Inputs and Outputs are the boundary (checkpoint) tensors.
	Inputs  []Boundary
	Outputs []Boundary
	// Cost is the estimated compute cost (MAC count) of the partition.
	Cost float64
}

// Set is a complete partitioning of a model into pipeline stages.
type Set struct {
	Model      string
	Partitions []Partition
}

// WeightFunc scores a candidate contraction of the partitions with the given
// costs; higher means more likely to be picked. Returning 0 removes the edge
// from consideration this round.
type WeightFunc func(costI, costJ float64) float64

// ConstraintFunc accepts or rejects a candidate merge given the merged cost
// and the balance cap (total/target × slack).
type ConstraintFunc func(mergedCost, capCost float64) bool

// Options configures Partition.
type Options struct {
	// Target is the desired number of partitions (checkpoint count + 1).
	Target int
	// BalanceSlack relaxes the per-partition cost cap; 0 means 1.5.
	BalanceSlack float64
	// Weight is the soft-preference function; nil means balance-biased
	// (1/(costI+costJ)).
	Weight WeightFunc
	// Constraint is the hard-constraint function; nil enforces the cap.
	Constraint ConstraintFunc
	// MaxAttempts bounds full restarts when contraction gets stuck; 0 means 8.
	MaxAttempts int
	// Seed drives the randomized contraction; 0 means 1.
	Seed uint64
}

func (o Options) withDefaults() Options {
	if o.BalanceSlack == 0 {
		o.BalanceSlack = 1.5
	}
	if o.Weight == nil {
		o.Weight = func(ci, cj float64) float64 { return 1 / (ci + cj + 1) }
	}
	if o.Constraint == nil {
		o.Constraint = func(merged, capCost float64) bool { return merged <= capCost }
	}
	if o.MaxAttempts == 0 {
		o.MaxAttempts = 8
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	return o
}

// Errors.
var (
	ErrTarget = errors.New("partition: invalid target")
	ErrStuck  = errors.New("partition: contraction stuck; constraints too strict")
)

// NodeCost estimates the MAC cost of a node given resolved input shapes. It
// is exported so custom weight functions can reuse the model.
func NodeCost(n *graph.Node, inShapes [][]int, outShape []int) float64 {
	vol := func(s []int) float64 {
		v := 1.0
		for _, d := range s {
			v *= float64(d)
		}
		return v
	}
	switch n.Op {
	case graph.OpConv, graph.OpConvRelu, graph.OpConvBNRelu, graph.OpDepthwiseConv:
		if len(inShapes) >= 2 && len(inShapes[1]) == 4 && len(outShape) == 4 {
			w := inShapes[1]
			// out volume × per-output MACs (cin/g × kh × kw)
			return vol(outShape) * float64(w[1]*w[2]*w[3])
		}
	case graph.OpGemm, graph.OpMatMul:
		if len(inShapes) >= 2 && len(inShapes[0]) == 2 && len(inShapes[1]) == 2 {
			return float64(inShapes[0][0]) * float64(inShapes[0][1]) * float64(inShapes[1][1])
		}
	case graph.OpBatchMatMul:
		if len(inShapes) >= 1 && len(inShapes[0]) == 3 && len(outShape) == 3 {
			// out volume × inner dimension
			return vol(outShape) * float64(inShapes[0][2])
		}
	}
	if len(outShape) > 0 {
		return vol(outShape)
	}
	return 1
}

// Partitioner performs random-contraction partitioning over one model graph.
// Create it once per graph (it precomputes shapes and costs) and call
// Partition for each desired configuration.
type Partitioner struct {
	g      *graph.Graph
	order  []*graph.Node
	shapes map[string][]int
	costs  map[string]float64 // node name -> cost
}

// NewPartitioner prepares g for partitioning (validation, shape inference,
// per-node cost estimation).
func NewPartitioner(g *graph.Graph) (*Partitioner, error) {
	if err := g.Validate(); err != nil {
		return nil, fmt.Errorf("partition: %w", err)
	}
	shapes, err := ops.InferShapes(g)
	if err != nil {
		return nil, fmt.Errorf("partition: %w", err)
	}
	order, err := g.TopoSort()
	if err != nil {
		return nil, fmt.Errorf("partition: %w", err)
	}
	costs := make(map[string]float64, len(order))
	for _, n := range order {
		ins := make([][]int, len(n.Inputs))
		for i, in := range n.Inputs {
			ins[i] = shapes[in]
		}
		var out []int
		if len(n.Outputs) > 0 {
			out = shapes[n.Outputs[0]]
		}
		costs[n.Name] = NodeCost(n, ins, out)
	}
	return &Partitioner{g: g, order: order, shapes: shapes, costs: costs}, nil
}

// Graph returns the underlying model graph.
func (p *Partitioner) Graph() *graph.Graph { return p.g }

// Shapes returns the inferred tensor shapes (shared; do not mutate).
func (p *Partitioner) Shapes() map[string][]int { return p.shapes }

// TotalCost returns the summed node cost of the model.
func (p *Partitioner) TotalCost() float64 {
	t := 0.0
	for _, c := range p.costs {
		t += c
	}
	return t
}

// Partition runs Algorithm 1: repeated random contraction of edges chosen by
// the weight function, subject to hard constraints, until Target partitions
// remain. It restarts (up to MaxAttempts) with a fresh random stream when
// contraction gets stuck.
func (p *Partitioner) Partition(opts Options) (*Set, error) {
	opts = opts.withDefaults()
	n := len(p.order)
	if opts.Target < 1 || opts.Target > n {
		return nil, fmt.Errorf("%w: %d (graph has %d nodes)", ErrTarget, opts.Target, n)
	}
	var lastErr error
	for attempt := 0; attempt < opts.MaxAttempts; attempt++ {
		rng := rand.New(rand.NewPCG(opts.Seed, uint64(attempt)))
		set, err := p.contract(opts, rng)
		if err == nil {
			return set, nil
		}
		lastErr = err
	}
	return nil, lastErr
}

// contract performs one contraction run.
func (p *Partitioner) contract(opts Options, rng *rand.Rand) (*Set, error) {
	// Union-find over node indices.
	idx := make(map[string]int, len(p.order))
	for i, n := range p.order {
		idx[n.Name] = i
	}
	parent := make([]int, len(p.order))
	cost := make([]float64, len(p.order))
	for i := range parent {
		parent[i] = i
		cost[i] = p.costs[p.order[i].Name]
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}

	// Directed edges between node indices (deduplicated), from dataflow.
	producer := p.g.Producer()
	type edge struct{ u, v int }
	edgeSet := make(map[edge]bool)
	var edges []edge
	for _, n := range p.order {
		for _, in := range n.Inputs {
			pr, ok := producer[in]
			if !ok || pr == n {
				continue
			}
			e := edge{idx[pr.Name], idx[n.Name]}
			if !edgeSet[e] {
				edgeSet[e] = true
				edges = append(edges, e)
			}
		}
	}

	total := 0.0
	for _, c := range cost {
		total += c
	}
	capCost := total / float64(opts.Target) * opts.BalanceSlack
	parts := len(p.order)

	// adjacency over current partitions for acyclicity checks
	quotientSucc := func() map[int]map[int]bool {
		m := make(map[int]map[int]bool)
		for _, e := range edges {
			u, v := find(e.u), find(e.v)
			if u == v {
				continue
			}
			if m[u] == nil {
				m[u] = make(map[int]bool)
			}
			m[u][v] = true
		}
		return m
	}

	for parts > opts.Target {
		// Gather candidate cross-partition edges with weights. The soft
		// preference combines the user weight (balance bias by default)
		// with the pair's connectivity: merging partitions joined by many
		// dataflow edges removes those edges from the cut, biasing the
		// final checkpoints toward narrow module boundaries.
		type cand struct {
			e edge
			w float64
		}
		multiplicity := make(map[edge]int)
		for _, e := range edges {
			u, v := find(e.u), find(e.v)
			if u != v {
				multiplicity[edge{u, v}]++
			}
		}
		var cands []cand
		sumW := 0.0
		for pe, mult := range multiplicity {
			w := opts.Weight(cost[pe.u], cost[pe.v]) * float64(mult)
			if w <= 0 {
				continue
			}
			cands = append(cands, cand{pe, w})
			sumW += w
		}
		if len(cands) == 0 {
			return nil, fmt.Errorf("%w: %d partitions remain, target %d", ErrStuck, parts, opts.Target)
		}
		sort.Slice(cands, func(i, j int) bool {
			if cands[i].e.u != cands[j].e.u {
				return cands[i].e.u < cands[j].e.u
			}
			return cands[i].e.v < cands[j].e.v
		})

		succ := quotientSucc()
		merged := false
		// Sample without replacement by weight until a legal merge is found.
		for len(cands) > 0 {
			r := rng.Float64() * sumW
			pick := len(cands) - 1
			acc := 0.0
			for i, c := range cands {
				acc += c.w
				if r < acc {
					pick = i
					break
				}
			}
			c := cands[pick]
			sumW -= c.w
			cands = append(cands[:pick], cands[pick+1:]...)

			u, v := c.e.u, c.e.v
			if !opts.Constraint(cost[u]+cost[v], capCost) {
				continue
			}
			if quotientPathExcluding(succ, u, v) {
				continue // merging would create a cycle between partitions
			}
			// MergePartitions + UpdateWeights
			parent[v] = u
			cost[u] += cost[v]
			parts--
			merged = true
			break
		}
		if !merged {
			return nil, fmt.Errorf("%w: no legal contraction at %d partitions (target %d)", ErrStuck, parts, opts.Target)
		}
	}

	return p.assemble(find)
}

// quotientPathExcluding reports whether v is reachable from u in the quotient
// graph via a path of length >= 2 (i.e. through at least one intermediate
// partition). If so, contracting u,v would close a cycle.
func quotientPathExcluding(succ map[int]map[int]bool, u, v int) bool {
	visited := map[int]bool{u: true}
	var stack []int
	for s := range succ[u] {
		if s == v {
			continue // the direct edge is allowed
		}
		stack = append(stack, s)
	}
	for len(stack) > 0 {
		x := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if x == v {
			return true
		}
		if visited[x] {
			continue
		}
		visited[x] = true
		for s := range succ[x] {
			if !visited[s] {
				stack = append(stack, s)
			}
		}
	}
	return false
}

// assemble converts a union-find assignment into an ordered Set.
func (p *Partitioner) assemble(find func(int) int) (*Set, error) {
	idx := make(map[string]int, len(p.order))
	for i, n := range p.order {
		idx[n.Name] = i
	}
	groups := make(map[int][]string)
	for i, n := range p.order { // topological order keeps member lists ordered
		groups[find(i)] = append(groups[find(i)], n.Name)
	}
	// Order partitions topologically by quotient edges.
	roots := make([]int, 0, len(groups))
	for r := range groups {
		roots = append(roots, r)
	}
	sort.Ints(roots)
	pos := make(map[int]int, len(roots))
	for i, r := range roots {
		pos[r] = i
	}
	indeg := make([]int, len(roots))
	succ := make([][]int, len(roots))
	producer := p.g.Producer()
	seen := make(map[[2]int]bool)
	for _, n := range p.order {
		for _, in := range n.Inputs {
			pr, ok := producer[in]
			if !ok {
				continue
			}
			u, v := pos[find(idx[pr.Name])], pos[find(idx[n.Name])]
			if u == v || seen[[2]int{u, v}] {
				continue
			}
			seen[[2]int{u, v}] = true
			succ[u] = append(succ[u], v)
			indeg[v]++
		}
	}
	var ready, topo []int
	for i, d := range indeg {
		if d == 0 {
			ready = append(ready, i)
		}
	}
	sort.Ints(ready)
	for len(ready) > 0 {
		x := ready[0]
		ready = ready[1:]
		topo = append(topo, x)
		var next []int
		for _, s := range succ[x] {
			indeg[s]--
			if indeg[s] == 0 {
				next = append(next, s)
			}
		}
		sort.Ints(next)
		ready = append(ready, next...)
	}
	if len(topo) != len(roots) {
		return nil, fmt.Errorf("partition: quotient graph cyclic (internal error)")
	}

	set := &Set{Model: p.g.Name}
	for outIdx, gi := range topo {
		names := groups[roots[gi]]
		part := Partition{Index: outIdx, Nodes: names}
		for _, nm := range names {
			part.Cost += p.costs[nm]
		}
		sub, err := p.g.Subgraph(fmt.Sprintf("%s_p%d", p.g.Name, outIdx), names, p.shapes)
		if err != nil {
			return nil, err
		}
		for _, vi := range sub.Inputs {
			part.Inputs = append(part.Inputs, Boundary{Name: vi.Name, Shape: vi.Shape})
		}
		for _, o := range sub.Outputs {
			part.Outputs = append(part.Outputs, Boundary{Name: o, Shape: append([]int(nil), p.shapes[o]...)})
		}
		set.Partitions = append(set.Partitions, part)
	}
	return set, nil
}

// Extract builds the standalone subgraph for one partition of the set.
func (p *Partitioner) Extract(set *Set, i int) (*graph.Graph, error) {
	if i < 0 || i >= len(set.Partitions) {
		return nil, fmt.Errorf("partition: index %d out of range", i)
	}
	return p.g.Subgraph(fmt.Sprintf("%s_p%d", p.g.Name, i), set.Partitions[i].Nodes, p.shapes)
}

// Balance returns the ratio of the most expensive partition's cost to the
// mean partition cost — 1.0 is perfectly balanced.
func Balance(set *Set) float64 {
	if len(set.Partitions) == 0 {
		return math.NaN()
	}
	var total, maxC float64
	for _, p := range set.Partitions {
		total += p.Cost
		if p.Cost > maxC {
			maxC = p.Cost
		}
	}
	return maxC / (total / float64(len(set.Partitions)))
}
