package partition

import (
	"fmt"
	"sync"
)

// SliceAt implements the manual partitioning mode (§5.1): it slices the model
// at the given cut positions in deterministic topological order, producing
// len(cuts)+1 contiguous partitions. cuts must be strictly increasing node
// indices in (0, len(nodes)).
func (p *Partitioner) SliceAt(cuts []int) (*Set, error) {
	n := len(p.order)
	prev := 0
	for _, c := range cuts {
		if c <= prev || c >= n {
			return nil, fmt.Errorf("partition: cut %d out of range (0,%d) or not increasing", c, n)
		}
		prev = c
	}
	assign := make([]int, n)
	seg := 0
	ci := 0
	for i := range assign {
		if ci < len(cuts) && i >= cuts[ci] {
			seg++
			ci++
		}
		assign[i] = seg
	}
	// Reuse assemble via a find function that maps node index -> first index
	// of its segment.
	segStart := make([]int, len(cuts)+1)
	for i, c := range cuts {
		segStart[i+1] = c
	}
	find := func(i int) int { return segStart[assign[i]] }
	return p.assemble(find)
}

// SliceByNames slices the model so that each named node starts a new
// partition (the nodes before the first name form partition 0).
func (p *Partitioner) SliceByNames(names []string) (*Set, error) {
	pos := make(map[string]int, len(p.order))
	for i, n := range p.order {
		pos[n.Name] = i
	}
	var cuts []int
	for _, nm := range names {
		i, ok := pos[nm]
		if !ok {
			return nil, fmt.Errorf("partition: unknown node %q", nm)
		}
		cuts = append(cuts, i)
	}
	return p.SliceAt(cuts)
}

// SliceEven splits the model into t contiguous partitions of roughly equal
// cost in topological order — the naive chain-split baseline used by the
// balance ablation.
func (p *Partitioner) SliceEven(t int) (*Set, error) {
	if t < 1 || t > len(p.order) {
		return nil, fmt.Errorf("%w: %d", ErrTarget, t)
	}
	if t == 1 {
		return p.SliceAt(nil)
	}
	total := p.TotalCost()
	per := total / float64(t)
	var cuts []int
	acc := 0.0
	for i, n := range p.order {
		acc += p.costs[n.Name]
		if acc >= per*float64(len(cuts)+1) && len(cuts) < t-1 && i+1 < len(p.order) {
			cuts = append(cuts, i+1)
		}
	}
	return p.SliceAt(cuts)
}

// GenerateSets runs randomized partitioning for each target in parallel
// (§5.1 "parallel graph partitioning"), returning one Set per target. Each
// target uses an independent random stream derived from opts.Seed.
func (p *Partitioner) GenerateSets(targets []int, opts Options) ([]*Set, error) {
	sets := make([]*Set, len(targets))
	errs := make([]error, len(targets))
	var wg sync.WaitGroup
	for i, t := range targets {
		wg.Add(1)
		go func() {
			defer wg.Done()
			o := opts
			o.Target = t
			o.Seed = opts.withDefaults().Seed + uint64(i)*1000003
			sets[i], errs[i] = p.Partition(o)
		}()
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("partition: target %d: %w", targets[i], err)
		}
	}
	return sets, nil
}
