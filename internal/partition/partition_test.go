package partition

import (
	"errors"
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"

	"repro/internal/graph"
	"repro/internal/infer"
	"repro/internal/models"
	"repro/internal/tensor"
)

func newPartitioner(t *testing.T, model string) *Partitioner {
	t.Helper()
	g, err := models.Build(model, models.Config{})
	if err != nil {
		t.Fatal(err)
	}
	p, err := NewPartitioner(g)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestPartitionCountAndCoverage(t *testing.T) {
	p := newPartitioner(t, "resnet-50")
	for _, target := range []int{1, 3, 5, 9} {
		set, err := p.Partition(Options{Target: target})
		if err != nil {
			t.Fatalf("target %d: %v", target, err)
		}
		if len(set.Partitions) != target {
			t.Fatalf("target %d: got %d partitions", target, len(set.Partitions))
		}
		// Every node appears in exactly one partition.
		seen := map[string]int{}
		for _, part := range set.Partitions {
			for _, n := range part.Nodes {
				seen[n]++
			}
		}
		if len(seen) != len(p.Graph().Nodes) {
			t.Fatalf("target %d: %d of %d nodes covered", target, len(seen), len(p.Graph().Nodes))
		}
		for n, c := range seen {
			if c != 1 {
				t.Fatalf("node %q in %d partitions", n, c)
			}
		}
	}
}

func TestPartitionIndicesTopological(t *testing.T) {
	// Every partition's inputs must be producible by strictly earlier
	// partitions (or be model inputs) — the pipeline-order invariant.
	p := newPartitioner(t, "googlenet")
	set, err := p.Partition(Options{Target: 6})
	if err != nil {
		t.Fatal(err)
	}
	produced := map[string]int{}
	for _, part := range set.Partitions {
		for _, o := range part.Outputs {
			produced[o.Name] = part.Index
		}
	}
	for _, part := range set.Partitions {
		for _, in := range part.Inputs {
			if src, ok := produced[in.Name]; ok && src >= part.Index {
				t.Fatalf("partition %d consumes %q produced by partition %d", part.Index, in.Name, src)
			}
		}
	}
}

// TestPartitionedExecutionEquivalence is the load-bearing invariant: running
// the extracted partition subgraphs in pipeline order computes exactly the
// original model.
func TestPartitionedExecutionEquivalence(t *testing.T) {
	for _, model := range []string{"resnet-50", "googlenet", "mobilenetv3"} {
		p := newPartitioner(t, model)
		set, err := p.Partition(Options{Target: 5, Seed: 3})
		if err != nil {
			t.Fatal(err)
		}
		in := tensor.New(1, 3, 32, 32)
		rng := rand.New(rand.NewPCG(1, 1))
		for i := range in.Data() {
			in.Data()[i] = float32(rng.NormFloat64())
		}
		full, err := infer.New(p.Graph(), infer.Config{})
		if err != nil {
			t.Fatal(err)
		}
		want, err := full.Run(map[string]*tensor.Tensor{"image": in})
		if err != nil {
			t.Fatal(err)
		}

		values := map[string]*tensor.Tensor{"image": in}
		for i := range set.Partitions {
			sub, err := p.Extract(set, i)
			if err != nil {
				t.Fatal(err)
			}
			ins := map[string]*tensor.Tensor{}
			for _, vi := range sub.Inputs {
				tt, ok := values[vi.Name]
				if !ok {
					t.Fatalf("%s: partition %d input %q not yet produced", model, i, vi.Name)
				}
				ins[vi.Name] = tt
			}
			ex, err := infer.New(sub, infer.Config{})
			if err != nil {
				t.Fatal(err)
			}
			outs, err := ex.Run(ins)
			if err != nil {
				t.Fatal(err)
			}
			for name, tt := range outs {
				values[name] = tt
			}
		}
		got := values["logits"]
		for i := range got.Data() {
			if math.Abs(float64(got.Data()[i]-want["logits"].Data()[i])) > 1e-5 {
				t.Fatalf("%s: partitioned execution deviates at %d", model, i)
			}
		}
	}
}

func TestBoundaryShapesRecorded(t *testing.T) {
	p := newPartitioner(t, "mnasnet")
	set, err := p.Partition(Options{Target: 4})
	if err != nil {
		t.Fatal(err)
	}
	for _, part := range set.Partitions {
		for _, b := range append(part.Inputs, part.Outputs...) {
			if len(b.Shape) == 0 {
				t.Fatalf("partition %d boundary %q has no shape", part.Index, b.Name)
			}
		}
	}
}

func TestBalanceBias(t *testing.T) {
	p := newPartitioner(t, "resnet-50")
	set, err := p.Partition(Options{Target: 5, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if bal := Balance(set); bal > 1.6 {
		t.Fatalf("balance %v exceeds the default slack 1.5 (+tolerance)", bal)
	}
}

func TestCustomWeightAndConstraint(t *testing.T) {
	p := newPartitioner(t, "mnasnet")
	weightCalls := 0
	set, err := p.Partition(Options{
		Target: 3,
		Weight: func(ci, cj float64) float64 {
			weightCalls++
			return 1
		},
		Constraint:   func(merged, capCost float64) bool { return true },
		BalanceSlack: 100,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(set.Partitions) != 3 || weightCalls == 0 {
		t.Fatalf("custom functions not used (%d partitions, %d weight calls)", len(set.Partitions), weightCalls)
	}
}

func TestImpossibleConstraint(t *testing.T) {
	p := newPartitioner(t, "mnasnet")
	_, err := p.Partition(Options{
		Target:      2,
		Constraint:  func(merged, capCost float64) bool { return false },
		MaxAttempts: 2,
	})
	if !errors.Is(err, ErrStuck) {
		t.Fatalf("got %v, want ErrStuck", err)
	}
}

func TestInvalidTarget(t *testing.T) {
	p := newPartitioner(t, "mnasnet")
	for _, target := range []int{0, -1, 100000} {
		if _, err := p.Partition(Options{Target: target}); !errors.Is(err, ErrTarget) {
			t.Errorf("target %d: got %v, want ErrTarget", target, err)
		}
	}
}

func TestDeterministicForSeed(t *testing.T) {
	p := newPartitioner(t, "googlenet")
	a, err := p.Partition(Options{Target: 5, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	b, err := p.Partition(Options{Target: 5, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Partitions {
		if len(a.Partitions[i].Nodes) != len(b.Partitions[i].Nodes) {
			t.Fatal("same seed produced different partitionings")
		}
	}
}

func TestSliceAtManualMode(t *testing.T) {
	p := newPartitioner(t, "mnasnet")
	n := len(p.Graph().Nodes)
	set, err := p.SliceAt([]int{n / 3, 2 * n / 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(set.Partitions) != 3 {
		t.Fatalf("%d partitions", len(set.Partitions))
	}
	if _, err := p.SliceAt([]int{5, 5}); err == nil {
		t.Fatal("non-increasing cuts accepted")
	}
	if _, err := p.SliceAt([]int{0}); err == nil {
		t.Fatal("cut at 0 accepted")
	}
	if _, err := p.SliceAt([]int{n}); err == nil {
		t.Fatal("cut at end accepted")
	}
}

func TestSliceByNames(t *testing.T) {
	p := newPartitioner(t, "mnasnet")
	order, _ := p.Graph().TopoSort()
	set, err := p.SliceByNames([]string{order[10].Name})
	if err != nil {
		t.Fatal(err)
	}
	if len(set.Partitions) != 2 || len(set.Partitions[0].Nodes) != 10 {
		t.Fatalf("slice by name: %d partitions, first has %d nodes",
			len(set.Partitions), len(set.Partitions[0].Nodes))
	}
	if _, err := p.SliceByNames([]string{"missing"}); err == nil {
		t.Fatal("unknown node name accepted")
	}
}

func TestSliceEvenBalanced(t *testing.T) {
	p := newPartitioner(t, "resnet-50")
	set, err := p.SliceEven(5)
	if err != nil {
		t.Fatal(err)
	}
	if len(set.Partitions) != 5 {
		t.Fatalf("%d partitions", len(set.Partitions))
	}
	one, err := p.SliceEven(1)
	if err != nil || len(one.Partitions) != 1 {
		t.Fatalf("SliceEven(1): %v", err)
	}
}

func TestGenerateSetsParallel(t *testing.T) {
	p := newPartitioner(t, "googlenet")
	sets, err := p.GenerateSets([]int{3, 5, 7}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i, want := range []int{3, 5, 7} {
		if len(sets[i].Partitions) != want {
			t.Fatalf("set %d: %d partitions, want %d", i, len(sets[i].Partitions), want)
		}
	}
}

func TestNodeCostModel(t *testing.T) {
	conv := &graph.Node{Op: graph.OpConv}
	c := NodeCost(conv, [][]int{{1, 8, 16, 16}, {16, 8, 3, 3}}, []int{1, 16, 16, 16})
	want := 16.0 * 16 * 16 * 8 * 9
	if c != want {
		t.Fatalf("conv cost = %v, want %v", c, want)
	}
	gemm := &graph.Node{Op: graph.OpGemm}
	if c := NodeCost(gemm, [][]int{{2, 64}, {64, 10}}, []int{2, 10}); c != 2*64*10 {
		t.Fatalf("gemm cost = %v", c)
	}
	relu := &graph.Node{Op: graph.OpRelu}
	if c := NodeCost(relu, nil, []int{1, 4, 4, 4}); c != 64 {
		t.Fatalf("elementwise cost = %v", c)
	}
}

// TestQuickRandomTargets property-tests that partitioning succeeds for
// arbitrary feasible targets and always yields a pipeline-ordered cover.
func TestQuickRandomTargets(t *testing.T) {
	p := newPartitioner(t, "mnasnet")
	n := len(p.Graph().Nodes)
	f := func(seed uint64, tt uint8) bool {
		target := int(tt)%12 + 1
		set, err := p.Partition(Options{Target: target, Seed: seed%1000 + 1})
		if err != nil {
			return false
		}
		if len(set.Partitions) != target {
			return false
		}
		count := 0
		produced := map[string]int{}
		for _, part := range set.Partitions {
			count += len(part.Nodes)
			for _, o := range part.Outputs {
				produced[o.Name] = part.Index
			}
		}
		if count != n {
			return false
		}
		for _, part := range set.Partitions {
			for _, in := range part.Inputs {
				if src, ok := produced[in.Name]; ok && src >= part.Index {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}
