package control

import (
	"strconv"
	"testing"
	"time"

	"repro/internal/monitor"
	"repro/internal/serve"
	"repro/internal/telemetry"
)

// ---- fake actuators -------------------------------------------------------

type fakeFrontend struct {
	batch     int
	delay     time.Duration
	weights   map[string]int
	floor     serve.ShedLevel
	slos      map[string]time.Duration
	floorHist []serve.ShedLevel // every SetShedFloor value, in order
}

func newFakeFrontend() *fakeFrontend {
	return &fakeFrontend{batch: 8, delay: 2 * time.Millisecond, weights: map[string]int{}}
}

func (f *fakeFrontend) BatchWindow() (int, time.Duration)     { return f.batch, f.delay }
func (f *fakeFrontend) SetBatchWindow(b int, d time.Duration) { f.batch, f.delay = b, d }
func (f *fakeFrontend) TenantWeight(n string) int             { return f.weights[n] }
func (f *fakeFrontend) SetTenantWeight(n string, w int)       { f.weights[n] = w }
func (f *fakeFrontend) ShedFloor() serve.ShedLevel            { return f.floor }
func (f *fakeFrontend) TenantSLOs() map[string]time.Duration  { return f.slos }
func (f *fakeFrontend) SetShedFloor(l serve.ShedLevel) {
	f.floor = l
	f.floorHist = append(f.floorHist, l)
}

type fakePipeline struct {
	window int
	stages int
	sets   []int
}

func (p *fakePipeline) InflightWindow() int     { return p.window }
func (p *fakePipeline) SetInflightWindow(n int) { p.window = n; p.sets = append(p.sets, n) }
func (p *fakePipeline) Ladder() []monitor.LadderRung {
	return make([]monitor.LadderRung, p.stages)
}

type fakePool struct {
	spares     int
	provisions []int // partition per ProvisionSpare call
	retires    int
}

func (s *fakePool) SpareCount() int { return s.spares }
func (s *fakePool) ProvisionSpare(partition int) error {
	s.spares++
	s.provisions = append(s.provisions, partition)
	return nil
}
func (s *fakePool) RetireSpare() bool {
	if s.spares == 0 {
		return false
	}
	s.spares--
	s.retires++
	return true
}

// ---- pure-law invariants --------------------------------------------------

// feedback derives one epoch of batch signals from the current knobs at a
// fixed offered load — the plant model for closed-loop law tests.
func feedback(k BatchKnobs, ratePerSec float64) BatchSignals {
	fillPerWindow := ratePerSec * k.MaxDelay.Seconds()
	if fillPerWindow < 1 {
		fillPerWindow = 1 // a batch holds at least its first request
	}
	if fillPerWindow >= float64(k.MaxBatch) {
		// A window that fills before the deadline flushes by size — so a
		// full batch is never reported as a timer flush (MaxBatch=1 always
		// lands here: single-request batches flush instantly).
		return BatchSignals{FlushSize: 90, FlushTimer: 10, MeanFill: float64(k.MaxBatch)}
	}
	return BatchSignals{FlushSize: 10, FlushTimer: 90, MeanFill: fillPerWindow}
}

// TestBatchStepConvergesWithinBoundedRounds drives the slow-start law
// closed-loop at three fixed load levels and asserts the invariants: knobs
// always inside the clamps, the trajectory reaches a fixed point within a
// bounded number of rounds, and after that the only moves are the bounded
// probe cadence (one speculative grow per batchProbeEpochs, reverted the
// next round) — never a sustained oscillation.
func TestBatchStepConvergesWithinBoundedRounds(t *testing.T) {
	lim := Limits{}
	lim.fill()
	const rounds = 40
	for _, tc := range []struct {
		name string
		rate float64 // requests per second
	}{
		{"saturated", 1e6},
		{"light", 100},
		{"moderate", 3200}, // ~6.4 fill at 2ms: inside the hold band
	} {
		t.Run(tc.name, func(t *testing.T) {
			k := BatchKnobs{MaxBatch: 8, MaxDelay: 2 * time.Millisecond}
			st := &BatchState{}
			fixedAt, fixedK, deviations, streak := -1, k, 0, 0
			for round := 0; round < rounds; round++ {
				next := BatchStep(feedback(k, tc.rate), k, lim, st)
				if next.MaxBatch < lim.MinBatch || next.MaxBatch > lim.MaxBatch {
					t.Fatalf("round %d: MaxBatch %d outside [%d,%d]", round, next.MaxBatch, lim.MinBatch, lim.MaxBatch)
				}
				if next.MaxDelay < lim.MinDelay || next.MaxDelay > lim.MaxDelay {
					t.Fatalf("round %d: MaxDelay %v outside [%v,%v]", round, next.MaxDelay, lim.MinDelay, lim.MaxDelay)
				}
				if fixedAt < 0 {
					if next == k {
						fixedAt, fixedK = round, next
					}
				} else if next != fixedK {
					deviations++
					streak++
					// A probe leaves the fixed point for exactly one round
					// before the revert pulls it back; two in a row is a
					// real oscillation.
					if streak > 1 {
						t.Fatalf("round %d: %d consecutive rounds off the fixed point %+v (now %+v)",
							round, streak, fixedK, next)
					}
				} else {
					streak = 0
				}
				k = next
			}
			if fixedAt < 0 || fixedAt > 12 {
				t.Fatalf("did not converge within 12 rounds (fixed at %d), final %+v", fixedAt, k)
			}
			if maxDev := rounds/batchProbeEpochs + 1; deviations > maxDev {
				t.Fatalf("left the fixed point %d times after fixing at round %d, want <= %d (probe cadence)",
					deviations, fixedAt, maxDev)
			}
		})
	}
}

// TestBatchLawDirection pins the sign of each response: saturation grows the
// batch, light load shrinks the delay, timer stalls at half fill shrink the
// batch, no traffic holds everything.
func TestBatchLawDirection(t *testing.T) {
	lim := Limits{}
	lim.fill()
	cur := BatchKnobs{MaxBatch: 8, MaxDelay: 2 * time.Millisecond}

	sat := BatchLaw(BatchSignals{FlushSize: 95, FlushTimer: 5, MeanFill: 8}, cur, lim)
	if sat.MaxBatch <= cur.MaxBatch {
		t.Fatalf("saturated signal did not grow MaxBatch: %+v", sat)
	}
	light := BatchLaw(BatchSignals{FlushSize: 2, FlushTimer: 98, MeanFill: 1}, cur, lim)
	if light.MaxDelay >= cur.MaxDelay {
		t.Fatalf("light signal did not shrink MaxDelay: %+v", light)
	}
	// Timer-dominated at exactly half fill: the window is wider than what
	// arrivals deliver before the deadline; halving it keeps the mean batch
	// and removes the stall.
	stalled := BatchLaw(BatchSignals{FlushSize: 5, FlushTimer: 95, MeanFill: 4}, cur, lim)
	if stalled.MaxBatch >= cur.MaxBatch {
		t.Fatalf("stalled signal did not shrink MaxBatch: %+v", stalled)
	}
	idle := BatchLaw(BatchSignals{}, cur, lim)
	if idle != cur {
		t.Fatalf("no-traffic epoch moved knobs: %+v", idle)
	}
}

// closedLoopFeedback models a saturating closed loop with `conc` blocked
// clients: a window no wider than the concurrency fills completely (size
// flushes); a wider one collects exactly the concurrency and stalls on the
// deadline timer (the overshoot state the bench exposed).
func closedLoopFeedback(k BatchKnobs, conc int) BatchSignals {
	if k.MaxBatch <= conc {
		return BatchSignals{FlushSize: 95, FlushTimer: 5, MeanFill: float64(k.MaxBatch)}
	}
	return BatchSignals{FlushSize: 5, FlushTimer: 95, MeanFill: float64(conc)}
}

// TestBatchStepConvergesAtConcurrency drives the slow-start law against the
// closed-loop plant: from a window below the offered concurrency it must
// grow to exactly the concurrency and then hold there, with overshoot
// limited to the bounded probe cadence (one speculative epoch per
// batchProbeEpochs), never a sustained stall state.
func TestBatchStepConvergesAtConcurrency(t *testing.T) {
	lim := Limits{}
	lim.fill()
	const conc = 16
	const rounds = 3 * batchProbeEpochs
	k := BatchKnobs{MaxBatch: 8, MaxDelay: 500 * time.Microsecond}
	st := &BatchState{}
	reached, over := -1, 0
	for round := 0; round < rounds; round++ {
		k = BatchStep(closedLoopFeedback(k, conc), k, lim, st)
		if k.MaxBatch == conc && reached < 0 {
			reached = round
		}
		if reached >= 0 && k.MaxBatch != conc {
			if k.MaxBatch < conc {
				t.Fatalf("round %d: window fell below concurrency: %d", round, k.MaxBatch)
			}
			over++
		}
	}
	if reached < 0 || reached > 4 {
		t.Fatalf("did not reach the concurrency window within 4 rounds (reached at %d)", reached)
	}
	// Each probe overshoots for at most one epoch before the revert; with
	// three probe windows that bounds the speculative epochs.
	if maxOver := rounds/batchProbeEpochs + 1; over > maxOver {
		t.Fatalf("spent %d epochs above concurrency, want <= %d (probe cadence)", over, maxOver)
	}
	if k.MaxBatch != conc {
		t.Fatalf("final window %d, want %d", k.MaxBatch, conc)
	}
}

// TestBatchStepRecoversFromOvershotStart: an operator-misconfigured window
// far above the offered concurrency (every flush a deadline stall) must walk
// back down to the concurrency instead of holding in the degraded state.
func TestBatchStepRecoversFromOvershotStart(t *testing.T) {
	lim := Limits{}
	lim.fill()
	const conc = 16
	k := BatchKnobs{MaxBatch: 64, MaxDelay: 500 * time.Microsecond}
	st := &BatchState{}
	for round := 0; round < 8; round++ {
		k = BatchStep(closedLoopFeedback(k, conc), k, lim, st)
		if k.MaxBatch == conc {
			return
		}
	}
	t.Fatalf("overshot start never recovered: final %+v", k)
}

// TestLittleWindowMonotone pins monotonicity in both signals — more load or
// more latency never yields a smaller window — plus the idle-epoch zero.
func TestLittleWindowMonotone(t *testing.T) {
	if got := LittleWindow(0, time.Second, 1.25); got != 0 {
		t.Fatalf("idle lambda gave %d, want 0", got)
	}
	if got := LittleWindow(100, 0, 1.25); got != 0 {
		t.Fatalf("zero latency gave %d, want 0", got)
	}
	prev := 0
	for _, lambda := range []float64{1, 10, 100, 1000} {
		w := LittleWindow(lambda, 50*time.Millisecond, 1.25)
		if w < prev {
			t.Fatalf("window shrank with rising load: lambda=%v w=%d prev=%d", lambda, w, prev)
		}
		prev = w
	}
	if a, b := LittleWindow(100, 10*time.Millisecond, 1.25), LittleWindow(100, 100*time.Millisecond, 1.25); b < a {
		t.Fatalf("window shrank with rising latency: %d -> %d", a, b)
	}
}

func TestSpareTargetClamps(t *testing.T) {
	if got := SpareTarget(0, 2, 1, 8); got != 1 {
		t.Fatalf("quiet target %d, want floor 1", got)
	}
	if got := SpareTarget(100, 2, 0, 8); got != 8 {
		t.Fatalf("burst target %d, want ceiling 8", got)
	}
	if got := SpareTarget(1.5, 2, 0, 8); got != 3 {
		t.Fatalf("target %d, want ceil(1.5*2)=3", got)
	}
}

// ---- controller epoch tests (deterministic Step) --------------------------

// feedServeLoad records one epoch of synthetic front-end telemetry.
func feedServeLoad(reg *telemetry.Registry, sizeFlushes, timerFlushes uint64, fill int64, n int) {
	reg.Counter(telemetry.MetricServeFlushes, telemetry.L("reason", telemetry.FlushReasonSize)).Add(sizeFlushes)
	reg.Counter(telemetry.MetricServeFlushes, telemetry.L("reason", telemetry.FlushReasonTimer)).Add(timerFlushes)
	h := reg.Histogram(telemetry.MetricServeBatchFill)
	for i := 0; i < n; i++ {
		h.Observe(fill)
	}
}

// TestStepBatchLoop closes the real loop: synthetic saturation telemetry in
// the registry, Step, and the actuator must have been widened with a
// decision emitted and counted.
func TestStepBatchLoop(t *testing.T) {
	reg := telemetry.NewRegistry()
	fe := newFakeFrontend()
	c := New(Config{Registry: reg, Frontend: fe, DisableSLO: true})

	feedServeLoad(reg, 95, 5, 8, 100)
	dec := c.Step(time.Second)
	if fe.batch != 16 {
		t.Fatalf("saturated epoch: MaxBatch = %d, want 16", fe.batch)
	}
	if len(dec) != 1 || dec[0].Loop != telemetry.ControlLoopBatch || dec[0].Direction != "up" {
		t.Fatalf("decisions = %+v, want one batch_window up", dec)
	}
	if got := reg.Counter(telemetry.MetricControlDecisions,
		telemetry.L("loop", telemetry.ControlLoopBatch), telemetry.L("direction", "up")).Value(); got != 1 {
		t.Fatalf("decision counter = %d, want 1", got)
	}
	if got := reg.Gauge(telemetry.MetricControlBatchMax).Value(); got != 16 {
		t.Fatalf("batch_max gauge = %d, want 16", got)
	}

	// Idle epoch: no signal, no move.
	if dec := c.Step(time.Second); len(dec) != 0 {
		t.Fatalf("idle epoch emitted %+v", dec)
	}

	// Light epoch after a speculative grow: the wider window never filled,
	// so slow-start reverts the grow first...
	before := fe.delay
	feedServeLoad(reg, 2, 98, 1, 100)
	c.Step(time.Second)
	if fe.batch != 8 {
		t.Fatalf("light epoch after grow: MaxBatch = %d, want revert to 8", fe.batch)
	}
	// ...and the next light epoch trims the delay (nearly-empty batches mean
	// the deadline is pure queueing latency at this load).
	feedServeLoad(reg, 2, 98, 1, 100)
	c.Step(time.Second)
	if fe.delay >= before {
		t.Fatalf("light epoch: delay %v, want < %v", fe.delay, before)
	}
}

// TestStepInflightLoop feeds engine throughput + gather latency and expects
// a Little's-law window move with hysteresis and clamps respected.
func TestStepInflightLoop(t *testing.T) {
	reg := telemetry.NewRegistry()
	pl := &fakePipeline{window: 2, stages: 2}
	lim := Limits{MaxWindow: 16}
	c := New(Config{Registry: reg, Pipeline: pl, Limits: lim})

	// 200 batches/s at ~64ms p90 gather => target ~ 1.25*200*0.064 = 16+.
	reg.Counter(telemetry.MetricEngineBatches).Add(200)
	g := reg.Histogram(telemetry.MetricEngineGatherNs, telemetry.L("stage", "1"))
	for i := 0; i < 100; i++ {
		g.Observe(64_000_000)
	}
	dec := c.Step(time.Second)
	if pl.window != 16 {
		t.Fatalf("window = %d, want clamp at 16", pl.window)
	}
	if len(dec) != 1 || dec[0].Loop != telemetry.ControlLoopInflight || dec[0].Direction != "up" {
		t.Fatalf("decisions = %+v, want one inflight up", dec)
	}

	// Same load again: target equals current -> inside the band, hold.
	reg.Counter(telemetry.MetricEngineBatches).Add(200)
	for i := 0; i < 100; i++ {
		g.Observe(64_000_000)
	}
	if dec := c.Step(time.Second); len(dec) != 0 {
		t.Fatalf("steady epoch moved the window: %+v", dec)
	}

	// Idle epoch: hold (never drive the window from no data).
	if dec := c.Step(time.Second); len(dec) != 0 || pl.window != 16 {
		t.Fatalf("idle epoch moved the window: %+v w=%d", dec, pl.window)
	}
}

// TestStepInflightRespectsDisabledWindow: a deployment that configured
// InflightWindow=0 (feature off) must never have a window imposed on it.
func TestStepInflightRespectsDisabledWindow(t *testing.T) {
	reg := telemetry.NewRegistry()
	pl := &fakePipeline{window: 0, stages: 1}
	c := New(Config{Registry: reg, Pipeline: pl})
	reg.Counter(telemetry.MetricEngineBatches).Add(1000)
	g := reg.Histogram(telemetry.MetricEngineGatherNs, telemetry.L("stage", "0"))
	for i := 0; i < 100; i++ {
		g.Observe(50_000_000)
	}
	if dec := c.Step(time.Second); len(dec) != 0 || pl.window != 0 {
		t.Fatalf("controller enabled a disabled window: %+v w=%d", dec, pl.window)
	}
}

// TestStepSpareLoop: deaths on the event bus raise the pool target (one
// provision per epoch); a replacement failure forces an immediate provision;
// quiet epochs drain the pool back down to the hysteresis gap.
func TestStepSpareLoop(t *testing.T) {
	reg := telemetry.NewRegistry()
	bus := telemetry.NewBus[monitor.Event](64)
	pool := &fakePool{}
	c := New(Config{Registry: reg, Spares: pool, Events: bus})
	defer c.Stop()

	// A burst of timeouts on stage 1.
	for i := 0; i < 4; i++ {
		bus.Publish(monitor.Event{Kind: monitor.EventVariantTimeout, Stage: 1})
	}
	dec := c.Step(time.Second)
	if pool.spares != 1 || len(dec) != 1 || dec[0].Direction != "up" {
		t.Fatalf("death burst: spares=%d dec=%+v, want one provision", pool.spares, dec)
	}
	if pool.provisions[0] != 1 {
		t.Fatalf("provisioned partition %d, want 1 (stage of the deaths)", pool.provisions[0])
	}

	// Pool exhausted at replacement time: provision now, whatever the EWMA.
	quietUntilEmpty := func() {
		for i := 0; i < 50 && pool.spares > 0; i++ {
			c.Step(time.Second)
		}
	}
	_ = quietUntilEmpty
	bus.Publish(monitor.Event{Kind: monitor.EventReplaceFailed, Stage: 0})
	before := pool.spares
	c.Step(time.Second)
	if pool.spares <= before-1 {
		t.Fatalf("replace-failed epoch did not provision (spares %d -> %d)", before, pool.spares)
	}

	// Quiet epochs: EWMA decays, pool drains one per epoch, never below
	// target+1 gap and never negative.
	peak := pool.spares
	for i := 0; i < 20; i++ {
		prev := pool.spares
		c.Step(time.Second)
		if pool.spares < prev-1 {
			t.Fatalf("retired more than one spare in an epoch: %d -> %d", prev, pool.spares)
		}
	}
	if pool.spares > peak || pool.spares > 1 {
		t.Fatalf("quiet pool did not drain: %d (peak %d)", pool.spares, peak)
	}
}

// breachEpoch records n requests at the given latency for a tenant.
func breachEpoch(reg *telemetry.Registry, tenant string, lat time.Duration, n int) {
	h := reg.Histogram(telemetry.MetricServeLatencyNs, telemetry.L("tenant", tenant))
	for i := 0; i < n; i++ {
		h.Observe(int64(lat))
	}
}

// TestStepSLOBreachRespondsWithinEpochs: a sustained p99 breach must produce
// a response within BreachEpochs epochs — first weight, then (saturated)
// shed floor, which never passes ShedToHigh no matter how long the breach
// lasts (the chaos invariant: the controller can add shedding, but High
// lanes stay admitted and the ladder-derived level is never undercut because
// serve computes max(ladder, floor)).
func TestStepSLOBreachRespondsWithinEpochs(t *testing.T) {
	reg := telemetry.NewRegistry()
	fe := newFakeFrontend()
	fe.weights["gold"] = 2
	fe.slos = map[string]time.Duration{"gold": time.Millisecond}
	c := New(Config{
		Registry: reg, Frontend: fe,
		BreachEpochs: 2,
		Limits:       Limits{MaxWeight: 8},
		DisableBatch: true,
	})

	// Breach continuously; the first actuation must land within BreachEpochs.
	var first int
	for epoch := 1; epoch <= 20; epoch++ {
		breachEpoch(reg, "gold", 20*time.Millisecond, 50)
		dec := c.Step(time.Second)
		if len(dec) > 0 && first == 0 {
			first = epoch
			if dec[0].Knob != "weight" || dec[0].Tenant != "gold" || dec[0].Direction != "up" {
				t.Fatalf("first SLO response = %+v, want gold weight up", dec[0])
			}
		}
	}
	if first == 0 || first > 2 {
		t.Fatalf("first SLO response at epoch %d, want within BreachEpochs=2", first)
	}
	if fe.weights["gold"] != 8 {
		t.Fatalf("sustained breach: weight = %d, want saturated at 8", fe.weights["gold"])
	}
	if fe.floor != serve.ShedToHigh {
		t.Fatalf("sustained breach after weight saturation: floor = %v, want ShedToHigh", fe.floor)
	}
	for _, l := range fe.floorHist {
		if l > serve.ShedToHigh {
			t.Fatalf("controller raised shed floor to %v — past ShedToHigh", l)
		}
	}
	if got := reg.Counter(telemetry.MetricControlSLOBreaches, telemetry.L("tenant", "gold")).Value(); got == 0 {
		t.Fatal("breach counter never incremented")
	}

	// Recovery: clean epochs lower the floor back to ShedNone first, then
	// restore the weight to its pre-breach base.
	for epoch := 0; epoch < 20; epoch++ {
		breachEpoch(reg, "gold", 100*time.Microsecond, 50)
		c.Step(time.Second)
	}
	if fe.floor != serve.ShedNone {
		t.Fatalf("recovered floor = %v, want ShedNone", fe.floor)
	}
	if fe.weights["gold"] != 2 {
		t.Fatalf("recovered weight = %d, want base 2", fe.weights["gold"])
	}
}

// TestStepDisabledLoopsHold: with every loop disabled the controller ticks
// (epoch counter moves) but never actuates, whatever the telemetry says.
func TestStepDisabledLoopsHold(t *testing.T) {
	reg := telemetry.NewRegistry()
	fe := newFakeFrontend()
	fe.slos = map[string]time.Duration{"gold": time.Millisecond}
	pl := &fakePipeline{window: 2, stages: 1}
	pool := &fakePool{spares: 3}
	bus := telemetry.NewBus[monitor.Event](16)
	c := New(Config{
		Registry: reg, Frontend: fe, Pipeline: pl, Spares: pool, Events: bus,
		DisableBatch: true, DisableInflight: true, DisableSpares: true, DisableSLO: true,
	})
	feedServeLoad(reg, 95, 5, 8, 100)
	reg.Counter(telemetry.MetricEngineBatches).Add(500)
	breachEpoch(reg, "gold", 50*time.Millisecond, 100)
	bus.Publish(monitor.Event{Kind: monitor.EventVariantTimeout, Stage: 0})

	if dec := c.Step(time.Second); len(dec) != 0 {
		t.Fatalf("disabled loops actuated: %+v", dec)
	}
	if fe.batch != 8 || pl.window != 2 || pool.spares != 3 || fe.floor != serve.ShedNone {
		t.Fatal("disabled controller moved a knob")
	}
	if got := reg.Counter(telemetry.MetricControlEpochs).Value(); got != 1 {
		t.Fatalf("epoch counter = %d, want 1", got)
	}
}

// TestRunTicksAndStops exercises the goroutine path: the ticker drives
// epochs, decisions reach bus subscribers, and Stop is idempotent.
func TestRunTicksAndStops(t *testing.T) {
	reg := telemetry.NewRegistry()
	fe := newFakeFrontend()
	c := New(Config{Registry: reg, Frontend: fe, Epoch: 5 * time.Millisecond, DisableSLO: true})
	sub := c.Decisions().Subscribe(16)
	defer sub.Close()

	feedServeLoad(reg, 95, 5, 8, 100)
	c.Start()
	c.Start() // idempotent
	select {
	case d := <-sub.C:
		if d.Loop != telemetry.ControlLoopBatch {
			t.Fatalf("decision %+v, want batch_window", d)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("no decision within 2s of Start")
	}
	c.Stop()
	c.Stop() // idempotent
	epochs := reg.Counter(telemetry.MetricControlEpochs).Value()
	if epochs == 0 {
		t.Fatal("ticker never stepped")
	}
}

// TestControllerAgainstLiveActuators wires the controller to a real
// serve.Server-shaped set of interfaces via compile-time assertions.
var (
	_ Frontend  = (*serve.Server)(nil)
	_ Pipeline  = (*monitor.Engine)(nil)
	_ SparePool = (*monitor.Monitor)(nil)
)

// TestGatherStageLabels guards the stage-label contract the inflight loop
// depends on: the controller resolves gather histograms with the same
// stage="<idx>" labels the engine registers.
func TestGatherStageLabels(t *testing.T) {
	reg := telemetry.NewRegistry()
	pl := &fakePipeline{window: 1, stages: 3}
	c := New(Config{Registry: reg, Pipeline: pl})
	if len(c.gather) != 3 {
		t.Fatalf("resolved %d stage histograms, want 3", len(c.gather))
	}
	for i := range c.gather {
		if c.gather[i] != reg.Histogram(telemetry.MetricEngineGatherNs, telemetry.L("stage", strconv.Itoa(i))) {
			t.Fatalf("stage %d handle does not match registry series", i)
		}
	}
}

// TestQueueShedClampAndUnwind drives the queue-depth loop deterministically:
// sustained backlog above the high water raises the shed floor one level per
// BreachEpochs, never past ShedToHigh; draining queues unwind it at the same
// cadence, never below ShedNone, and the loop only ever undoes its own
// escalations.
func TestQueueShedClampAndUnwind(t *testing.T) {
	reg := telemetry.NewRegistry()
	fe := newFakeFrontend()
	pl := &fakePipeline{window: 8, stages: 2}
	c := New(Config{
		Registry: reg, Frontend: fe, Pipeline: pl,
		QueueHighWater: 16, BreachEpochs: 2,
		DisableBatch: true, DisableInflight: true, DisableSLO: true,
	})
	// The loop takes the max over stages: stage 0 stays idle, stage 1 backs up.
	q := reg.Gauge(telemetry.MetricEngineQueueDepth, telemetry.L("stage", "1"))

	// One epoch over the high water is not enough evidence.
	q.Set(17)
	if ds := c.Step(0); len(ds) != 0 {
		t.Fatalf("acted on a single breached epoch: %+v", ds)
	}
	ds := c.Step(0)
	if len(ds) != 1 || ds[0].Loop != telemetry.ControlLoopQueue || ds[0].Direction != "up" {
		t.Fatalf("after %d breached epochs got %+v, want one queue_depth up", 2, ds)
	}
	if fe.floor != serve.ShedLow {
		t.Fatalf("floor %v after first escalation, want %v", fe.floor, serve.ShedLow)
	}

	// Sustained backlog: the floor climbs but clamps at ShedToHigh no matter
	// how many more breached epochs accumulate.
	for i := 0; i < 10; i++ {
		c.Step(0)
	}
	if fe.floor != serve.ShedToHigh {
		t.Fatalf("floor %v under sustained backlog, want clamp at %v", fe.floor, serve.ShedToHigh)
	}
	for _, lvl := range fe.floorHist {
		if lvl > serve.ShedToHigh {
			t.Fatalf("floor history %v exceeds ShedToHigh", fe.floorHist)
		}
	}

	// Queues drain to half the high water: one level back per BreachEpochs,
	// stopping at ShedNone with no further decisions once its own raises are
	// spent.
	q.Set(8)
	downs := 0
	for i := 0; i < 12; i++ {
		for _, d := range c.Step(0) {
			if d.Loop != telemetry.ControlLoopQueue || d.Direction != "down" {
				t.Fatalf("unexpected decision during drain: %+v", d)
			}
			downs++
		}
	}
	if fe.floor != serve.ShedNone {
		t.Fatalf("floor %v after drain, want %v", fe.floor, serve.ShedNone)
	}
	if downs != 2 {
		t.Fatalf("%d down decisions, want exactly the 2 levels the loop raised", downs)
	}

	// A floor someone else owns (operator, SLO loop) is not this loop's to
	// unwind: drained queues must leave it alone.
	fe.SetShedFloor(serve.ShedLow)
	for i := 0; i < 6; i++ {
		if ds := c.Step(0); len(ds) != 0 {
			t.Fatalf("queue loop undid a foreign floor: %+v", ds)
		}
	}
	if fe.floor != serve.ShedLow {
		t.Fatalf("foreign floor moved to %v", fe.floor)
	}
}
