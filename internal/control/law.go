// Package control closes the loop from the telemetry registry back into the
// serving tier's static knobs. A single controller goroutine wakes once per
// epoch, reads counter/histogram deltas since the previous epoch, and steers
// four actuators: the front-end micro-batching window, the engine's
// per-stage inflight credit window, the pre-attested spare pool, and the
// per-tenant WRR weights / shed posture. Every decision is clamped to hard
// min/max limits, passes a hysteresis band before actuating, and is emitted
// as both a labeled counter and a Decision event so operators can watch the
// controller steer.
//
// The decision laws themselves are pure functions in this file — the live
// controller and the pipesim simulator share them, so adaptive policies can
// be explored offline against the analytical pipeline model before they run
// against real variants.
package control

import (
	"math"
	"time"
)

// BatchSignals summarizes one epoch of micro-batching telemetry: how many
// batches flushed full versus on the deadline timer, and the mean batch
// fill. Drain flushes are excluded — shutdown is not load.
type BatchSignals struct {
	FlushSize  uint64  // batches flushed because they reached MaxBatch
	FlushTimer uint64  // batches flushed by the MaxDelay deadline
	MeanFill   float64 // mean requests per flushed batch
}

// BatchKnobs is the micro-batching window: the pair the scheduler reads at
// the top of every batch.
type BatchKnobs struct {
	MaxBatch int
	MaxDelay time.Duration
}

// Batch-law thresholds. The bands are deliberately wide so a single load
// level cannot trigger opposing moves on consecutive epochs; the remaining
// grow/shrink cycle (a speculative grow that fails to fill) is broken by the
// slow-start memory in BatchStep, not by the bands.
const (
	batchTimerDominated = 0.7 // timer-flush fraction that reads as "light"
	batchSizeDominated  = 0.3 // timer-flush fraction that reads as "saturated"
	batchFillHigh       = 0.9 // fill/MaxBatch ratio that reads as "full"
	batchFillHalf       = 0.5 // fill ratio at or below which the window snaps to the mean
	batchFillIdle       = 0.2 // fill ratio below which the delay is pure latency

	// batchProbeEpochs is how many consecutive grow-blocked epochs BatchStep
	// waits at a learned ceiling before probing past it again, in case the
	// offered concurrency rose since the ceiling was learned.
	batchProbeEpochs = 16
)

// BatchLaw returns the next batching window given one epoch of flush
// telemetry. Size-dominated flushes with near-full batches mean arrivals
// saturate the window: widen the batch for throughput. Timer-dominated
// flushes at half fill or less mean the window is wider than what arrivals
// deliver before the deadline — every flush stalls on the timer for
// nothing. The window then snaps to the observed mean fill, which converts
// the deadline stalls into size flushes without truncating the batches that
// were actually forming (the closed-loop overshoot state the serve bench
// exposed: MaxBatch grown past the offered concurrency). When the window is
// nearly idle the deadline itself is pure queueing latency, so it halves
// too. Timer-dominated flushes at near-full fill mean the deadline fires
// just as batches fill — a little more delay converts them into full
// batches. Everything between the bands holds: mid-fill timer flushes
// (0.5 < fill < 0.9) cannot be distinguished from an open load whose
// batches the deadline is genuinely bounding, and shrinking there would
// truncate real batches.
func BatchLaw(sig BatchSignals, cur BatchKnobs, lim Limits) BatchKnobs {
	total := sig.FlushSize + sig.FlushTimer
	if total == 0 {
		return cur // no traffic this epoch: no signal, no move
	}
	timerFrac := float64(sig.FlushTimer) / float64(total)
	fillRatio := sig.MeanFill / float64(cur.MaxBatch)
	next := cur
	switch {
	case timerFrac <= batchSizeDominated && fillRatio >= batchFillHigh:
		next.MaxBatch = clampInt(cur.MaxBatch*2, lim.MinBatch, lim.MaxBatch)
	case timerFrac >= batchTimerDominated && fillRatio <= batchFillHalf:
		next.MaxBatch = clampInt(int(math.Ceil(sig.MeanFill)), lim.MinBatch, lim.MaxBatch)
		if fillRatio < batchFillIdle {
			next.MaxDelay = clampDur(cur.MaxDelay/2, lim.MinDelay, lim.MaxDelay)
		}
	case timerFrac >= batchTimerDominated && fillRatio >= batchFillHigh:
		next.MaxDelay = clampDur(cur.MaxDelay*2, lim.MinDelay, lim.MaxDelay)
	}
	return next
}

// BatchState is the slow-start memory BatchStep carries between epochs. The
// zero value is the correct initial state.
type BatchState struct {
	Grew int // MaxBatch before the previous epoch's grow (0 = none outstanding)
	Ceil int // learned MaxBatch ceiling after a grow failed to fill (0 = none)
	Sat  int // consecutive grow-blocked epochs at Ceil, for the re-probe
}

// BatchStep wraps BatchLaw with slow-start memory, and is what the live
// controller runs each epoch. A grow is speculative: if the next loaded
// epoch shows the wider window failed to fill (timer-dominated flushes,
// fill below the full band), arrivals cannot exploit it — at a closed-loop
// saturating load this is the overshoot state where MaxBatch exceeds the
// offered concurrency and every flush stalls on the deadline. BatchStep
// then reverts the grow and learns the pre-grow value as a ceiling, which
// blocks re-growth — breaking the grow/shrink limit cycle the memoryless
// law would otherwise ride. Every batchProbeEpochs blocked epochs the
// ceiling is lifted for one probe grow, so a genuine rise in offered
// concurrency is still discovered; a failed probe just re-learns the
// ceiling one epoch later.
func BatchStep(sig BatchSignals, cur BatchKnobs, lim Limits, st *BatchState) BatchKnobs {
	total := sig.FlushSize + sig.FlushTimer
	if total == 0 {
		return cur // idle: keep any pending grow unjudged until load returns
	}
	if st.Grew > 0 {
		grew := st.Grew
		st.Grew = 0
		timerFrac := float64(sig.FlushTimer) / float64(total)
		fillRatio := sig.MeanFill / float64(cur.MaxBatch)
		if timerFrac >= batchTimerDominated && fillRatio < batchFillHigh {
			st.Ceil = grew
			st.Sat = 0
			next := cur
			next.MaxBatch = clampInt(grew, lim.MinBatch, lim.MaxBatch)
			return next
		}
	}
	next := BatchLaw(sig, cur, lim)
	if next.MaxBatch > cur.MaxBatch && st.Ceil > 0 && next.MaxBatch > st.Ceil {
		st.Sat++
		if st.Sat >= batchProbeEpochs {
			st.Sat = 0
			st.Ceil = 0 // probe: re-learned within one epoch if it fails again
		} else if cur.MaxBatch < st.Ceil {
			next.MaxBatch = st.Ceil
		} else {
			next.MaxBatch = cur.MaxBatch
		}
	}
	if next.MaxBatch > cur.MaxBatch {
		st.Grew = cur.MaxBatch
	}
	return next
}

// LittleWindow sizes an inflight credit window from observed throughput and
// latency via Little's law (N = lambda * W), padded by headroom so the
// window does not throttle the very steady state it was measured from.
// Returns 0 when either signal is absent (idle epoch — no basis to act).
func LittleWindow(perSecond float64, latency time.Duration, headroom float64) int {
	if perSecond <= 0 || latency <= 0 {
		return 0
	}
	if headroom <= 1 {
		headroom = 1
	}
	return int(math.Ceil(perSecond * latency.Seconds() * headroom))
}

// SpareTarget sizes the pre-attested spare pool to cover `lead` epochs of
// variant deaths at the recent (smoothed) rate, clamped to [min, max]. A
// pool sized this way absorbs a death burst without a cold attestation on
// the replacement path.
func SpareTarget(deathsPerEpoch float64, lead, min, max int) int {
	if lead < 1 {
		lead = 1
	}
	t := int(math.Ceil(deathsPerEpoch * float64(lead)))
	return clampInt(t, min, max)
}

func clampInt(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

func clampDur(v, lo, hi time.Duration) time.Duration {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
